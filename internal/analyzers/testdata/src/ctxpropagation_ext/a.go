// Package ctxpropagation_ext is golden-test input loaded under an external
// (non-internal) import path: context.Background() is allowed at the public
// boundary, but ignoring an in-scope context is still a violation.
package ctxpropagation_ext

import "context"

type Dataset struct{}

func (d *Dataset) Collect() ([]int, error)                       { return nil, nil }
func (d *Dataset) CollectCtx(ctx context.Context) ([]int, error) { return nil, nil }

func boundary(d *Dataset) ([]int, error) {
	return d.CollectCtx(context.Background()) // external package: fine
}

func stillWrong(ctx context.Context, d *Dataset) ([]int, error) {
	return d.Collect() // want `call to Collect ignores the context.Context ctx`
}
