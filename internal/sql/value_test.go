package sql

import (
	"strings"
	"testing"
)

func TestValueAccessors(t *testing.T) {
	if v, ok := Int(7).AsInt(); !ok || v != 7 {
		t.Errorf("AsInt = %v, %v", v, ok)
	}
	if v, ok := Int(7).AsFloat(); !ok || v != 7 {
		t.Errorf("int AsFloat = %v, %v", v, ok)
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Errorf("AsFloat = %v, %v", v, ok)
	}
	if _, ok := Float(2.5).AsInt(); ok {
		t.Error("float AsInt succeeded")
	}
	if v, ok := Str("x").AsString(); !ok || v != "x" {
		t.Errorf("AsString = %v, %v", v, ok)
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Errorf("AsBool = %v, %v", v, ok)
	}
	if Int(1).Kind() != KindInt || Str("").Kind() != KindString {
		t.Error("Kind mismatched")
	}
}

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Str("a\"b"), `"a\"b"`},
		{Bool(false), "false"},
		{Value{}, "<nil>"},
	}
	for _, tt := range tests {
		if got := tt.v.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(3), Int(2), 1},
		{Int(2), Float(2.5), -1},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
	}
	for _, tt := range tests {
		got, err := Compare(tt.a, tt.b)
		if err != nil {
			t.Errorf("Compare(%v, %v): %v", tt.a, tt.b, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("cross-kind compare accepted")
	}
	if _, err := Compare(Bool(true), Str("t")); err == nil {
		t.Error("bool/string compare accepted")
	}
}

func TestSchemaIndexOf(t *testing.T) {
	s := Schema{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindString}}
	if i, err := s.IndexOf("b"); err != nil || i != 1 {
		t.Errorf("IndexOf(b) = %d, %v", i, err)
	}
	if _, err := s.IndexOf("c"); err == nil {
		t.Error("unknown column resolved")
	}
	if !strings.Contains(strings.Join(s.Names(), ","), "a,b") {
		t.Errorf("Names = %v", s.Names())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindInt: "int", KindFloat: "float", KindString: "string", KindBool: "bool"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
