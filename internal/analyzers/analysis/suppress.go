package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// allowRE matches one //upa:allow(<analyzer>) annotation. The justification
// is everything after the closing parenthesis up to the next comment marker
// (so trailing test-harness markers such as "// want ..." never count as a
// justification).
var allowRE = regexp.MustCompile(`//upa:allow\(([a-zA-Z0-9_-]+)\)(.*)$`)

// allowance is one parsed //upa:allow annotation.
type allowance struct {
	analyzer      string
	justification string
	pos           token.Pos
	line          int
}

// parseAllowances extracts every //upa:allow annotation from the package's
// comments, keyed by (file, line).
func parseAllowances(pkg *Package) []allowance {
	var out []allowance
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				just := m[2]
				if i := strings.Index(just, "//"); i >= 0 {
					just = just[:i]
				}
				out = append(out, allowance{
					analyzer:      m[1],
					justification: strings.TrimSpace(just),
					pos:           c.Pos(),
					line:          pkg.Fset.Position(c.Pos()).Line,
				})
			}
		}
	}
	return out
}

// applySuppressions filters diagnostics through the package's //upa:allow
// annotations. An annotation for analyzer A suppresses A's diagnostics on
// the annotation's own line and on the line directly below it (the
// standalone-comment-above-the-statement form). Annotations without a
// justification suppress nothing and are themselves reported: the whole
// point of the escape hatch is that every exemption explains itself.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	allowances := parseAllowances(pkg)
	justified := make(map[string]bool) // "analyzer:line" -> suppress
	var out []Diagnostic
	for _, a := range allowances {
		if a.justification == "" {
			out = append(out, Diagnostic{
				Analyzer: a.analyzer,
				Pos:      a.pos,
				Message:  fmt.Sprintf("upa:allow(%s) requires a justification after the closing parenthesis", a.analyzer),
			})
			continue
		}
		justified[fmt.Sprintf("%s:%d", a.analyzer, a.line)] = true
		justified[fmt.Sprintf("%s:%d", a.analyzer, a.line+1)] = true
	}
	for _, d := range diags {
		line := pkg.Fset.Position(d.Pos).Line
		if justified[fmt.Sprintf("%s:%d", d.Analyzer, line)] {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out
}

// EnclosingFuncs returns the stack of function declarations and literals
// enclosing pos in f, outermost first. Analyzers use it to answer "is there
// a context.Context parameter in scope here?".
func EnclosingFuncs(f *ast.File, pos token.Pos) []ast.Node {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			// Prune subtrees that cannot contain pos, but keep walking the
			// file's other top-level declarations.
			_, isFile := n.(*ast.File)
			return isFile
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			stack = append(stack, n)
		}
		return true
	})
	return stack
}
