package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
)

func testServer(t *testing.T, statePath string) *server {
	t.Helper()
	srv, err := newServer(serverConfig{
		Lineitems:   2000,
		LSRecords:   1500,
		Skew:        0.2,
		Seed:        5,
		SampleSize:  150,
		Epsilon:     0.1,
		StatePath:   statePath,
		SpillBudget: -1, // in-memory: spill behaviour has its own tests below
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s %s returned non-JSON (%d): %s", method, path, rec.Code, rec.Body.String())
	}
	return rec, decoded
}

func TestQueriesEndpoint(t *testing.T) {
	h := testServer(t, "").routes()
	rec, body := doJSON(t, h, http.MethodGet, "/queries", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	list, ok := body["queries"].([]any)
	if !ok || len(list) != 9 {
		t.Fatalf("queries = %v", body["queries"])
	}
}

func TestReleaseEndpoint(t *testing.T) {
	h := testServer(t, "").routes()
	rec, body := doJSON(t, h, http.MethodPost, "/release", `{"query":"TPCH6"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if body["query"] != "TPCH6" {
		t.Errorf("query = %v", body["query"])
	}
	if out, ok := body["output"].([]any); !ok || len(out) != 1 {
		t.Errorf("output = %v", body["output"])
	}
	if body["attackSuspected"] != false {
		t.Errorf("first release flagged: %v", body["attackSuspected"])
	}
	// The response must never leak raw (pre-noise) outputs — nor the
	// inferred sensitivity, which is equally data-dependent (regression
	// for the dpflow finding that used to ship it to the analyst).
	for key := range body {
		if key == "rawOutput" || key == "vanillaOutput" || key == "sensitivity" {
			t.Errorf("response leaks %s", key)
		}
	}
}

func TestReleaseValidation(t *testing.T) {
	h := testServer(t, "").routes()
	if rec, _ := doJSON(t, h, http.MethodPost, "/release", `{"query":"TPCH99"}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown query status = %d", rec.Code)
	}
	if rec, _ := doJSON(t, h, http.MethodPost, "/release", `{notjson`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", rec.Code)
	}
}

func TestMetricsAndHistoryEndpoints(t *testing.T) {
	srv := testServer(t, "")
	h := srv.routes()
	if _, body := doJSON(t, h, http.MethodPost, "/release", `{"query":"TPCH1"}`); body["query"] != "TPCH1" {
		t.Fatal("release failed")
	}
	_, metrics := doJSON(t, h, http.MethodGet, "/metrics", "")
	if metrics["recordsMapped"].(float64) <= 0 {
		t.Errorf("metrics empty: %v", metrics)
	}
	_, hist := doJSON(t, h, http.MethodGet, "/history", "")
	if hist["releases"].(float64) != 1 {
		t.Errorf("history releases = %v", hist["releases"])
	}
	if hist["persisted"] != false {
		t.Errorf("persisted = %v, want false", hist["persisted"])
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv := testServer(t, "")
	h := srv.routes()
	rec, health := doJSON(t, h, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if health["status"] != "ok" {
		t.Errorf("status = %v", health["status"])
	}
	if health["releases"].(float64) != 0 || health["epsilonSpent"].(float64) != 0 {
		t.Errorf("fresh server reports activity: %v", health)
	}
	if health["uptimeSeconds"].(float64) < 0 {
		t.Errorf("negative uptime: %v", health["uptimeSeconds"])
	}
	if health["workers"].(float64) < 1 {
		t.Errorf("workers = %v", health["workers"])
	}
	if _, body := doJSON(t, h, http.MethodPost, "/release", `{"query":"TPCH6"}`); body["query"] != "TPCH6" {
		t.Fatal("release failed")
	}
	_, health = doJSON(t, h, http.MethodGet, "/healthz", "")
	if health["releases"].(float64) != 1 {
		t.Errorf("releases = %v after one release", health["releases"])
	}
	if health["epsilonSpent"].(float64) <= 0 {
		t.Errorf("epsilonSpent = %v after a successful release", health["epsilonSpent"])
	}
}

func TestConcurrentReleaseRequests(t *testing.T) {
	// Concurrent analysts hit /release simultaneously; the server's
	// release mutex serializes enforcer updates and every request gets a
	// well-formed answer.
	h := testServer(t, "").routes()
	const parallel = 6
	type result struct {
		code int
		ok   bool
	}
	results := make(chan result, parallel)
	queriesList := []string{"TPCH1", "TPCH6", "TPCH13", "KMeans", "TPCH11", "TPCH16"}
	for i := 0; i < parallel; i++ {
		go func(q string) {
			req := httptest.NewRequest(http.MethodPost, "/release",
				strings.NewReader(`{"query":"`+q+`"}`))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			var body map[string]any
			err := json.Unmarshal(rec.Body.Bytes(), &body)
			results <- result{code: rec.Code, ok: err == nil && body["query"] == q}
		}(queriesList[i])
	}
	for i := 0; i < parallel; i++ {
		r := <-results
		if r.code != http.StatusOK || !r.ok {
			t.Fatalf("concurrent release %d failed: %+v", i, r)
		}
	}
}

// TestServerSpillBudget runs a whole server with -spillbudget 0: every
// engine materialization spills to temp files, the noisy release must still
// be byte-identical to the in-memory server (same seed, same noise stream),
// /metrics surfaces the spill counters, and close() removes the temp
// directory.
func TestServerSpillBudget(t *testing.T) {
	spilled, err := newServer(serverConfig{
		Lineitems:   2000,
		LSRecords:   1500,
		Skew:        0.2,
		Seed:        5,
		SampleSize:  150,
		Epsilon:     0.1,
		SpillBudget: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	inMem := testServer(t, "")

	recS, bodyS := doJSON(t, spilled.routes(), http.MethodPost, "/release", `{"query":"TPCH6"}`)
	recM, bodyM := doJSON(t, inMem.routes(), http.MethodPost, "/release", `{"query":"TPCH6"}`)
	if recS.Code != http.StatusOK || recM.Code != http.StatusOK {
		t.Fatalf("release status spilled=%d inmem=%d (%v / %v)", recS.Code, recM.Code, bodyS, bodyM)
	}
	sOut, _ := json.Marshal(bodyS["output"])
	mOut, _ := json.Marshal(bodyM["output"])
	if string(sOut) != string(mOut) {
		t.Errorf("spilled release output %s differs from in-memory %s", sOut, mOut)
	}

	_, metrics := doJSON(t, spilled.routes(), http.MethodGet, "/metrics", "")
	if metrics["spilledBytes"].(float64) <= 0 || metrics["spillFiles"].(float64) <= 0 {
		t.Errorf("spill counters empty under budget 0: spilledBytes=%v spillFiles=%v",
			metrics["spilledBytes"], metrics["spillFiles"])
	}
	if metrics["memoryBudget"].(float64) != 0 {
		t.Errorf("memoryBudget = %v, want 0", metrics["memoryBudget"])
	}

	if err := spilled.close(); err != nil {
		t.Fatalf("close spilled server: %v", err)
	}
}

// TestAttackAcrossServerRestart is the service-level replay of the §III
// attack: the enforcer state file carries the detection evidence across a
// full server restart.
func TestAttackAcrossServerRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "enforcer.json")

	first := testServer(t, state)
	if rec, _ := doJSON(t, first.routes(), http.MethodPost, "/release", `{"query":"TPCH6"}`); rec.Code != http.StatusOK {
		t.Fatal("first release failed")
	}

	// Restart: new server process, same state file and dataset.
	second := testServer(t, state)
	_, hist := doJSON(t, second.routes(), http.MethodGet, "/history", "")
	if hist["releases"].(float64) != 1 {
		t.Fatalf("restored history releases = %v, want 1", hist["releases"])
	}
	rec, body := doJSON(t, second.routes(), http.MethodPost, "/release", `{"query":"TPCH6"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("second release failed: %v", body)
	}
	if body["attackSuspected"] != true {
		t.Errorf("identical rerun across restart not flagged: %v", body)
	}
}
