package mapreduce

import (
	"errors"
	"testing"
	"testing/quick"

	"upa/internal/stats"
)

func intsUpTo(n int) []int {
	xs := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	return xs
}

func TestFromSliceValidation(t *testing.T) {
	eng := NewEngine()
	if _, err := FromSlice(eng, []int{1}, 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := FromSlice(eng, []int{1}, -3); err == nil {
		t.Fatal("negative partitions accepted")
	}
}

func TestFromSliceCopiesInput(t *testing.T) {
	eng := NewEngine()
	data := []int{1, 2, 3}
	d, err := FromSlice(eng, data, 2)
	if err != nil {
		t.Fatal(err)
	}
	data[0] = 99
	got, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("dataset observed caller mutation: %v", got)
	}
}

func TestSliceBoundsPartitionAll(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)
		parts := int(pRaw%16) + 1
		covered := 0
		prevHi := 0
		for p := 0; p < parts; p++ {
			lo, hi := sliceBounds(n, parts, p)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCollectPreservesOrder(t *testing.T) {
	eng := NewEngine()
	for _, parts := range []int{1, 2, 3, 7, 64} {
		d, err := FromSlice(eng, intsUpTo(100), parts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("parts=%d: collected %d records, want 100", parts, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("parts=%d: order broken at %d: %d", parts, i, v)
			}
		}
	}
}

func TestCount(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(523), 8)
	if err != nil {
		t.Fatal(err)
	}
	n, err := d.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 523 {
		t.Fatalf("Count = %d, want 523", n)
	}
}

func TestFromPartitions(t *testing.T) {
	eng := NewEngine()
	d, err := FromPartitions(eng, [][]int{{1, 2}, {3}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPartitions() != 3 {
		t.Fatalf("NumPartitions = %d, want 3", d.NumPartitions())
	}
	got, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Collect = %v, want %v", got, want)
		}
	}
	if _, err := FromPartitions[int](eng, nil); err == nil {
		t.Fatal("empty partition list accepted")
	}
}

func TestMapFilterFlatMap(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(20), 4)
	if err != nil {
		t.Fatal(err)
	}
	doubled := Map(d, func(x int) int { return 2 * x })
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	expanded := FlatMap(evens, func(x int) []int { return []int{x, x + 1} })
	got, err := expanded.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// doubled: 0..38 even; evens keeps multiples of 4: 0,4,...,36 (10 values)
	if len(got) != 20 {
		t.Fatalf("got %d records, want 20", len(got))
	}
	if got[0] != 0 || got[1] != 1 || got[2] != 4 || got[3] != 5 {
		t.Fatalf("unexpected prefix: %v", got[:4])
	}
}

func TestMapPartitions(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(10), 3)
	if err != nil {
		t.Fatal(err)
	}
	sums := MapPartitions(d, func(_ int, in []int) ([]int, error) {
		total := 0
		for _, v := range in {
			total += v
		}
		return []int{total}, nil
	})
	got, err := sums.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d partition sums, want 3", len(got))
	}
	total := 0
	for _, v := range got {
		total += v
	}
	if total != 45 {
		t.Fatalf("partition sums total %d, want 45", total)
	}
}

func TestMapPartitionsError(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	bad := MapPartitions(d, func(p int, _ []int) ([]int, error) {
		if p == 1 {
			return nil, wantErr
		}
		return nil, nil
	})
	if _, err := bad.Collect(); !errors.Is(err, wantErr) {
		t.Fatalf("Collect error = %v, want %v", err, wantErr)
	}
}

func TestUnionReduceDecomposition(t *testing.T) {
	// The associativity identity UPA relies on:
	// Reduce(Union(a, b)) == f(Reduce(a), Reduce(b)).
	eng := NewEngine()
	sum := func(a, b int) int { return a + b }
	f := func(xsRaw, ysRaw []int16) bool {
		xs := make([]int, 0, len(xsRaw)+1)
		for _, v := range xsRaw {
			xs = append(xs, int(v))
		}
		ys := make([]int, 0, len(ysRaw)+1)
		for _, v := range ysRaw {
			ys = append(ys, int(v))
		}
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		a, err := FromSlice(eng, xs, 2)
		if err != nil {
			return false
		}
		b, err := FromSlice(eng, ys, 3)
		if err != nil {
			return false
		}
		u, err := Union(a, b)
		if err != nil {
			return false
		}
		whole, err := Reduce(u, sum)
		if err != nil {
			return false
		}
		ra, err := Reduce(a, sum)
		if err != nil {
			return false
		}
		rb, err := Reduce(b, sum)
		if err != nil {
			return false
		}
		return whole == sum(ra, rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnionAcrossEnginesRejected(t *testing.T) {
	a, err := FromSlice(NewEngine(), []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSlice(NewEngine(), []int{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Union(a, b); err == nil {
		t.Fatal("cross-engine union accepted")
	}
}

func TestReduceEmpty(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, []int{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Reduce(d, func(a, b int) int { return a + b }); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("Reduce(empty) error = %v, want ErrEmptyDataset", err)
	}
}

func TestReduceSkipsEmptyPartitions(t *testing.T) {
	eng := NewEngine()
	d, err := FromPartitions(eng, [][]int{{}, {5}, {}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reduce(d, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if got != 12 {
		t.Fatalf("Reduce = %d, want 12", got)
	}
}

func TestAggregate(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(100), 7)
	if err != nil {
		t.Fatal(err)
	}
	count, err := Aggregate(d, 0,
		func(acc int, _ int) int { return acc + 1 },
		func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("Aggregate count = %d, want 100", count)
	}
}

func TestReduceSlice(t *testing.T) {
	if _, ok := ReduceSlice(nil, func(a, b int) int { return a + b }); ok {
		t.Fatal("ReduceSlice of empty slice reported ok")
	}
	got, ok := ReduceSlice([]int{1, 2, 3}, func(a, b int) int { return a + b })
	if !ok || got != 6 {
		t.Fatalf("ReduceSlice = %d, %v; want 6, true", got, ok)
	}
}

func TestSampleDeterministicAndValid(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(1000), 8)
	if err != nil {
		t.Fatal(err)
	}
	recs1, idx1, err := Sample(d, stats.NewRNG(5), 50)
	if err != nil {
		t.Fatal(err)
	}
	recs2, idx2, err := Sample(d, stats.NewRNG(5), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs1) != 50 || len(idx1) != 50 {
		t.Fatalf("sample size = %d/%d, want 50/50", len(recs1), len(idx1))
	}
	for i := range recs1 {
		if recs1[i] != recs2[i] || idx1[i] != idx2[i] {
			t.Fatal("sampling with equal seeds diverged")
		}
		if recs1[i] != idx1[i] { // record i of source equals its index
			t.Fatalf("index %d does not address record %d", idx1[i], recs1[i])
		}
	}
}

func TestRepartition(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(10), 5)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Repartition(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumPartitions() != 2 {
		t.Fatalf("NumPartitions = %d, want 2", r.NumPartitions())
	}
	got, err := r.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("repartition broke order at %d: %d", i, v)
		}
	}
	if _, err := Repartition(d, 0); err == nil {
		t.Fatal("zero partitions accepted")
	}
}

func TestPersistComputesOnce(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(50), 4)
	if err != nil {
		t.Fatal(err)
	}
	mapped := Map(d, func(x int) int { return x * x }).Persist()
	if _, err := mapped.Collect(); err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics().RecordsMapped
	if _, err := mapped.Collect(); err != nil {
		t.Fatal(err)
	}
	after := eng.Metrics().RecordsMapped
	if after != before {
		t.Fatalf("persisted dataset recomputed: mapped %d extra records", after-before)
	}
}
