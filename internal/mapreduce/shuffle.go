package mapreduce

import (
	"context"
	"errors"
	"fmt"

	"upa/internal/chaos"
)

// shuffle materializes a pair dataset and redistributes its records into
// numParts buckets by key hash. Bucket-building is parallelized over the
// engine's worker pool: each source partition is bucketed independently,
// then the per-destination slices are merged in source-partition order, so
// the final bucket contents are byte-identical to a single-threaded pass
// (source partition order, then record order) and all downstream results
// stay reproducible. Each call accounts for one shuffle round and
// len(records) shuffled records — the unit the paper's overhead analysis is
// phrased in (joinDP "triggers shuffling twice", §V-C). Cancelling ctx
// aborts both the parent collection and the bucketing tasks.
//
// The merged buckets land in a partStore: in memory while the engine's
// budget allows, otherwise one spill file per destination bucket, each
// written in source-partition order so its decoded contents are
// byte-identical to the in-memory bucket. Consumers read buckets through
// the store, oblivious to where they live.
func shuffle[K comparable, V any](ctx context.Context, d *Dataset[Pair[K, V]], numParts int) (*partStore[Pair[K, V]], error) {
	// Guard the shuffle boundary itself: Repartition and SortBy validate
	// their own numParts, but shuffle's bucket index is a modulo — a zero or
	// negative count must surface as an error here, never as a runtime
	// panic in a worker.
	if numParts < 1 {
		return nil, fmt.Errorf("mapreduce: %s: shuffle into %d partitions, need >= 1", d.name, numParts)
	}
	parts, err := d.CollectPartitionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	// Per-source-partition bucketing: local[p][b] holds partition p's records
	// destined for bucket b, in record order. Tasks are pure per index, so
	// lineage retry under fault injection is safe.
	local := make([][][]Pair[K, V], len(parts))
	err = d.eng.runTasks(ctx, d.name+":shuffle-bucket", len(parts), func(_ context.Context, p int) error {
		buckets := make([][]Pair[K, V], numParts)
		for _, rec := range parts[p] {
			b := int(hashOf(rec.Key) % uint64(numParts))
			buckets[b] = append(buckets[b], rec)
		}
		local[p] = buckets
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Deterministic per-destination merge, also on the worker pool: bucket b
	// is the concatenation of every partition's local[p][b] in source order.
	buckets := make([][]Pair[K, V], numParts)
	err = d.eng.runTasks(ctx, d.name+":shuffle-merge", numParts, func(_ context.Context, b int) error {
		size := 0
		for p := range local {
			size += len(local[p][b])
		}
		merged := make([]Pair[K, V], 0, size)
		for p := range local {
			merged = append(merged, local[p][b]...)
		}
		buckets[b] = merged
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	d.eng.metrics.ShuffleRounds.Add(1)
	d.eng.metrics.RecordsShuffled.Add(int64(total))
	// The store's recovery hook rebuilds one destination bucket from
	// lineage: iterate the parent's partitions in source order and keep the
	// records hashing to that bucket — the same order the merge above
	// produced. It runs inline rather than on the worker pool, so a
	// recovery changes no task accounting and the engine's fault-invariant
	// metrics (TasksRun) hold even while spill files are being healed.
	recompute := func(rctx context.Context, b int) ([]Pair[K, V], error) {
		var merged []Pair[K, V]
		for p := 0; p < d.numParts; p++ {
			part, err := d.partition(rctx, p)
			if err != nil {
				return nil, err
			}
			for _, rec := range part {
				if int(hashOf(rec.Key)%uint64(numParts)) == b {
					merged = append(merged, rec)
				}
			}
		}
		return merged, nil
	}
	return storeParts(d.eng, d.name+":shuffle", buckets, recompute)
}

// shuffled lazily wraps a shuffle of d so several child partitions share it.
// The first successful shuffle is memoized; failures (e.g. a cancelled
// context) are retried on the next collection instead of being cached.
type shuffled[K comparable, V any] struct {
	memo memo[*partStore[Pair[K, V]]]
}

// get returns the memoized bucket store, materializing it on first use, and
// bucket reads destination bucket b out of it.
func (s *shuffled[K, V]) get(ctx context.Context, d *Dataset[Pair[K, V]], numParts int) (*partStore[Pair[K, V]], error) {
	return s.memo.get(func() (*partStore[Pair[K, V]], error) { return shuffleWithRetry(ctx, d, numParts) })
}

func (s *shuffled[K, V]) bucket(ctx context.Context, d *Dataset[Pair[K, V]], numParts, b int) ([]Pair[K, V], error) {
	store, err := s.get(ctx, d, numParts)
	if err != nil {
		return nil, err
	}
	return store.get(ctx, b)
}

// shuffleWithRetry materializes a shuffle under the engine's RetryPolicy.
// The chaos injector may fail a materialization attempt transiently before
// any data moves (a lost fetch from a remote shuffle service); such attempts
// are retried with backoff, drawing on the per-materialization retry budget.
// A shuffle whose own tasks exhausted their attempts (ErrTaskFailed) is
// terminal — its tasks already ran, and re-running them would break the
// engine's fault-invariant metrics accounting.
func shuffleWithRetry[K comparable, V any](ctx context.Context, d *Dataset[Pair[K, V]], numParts int) (*partStore[Pair[K, V]], error) {
	eng := d.eng
	inj := eng.inj.Load()
	site := d.name + ":shuffle"
	maxAttempts := eng.policy.Attempts()
	budget := eng.policy.NewBudget()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 1 {
			if !budget.Take() {
				return nil, fmt.Errorf("%w: %s: retry budget exhausted after %d attempts: %w",
					ErrTaskFailed, site, attempt-1, lastErr)
			}
			eng.metrics.ShuffleRetries.Add(1)
			if wait := eng.policy.Backoff(site, 0, attempt-1); wait > 0 {
				eng.metrics.BackoffNanos.Add(int64(wait))
				if !sleepCtx(ctx, wait) {
					return nil, ctx.Err()
				}
			}
		}
		if inj.ShuffleError(site, attempt) {
			lastErr = fmt.Errorf("%w: %s: shuffle attempt %d", chaos.ErrInjected, site, attempt)
			continue
		}
		out, err := shuffle(ctx, d, numParts)
		if err == nil {
			return out, nil
		}
		if errors.Is(err, chaos.ErrInjected) && !errors.Is(err, ErrTaskFailed) {
			lastErr = err
			continue
		}
		return nil, err
	}
	return nil, fmt.Errorf("%w: %s: gave up after %d attempts: %w",
		ErrTaskFailed, site, maxAttempts, lastErr)
}

// joinContexts combines a construction-time bound context with the
// per-action call context: the returned context is cancelled when either is.
// A nil or Background bound context adds nothing. The returned stop function
// releases the watcher and must be called when the computation finishes.
func joinContexts(bound, call context.Context) (context.Context, context.CancelFunc) {
	//upa:allow(ctxpropagation) sentinel comparison against the Background singleton, not a new root context
	if bound == nil || bound == context.Background() {
		return call, func() {}
	}
	merged, cancel := context.WithCancel(call)
	stop := context.AfterFunc(bound, cancel)
	return merged, func() { stop(); cancel() }
}

// CombineByKey is the engine's map-side-combining wide transformation, the
// analogue of Spark's combineByKey. Per source partition — before any data
// moves — every record's value is folded into a per-key combiner C (create
// for the first value of a key, mergeValue for the rest); only the combined
// pairs are shuffled, and each destination bucket merges the per-partition
// combiners with mergeCombiners. mergeCombiners must be commutative and
// associative — exactly the contract UPA and Spark already demand of
// reducers (§II) — which is what makes the pre-shuffle fold output-invariant:
// fold(p1 ++ p2) == mergeCombiners(fold(p1), fold(p2)).
//
// On skewed keys this shrinks RecordsShuffled from O(records) to
// O(partitions × distinct keys); the RecordsPreCombine / RecordsPostCombine /
// RecordsCombinedMapSide counters meter the reduction. Output keys appear in
// deterministic first-seen order within each partition, identical to the
// order a combine-less shuffle would produce.
func CombineByKey[K comparable, V, C any](d *Dataset[Pair[K, V]], create func(V) C, mergeValue func(C, V) C, mergeCombiners Reducer[C]) *Dataset[Pair[K, C]] {
	return combineByKey(nil, d, "combineByKey", create, mergeValue, mergeCombiners)
}

// CombineByKeyCtx is CombineByKey with a bound context: cancelling ctx
// aborts the shuffle even when the dataset is later collected without one.
func CombineByKeyCtx[K comparable, V, C any](ctx context.Context, d *Dataset[Pair[K, V]], create func(V) C, mergeValue func(C, V) C, mergeCombiners Reducer[C]) *Dataset[Pair[K, C]] {
	return combineByKey(ctx, d, "combineByKey", create, mergeValue, mergeCombiners)
}

// mapSideCombine folds each source partition's records into one combiner per
// distinct key, in first-seen order — the narrow half of CombineByKey. Every
// mergeValue application counts as one reduce op, so the total operation
// accounting matches a combine-less reduction exactly.
func mapSideCombine[K comparable, V, C any](d *Dataset[Pair[K, V]], create func(V) C, mergeValue func(C, V) C) *Dataset[Pair[K, C]] {
	return derived[Pair[K, V], Pair[K, C]](d, "combine", d.numParts, func(ctx context.Context, p int) ([]Pair[K, C], error) {
		in, err := d.partition(ctx, p)
		if err != nil {
			return nil, err
		}
		acc := make(map[K]C)
		order := make([]K, 0)
		var combines int64
		for _, rec := range in {
			if cur, ok := acc[rec.Key]; ok {
				acc[rec.Key] = mergeValue(cur, rec.Value)
				combines++
			} else {
				acc[rec.Key] = create(rec.Value)
				order = append(order, rec.Key)
			}
		}
		out := make([]Pair[K, C], len(order))
		for i, k := range order {
			out[i] = Pair[K, C]{Key: k, Value: acc[k]}
		}
		d.eng.metrics.ReduceOps.Add(combines)
		d.eng.metrics.RecordsPreCombine.Add(int64(len(in)))
		d.eng.metrics.RecordsPostCombine.Add(int64(len(out)))
		d.eng.metrics.RecordsCombinedMapSide.Add(int64(len(in) - len(out)))
		return out, nil
	})
}

// combineByKey wires the map-side combine ahead of the shuffle and merges
// the per-partition combiners per destination bucket.
func combineByKey[K comparable, V, C any](bound context.Context, d *Dataset[Pair[K, V]], name string, create func(V) C, mergeValue func(C, V) C, mergeCombiners Reducer[C]) *Dataset[Pair[K, C]] {
	combined := mapSideCombine(d, create, mergeValue)
	sh := &shuffled[K, C]{}
	numParts := d.numParts
	return derived[Pair[K, C], Pair[K, C]](combined, name, numParts, func(ctx context.Context, p int) ([]Pair[K, C], error) {
		sctx, stop := joinContexts(bound, ctx)
		defer stop()
		bucket, err := sh.bucket(sctx, combined, numParts, p)
		if err != nil {
			return nil, err
		}
		acc := make(map[K]C)
		order := make([]K, 0)
		for _, rec := range bucket {
			if cur, ok := acc[rec.Key]; ok {
				acc[rec.Key] = mergeCombiners(cur, rec.Value)
				d.eng.metrics.ReduceOps.Add(1)
			} else {
				acc[rec.Key] = rec.Value
				order = append(order, rec.Key)
			}
		}
		out := make([]Pair[K, C], len(order))
		for i, k := range order {
			out[i] = Pair[K, C]{Key: k, Value: acc[k]}
		}
		return out, nil
	})
}

// ReduceByKey combines all values of each key with the commutative,
// associative reducer f. It is a wide transformation: one shuffle round,
// with a map-side combine ahead of it — each source partition pre-reduces
// its records per key, so only one record per (partition, key) is shuffled.
// Output keys appear in deterministic first-seen order within each
// partition, and because f is associative the combined values are exactly
// the values a combine-less fold would have produced.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], f Reducer[V]) *Dataset[Pair[K, V]] {
	return combineByKey(nil, d, "reduceByKey", func(v V) V { return v }, f, f)
}

// ReduceByKeyCtx is ReduceByKey with a bound context: cancelling ctx aborts
// the shuffle even when the dataset is later collected without one.
func ReduceByKeyCtx[K comparable, V any](ctx context.Context, d *Dataset[Pair[K, V]], f Reducer[V]) *Dataset[Pair[K, V]] {
	return combineByKey(ctx, d, "reduceByKey", func(v V) V { return v }, f, f)
}

// GroupByKey gathers all values of each key into a slice, in deterministic
// order. One shuffle round. Unlike ReduceByKey there is no map-side combine:
// grouping eliminates nothing, so every record ships to its bucket (the same
// reason Spark's groupByKey never combines).
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[Pair[K, []V]] {
	return groupByKey(nil, d)
}

// GroupByKeyCtx is GroupByKey with a bound context: cancelling ctx aborts
// the shuffle even when the dataset is later collected without one.
func GroupByKeyCtx[K comparable, V any](ctx context.Context, d *Dataset[Pair[K, V]]) *Dataset[Pair[K, []V]] {
	return groupByKey(ctx, d)
}

func groupByKey[K comparable, V any](bound context.Context, d *Dataset[Pair[K, V]]) *Dataset[Pair[K, []V]] {
	sh := &shuffled[K, V]{}
	numParts := d.numParts
	return derived[Pair[K, V], Pair[K, []V]](d, "groupByKey", numParts, func(ctx context.Context, p int) ([]Pair[K, []V], error) {
		sctx, stop := joinContexts(bound, ctx)
		defer stop()
		bucket, err := sh.bucket(sctx, d, numParts, p)
		if err != nil {
			return nil, err
		}
		groups := make(map[K][]V)
		order := make([]K, 0)
		for _, rec := range bucket {
			if _, ok := groups[rec.Key]; !ok {
				order = append(order, rec.Key)
			}
			groups[rec.Key] = append(groups[rec.Key], rec.Value)
		}
		out := make([]Pair[K, []V], len(order))
		for i, k := range order {
			out[i] = Pair[K, []V]{Key: k, Value: groups[k]}
		}
		return out, nil
	})
}

// Joined is the value type produced by Join: one left and one right value
// sharing a key.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// Join computes the inner equi-join of a and b: every (v, w) combination
// with equal keys. Both sides shuffle (two shuffle rounds total — exactly
// the cost vanilla Spark pays once per Join and UPA pays twice in joinDP).
// The output order is deterministic.
//
// Repartition semantics: both sides are rebucketed into
// max(a.NumPartitions(), b.NumPartitions()) buckets, so joining a wide
// dataset against a narrow one never squeezes the wide side through the
// narrow side's partition count. The output has that many partitions.
func Join[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[V, W]]], error) {
	return joinCtx(nil, a, b)
}

// JoinCtx is Join with a bound context: cancelling ctx aborts the shuffles
// even when the dataset is later collected without one.
func JoinCtx[K comparable, V, W any](ctx context.Context, a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[V, W]]], error) {
	return joinCtx(ctx, a, b)
}

func joinCtx[K comparable, V, W any](bound context.Context, a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[V, W]]], error) {
	if a.eng != b.eng {
		return nil, fmt.Errorf("mapreduce: join across engines")
	}
	shA := &shuffled[K, V]{}
	shB := &shuffled[K, W]{}
	numParts := max(a.numParts, b.numParts)
	child := derived[Pair[K, V], Pair[K, Joined[V, W]]](a, "join", numParts, func(ctx context.Context, p int) ([]Pair[K, Joined[V, W]], error) {
		sctx, stop := joinContexts(bound, ctx)
		defer stop()
		left, err := shA.bucket(sctx, a, numParts, p)
		if err != nil {
			return nil, err
		}
		right, err := shB.bucket(sctx, b, numParts, p)
		if err != nil {
			return nil, err
		}
		// Build side: hash the right bucket; probe side: stream the left
		// bucket in order for deterministic output.
		build := make(map[K][]W)
		for _, rec := range right {
			build[rec.Key] = append(build[rec.Key], rec.Value)
		}
		var out []Pair[K, Joined[V, W]]
		for _, rec := range left {
			for _, w := range build[rec.Key] {
				out = append(out, Pair[K, Joined[V, W]]{
					Key:   rec.Key,
					Value: Joined[V, W]{Left: rec.Value, Right: w},
				})
			}
		}
		return out, nil
	})
	return child, nil
}

// CoGroup groups the values of both datasets by key: for every key present
// on either side, the output holds all left values and all right values.
// Two shuffle rounds. Like Join, both sides are rebucketed into
// max(a.NumPartitions(), b.NumPartitions()) buckets.
func CoGroup[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[[]V, []W]]], error) {
	return coGroupCtx(nil, a, b)
}

// CoGroupCtx is CoGroup with a bound context: cancelling ctx aborts the
// shuffles even when the dataset is later collected without one.
func CoGroupCtx[K comparable, V, W any](ctx context.Context, a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[[]V, []W]]], error) {
	return coGroupCtx(ctx, a, b)
}

func coGroupCtx[K comparable, V, W any](bound context.Context, a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[[]V, []W]]], error) {
	if a.eng != b.eng {
		return nil, fmt.Errorf("mapreduce: cogroup across engines")
	}
	shA := &shuffled[K, V]{}
	shB := &shuffled[K, W]{}
	numParts := max(a.numParts, b.numParts)
	child := derived[Pair[K, V], Pair[K, Joined[[]V, []W]]](a, "cogroup", numParts, func(ctx context.Context, p int) ([]Pair[K, Joined[[]V, []W]], error) {
		sctx, stop := joinContexts(bound, ctx)
		defer stop()
		left, err := shA.bucket(sctx, a, numParts, p)
		if err != nil {
			return nil, err
		}
		right, err := shB.bucket(sctx, b, numParts, p)
		if err != nil {
			return nil, err
		}
		lefts := make(map[K][]V)
		rights := make(map[K][]W)
		order := make([]K, 0)
		seen := make(map[K]bool)
		for _, rec := range left {
			if !seen[rec.Key] {
				seen[rec.Key] = true
				order = append(order, rec.Key)
			}
			lefts[rec.Key] = append(lefts[rec.Key], rec.Value)
		}
		for _, rec := range right {
			if !seen[rec.Key] {
				seen[rec.Key] = true
				order = append(order, rec.Key)
			}
			rights[rec.Key] = append(rights[rec.Key], rec.Value)
		}
		out := make([]Pair[K, Joined[[]V, []W]], len(order))
		for i, k := range order {
			out[i] = Pair[K, Joined[[]V, []W]]{
				Key:   k,
				Value: Joined[[]V, []W]{Left: lefts[k], Right: rights[k]},
			}
		}
		return out, nil
	})
	return child, nil
}

// Distinct removes duplicate records of a comparable element type,
// preserving first-seen order. One shuffle round (records must be
// co-located by value to deduplicate globally), with ReduceByKey's map-side
// combine ahead of it: each source partition deduplicates locally first, so
// only one record per (partition, value) is shuffled.
func Distinct[T comparable](d *Dataset[T]) *Dataset[T] {
	pairs := Map(d, func(t T) Pair[T, struct{}] { return Pair[T, struct{}]{Key: t} })
	reduced := ReduceByKey(pairs, func(a, _ struct{}) struct{} { return a })
	return Map(reduced, func(p Pair[T, struct{}]) T { return p.Key })
}
