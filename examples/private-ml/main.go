// Private machine learning: release one differentially private KMeans
// iteration and one private gradient-descent step over clustered feature
// vectors — the two ML workloads of the paper's evaluation, expressed
// directly against the public API with custom Mapper/Reducer/Finalize
// queries.
package main

import (
	"fmt"
	"log"
	"math"

	"upa"
	"upa/internal/lifesci"
)

const (
	dims     = 4
	clusters = 3
	lr       = 0.001
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The life-science-like generator stands in for the paper's proprietary
	// ds1.10 dataset: Gaussian clusters plus a planted linear model with
	// heavy-tailed noise.
	data, err := lifesci.Generate(lifesci.Config{
		Records: 30000, Dims: dims, Clusters: clusters, OutlierFrac: 0.01, Seed: 7,
	})
	if err != nil {
		return err
	}

	session, err := upa.NewSession(upa.WithEpsilon(0.1), upa.WithSeed(7))
	if err != nil {
		return err
	}

	if err := privateKMeans(session, data); err != nil {
		return err
	}
	return privateSGD(session, data)
}

// privateKMeans releases one Lloyd iteration under iDP.
func privateKMeans(session *upa.Session, data *lifesci.Dataset) error {
	// Fixed initialization: the planted centres, perturbed.
	init := make([][]float64, clusters)
	for c := range init {
		init[c] = make([]float64, dims)
		for d := range init[c] {
			init[c][d] = data.TrueCenters[c][d] + 1.5
		}
	}

	stateDim := clusters * (dims + 1) // per-cluster sums plus count
	query := upa.Query[lifesci.Point]{
		Name:      "kmeans-iteration",
		StateDim:  stateDim,
		OutputDim: clusters * dims,
		Map: func(p lifesci.Point) upa.State {
			best, bestDist := 0, math.Inf(1)
			for c := range init {
				var dd float64
				for j, x := range p.Features {
					diff := x - init[c][j]
					dd += diff * diff
				}
				if dd < bestDist {
					best, bestDist = c, dd
				}
			}
			state := make(upa.State, stateDim)
			base := best * (dims + 1)
			copy(state[base:], p.Features)
			state[base+dims] = 1
			return state
		},
		Finalize: func(s upa.State) []float64 {
			out := make([]float64, clusters*dims)
			for c := 0; c < clusters; c++ {
				base := c * (dims + 1)
				for j := 0; j < dims; j++ {
					if count := s[base+dims]; count > 0 {
						out[c*dims+j] = s[base+j] / count
					} else {
						out[c*dims+j] = init[c][j]
					}
				}
			}
			return out
		},
	}

	res, err := upa.Release(session, query, data.Points, data.RandomPoint)
	if err != nil {
		return err
	}
	fmt.Println("private KMeans iteration:")
	for c := 0; c < clusters; c++ {
		noisy := res.Output[c*dims : (c+1)*dims]
		fmt.Printf("  cluster %d: released centre %s, planted %s (distance %.3f)\n",
			c, vec(noisy), vec(data.TrueCenters[c]), dist(noisy, data.TrueCenters[c]))
	}
	//upa:allow(dpflow) reviewed: pedagogical demo over synthetic data, sensitivity shown to teach calibration
	fmt.Printf("  max per-coordinate sensitivity: %.5f\n\n", maxOf(res.Sensitivity))
	return nil
}

// privateSGD releases one batch gradient step of least-squares regression.
func privateSGD(session *upa.Session, data *lifesci.Dataset) error {
	w0 := make([]float64, dims+1) // start from zero weights

	query := upa.Query[lifesci.Point]{
		Name:      "sgd-step",
		StateDim:  dims + 2, // gradient plus count
		OutputDim: dims + 1,
		Map: func(p lifesci.Point) upa.State {
			pred := w0[dims]
			for j, x := range p.Features {
				pred += w0[j] * x
			}
			resid := pred - p.Target
			state := make(upa.State, dims+2)
			for j, x := range p.Features {
				state[j] = resid * x
			}
			state[dims] = resid
			state[dims+1] = 1
			return state
		},
		Finalize: func(s upa.State) []float64 {
			out := make([]float64, dims+1)
			for j := 0; j <= dims; j++ {
				if s[dims+1] > 0 {
					out[j] = w0[j] - lr*s[j]/s[dims+1]
				}
			}
			return out
		},
	}

	res, err := upa.Release(session, query, data.Points, data.RandomPoint)
	if err != nil {
		return err
	}
	fmt.Println("private SGD step:")
	fmt.Printf("  released weights: %s\n", vec(res.Output))
	fmt.Printf("  planted weights:  %s\n", vec(data.TrueWeights))
	//upa:allow(dpflow) reviewed: pedagogical demo over synthetic data, sensitivity shown to teach calibration
	fmt.Printf("  per-coordinate sensitivity: %s\n", vec(res.Sensitivity))
	fmt.Printf("  (one ε=%.2g release per step; iterate with a budget per step for full training)\n",
		session.Epsilon())
	return nil
}

func vec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + "]"
}

func dist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func maxOf(v []float64) float64 {
	out := math.Inf(-1)
	for _, x := range v {
		out = math.Max(out, x)
	}
	return out
}
