package chaos

import (
	"errors"
	"testing"
)

// TestDiskFaultsDeterministic pins the core contract: two injectors with the
// same policy make identical disk-fault decisions at identical
// (site, file, attempt) coordinates, and a different seed produces a
// different pattern.
func TestDiskFaultsDeterministic(t *testing.T) {
	pol := Policy{
		Seed:                42,
		DiskWriteErrorRate:  0.3,
		DiskENOSPCRate:      0.3,
		DiskTornWriteRate:   0.3,
		DiskRenameErrorRate: 0.3,
		DiskReadErrorRate:   0.3,
		DiskCorruptionRate:  0.3,
	}
	a, b := New(pol), New(pol)
	other := New(Policy{Seed: 43, DiskReadErrorRate: 0.3})

	type decision func(j *Injector, site, file string, attempt int) bool
	decisions := map[string]decision{
		"write":   (*Injector).DiskWriteError,
		"enospc":  (*Injector).DiskENOSPC,
		"torn":    (*Injector).DiskTornWrite,
		"rename":  (*Injector).DiskRenameError,
		"read":    (*Injector).DiskReadError,
		"corrupt": (*Injector).DiskCorruption,
	}
	files := []string{"000001-source-0000.spill", "000002-q:shuffle-0001.spill"}
	for name, dec := range decisions {
		for _, file := range files {
			for attempt := 1; attempt <= 8; attempt++ {
				if dec(a, "spill", file, attempt) != dec(b, "spill", file, attempt) {
					t.Fatalf("%s decision diverged at (%s, %d) under equal seeds", name, file, attempt)
				}
			}
		}
	}
	// Different seeds must disagree somewhere across this coordinate sweep.
	same := true
	for _, file := range files {
		for attempt := 1; attempt <= 32; attempt++ {
			if a.DiskReadError("spill", file, attempt) != other.DiskReadError("spill", file, attempt) {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical read-error patterns over 64 decisions")
	}
}

// TestDiskFaultKindsIndependent checks the hash streams are separated by
// kind: at a fixed coordinate where one fault fires, the others must be free
// to not fire (rate 0 never fires regardless of shared coordinates).
func TestDiskFaultKindsIndependent(t *testing.T) {
	j := New(Policy{Seed: 7, DiskTornWriteRate: 0.999999})
	if !j.DiskTornWrite("spill", "f.spill", 1) {
		t.Fatal("torn write at rate ~1 did not fire")
	}
	if j.DiskWriteError("spill", "f.spill", 1) || j.DiskENOSPC("spill", "f.spill", 1) ||
		j.DiskRenameError("spill", "f.spill", 1) || j.DiskReadError("spill", "f.spill", 1) ||
		j.DiskCorruption("spill", "f.spill", 1) {
		t.Fatal("zero-rate disk fault fired at coordinates where torn write fires")
	}
}

func TestDiskFaultAttemptRerolls(t *testing.T) {
	j := New(Policy{Seed: 1, DiskReadErrorRate: 0.5})
	saw := map[bool]bool{}
	for attempt := 1; attempt <= 64; attempt++ {
		saw[j.DiskReadError("spill", "f.spill", attempt)] = true
	}
	if !saw[true] || !saw[false] {
		t.Fatalf("64 attempts at rate 0.5 never re-rolled: saw %v", saw)
	}
}

func TestDiskCountersAndNilSafety(t *testing.T) {
	var nilInj *Injector
	if nilInj.DiskWriteError("s", "f", 1) || nilInj.DiskCorruption("s", "f", 1) || nilInj.DiskVariate("s", "f", 1) != 0 {
		t.Fatal("nil injector must inject nothing")
	}
	j := New(Policy{Seed: 3, DiskReadErrorRate: 0.999999, DiskCorruptionRate: 0.999999})
	for attempt := 1; attempt <= 5; attempt++ {
		j.DiskReadError("spill", "f.spill", attempt)
		j.DiskCorruption("spill", "f.spill", attempt)
	}
	c := j.Snapshot()
	if c.DiskReadErrors == 0 || c.DiskCorruptions == 0 {
		t.Fatalf("counters not incremented: %+v", c)
	}
}

func TestDiskVariateStableAndKindSeparated(t *testing.T) {
	j := New(Policy{Seed: 11, DiskCorruptionRate: 0.5})
	v1 := j.DiskVariate("spill", "f.spill", 2)
	v2 := j.DiskVariate("spill", "f.spill", 2)
	if v1 != v2 {
		t.Fatal("DiskVariate not stable at fixed coordinates")
	}
	if j.DiskVariate("spill", "f.spill", 3) == v1 && j.DiskVariate("spill", "g.spill", 2) == v1 {
		t.Fatal("DiskVariate insensitive to coordinates")
	}
}

func TestErrNoSpaceIsInjected(t *testing.T) {
	if !errors.Is(ErrNoSpace, ErrInjected) {
		t.Fatal("ErrNoSpace must wrap ErrInjected so retry layers treat it as transient")
	}
}

func TestPolicyValidateDiskRates(t *testing.T) {
	if err := (Policy{DiskENOSPCRate: 1.0}).Validate(); err == nil {
		t.Fatal("DiskENOSPCRate 1.0 must be rejected")
	}
	if err := (Policy{DiskCorruptionRate: -0.1}).Validate(); err == nil {
		t.Fatal("negative DiskCorruptionRate must be rejected")
	}
	if err := (Policy{DiskTornWriteRate: 0.5}).Validate(); err != nil {
		t.Fatalf("valid disk policy rejected: %v", err)
	}
}
