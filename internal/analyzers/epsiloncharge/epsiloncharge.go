// Package epsiloncharge polices the ε ledger. UPA's privacy accounting
// (System.EpsilonSpent) is only meaningful if the ledger is charged exactly
// once per successful release: charging twice over-reports spend, and a
// release path that returns success without charging silently leaks budget —
// the DP-deployment drift Garrido et al. document. The analyzer pins the
// write surface down to one blessed site:
//
//   - the raw accumulator (epsilonSpentBits) may be touched only by the
//     System.chargeEpsilon / System.EpsilonSpent accessors;
//   - chargeEpsilon may be called only from the release entry point RunCtx;
//   - inside the charging function, no success return (`return x, nil` with
//     a non-nil result) may occur before the charge.
//
// The serving layer (internal/serve) repeats the pattern one level up, on
// the hierarchical tenant→user ledger, and gets the same treatment:
//
//   - the raw spend counters (spentEps) move only through applyDeltaLocked and
//     are read only through spentLocked;
//   - applyDeltaLocked may be called only from the admission helpers
//     ChargeAdmission / RefundAdmission and the restart path replayEntry;
//   - ChargeAdmission / RefundAdmission may be called only from the blessed
//     admission site execute, which must charge exactly once and must not
//     return success before the charge.
package epsiloncharge

import (
	"fmt"
	"go/ast"
	"go/token"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the epsiloncharge analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "epsiloncharge",
	Doc: "restricts ε-ledger writes (epsilonSpentBits / chargeEpsilon) to the " +
		"blessed release site and flags release paths that can return success " +
		"before charging",
	Run: run,
}

const (
	ledgerField  = "epsilonSpentBits"
	chargeHelper = "chargeEpsilon"
	readAccessor = "EpsilonSpent"
	blessedSite  = "RunCtx"
)

// The serving layer's names (internal/serve). Matching is by name, like the
// core rules: the field and helpers are unique to the serving ledger.
const (
	serveLedgerField = "spentEps"
	serveDeltaHelper = "applyDeltaLocked"
	serveReadHelper  = "spentLocked"
	serveChargeFn    = "ChargeAdmission"
	serveRefundFn    = "RefundAdmission"
	serveReplayFn    = "replayEntry"
	serveBlessed     = "execute"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLedgerAccess(pass, fn)
			checkChargeCalls(pass, fn)
			checkServeLedgerAccess(pass, fn)
			checkServeDeltaCalls(pass, fn)
			checkServeAdmissionCalls(pass, fn)
		}
	}
	return nil
}

// calleeFuncName names the called function for both plain (applyDeltaLocked(...))
// and method/package-qualified (l.ChargeAdmission(...)) call shapes.
func calleeFuncName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkLedgerAccess flags any mention of the raw accumulator outside the
// two accessors (and the struct definition itself, which is not a FuncDecl).
func checkLedgerAccess(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Name.Name == chargeHelper || fn.Name.Name == readAccessor {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == ledgerField {
			pass.Reportf(sel.Pos(), fmt.Sprintf(
				"direct access to the ε ledger (%s) outside %s/%s; all ledger traffic must flow through the accessors so charging stays exactly-once",
				ledgerField, chargeHelper, readAccessor))
		}
		return true
	})
}

// checkChargeCalls enforces that chargeEpsilon is called only from the
// blessed release site, and that within the charging function no success
// return precedes the charge.
func checkChargeCalls(pass *analysis.Pass, fn *ast.FuncDecl) {
	var chargePos token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != chargeHelper {
			return true
		}
		if fn.Name.Name == chargeHelper {
			return true // the helper's own recursive structure, if any
		}
		if fn.Name.Name != blessedSite {
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"%s called outside the blessed release site %s; a second charge site makes ε accounting path-dependent", chargeHelper, blessedSite))
			return true
		}
		if chargePos == token.NoPos {
			chargePos = call.Pos()
		} else {
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"%s charges the ledger more than once; releases must charge exactly once", blessedSite))
		}
		return true
	})
	if chargePos == token.NoPos {
		return
	}
	// Success returns before the charge: `return x, nil` with non-nil x.
	// Nested function literals (stage bodies, commit closures) return to
	// their own callers, not out of the release path, so don't descend.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() >= chargePos {
			return true
		}
		if isSuccessReturn(ret) {
			pass.Reportf(ret.Pos(), fmt.Sprintf(
				"release path returns success before %s charges the ledger; a successful release must always be charged", chargeHelper))
		}
		return true
	})
}

// checkServeLedgerAccess flags any mention of the serving ledger's raw
// spend counters outside the delta/read helpers.
func checkServeLedgerAccess(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Name.Name == serveDeltaHelper || fn.Name.Name == serveReadHelper {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == serveLedgerField {
			pass.Reportf(sel.Pos(), fmt.Sprintf(
				"direct access to the serving ε ledger (%s) outside %s/%s; tenant and user spend must move through the delta helpers so admission charging stays exactly-once",
				serveLedgerField, serveDeltaHelper, serveReadHelper))
		}
		return true
	})
}

// checkServeDeltaCalls restricts applyDeltaLocked to the admission helpers and the
// restart replay path: anywhere else, a delta bypasses both the budget
// checks and the journal.
func checkServeDeltaCalls(pass *analysis.Pass, fn *ast.FuncDecl) {
	switch fn.Name.Name {
	case serveChargeFn, serveRefundFn, serveReplayFn, serveDeltaHelper:
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeFuncName(call) != serveDeltaHelper {
			return true
		}
		pass.Reportf(call.Pos(), fmt.Sprintf(
			"%s called outside %s/%s/%s; ledger deltas elsewhere bypass budget checks and the journal",
			serveDeltaHelper, serveChargeFn, serveRefundFn, serveReplayFn))
		return true
	})
}

// checkServeAdmissionCalls enforces that ChargeAdmission/RefundAdmission are
// called only from the blessed admission site, and that the site charges
// exactly once with no success return reachable before the charge.
func checkServeAdmissionCalls(pass *analysis.Pass, fn *ast.FuncDecl) {
	switch fn.Name.Name {
	case serveChargeFn, serveRefundFn:
		return
	}
	var chargePos token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeFuncName(call)
		if name != serveChargeFn && name != serveRefundFn {
			return true
		}
		if fn.Name.Name != serveBlessed {
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"%s called outside the blessed admission site %s; a second admission site makes tenant ε accounting path-dependent", name, serveBlessed))
			return true
		}
		if name != serveChargeFn {
			return true
		}
		if chargePos == token.NoPos {
			chargePos = call.Pos()
		} else {
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"%s charges admission more than once; a query must charge exactly once", serveBlessed))
		}
		return true
	})
	if chargePos == token.NoPos {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() >= chargePos {
			return true
		}
		if isSuccessReturn(ret) {
			pass.Reportf(ret.Pos(), fmt.Sprintf(
				"admission path returns success before %s charges the ledger; an admitted query must always be charged", serveChargeFn))
		}
		return true
	})
}

// isSuccessReturn matches `return <non-nil>, nil` — the (result, error)
// success shape. Single-value and bare returns are not release successes.
func isSuccessReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) != 2 {
		return false
	}
	first, last := ret.Results[0], ret.Results[1]
	if ident, ok := first.(*ast.Ident); ok && ident.Name == "nil" {
		return false
	}
	ident, ok := last.(*ast.Ident)
	return ok && ident.Name == "nil"
}
