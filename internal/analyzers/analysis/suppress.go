package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"regexp"
	"strings"
)

// allowRE matches one //upa:allow(<analyzer>) annotation. The annotation
// must start its comment — prose that merely mentions the marker (analyzer
// package docs, say) is not an annotation. The justification is everything
// after the closing parenthesis up to the next comment marker (so trailing
// test-harness markers such as "// want ..." never count as a
// justification).
var allowRE = regexp.MustCompile(`^//upa:allow\(([a-zA-Z0-9_-]+)\)(.*)$`)

// allowance is one parsed //upa:allow annotation.
type allowance struct {
	analyzer      string
	justification string
	pos           token.Pos
	line          int
}

// parseAllowances extracts every //upa:allow annotation from the package's
// comments, keyed by (file, line).
func parseAllowances(pkg *Package) []allowance {
	var out []allowance
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				just := m[2]
				if i := strings.Index(just, "//"); i >= 0 {
					just = just[:i]
				}
				out = append(out, allowance{
					analyzer:      m[1],
					justification: strings.TrimSpace(just),
					pos:           c.Pos(),
					line:          pkg.Fset.Position(c.Pos()).Line,
				})
			}
		}
	}
	return out
}

// nextNonTrivialLine finds the line a standalone annotation attaches to:
// scanning forward from the annotation's line, it skips blank lines and
// comment-only lines and returns the first substantive one. The scan stops
// (returning 0) when it hits a line of closing punctuation only — an
// annotation dangling at the end of a block must not silently widen to the
// next declaration — or after a few lines without finding code. source is
// the annotation's file split into lines (1-based access via index-1).
func nextNonTrivialLine(source []string, annotationLine int) int {
	const horizon = 5
	for line := annotationLine + 1; line <= annotationLine+horizon && line <= len(source); line++ {
		text := strings.TrimSpace(source[line-1])
		if text == "" || strings.HasPrefix(text, "//") {
			continue
		}
		if strings.Trim(text, "{}()[],;") == "" {
			// Closing (or opening) punctuation only: scope boundary.
			return 0
		}
		return line
	}
	return 0
}

// fileLines reads and caches the source lines of the files the package's
// annotations live in; suppression scopes are defined in terms of source
// lines, not AST shape.
func fileLines(cache map[string][]string, filename string) []string {
	if lines, ok := cache[filename]; ok {
		return lines
	}
	var lines []string
	if data, err := os.ReadFile(filename); err == nil {
		lines = strings.Split(string(data), "\n")
	}
	cache[filename] = lines
	return lines
}

// applySuppressions resolves the package's //upa:allow annotations against
// the raw diagnostics. An annotation for analyzer A covers A's diagnostics
// on its own line and on the next non-trivial line below (blank and
// comment-only lines are skipped; a closing brace ends the scope, so a
// dangling annotation covers nothing). Matching diagnostics are kept but
// flagged Suppressed. Two classes of annotation misuse are themselves
// reported: annotations without a justification, and justified annotations
// that suppressed nothing for an analyzer in the current run set (stale —
// the pattern they excused is gone and the escape hatch must go with it).
func applySuppressions(pkg *Package, diags []Diagnostic, inSet map[string]bool) []Diagnostic {
	allowances := parseAllowances(pkg)
	type scopeKey struct {
		analyzer string
		file     string
		line     int
	}
	covers := make(map[scopeKey]int) // -> allowance index
	used := make([]bool, len(allowances))
	srcCache := make(map[string][]string)
	var out []Diagnostic
	for i, a := range allowances {
		if a.justification == "" {
			out = append(out, Diagnostic{
				Analyzer: a.analyzer,
				Pos:      a.pos,
				Message:  fmt.Sprintf("upa:allow(%s) requires a justification after the closing parenthesis", a.analyzer),
			})
			continue
		}
		pos := pkg.Fset.Position(a.pos)
		covers[scopeKey{a.analyzer, pos.Filename, a.line}] = i
		if next := nextNonTrivialLine(fileLines(srcCache, pos.Filename), a.line); next > 0 {
			covers[scopeKey{a.analyzer, pos.Filename, next}] = i
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if i, ok := covers[scopeKey{d.Analyzer, pos.Filename, pos.Line}]; ok {
			used[i] = true
			d.Suppressed = true
		}
		out = append(out, d)
	}
	for i, a := range allowances {
		if a.justification == "" || used[i] || !inSet[a.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: a.analyzer,
			Pos:      a.pos,
			Message:  fmt.Sprintf("stale upa:allow(%s): it suppresses no diagnostic; delete the annotation (or restore the pattern it excused)", a.analyzer),
		})
	}
	sortDiagnostics(out)
	return out
}

// EnclosingFuncs returns the stack of function declarations and literals
// enclosing pos in f, outermost first. Analyzers use it to answer "is there
// a context.Context parameter in scope here?".
func EnclosingFuncs(f *ast.File, pos token.Pos) []ast.Node {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() > pos || n.End() <= pos {
			// Prune subtrees that cannot contain pos, but keep walking the
			// file's other top-level declarations.
			_, isFile := n.(*ast.File)
			return isFile
		}
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			stack = append(stack, n)
		}
		return true
	})
	return stack
}
