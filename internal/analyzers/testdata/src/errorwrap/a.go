// Package errorwrap is golden testdata: typed sentinels wrapped, matched,
// compared, and stringified in all the right and wrong ways.
package errorwrap

import (
	"errors"
	"fmt"
)

var ErrCorrupt = errors.New("frame corrupt")

func wrapOK(err error) error {
	if errors.Is(err, ErrCorrupt) {
		return fmt.Errorf("reading frame: %w", ErrCorrupt)
	}
	return err
}

func wrapBad() error {
	return fmt.Errorf("reading frame: %v", ErrCorrupt) // want `wrap ErrCorrupt with %w`
}

func wrapMixedOK(err error) error {
	return fmt.Errorf("spill %d: %w", 7, ErrCorrupt)
}

func cmpBad(err error) bool {
	return err == ErrCorrupt // want `errors.Is`
}

func cmpNeqBad(err error) bool {
	return err != ErrCorrupt // want `errors.Is`
}

func switchBad(err error) string {
	switch err {
	case ErrCorrupt: // want `errors.Is`
		return "corrupt"
	}
	return ""
}

func stringifyBad() string {
	return ErrCorrupt.Error() // want `do not stringify`
}

func nilOK(err error) bool {
	return err == nil
}

func shadowOK() bool {
	ErrCorrupt := errors.New("local shadow")
	return ErrCorrupt != nil
}

func suppressedCmp(err error) bool {
	//upa:allow(errorwrap) identity check against the unwrapped constructor result, reviewed
	return err == ErrCorrupt
}
