package sql

import "fmt"

// Expr is a scalar expression over a row. Expressions are built unbound
// (column references by name) and bound to a schema before execution, so
// per-row evaluation is index-based.
type Expr interface {
	// bind resolves column references against schema and returns the
	// expression's result kind.
	bind(schema Schema) (boundExpr, Kind, error)
	// describe renders the expression for diagnostics.
	describe() string
}

// boundExpr evaluates against a concrete row.
type boundExpr func(Row) (Value, error)

// Col references a column by name.
func Col(name string) Expr { return colExpr{name: name} }

type colExpr struct{ name string }

func (e colExpr) bind(schema Schema) (boundExpr, Kind, error) {
	idx, err := schema.IndexOf(e.name)
	if err != nil {
		return nil, 0, err
	}
	kind := schema[idx].Kind
	return func(r Row) (Value, error) {
		if idx >= len(r) {
			return Value{}, fmt.Errorf("sql: row has %d columns, need %d", len(r), idx+1)
		}
		return r[idx], nil
	}, kind, nil
}

func (e colExpr) describe() string { return e.name }

// Lit wraps a constant value.
func Lit(v Value) Expr { return litExpr{v: v} }

type litExpr struct{ v Value }

func (e litExpr) bind(Schema) (boundExpr, Kind, error) {
	v := e.v
	return func(Row) (Value, error) { return v, nil }, v.Kind(), nil
}

func (e litExpr) describe() string { return e.v.String() }

// binOp is the operator of a binary expression.
type binOp int

const (
	opAdd binOp = iota + 1
	opSub
	opMul
	opDiv
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe
	opAnd
	opOr
)

var opNames = map[binOp]string{
	opAdd: "+", opSub: "-", opMul: "*", opDiv: "/",
	opEq: "=", opNe: "<>", opLt: "<", opLe: "<=", opGt: ">", opGe: ">=",
	opAnd: "AND", opOr: "OR",
}

type binExpr struct {
	op          binOp
	left, right Expr
}

// Arithmetic constructors.
func Add(a, b Expr) Expr { return binExpr{op: opAdd, left: a, right: b} }
func Sub(a, b Expr) Expr { return binExpr{op: opSub, left: a, right: b} }
func Mul(a, b Expr) Expr { return binExpr{op: opMul, left: a, right: b} }
func Div(a, b Expr) Expr { return binExpr{op: opDiv, left: a, right: b} }

// Comparison constructors.
func Eq(a, b Expr) Expr { return binExpr{op: opEq, left: a, right: b} }
func Ne(a, b Expr) Expr { return binExpr{op: opNe, left: a, right: b} }
func Lt(a, b Expr) Expr { return binExpr{op: opLt, left: a, right: b} }
func Le(a, b Expr) Expr { return binExpr{op: opLe, left: a, right: b} }
func Gt(a, b Expr) Expr { return binExpr{op: opGt, left: a, right: b} }
func Ge(a, b Expr) Expr { return binExpr{op: opGe, left: a, right: b} }

// Logical constructors.
func And(a, b Expr) Expr { return binExpr{op: opAnd, left: a, right: b} }
func Or(a, b Expr) Expr  { return binExpr{op: opOr, left: a, right: b} }

// Not negates a boolean expression.
func Not(e Expr) Expr { return notExpr{inner: e} }

type notExpr struct{ inner Expr }

func (e notExpr) bind(schema Schema) (boundExpr, Kind, error) {
	inner, kind, err := e.inner.bind(schema)
	if err != nil {
		return nil, 0, err
	}
	if kind != KindBool {
		return nil, 0, fmt.Errorf("sql: NOT over %s", kind)
	}
	return func(r Row) (Value, error) {
		v, err := inner(r)
		if err != nil {
			return Value{}, err
		}
		b, _ := v.AsBool()
		return Bool(!b), nil
	}, KindBool, nil
}

func (e notExpr) describe() string { return "NOT " + e.inner.describe() }

func (e binExpr) describe() string {
	return "(" + e.left.describe() + " " + opNames[e.op] + " " + e.right.describe() + ")"
}

func (e binExpr) bind(schema Schema) (boundExpr, Kind, error) {
	left, lk, err := e.left.bind(schema)
	if err != nil {
		return nil, 0, err
	}
	right, rk, err := e.right.bind(schema)
	if err != nil {
		return nil, 0, err
	}
	switch e.op {
	case opAdd, opSub, opMul, opDiv:
		if !numeric(lk) || !numeric(rk) {
			return nil, 0, fmt.Errorf("sql: %s over %s and %s", opNames[e.op], lk, rk)
		}
		// Integer arithmetic stays integral except division.
		outKind := KindFloat
		if lk == KindInt && rk == KindInt && e.op != opDiv {
			outKind = KindInt
		}
		op := e.op
		return func(r Row) (Value, error) {
			lv, err := left(r)
			if err != nil {
				return Value{}, err
			}
			rv, err := right(r)
			if err != nil {
				return Value{}, err
			}
			if outKind == KindInt {
				li, _ := lv.AsInt()
				ri, _ := rv.AsInt()
				switch op {
				case opAdd:
					return Int(li + ri), nil
				case opSub:
					return Int(li - ri), nil
				default:
					return Int(li * ri), nil
				}
			}
			lf, _ := lv.AsFloat()
			rf, _ := rv.AsFloat()
			switch op {
			case opAdd:
				return Float(lf + rf), nil
			case opSub:
				return Float(lf - rf), nil
			case opMul:
				return Float(lf * rf), nil
			default:
				if rf == 0 {
					return Value{}, fmt.Errorf("sql: division by zero in %s", e.describe())
				}
				return Float(lf / rf), nil
			}
		}, outKind, nil

	case opEq, opNe, opLt, opLe, opGt, opGe:
		op := e.op
		return func(r Row) (Value, error) {
			lv, err := left(r)
			if err != nil {
				return Value{}, err
			}
			rv, err := right(r)
			if err != nil {
				return Value{}, err
			}
			// Equality over identical kinds short-circuits; mixed numeric
			// kinds and orderings go through Compare.
			if (op == opEq || op == opNe) && lv.Kind() == rv.Kind() {
				eq := lv == rv
				if op == opNe {
					eq = !eq
				}
				return Bool(eq), nil
			}
			c, err := Compare(lv, rv)
			if err != nil {
				return Value{}, fmt.Errorf("sql: %s: %w", e.describe(), err)
			}
			var out bool
			switch op {
			case opEq:
				out = c == 0
			case opNe:
				out = c != 0
			case opLt:
				out = c < 0
			case opLe:
				out = c <= 0
			case opGt:
				out = c > 0
			default:
				out = c >= 0
			}
			return Bool(out), nil
		}, KindBool, nil

	case opAnd, opOr:
		if lk != KindBool || rk != KindBool {
			return nil, 0, fmt.Errorf("sql: %s over %s and %s", opNames[e.op], lk, rk)
		}
		isAnd := e.op == opAnd
		return func(r Row) (Value, error) {
			lv, err := left(r)
			if err != nil {
				return Value{}, err
			}
			lb, _ := lv.AsBool()
			if isAnd && !lb {
				return Bool(false), nil
			}
			if !isAnd && lb {
				return Bool(true), nil
			}
			rv, err := right(r)
			if err != nil {
				return Value{}, err
			}
			rb, _ := rv.AsBool()
			return Bool(rb), nil
		}, KindBool, nil
	default:
		return nil, 0, fmt.Errorf("sql: unknown operator %d", e.op)
	}
}

func numeric(k Kind) bool { return k == KindInt || k == KindFloat }
