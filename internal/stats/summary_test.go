package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want Summary
	}{
		{"empty", nil, Summary{}},
		{"single", []float64{3}, Summary{Count: 1, Mean: 3, Min: 3, Max: 3}},
		{"pair", []float64{1, 3}, Summary{Count: 2, Mean: 2, StdDev: math.Sqrt2, Min: 1, Max: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Summarize(tt.xs)
			if got.Count != tt.want.Count || math.Abs(got.Mean-tt.want.Mean) > 1e-12 ||
				math.Abs(got.StdDev-tt.want.StdDev) > 1e-12 ||
				got.Min != tt.want.Min || got.Max != tt.want.Max {
				t.Errorf("Summarize(%v) = %+v, want %+v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Errorf("RMSE of identical = %v, %v; want 0, nil", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Sqrt(12.5); math.Abs(got-want) > 1e-12 {
		t.Errorf("RMSE = %v, want %v", got, want)
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := RMSE(nil, nil); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestRelativeRMSE(t *testing.T) {
	got, err := RelativeRMSE([]float64{11, 22}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt((1.0+4.0)/2) / 15
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RelativeRMSE = %v, want %v", got, want)
	}
	// Zero-mean truth falls back to the unnormalized RMSE.
	got, err = RelativeRMSE([]float64{1, -1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("zero-truth RelativeRMSE = %v, want 1", got)
	}
}

func TestEmpiricalQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, tt := range tests {
		got, err := EmpiricalQuantile(xs, tt.q)
		if err != nil {
			t.Fatalf("quantile %v: %v", tt.q, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("EmpiricalQuantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if xs[0] != 4 {
		t.Error("EmpiricalQuantile mutated its input")
	}
	if _, err := EmpiricalQuantile(nil, 0.5); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := EmpiricalQuantile(xs, 1.5); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestEmpiricalQuantileProperties(t *testing.T) {
	f := func(raw []float64, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		got, err := EmpiricalQuantile(xs, q)
		if err != nil {
			return false
		}
		sorted := make([]float64, len(xs))
		copy(sorted, xs)
		sort.Float64s(sorted)
		// The quantile always lies within [min, max].
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageFraction(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := CoverageFraction(xs, 2, 4); got != 0.6 {
		t.Errorf("coverage = %v, want 0.6", got)
	}
	if got := CoverageFraction(xs, 0, 10); got != 1 {
		t.Errorf("full coverage = %v, want 1", got)
	}
	if got := CoverageFraction(nil, 0, 1); got != 1 {
		t.Errorf("vacuous coverage = %v, want 1", got)
	}
}

func TestKSStatistic(t *testing.T) {
	// Samples drawn from the reference distribution have a small statistic
	// (expected O(1/sqrt(n))).
	rng := NewRNG(71)
	dist := Normal{Mu: 2, Sigma: 3}
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = dist.Sample(rng)
	}
	ks, err := KSStatistic(xs, dist)
	if err != nil {
		t.Fatal(err)
	}
	if ks > 0.03 {
		t.Errorf("KS of matching sample = %v, want small", ks)
	}
	// A grossly shifted distribution scores near 1.
	ks, err = KSStatistic(xs, Normal{Mu: 100, Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ks < 0.9 {
		t.Errorf("KS of mismatched sample = %v, want near 1", ks)
	}
	// A two-point sample against its own MLE fit exposes non-normality.
	binary := make([]float64, 0, 100)
	for i := 0; i < 100; i++ {
		binary = append(binary, float64(i%2))
	}
	fit, err := FitNormalMLE(binary)
	if err != nil {
		t.Fatal(err)
	}
	ks, err = KSStatistic(binary, fit)
	if err != nil {
		t.Fatal(err)
	}
	if ks < 0.2 {
		t.Errorf("KS of binary sample vs normal fit = %v, want large", ks)
	}
	if _, err := KSStatistic(nil, dist); err == nil {
		t.Error("empty sample accepted")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, -1, 3}
	h, err := NewHistogram(xs, 0, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.Under, h.Over)
	}
	total := h.Under + h.Over
	for _, c := range h.Counts {
		total += c
	}
	if total != len(xs) {
		t.Errorf("histogram accounts for %d values, want %d", total, len(xs))
	}
	// Upper boundary value lands in the last bin.
	if h.Counts[3] == 0 {
		t.Error("value at hi boundary not counted in last bin")
	}
	if h.MaxCount() < 1 {
		t.Error("MaxCount of populated histogram is zero")
	}
	if _, err := NewHistogram(xs, 2, 2, 4); err == nil {
		t.Error("empty interval accepted")
	}
	if _, err := NewHistogram(xs, 0, 1, 0); err == nil {
		t.Error("zero bins accepted")
	}
}
