package stats

import (
	"fmt"
	"math"
)

// Laplace is a Laplace distribution centred at Mu with scale B.
type Laplace struct {
	Mu float64
	B  float64
}

// Sample draws one variate via inverse-transform sampling.
func (l Laplace) Sample(rng *RNG) float64 {
	// u uniform in (-1/2, 1/2]; avoid u == -1/2 exactly (log 0).
	u := rng.Float64() - 0.5
	if u == -0.5 {
		u = 0.5
	}
	if u < 0 {
		return l.Mu + l.B*math.Log(1+2*u)
	}
	return l.Mu - l.B*math.Log(1-2*u)
}

// PDF returns the density at x.
func (l Laplace) PDF(x float64) float64 {
	if l.B <= 0 {
		return 0
	}
	return math.Exp(-math.Abs(x-l.Mu)/l.B) / (2 * l.B)
}

// Mechanism is the Laplace mechanism of differential privacy: it perturbs
// query outputs with Laplace noise scaled to sensitivity/epsilon. A zero
// Mechanism is not valid; construct with NewMechanism.
type Mechanism struct {
	epsilon float64
	rng     *RNG
}

// NewMechanism builds a Laplace mechanism with privacy budget epsilon per
// release, drawing noise deterministically from rng. It returns an error for
// a non-positive epsilon.
func NewMechanism(epsilon float64, rng *RNG) (*Mechanism, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("stats: epsilon must be positive, got %v", epsilon)
	}
	if rng == nil {
		rng = NewRNG(0)
	}
	return &Mechanism{epsilon: epsilon, rng: rng}, nil
}

// Epsilon reports the per-release privacy budget.
func (m *Mechanism) Epsilon() float64 { return m.epsilon }

// Perturb returns value + Lap(sensitivity/epsilon). A zero sensitivity means
// the output cannot change between neighbouring datasets, so no noise is
// required and the value is returned unchanged.
func (m *Mechanism) Perturb(value, sensitivity float64) float64 {
	if sensitivity == 0 {
		return value
	}
	return Laplace{Mu: value, B: sensitivity / m.epsilon}.Sample(m.rng)
}

// PerturbVector perturbs each coordinate of value with noise scaled to the
// matching coordinate of sensitivity. The two slices must have equal length.
// The result is a fresh slice; value is not modified.
func (m *Mechanism) PerturbVector(value, sensitivity []float64) ([]float64, error) {
	if len(value) != len(sensitivity) {
		return nil, fmt.Errorf("stats: value has %d coordinates but sensitivity has %d",
			len(value), len(sensitivity))
	}
	out := make([]float64, len(value))
	for i, v := range value {
		out[i] = m.Perturb(v, sensitivity[i])
	}
	return out, nil
}
