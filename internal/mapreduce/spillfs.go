package mapreduce

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"upa/internal/chaos"
)

// spillFS abstracts the filesystem operations the spill store performs, so
// the chaos layer can inject storage faults — write errors, ENOSPC, torn
// writes, rename failures, read errors, in-flight corruption — underneath
// the real codec and recovery paths instead of around them. Production runs
// use osFS; an engine with an armed injector gets osFS wrapped in chaosFS.
type spillFS interface {
	// MkdirTemp creates the spill directory.
	MkdirTemp(pattern string) (string, error)
	// Create opens path for writing (truncating any existing file).
	Create(path string) (spillFile, error)
	// Open opens path for reading and reports its size in bytes.
	Open(path string) (spillFile, int64, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	RemoveAll(path string) error
}

// spillFile is the I/O surface one spill read or write needs.
type spillFile interface {
	io.Reader
	io.Writer
	Close() error
}

// osFS is the passthrough implementation over the real filesystem.
type osFS struct{}

func (osFS) MkdirTemp(pattern string) (string, error) { return os.MkdirTemp("", pattern) }

func (osFS) Create(path string) (spillFile, error) { return os.Create(path) }

func (osFS) Open(path string) (spillFile, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, info.Size(), nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }
func (osFS) RemoveAll(path string) error          { return os.RemoveAll(path) }

// spillSite is the chaos site label for every spill-store disk decision; the
// file name (deterministic per store) and per-file attempt counter carry the
// remaining coordinates.
const spillSite = "spill"

// chaosFS wraps an inner spillFS with the engine's seeded fault injector.
// Each create/open of a file draws its fate once, at stable coordinates
// (site, file base name, per-file attempt number), so the same logical
// write or read fails the same way on every run with the same seed — and a
// retry, being a later attempt, re-rolls like a real transient fault would.
//
// The injector is read through a func so the engine's runtime SetChaos swap
// is honored; a nil injector makes every decision false and chaosFS is pure
// passthrough.
type chaosFS struct {
	inner spillFS
	inj   func() *chaos.Injector

	mu       sync.Mutex
	attempts map[string]int // per (op, file base name) attempt counters
}

func newChaosFS(inner spillFS, inj func() *chaos.Injector) *chaosFS {
	return &chaosFS{inner: inner, inj: inj, attempts: make(map[string]int)}
}

// attempt bumps and returns the attempt counter for one (op, file) pair.
func (c *chaosFS) attempt(op, file string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := op + "\x00" + file
	c.attempts[key]++
	return c.attempts[key]
}

func (c *chaosFS) MkdirTemp(pattern string) (string, error) { return c.inner.MkdirTemp(pattern) }

func (c *chaosFS) Create(path string) (spillFile, error) {
	inj := c.inj()
	file := filepath.Base(path)
	attempt := c.attempt("create", file)
	if inj.DiskWriteError(spillSite, file, attempt) {
		return nil, fmt.Errorf("%w: disk write error creating %s (attempt %d)", chaos.ErrInjected, file, attempt)
	}
	f, err := c.inner.Create(path)
	if err != nil {
		return nil, err
	}
	// Decide the write's whole fate here, at the stable coordinates, rather
	// than per Write call (whose count depends on bufio flush boundaries).
	switch {
	case inj.DiskENOSPC(spillSite, file, attempt):
		allow := int64(inj.DiskVariate(spillSite, file, attempt) % 4096)
		return &enospcFile{f: f, allow: allow, file: file}, nil
	case inj.DiskTornWrite(spillSite, file, attempt):
		allow := int64(inj.DiskVariate(spillSite, file, attempt) % 2048)
		return &tornFile{f: f, allow: allow}, nil
	}
	return f, nil
}

func (c *chaosFS) Open(path string) (spillFile, int64, error) {
	inj := c.inj()
	file := filepath.Base(path)
	attempt := c.attempt("open", file)
	if inj.DiskReadError(spillSite, file, attempt) {
		return nil, 0, fmt.Errorf("%w: disk read error opening %s (attempt %d)", chaos.ErrInjected, file, attempt)
	}
	f, size, err := c.inner.Open(path)
	if err != nil {
		return nil, 0, err
	}
	if inj.DiskCorruption(spillSite, file, attempt) && size > 0 {
		v := inj.DiskVariate(spillSite, file, attempt)
		return &corruptFile{
			f:   f,
			off: int64(v % uint64(size)),
			// The XOR mask must be nonzero or the "corruption" would be a
			// no-op; fold the high bits in and force the low bit.
			xor: byte(v>>32) | 1,
		}, size, nil
	}
	return f, size, nil
}

func (c *chaosFS) Rename(oldPath, newPath string) error {
	inj := c.inj()
	file := filepath.Base(newPath)
	attempt := c.attempt("rename", file)
	if inj.DiskRenameError(spillSite, file, attempt) {
		return fmt.Errorf("%w: rename to %s failed (attempt %d)", chaos.ErrInjected, file, attempt)
	}
	return c.inner.Rename(oldPath, newPath)
}

func (c *chaosFS) Remove(path string) error    { return c.inner.Remove(path) }
func (c *chaosFS) RemoveAll(path string) error { return c.inner.RemoveAll(path) }

// enospcFile admits the first `allow` bytes, then fails the write with an
// injected ENOSPC — a partially written temp file is left behind, exactly
// like a real full disk.
type enospcFile struct {
	f       spillFile
	allow   int64
	written int64
	file    string
}

func (e *enospcFile) Write(p []byte) (int, error) {
	if e.written >= e.allow {
		return 0, fmt.Errorf("%w: writing %s", chaos.ErrNoSpace, e.file)
	}
	keep := int64(len(p))
	if e.written+keep > e.allow {
		keep = e.allow - e.written
	}
	n, err := e.f.Write(p[:keep])
	e.written += int64(n)
	if err != nil {
		return n, err
	}
	if int64(len(p)) > keep {
		return n, fmt.Errorf("%w: writing %s", chaos.ErrNoSpace, e.file)
	}
	return n, nil
}

func (e *enospcFile) Read(p []byte) (int, error) { return e.f.Read(p) }

func (e *enospcFile) Close() error {
	cerr := e.f.Close()
	if e.written <= e.allow {
		// The whole file fit in the space that was left, so no Write failed —
		// but the disk is still full, and the failure surfaces at close the
		// way delayed allocation does. Without this, an injected ENOSPC fate
		// would silently pass for any file smaller than the allowance.
		return fmt.Errorf("%w: closing %s", chaos.ErrNoSpace, e.file)
	}
	return cerr
}

// tornFile silently discards every byte past `allow` while reporting full
// success — the torn-write failure mode where the OS acknowledged a write
// that never reached the platter. Close also succeeds, so the writer
// publishes a truncated file that only end-to-end checksums and record
// counts can catch.
type tornFile struct {
	f       spillFile
	allow   int64
	written int64
}

func (t *tornFile) Write(p []byte) (int, error) {
	keep := t.allow - t.written
	if keep < 0 {
		keep = 0
	}
	if keep > int64(len(p)) {
		keep = int64(len(p))
	}
	if keep > 0 {
		n, err := t.f.Write(p[:keep])
		t.written += int64(n)
		if err != nil {
			return n, err
		}
	}
	t.written += int64(len(p)) - keep
	return len(p), nil
}

func (t *tornFile) Read(p []byte) (int, error) { return t.f.Read(p) }
func (t *tornFile) Close() error               { return t.f.Close() }

// corruptFile flips one byte of the stream at a fixed offset as it passes
// through. The on-disk file stays intact — this models a transient
// controller/DMA corruption — so a retried read (a later attempt) sees
// clean bytes.
type corruptFile struct {
	f   spillFile
	off int64
	xor byte
	pos int64
}

func (c *corruptFile) Read(p []byte) (int, error) {
	n, err := c.f.Read(p)
	if n > 0 && c.off >= c.pos && c.off < c.pos+int64(n) {
		p[c.off-c.pos] ^= c.xor
	}
	c.pos += int64(n)
	return n, err
}

func (c *corruptFile) Write(p []byte) (int, error) { return c.f.Write(p) }
func (c *corruptFile) Close() error                { return c.f.Close() }
