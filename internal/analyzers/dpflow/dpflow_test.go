package dpflow_test

import (
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analyzertest"
	"upa/internal/analyzers/dpflow"
)

func TestDPFlowGolden(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "dpflow")
	analyzertest.Run(t, dir, "upa/internal/fake", dpflow.Analyzer)
}
