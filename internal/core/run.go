package core

import (
	"fmt"
	"log/slog"
	"strconv"
	"time"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// Run executes query q on data end-to-end under UPA and returns the iDP
// release. domain samples a fresh record from the query's record domain D
// (used for the "addition" neighbouring datasets); a nil domain restricts
// the neighbouring samples to removals.
//
// data must hold at least two records (UPA targets big-data inputs; the
// RANGE ENFORCER needs two non-empty partitions).
func Run[T any](sys *System, q Query[T], data []T, domain domainSampler[T]) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("core: query %q needs at least two input records, got %d", q.Name, len(data))
	}

	release := sys.releases.Add(1)
	rng := sys.rng.Split(release)
	eng := sys.eng
	before := eng.Metrics()
	res := &Result{Query: q.Name}

	// --- Phase 1: Partition and Sample (§III) -------------------------------
	t0 := time.Now()
	// The RANGE ENFORCER requires the dataset split into two fixed
	// partitions; on a cluster this repartitioning exchanges records between
	// computers, which is the extra shuffle the paper attributes >42% of
	// UPA's overhead on local-computation queries to (§VI-D).
	mid := len(data) / 2
	eng.AccountShuffle(len(data))

	n := sys.cfg.SampleSize
	if n > len(data) {
		// Small datasets degenerate to the exact local sensitivity over all
		// removals (§IV-A).
		n = len(data)
	}
	res.SampleSize = n

	sampleIdx := rng.Split(1).SampleIndices(len(data), n)
	samples := make([]T, n)
	halves := make([]int, n) // which RANGE ENFORCER partition each sample came from
	inSample := make(map[int]bool, n)
	for i, idx := range sampleIdx {
		samples[i] = data[idx]
		if idx >= mid {
			halves[i] = 1
		}
		inSample[idx] = true
	}
	var sPrimeHalf [2][]T
	for idx, rec := range data {
		if inSample[idx] {
			continue
		}
		h := 0
		if idx >= mid {
			h = 1
		}
		sPrimeHalf[h] = append(sPrimeHalf[h], rec)
	}
	var additions []T
	if domain != nil {
		addRNG := rng.Split(2)
		additions = make([]T, n)
		for i := range additions {
			additions[i] = domain(addRNG)
		}
	}
	res.Phases.PartitionSample = time.Since(t0)

	// --- Phase 2: Parallel Map ----------------------------------------------
	t1 := time.Now()
	mappedPrime, err := mapSPrime(eng, q, sPrimeHalf)
	if err != nil {
		return nil, err
	}
	ms, err := mapThrough(eng, q, samples)
	if err != nil {
		return nil, err
	}
	var msBar []State
	if len(additions) > 0 {
		msBar, err = mapThrough(eng, q, additions)
		if err != nil {
			return nil, err
		}
	}
	res.Phases.ParallelMap = time.Since(t1)

	// --- Phase 3: Union Preserving Reduce (Algorithm 1) ---------------------
	t2 := time.Now()
	reduce := q.reducer()

	rsPrimeHalf, err := reduceSPrime(eng, reduce, mappedPrime)
	if err != nil {
		return nil, err
	}
	rsPrime, rsPrimeOK := combineOpt(reduce, eng, rsPrimeHalf[0], rsPrimeHalf[1])

	// Persist R(M(S')) in the engine's reduction cache; the sensitivity loop
	// below re-reads it once per sampled neighbouring dataset, which is the
	// Spark memory-cache reuse behind Figure 4(b).
	cacheKey := "upa:" + q.Name + ":rsprime:" +
		strconv.FormatUint(sys.id, 10) + ":" + strconv.FormatUint(release, 10)
	if rsPrimeOK {
		if _, ok := mapreduce.CacheGet[State](eng.Cache(), cacheKey); !ok {
			mapreduce.CachePut(eng.Cache(), cacheKey, rsPrime)
		}
	}

	pre, suf := prefixSuffix(reduce, eng, ms)

	fullState, fullOK := combineOpt(reduce, eng, cachedOrNil(rsPrime, rsPrimeOK), last(pre))
	if !fullOK {
		return nil, fmt.Errorf("core: query %q reduced to an empty state", q.Name)
	}
	res.VanillaOutput = q.finalize(fullState)

	res.RemovalOutputs = make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		var state State
		var ok bool
		if sys.cfg.DisableReuse {
			state, ok, err = removalFromScratch(eng, q, mappedPrime, ms, i)
			if err != nil {
				return nil, err
			}
		} else {
			// Reuse R(M(S')) (a cache hit per iteration) and the
			// prefix/suffix partials: O(1) combines per neighbour. When S'
			// is empty (every record sampled) there is nothing cached to
			// reuse, so the cache is not consulted.
			base := State(nil)
			baseOK := false
			if rsPrimeOK {
				if cached, hit := mapreduce.CacheGet[State](eng.Cache(), cacheKey); hit {
					base, baseOK = cached, true
				}
			}
			rest, restOK := combinePrefixSuffix(reduce, eng, pre, suf, i)
			state, ok = combineOpt(reduce, eng, cachedOrNil(base, baseOK), cachedOrNil(rest, restOK))
		}
		if !ok {
			// Removing the only record of a two-record dataset still leaves
			// one; reaching here means every record was sampled and removed,
			// which cannot happen for n >= 2 inputs. Skip defensively.
			continue
		}
		res.RemovalOutputs = append(res.RemovalOutputs, q.finalize(state))
	}
	for _, add := range msBar {
		state := reduce(fullState, add)
		eng.AccountReduceOps(1)
		res.AdditionOutputs = append(res.AdditionOutputs, q.finalize(state))
	}

	// Group extension (§VI-E): when GroupSize > 1, also sample block
	// neighbours — whole groups of records removed or added at once —
	// reusing the same mapped samples, prefix/suffix partials and R(M(S')).
	// Contiguous sample blocks keep each group neighbour an O(1) combine.
	if g := sys.cfg.GroupSize; g > 1 {
		for start := 0; start+g <= n; start += g {
			rest, restOK := blockComplement(reduce, eng, pre, suf, start, start+g)
			state, ok := combineOpt(reduce, eng, cachedOrNil(rsPrime, rsPrimeOK), cachedOrNil(rest, restOK))
			if !ok {
				continue
			}
			res.GroupRemovalOutputs = append(res.GroupRemovalOutputs, q.finalize(state))
		}
		for start := 0; start+g <= len(msBar); start += g {
			grp, ok := mapreduce.ReduceSlice(msBar[start:start+g], reduce)
			if !ok {
				continue
			}
			eng.AccountReduceOps(int64(g))
			res.GroupAdditionOutputs = append(res.GroupAdditionOutputs, q.finalize(reduce(fullState, grp)))
		}
	}
	res.Phases.UnionPreservingReduce = time.Since(t2)

	// --- Phase 4: iDP Enforcement (Algorithm 2) ------------------------------
	t3 := time.Now()
	neighbours := make([][]float64, 0,
		len(res.RemovalOutputs)+len(res.AdditionOutputs)+
			len(res.GroupRemovalOutputs)+len(res.GroupAdditionOutputs))
	neighbours = append(neighbours, res.RemovalOutputs...)
	neighbours = append(neighbours, res.AdditionOutputs...)
	neighbours = append(neighbours, res.GroupRemovalOutputs...)
	neighbours = append(neighbours, res.GroupAdditionOutputs...)
	infer := inferSensitivity
	if sys.cfg.EmpiricalRange {
		infer = inferSensitivityEmpirical
	}
	sens, lo, hi, err := infer(neighbours, q.OutputDim, sys.cfg.PercentileLo, sys.cfg.PercentileHi)
	if err != nil {
		return nil, fmt.Errorf("core: query %q: %w", q.Name, err)
	}
	res.Sensitivity, res.RangeLo, res.RangeHi = sens, lo, hi
	res.EmpiricalLocalSensitivity = empiricalSensitivity(res.VanillaOutput, neighbours)

	parts := partitionOutputs(q, reduce, eng, rsPrimeHalf, ms, halves, 0)
	removed := 0
	for {
		name, collides := sys.enforcer.Collides(parts)
		if !collides {
			break
		}
		res.AttackSuspected = true
		if res.CollidedWith == "" {
			res.CollidedWith = name
		}
		if removed+2 > n {
			// Sample set exhausted; release with maximal removal.
			break
		}
		removed += 2
		parts = partitionOutputs(q, reduce, eng, rsPrimeHalf, ms, halves, removed)
	}
	res.RemovedRecords = removed

	finalState, finalOK := combineOpt(reduce, eng,
		cachedOrNil(rsPrime, rsPrimeOK), prefixUpTo(pre, n-removed))
	if !finalOK {
		finalState = make(State, q.StateDim)
	}
	raw := q.finalize(finalState)
	if !sys.cfg.DisableClamp {
		clamped, nClamped := Clamp(raw, lo, hi, rng.Split(3))
		raw = clamped
		res.ClampedCoords = nClamped
	}
	res.RawOutput = raw
	sys.enforcer.Record(q.Name, parts)

	// A per-release mechanism keeps concurrent releases race-free and their
	// noise streams deterministic per release number. Under
	// SplitVectorBudget, vector outputs split ε across coordinates so the
	// whole release composes to one ε.
	effEps := sys.cfg.Epsilon
	if sys.cfg.SplitVectorBudget && q.OutputDim > 1 {
		effEps /= float64(q.OutputDim)
	}
	res.EffectiveEpsilon = effEps
	mech, err := stats.NewMechanism(effEps, rng.Split(4))
	if err != nil {
		return nil, err
	}
	noisy, err := mech.PerturbVector(raw, sens)
	if err != nil {
		return nil, err
	}
	res.Output = noisy
	res.Phases.IDPEnforcement = time.Since(t3)
	res.EngineDelta = eng.Metrics().Sub(before)
	if logger := sys.cfg.Logger; logger != nil {
		logger.Info("upa release",
			slog.String("query", q.Name),
			slog.Uint64("release", release),
			slog.Int("records", len(data)),
			slog.Int("sample_size", n),
			slog.Duration("partition_sample", res.Phases.PartitionSample),
			slog.Duration("parallel_map", res.Phases.ParallelMap),
			slog.Duration("union_preserving_reduce", res.Phases.UnionPreservingReduce),
			slog.Duration("idp_enforcement", res.Phases.IDPEnforcement),
			slog.Any("sensitivity", res.Sensitivity),
			slog.Bool("attack_suspected", res.AttackSuspected),
			slog.Int("removed_records", res.RemovedRecords),
			slog.Int("clamped_coords", res.ClampedCoords),
		)
	}
	return res, nil
}

// mapThrough maps records through the engine, preserving order.
func mapThrough[T any](eng *mapreduce.Engine, q Query[T], records []T) ([]State, error) {
	if len(records) == 0 {
		return nil, nil
	}
	parts := eng.Workers()
	if parts > len(records) {
		parts = len(records)
	}
	ds, err := mapreduce.FromSlice(eng, records, parts)
	if err != nil {
		return nil, err
	}
	return mapreduce.Map(ds, q.Map).Collect()
}

// mapSPrime builds the lazily mapped datasets of the two remaining-record
// halves. They stay lazy so the scratch-recompute ablation re-executes the
// map, like lineage recomputation would.
func mapSPrime[T any](eng *mapreduce.Engine, q Query[T], sPrimeHalf [2][]T) ([2]*mapreduce.Dataset[State], error) {
	var out [2]*mapreduce.Dataset[State]
	for h := 0; h < 2; h++ {
		if len(sPrimeHalf[h]) == 0 {
			continue
		}
		parts := eng.Workers()
		if parts > len(sPrimeHalf[h]) {
			parts = len(sPrimeHalf[h])
		}
		ds, err := mapreduce.FromSlice(eng, sPrimeHalf[h], parts)
		if err != nil {
			return out, err
		}
		out[h] = mapreduce.Map(ds, q.Map)
	}
	return out, nil
}

// reduceSPrime reduces each mapped half of S' on the engine, returning the
// per-half partial state or nil when the half is empty.
func reduceSPrime(eng *mapreduce.Engine, reduce mapreduce.Reducer[State], mapped [2]*mapreduce.Dataset[State]) ([2]State, error) {
	var out [2]State
	for h := 0; h < 2; h++ {
		if mapped[h] == nil {
			continue
		}
		state, err := mapreduce.Reduce(mapped[h], reduce)
		if err != nil {
			return out, err
		}
		out[h] = state
	}
	return out, nil
}

// prefixSuffix builds the partial-reduction arrays over the mapped samples:
// pre[i] = R(ms[0..i]) and suf[i] = R(ms[i..n-1]). Together with R(M(S'))
// they make every sampled neighbouring output an O(1) combine — the concrete
// payoff of commutativity and associativity (§IV-A).
func prefixSuffix(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, ms []State) (pre, suf []State) {
	n := len(ms)
	if n == 0 {
		return nil, nil
	}
	pre = make([]State, n)
	suf = make([]State, n)
	pre[0] = ms[0]
	for i := 1; i < n; i++ {
		pre[i] = reduce(pre[i-1], ms[i])
	}
	suf[n-1] = ms[n-1]
	for i := n - 2; i >= 0; i-- {
		suf[i] = reduce(ms[i], suf[i+1])
	}
	if n > 1 {
		eng.AccountReduceOps(int64(2 * (n - 1)))
	}
	return pre, suf
}

// blockComplement reduces all mapped samples outside [lo, hi) — the group
// analogue of combinePrefixSuffix.
func blockComplement(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, pre, suf []State, lo, hi int) (State, bool) {
	n := len(pre)
	var left, right State
	if lo > 0 {
		left = pre[lo-1]
	}
	if hi < n {
		right = suf[hi]
	}
	return combineOpt(reduce, eng, left, right)
}

// combinePrefixSuffix reduces all mapped samples except index i.
func combinePrefixSuffix(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, pre, suf []State, i int) (State, bool) {
	n := len(pre)
	switch {
	case n <= 1:
		return nil, false
	case i == 0:
		return suf[1], true
	case i == n-1:
		return pre[n-2], true
	default:
		eng.AccountReduceOps(1)
		return reduce(pre[i-1], suf[i+1]), true
	}
}

// removalFromScratch recomputes f's state on x - samples[i] with no reuse:
// it re-reduces the full remaining datasets and every other sample — the
// per-neighbour linear cost UPA eliminates (ablation for §VI-E).
func removalFromScratch[T any](eng *mapreduce.Engine, q Query[T], mapped [2]*mapreduce.Dataset[State], ms []State, i int) (State, bool, error) {
	reduce := q.reducer()
	rsPrimeHalf, err := reduceSPrime(eng, reduce, mapped)
	if err != nil {
		return nil, false, err
	}
	acc, ok := combineOpt(reduce, eng, rsPrimeHalf[0], rsPrimeHalf[1])
	for j, state := range ms {
		if j == i {
			continue
		}
		if !ok {
			acc, ok = state, true
			continue
		}
		acc = reduce(acc, state)
		eng.AccountReduceOps(1)
	}
	return acc, ok, nil
}

// partitionOutputs computes the query's finalized output on each RANGE
// ENFORCER partition of x, with the last `removed` samples excluded
// (Algorithm 2, lines 10–12).
func partitionOutputs[T any](q Query[T], reduce mapreduce.Reducer[State], eng *mapreduce.Engine,
	rsPrimeHalf [2]State, ms []State, halves []int, removed int) [2][]float64 {
	var parts [2][]float64
	keep := len(ms) - removed
	for h := 0; h < 2; h++ {
		acc := rsPrimeHalf[h]
		ok := acc != nil
		for i := 0; i < keep; i++ {
			if halves[i] != h {
				continue
			}
			if !ok {
				acc, ok = ms[i], true
				continue
			}
			acc = reduce(acc, ms[i])
			eng.AccountReduceOps(1)
		}
		if !ok {
			acc = make(State, q.StateDim)
		}
		parts[h] = q.finalize(acc)
	}
	return parts
}

// inferSensitivity fits a normal distribution per output coordinate over
// the sampled neighbouring outputs and returns the percentile-range
// sensitivity and output range (Algorithm 1, lines 17–21).
func inferSensitivity(neighbours [][]float64, dim int, pLo, pHi float64) (sens, lo, hi []float64, err error) {
	if len(neighbours) < 2 {
		return nil, nil, nil, fmt.Errorf("only %d sampled neighbouring outputs", len(neighbours))
	}
	sens = make([]float64, dim)
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	column := make([]float64, len(neighbours))
	for d := 0; d < dim; d++ {
		for i, out := range neighbours {
			if len(out) != dim {
				return nil, nil, nil, fmt.Errorf("neighbouring output %d has %d coordinates, want %d", i, len(out), dim)
			}
			column[i] = out[d]
		}
		fit, ferr := stats.FitNormalMLE(column)
		if ferr != nil {
			return nil, nil, nil, ferr
		}
		l, h, rerr := fit.PercentileRange(pLo, pHi)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		lo[d], hi[d] = l, h
		sens[d] = h - l
	}
	return sens, lo, hi, nil
}

// inferSensitivityEmpirical is the distribution-free alternative: the
// output range comes from the empirical pLo/pHi quantiles of the sampled
// neighbouring outputs instead of a fitted normal distribution. It trades
// the paper's parametric smoothing for exactness on non-normal neighbour
// distributions (the §VI-C TPCH1 discussion).
func inferSensitivityEmpirical(neighbours [][]float64, dim int, pLo, pHi float64) (sens, lo, hi []float64, err error) {
	if len(neighbours) < 2 {
		return nil, nil, nil, fmt.Errorf("only %d sampled neighbouring outputs", len(neighbours))
	}
	sens = make([]float64, dim)
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	column := make([]float64, len(neighbours))
	for d := 0; d < dim; d++ {
		for i, out := range neighbours {
			if len(out) != dim {
				return nil, nil, nil, fmt.Errorf("neighbouring output %d has %d coordinates, want %d", i, len(out), dim)
			}
			column[i] = out[d]
		}
		l, qerr := stats.EmpiricalQuantile(column, pLo)
		if qerr != nil {
			return nil, nil, nil, qerr
		}
		h, qerr := stats.EmpiricalQuantile(column, pHi)
		if qerr != nil {
			return nil, nil, nil, qerr
		}
		lo[d], hi[d] = l, h
		sens[d] = h - l
	}
	return sens, lo, hi, nil
}

// empiricalSensitivity returns, per coordinate, the greatest |f(y) - f(x)|
// over the sampled neighbouring outputs.
func empiricalSensitivity(output []float64, neighbours [][]float64) []float64 {
	out := make([]float64, len(output))
	for _, n := range neighbours {
		for d := range output {
			if diff := abs(n[d] - output[d]); diff > out[d] {
				out[d] = diff
			}
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// combineOpt reduces two optional states (nil means absent).
func combineOpt(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, a, b State) (State, bool) {
	switch {
	case a == nil && b == nil:
		return nil, false
	case a == nil:
		return b, true
	case b == nil:
		return a, true
	default:
		eng.AccountReduceOps(1)
		return reduce(a, b), true
	}
}

func cachedOrNil(s State, ok bool) State {
	if !ok {
		return nil
	}
	return s
}

func last(pre []State) State {
	if len(pre) == 0 {
		return nil
	}
	return pre[len(pre)-1]
}

// prefixUpTo returns the reduction of the first k samples (nil for k <= 0).
func prefixUpTo(pre []State, k int) State {
	if k <= 0 || len(pre) == 0 {
		return nil
	}
	if k > len(pre) {
		k = len(pre)
	}
	return pre[k-1]
}
