// Private SQL analytics: a data analyst runs several TPC-H-style
// aggregations over a warehouse through one UPA session — counts with
// joins, filtered revenue sums — and every answer comes back under iDP
// with an automatically inferred sensitivity.
package main

import (
	"fmt"
	"log"

	"upa"
	"upa/internal/tpch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := tpch.Generate(tpch.Config{Lineitems: 40000, Skew: 0.25, Seed: 11})
	if err != nil {
		return err
	}

	session, err := upa.NewSession(upa.WithEpsilon(0.1), upa.WithSeed(11))
	if err != nil {
		return err
	}

	// Q1-style: shipped lineitems by the reporting cutoff.
	cutoff := tpch.Date(tpch.DateMax - 90)
	shipped := upa.Count("shipped-by-cutoff", func(l tpch.Lineitem) bool {
		return l.ShipDate <= cutoff
	})
	if err := report(session, shipped, db.Lineitems, db.RandomLineitem); err != nil {
		return err
	}

	// Q6-style: promotional revenue in a shipping year.
	yearLo := tpch.Date(2 * tpch.DaysPerYear)
	revenue := upa.Sum("promo-revenue", func(l tpch.Lineitem) float64 {
		if l.ShipDate >= yearLo && l.ShipDate < yearLo+tpch.DaysPerYear &&
			l.Discount >= 0.05 && l.Discount <= 0.07 && l.Quantity < 24 {
			return l.ExtendedPrice * l.Discount
		}
		return 0
	})
	if err := report(session, revenue, db.Lineitems, db.RandomLineitem); err != nil {
		return err
	}

	// Q4-style count over a join: late lineitems of orders in a quarter.
	// The join is folded into the Mapper through a broadcast map, exactly
	// how UPA's Spark operators evaluate Join (§V-C).
	late := make(map[int]float64, len(db.Orders))
	for _, l := range db.Lineitems {
		if l.CommitDate < l.ReceiptDate {
			late[l.OrderKey]++
		}
	}
	windowLo := tpch.Date(2 * tpch.DaysPerYear)
	lateJoined := upa.Sum("late-order-pairs", func(o tpch.Order) float64 {
		if o.OrderDate >= windowLo && o.OrderDate < windowLo+90 {
			return late[o.OrderKey]
		}
		return 0
	})
	if err := report(session, lateJoined, db.Orders, db.RandomOrder); err != nil {
		return err
	}

	// Per-priority order histogram in one fused release.
	priorities := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	index := make(map[string]int, len(priorities))
	for i, p := range priorities {
		index[p] = i
	}
	histogram := upa.VectorSum("orders-by-priority", len(priorities), func(o tpch.Order) []float64 {
		v := make([]float64, len(priorities))
		if i, ok := index[o.OrderPriority]; ok {
			v[i] = 1
		}
		return v
	})
	res, err := upa.Release(session, histogram, db.Orders, db.RandomOrder)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s", histogram.Name+":")
	for i, p := range priorities {
		fmt.Printf("  %s=%.0f", p[:1], res.Output[i])
	}
	fmt.Println()

	m := session.Metrics()
	fmt.Printf("\nsession: %d releases, %d shuffle rounds, %d reduce ops, cache hits %d\n",
		session.HistoryLen(), m.ShuffleRounds, m.ReduceOps, m.CacheHits)
	return nil
}

func report[T any](session *upa.Session, q upa.Query[T], data []T, domain func(*upa.RNG) T) error {
	exact, err := upa.Evaluate(session, q, data)
	if err != nil {
		return err
	}
	res, err := upa.Release(session, q, data, domain)
	if err != nil {
		return err
	}
	//upa:allow(dpflow) reviewed: pedagogical demo over synthetic TPC-H data, exact/sensitivity shown for comparison
	fmt.Printf("%-22s exact %14.1f   released %14.1f   sensitivity %10.3f\n",
		q.Name+":", exact[0], res.Output[0], res.Sensitivity[0])
	return nil
}
