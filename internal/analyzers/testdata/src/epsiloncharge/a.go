// Package epsiloncharge is golden-test input for the ε-ledger analyzer. It
// mirrors internal/core's shape: a System with a raw atomic ledger, two
// blessed accessors, and a RunCtx release site.
package epsiloncharge

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
)

type Result struct{ Output []float64 }

type System struct {
	epsilonSpentBits atomic.Uint64
}

// The accessors are the only code allowed to touch the raw ledger.
func (s *System) chargeEpsilon(eps float64) {
	for {
		old := s.epsilonSpentBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + eps)
		if s.epsilonSpentBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *System) EpsilonSpent() float64 {
	return math.Float64frombits(s.epsilonSpentBits.Load())
}

// resetLedger bypasses the accessors: forbidden even inside the package.
func (s *System) resetLedger() {
	s.epsilonSpentBits.Store(0) // want `direct access to the ε ledger \(epsilonSpentBits\) outside chargeEpsilon/EpsilonSpent`
}

// RunCtx is the blessed release site: error paths may return early, but the
// success return must come after the charge.
func RunCtx(ctx context.Context, s *System, eps float64) (*Result, error) {
	if eps <= 0 {
		return nil, errors.New("bad epsilon") // error return before charge: fine
	}
	res := &Result{Output: []float64{eps}}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// A nested closure's (commit, nil) return is not a release-path success.
	stage := func() (func(), error) {
		return func() { res.Output = append(res.Output, eps) }, nil
	}
	if commit, err := stage(); err == nil {
		commit()
	}
	s.chargeEpsilon(eps)
	return res, nil
}

// runLeaky charges from a site that is not the release entry point.
func runLeaky(s *System, eps float64) (*Result, error) {
	res := &Result{}
	s.chargeEpsilon(eps) // want `chargeEpsilon called outside the blessed release site RunCtx`
	return res, nil
}

// Broken carries a RunCtx whose control flow violates exactly-once charging:
// a success return is reachable before the charge, and the happy path
// charges twice.
type Broken struct{}

func (b *Broken) RunCtx(s *System, eps float64) (*Result, error) {
	res := &Result{}
	if eps == 0 {
		return res, nil // want `release path returns success before chargeEpsilon charges the ledger`
	}
	s.chargeEpsilon(eps)
	s.chargeEpsilon(eps) // want `charges the ledger more than once`
	return res, nil
}

// suppressed: an experiment harness may reset spend with justification.
func (s *System) resetForExperiment() {
	s.epsilonSpentBits.Store(0) //upa:allow(epsiloncharge) experiment-only ledger reset; never reached from release paths
}
