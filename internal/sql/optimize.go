package sql

import (
	"fmt"
	"strings"

	"upa/internal/relation"
)

// This file is the logical plan optimizer: a rule-driven rewrite pass that
// sits between plan construction and compilation. Every SQL consumer routes
// plans through Optimize — Execute/ExecuteCount, the DP bridge's influence
// computation (CompileDPCount), FLEX's join-column statistics, the canned
// TPC-H plans, and cmd/upa-query — so the engine is never asked to shuffle
// work a rewrite could have eliminated. The paper's efficiency claim (§V)
// rests on not re-shuffling the bulk R(M(S')) computation; the optimizer
// extends the same discipline upstream, to what the SQL layer asks the
// engine to shuffle in the first place.
//
// The rule catalogue:
//
//   - constant folding: literal-only subexpressions collapse to literals;
//     AND/OR/NOT identities simplify. An always-true filter is dropped; an
//     always-false filter is replaced by an empty relation of the same
//     schema.
//   - predicate pushdown: adjacent filters merge into one pass; predicates
//     move below Project (by inlining the projected expressions they
//     reference), below Distinct, and into the sides of a Join (each
//     conjunct sinks into the side whose columns it references).
//   - limit pushdown: stacked limits collapse to the minimum, and a Limit
//     moves below the order-preserving, row-count-preserving Project so
//     only the surviving prefix is projected.
//   - join-side sizing: the engine's hash join builds its table from the
//     right input and probes with the left, so the smaller estimated side
//     is moved to the right (a pass-through projection restores the output
//     column order).
//   - projection pruning: a required-column analysis walks from the root
//     and narrows scans to the columns an ancestor actually consumes, so
//     wide base relations stop hauling dead columns through shuffles.
//
// Every rule preserves the plan's output row multiset and its schema
// exactly. Two deliberate, documented exceptions to bit-for-bit behavioural
// identity: row *order* may change (joins stream their probe side, so
// swapping sides reorders output; SQL semantics never promised an order
// without ORDER BY), and a predicate hoisted past a short-circuiting AND or
// an unmatched join row may evaluate on rows the raw plan never showed it
// (visible only through runtime errors such as division by zero — never
// through the rows of an error-free run).
//
// DP safety: CompileDPCount threads a hidden __protected_idx column through
// the plan and counts output tuples per index, so the optimizer must
// neither drop nor duplicate that column, and must keep every protected
// row's output multiset membership intact. Both hold structurally: the
// index column is a group-by key of the influence plan, so the pruning
// analysis marks it required down to the protected scan, and every rule
// preserves row multisets — hence per-index counts, hence the influence
// map, the sampled neighbour set, and the ε charge. Optimize additionally
// refuses any rewrite that would change the root schema (the safety net at
// the bottom of Optimize), and returns malformed plans unchanged so
// compile reports their errors against the tree the caller built.

// Rewrite records one applied optimization, for Explain and for tests that
// pin rewrite behaviour.
type Rewrite struct {
	// Rule names the rewrite rule (e.g. "predicate-pushdown-join-left").
	Rule string
	// Detail describes what the rule did to which node.
	Detail string
}

// Optimize rewrites a logical plan with the rule catalogue above and
// returns the optimized plan plus the applied rewrites in application
// order. The optimized plan computes the same row multiset under the same
// schema as the input; malformed plans (schema errors anywhere in the
// tree) are returned unchanged so compilation reports the caller's tree.
func Optimize(plan Plan) (Plan, []Rewrite) {
	o := &optimizer{}
	out := o.fold(plan)
	out = o.pushFilters(out)
	out = o.pushLimits(out)
	// prune before sizeJoins: the restoring projection a join swap inserts
	// references every output column, which would otherwise stop the
	// required-column analysis from narrowing anything beneath it.
	out = o.prune(out, nil)
	// orderJoins before sizeJoins: ordering fixes which relations meet
	// first, sizing then picks the hash build side of each resulting join.
	out = o.orderJoins(out, true)
	out = o.sizeJoins(out, true)

	// Safety net: no rewrite may change the root schema. A mismatch means a
	// rule misfired; fall back to the raw tree rather than mis-execute.
	want, err := plan.Schema()
	if err != nil {
		return plan, nil
	}
	got, err := out.Schema()
	if err != nil || !schemasEqual(want, got) {
		return plan, nil
	}
	return out, o.rewrites
}

type optimizer struct {
	rewrites []Rewrite
}

func (o *optimizer) record(rule, format string, args ...any) {
	o.rewrites = append(o.rewrites, Rewrite{Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// --- constant folding -----------------------------------------------------

// fold rewrites every expression in the tree with foldExpr and eliminates
// filters whose predicate folded to a boolean literal.
func (o *optimizer) fold(p Plan) Plan {
	switch n := p.(type) {
	case *FilterPlan:
		in := o.fold(n.Input)
		schema, err := in.Schema()
		pred := o.foldExpr(n.Pred, schema, err)
		if lit, ok := pred.(litExpr); ok && lit.v.Kind() == KindBool {
			if b, _ := lit.v.AsBool(); b {
				o.record("filter-true-elimination", "dropped always-true filter %s", n.Pred.describe())
				return in
			}
			if schema, err := in.Schema(); err == nil {
				o.record("filter-false-elimination", "replaced always-false filter %s with an empty relation", n.Pred.describe())
				return Scan("empty", schema, nil)
			}
		}
		return Where(in, pred)
	case *ProjectPlan:
		in := o.fold(n.Input)
		schema, err := in.Schema()
		exprs := make([]NamedExpr, len(n.Exprs))
		for i, ne := range n.Exprs {
			exprs[i] = NamedExpr{Name: ne.Name, Expr: o.foldExpr(ne.Expr, schema, err)}
		}
		return Project(in, exprs...)
	case *JoinPlan:
		return JoinOn(o.fold(n.Left), n.LeftKey, o.fold(n.Right), n.RightKey)
	case *AggregatePlan:
		in := o.fold(n.Input)
		schema, err := in.Schema()
		aggs := make([]AggSpec, len(n.Aggs))
		for i, a := range n.Aggs {
			if a.Arg != nil {
				a.Arg = o.foldExpr(a.Arg, schema, err)
			}
			aggs[i] = a
		}
		return GroupBy(in, n.GroupBy, aggs...)
	case *OrderByPlan:
		return OrderBy(o.fold(n.Input), n.Keys...)
	case *DistinctPlan:
		return Distinct(o.fold(n.Input))
	case *LimitPlan:
		return Limit(o.fold(n.Input), n.N)
	default:
		return p
	}
}

// foldExpr gates folding on the expression binding cleanly against its
// input schema: a malformed expression (unknown column, kind mismatch) is
// left alone so its compile-time error is reported against the caller's
// tree, and folding an AND/OR identity can never hide a type error in the
// discarded side.
func (o *optimizer) foldExpr(e Expr, in Schema, inErr error) Expr {
	if inErr != nil {
		return e
	}
	if _, _, err := e.bind(in); err != nil {
		return e
	}
	out, changed := foldExpr(e)
	if changed {
		o.record("constant-folding", "%s to %s", e.describe(), out.describe())
	}
	return out
}

// foldExpr simplifies an expression bottom-up and reports whether anything
// changed. Folding declines wherever evaluation could error (division by
// zero, kind mismatches) so those errors still surface at compile time.
func foldExpr(e Expr) (Expr, bool) {
	switch n := e.(type) {
	case binExpr:
		left, lc := foldExpr(n.left)
		right, rc := foldExpr(n.right)
		folded := binExpr{op: n.op, left: left, right: right}
		ll, lIsLit := left.(litExpr)
		rl, rIsLit := right.(litExpr)
		if lIsLit && rIsLit {
			if v, ok := evalConst(folded); ok {
				return litExpr{v: v}, true
			}
		}
		switch n.op {
		case opAnd:
			if lIsLit && ll.v.Kind() == KindBool {
				if b, _ := ll.v.AsBool(); b {
					return right, true
				}
				return litExpr{v: Bool(false)}, true
			}
			if rIsLit && rl.v.Kind() == KindBool {
				// Discarding the left side skips its evaluation, exactly as
				// an eliminated filter would.
				if b, _ := rl.v.AsBool(); b {
					return left, true
				}
				return litExpr{v: Bool(false)}, true
			}
		case opOr:
			if lIsLit && ll.v.Kind() == KindBool {
				if b, _ := ll.v.AsBool(); b {
					return litExpr{v: Bool(true)}, true
				}
				return right, true
			}
			if rIsLit && rl.v.Kind() == KindBool {
				if b, _ := rl.v.AsBool(); b {
					return litExpr{v: Bool(true)}, true
				}
				return left, true
			}
		}
		return folded, lc || rc
	case notExpr:
		inner, c := foldExpr(n.inner)
		if lit, ok := inner.(litExpr); ok && lit.v.Kind() == KindBool {
			b, _ := lit.v.AsBool()
			return litExpr{v: Bool(!b)}, true
		}
		if nn, ok := inner.(notExpr); ok {
			return nn.inner, true
		}
		return notExpr{inner: inner}, c
	default:
		return e, false
	}
}

// evalConst evaluates a literal-only binary expression; bind or evaluation
// errors decline the fold.
func evalConst(e binExpr) (Value, bool) {
	bound, _, err := e.bind(nil)
	if err != nil {
		return Value{}, false
	}
	v, err := bound(nil)
	if err != nil {
		return Value{}, false
	}
	return v, true
}

// --- predicate pushdown ---------------------------------------------------

// pushFilters sinks every filter as deep into its subtree as the rules
// allow.
func (o *optimizer) pushFilters(p Plan) Plan {
	switch n := p.(type) {
	case *FilterPlan:
		return o.place(n.Pred, o.pushFilters(n.Input))
	case *ProjectPlan:
		return Project(o.pushFilters(n.Input), n.Exprs...)
	case *JoinPlan:
		return JoinOn(o.pushFilters(n.Left), n.LeftKey, o.pushFilters(n.Right), n.RightKey)
	case *AggregatePlan:
		return GroupBy(o.pushFilters(n.Input), n.GroupBy, n.Aggs...)
	case *OrderByPlan:
		return OrderBy(o.pushFilters(n.Input), n.Keys...)
	case *DistinctPlan:
		return Distinct(o.pushFilters(n.Input))
	case *LimitPlan:
		return Limit(o.pushFilters(n.Input), n.N)
	default:
		return p
	}
}

// place sinks pred below node where a rule permits, or rebuilds the filter
// in place. Pushing stops at Limit (the filter would change which rows the
// prefix keeps), OrderBy (filtering before an unstable sort could reorder
// ties) and Aggregate (the predicate ranges over aggregated columns).
func (o *optimizer) place(pred Expr, node Plan) Plan {
	switch n := node.(type) {
	case *FilterPlan:
		// Merge into one predicate; AND short-circuits left-to-right, so the
		// inner predicate still evaluates first on every row.
		o.record("filter-merge", "merged filter %s into adjacent filter %s", pred.describe(), n.Pred.describe())
		return o.place(And(n.Pred, pred), n.Input)
	case *ProjectPlan:
		sub, ok := substituteCols(pred, n.Exprs)
		if !ok {
			return Where(node, pred)
		}
		o.record("predicate-pushdown-project", "moved %s below project as %s", pred.describe(), sub.describe())
		return Project(o.place(sub, n.Input), n.Exprs...)
	case *DistinctPlan:
		// Filtering before the dedup keeps the same first-seen survivors.
		o.record("predicate-pushdown-distinct", "moved %s below distinct", pred.describe())
		return Distinct(o.place(pred, n.Input))
	case *JoinPlan:
		ls, lerr := n.Left.Schema()
		rs, rerr := n.Right.Schema()
		if lerr != nil || rerr != nil {
			return Where(node, pred)
		}
		leftNames, rightNames := nameSet(ls), nameSet(rs)
		var leftC, rightC, keep []Expr
		for _, c := range conjuncts(pred) {
			cols, ok := exprCols(c)
			switch {
			case !ok || len(cols) == 0:
				keep = append(keep, c)
			case allIn(cols, leftNames):
				// A name present on both sides binds to the left column in
				// the join's output schema, so left-only resolution is the
				// same resolution the unpushed predicate used.
				leftC = append(leftC, c)
			case allIn(cols, rightNames) && noneIn(cols, leftNames):
				rightC = append(rightC, c)
			default:
				keep = append(keep, c)
			}
		}
		if len(leftC) == 0 && len(rightC) == 0 {
			return Where(node, pred)
		}
		left, right := n.Left, n.Right
		if len(leftC) > 0 {
			lp := andAll(leftC)
			o.record("predicate-pushdown-join-left", "moved %s below join to the %s side", lp.describe(), n.LeftKey)
			left = o.place(lp, left)
		}
		if len(rightC) > 0 {
			rp := andAll(rightC)
			o.record("predicate-pushdown-join-right", "moved %s below join to the %s side", rp.describe(), n.RightKey)
			right = o.place(rp, right)
		}
		out := Plan(JoinOn(left, n.LeftKey, right, n.RightKey))
		if len(keep) > 0 {
			out = Where(out, andAll(keep))
		}
		return out
	default:
		return Where(node, pred)
	}
}

// conjuncts splits a predicate on its top-level ANDs.
func conjuncts(e Expr) []Expr {
	if b, ok := e.(binExpr); ok && b.op == opAnd {
		return append(conjuncts(b.left), conjuncts(b.right)...)
	}
	return []Expr{e}
}

// andAll rebuilds a conjunction (left-deep, preserving order).
func andAll(es []Expr) Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = And(out, e)
	}
	return out
}

// substituteCols rewrites pred for evaluation below a projection by
// inlining the projected expression behind every column reference. It
// declines on unknown expression kinds and on references the projection
// does not define.
func substituteCols(e Expr, exprs []NamedExpr) (Expr, bool) {
	switch n := e.(type) {
	case colExpr:
		for _, ne := range exprs {
			if ne.Name == n.name {
				return ne.Expr, true
			}
		}
		return nil, false
	case litExpr:
		return n, true
	case binExpr:
		l, ok := substituteCols(n.left, exprs)
		if !ok {
			return nil, false
		}
		r, ok := substituteCols(n.right, exprs)
		if !ok {
			return nil, false
		}
		return binExpr{op: n.op, left: l, right: r}, true
	case notExpr:
		inner, ok := substituteCols(n.inner, exprs)
		if !ok {
			return nil, false
		}
		return notExpr{inner: inner}, true
	default:
		return nil, false
	}
}

// exprCols collects the column names an expression references; ok is false
// for unknown expression kinds (which disables rules that need the set).
func exprCols(e Expr) (map[string]bool, bool) {
	out := map[string]bool{}
	var walk func(Expr) bool
	walk = func(e Expr) bool {
		switch n := e.(type) {
		case colExpr:
			out[n.name] = true
			return true
		case litExpr:
			return true
		case binExpr:
			return walk(n.left) && walk(n.right)
		case notExpr:
			return walk(n.inner)
		default:
			return false
		}
	}
	if !walk(e) {
		return nil, false
	}
	return out, true
}

// --- limit pushdown -------------------------------------------------------

// pushLimits collapses stacked limits and sinks limits below projections.
func (o *optimizer) pushLimits(p Plan) Plan {
	switch n := p.(type) {
	case *LimitPlan:
		return o.placeLimit(n.N, o.pushLimits(n.Input))
	case *FilterPlan:
		return Where(o.pushLimits(n.Input), n.Pred)
	case *ProjectPlan:
		return Project(o.pushLimits(n.Input), n.Exprs...)
	case *JoinPlan:
		return JoinOn(o.pushLimits(n.Left), n.LeftKey, o.pushLimits(n.Right), n.RightKey)
	case *AggregatePlan:
		return GroupBy(o.pushLimits(n.Input), n.GroupBy, n.Aggs...)
	case *OrderByPlan:
		return OrderBy(o.pushLimits(n.Input), n.Keys...)
	case *DistinctPlan:
		return Distinct(o.pushLimits(n.Input))
	default:
		return p
	}
}

func (o *optimizer) placeLimit(limit int, node Plan) Plan {
	if limit < 0 {
		return Limit(node, limit) // compile rejects negative limits
	}
	switch n := node.(type) {
	case *LimitPlan:
		if n.N >= 0 {
			m := min(limit, n.N)
			o.record("limit-collapse", "collapsed limit %d over limit %d to limit %d", limit, n.N, m)
			return o.placeLimit(m, n.Input)
		}
		return Limit(node, limit)
	case *ProjectPlan:
		// Project is 1:1 and order-preserving, so the prefix commutes with it
		// and only surviving rows get projected.
		o.record("limit-pushdown-project", "took the first %d rows below the project", limit)
		return Project(o.placeLimit(limit, n.Input), n.Exprs...)
	default:
		return Limit(node, limit)
	}
}

// --- cost-based join ordering ---------------------------------------------

// orderJoins rewrites every maximal multi-join (three or more base inputs)
// into a greedy cheapest-first left-deep chain. Costs come from
// relation.ColumnStats computed over each leaf's base-scan join column —
// the same count-only metadata (row count, distinct keys, top frequency)
// FLEX's sensitivity analysis already consumes, so ordering never inspects
// individual protected values and the DP bridge's influence accounting is
// untouched: inner equi-joins commute and associate over row multisets.
//
// Reordering changes row order, so it shares sizeJoins' gate: off beneath a
// Limit and beneath float Sum/Avg aggregates (their accumulation order is
// observable in the last bits). It declines trees whose leaves are not
// Filter-over-Scan chains, whose column names collide across leaves (the
// restoring projection would be ambiguous), or whose keys cannot be pinned
// to a single leaf.
func (o *optimizer) orderJoins(p Plan, canReorder bool) Plan {
	switch n := p.(type) {
	case *JoinPlan:
		if canReorder {
			if reordered, ok := o.reorderJoinTree(n); ok {
				return reordered
			}
		}
		return JoinOn(o.orderJoins(n.Left, canReorder), n.LeftKey,
			o.orderJoins(n.Right, canReorder), n.RightKey)
	case *FilterPlan:
		return Where(o.orderJoins(n.Input, canReorder), n.Pred)
	case *ProjectPlan:
		return Project(o.orderJoins(n.Input, canReorder), n.Exprs...)
	case *AggregatePlan:
		for _, a := range n.Aggs {
			if a.Func == AggSum || a.Func == AggAvg {
				canReorder = false
				break
			}
		}
		return GroupBy(o.orderJoins(n.Input, canReorder), n.GroupBy, n.Aggs...)
	case *OrderByPlan:
		return OrderBy(o.orderJoins(n.Input, canReorder), n.Keys...)
	case *DistinctPlan:
		return Distinct(o.orderJoins(n.Input, canReorder))
	case *LimitPlan:
		return Limit(o.orderJoins(n.Input, false), n.N)
	default:
		return p
	}
}

// joinLeaf is one base input of a flattened join tree.
type joinLeaf struct {
	plan   Plan
	scan   *ScanPlan
	schema Schema
}

// joinEdge is one equi-join condition between two leaves.
type joinEdge struct {
	li, lj     int
	keyI, keyJ string
}

// baseScan walks a Filter chain to its scan. Any other interior node
// (Project renames columns, aggregates change cardinality classes) makes
// the leaf opaque to the statistics and declines the reorder.
func baseScan(p Plan) (*ScanPlan, bool) {
	for {
		switch n := p.(type) {
		case *ScanPlan:
			return n, true
		case *FilterPlan:
			p = n.Input
		default:
			return nil, false
		}
	}
}

// reorderJoinTree flattens the join tree rooted at root into leaves and
// equi-join edges, greedily rebuilds a left-deep chain by ascending
// estimated cardinality, and wraps it in a projection restoring the
// original column order. ok is false when the tree declines (see
// orderJoins) or the greedy order matches the existing one.
func (o *optimizer) reorderJoinTree(root *JoinPlan) (Plan, bool) {
	var leaves []joinLeaf
	var edges []joinEdge
	var flatten func(p Plan) ([]int, bool)
	flatten = func(p Plan) ([]int, bool) {
		if j, ok := p.(*JoinPlan); ok {
			ls, ok := flatten(j.Left)
			if !ok {
				return nil, false
			}
			rs, ok := flatten(j.Right)
			if !ok {
				return nil, false
			}
			li, ok := leafWithColumn(leaves, ls, j.LeftKey)
			if !ok {
				return nil, false
			}
			rj, ok := leafWithColumn(leaves, rs, j.RightKey)
			if !ok {
				return nil, false
			}
			edges = append(edges, joinEdge{li: li, lj: rj, keyI: j.LeftKey, keyJ: j.RightKey})
			return append(ls, rs...), true
		}
		scan, ok := baseScan(p)
		if !ok {
			return nil, false
		}
		schema, err := p.Schema()
		if err != nil {
			return nil, false
		}
		leaves = append(leaves, joinLeaf{plan: p, scan: scan, schema: schema})
		return []int{len(leaves) - 1}, true
	}
	if _, ok := flatten(root); !ok || len(leaves) < 3 {
		return nil, false
	}
	for i := range leaves {
		for j := i + 1; j < len(leaves); j++ {
			if !uniqueNames(leaves[i].schema, leaves[j].schema) {
				return nil, false
			}
		}
	}

	// Key statistics per edge endpoint, over the leaf's base scan.
	keyStats := func(leaf int, col string) (relation.ColumnStats, bool) {
		idx, err := Schema(leaves[leaf].scan.Cols).IndexOf(col)
		if err != nil {
			return relation.ColumnStats{}, false
		}
		return relation.StatsOf(leaves[leaf].scan.Rows, func(r Row) Value { return r[idx] }), true
	}
	statsI := make([]relation.ColumnStats, len(edges))
	statsJ := make([]relation.ColumnStats, len(edges))
	for ei, e := range edges {
		si, ok := keyStats(e.li, e.keyI)
		if !ok {
			return nil, false
		}
		sj, ok := keyStats(e.lj, e.keyJ)
		if !ok {
			return nil, false
		}
		statsI[ei], statsJ[ei] = si, sj
	}

	// Greedy build: cheapest edge first, then always attach the leaf whose
	// join with the running composite is estimated cheapest.
	start, cost := -1, 0
	for ei := range edges {
		c := statsI[ei].JoinCardinality(statsJ[ei])
		if start < 0 || c < cost {
			start, cost = ei, c
		}
	}
	placed := make([]bool, len(leaves))
	used := make([]bool, len(edges))
	used[start] = true
	placed[edges[start].li], placed[edges[start].lj] = true, true
	seq := []int{edges[start].li, edges[start].lj}
	cur := JoinOn(leaves[edges[start].li].plan, edges[start].keyI,
		leaves[edges[start].lj].plan, edges[start].keyJ)
	curEst := cost
	for len(seq) < len(leaves) {
		bestEdge, bestCost, bestNew := -1, 0, -1
		for ei, e := range edges {
			if used[ei] || placed[e.li] == placed[e.lj] {
				continue
			}
			// The composite inherits the placed endpoint's key distribution,
			// rescaled to the running cardinality estimate.
			outer, innerStats, outerStats := e.lj, statsI[ei], statsJ[ei]
			if placed[e.lj] {
				outer, innerStats, outerStats = e.li, statsJ[ei], statsI[ei]
			}
			c := compositeStats(innerStats, curEst).JoinCardinality(outerStats)
			if bestEdge < 0 || c < bestCost {
				bestEdge, bestCost, bestNew = ei, c, outer
			}
		}
		if bestEdge < 0 {
			return nil, false // disconnected — not a well-formed join tree
		}
		e := edges[bestEdge]
		leftKey, rightKey := e.keyI, e.keyJ
		if bestNew == e.li {
			leftKey, rightKey = e.keyJ, e.keyI
		}
		cur = JoinOn(cur, leftKey, leaves[bestNew].plan, rightKey)
		used[bestEdge], placed[bestNew] = true, true
		seq = append(seq, bestNew)
		curEst = bestCost
	}

	inOrder := true
	for i, leaf := range seq {
		if leaf != i {
			inOrder = false
			break
		}
	}
	if inOrder {
		return nil, false
	}

	// Restore the original column order (leaf schemas concatenated in
	// declaration order) over the reordered chain.
	var exprs []NamedExpr
	for _, leaf := range leaves {
		for _, c := range leaf.schema {
			exprs = append(exprs, NamedExpr{Name: c.Name, Expr: Col(c.Name)})
		}
	}
	names := make([]string, len(seq))
	for i, leaf := range seq {
		names[i] = leaves[leaf].scan.Name
	}
	o.record("join-order", "reordered %d-way join to [%s] (est. %d rows)",
		len(leaves), strings.Join(names, " >< "), curEst)
	return Project(cur, exprs...), true
}

// compositeStats rescales a key column's statistics to the running
// composite's estimated row count, clamping the per-column counts so the
// result stays internally consistent.
func compositeStats(s relation.ColumnStats, rows int) relation.ColumnStats {
	s.RowCount = rows
	if s.Distinct > rows {
		s.Distinct = rows
	}
	if s.MaxFreq > rows {
		s.MaxFreq = rows
	}
	return s
}

// leafWithColumn resolves a join key to the single leaf (among candidates)
// whose schema carries it.
func leafWithColumn(leaves []joinLeaf, candidates []int, col string) (int, bool) {
	found, count := -1, 0
	for _, li := range candidates {
		if _, err := leaves[li].schema.IndexOf(col); err == nil {
			found = li
			count++
		}
	}
	return found, count == 1
}

// --- join-side sizing -----------------------------------------------------

// sizeJoins puts the smaller estimated input of every join on the right —
// the side the engine hashes (the build side) while streaming the left
// (probe) side. A pass-through projection restores the original column
// order; the swap is skipped when any column name appears on both sides
// (the restoring projection would be ambiguous).
//
// Swapping reorders the join's output (it streams the other probe side),
// which every rule but this one avoids. That is invisible to SQL semantics
// except under a Limit, whose kept prefix depends on row order — so
// canReorder flips off for the subtree beneath every LimitPlan and the
// rewrite preserves row multisets everywhere, row *sequences* under limits.
func (o *optimizer) sizeJoins(p Plan, canReorder bool) Plan {
	switch n := p.(type) {
	case *JoinPlan:
		left := o.sizeJoins(n.Left, canReorder)
		right := o.sizeJoins(n.Right, canReorder)
		el, er := estimateRows(left), estimateRows(right)
		if canReorder && el < er {
			if restored, ok := o.swapJoin(left, n.LeftKey, right, n.RightKey, el, er); ok {
				return restored
			}
		}
		return JoinOn(left, n.LeftKey, right, n.RightKey)
	case *FilterPlan:
		return Where(o.sizeJoins(n.Input, canReorder), n.Pred)
	case *ProjectPlan:
		return Project(o.sizeJoins(n.Input, canReorder), n.Exprs...)
	case *AggregatePlan:
		// Float Sum/Avg accumulate in arrival order, so reordering their
		// input can change the result in the last bits (float addition is
		// not associative). Count/Min/Max are order-independent exactly.
		for _, a := range n.Aggs {
			if a.Func == AggSum || a.Func == AggAvg {
				canReorder = false
				break
			}
		}
		return GroupBy(o.sizeJoins(n.Input, canReorder), n.GroupBy, n.Aggs...)
	case *OrderByPlan:
		return OrderBy(o.sizeJoins(n.Input, canReorder), n.Keys...)
	case *DistinctPlan:
		return Distinct(o.sizeJoins(n.Input, canReorder))
	case *LimitPlan:
		return Limit(o.sizeJoins(n.Input, false), n.N)
	default:
		return p
	}
}

func (o *optimizer) swapJoin(left Plan, leftKey string, right Plan, rightKey string, el, er int) (Plan, bool) {
	ls, lerr := left.Schema()
	rs, rerr := right.Schema()
	if lerr != nil || rerr != nil || !uniqueNames(ls, rs) {
		return nil, false
	}
	exprs := make([]NamedExpr, 0, len(ls)+len(rs))
	for _, c := range ls {
		exprs = append(exprs, NamedExpr{Name: c.Name, Expr: Col(c.Name)})
	}
	for _, c := range rs {
		exprs = append(exprs, NamedExpr{Name: c.Name, Expr: Col(c.Name)})
	}
	o.record("join-build-side", "hashed the smaller side (~%d rows) instead of (~%d rows) on %s=%s", el, er, leftKey, rightKey)
	return Project(JoinOn(right, rightKey, left, leftKey), exprs...), true
}

// estimateRows guesses a node's output cardinality from scan sizes: filters
// keep about a third, distinct and grouped aggregates halve, an equi-join
// yields about its larger input. The estimates only order join sides; they
// never affect semantics.
func estimateRows(p Plan) int {
	switch n := p.(type) {
	case *ScanPlan:
		return len(n.Rows)
	case *FilterPlan:
		return max(1, estimateRows(n.Input)/3)
	case *ProjectPlan:
		return estimateRows(n.Input)
	case *JoinPlan:
		return max(estimateRows(n.Left), estimateRows(n.Right))
	case *AggregatePlan:
		if len(n.GroupBy) == 0 {
			return 1
		}
		return max(1, estimateRows(n.Input)/2)
	case *OrderByPlan:
		return estimateRows(n.Input)
	case *DistinctPlan:
		return max(1, estimateRows(n.Input)/2)
	case *LimitPlan:
		est := estimateRows(n.Input)
		if n.N >= 0 && n.N < est {
			return n.N
		}
		return est
	default:
		return 1
	}
}

// ScanCells counts the values the plan's base relations feed into the
// engine: Σ rows×columns over every scan in the tree. Projection pruning
// narrows scans in place, so comparing ScanCells of a raw and an optimized
// plan measures exactly the data volume pruning kept out of execution.
func ScanCells(p Plan) int64 {
	switch n := p.(type) {
	case *ScanPlan:
		return int64(len(n.Rows)) * int64(len(n.Cols))
	case *FilterPlan:
		return ScanCells(n.Input)
	case *ProjectPlan:
		return ScanCells(n.Input)
	case *JoinPlan:
		return ScanCells(n.Left) + ScanCells(n.Right)
	case *AggregatePlan:
		return ScanCells(n.Input)
	case *OrderByPlan:
		return ScanCells(n.Input)
	case *DistinctPlan:
		return ScanCells(n.Input)
	case *LimitPlan:
		return ScanCells(n.Input)
	default:
		return 0
	}
}

// --- projection pruning ---------------------------------------------------

// prune narrows scans to the columns the ancestors actually consume. need
// is the set of column names required above this node; nil means every
// column is required (the root, and anything feeding a Distinct, whose
// identity is the whole row). Only Project and Aggregate introduce concrete
// sets — they rebuild rows, so width changes below them never surface — and
// the root is always pruned with nil, which keeps the output schema intact.
func (o *optimizer) prune(p Plan, need map[string]bool) Plan {
	switch n := p.(type) {
	case *ScanPlan:
		return o.pruneScan(n, need)
	case *FilterPlan:
		return Where(o.prune(n.Input, addExprCols(need, n.Pred)), n.Pred)
	case *ProjectPlan:
		childNeed := map[string]bool{}
		for _, ne := range n.Exprs {
			cols, ok := exprCols(ne.Expr)
			if !ok {
				childNeed = nil
				break
			}
			for c := range cols {
				childNeed[c] = true
			}
		}
		return Project(o.prune(n.Input, childNeed), n.Exprs...)
	case *JoinPlan:
		if need == nil {
			return JoinOn(o.prune(n.Left, nil), n.LeftKey, o.prune(n.Right, nil), n.RightKey)
		}
		ls, lerr := n.Left.Schema()
		rs, rerr := n.Right.Schema()
		if lerr != nil || rerr != nil {
			return JoinOn(o.prune(n.Left, nil), n.LeftKey, o.prune(n.Right, nil), n.RightKey)
		}
		leftNames, rightNames := nameSet(ls), nameSet(rs)
		leftNeed := map[string]bool{n.LeftKey: true}
		rightNeed := map[string]bool{n.RightKey: true}
		for name := range need {
			switch {
			case leftNames[name]:
				// Duplicated names bind to the left copy, so the right copy
				// of a left-resolvable name is unreachable and prunable.
				leftNeed[name] = true
			case rightNames[name]:
				rightNeed[name] = true
			}
		}
		return JoinOn(o.prune(n.Left, leftNeed), n.LeftKey, o.prune(n.Right, rightNeed), n.RightKey)
	case *AggregatePlan:
		childNeed := map[string]bool{}
		for _, g := range n.GroupBy {
			childNeed[g] = true
		}
		for _, a := range n.Aggs {
			if a.Arg == nil {
				continue
			}
			cols, ok := exprCols(a.Arg)
			if !ok {
				childNeed = nil
				break
			}
			for c := range cols {
				childNeed[c] = true
			}
		}
		return GroupBy(o.prune(n.Input, childNeed), n.GroupBy, n.Aggs...)
	case *OrderByPlan:
		childNeed := need
		if childNeed != nil {
			childNeed = copySet(need)
			for _, k := range n.Keys {
				childNeed[k.Column] = true
			}
		}
		return OrderBy(o.prune(n.Input, childNeed), n.Keys...)
	case *DistinctPlan:
		// Distinct dedups on the whole row, so every column is load-bearing.
		return Distinct(o.prune(n.Input, nil))
	case *LimitPlan:
		return Limit(o.prune(n.Input, need), n.N)
	default:
		return p
	}
}

// pruneScan narrows the scan itself — new column list, rows rebuilt with
// only the kept values — rather than wrapping a Project node around it. A
// Project would cost a full extra pass over the base relation at execution
// time; folding the projection into the scan is the column-pruning-at-the-
// reader move, so the dead columns never enter the engine at all.
func (o *optimizer) pruneScan(n *ScanPlan, need map[string]bool) Plan {
	if need == nil || len(n.Cols) == 0 || hasDuplicateNames(n.Cols) {
		return n
	}
	kept := make([]int, 0, len(n.Cols))
	for i, c := range n.Cols {
		if need[c.Name] {
			kept = append(kept, i)
		}
	}
	if len(kept) == len(n.Cols) {
		return n
	}
	if len(kept) == 0 {
		// A zero-column scan would make every row indistinguishable; keep one
		// column so counting nodes still see real rows.
		kept = []int{0}
	}
	cols := make([]Column, len(kept))
	names := make([]string, len(kept))
	for i, j := range kept {
		cols[i] = n.Cols[j]
		names[i] = n.Cols[j].Name
	}
	rows := make([]Row, len(n.Rows))
	for i, r := range n.Rows {
		if len(r) != len(n.Cols) {
			// Malformed relation: leave it alone so compile reports the
			// width mismatch against the caller's tree.
			return n
		}
		nr := make(Row, len(kept))
		for k, j := range kept {
			nr[k] = r[j]
		}
		rows[i] = nr
	}
	o.record("projection-pruning", "narrowed scan %s from %d to %d columns [%s]",
		n.Name, len(n.Cols), len(cols), strings.Join(names, ", "))
	return Scan(n.Name, cols, rows)
}

// addExprCols unions an expression's columns into need (nil stays nil: all
// columns were already required; unknown expression kinds also force nil).
func addExprCols(need map[string]bool, e Expr) map[string]bool {
	if need == nil {
		return nil
	}
	cols, ok := exprCols(e)
	if !ok {
		return nil
	}
	out := copySet(need)
	for c := range cols {
		out[c] = true
	}
	return out
}

// --- small helpers --------------------------------------------------------

func nameSet(s Schema) map[string]bool {
	out := make(map[string]bool, len(s))
	for _, c := range s {
		out[c.Name] = true
	}
	return out
}

func allIn(cols, names map[string]bool) bool {
	for c := range cols {
		if !names[c] {
			return false
		}
	}
	return true
}

func noneIn(cols, names map[string]bool) bool {
	for c := range cols {
		if names[c] {
			return false
		}
	}
	return true
}

func uniqueNames(ls, rs Schema) bool {
	seen := make(map[string]bool, len(ls)+len(rs))
	for _, c := range ls {
		if seen[c.Name] {
			return false
		}
		seen[c.Name] = true
	}
	for _, c := range rs {
		if seen[c.Name] {
			return false
		}
		seen[c.Name] = true
	}
	return true
}

func hasDuplicateNames(s Schema) bool {
	seen := make(map[string]bool, len(s))
	for _, c := range s {
		if seen[c.Name] {
			return true
		}
		seen[c.Name] = true
	}
	return false
}

func copySet(in map[string]bool) map[string]bool {
	out := make(map[string]bool, len(in))
	for k := range in {
		out[k] = true
	}
	return out
}

func schemasEqual(a, b Schema) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
