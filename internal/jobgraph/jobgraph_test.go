package jobgraph

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func noop(context.Context, *StageContext) error { return nil }

func TestValidateRejectsBadGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want string
	}{
		{"empty graph", New("g"), "empty graph"},
		{"empty stage name", New("g").Stage("", noop), "empty name"},
		{"duplicate stage", New("g").Stage("a", noop).Stage("a", noop), "duplicate"},
		{"nil function", New("g").Stage("a", nil), "nil function"},
		{"unknown dep", New("g").Stage("a", noop, "ghost"), "unknown stage"},
		{"zero partitions", New("g").Partitioned("a", 0, func(context.Context, *StageContext, int) (func(), error) { return nil, nil }), "partitions"},
		{"self cycle", New("g").Stage("a", noop, "a"), "cycle"},
	}
	for _, c := range cases {
		err := c.g.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Validate() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestValidateRejectsCycle(t *testing.T) {
	g := New("g").
		Stage("a", noop, "c").
		Stage("b", noop, "a").
		Stage("c", noop, "b")
	if err := g.Validate(); !errors.Is(err, ErrCycle) {
		t.Fatalf("Validate() = %v, want ErrCycle", err)
	}
	if _, err := g.Run(context.Background()); !errors.Is(err, ErrCycle) {
		t.Fatalf("Run() = %v, want ErrCycle", err)
	}
}

func TestRunRespectsDependencies(t *testing.T) {
	var order []string
	record := func(name string) StageFunc {
		return func(context.Context, *StageContext) error {
			order = append(order, name) // safe: chain is linear
			return nil
		}
	}
	g := New("g", WithSlots(4)).
		Stage("c", record("c"), "b").
		Stage("a", record("a")).
		Stage("b", record("b"), "a")
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("execution order = %v, want [a b c]", order)
	}
	// Spans come back in declaration order with deps recorded.
	if spans[0].Stage != "c" || len(spans[0].Deps) != 1 || spans[0].Deps[0] != "b" {
		t.Errorf("span[0] = %+v", spans[0])
	}
	for _, s := range spans {
		if s.Duration() <= 0 {
			t.Errorf("stage %s has non-positive duration", s.Stage)
		}
		if s.Attempts != 1 {
			t.Errorf("stage %s attempts = %d, want 1", s.Stage, s.Attempts)
		}
	}
}

// TestIndependentStagesOverlap proves the pipelining claim: two stages with
// no dependency between them must be in flight simultaneously. Each stage
// signals its start and then waits for the other's signal; a serial
// scheduler would deadlock (bounded here by a timeout).
func TestIndependentStagesOverlap(t *testing.T) {
	aStarted := make(chan struct{})
	bStarted := make(chan struct{})
	rendezvous := func(mine, other chan struct{}) StageFunc {
		return func(ctx context.Context, _ *StageContext) error {
			close(mine)
			select {
			case <-other:
				return nil
			case <-time.After(5 * time.Second):
				return errors.New("peer stage never started: no overlap")
			}
		}
	}
	g := New("g", WithSlots(2)).
		Stage("a", rendezvous(aStarted, bStarted)).
		Stage("b", rendezvous(bStarted, aStarted))
	if _, err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedStageCommitsEveryPartition(t *testing.T) {
	const parts = 8
	out := make([]int, parts)
	g := New("g", WithSlots(3)).
		Partitioned("square", parts, func(_ context.Context, sc *StageContext, p int) (func(), error) {
			v := p * p
			sc.AddRecords(1)
			return func() { out[p] = v }, nil
		})
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range out {
		if v != p*p {
			t.Errorf("out[%d] = %d, want %d", p, v, p*p)
		}
	}
	if spans[0].Attempts != parts || spans[0].Records != parts {
		t.Errorf("span = %+v, want %d attempts and records", spans[0], parts)
	}
	if spans[0].Speculative != 0 {
		t.Errorf("speculative = %d, want 0 without speculation", spans[0].Speculative)
	}
}

// TestSpeculativeRetry blocks the first attempt of one partition forever;
// with speculation enabled a duplicate attempt completes the stage, the
// duplicate's commit wins, and the straggler's late result is discarded.
func TestSpeculativeRetry(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var calls atomic.Int64
	out := make([]string, 2)
	g := New("g", WithSlots(4), WithSpeculation(5*time.Millisecond)).
		Partitioned("work", 2, func(ctx context.Context, _ *StageContext, p int) (func(), error) {
			if p == 0 && calls.Add(1) == 1 {
				// First attempt of partition 0 straggles until the test ends.
				select {
				case <-release:
				case <-ctx.Done():
				}
				return func() { out[0] = "straggler" }, nil
			}
			return func() { out[p] = "fast" }, nil
		})
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if spans[0].Speculative < 1 {
		t.Fatalf("speculative = %d, want >= 1", spans[0].Speculative)
	}
	if out[0] != "fast" || out[1] != "fast" {
		t.Fatalf("out = %v, want both committed by winning attempts", out)
	}
	if spans[0].Attempts < 3 {
		t.Errorf("attempts = %d, want >= 3 (2 primaries + 1 speculative)", spans[0].Attempts)
	}
}

func TestStageErrorAbortsDownstream(t *testing.T) {
	boom := errors.New("boom")
	ran := false
	g := New("g").
		Stage("fail", func(context.Context, *StageContext) error { return boom }).
		Stage("after", func(context.Context, *StageContext) error { ran = true; return nil }, "fail")
	spans, err := g.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("Run() = %v, want boom", err)
	}
	if ran {
		t.Fatal("dependent stage ran after its dependency failed")
	}
	if spans[0].Err == "" {
		t.Errorf("failed stage span missing error: %+v", spans[0])
	}
	if !spans[1].Start.IsZero() || spans[1].Duration() != 0 {
		t.Errorf("never-started stage has a span time: %+v", spans[1])
	}
}

func TestPartitionFailureFailsStage(t *testing.T) {
	boom := errors.New("part boom")
	g := New("g", WithSlots(2)).
		Partitioned("work", 4, func(_ context.Context, _ *StageContext, p int) (func(), error) {
			if p == 2 {
				return nil, boom
			}
			return nil, nil
		})
	if _, err := g.Run(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Run() = %v, want part boom", err)
	}
}

// TestCancellationStopsScheduling cancels the context while the root stage
// is running: the root observes the cancellation, and no dependent stage is
// ever started.
func TestCancellationStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	g := New("g", WithSlots(2)).
		Stage("root", func(ctx context.Context, _ *StageContext) error {
			cancel()
			<-ctx.Done()
			return ctx.Err()
		}).
		Stage("after", func(context.Context, *StageContext) error { ran = true; return nil }, "root")
	_, err := g.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("dependent stage ran after cancellation")
	}
}

// TestCancellationSkipsUnstartedRoots cancels before Run: even root stages
// must not execute their bodies.
func TestCancellationSkipsUnstartedRoots(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := atomic.Bool{}
	g := New("g", WithSlots(1)).
		Stage("a", func(context.Context, *StageContext) error { ran.Store(true); return nil })
	if _, err := g.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("stage body ran under a cancelled context")
	}
}

func TestSpanCounters(t *testing.T) {
	g := New("g").
		Stage("a", func(_ context.Context, sc *StageContext) error {
			sc.AddRecords(10)
			sc.AddShuffle(4, 400)
			sc.AddReduceOps(9)
			sc.AddCacheHits(3)
			return nil
		})
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := spans[0]
	if s.Records != 10 || s.ShuffledRecords != 4 || s.ShuffleBytes != 400 || s.ReduceOps != 9 || s.CacheHits != 3 {
		t.Fatalf("span counters = %+v", s)
	}
}

func TestSpanCombineCounters(t *testing.T) {
	g := New("g").
		Stage("combine", func(_ context.Context, sc *StageContext) error {
			sc.AddCombine(100, 20)
			sc.AddCombine(50, 10)
			return nil
		})
	spans, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := spans[0]
	if s.RecordsPreCombine != 150 || s.RecordsPostCombine != 30 {
		t.Fatalf("combine counters = pre %d, post %d, want 150, 30", s.RecordsPreCombine, s.RecordsPostCombine)
	}
	if s.RecordsCombined != 120 {
		t.Fatalf("RecordsCombined = %d, want pre-post = 120", s.RecordsCombined)
	}
}
