package bench

import (
	"strings"
	"testing"

	"upa/internal/cluster"
)

func TestShuffleBenchCombineShrinksShuffle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lineitems = 4000
	rows, err := ShuffleBench(cfg, cluster.PaperTestbed(), []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.RawShuffled != int64(cfg.Lineitems) {
			t.Errorf("skew %v: raw path shuffled %d records, want all %d", r.Skew, r.RawShuffled, cfg.Lineitems)
		}
		if r.CombinedShuffled >= r.RawShuffled {
			t.Errorf("skew %v: combine did not shrink the shuffle: %d >= %d", r.Skew, r.CombinedShuffled, r.RawShuffled)
		}
		// The combine conserves records: shipped plus combined-away is the
		// pre-combine total, which is exactly what the raw path ships.
		if r.CombinedShuffled+r.CombinedAway != r.RawShuffled {
			t.Errorf("skew %v: accounting broken: %d shipped + %d combined != %d",
				r.Skew, r.CombinedShuffled, r.CombinedAway, r.RawShuffled)
		}
		if r.Reduction <= 0 || r.Reduction >= 1 {
			t.Errorf("skew %v: reduction %v out of (0, 1)", r.Skew, r.Reduction)
		}
		if r.CombinedSimCost >= r.RawSimCost {
			t.Errorf("skew %v: model prices combined path at %v, raw at %v — no simulated win",
				r.Skew, r.CombinedSimCost, r.RawSimCost)
		}
	}
	// Skew concentrates keys, so the skewed sweep point ships no more than
	// the uniform one.
	if rows[1].CombinedShuffled > rows[0].CombinedShuffled {
		t.Errorf("skewed point shuffled more than uniform: %d > %d",
			rows[1].CombinedShuffled, rows[0].CombinedShuffled)
	}
}

func TestShuffleBenchRejectsBadSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lineitems = 500
	if _, err := ShuffleBench(cfg, cluster.PaperTestbed(), []float64{1.0}); err == nil {
		t.Fatal("skew 1.0 accepted")
	}
	if _, err := ShuffleBench(cfg, cluster.PaperTestbed(), []float64{-0.1}); err == nil {
		t.Fatal("negative skew accepted")
	}
}

func TestWriteShuffleCSV(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lineitems = 1000
	rows, err := ShuffleBench(cfg, cluster.PaperTestbed(), []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteShuffleCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d csv lines, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "skew,records,partitions,distinct_keys") {
		t.Errorf("header = %q", lines[0])
	}
}
