package upa

import (
	"errors"
	"math"
	"testing"
)

func keyedCount() KeyedQuery[user, string] {
	return KeyedQuery[user, string]{
		Name: "visits-by-tier",
		Key: func(u user) string {
			if u.Active {
				return "active"
			}
			return "casual"
		},
		Value: func(user) float64 { return 1 },
	}
}

func TestReleaseByKeyBasics(t *testing.T) {
	s := newSessionT(t, WithSampleSize(100), WithSeed(6))
	users := testUsers(900)
	res, err := ReleaseByKey(s, keyedCount(), users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Query != "visits-by-tier" {
		t.Errorf("Query = %q", res.Query)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
	exact := map[string]float64{}
	for _, u := range users {
		if u.Active {
			exact["active"]++
		} else {
			exact["casual"]++
		}
	}
	for _, g := range res.Groups {
		if g.Sensitivity <= 0 {
			t.Errorf("group %v has sensitivity %v", g.Key, g.Sensitivity)
		}
		// Count sensitivity is 1; noise at eps=0.1 has scale 10.
		if math.Abs(g.Output-exact[g.Key]) > 200 {
			t.Errorf("group %v output %v wildly far from exact %v", g.Key, g.Output, exact[g.Key])
		}
	}
	// Counts: each record's influence on its group is exactly 1.
	if res.GlobalSensitivity != 1 {
		t.Errorf("GlobalSensitivity = %v, want 1", res.GlobalSensitivity)
	}
	// Deterministic group order (lexicographic by rendered key).
	if res.Groups[0].Key != "active" || res.Groups[1].Key != "casual" {
		t.Errorf("groups not sorted: %v, %v", res.Groups[0].Key, res.Groups[1].Key)
	}
}

func TestReleaseByKeySumSensitivity(t *testing.T) {
	s := newSessionT(t, WithSampleSize(600), WithSeed(8))
	users := testUsers(600) // sample covers everything: exact sensitivities
	q := KeyedQuery[user, string]{
		Name:  "spend-by-tier",
		Key:   func(u user) string { return map[bool]string{true: "active", false: "casual"}[u.Active] },
		Value: func(u user) float64 { return u.Spend },
	}
	res, err := ReleaseByKey(s, q, users, nil)
	if err != nil {
		t.Fatal(err)
	}
	var maxSpend float64
	for _, u := range users {
		maxSpend = math.Max(maxSpend, u.Spend)
	}
	if res.GlobalSensitivity != maxSpend {
		t.Errorf("GlobalSensitivity = %v, want max spend %v", res.GlobalSensitivity, maxSpend)
	}
}

func TestReleaseByKeyWithDomain(t *testing.T) {
	s := newSessionT(t, WithSampleSize(50), WithSeed(3))
	// All data lands in one group; the domain sampler introduces a second
	// group through addition neighbours, widening the global sensitivity.
	data := make([]user, 300)
	for i := range data {
		data[i] = user{Active: false, Spend: 1}
	}
	domain := func(*RNG) user { return user{Active: true, Spend: 500} }
	q := KeyedQuery[user, string]{
		Name:  "with-additions",
		Key:   func(u user) string { return map[bool]string{true: "p", false: "f"}[u.Active] },
		Value: func(u user) float64 { return u.Spend },
	}
	res, err := ReleaseByKey(s, q, data, domain)
	if err != nil {
		t.Fatal(err)
	}
	if res.GlobalSensitivity < 500 {
		t.Errorf("addition neighbour ignored: global sensitivity %v, want >= 500",
			res.GlobalSensitivity)
	}
}

func TestReleaseByKeyValidation(t *testing.T) {
	s := newSessionT(t)
	if _, err := ReleaseByKey(s, KeyedQuery[user, string]{}, testUsers(10), nil); err == nil {
		t.Error("invalid keyed query accepted")
	}
	if _, err := ReleaseByKey(s, keyedCount(), testUsers(1), nil); err == nil {
		t.Error("single-record input accepted")
	}
}

func TestReleaseByKeySpendsBudgetOnce(t *testing.T) {
	s := newSessionT(t, WithSampleSize(50), WithTotalBudget(0.15))
	if _, err := ReleaseByKey(s, keyedCount(), testUsers(300), nil); err != nil {
		t.Fatal(err)
	}
	// One keyed release spends one epsilon (parallel composition), so a
	// second would exceed the 0.15 budget at eps 0.1.
	if got := s.SpentBudget(); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("SpentBudget = %v, want 0.1", got)
	}
	if _, err := ReleaseByKey(s, keyedCount(), testUsers(300), nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("second release error = %v, want ErrBudgetExhausted", err)
	}
}

func TestReleaseByKeyCustomReducer(t *testing.T) {
	// A per-key maximum: the reducer is commutative and associative but not
	// invertible, exercising the exclusion-based neighbour computation.
	s := newSessionT(t, WithSampleSize(600), WithSeed(12))
	users := testUsers(600) // full sampling: exact per-key sensitivities
	q := KeyedQuery[user, string]{
		Name:   "max-spend-by-tier",
		Key:    func(u user) string { return map[bool]string{true: "active", false: "casual"}[u.Active] },
		Value:  func(u user) float64 { return u.Spend },
		Reduce: math.Max,
	}
	res, err := ReleaseByKey(s, q, users, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Per-key influence of the maximum: max minus the runner-up when the
	// removed record is the unique maximum, else 0; the global sensitivity
	// is bounded by the overall max spend.
	var maxSpend float64
	for _, u := range users {
		maxSpend = math.Max(maxSpend, u.Spend)
	}
	if res.GlobalSensitivity < 0 || res.GlobalSensitivity > maxSpend {
		t.Fatalf("global sensitivity %v outside [0, %v]", res.GlobalSensitivity, maxSpend)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Groups))
	}
}

func TestReleaseByKeyDeterministic(t *testing.T) {
	run := func() []KeyedValue[string] {
		s := newSessionT(t, WithSampleSize(80), WithSeed(44))
		res, err := ReleaseByKey(s, keyedCount(), testUsers(400), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Groups
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("keyed release not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
}
