module upa

go 1.22
