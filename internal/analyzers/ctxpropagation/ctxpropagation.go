// Package ctxpropagation enforces the context discipline PR 2 threaded
// through the engine: a function that was handed a context.Context must not
// drop it on the floor by calling a non-Ctx dataset/engine variant, and
// internal code must not mint fresh root contexts with context.Background()
// or context.TODO() — that severs the cancellation chain, so a cancelled
// release keeps computing (exactly the class of silent drift the chaos soak
// exists to catch).
package ctxpropagation

import (
	"fmt"
	"go/ast"
	"strings"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the ctxpropagation analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpropagation",
	Doc: "flags calls to non-Ctx dataset/engine variants from functions that " +
		"already have a context.Context parameter in scope, and " +
		"context.Background()/context.TODO() calls in internal non-test code",
	Run: run,
}

// ctxVariants maps each non-Ctx dataset/engine entry point to its
// context-accepting sibling. Matching is by callee name, so both
// method-style (d.Collect()) and function-style (mapreduce.ReduceByKey,
// core.Run) call sites are covered.
var ctxVariants = map[string]string{
	"Collect":           "CollectCtx",
	"CollectPartitions": "CollectPartitionsCtx",
	"Count":             "CountCtx",
	"Reduce":            "ReduceCtx",
	"ReduceByPartition": "ReduceByPartitionCtx",
	"Aggregate":         "AggregateCtx",
	"ReduceByKey":       "ReduceByKeyCtx",
	"GroupByKey":        "GroupByKeyCtx",
	"CombineByKey":      "CombineByKeyCtx",
	"Join":              "JoinCtx",
	"CoGroup":           "CoGroupCtx",
	"Top":               "TopCtx",
	"Run":               "RunCtx",
}

func run(pass *analysis.Pass) error {
	internal := strings.Contains(pass.PkgPath, "/internal/") || strings.HasPrefix(pass.PkgPath, "internal/")
	for _, file := range pass.Files {
		// ctxNames tracks the names of context.Context parameters of the
		// enclosing functions, so closures nested inside a ctx-taking
		// function count as "ctx in scope" too.
		var ctxNames []string

		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			if ft := analysis.FuncTypeOf(n); ft != nil {
				names := ctxParamNames(pass, ft)
				ctxNames = append(ctxNames, names...)
				// Recurse manually so we can pop on the way out.
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body != nil {
					ast.Inspect(body, walk)
				}
				ctxNames = ctxNames[:len(ctxNames)-len(names)]
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pass.CalleePkgFunc(call); ok && path == "context" {
				if (name == "Background" || name == "TODO") && internal {
					pass.Reportf(call.Pos(), fmt.Sprintf(
						"context.%s() in internal package %s severs the cancellation chain; accept and propagate a caller context (or annotate a boundary wrapper with //upa:allow)", name, pass.PkgPath))
				}
				return true
			}
			if len(ctxNames) == 0 {
				return true
			}
			name := calleeName(call)
			ctxName, isVariant := ctxVariants[name]
			if !isVariant {
				return true
			}
			if passesContext(call, ctxNames) {
				// The callee shares a name with a non-Ctx variant but is
				// already being handed a context (e.g. jobgraph's g.Run(ctx)).
				return true
			}
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"call to %s ignores the context.Context %s in scope; use %s so cancellation reaches the engine", name, ctxNames[len(ctxNames)-1], ctxName))
			return true
		}
		ast.Inspect(file, walk)
	}
	return nil
}

// ctxParamNames returns the non-blank names of ft's context.Context
// parameters (empty when there are none).
func ctxParamNames(pass *analysis.Pass, ft *ast.FuncType) []string {
	if ft == nil || ft.Params == nil {
		return nil
	}
	var out []string
	for _, field := range ft.Params.List {
		sel, ok := field.Type.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			continue
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || pass.ImportPathOf(ident) != "context" {
			continue
		}
		for _, n := range field.Names {
			if n.Name != "_" {
				out = append(out, n.Name)
			}
		}
	}
	return out
}

// passesContext reports whether any argument of the call mentions one of
// the in-scope context parameters (or derives a context from one via
// context.WithX / r.Context()), i.e. the call is already threading ctx.
func passesContext(call *ast.CallExpr, ctxNames []string) bool {
	names := make(map[string]bool, len(ctxNames))
	for _, n := range ctxNames {
		names[n] = true
	}
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.Ident:
				if names[e.Name] {
					found = true
				}
			case *ast.SelectorExpr:
				if e.Sel.Name == "Context" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// calleeName extracts the called function's bare name, unwrapping explicit
// generic instantiation.
func calleeName(call *ast.CallExpr) string {
	fun := call.Fun
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
