package serve

import (
	"fmt"
	"testing"
)

func TestCacheKeyDistinguishesComponents(t *testing.T) {
	base := CacheKey("fp", "orders", 0.1, 1)
	for name, other := range map[string]string{
		"fingerprint": CacheKey("fq", "orders", 0.1, 1),
		"protected":   CacheKey("fp", "lineitem", 0.1, 1),
		"epsilon":     CacheKey("fp", "orders", 0.2, 1),
		"seed":        CacheKey("fp", "orders", 0.1, 2),
	} {
		if other == base {
			t.Errorf("cache key ignores %s", name)
		}
	}
	// ε is keyed by exact bits, not formatting: nearby floats differ.
	if CacheKey("fp", "orders", 0.1, 1) == CacheKey("fp", "orders", 0.1+1e-17, 1) {
		// 0.1+1e-17 rounds to the same float64; pick a genuinely different one
		t.Skip("identical float64s")
	}
	if CacheKey("fp", "orders", 0.30000000000000004, 1) == CacheKey("fp", "orders", 0.3, 1) {
		t.Error("cache key collapses distinct ε bit patterns")
	}
}

func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		c.store(key, CachedRelease{Query: key})
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if _, ok := c.lookup("k0"); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	for _, key := range []string{"k1", "k2"} {
		if _, ok := c.lookup(key); !ok {
			t.Fatalf("%s evicted out of FIFO order", key)
		}
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (2, 1)", hits, misses)
	}
}

func TestCacheRestoreRefreshesInPlace(t *testing.T) {
	c := NewCache(2)
	c.store("k", CachedRelease{Query: "a"})
	c.store("k", CachedRelease{Query: "b"})
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	rel, _ := c.lookup("k")
	if rel.Query != "b" {
		t.Fatalf("re-store did not refresh: %q", rel.Query)
	}
}

func TestCacheReplayBypassesStats(t *testing.T) {
	c := NewCache(2)
	c.replay("k", CachedRelease{Query: "a"})
	if hits, misses := c.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("replay moved stats: (%d, %d)", hits, misses)
	}
	if _, ok := c.lookup("k"); !ok {
		t.Fatal("replayed entry not resident")
	}
}

func TestCacheCompactPreservesInsertionOrder(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 3; i++ {
		c.store(fmt.Sprintf("k%d", i), CachedRelease{Query: fmt.Sprintf("q%d", i)})
	}
	entries := c.compact()
	if len(entries) != 3 {
		t.Fatalf("compact entries = %d", len(entries))
	}
	for i, e := range entries {
		if e.Kind != entryRelease || e.Key != fmt.Sprintf("k%d", i) {
			t.Fatalf("entry %d out of order: %+v", i, e)
		}
	}
}
