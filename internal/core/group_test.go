package core

import (
	"math"
	"testing"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

func TestGroupSizeValidation(t *testing.T) {
	eng := mapreduce.NewEngine()
	cfg := DefaultConfig()
	cfg.GroupSize = -1
	if _, err := NewSystem(eng, cfg); err == nil {
		t.Error("negative GroupSize accepted")
	}
	cfg = DefaultConfig()
	cfg.SampleSize = 10
	cfg.GroupSize = 11
	if _, err := NewSystem(eng, cfg); err == nil {
		t.Error("GroupSize above SampleSize accepted")
	}
}

func TestGroupNeighboursOff(t *testing.T) {
	sys := newTestSystem(t, nil) // default GroupSize 0
	res, err := Run(sys, countQuery(), seqData(300), uniformDomain(0, 300))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.GroupRemovalOutputs) != 0 || len(res.GroupAdditionOutputs) != 0 {
		t.Fatalf("group neighbours sampled with GroupSize 0: %d/%d",
			len(res.GroupRemovalOutputs), len(res.GroupAdditionOutputs))
	}
}

func TestGroupNeighboursCount(t *testing.T) {
	const g = 5
	sys := newTestSystem(t, func(c *Config) { c.GroupSize = g }) // n=50
	res, err := Run(sys, countQuery(), seqData(400), uniformDomain(0, 400))
	if err != nil {
		t.Fatal(err)
	}
	if want := 50 / g; len(res.GroupRemovalOutputs) != want {
		t.Fatalf("group removals = %d, want %d", len(res.GroupRemovalOutputs), want)
	}
	if want := 50 / g; len(res.GroupAdditionOutputs) != want {
		t.Fatalf("group additions = %d, want %d", len(res.GroupAdditionOutputs), want)
	}
	// For a count, removing a g-block yields exactly count - g; adding one
	// yields count + g.
	for _, o := range res.GroupRemovalOutputs {
		if o[0] != 400-g {
			t.Fatalf("group removal output = %v, want %v", o[0], 400-g)
		}
	}
	for _, o := range res.GroupAdditionOutputs {
		if o[0] != 400+g {
			t.Fatalf("group addition output = %v, want %v", o[0], 400+g)
		}
	}
}

func TestGroupWidensSensitivity(t *testing.T) {
	// Group neighbours shift the fitted distribution outward, so the
	// inferred range must widen to cover group influence.
	data := seqData(500)
	run := func(group int) *Result {
		sys := newTestSystem(t, func(c *Config) { c.GroupSize = group })
		res, err := Run(sys, countQuery(), data, uniformDomain(0, 500))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	single := run(0)
	grouped := run(10)
	if grouped.Sensitivity[0] <= single.Sensitivity[0] {
		t.Fatalf("group sensitivity %v not above individual %v",
			grouped.Sensitivity[0], single.Sensitivity[0])
	}
	// The empirical group influence on a count is exactly the group size.
	if grouped.EmpiricalLocalSensitivity[0] != 10 {
		t.Fatalf("empirical group sensitivity = %v, want 10",
			grouped.EmpiricalLocalSensitivity[0])
	}
	// The enforced range must cover every group neighbour.
	for _, o := range grouped.GroupRemovalOutputs {
		if o[0] < grouped.RangeLo[0]-grouped.Sensitivity[0] {
			t.Fatalf("group removal %v far outside range [%v, %v]",
				o[0], grouped.RangeLo[0], grouped.RangeHi[0])
		}
	}
}

func TestGroupSumBlocksAreDisjoint(t *testing.T) {
	// Block removals must remove g distinct records: for a sum over
	// distinct powers of two, every block-removal delta identifies its
	// records uniquely.
	data := make([]float64, 64)
	for i := range data {
		data[i] = math.Pow(2, float64(i%20)) // bounded but varied
	}
	sys := newTestSystem(t, func(c *Config) {
		c.SampleSize = 20
		c.GroupSize = 4
	})
	res, err := Run(sys, sumQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range data {
		total += v
	}
	for _, o := range res.GroupRemovalOutputs {
		removed := total - o[0]
		// Each block removes 4 records, so the delta is at least 4 times
		// the smallest record and at most 4 times the largest.
		if removed < 4*1 || removed > 4*math.Pow(2, 19) {
			t.Fatalf("block removal delta %v outside plausible bounds", removed)
		}
	}
}

func TestSplitVectorBudget(t *testing.T) {
	vectorQuery := Query[float64]{
		Name:      "vec3",
		StateDim:  3,
		OutputDim: 3,
		Map:       func(x float64) State { return State{x, x * x, 1} },
	}
	data := seqData(200)
	run := func(split bool) *Result {
		sys := newTestSystem(t, func(c *Config) { c.SplitVectorBudget = split })
		res, err := Run(sys, vectorQuery, data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	whole := run(false)
	if whole.EffectiveEpsilon != 0.1 {
		t.Errorf("EffectiveEpsilon = %v, want 0.1", whole.EffectiveEpsilon)
	}
	split := run(true)
	if want := 0.1 / 3; math.Abs(split.EffectiveEpsilon-want) > 1e-12 {
		t.Errorf("split EffectiveEpsilon = %v, want %v", split.EffectiveEpsilon, want)
	}
	// Scalar queries are unaffected by the option.
	sys := newTestSystem(t, func(c *Config) { c.SplitVectorBudget = true })
	res, err := Run(sys, countQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveEpsilon != 0.1 {
		t.Errorf("scalar EffectiveEpsilon = %v, want 0.1", res.EffectiveEpsilon)
	}
}

func TestGroupDeterministic(t *testing.T) {
	data := seqData(256)
	run := func() []float64 {
		sys := newTestSystem(t, func(c *Config) { c.GroupSize = 5; c.Seed = 77 })
		res, err := Run(sys, sumQuery(), data, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sensitivity
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("group sensitivity not deterministic: %v vs %v", a, b)
		}
	}
	_ = stats.NewRNG // keep stats import meaningful if helpers change
}
