package bench

import (
	"bytes"
	"strings"
	"testing"

	"upa/internal/cluster"
)

func TestChaosSweep(t *testing.T) {
	cfg := smallConfig()
	// Injection decisions are a pure function of (seed, site, task, attempt);
	// seed 1 is known to fault at least one task at rate 0.1 on this workload
	// shape, so the sweep demonstrably exercises recovery.
	cfg.Seed = 1
	rates := []float64{0, 0.1}
	rows, err := ChaosSweep(cfg, cluster.PaperTestbed(), rates, nil)
	if err != nil {
		t.Fatal(err)
	}
	policies := len(DefaultChaosPolicies())
	if len(rows) != len(rates)*policies {
		t.Fatalf("got %d rows, want %d", len(rows), len(rates)*policies)
	}
	for _, r := range rows {
		if r.FaultRate == 0 {
			// No faults: every policy completes deterministically at ~baseline
			// price with zero recovery activity.
			if !r.Completed || !r.Deterministic {
				t.Errorf("rate 0 policy %s: completed=%v deterministic=%v", r.Policy, r.Completed, r.Deterministic)
			}
			if r.TaskFaults != 0 || r.TaskRetries != 0 || r.SimRetry != 0 {
				t.Errorf("rate 0 policy %s recovered from nothing: %+v", r.Policy, r)
			}
			continue
		}
		if r.Completed != r.Deterministic {
			t.Errorf("rate %v policy %s: completed=%v but deterministic=%v",
				r.FaultRate, r.Policy, r.Completed, r.Deterministic)
		}
		if r.Completed && r.Policy != "fail-fast" && r.Overhead < 1 {
			t.Errorf("rate %v policy %s: overhead %v < 1 despite recovery work",
				r.FaultRate, r.Policy, r.Overhead)
		}
	}
	// At rate 0.1 the retrying policies must have absorbed faults; determinism
	// of their recovered outputs was already enforced inside ChaosSweep.
	recovered := false
	for _, r := range rows {
		if r.FaultRate > 0 && r.Completed && r.TaskFaults > 0 {
			recovered = true
		}
	}
	if !recovered {
		t.Error("no policy recovered from any fault at rate 0.1; sweep exercises nothing")
	}

	var csv bytes.Buffer
	if err := WriteChaosCSV(&csv, rows); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(csv.String()), "\n")); got != len(rows)+1 {
		t.Errorf("CSV has %d lines, want %d", got, len(rows)+1)
	}
	if !strings.Contains(csv.String(), "task_faults") || !strings.Contains(csv.String(), "sim_retry_us") {
		t.Error("CSV header missing chaos columns")
	}
	out := RenderChaos(rows)
	if !strings.Contains(out, "fail-fast") || !strings.Contains(out, "patient") {
		t.Errorf("render missing policy rows:\n%s", out)
	}
}

func TestChaosSweepRejectsBadRate(t *testing.T) {
	if _, err := ChaosSweep(smallConfig(), cluster.PaperTestbed(), []float64{1.5}, nil); err == nil {
		t.Error("rate 1.5 accepted")
	}
}

func TestDefaultChaosPoliciesShapes(t *testing.T) {
	ps := DefaultChaosPolicies()
	if len(ps) < 3 {
		t.Fatalf("want >= 3 policies, got %d", len(ps))
	}
	if ps[0].Policy.Attempts() != 1 {
		t.Errorf("fail-fast policy retries: %d attempts", ps[0].Policy.Attempts())
	}
	for _, p := range ps[1:] {
		if p.Policy.Attempts() < 2 {
			t.Errorf("policy %s does not retry", p.Name)
		}
	}
}
