package stats

import (
	"math"
	"testing"
)

func TestLaplaceSampleMoments(t *testing.T) {
	rng := NewRNG(31)
	l := Laplace{Mu: 2, B: 3}
	const n = 300000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := l.Sample(rng)
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("Laplace mean = %v, want about 2", mean)
	}
	if wantVar := 2 * 3.0 * 3.0; math.Abs(variance-wantVar)/wantVar > 0.05 {
		t.Errorf("Laplace variance = %v, want about %v", variance, wantVar)
	}
}

func TestLaplacePDF(t *testing.T) {
	l := Laplace{Mu: 0, B: 1}
	if got, want := l.PDF(0), 0.5; math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF(0) = %v, want %v", got, want)
	}
	if got, want := l.PDF(1), 0.5*math.Exp(-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF(1) = %v, want %v", got, want)
	}
	if l.PDF(-1) != l.PDF(1) {
		t.Error("PDF not symmetric about Mu")
	}
	if (Laplace{Mu: 0, B: 0}).PDF(0) != 0 {
		t.Error("degenerate scale should have zero density")
	}
}

func TestNewMechanismValidation(t *testing.T) {
	if _, err := NewMechanism(0, nil); err == nil {
		t.Error("epsilon 0 accepted")
	}
	if _, err := NewMechanism(-1, nil); err == nil {
		t.Error("negative epsilon accepted")
	}
	m, err := NewMechanism(0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epsilon() != 0.1 {
		t.Errorf("Epsilon() = %v, want 0.1", m.Epsilon())
	}
}

func TestPerturbZeroSensitivity(t *testing.T) {
	m, err := NewMechanism(0.1, NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Perturb(42, 0); got != 42 {
		t.Errorf("Perturb with zero sensitivity = %v, want 42", got)
	}
}

func TestPerturbNoiseScale(t *testing.T) {
	m, err := NewMechanism(0.5, NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	var ss float64
	for i := 0; i < n; i++ {
		d := m.Perturb(0, 2) // scale b = 2/0.5 = 4, variance = 2b^2 = 32
		ss += d * d
	}
	variance := ss / n
	if math.Abs(variance-32)/32 > 0.05 {
		t.Errorf("noise variance = %v, want about 32", variance)
	}
}

// TestMechanismDPRatio verifies the defining ratio bound of the Laplace
// mechanism empirically: for neighbouring outputs differing by exactly the
// sensitivity, density ratios at any point are bounded by exp(epsilon).
func TestMechanismDPRatio(t *testing.T) {
	const (
		eps         = 0.1
		sensitivity = 3.0
	)
	b := sensitivity / eps
	la := Laplace{Mu: 0, B: b}
	lb := Laplace{Mu: sensitivity, B: b}
	for x := -50.0; x <= 50; x += 0.5 {
		ratio := la.PDF(x) / lb.PDF(x)
		if ratio > math.Exp(eps)+1e-9 || ratio < math.Exp(-eps)-1e-9 {
			t.Fatalf("density ratio at %v is %v, outside [e^-eps, e^eps]", x, ratio)
		}
	}
}

func TestPerturbVector(t *testing.T) {
	m, err := NewMechanism(1, NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	val := []float64{1, 2, 3}
	sens := []float64{0, 0, 0}
	out, err := m.PerturbVector(val, sens)
	if err != nil {
		t.Fatal(err)
	}
	for i := range val {
		if out[i] != val[i] {
			t.Errorf("coordinate %d perturbed with zero sensitivity", i)
		}
	}
	if _, err := m.PerturbVector([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Ensure the output is a fresh slice.
	out2, err := m.PerturbVector(val, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if &out2[0] == &val[0] {
		t.Error("PerturbVector aliased its input")
	}
}
