// Package checksum is the repository's one integrity-check primitive:
// CRC-32C (Castagnoli) over a byte slice. Both the spill codec
// (internal/mapreduce) and the serve-layer ledger journal/snapshot
// (internal/serve) frame their on-disk bytes with it, so a flipped bit
// anywhere in persisted state is detected at read time instead of being
// decoded into silently wrong data. CRC-32C is the right tool here: the
// threat model is storage bit rot and torn writes, not an adversary, and
// the Castagnoli polynomial has hardware support (SSE4.2 / ARMv8 CRC
// instructions) through hash/crc32, so checking costs far less than the
// gob or JSON decode it guards.
package checksum

import "hash/crc32"

// table is the Castagnoli polynomial table; MakeTable memoizes internally
// and selects the hardware-accelerated implementation when available.
var table = crc32.MakeTable(crc32.Castagnoli)

// Sum returns the CRC-32C checksum of b.
func Sum(b []byte) uint32 { return crc32.Checksum(b, table) }

// Update extends an existing checksum with more bytes, for callers that
// stream data through in chunks: Update(Update(0, a), b) == Sum(a||b)
// when starting from Sum(nil) == 0.
func Update(crc uint32, b []byte) uint32 { return crc32.Update(crc, table, b) }
