package chaos

import (
	"testing"
	"time"
)

// TestDecisionsAreDeterministic is the package's core contract: two
// injectors with the same policy agree on every decision, independent of
// call order.
func TestDecisionsAreDeterministic(t *testing.T) {
	p := Policy{
		Seed:             42,
		TaskFaultRate:    0.3,
		StragglerRate:    0.3,
		StragglerDelay:   time.Millisecond,
		ShuffleErrorRate: 0.3,
		SlotLossRate:     0.3,
	}
	a, b := New(p), New(p)
	sites := []string{"source.map", "source.map.reduceByKey:shuffle", "stage:bulk-reduce"}
	// Query b in reverse order to prove order-independence.
	type coord struct {
		site          string
		task, attempt int
	}
	var coords []coord
	for _, s := range sites {
		for task := 0; task < 20; task++ {
			for attempt := 1; attempt <= 3; attempt++ {
				coords = append(coords, coord{s, task, attempt})
			}
		}
	}
	got := make([]bool, len(coords))
	for i, c := range coords {
		got[i] = a.TaskFault(c.site, c.task, c.attempt)
	}
	for i := len(coords) - 1; i >= 0; i-- {
		c := coords[i]
		if b.TaskFault(c.site, c.task, c.attempt) != got[i] {
			t.Fatalf("TaskFault(%q, %d, %d) disagrees between same-policy injectors", c.site, c.task, c.attempt)
		}
	}
	for i, c := range coords {
		if a.TaskDelay(c.site, c.task, c.attempt) != b.TaskDelay(c.site, c.task, c.attempt) {
			t.Fatalf("TaskDelay coord %d disagrees", i)
		}
		if a.ShuffleError(c.site, c.attempt) != b.ShuffleError(c.site, c.attempt) {
			t.Fatalf("ShuffleError coord %d disagrees", i)
		}
		if a.SlotLost(c.site, c.task) != b.SlotLost(c.site, c.task) {
			t.Fatalf("SlotLost coord %d disagrees", i)
		}
	}
}

// TestRatesRoughlyHonoured samples many coordinates and checks the empirical
// fault frequency tracks the configured rate.
func TestRatesRoughlyHonoured(t *testing.T) {
	j := New(Policy{Seed: 7, TaskFaultRate: 0.2})
	n, faults := 20000, 0
	for task := 0; task < n; task++ {
		if j.TaskFault("site", task, 1) {
			faults++
		}
	}
	got := float64(faults) / float64(n)
	if got < 0.17 || got > 0.23 {
		t.Errorf("empirical fault rate %v, want ~0.2", got)
	}
	if c := j.Snapshot().Faults; c != int64(faults) {
		t.Errorf("Snapshot.Faults = %d, want %d", c, faults)
	}
}

// TestZeroPolicyAndNilInjectNothing pins the no-op paths call sites rely on.
func TestZeroPolicyAndNilInjectNothing(t *testing.T) {
	for name, j := range map[string]*Injector{"zero": New(Policy{}), "nil": nil} {
		for task := 0; task < 100; task++ {
			if j.TaskFault("s", task, 1) || j.TaskDelay("s", task, 1) != 0 ||
				j.ShuffleError("s", task) || j.SlotLost("s", task+1) {
				t.Fatalf("%s injector injected something", name)
			}
		}
	}
}

// TestSlotZeroImmune: slot 0 must never be lost, or a one-worker pool could
// deadlock a job.
func TestSlotZeroImmune(t *testing.T) {
	j := New(Policy{Seed: 1, SlotLossRate: 0.99})
	for i := 0; i < 1000; i++ {
		if j.SlotLost("site", 0) {
			t.Fatal("slot 0 lost")
		}
	}
}

// TestCountedFaultsConsumeFirst pins the legacy InjectFaults compatibility:
// counted faults fire ahead of (and independent of) the seeded rates.
func TestCountedFaultsConsumeFirst(t *testing.T) {
	j := New(Policy{}) // zero rates: only counted faults can fire
	j.AddCountedFaults(3)
	fired := 0
	for task := 0; task < 10; task++ {
		if j.TaskFault("s", task, 1) {
			fired++
		}
	}
	if fired != 3 {
		t.Errorf("counted faults fired %d times, want 3", fired)
	}
	s := j.Snapshot()
	if s.Faults != 3 || s.CountedFaults != 3 {
		t.Errorf("counters = %+v, want 3 counted faults", s)
	}
}

// TestStageFaultIgnoresCountedQueue: the legacy counted queue targets engine
// task attempts; a stage scheduler sharing the injector must not drain it.
func TestStageFaultIgnoresCountedQueue(t *testing.T) {
	j := New(Policy{}) // zero rates: only counted faults could fire
	j.AddCountedFaults(3)
	for i := 0; i < 10; i++ {
		if j.StageFault("s", i, 1) {
			t.Fatal("StageFault consumed a counted engine fault")
		}
	}
	if !j.TaskFault("s", 0, 1) {
		t.Fatal("counted fault vanished before the engine could take it")
	}
}

// TestPolicyValidate rejects out-of-range rates; New clamps them to no-op.
func TestPolicyValidate(t *testing.T) {
	if err := (Policy{TaskFaultRate: 1.0}).Validate(); err == nil {
		t.Error("rate 1.0 accepted (would fault every attempt forever)")
	}
	if err := (Policy{ShuffleErrorRate: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Policy{StragglerDelay: -time.Second}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
	j := New(Policy{TaskFaultRate: 2})
	if j.TaskFault("s", 0, 1) {
		t.Error("invalid policy not clamped to no-op")
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	if d := p.Backoff("s", 0, 1); d != time.Millisecond {
		t.Errorf("retry 1 backoff = %v, want 1ms", d)
	}
	if d := p.Backoff("s", 0, 2); d != 2*time.Millisecond {
		t.Errorf("retry 2 backoff = %v, want 2ms", d)
	}
	if d := p.Backoff("s", 0, 10); d != 4*time.Millisecond {
		t.Errorf("retry 10 backoff = %v, want cap 4ms", d)
	}
	if d := (RetryPolicy{}).Backoff("s", 0, 1); d != 0 {
		t.Errorf("zero policy backoff = %v, want 0", d)
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseBackoff: time.Millisecond, Jitter: 0.5, JitterSeed: 9}
	seen := make(map[time.Duration]bool)
	for task := 0; task < 50; task++ {
		d := p.Backoff("site", task, 1)
		if d != p.Backoff("site", task, 1) {
			t.Fatal("jittered backoff not deterministic")
		}
		if d < time.Millisecond/2 || d > 3*time.Millisecond/2 {
			t.Fatalf("jittered backoff %v outside [0.5ms, 1.5ms]", d)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct backoffs over 50 tasks", len(seen))
	}
}

func TestBudget(t *testing.T) {
	b := (RetryPolicy{RetryBudget: 2}).NewBudget()
	if !b.Take() || !b.Take() {
		t.Fatal("budget exhausted early")
	}
	if b.Take() {
		t.Fatal("budget over-granted")
	}
	if b.Used() != 2 {
		t.Errorf("Used = %d, want 2", b.Used())
	}
	unlimited := (RetryPolicy{}).NewBudget()
	for i := 0; i < 100; i++ {
		if !unlimited.Take() {
			t.Fatal("unlimited budget refused")
		}
	}
	var nilBudget *Budget
	if !nilBudget.Take() || nilBudget.Used() != 0 {
		t.Error("nil budget must be unlimited")
	}
}

func TestAttemptsClamp(t *testing.T) {
	if got := (RetryPolicy{}).Attempts(); got != 1 {
		t.Errorf("zero policy Attempts = %d, want 1", got)
	}
	if got := (RetryPolicy{MaxAttempts: 4}).Attempts(); got != 4 {
		t.Errorf("Attempts = %d, want 4", got)
	}
}
