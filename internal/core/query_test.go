package core

import (
	"testing"
	"testing/quick"
)

func TestQueryValidate(t *testing.T) {
	valid := Query[int]{
		Name:      "count",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(int) State { return State{1} },
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(q *Query[int])
	}{
		{"missing name", func(q *Query[int]) { q.Name = "" }},
		{"missing mapper", func(q *Query[int]) { q.Map = nil }},
		{"zero state dim", func(q *Query[int]) { q.StateDim = 0 }},
		{"zero output dim", func(q *Query[int]) { q.OutputDim = 0 }},
		{"dim mismatch without finalize", func(q *Query[int]) { q.OutputDim = 2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := valid
			tt.mutate(&q)
			if err := q.Validate(); err == nil {
				t.Error("invalid query accepted")
			}
		})
	}

	// Dim mismatch is fine with an explicit Finalize.
	q := valid
	q.OutputDim = 2
	q.Finalize = func(s State) []float64 { return []float64{s[0], s[0]} }
	if err := q.Validate(); err != nil {
		t.Errorf("finalized dim change rejected: %v", err)
	}
}

func TestVectorAddProperties(t *testing.T) {
	f := func(aRaw, bRaw, cRaw [4]int16) bool {
		a := make(State, 4)
		b := make(State, 4)
		c := make(State, 4)
		for i := 0; i < 4; i++ {
			a[i], b[i], c[i] = float64(aRaw[i]), float64(bRaw[i]), float64(cRaw[i])
		}
		ab := VectorAdd(a, b)
		ba := VectorAdd(b, a)
		for i := range ab {
			if ab[i] != ba[i] { // commutativity (exact for these inputs)
				return false
			}
		}
		leftAssoc := VectorAdd(VectorAdd(a, b), c)
		rightAssoc := VectorAdd(a, VectorAdd(b, c))
		for i := range leftAssoc {
			if leftAssoc[i] != rightAssoc[i] { // associativity
				return false
			}
		}
		// No mutation.
		return a[0] == float64(aRaw[0]) && b[0] == float64(bRaw[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorAddPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched state lengths did not panic")
		}
	}()
	VectorAdd(State{1}, State{1, 2})
}

func TestVectorsAlmostEqual(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		tol  float64
		want bool
	}{
		{"identical", []float64{1, 2}, []float64{1, 2}, 1e-9, true},
		{"tiny fp noise", []float64{1e6}, []float64{1e6 + 1e-4}, 1e-9, true},
		{"real difference", []float64{1}, []float64{2}, 1e-9, false},
		{"length mismatch", []float64{1}, []float64{1, 1}, 1e-9, false},
		{"zero vs tiny", []float64{0}, []float64{1e-12}, 1e-9, true},
		{"zero vs large", []float64{0}, []float64{1}, 1e-9, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := vectorsAlmostEqual(tt.a, tt.b, tt.tol); got != tt.want {
				t.Errorf("vectorsAlmostEqual(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}
