package stats

import (
	"errors"
	"fmt"
	"math"
)

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma.
type Normal struct {
	Mu    float64
	Sigma float64
}

// ErrTooFewSamples is returned by FitNormalMLE when fewer than two samples
// are supplied; the MLE variance is undefined on fewer.
var ErrTooFewSamples = errors.New("stats: need at least two samples to fit a normal distribution")

// FitNormalMLE fits a normal distribution to samples by maximum likelihood:
// mu is the sample mean and sigma is the (biased, 1/n) standard deviation,
// which is the MLE. This mirrors Algorithm 1's MLE step: UPA identifies the
// underlying normal distribution of the sampled neighbouring outputs.
//
// Degenerate sample sets (all values identical) fit with Sigma == 0, which is
// a valid point-mass limit; percentile lookups on such a fit return Mu.
func FitNormalMLE(samples []float64) (Normal, error) {
	if len(samples) < 2 {
		return Normal{}, ErrTooFewSamples
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mu := sum / float64(len(samples))
	var ss float64
	for _, v := range samples {
		d := v - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(samples)))
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// CDF returns P(X <= x) for X ~ N(Mu, Sigma²).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-n.Mu)/(n.Sigma*math.Sqrt2)))
}

// Quantile returns the p-th quantile of the distribution, p in (0, 1).
// It returns an error for p outside (0, 1).
func (n Normal) Quantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("stats: quantile probability %v out of (0,1)", p)
	}
	if n.Sigma == 0 {
		return n.Mu, nil
	}
	return n.Mu + n.Sigma*probit(p), nil
}

// PercentileRange returns the (lo, hi) percentile pair of the distribution,
// e.g. PercentileRange(0.01, 0.99) gives the 1st and 99th percentiles used by
// UPA as the constrained output range (Algorithm 1, line 19).
func (n Normal) PercentileRange(lo, hi float64) (low, high float64, err error) {
	if lo >= hi {
		return 0, 0, fmt.Errorf("stats: percentile range [%v, %v] is empty", lo, hi)
	}
	low, err = n.Quantile(lo)
	if err != nil {
		return 0, 0, err
	}
	high, err = n.Quantile(hi)
	if err != nil {
		return 0, 0, err
	}
	return low, high, nil
}

// Sample draws one variate from the distribution using rng.
func (n Normal) Sample(rng *RNG) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// probit is the inverse standard normal CDF, computed with Acklam's rational
// approximation (relative error < 1.15e-9 over the full domain), refined with
// one Halley step against math.Erf for near machine precision.
func probit(p float64) float64 {
	// Coefficients for the central and tail rational approximations.
	var (
		a = [6]float64{
			-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00,
		}
		b = [5]float64{
			-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01,
		}
		c = [6]float64{
			-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00,
		}
		d = [4]float64{
			7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00,
		}
	)
	const plow, phigh = 0.02425, 1 - 0.02425

	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement step: e = CDF(x) - p.
	e := 0.5*(1+math.Erf(x/math.Sqrt2)) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
