package upa

// One benchmark per table and figure of the paper's evaluation (§VI), plus
// the ablations DESIGN.md calls out. Each benchmark regenerates its
// artifact on a laptop-scale workload and reports the headline quantity of
// the corresponding figure through b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reprints the whole evaluation. cmd/upa-bench renders the same artifacts
// as full text tables.

import (
	"testing"

	"upa/internal/bench"
	"upa/internal/core"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// benchConfig sizes the experiment benchmarks for single-digit-seconds
// iterations.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.Lineitems = 4000
	cfg.LSRecords = 4000
	cfg.SampleSize = 500
	cfg.Trials = 1
	cfg.Additions = 500
	return cfg
}

// BenchmarkTable2SupportMatrix regenerates Table II (query support).
func BenchmarkTable2SupportMatrix(b *testing.B) {
	cfg := benchConfig()
	var flexSupported int
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		flexSupported = 0
		for _, r := range rows {
			if r.FLEXSupported {
				flexSupported++
			}
		}
	}
	b.ReportMetric(float64(flexSupported), "flex-supported-queries")
	b.ReportMetric(9, "upa-supported-queries")
}

// BenchmarkFig2aSensitivityRMSE regenerates Figure 2(a): the relative RMSE
// of UPA's and FLEX's inferred local sensitivities against brute-force
// ground truth. The reported metrics carry the figure's headline shape: UPA
// mean RMSE, and the worst FLEX/UPA error ratio in orders of magnitude.
func BenchmarkFig2aSensitivityRMSE(b *testing.B) {
	cfg := benchConfig()
	var upaMean, worstRatio float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig2a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		upaMean, worstRatio = 0, 0
		for _, r := range rows {
			upaMean += r.UPARelRMSE / float64(len(rows))
			if r.FLEXSupported && r.UPARelRMSE > 0 {
				if ratio := r.FLEXRelRMSE / r.UPARelRMSE; ratio > worstRatio {
					worstRatio = ratio
				}
			}
		}
	}
	b.ReportMetric(upaMean*100, "upa-mean-rmse-%")
	b.ReportMetric(worstRatio, "max-flex/upa-rmse")
}

// BenchmarkFig2bOverhead regenerates Figure 2(b): per-query UPA runtime
// normalized to vanilla, one sub-benchmark per evaluated query.
func BenchmarkFig2bOverhead(b *testing.B) {
	cfg := benchConfig()
	w, err := cfg.Workload(0)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range w.All() {
		r := r
		b.Run("vanilla/"+r.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := r.RunVanilla(mapreduce.NewEngine()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("upa/"+r.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := mapreduce.NewEngine()
				sys, err := newBenchSystem(eng, cfg.SampleSize, cfg.Epsilon)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := r.RunUPA(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3Coverage regenerates Figure 3: the fraction of all
// neighbouring-dataset outputs covered by the range UPA infers at the
// default sample size.
func BenchmarkFig3Coverage(b *testing.B) {
	cfg := benchConfig()
	var minCov, meanCov float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3(cfg, []int{cfg.SampleSize})
		if err != nil {
			b.Fatal(err)
		}
		minCov, meanCov = 1, 0
		for _, r := range rows {
			cov := r.Coverage[0]
			meanCov += cov / float64(len(rows))
			if cov < minCov {
				minCov = cov
			}
		}
	}
	b.ReportMetric(meanCov*100, "mean-coverage-%")
	b.ReportMetric(minCov*100, "min-coverage-%")
}

// BenchmarkFig4aScalability regenerates Figure 4(a): overhead at 1x vs 4x
// dataset scale (decreasing, because sensitivity inference costs constant
// time in the dataset size).
func BenchmarkFig4aScalability(b *testing.B) {
	cfg := benchConfig()
	var first, last float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig4a(cfg, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		first, last = rows[0].MeanNormalized, rows[len(rows)-1].MeanNormalized
	}
	b.ReportMetric(first, "normalized-at-1x")
	b.ReportMetric(last, "normalized-at-4x")
}

// BenchmarkFig4bSampleSize regenerates Figure 4(b): runtime and cache hit
// rate across sample sizes.
func BenchmarkFig4bSampleSize(b *testing.B) {
	cfg := benchConfig()
	var hitLo, hitHi float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig4b(cfg, []int{100, 900})
		if err != nil {
			b.Fatal(err)
		}
		hitLo, hitHi = rows[0].MeanCacheHitRate, rows[len(rows)-1].MeanCacheHitRate
	}
	b.ReportMetric(hitLo*100, "cache-hit-%-n=100")
	b.ReportMetric(hitHi*100, "cache-hit-%-n=900")
}

// BenchmarkAblationReuse and BenchmarkAblationNoReuse isolate the union-
// preserving reuse of R(M(S')): with reuse each sampled neighbour costs
// O(1) combines; without it each neighbour re-reduces the whole input — the
// linear-vs-constant overhead claim of §VI-E.
func BenchmarkAblationReuse(b *testing.B)   { ablation(b, false) }
func BenchmarkAblationNoReuse(b *testing.B) { ablation(b, true) }

func ablation(b *testing.B, disableReuse bool) {
	b.Helper()
	data := make([]float64, 4000)
	rng := stats.NewRNG(1)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	q := core.Query[float64]{
		Name:      "ablation-sum",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(x float64) core.State { return core.State{x} },
	}
	var reduceOps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := mapreduce.NewEngine()
		cfg := core.DefaultConfig()
		cfg.SampleSize = 200
		cfg.DisableReuse = disableReuse
		sys, err := core.NewSystem(eng, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Run(sys, q, data, nil)
		if err != nil {
			b.Fatal(err)
		}
		reduceOps = res.EngineDelta.ReduceOps
	}
	b.ReportMetric(float64(reduceOps), "reduce-ops/release")
}

// BenchmarkEngineShuffle measures the engine's wide-transformation path
// (the substrate cost every overhead number is built from).
func BenchmarkEngineShuffle(b *testing.B) {
	eng := mapreduce.NewEngine()
	pairs := make([]mapreduce.Pair[int, int], 100000)
	rng := stats.NewRNG(2)
	for i := range pairs {
		pairs[i] = mapreduce.Pair[int, int]{Key: rng.Intn(1000), Value: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := mapreduce.FromSlice(eng, pairs, 8)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mapreduce.ReduceByKey(ds, func(a, c int) int { return a + c }).Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRelease measures one end-to-end iDP release through the public
// API at the paper's default n=1000.
func BenchmarkRelease(b *testing.B) {
	data := make([]float64, 50000)
	rng := stats.NewRNG(3)
	for i := range data {
		data[i] = rng.NormFloat64() * 100
	}
	s, err := NewSession(WithSeed(3))
	if err != nil {
		b.Fatal(err)
	}
	q := Sum("bench-sum", func(x float64) float64 { return x })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetHistory() // isolate releases from attack handling
		if _, err := Release(s, q, data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func newBenchSystem(eng *mapreduce.Engine, n int, eps float64) (*core.System, error) {
	cfg := core.DefaultConfig()
	cfg.SampleSize = n
	cfg.Epsilon = eps
	return core.NewSystem(eng, cfg)
}
