package colbatch

import (
	"math"
	"testing"
)

func TestRefineFromNilSelection(t *testing.T) {
	b := &Batch{N: 5}
	b.Refine([]bool{true, false, true, false, true})
	want := []int{0, 2, 4}
	if len(b.Sel) != len(want) {
		t.Fatalf("Sel = %v, want %v", b.Sel, want)
	}
	for i := range want {
		if b.Sel[i] != want[i] {
			t.Fatalf("Sel = %v, want %v", b.Sel, want)
		}
	}
	if b.Live() != 3 {
		t.Fatalf("Live = %d, want 3", b.Live())
	}
}

func TestRefineIntersects(t *testing.T) {
	b := &Batch{N: 5, Sel: []int{0, 2, 4}}
	b.Refine([]bool{true, true, false, true, true})
	want := []int{0, 4}
	if len(b.Sel) != len(want) || b.Sel[0] != 0 || b.Sel[1] != 4 {
		t.Fatalf("Sel = %v, want %v", b.Sel, want)
	}
}

func TestForSelOrder(t *testing.T) {
	b := &Batch{N: 3}
	var got []int
	b.ForSel(func(i int) { got = append(got, i) })
	if len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("ForSel over nil Sel visited %v", got)
	}
	b.Sel = []int{1, 2}
	got = nil
	b.ForSel(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ForSel over Sel visited %v", got)
	}
}

func TestArithmeticKernels(t *testing.T) {
	a := []int64{1, 2, 3}
	b := []int64{10, 20, 30}
	dst := make([]int64, 3)
	Add(dst, a, b)
	if dst[1] != 22 {
		t.Fatalf("Add = %v", dst)
	}
	Sub(dst, b, a)
	if dst[2] != 27 {
		t.Fatalf("Sub = %v", dst)
	}
	Mul(dst, a, b)
	if dst[0] != 10 {
		t.Fatalf("Mul = %v", dst)
	}
	AddConst(dst, a, 5)
	if dst[0] != 6 {
		t.Fatalf("AddConst = %v", dst)
	}
	SubConstR(dst, a, 1)
	if dst[0] != 0 {
		t.Fatalf("SubConstR = %v", dst)
	}
	SubConstL(dst, a, 10)
	if dst[2] != 7 {
		t.Fatalf("SubConstL = %v", dst)
	}
	MulConst(dst, a, 3)
	if dst[1] != 6 {
		t.Fatalf("MulConst = %v", dst)
	}
}

func TestWiden(t *testing.T) {
	dst := make([]float64, 2)
	Widen(dst, []int64{3, -7})
	if dst[0] != 3 || dst[1] != -7 {
		t.Fatalf("Widen = %v", dst)
	}
}

// TestNaNComparisonSemantics pins the two equality regimes: direct equality
// (the row path's same-kind shortcut) has NaN ≠ NaN, while the widened
// Compare-routed forms treat NaN as equal to everything because neither <
// nor > holds.
func TestNaNComparisonSemantics(t *testing.T) {
	nan := math.NaN()
	a := []float64{nan, 1}
	b := []float64{nan, nan}
	dst := make([]bool, 2)

	Eq(dst, a, b)
	if dst[0] || dst[1] {
		t.Fatalf("direct Eq with NaN = %v, want all false", dst)
	}
	EqWiden(dst, a, b)
	if !dst[0] || !dst[1] {
		t.Fatalf("widened Eq with NaN = %v, want all true", dst)
	}
	NeWiden(dst, a, b)
	if dst[0] || dst[1] {
		t.Fatalf("widened Ne with NaN = %v, want all false", dst)
	}
	// Le/Ge are the negated strict forms, so NaN "≤" and "≥" everything.
	Le(dst, a, b)
	if !dst[0] || !dst[1] {
		t.Fatalf("Le with NaN = %v, want all true", dst)
	}
	Ge(dst, a, b)
	if !dst[0] || !dst[1] {
		t.Fatalf("Ge with NaN = %v, want all true", dst)
	}
	Lt(dst, a, b)
	if dst[0] || dst[1] {
		t.Fatalf("Lt with NaN = %v, want all false", dst)
	}
}

func TestOrderingKernels(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"b", "b", "b"}
	dst := make([]bool, 3)
	Lt(dst, a, b)
	if !dst[0] || dst[1] || dst[2] {
		t.Fatalf("Lt strings = %v", dst)
	}
	Le(dst, a, b)
	if !dst[0] || !dst[1] || dst[2] {
		t.Fatalf("Le strings = %v", dst)
	}
	GtConst(dst, a, "a")
	if dst[0] || !dst[1] || !dst[2] {
		t.Fatalf("GtConst strings = %v", dst)
	}
	GeConst(dst, a, "b")
	if dst[0] || !dst[1] || !dst[2] {
		t.Fatalf("GeConst strings = %v", dst)
	}
	EqConst(dst, a, "b")
	if dst[0] || !dst[1] || dst[2] {
		t.Fatalf("EqConst strings = %v", dst)
	}
	NeConst(dst, a, "b")
	if !dst[0] || dst[1] || !dst[2] {
		t.Fatalf("NeConst strings = %v", dst)
	}
	LtConst(dst, a, "b")
	if !dst[0] || dst[1] || dst[2] {
		t.Fatalf("LtConst strings = %v", dst)
	}
	LeConst(dst, a, "b")
	if !dst[0] || !dst[1] || dst[2] {
		t.Fatalf("LeConst strings = %v", dst)
	}
}

func TestBoolOrderingKernels(t *testing.T) {
	a := []bool{false, true, false, true}
	b := []bool{false, false, true, true}
	dst := make([]bool, 4)
	LtBool(dst, a, b)
	if dst[0] || dst[1] || !dst[2] || dst[3] {
		t.Fatalf("LtBool = %v", dst)
	}
	LeBool(dst, a, b)
	if !dst[0] || dst[1] || !dst[2] || !dst[3] {
		t.Fatalf("LeBool = %v", dst)
	}
	GtBool(dst, a, b)
	if dst[0] || !dst[1] || dst[2] || dst[3] {
		t.Fatalf("GtBool = %v", dst)
	}
	GeBool(dst, a, b)
	if !dst[0] || !dst[1] || dst[2] || !dst[3] {
		t.Fatalf("GeBool = %v", dst)
	}
}

func TestLogicKernels(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	dst := make([]bool, 4)
	And(dst, a, b)
	if !dst[0] || dst[1] || dst[2] || dst[3] {
		t.Fatalf("And = %v", dst)
	}
	Or(dst, a, b)
	if !dst[0] || !dst[1] || !dst[2] || dst[3] {
		t.Fatalf("Or = %v", dst)
	}
	Not(dst, a)
	if dst[0] || dst[1] || !dst[2] || !dst[3] {
		t.Fatalf("Not = %v", dst)
	}
}

func TestConstCol(t *testing.T) {
	c := ConstCol(Int64, 3, 7, 0, "", false)
	if c.Len() != 3 || c.I64[2] != 7 {
		t.Fatalf("ConstCol int = %+v", c)
	}
	c = ConstCol(String, 2, 0, 0, "x", false)
	if c.Len() != 2 || c.Str[1] != "x" {
		t.Fatalf("ConstCol string = %+v", c)
	}
	c = ConstCol(Float64, 1, 0, 2.5, "", false)
	if c.Len() != 1 || c.F64[0] != 2.5 {
		t.Fatalf("ConstCol float = %+v", c)
	}
	c = ConstCol(Bool, 2, 0, 0, "", true)
	if c.Len() != 2 || !c.Bool[1] {
		t.Fatalf("ConstCol bool = %+v", c)
	}
}
