package bench

import (
	"fmt"
	"strings"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// CoverageRow is one panel of Figure 3: the distribution of the query's
// output over all neighbouring datasets, the true extremes (the paper's
// blue lines), and the output range UPA infers at several sample sizes
// (the red and other-coloured lines), with the fraction of neighbouring
// outputs each range covers.
type CoverageRow struct {
	Query string
	// SampleSizes are the evaluated n values; RangeLo/RangeHi[i] is the
	// range inferred with SampleSizes[i]; Coverage[i] the fraction of all
	// neighbouring outputs inside it.
	SampleSizes        []int
	RangeLo, RangeHi   []float64
	Coverage           []float64
	TrueMin, TrueMax   float64
	NeighbourCount     int
	NeighbourHistogram *stats.Histogram
	// NormalityKS is the Kolmogorov-Smirnov distance between the neighbour
	// census and its own MLE normal fit — the §VI-C "outputs may not
	// perfectly follow a normal distribution" error source, quantified.
	NormalityKS float64
}

// Fig3 regenerates Figure 3 over the given sample sizes (the paper sweeps
// 10²..10⁵; nil defaults to {100, 1000, 10000}). Coordinate 0 of each
// query's output is plotted, as in the paper's scalar panels.
func Fig3(cfg Config, sampleSizes []int) ([]CoverageRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(sampleSizes) == 0 {
		sampleSizes = []int{100, 1000, 10000}
	}
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	rows := make([]CoverageRow, 0, 9)
	for _, r := range w.All() {
		eng := mapreduce.NewEngine()
		truth, err := r.GroundTruth(eng, cfg.Additions, stats.NewRNG(cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("bench: census for %s: %w", r.Name(), err)
		}
		outputs := make([]float64, 0, len(truth.RemovalOutputs)+len(truth.AdditionOutputs))
		for _, o := range truth.AllNeighbourOutputs() {
			outputs = append(outputs, o[0])
		}
		row := CoverageRow{
			Query:          r.Name(),
			TrueMin:        truth.MinOutput[0],
			TrueMax:        truth.MaxOutput[0],
			NeighbourCount: len(outputs),
		}
		if row.TrueMin < row.TrueMax {
			row.NeighbourHistogram, err = stats.NewHistogram(outputs, row.TrueMin, row.TrueMax, 40)
			if err != nil {
				return nil, err
			}
		}
		if fit, ferr := stats.FitNormalMLE(outputs); ferr == nil {
			if ks, kerr := stats.KSStatistic(outputs, fit); kerr == nil {
				row.NormalityKS = ks
			}
		}
		for _, n := range sampleSizes {
			sys, err := cfg.newSystem(eng, n)
			if err != nil {
				return nil, err
			}
			res, err := r.RunUPA(sys)
			if err != nil {
				return nil, fmt.Errorf("bench: UPA(n=%d) on %s: %w", n, r.Name(), err)
			}
			row.SampleSizes = append(row.SampleSizes, n)
			row.RangeLo = append(row.RangeLo, res.RangeLo[0])
			row.RangeHi = append(row.RangeHi, res.RangeHi[0])
			row.Coverage = append(row.Coverage,
				stats.CoverageFraction(outputs, res.RangeLo[0], res.RangeHi[0]))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig3 renders the coverage panels as text, including a sideways
// histogram of the neighbouring-output distribution.
func RenderFig3(rows []CoverageRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: neighbouring-dataset output distributions and inferred ranges\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n%s — %d neighbouring outputs, true range [%.6g, %.6g], normality KS %.3f\n",
			r.Query, r.NeighbourCount, r.TrueMin, r.TrueMax, r.NormalityKS)
		for i, n := range r.SampleSizes {
			//upa:allow(dpflow) reviewed: paper-figure report over synthetic benchmark data (Fig. 3 measures range inference itself)
			fmt.Fprintf(&b, "  n=%-6d inferred range [%.6g, %.6g]  coverage %.1f%%\n",
				n, r.RangeLo[i], r.RangeHi[i], 100*r.Coverage[i])
		}
		if r.NeighbourHistogram != nil {
			b.WriteString(renderHistogram(r.NeighbourHistogram, 50))
		}
	}
	return b.String()
}

func renderHistogram(h *stats.Histogram, width int) string {
	maxCount := h.MaxCount()
	if maxCount == 0 {
		return ""
	}
	var b strings.Builder
	binWidth := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+c*(width-1)/maxCount)
		fmt.Fprintf(&b, "  %12.5g |%s %d\n", h.Lo+float64(i)*binWidth, bar, c)
	}
	return b.String()
}
