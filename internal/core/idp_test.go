package core

import (
	"math"
	"testing"

	"upa/internal/mapreduce"
)

// TestEndToEndIDPRatio verifies the paper's headline guarantee (§IV-C)
// empirically: for a query released on a dataset x and on a neighbouring
// dataset x', the distributions of the released outputs must satisfy
// P[release(x) ∈ B] <= e^ε · P[release(x') ∈ B] for every bin B.
//
// The count query makes this testable end-to-end: its sensitivity inference
// is independent of which records are sampled (every removal neighbour is
// c-1, every addition c+1), so only the Laplace noise varies across seeds
// and the released distributions on x and x' are the same mechanism shifted
// by one count.
func TestEndToEndIDPRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test with thousands of releases")
	}
	const (
		records = 300
		eps     = 0.5 // larger ε makes the ratio bound bite harder
		trials  = 30000
	)
	x := seqData(records)
	xPrime := x[:records-1] // one record removed

	release := func(data []float64, seed uint64) float64 {
		cfg := DefaultConfig()
		cfg.SampleSize = 50
		cfg.Epsilon = eps
		cfg.Seed = seed
		sys, err := NewSystem(mapreduce.NewEngine(mapreduce.WithWorkers(1)), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sys, countQuery(), data, uniformDomain(0, records))
		if err != nil {
			t.Fatal(err)
		}
		return res.Output[0]
	}

	// Sanity: the inferred sensitivity is seed-independent for counts, so
	// the two release distributions differ only by the one-count shift.
	sens := func(data []float64) float64 {
		cfg := DefaultConfig()
		cfg.SampleSize = 50
		cfg.Epsilon = eps
		sys, err := NewSystem(mapreduce.NewEngine(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(sys, countQuery(), data, uniformDomain(0, records))
		if err != nil {
			t.Fatal(err)
		}
		return res.Sensitivity[0]
	}
	sx, sy := sens(x), sens(xPrime)
	if math.Abs(sx-sy) > 1e-9 {
		t.Fatalf("count sensitivity differs between neighbours: %v vs %v", sx, sy)
	}

	// Bin the released outputs of both neighbours.
	const bins = 20
	lo, hi := float64(records)-3*sx, float64(records)+3*sx
	width := (hi - lo) / bins
	countsX := make([]float64, bins)
	countsY := make([]float64, bins)
	for i := 0; i < trials; i++ {
		seed := uint64(i) + 1
		binify(release(x, seed), lo, width, bins, countsX)
		binify(release(xPrime, seed+1_000_000), lo, width, bins, countsY)
	}

	// Every sufficiently populated bin must respect the e^ε ratio with
	// statistical slack.
	bound := math.Exp(eps) * 1.35
	for b := 0; b < bins; b++ {
		if countsX[b] < 50 || countsY[b] < 50 {
			continue // too few samples for a stable ratio
		}
		ratio := countsX[b] / countsY[b]
		if ratio > bound || 1/ratio > bound {
			t.Errorf("bin %d: release probability ratio %.3f exceeds e^eps=%.3f (with slack)",
				b, math.Max(ratio, 1/ratio), math.Exp(eps))
		}
	}
}

func binify(v, lo, width float64, bins int, counts []float64) {
	b := int((v - lo) / width)
	if b >= 0 && b < bins {
		counts[b]++
	}
}
