package main

import (
	"encoding/csv"
	"strings"
	"testing"
)

func generate(t *testing.T, args ...string) [][]string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	return records
}

func TestLineitemCSV(t *testing.T) {
	rows := generate(t, "-table", "lineitem", "-rows", "500")
	if len(rows) != 501 { // header + rows
		t.Fatalf("%d CSV rows, want 501", len(rows))
	}
	if rows[0][0] != "orderkey" || len(rows[0]) != 14 {
		t.Fatalf("unexpected header: %v", rows[0])
	}
}

func TestDerivedTables(t *testing.T) {
	tables := map[string]int{
		"orders":   500/4 + 1,
		"customer": 500 / 4 / 10,
		"part":     500 / 8,
		"supplier": 500 / 8 / 10,
		"partsupp": 500 / 8 * 2,
		"nation":   25,
	}
	for table, wantRows := range tables {
		rows := generate(t, "-table", table, "-rows", "500")
		if len(rows) != wantRows+1 && len(rows) != wantRows { // header + n (ratios floor)
			t.Errorf("%s: %d CSV rows, want about %d", table, len(rows)-1, wantRows)
		}
	}
}

func TestPointsCSV(t *testing.T) {
	rows := generate(t, "-table", "points", "-rows", "200")
	if len(rows) != 201 {
		t.Fatalf("%d CSV rows, want 201", len(rows))
	}
	if len(rows[0]) != 5 || rows[0][4] != "target" {
		t.Fatalf("unexpected header: %v", rows[0])
	}
}

func TestDeterministicOutput(t *testing.T) {
	a := generate(t, "-table", "orders", "-rows", "300", "-seed", "9")
	b := generate(t, "-table", "orders", "-rows", "300", "-seed", "9")
	if len(a) != len(b) {
		t.Fatal("row counts differ across identical invocations")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("cell (%d,%d) differs: %q vs %q", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestUnknownTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "region"}, &out); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestInvalidConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rows", "0"}, &out); err == nil {
		t.Fatal("zero rows accepted")
	}
	if err := run([]string{"-skew", "1.5"}, &out); err == nil {
		t.Fatal("out-of-range skew accepted")
	}
}
