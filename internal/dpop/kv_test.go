package dpop

import (
	"testing"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

func pair[K comparable, V any](k K, v V) mapreduce.Pair[K, V] {
	return mapreduce.Pair[K, V]{Key: k, Value: v}
}

func TestReduceByKeyDPFullCensus(t *testing.T) {
	eng := newEngine()
	data := []mapreduce.Pair[string, int]{
		pair("a", 1), pair("b", 10), pair("a", 2), pair("c", 100), pair("a", 4),
	}
	d, err := DPReadKV(eng, data, len(data), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceByKeyDP(d, func(x, y int) int { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range res.Result {
		got[p.Key] = p.Value
	}
	want := map[string]int{"a": 7, "b": 10, "c": 100}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Result = %v, want %v", got, want)
		}
	}
	if len(res.Neighbours) != len(data) {
		t.Fatalf("%d neighbours, want %d", len(res.Neighbours), len(data))
	}
	for _, nb := range res.Neighbours {
		wantVal := want[nb.Key] - nb.Removed.Value
		if nb.Key == "b" || nb.Key == "c" {
			// Sole record of its key: removal erases the key entirely.
			if nb.Present {
				t.Fatalf("key %s still present after removing its only record", nb.Key)
			}
			continue
		}
		if !nb.Present || nb.Value != wantVal {
			t.Fatalf("neighbour for %+v = (%v, %v), want (%v, true)",
				nb.Removed, nb.Value, nb.Present, wantVal)
		}
	}
}

func TestReduceByKeyDPPartialSampleUsesBroadcast(t *testing.T) {
	eng := newEngine()
	var data []mapreduce.Pair[int, int]
	for i := 0; i < 200; i++ {
		data = append(data, pair(i%4, 1))
	}
	d, err := DPReadKV(eng, data, 20, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceByKeyDP(d, func(x, y int) int { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, p := range res.Result {
		got[p.Key] = p.Value
	}
	for k := 0; k < 4; k++ {
		if got[k] != 50 {
			t.Fatalf("key %d total = %d, want 50", k, got[k])
		}
	}
	for _, nb := range res.Neighbours {
		if !nb.Present || nb.Value != 49 {
			t.Fatalf("neighbour = %+v, want value 49 (one count removed)", nb)
		}
	}
}

func TestReduceByKeyDPDuplicateValuesExcludeRightOccurrence(t *testing.T) {
	eng := newEngine()
	data := []mapreduce.Pair[string, int]{
		pair("k", 5), pair("k", 5), pair("k", 7),
	}
	d, err := DPReadKV(eng, data, 3, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceByKeyDP(d, func(x, y int) int { return x + y })
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, nb := range res.Neighbours {
		counts[nb.Value]++
	}
	// Total 17: removing a 5 gives 12 (twice), removing the 7 gives 10.
	if counts[12] != 2 || counts[10] != 1 {
		t.Fatalf("neighbour values = %v, want {12:2, 10:1}", counts)
	}
}

func TestMapDPKV(t *testing.T) {
	eng := newEngine()
	d, err := DPRead(eng, seq(40), 10, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	keyed, err := MapDPKV(d, func(x float64) mapreduce.Pair[int, float64] {
		return pair(int(x)%2, x)
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceByKeyDP(keyed, func(a, b float64) float64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, p := range res.Result {
		total += p.Value
	}
	if want := 39.0 * 40 / 2; total != want {
		t.Fatalf("keyed totals sum to %v, want %v", total, want)
	}
}

func TestJoinDPMatchesNestedLoop(t *testing.T) {
	eng := newEngine()
	left := []mapreduce.Pair[int, string]{
		pair(1, "a"), pair(2, "b"), pair(1, "c"), pair(3, "d"),
	}
	right := []mapreduce.Pair[int, int]{
		pair(1, 10), pair(1, 20), pair(2, 30), pair(4, 40),
	}
	a, err := DPReadKV(eng, left, 2, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DPReadKV(eng, right, 2, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := JoinDP(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Nested-loop reference: key 1 joins 2x2, key 2 joins 1x1 → 5 tuples.
	count, _, _ := res.Count()
	if count != 5 {
		t.Fatalf("joined %d tuples, want 5", count)
	}
	// Every tuple's key matches on both sides by construction; check the
	// multiset of (key, left, right).
	type tup struct {
		k int
		l string
		r int
	}
	gotSet := map[tup]int{}
	for _, jt := range res.Tuples {
		gotSet[tup{jt.Key, jt.Left, jt.Right}]++
	}
	want := []tup{{1, "a", 10}, {1, "a", 20}, {1, "c", 10}, {1, "c", 20}, {2, "b", 30}}
	for _, w := range want {
		if gotSet[w] != 1 {
			t.Fatalf("missing joined tuple %+v in %v", w, gotSet)
		}
	}
}

func TestJoinDPInfluenceTracking(t *testing.T) {
	eng := newEngine()
	// A hot key with fan-out 3 on the right; every left record sampled.
	left := []mapreduce.Pair[int, string]{pair(1, "x"), pair(2, "y")}
	right := []mapreduce.Pair[int, int]{pair(1, 1), pair(1, 2), pair(1, 3), pair(2, 9)}
	a, err := DPReadKV(eng, left, 2, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DPReadKV(eng, right, 4, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := JoinDP(a, b)
	if err != nil {
		t.Fatal(err)
	}
	count, leftSens, rightSens := res.Count()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	// Removing left record "x" (key 1) erases 3 joined tuples; removing a
	// right record erases at most 1.
	if leftSens != 3 {
		t.Fatalf("left sensitivity = %d, want 3", leftSens)
	}
	if rightSens != 1 {
		t.Fatalf("right sensitivity = %d, want 1", rightSens)
	}
}

func TestJoinDPTwoShuffleRounds(t *testing.T) {
	eng := newEngine()
	var left []mapreduce.Pair[int, int]
	var right []mapreduce.Pair[int, int]
	for i := 0; i < 100; i++ {
		left = append(left, pair(i%10, i))
		right = append(right, pair(i%10, -i))
	}
	a, err := DPReadKV(eng, left, 10, stats.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DPReadKV(eng, right, 10, stats.NewRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics().ShuffleRounds
	if _, err := JoinDP(a, b); err != nil {
		t.Fatal(err)
	}
	rounds := eng.Metrics().ShuffleRounds - before
	if rounds < 3 {
		t.Fatalf("joinDP used %d shuffle rounds, want >= 3 (bulk join ×2 + differing round)", rounds)
	}
}

func TestJoinDPCrossEngineRejected(t *testing.T) {
	a, err := DPReadKV(newEngine(), []mapreduce.Pair[int, int]{pair(1, 1)}, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := DPReadKV(newEngine(), []mapreduce.Pair[int, int]{pair(1, 1)}, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := JoinDP(a, b); err == nil {
		t.Fatal("cross-engine joinDP accepted")
	}
}

func TestJoinDPCompleteness(t *testing.T) {
	// The four-way decomposition S1'⋈S2' ∪ S1⋈S2' ∪ S1'⋈S2 ∪ S1⋈S2 must
	// reproduce the full join regardless of which records were sampled.
	eng := newEngine()
	var left, right []mapreduce.Pair[int, int]
	for i := 0; i < 60; i++ {
		left = append(left, pair(i%6, i))
	}
	for i := 0; i < 40; i++ {
		right = append(right, pair(i%6, 1000+i))
	}
	wantCount := 0
	for _, l := range left {
		for _, r := range right {
			if l.Key == r.Key {
				wantCount++
			}
		}
	}
	for _, n := range []int{1, 7, 25, 40} {
		a, err := DPReadKV(eng, left, n, stats.NewRNG(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := DPReadKV(eng, right, n, stats.NewRNG(uint64(n)+99))
		if err != nil {
			t.Fatal(err)
		}
		res, err := JoinDP(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if count, _, _ := res.Count(); count != wantCount {
			t.Fatalf("n=%d: joined %d tuples, want %d", n, count, wantCount)
		}
	}
}
