package tpch

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// writeLineitemCSV mirrors cmd/upa-datagen's lineitem format.
func writeLineitemCSV(t *testing.T, items []Lineitem) string {
	t.Helper()
	var sb strings.Builder
	w := csv.NewWriter(&sb)
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(w.Write([]string{"orderkey", "partkey", "suppkey", "linenumber", "quantity",
		"extendedprice", "discount", "tax", "returnflag", "linestatus",
		"shipdate", "commitdate", "receiptdate", "shipmode"}))
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, l := range items {
		must(w.Write([]string{
			strconv.Itoa(l.OrderKey), strconv.Itoa(l.PartKey), strconv.Itoa(l.SuppKey),
			strconv.Itoa(l.LineNumber), f(l.Quantity), f(l.ExtendedPrice), f(l.Discount), f(l.Tax),
			l.ReturnFlag, l.LineStatus,
			strconv.Itoa(int(l.ShipDate)), strconv.Itoa(int(l.CommitDate)),
			strconv.Itoa(int(l.ReceiptDate)), l.ShipMode,
		}))
	}
	w.Flush()
	must(w.Error())
	return sb.String()
}

func TestLineitemRoundTrip(t *testing.T) {
	db, err := Generate(Config{Lineitems: 300, Skew: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	text := writeLineitemCSV(t, db.Lineitems)
	back, err := ReadLineitems(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(db.Lineitems) {
		t.Fatalf("round trip kept %d rows, want %d", len(back), len(db.Lineitems))
	}
	for i := range back {
		if back[i] != db.Lineitems[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, back[i], db.Lineitems[i])
		}
	}
}

func TestReadOrders(t *testing.T) {
	text := "orderkey,custkey,orderstatus,totalprice,orderdate,orderpriority,specialrequest\n" +
		"7,3,F,1234.5,100,1-URGENT,true\n" +
		"8,4,O,99,200,5-LOW,false\n"
	orders, err := ReadOrders(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 2 {
		t.Fatalf("parsed %d orders, want 2", len(orders))
	}
	if orders[0].OrderKey != 7 || !orders[0].SpecialRequest || orders[0].TotalPrice != 1234.5 {
		t.Fatalf("order 0 = %+v", orders[0])
	}
	if orders[1].OrderDate != 200 || orders[1].SpecialRequest {
		t.Fatalf("order 1 = %+v", orders[1])
	}
}

func TestReadPartSuppsAndSuppliers(t *testing.T) {
	ps, err := ReadPartSupps(strings.NewReader("partkey,suppkey,availqty,supplycost\n1,2,30,4.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].AvailQty != 30 || ps[0].SupplyCost != 4.5 {
		t.Fatalf("partsupp = %+v", ps)
	}
	sup, err := ReadSuppliers(strings.NewReader("suppkey,nationkey,complaint\n9,3,true\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != 1 || !sup[0].Complaint || sup[0].NationKey != 3 {
		t.Fatalf("supplier = %+v", sup)
	}
}

func TestReadRejectsMalformedInput(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"wrong header", "a,b,c,d,e,f,g\n"},
		{"wrong column count", "orderkey,custkey\n1,2\n"},
		{"bad int", "orderkey,custkey,orderstatus,totalprice,orderdate,orderpriority,specialrequest\nX,3,F,1,1,P,true\n"},
		{"bad float", "orderkey,custkey,orderstatus,totalprice,orderdate,orderpriority,specialrequest\n1,3,F,xx,1,P,true\n"},
		{"bad bool", "orderkey,custkey,orderstatus,totalprice,orderdate,orderpriority,specialrequest\n1,3,F,1,1,P,maybe\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadOrders(strings.NewReader(tc.text)); err == nil {
				t.Error("malformed input accepted")
			}
		})
	}
}
