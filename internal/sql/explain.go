package sql

import (
	"fmt"
	"strings"
)

// Explain runs the optimizer on a plan and renders the raw tree, the
// optimized tree, the physical tree the compiler will execute (each node
// tagged with its chosen strategy), and the applied rewrites — the review
// surface for what Optimize and the physical layer did to a query. The
// output is deterministic for a given plan, so tests can pin it as a
// golden.
func Explain(plan Plan) string {
	optimized, rewrites := Optimize(plan)
	var b strings.Builder
	b.WriteString("raw plan:\n")
	renderPlan(&b, plan, 1)
	b.WriteString("optimized plan:\n")
	renderPlan(&b, optimized, 1)
	b.WriteString("physical plan:\n")
	renderPhysical(&b, BuildPhysical(optimized), 1)
	b.WriteString("rewrites:\n")
	if len(rewrites) == 0 {
		b.WriteString("  (none)\n")
		return b.String()
	}
	for i, rw := range rewrites {
		fmt.Fprintf(&b, "  %d. %s: %s\n", i+1, rw.Rule, rw.Detail)
	}
	return b.String()
}

// planLine renders one node's single-line description (no indent, no
// children) — shared by the logical and physical renderers.
func planLine(p Plan) string {
	switch n := p.(type) {
	case *ScanPlan:
		names := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			names[i] = c.Name
		}
		return fmt.Sprintf("scan %s [%s] (%d rows)", n.Name, strings.Join(names, ", "), len(n.Rows))
	case *FilterPlan:
		return "filter " + n.Pred.describe()
	case *ProjectPlan:
		parts := make([]string, len(n.Exprs))
		for i, ne := range n.Exprs {
			if c, ok := ne.Expr.(colExpr); ok && c.name == ne.Name {
				parts[i] = ne.Name
			} else {
				parts[i] = ne.Name + "=" + ne.Expr.describe()
			}
		}
		return "project [" + strings.Join(parts, ", ") + "]"
	case *JoinPlan:
		return fmt.Sprintf("join %s=%s (right side is the hash build side)", n.LeftKey, n.RightKey)
	case *AggregatePlan:
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			arg := ""
			if a.Arg != nil {
				arg = a.Arg.describe()
			}
			aggs[i] = fmt.Sprintf("%s=%s(%s)", a.Name, a.Func, arg)
		}
		return fmt.Sprintf("aggregate group=[%s] aggs=[%s]",
			strings.Join(n.GroupBy, ", "), strings.Join(aggs, ", "))
	case *OrderByPlan:
		keys := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = k.Column
			if k.Desc {
				keys[i] += " desc"
			}
		}
		return "order by [" + strings.Join(keys, ", ") + "]"
	case *DistinctPlan:
		return "distinct"
	case *LimitPlan:
		return fmt.Sprintf("limit %d", n.N)
	default:
		return p.describe()
	}
}

// renderPlan writes one node per line, children indented below parents.
func renderPlan(b *strings.Builder, p Plan, depth int) {
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), planLine(p))
	switch n := p.(type) {
	case *FilterPlan:
		renderPlan(b, n.Input, depth+1)
	case *ProjectPlan:
		renderPlan(b, n.Input, depth+1)
	case *JoinPlan:
		renderPlan(b, n.Left, depth+1)
		renderPlan(b, n.Right, depth+1)
	case *AggregatePlan:
		renderPlan(b, n.Input, depth+1)
	case *OrderByPlan:
		renderPlan(b, n.Input, depth+1)
	case *DistinctPlan:
		renderPlan(b, n.Input, depth+1)
	case *LimitPlan:
		renderPlan(b, n.Input, depth+1)
	}
}

// renderPhysical mirrors renderPlan over the physical tree, tagging each
// node with the strategy the compiler picked for it.
func renderPhysical(b *strings.Builder, n *PhysNode, depth int) {
	fmt.Fprintf(b, "%s%s [%s]\n", strings.Repeat("  ", depth), planLine(n.Logical), n.Strategy)
	for _, child := range n.Children {
		renderPhysical(b, child, depth+1)
	}
}
