package dpop

import (
	"fmt"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// DPPairDataset is the key-value dpobjectKV of Table I: sampled differing
// pairs S and remaining pairs S', supporting reduceByKeyDP and joinDP.
type DPPairDataset[K comparable, V any] struct {
	eng     *mapreduce.Engine
	samples []mapreduce.Pair[K, V]
	rest    *mapreduce.Dataset[mapreduce.Pair[K, V]]
}

// DPReadKV partitions keyed data into S and S' (the dpobjectKV constructor).
func DPReadKV[K comparable, V any](eng *mapreduce.Engine, data []mapreduce.Pair[K, V], n int, rng *stats.RNG) (*DPPairDataset[K, V], error) {
	d, err := DPRead(eng, data, n, rng)
	if err != nil {
		return nil, err
	}
	return &DPPairDataset[K, V]{eng: d.eng, samples: d.samples, rest: d.rest}, nil
}

// MapDPKV keys a plain DPDataset (the mapDPKV member function): it applies
// f to S and S' and passes the pairs into a dpobjectKV.
func MapDPKV[T any, K comparable, V any](d *DPDataset[T], f func(T) mapreduce.Pair[K, V]) (*DPPairDataset[K, V], error) {
	mapped, err := MapDP(d, f)
	if err != nil {
		return nil, err
	}
	return &DPPairDataset[K, V]{eng: mapped.eng, samples: mapped.samples, rest: mapped.rest}, nil
}

// SampleSize reports |S|.
func (d *DPPairDataset[K, V]) SampleSize() int { return len(d.samples) }

// KeyedNeighbour is the effect of removing one sampled pair: the value its
// key reduces to without it (Present reports whether the key survives at
// all — false when the sampled pair was the key's only record).
type KeyedNeighbour[K comparable, V any] struct {
	Removed mapreduce.Pair[K, V]
	Key     K
	Value   V
	Present bool
}

// ReduceByKeyResult is what reduceByKeyDP returns.
type ReduceByKeyResult[K comparable, V any] struct {
	// Result is the full per-key reduction, in deterministic order.
	Result []mapreduce.Pair[K, V]
	// Neighbours[i] describes the output change when sampled pair i is
	// removed: only its own key's value changes (records are processed
	// independently, §IV-B), so one entry per sampled pair suffices.
	Neighbours []KeyedNeighbour[K, V]
}

// ReduceByKeyDP reduces S' by key on the engine, broadcasts the result as a
// lookup table B(RS'), broadcasts the sampled pairs as B(S), and combines
// the two — exactly the §V-B evaluation strategy. The returned neighbours
// give, per sampled pair, the affected key's value on the corresponding
// neighbouring dataset.
func ReduceByKeyDP[K comparable, V any](d *DPPairDataset[K, V], f mapreduce.Reducer[V]) (*ReduceByKeyResult[K, V], error) {
	if len(d.samples) == 0 {
		return nil, fmt.Errorf("dpop: reduceByKeyDP with no sampled records")
	}
	// B(RS'): reduce the remaining pairs with one shuffle and broadcast.
	broadcastRest := make(map[K]V)
	var restOrder []K
	if d.rest != nil {
		reduced, err := mapreduce.ReduceByKey(d.rest, f).Collect()
		if err != nil {
			return nil, err
		}
		for _, p := range reduced {
			broadcastRest[p.Key] = p.Value
			restOrder = append(restOrder, p.Key)
		}
	}
	// B(S): group the sampled pairs by key, keeping per-key sample lists so
	// single-sample exclusions are cheap.
	sampleGroups := make(map[K][]V, len(d.samples))
	samplePos := make([]int, len(d.samples)) // position of sample i within its key's group
	var sampleOrder []K
	for i, p := range d.samples {
		if _, ok := sampleGroups[p.Key]; !ok {
			if _, inRest := broadcastRest[p.Key]; !inRest {
				sampleOrder = append(sampleOrder, p.Key)
			}
		}
		samplePos[i] = len(sampleGroups[p.Key])
		sampleGroups[p.Key] = append(sampleGroups[p.Key], p.Value)
	}

	// Full result: B(RS') combined with the sample groups.
	res := &ReduceByKeyResult[K, V]{}
	totals := make(map[K]V, len(broadcastRest)+len(sampleGroups))
	reduceAll := func(init V, initOK bool, vs []V, skip int) (V, bool) {
		acc, ok := init, initOK
		for i, v := range vs {
			if i == skip {
				continue
			}
			if !ok {
				acc, ok = v, true
				continue
			}
			acc = f(acc, v)
			d.eng.AccountReduceOps(1)
		}
		return acc, ok
	}
	for _, k := range restOrder {
		total, _ := reduceAll(broadcastRest[k], true, sampleGroups[k], -1)
		totals[k] = total
		res.Result = append(res.Result, mapreduce.Pair[K, V]{Key: k, Value: total})
	}
	for _, k := range sampleOrder {
		var zero V
		total, _ := reduceAll(zero, false, sampleGroups[k], -1)
		totals[k] = total
		res.Result = append(res.Result, mapreduce.Pair[K, V]{Key: k, Value: total})
	}

	// Neighbours: removing sampled pair i changes only its own key, and
	// excludes exactly that pair's occurrence within the key's group.
	for i, p := range d.samples {
		restVal, restOK := broadcastRest[p.Key]
		group := sampleGroups[p.Key]
		neighbourVal, present := reduceAll(restVal, restOK, group, samplePos[i])
		res.Neighbours = append(res.Neighbours, KeyedNeighbour[K, V]{
			Removed: p,
			Key:     p.Key,
			Value:   neighbourVal,
			Present: present,
		})
	}
	return res, nil
}

// JoinedTuple is one output tuple of joinDP, tagged with the indices of the
// sampled differing tuples it derives from (-1 when the side's tuple was a
// remaining, un-sampled one). The paper gives sampled tuples indices so the
// influence of removing each differing tuple is tracked through the join
// (§V-C).
type JoinedTuple[K comparable, V, W any] struct {
	Key         K
	Left        V
	Right       W
	LeftSample  int
	RightSample int
}

// JoinResult is what joinDP returns.
type JoinResult[K comparable, V, W any] struct {
	// Tuples is the full join output.
	Tuples []JoinedTuple[K, V, W]
	// LeftInfluence[i] is the number of joined tuples that disappear when
	// left sampled tuple i is removed; RightInfluence likewise.
	LeftInfluence, RightInfluence []int
}

// JoinDP computes the equi-join of two DP pair datasets in the two rounds
// of §V-C: first the remaining tuples S1' ⋈ S2' (the bulk, one engine join
// = two shuffles), then the differing tuples (S1 ⋈ S2', S1' ⋈ S2, S1 ⋈ S2)
// with index tracking, which costs a second join round and is why UPA
// "triggers Join two times and results in shuffling twice".
func JoinDP[K comparable, V, W any](a *DPPairDataset[K, V], b *DPPairDataset[K, W]) (*JoinResult[K, V, W], error) {
	if a.eng != b.eng {
		return nil, fmt.Errorf("dpop: joinDP across engines")
	}
	eng := a.eng
	res := &JoinResult[K, V, W]{
		LeftInfluence:  make([]int, len(a.samples)),
		RightInfluence: make([]int, len(b.samples)),
	}

	// Round 1: S1' ⋈ S2' on the engine.
	if a.rest != nil && b.rest != nil {
		joined, err := mapreduce.Join(a.rest, b.rest)
		if err != nil {
			return nil, err
		}
		bulk, err := joined.Collect()
		if err != nil {
			return nil, err
		}
		for _, p := range bulk {
			res.Tuples = append(res.Tuples, JoinedTuple[K, V, W]{
				Key: p.Key, Left: p.Value.Left, Right: p.Value.Right,
				LeftSample: -1, RightSample: -1,
			})
		}
	}

	// Round 2: the differing tuples. The sampled sides are tiny (n each),
	// so they are joined via broadcast hash maps against both the sampled
	// and remaining other side; the engine accounts the extra shuffle round
	// this costs on a cluster.
	restByKeyA, err := collectByKey(a.rest)
	if err != nil {
		return nil, err
	}
	restByKeyB, err := collectByKey(b.rest)
	if err != nil {
		return nil, err
	}
	eng.AccountShuffle(len(a.samples) + len(b.samples))

	// S1 ⋈ S2'.
	for i, sp := range a.samples {
		for _, w := range restByKeyB[sp.Key] {
			res.Tuples = append(res.Tuples, JoinedTuple[K, V, W]{
				Key: sp.Key, Left: sp.Value, Right: w, LeftSample: i, RightSample: -1,
			})
			res.LeftInfluence[i]++
		}
	}
	// S1' ⋈ S2.
	for j, sp := range b.samples {
		for _, v := range restByKeyA[sp.Key] {
			res.Tuples = append(res.Tuples, JoinedTuple[K, V, W]{
				Key: sp.Key, Left: v, Right: sp.Value, LeftSample: -1, RightSample: j,
			})
			res.RightInfluence[j]++
		}
	}
	// S1 ⋈ S2.
	for i, sa := range a.samples {
		for j, sb := range b.samples {
			if sa.Key != sb.Key {
				continue
			}
			res.Tuples = append(res.Tuples, JoinedTuple[K, V, W]{
				Key: sa.Key, Left: sa.Value, Right: sb.Value, LeftSample: i, RightSample: j,
			})
			res.LeftInfluence[i]++
			res.RightInfluence[j]++
		}
	}
	return res, nil
}

// Count returns the joined-tuple count together with the local sensitivity
// it witnesses on each side: the largest number of joined tuples any single
// sampled differing tuple accounts for — the quantity UPA tracks through
// tuple indices and FLEX bounds by worst-case frequency products.
func (r *JoinResult[K, V, W]) Count() (count int, leftSensitivity, rightSensitivity int) {
	count = len(r.Tuples)
	for _, inf := range r.LeftInfluence {
		if inf > leftSensitivity {
			leftSensitivity = inf
		}
	}
	for _, inf := range r.RightInfluence {
		if inf > rightSensitivity {
			rightSensitivity = inf
		}
	}
	return count, leftSensitivity, rightSensitivity
}

func collectByKey[K comparable, V any](d *mapreduce.Dataset[mapreduce.Pair[K, V]]) (map[K][]V, error) {
	out := make(map[K][]V)
	if d == nil {
		return out, nil
	}
	pairs, err := d.Collect()
	if err != nil {
		return nil, err
	}
	for _, p := range pairs {
		out[p.Key] = append(out[p.Key], p.Value)
	}
	return out, nil
}
