package mapreduce

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// spillPipeline runs a fixed multi-stage job — map, filter, reduceByKey,
// join, global sort — on eng and returns its fully collected output. The
// pipeline is deterministic, so any two engines must produce identical
// results regardless of where their materializations live.
func spillPipeline(t *testing.T, eng *Engine) []Pair[int, int] {
	t.Helper()
	n := 3000
	raw := make([]int, n)
	for i := range raw {
		raw[i] = (i * 7919) % 1000 // collide keys, non-monotonic order
	}
	d, err := FromSlice(eng, raw, 8)
	if err != nil {
		t.Fatal(err)
	}
	pairs := Map(d, func(x int) Pair[int, int] { return Pair[int, int]{Key: x % 97, Value: x} })
	sums := ReduceByKey(pairs, func(a, b int) int { return a + b })
	counts := ReduceByKey(Map(pairs, func(p Pair[int, int]) Pair[int, int] {
		return Pair[int, int]{Key: p.Key, Value: 1}
	}), func(a, b int) int { return a + b })
	joined, err := Join(sums, counts)
	if err != nil {
		t.Fatal(err)
	}
	flat := Map(joined, func(p Pair[int, Joined[int, int]]) Pair[int, int] {
		return Pair[int, int]{Key: p.Key, Value: p.Value.Left / p.Value.Right}
	})
	sorted, err := SortBy(flat, 4, func(a, b Pair[int, int]) bool {
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Key < b.Key
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSpillDeterminism is the tentpole's correctness gate in miniature: the
// same job on an unlimited budget (all in memory), a zero budget (every
// materialization spilled), and a mid budget (the working set straddles the
// line) must produce byte-identical output and identical work accounting —
// spilling changes where bytes live, never what they are.
func TestSpillDeterminism(t *testing.T) {
	type run struct {
		out     []Pair[int, int]
		metrics MetricsSnapshot
	}
	runWith := func(budget int64) run {
		eng := NewEngine(WithWorkers(4), WithMemoryBudget(budget))
		defer eng.Close()
		out := spillPipeline(t, eng)
		return run{out: out, metrics: eng.Metrics()}
	}
	encode := func(out []Pair[int, int]) []byte {
		var b bytes.Buffer
		for _, p := range out {
			fmt.Fprintf(&b, "%d=%d\n", p.Key, p.Value)
		}
		return b.Bytes()
	}

	ref := runWith(-1) // unlimited: the pure in-memory baseline
	if ref.metrics.SpilledBytes != 0 || ref.metrics.SpillFiles != 0 || ref.metrics.SpillReads != 0 {
		t.Fatalf("unlimited budget spilled: %+v", ref.metrics)
	}
	refBytes := encode(ref.out)

	cases := []struct {
		name      string
		budget    int64
		wantSpill bool
	}{
		{"spill-everything", 0, true},
		{"spill-partial", 16 << 10, true},
		{"spill-nothing-large", 1 << 30, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runWith(tc.budget)
			if !bytes.Equal(encode(got.out), refBytes) {
				t.Errorf("budget %d output differs from in-memory run", tc.budget)
			}
			if got.metrics.RecordsShuffled != ref.metrics.RecordsShuffled {
				t.Errorf("RecordsShuffled = %d, want %d", got.metrics.RecordsShuffled, ref.metrics.RecordsShuffled)
			}
			if got.metrics.ReduceOps != ref.metrics.ReduceOps {
				t.Errorf("ReduceOps = %d, want %d", got.metrics.ReduceOps, ref.metrics.ReduceOps)
			}
			if got.metrics.TasksRun != ref.metrics.TasksRun {
				t.Errorf("TasksRun = %d, want %d", got.metrics.TasksRun, ref.metrics.TasksRun)
			}
			if tc.wantSpill && got.metrics.SpilledBytes == 0 {
				t.Error("expected spilling, SpilledBytes = 0")
			}
			if tc.wantSpill && got.metrics.SpillReads == 0 {
				t.Error("expected spill reads, SpillReads = 0")
			}
			if !tc.wantSpill && got.metrics.SpillFiles != 0 {
				t.Errorf("unexpected spilling: %d files", got.metrics.SpillFiles)
			}
		})
	}
}

// TestSpillSurvivesFaults forces every materialization to disk while the
// chaos path retries tasks from lineage: the recovered output must still be
// byte-identical to a clean in-memory run, and no orphaned .tmp file may
// survive a retried spill write.
func TestSpillSurvivesFaults(t *testing.T) {
	clean := func() []Pair[int, int] {
		eng := NewEngine(WithWorkers(2))
		defer eng.Close()
		return spillPipeline(t, eng)
	}()

	eng := NewEngine(WithWorkers(2), WithMaxAttempts(6), WithMemoryBudget(0))
	defer eng.Close()
	eng.InjectFaults(3)
	got := spillPipeline(t, eng)

	if len(got) != len(clean) {
		t.Fatalf("faulty spilled run returned %d records, clean run %d", len(got), len(clean))
	}
	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("record %d: %v under faults+spill, %v clean", i, got[i], clean[i])
		}
	}
	m := eng.Metrics()
	if m.SpilledBytes == 0 {
		t.Error("budget 0 engine did not spill")
	}
	if m.TaskFaults == 0 {
		t.Error("no faults landed; test exercised nothing")
	}
	for _, f := range spillDirEntries(t, eng) {
		if strings.HasSuffix(f, ".tmp") {
			t.Errorf("orphaned partial spill file %s", f)
		}
	}
}

// TestSpillCleanupOnClose verifies the crash-safety contract at engine
// shutdown: the spill directory and every file in it are removed, and Close
// is idempotent.
func TestSpillCleanupOnClose(t *testing.T) {
	eng := NewEngine(WithMemoryBudget(0))
	d, err := FromSlice(eng, intsUpTo(500), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReduceByKey(Map(d, func(x int) Pair[int, int] {
		return Pair[int, int]{Key: x % 5, Value: x}
	}), func(a, b int) int { return a + b }).Collect(); err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().SpillFiles == 0 {
		t.Fatal("budget 0 engine wrote no spill files")
	}
	dir := eng.spill.dir
	if dir == "" {
		t.Fatal("no spill directory recorded")
	}
	if entries, err := os.ReadDir(dir); err != nil || len(entries) == 0 {
		t.Fatalf("spill dir %s unreadable or empty before close: %v", dir, err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Errorf("spill dir %s survived Close (stat err: %v)", dir, err)
	}
	if err := eng.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestEngineCloseWithoutSpill: an engine that never spilled has no directory
// to remove; Close must be a clean no-op.
func TestEngineCloseWithoutSpill(t *testing.T) {
	eng := NewEngine()
	if _, err := FromSlice(eng, intsUpTo(10), 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("Close on never-spilled engine: %v", err)
	}
}

// TestSortByPartitionsOwned is the regression test for the output-aliasing
// bug: SortBy's partitions were subslices of one shared sorted array, so a
// downstream stage mutating its input corrupted sibling partitions and every
// later read of the memoized sort. Each partition must be an owned copy.
func TestSortByPartitionsOwned(t *testing.T) {
	for _, budget := range []int64{-1, 0} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			eng := NewEngine(WithMemoryBudget(budget))
			defer eng.Close()
			d, err := FromSlice(eng, []int{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}, 3)
			if err != nil {
				t.Fatal(err)
			}
			sorted, err := SortBy(d, 2, func(a, b int) bool { return a < b })
			if err != nil {
				t.Fatal(err)
			}
			first, err := sorted.CollectPartitions()
			if err != nil {
				t.Fatal(err)
			}
			// A hostile downstream consumer scribbles over its input slices.
			for _, part := range first {
				for i := range part {
					part[i] = -1
				}
			}
			second, err := sorted.Collect()
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range second {
				if v != i {
					t.Fatalf("sorted[%d] = %d after upstream mutation, want %d (partition aliases shared backing array)", i, v, i)
				}
			}
		})
	}
}

// TestShuffleInvalidPartitionCount is the regression test for the unguarded
// `% uint64(numParts)` in shuffle: a zero or negative destination count must
// come back as an error from the shuffle boundary, never a runtime panic in
// a worker goroutine. Public wide transformations validate their own counts,
// so the guard is exercised directly.
func TestShuffleInvalidPartitionCount(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, []Pair[int, int]{{Key: 1, Value: 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{0, -3} {
		if _, err := shuffle(context.Background(), d, bad); err == nil {
			t.Errorf("shuffle into %d partitions succeeded, want error", bad)
		}
	}
	if _, err := shuffle(context.Background(), d, 1); err != nil {
		t.Errorf("shuffle into 1 partition: %v", err)
	}
}

// TestSpillCodecRoundTrip covers the frame codec directly: batched records,
// an empty record set, and the streaming reader all round-trip exactly, and
// a truncated file is an error rather than a silent short read.
func TestSpillCodecRoundTrip(t *testing.T) {
	recs := make([]Pair[string, []int], 1200) // > 2 frames at spillBatch=512
	for i := range recs {
		recs[i] = Pair[string, []int]{Key: fmt.Sprintf("k%04d", i), Value: []int{i, i * 2}}
	}
	var buf bytes.Buffer
	n, err := writeSpill(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("writeSpill reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := readSpill[Pair[string, []int]](bytes.NewReader(buf.Bytes()), int64(buf.Len()), len(recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round-trip %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Key != recs[i].Key || len(got[i].Value) != 2 || got[i].Value[1] != recs[i].Value[1] {
			t.Fatalf("record %d corrupted: %v vs %v", i, got[i], recs[i])
		}
	}

	// Determinism across independent writes of the same records.
	var buf2 bytes.Buffer
	if _, err := writeSpill(&buf2, recs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two writes of identical records produced different bytes")
	}

	// Empty record set round-trips to an empty (not nil-error) read.
	var empty bytes.Buffer
	if _, err := writeSpill(&empty, []int(nil)); err != nil {
		t.Fatal(err)
	}
	if got, err := readSpill[int](bytes.NewReader(empty.Bytes()), int64(empty.Len()), 0); err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip = %v, %v", got, err)
	}

	// Truncation mid-frame is a loud error.
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := readSpill[Pair[string, []int]](bytes.NewReader(trunc), int64(len(trunc)), len(recs)); err == nil {
		t.Error("truncated spill file read without error")
	}
}

// TestPersistedDatasetSpills: Persist on a budget-0 engine materializes to
// spill files, and every later action streams the identical records back
// without recomputing lineage.
func TestPersistedDatasetSpills(t *testing.T) {
	eng := NewEngine(WithMemoryBudget(0))
	defer eng.Close()
	d, err := FromSlice(eng, intsUpTo(300), 4)
	if err != nil {
		t.Fatal(err)
	}
	squared := Map(d, func(x int) int { return x * x }).Persist()
	first, err := squared.Collect()
	if err != nil {
		t.Fatal(err)
	}
	mappedBefore := eng.Metrics().RecordsMapped
	second, err := squared.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().RecordsMapped != mappedBefore {
		t.Error("spilled persisted dataset recomputed on second action")
	}
	for i := range first {
		if first[i] != second[i] || first[i] != i*i {
			t.Fatalf("value %d: %d vs %d, want %d", i, first[i], second[i], i*i)
		}
	}
}

// TestMemoryBudgetAccessor pins the option plumbing and the default.
func TestMemoryBudgetAccessor(t *testing.T) {
	if got := NewEngine().MemoryBudget(); got >= 0 {
		t.Errorf("default MemoryBudget = %d, want negative (unlimited)", got)
	}
	if got := NewEngine(WithMemoryBudget(4096)).MemoryBudget(); got != 4096 {
		t.Errorf("MemoryBudget = %d, want 4096", got)
	}
}

// spillDirEntries lists the engine's spill directory, or nothing if it never
// spilled.
func spillDirEntries(t *testing.T, eng *Engine) []string {
	t.Helper()
	eng.spill.mu.Lock()
	dir := eng.spill.dir
	eng.spill.mu.Unlock()
	if dir == "" {
		return nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read spill dir: %v", err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, filepath.Join(dir, e.Name()))
	}
	return out
}
