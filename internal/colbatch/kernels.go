package colbatch

// Vectorized kernels. Every kernel writes all len(dst) lanes — selection is
// the caller's concern — and none can fail, which is what lets the sql
// vectorizer evaluate filters and projections over dead lanes without
// changing observable behaviour.
//
// Comparison semantics mirror the sql layer's exactly:
//
//   - Lt/Gt compare directly; Le is !(a > b) and Ge is !(a < b). On float64
//     this reproduces sql.Compare's three-way result (NaN compares "equal"
//     to everything because both < and > are false), and on int64/string
//     the negated form is identical to <=/>=.
//   - Eq/Ne are direct Go equality — the row path's same-kind shortcut,
//     under which NaN ≠ NaN.
//   - EqWiden/NeWiden are the Compare-routed equalities the row path uses
//     for mixed int/float operands: equal iff neither side is less, so NaN
//     "equals" everything, matching Compare's widened three-way result.

// Num is an arithmetic element type.
type Num interface{ ~int64 | ~float64 }

// Ordered is an element type with a direct < ordering.
type Ordered interface{ ~int64 | ~float64 | ~string }

// Eltype is any column element type.
type Eltype interface{ ~int64 | ~float64 | ~string | ~bool }

// Widen converts an int64 column to float64 — the numeric widening
// sql.Compare and mixed arithmetic apply.
func Widen(dst []float64, src []int64) {
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// --- arithmetic -----------------------------------------------------------

// Add computes dst[i] = a[i] + b[i].
func Add[T Num](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// Sub computes dst[i] = a[i] - b[i].
func Sub[T Num](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// Mul computes dst[i] = a[i] * b[i].
func Mul[T Num](dst, a, b []T) {
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// AddConst computes dst[i] = a[i] + c.
func AddConst[T Num](dst, a []T, c T) {
	for i := range dst {
		dst[i] = a[i] + c
	}
}

// SubConstR computes dst[i] = a[i] - c.
func SubConstR[T Num](dst, a []T, c T) {
	for i := range dst {
		dst[i] = a[i] - c
	}
}

// SubConstL computes dst[i] = c - a[i].
func SubConstL[T Num](dst, a []T, c T) {
	for i := range dst {
		dst[i] = c - a[i]
	}
}

// MulConst computes dst[i] = a[i] * c.
func MulConst[T Num](dst, a []T, c T) {
	for i := range dst {
		dst[i] = a[i] * c
	}
}

// --- comparisons ----------------------------------------------------------

// Eq computes dst[i] = a[i] == b[i] (direct same-kind equality).
func Eq[T Eltype](dst []bool, a, b []T) {
	for i := range dst {
		dst[i] = a[i] == b[i]
	}
}

// Ne computes dst[i] = a[i] != b[i].
func Ne[T Eltype](dst []bool, a, b []T) {
	for i := range dst {
		dst[i] = a[i] != b[i]
	}
}

// Lt computes dst[i] = a[i] < b[i].
func Lt[T Ordered](dst []bool, a, b []T) {
	for i := range dst {
		dst[i] = a[i] < b[i]
	}
}

// Le computes dst[i] = !(a[i] > b[i]) — Compare's c <= 0.
func Le[T Ordered](dst []bool, a, b []T) {
	for i := range dst {
		dst[i] = !(a[i] > b[i])
	}
}

// Gt computes dst[i] = a[i] > b[i].
func Gt[T Ordered](dst []bool, a, b []T) {
	for i := range dst {
		dst[i] = a[i] > b[i]
	}
}

// Ge computes dst[i] = !(a[i] < b[i]) — Compare's c >= 0.
func Ge[T Ordered](dst []bool, a, b []T) {
	for i := range dst {
		dst[i] = !(a[i] < b[i])
	}
}

// EqConst computes dst[i] = a[i] == c.
func EqConst[T Eltype](dst []bool, a []T, c T) {
	for i := range dst {
		dst[i] = a[i] == c
	}
}

// NeConst computes dst[i] = a[i] != c.
func NeConst[T Eltype](dst []bool, a []T, c T) {
	for i := range dst {
		dst[i] = a[i] != c
	}
}

// LtConst computes dst[i] = a[i] < c.
func LtConst[T Ordered](dst []bool, a []T, c T) {
	for i := range dst {
		dst[i] = a[i] < c
	}
}

// LeConst computes dst[i] = !(a[i] > c).
func LeConst[T Ordered](dst []bool, a []T, c T) {
	for i := range dst {
		dst[i] = !(a[i] > c)
	}
}

// GtConst computes dst[i] = a[i] > c.
func GtConst[T Ordered](dst []bool, a []T, c T) {
	for i := range dst {
		dst[i] = a[i] > c
	}
}

// GeConst computes dst[i] = !(a[i] < c).
func GeConst[T Ordered](dst []bool, a []T, c T) {
	for i := range dst {
		dst[i] = !(a[i] < c)
	}
}

// EqWiden computes the Compare-routed mixed-numeric equality:
// dst[i] = !(a[i] < b[i]) && !(a[i] > b[i]).
func EqWiden(dst []bool, a, b []float64) {
	for i := range dst {
		dst[i] = !(a[i] < b[i]) && !(a[i] > b[i])
	}
}

// NeWiden computes dst[i] = a[i] < b[i] || a[i] > b[i].
func NeWiden(dst []bool, a, b []float64) {
	for i := range dst {
		dst[i] = a[i] < b[i] || a[i] > b[i]
	}
}

// EqWidenConst is EqWiden against a scalar right operand.
func EqWidenConst(dst []bool, a []float64, c float64) {
	for i := range dst {
		dst[i] = !(a[i] < c) && !(a[i] > c)
	}
}

// NeWidenConst is NeWiden against a scalar right operand.
func NeWidenConst(dst []bool, a []float64, c float64) {
	for i := range dst {
		dst[i] = a[i] < c || a[i] > c
	}
}

// --- bool ordering --------------------------------------------------------

// Bools order false < true, mirroring sql.Compare.

// LtBool computes dst[i] = !a[i] && b[i].
func LtBool(dst []bool, a, b []bool) {
	for i := range dst {
		dst[i] = !a[i] && b[i]
	}
}

// LeBool computes dst[i] = !a[i] || b[i].
func LeBool(dst []bool, a, b []bool) {
	for i := range dst {
		dst[i] = !a[i] || b[i]
	}
}

// GtBool computes dst[i] = a[i] && !b[i].
func GtBool(dst []bool, a, b []bool) {
	for i := range dst {
		dst[i] = a[i] && !b[i]
	}
}

// GeBool computes dst[i] = a[i] || !b[i].
func GeBool(dst []bool, a, b []bool) {
	for i := range dst {
		dst[i] = a[i] || !b[i]
	}
}

// --- logic ----------------------------------------------------------------

// And computes dst[i] = a[i] && b[i]. The row path short-circuits AND, but
// vectorizable operands are infallible, so full evaluation is equivalent.
func And(dst, a, b []bool) {
	for i := range dst {
		dst[i] = a[i] && b[i]
	}
}

// Or computes dst[i] = a[i] || b[i].
func Or(dst, a, b []bool) {
	for i := range dst {
		dst[i] = a[i] || b[i]
	}
}

// Not computes dst[i] = !a[i].
func Not(dst, a []bool) {
	for i := range dst {
		dst[i] = !a[i]
	}
}
