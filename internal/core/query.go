// Package core implements the paper's contribution: Union Preserving
// Aggregation (UPA). Given a MapReduce query f = Finalize(R(M(x))) whose
// reducer R is commutative and associative, UPA
//
//  1. partitions the input for the RANGE ENFORCER and samples n differing
//     records (Partition and Sample, §III),
//  2. maps the sampled and remaining records in parallel (Parallel Map),
//  3. reuses the reduction of the remaining records R(M(S')) — plus
//     prefix/suffix partial reductions over the mapped samples — to compute
//     the query's output on every sampled neighbouring dataset in O(1)
//     combine steps each (Union Preserving Reduce, Algorithm 1),
//  4. fits a normal distribution to the neighbouring outputs by MLE, takes
//     the 1st/99th percentiles as the output range and their difference as
//     the local sensitivity, detects repeated-query attacks, clamps the
//     output into the range, and releases it with Laplace noise
//     (iDP Enforcement, Algorithm 2 RANGE ENFORCER).
package core

import (
	"errors"
	"fmt"
	"math"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// State is the intermediate aggregate a Mapper emits per record and a
// Reducer combines. Scalar queries use length-1 states; ML queries carry
// richer aggregates (per-cluster sums, gradient accumulators, counts).
type State = []float64

// VectorAdd is the coordinate-wise sum reducer — the canonical commutative,
// associative MapReduce reducer, used by every aggregation query unless the
// query supplies its own. It never mutates its inputs.
func VectorAdd(a, b State) State {
	if len(a) != len(b) {
		// Reducer signatures cannot return errors; mismatched states are a
		// programming error caught by Query validation before any reduce
		// runs, so this is unreachable in validated queries.
		panic(fmt.Sprintf("core: reducing states of lengths %d and %d", len(a), len(b)))
	}
	out := make(State, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Query is a big-data query in UPA's Mapper/Reducer form.
//
// The reducer must be commutative and associative and must not mutate its
// arguments; UPA's reuse of intermediate reductions is sound exactly under
// those properties (§II-C). Finalize converts the total aggregate into the
// released output vector (identity when nil).
type Query[T any] struct {
	// Name labels the query in results and cache keys.
	Name string
	// StateDim is the length of every State emitted by Map.
	StateDim int
	// OutputDim is the length of the finalized output vector.
	OutputDim int
	// Map computes one record's contribution. It must be pure.
	Map func(T) State
	// Reduce combines two states; nil means VectorAdd.
	Reduce mapreduce.Reducer[State]
	// Finalize converts the total state into the output; nil means identity
	// (requires OutputDim == StateDim).
	Finalize func(State) []float64
}

// Validate checks the query's structural invariants.
func (q Query[T]) Validate() error {
	if q.Name == "" {
		return errors.New("core: query needs a name")
	}
	if q.Map == nil {
		return fmt.Errorf("core: query %q has no mapper", q.Name)
	}
	if q.StateDim < 1 {
		return fmt.Errorf("core: query %q has StateDim %d, want >= 1", q.Name, q.StateDim)
	}
	if q.OutputDim < 1 {
		return fmt.Errorf("core: query %q has OutputDim %d, want >= 1", q.Name, q.OutputDim)
	}
	if q.Finalize == nil && q.OutputDim != q.StateDim {
		return fmt.Errorf("core: query %q has no Finalize but OutputDim %d != StateDim %d",
			q.Name, q.OutputDim, q.StateDim)
	}
	return nil
}

// reducer returns the effective reducer.
func (q Query[T]) reducer() mapreduce.Reducer[State] {
	if q.Reduce != nil {
		return q.Reduce
	}
	return VectorAdd
}

// finalize returns the effective finalizer output for state.
func (q Query[T]) finalize(state State) []float64 {
	if q.Finalize == nil {
		out := make([]float64, len(state))
		copy(out, state)
		return out
	}
	return q.Finalize(state)
}

// vectorsAlmostEqual compares two output vectors with a relative tolerance;
// the RANGE ENFORCER uses it to decide whether two queries produced "the
// same" partition output.
func vectorsAlmostEqual(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if diff > tol*math.Max(scale, 1) {
			return false
		}
	}
	return true
}

// cloneVec returns a fresh copy of v.
func cloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// domainSampler draws a record from the query's record domain D; UPA samples
// it to form the "addition" neighbouring datasets (records in D but not
// in x).
type domainSampler[T any] func(*stats.RNG) T
