package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Pair is a keyed record for the wide (shuffled) transformations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// KeyBy turns records into pairs keyed by key(record).
func KeyBy[T any, K comparable](d *Dataset[T], key func(T) K) *Dataset[Pair[K, T]] {
	return Map(d, func(t T) Pair[K, T] { return Pair[K, T]{Key: key(t), Value: t} })
}

// MapValues transforms pair values, keeping keys (a narrow transformation).
func MapValues[K comparable, V, W any](d *Dataset[Pair[K, V]], f func(V) W) *Dataset[Pair[K, W]] {
	return Map(d, func(p Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{Key: p.Key, Value: f(p.Value)}
	})
}

// Keys projects the keys of a pair dataset.
func Keys[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[K] {
	return Map(d, func(p Pair[K, V]) K { return p.Key })
}

// Values projects the values of a pair dataset.
func Values[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[V] {
	return Map(d, func(p Pair[K, V]) V { return p.Value })
}

// hashOf hashes a comparable key deterministically. Common key types take a
// fast path; everything else is hashed through its strconv/fnv encoding of
// the %v rendering, which is slower but still deterministic.
func hashOf[K comparable](k K) uint64 {
	switch v := any(k).(type) {
	case string:
		h := fnv.New64a()
		_, _ = h.Write([]byte(v))
		return h.Sum64()
	case int:
		return mixHash(uint64(v))
	case int32:
		return mixHash(uint64(v))
	case int64:
		return mixHash(uint64(v))
	case uint64:
		return mixHash(v)
	case float64:
		return mixHash(math.Float64bits(v))
	case bool:
		if v {
			return mixHash(1)
		}
		return mixHash(0)
	default:
		// Rare fallback for composite comparable keys; slower but still
		// deterministic.
		h := fnv.New64a()
		_, _ = fmt.Fprintf(h, "%#v", v)
		return h.Sum64()
	}
}

func mixHash(z uint64) uint64 {
	z = (z ^ (z >> 33)) * 0xff51afd7ed558ccd
	z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53
	return z ^ (z >> 33)
}
