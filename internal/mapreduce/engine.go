// Package mapreduce is the Spark substitute underneath UPA: an in-memory,
// multi-goroutine MapReduce/RDD engine with partitioned generic datasets,
// lazy narrow transformations, hash shuffles for wide transformations,
// a worker-pool scheduler with fault injection and lineage-based retry,
// and metered shuffle/cache behaviour.
//
// The engine exists because UPA's correctness and performance arguments rest
// on exactly two properties of big-data operators — commutativity and
// associativity — and on the cost asymmetry between local computation,
// shuffles, and cache hits. All three are reproduced and metered here.
package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"upa/internal/chaos"
)

// Engine schedules partition-level tasks over a bounded worker pool and
// accounts for shuffles, reduce operations, and cache traffic.
type Engine struct {
	workers int
	policy  chaos.RetryPolicy

	metrics Metrics

	// inj is the seeded chaos injector deciding which task attempts fail,
	// straggle, or lose their worker slot. Nil-safe: a nil injector injects
	// nothing. Swappable at runtime so tests can arm chaos mid-stream.
	inj atomic.Pointer[chaos.Injector]

	cache *ReductionCache

	// spill is the memory-budget accountant and temp-file allocator behind
	// out-of-core execution: materializations past the budget live in
	// deterministic spill files instead of RAM (see spillstore.go).
	spill *spillStore

	// accMu guards accumulators, the named Accumulator registry.
	accMu        sync.Mutex
	accumulators map[string]*Accumulator
}

// Option configures an Engine.
type Option func(*Engine)

// WithWorkers sets the number of concurrent task slots. Values below one
// fall back to one.
func WithWorkers(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.workers = n
	}
}

// WithMaxAttempts sets how many times a failing task is retried from lineage
// before the job is abandoned. Values below one fall back to one. It is the
// single-knob shorthand for WithRetryPolicy.
func WithMaxAttempts(n int) Option {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.policy.MaxAttempts = n
	}
}

// WithRetryPolicy sets the full retry contract: attempts per task,
// exponential backoff with seeded jitter, per-attempt deadline, and the
// per-job retry budget.
func WithRetryPolicy(p chaos.RetryPolicy) Option {
	return func(e *Engine) { e.policy = p }
}

// WithChaos arms the engine with a seeded fault injector. Nil disarms.
func WithChaos(inj *chaos.Injector) Option {
	return func(e *Engine) { e.inj.Store(inj) }
}

// WithMemoryBudget caps the estimated bytes of materialized partitions,
// shuffle buckets, and sorted runs the engine retains in memory. Past the
// budget, materializations spill to deterministic length-prefixed temp
// files and are streamed back on read — capacity grows to disk size while
// every released value stays byte-identical to the in-memory run. Zero
// spills every materialization; negative (the default) disables spilling.
// Engines that may spill should be Closed to remove their temp files.
func WithMemoryBudget(bytes int64) Option {
	return func(e *Engine) { e.spill.budget = bytes }
}

// NewEngine builds an engine. By default it uses GOMAXPROCS workers and
// retries each task up to three times with no backoff, deadline, or budget
// (chaos.DefaultRetryPolicy).
func NewEngine(opts ...Option) *Engine {
	e := &Engine{
		workers: runtime.GOMAXPROCS(0),
		policy:  chaos.DefaultRetryPolicy(),
	}
	e.cache = newReductionCache(&e.metrics)
	// The spill store's filesystem is always the chaos wrapper: it reads
	// the injector through e.Chaos at each operation, so SetChaos arms and
	// disarms disk faults at runtime, and with no injector it is pure
	// passthrough to the OS.
	e.spill = &spillStore{metrics: &e.metrics, budget: -1}
	e.spill.fs = newChaosFS(osFS{}, e.Chaos)
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// MemoryBudget reports the configured in-memory materialization budget in
// bytes (negative: unlimited, spilling disabled).
func (e *Engine) MemoryBudget() int64 { return e.spill.budget }

// Close releases the engine's spill directory and every temp file in it,
// waiting for in-flight spill I/O to finish first. Idempotent; engines that
// never spilled touch no disk and Close is a no-op for them. After Close
// the engine must not run further jobs that spill.
func (e *Engine) Close() error { return e.spill.close() }

// SpillDir reports the engine's spill directory: empty until the first
// spill and after Close. Tests and operators use it to audit temp-file
// hygiene (no orphaned .tmp files while running, nothing left after Close).
func (e *Engine) SpillDir() string {
	e.spill.mu.Lock()
	defer e.spill.mu.Unlock()
	return e.spill.dir
}

// RetryPolicy returns the engine's retry contract, so sibling schedulers
// (the jobgraph) can share it.
func (e *Engine) RetryPolicy() chaos.RetryPolicy { return e.policy }

// Chaos returns the engine's fault injector, or nil when disarmed.
func (e *Engine) Chaos() *chaos.Injector { return e.inj.Load() }

// SetChaos arms (or, with nil, disarms) the engine's fault injector.
func (e *Engine) SetChaos(inj *chaos.Injector) { e.inj.Store(inj) }

// Workers reports the configured worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's reduction cache (UPA memoizes R(M(S')) and other
// reusable reductions here; hit rates feed the Figure 4(b) reproduction).
func (e *Engine) Cache() *ReductionCache { return e.cache }

// AccountShuffle records one shuffle round moving records rows between
// partitions. Components that physically move data outside the built-in wide
// transformations (e.g. UPA's RANGE ENFORCER partitioning, §IV-B) use it so
// the overhead accounting matches a real cluster's.
func (e *Engine) AccountShuffle(records int) {
	e.metrics.ShuffleRounds.Add(1)
	e.metrics.RecordsShuffled.Add(int64(records))
}

// AccountReduceOps records n reduce operations performed outside the
// built-in actions (e.g. UPA's in-memory prefix/suffix combines), keeping
// the operation accounting comparable between vanilla and UPA runs.
func (e *Engine) AccountReduceOps(n int64) {
	e.metrics.ReduceOps.Add(n)
}

// AccountBatches records a vectorized pipeline processing batches windows
// covering records rows, so columnar execution is as visible in the metrics
// as the row path's RecordsMapped.
func (e *Engine) AccountBatches(batches, records int64) {
	e.metrics.BatchesProcessed.Add(batches)
	e.metrics.RecordsBatched.Add(records)
}

// InjectFaults arranges for the next n task attempts to fail artificially.
// The scheduler retries them from lineage, exercising the fault-tolerance
// path that commutativity/associativity enable. Legacy compatibility shim
// over the chaos injector's counted-fault queue: if no injector is armed, a
// zero-rate one is installed to carry the count.
func (e *Engine) InjectFaults(n int) {
	if n <= 0 {
		return
	}
	inj := e.inj.Load()
	if inj == nil {
		inj = chaos.New(chaos.Policy{})
		if !e.inj.CompareAndSwap(nil, inj) {
			inj = e.inj.Load()
		}
	}
	inj.AddCountedFaults(n)
}

// ErrTaskFailed is returned when a task keeps failing after all retry
// attempts.
var ErrTaskFailed = errors.New("mapreduce: task failed after retries")

// firstErrSlot retains the first error reported by any worker. A plain
// mutex-guarded slot, deliberately not an atomic.Value: workers racing to
// store different concrete error types (context.Canceled vs a wrapped
// ErrTaskFailed) would panic atomic.Value's consistent-typing check.
type firstErrSlot struct {
	mu  sync.Mutex
	err error
}

// set records err if no earlier error is held. A nil err is ignored.
func (s *firstErrSlot) set(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

// get returns the held error, or nil.
func (s *firstErrSlot) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// runTasks executes task(i) for i in [0, n) on the worker pool. Every task
// attempt may be failed, delayed, or slot-starved by the chaos injector;
// retryable failures are retried from lineage under the engine's RetryPolicy
// (attempts, backoff, per-attempt deadline, per-job retry budget). The first
// terminal error aborts the remaining tasks and is returned. Cancelling ctx
// stops workers from claiming new tasks (and from retrying failed attempts)
// and returns the context's error; a cancelled job therefore stops
// scheduling promptly instead of running to completion.
//
// site names the job for chaos decisions and error messages — dataset
// lineage names like "source.map.reduceByKey:shuffle" — so injection is a
// pure function of (seed, site, task, attempt), never of scheduling order.
func (e *Engine) runTasks(ctx context.Context, site string, n int, task func(ctx context.Context, i int) error) error {
	if n == 0 {
		return nil
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	inj := e.inj.Load()
	budget := e.policy.NewBudget()

	var (
		next     atomic.Int64
		firstErr firstErrSlot
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		// Slot loss: the worker never joins the pool and its share of tasks
		// redistributes to the survivors. Slot 0 is immune (chaos guarantees
		// it), so the job always makes progress.
		if inj.SlotLost(site, w) {
			e.metrics.SlotsLost.Add(1)
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if err := ctx.Err(); err != nil {
					firstErr.set(err)
					return
				}
				i := int(next.Add(1) - 1)
				if i >= n || firstErr.get() != nil {
					return
				}
				if err := e.runOneTask(ctx, site, i, budget, inj, task); err != nil {
					firstErr.set(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr.get()
}

func (e *Engine) runOneTask(ctx context.Context, site string, i int, budget *chaos.Budget, inj *chaos.Injector, task func(ctx context.Context, i int) error) error {
	maxAttempts := e.policy.Attempts()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err // cancelled between attempts: stop retrying
		}
		if attempt > 1 {
			// Retries draw on the shared per-job budget: once a sick job has
			// burned through it, fail fast instead of letting every task
			// thrash through its full attempt allowance.
			if !budget.Take() {
				return fmt.Errorf("%w: %s: task %d: retry budget exhausted after %d attempts: %w",
					ErrTaskFailed, site, i, attempt-1, lastErr)
			}
			e.metrics.TaskRetries.Add(1)
			if d := e.policy.Backoff(site, i, attempt-1); d > 0 {
				e.metrics.BackoffNanos.Add(int64(d))
				if !sleepCtx(ctx, d) {
					return ctx.Err()
				}
			}
		}
		e.metrics.TaskAttempts.Add(1)
		if inj.TaskFault(site, i, attempt) {
			e.metrics.TaskFaults.Add(1)
			lastErr = fmt.Errorf("%w: %s: task %d attempt %d", chaos.ErrInjected, site, i, attempt)
			continue // retry: recompute from lineage
		}
		if d := inj.TaskDelay(site, i, attempt); d > 0 {
			e.metrics.StragglersInjected.Add(1)
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
		}
		err := e.runAttempt(ctx, i, task)
		if err == nil {
			e.metrics.TasksRun.Add(1)
			return nil
		}
		switch {
		case errors.Is(err, ErrTaskFailed):
			// A nested job (e.g. a shuffle this task depends on) already
			// exhausted its own attempts; its error chain may carry
			// chaos.ErrInjected, but re-running it would double-run its
			// tasks — terminal, checked before the injected-fault case.
			return err
		case errors.Is(err, chaos.ErrInjected):
			e.metrics.TaskFaults.Add(1)
			lastErr = err
			continue
		case errors.Is(err, ErrSpillCorrupt):
			// A spill file failed its checksums and the store's own
			// recovery (retry + lineage recompute) could not clear it
			// within its attempts; a fresh task attempt re-runs the read
			// and recovery from the top.
			lastErr = err
			continue
		case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil:
			// The attempt's own deadline fired while the job is still live:
			// treat the straggling attempt as crashed and recompute.
			e.metrics.DeadlinesExceeded.Add(1)
			lastErr = err
			continue
		default:
			return err // application error or job cancellation: terminal
		}
	}
	return fmt.Errorf("%w: %s: task %d gave up after %d attempts: %w",
		ErrTaskFailed, site, i, maxAttempts, lastErr)
}

// runAttempt runs one task attempt under the policy's per-attempt deadline.
func (e *Engine) runAttempt(ctx context.Context, i int, task func(ctx context.Context, i int) error) error {
	if d := e.policy.TaskDeadline; d > 0 {
		attemptCtx, cancel := context.WithTimeout(ctx, d)
		defer cancel()
		ctx = attemptCtx
	}
	return task(ctx, i)
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Metrics exposes the engine's atomic counters. Snapshot with
// MetricsSnapshot for a consistent read.
type Metrics struct {
	TaskAttempts atomic.Int64
	TasksRun     atomic.Int64
	TaskFaults   atomic.Int64
	// TaskRetries counts re-attempts after a retryable failure (injected
	// fault or attempt deadline); ShuffleRetries counts re-fetches of a
	// shuffle materialization. BackoffNanos accumulates the time spent
	// waiting between attempts, DeadlinesExceeded the attempts cancelled by
	// the policy's per-attempt deadline, StragglersInjected and SlotsLost
	// the chaos injector's latency and worker-loss events.
	TaskRetries        atomic.Int64
	ShuffleRetries     atomic.Int64
	BackoffNanos       atomic.Int64
	DeadlinesExceeded  atomic.Int64
	StragglersInjected atomic.Int64
	SlotsLost          atomic.Int64
	RecordsMapped      atomic.Int64
	ReduceOps          atomic.Int64
	ShuffleRounds      atomic.Int64
	RecordsShuffled    atomic.Int64
	// RecordsPreCombine counts records entering a map-side combiner — what a
	// combine-less engine would have shuffled. RecordsPostCombine counts the
	// combined records that actually reached the wire, and
	// RecordsCombinedMapSide their difference: records the combiner
	// eliminated before the shuffle.
	RecordsPreCombine      atomic.Int64
	RecordsPostCombine     atomic.Int64
	RecordsCombinedMapSide atomic.Int64
	CacheHits              atomic.Int64
	CacheMisses            atomic.Int64
	BroadcastsSent         atomic.Int64
	BroadcastRecords       atomic.Int64
	// SpilledBytes counts bytes written to spill files when a
	// materialization exceeded the memory budget, SpillFiles the files
	// written, and SpillReads the file reads that streamed spilled
	// partitions back. All zero on an engine without a budget.
	SpilledBytes atomic.Int64
	SpillFiles   atomic.Int64
	SpillReads   atomic.Int64
	// RecordsBatched counts rows that flowed through a vectorized columnar
	// pipeline (the SQL layer's fused batch operators) and BatchesProcessed
	// the batches they were windowed into — the columnar analogue of
	// RecordsMapped, so row-vs-columnar experiments can show where the data
	// actually went.
	RecordsBatched   atomic.Int64
	BatchesProcessed atomic.Int64
	// Storage-fault robustness counters. SpillCorruptionsDetected counts
	// spill reads (and post-write verifications) that failed the format's
	// checksums or record counts — every one is corruption caught instead
	// of decoded into silently wrong records. SpillRecomputes counts
	// partitions re-materialized from lineage after such a detection,
	// SpillWriteRetries the spill write attempts retried after a failure,
	// and SpillFallbacksInMemory the partitions retained in memory because
	// the disk refused them past the retry policy.
	SpillCorruptionsDetected atomic.Int64
	SpillRecomputes          atomic.Int64
	SpillWriteRetries        atomic.Int64
	SpillFallbacksInMemory   atomic.Int64
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	TaskAttempts             int64
	TasksRun                 int64
	TaskFaults               int64
	TaskRetries              int64
	ShuffleRetries           int64
	BackoffNanos             int64
	DeadlinesExceeded        int64
	StragglersInjected       int64
	SlotsLost                int64
	RecordsMapped            int64
	ReduceOps                int64
	ShuffleRounds            int64
	RecordsShuffled          int64
	RecordsPreCombine        int64
	RecordsPostCombine       int64
	RecordsCombinedMapSide   int64
	CacheHits                int64
	CacheMisses              int64
	BroadcastsSent           int64
	BroadcastRecords         int64
	RecordsBatched           int64
	BatchesProcessed         int64
	SpilledBytes             int64
	SpillFiles               int64
	SpillReads               int64
	SpillCorruptionsDetected int64
	SpillRecomputes          int64
	SpillWriteRetries        int64
	SpillFallbacksInMemory   int64
}

// Metrics returns a snapshot of the engine counters.
func (e *Engine) Metrics() MetricsSnapshot {
	return MetricsSnapshot{
		TaskAttempts:             e.metrics.TaskAttempts.Load(),
		TasksRun:                 e.metrics.TasksRun.Load(),
		TaskFaults:               e.metrics.TaskFaults.Load(),
		TaskRetries:              e.metrics.TaskRetries.Load(),
		ShuffleRetries:           e.metrics.ShuffleRetries.Load(),
		BackoffNanos:             e.metrics.BackoffNanos.Load(),
		DeadlinesExceeded:        e.metrics.DeadlinesExceeded.Load(),
		StragglersInjected:       e.metrics.StragglersInjected.Load(),
		SlotsLost:                e.metrics.SlotsLost.Load(),
		RecordsMapped:            e.metrics.RecordsMapped.Load(),
		ReduceOps:                e.metrics.ReduceOps.Load(),
		ShuffleRounds:            e.metrics.ShuffleRounds.Load(),
		RecordsShuffled:          e.metrics.RecordsShuffled.Load(),
		RecordsPreCombine:        e.metrics.RecordsPreCombine.Load(),
		RecordsPostCombine:       e.metrics.RecordsPostCombine.Load(),
		RecordsCombinedMapSide:   e.metrics.RecordsCombinedMapSide.Load(),
		CacheHits:                e.metrics.CacheHits.Load(),
		CacheMisses:              e.metrics.CacheMisses.Load(),
		BroadcastsSent:           e.metrics.BroadcastsSent.Load(),
		BroadcastRecords:         e.metrics.BroadcastRecords.Load(),
		RecordsBatched:           e.metrics.RecordsBatched.Load(),
		BatchesProcessed:         e.metrics.BatchesProcessed.Load(),
		SpilledBytes:             e.metrics.SpilledBytes.Load(),
		SpillFiles:               e.metrics.SpillFiles.Load(),
		SpillReads:               e.metrics.SpillReads.Load(),
		SpillCorruptionsDetected: e.metrics.SpillCorruptionsDetected.Load(),
		SpillRecomputes:          e.metrics.SpillRecomputes.Load(),
		SpillWriteRetries:        e.metrics.SpillWriteRetries.Load(),
		SpillFallbacksInMemory:   e.metrics.SpillFallbacksInMemory.Load(),
	}
}

// CacheHitRate returns hits/(hits+misses), or 0 with no traffic.
func (s MetricsSnapshot) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Sub returns the per-field difference s - prev, for metering one phase.
func (s MetricsSnapshot) Sub(prev MetricsSnapshot) MetricsSnapshot {
	return MetricsSnapshot{
		TaskAttempts:             s.TaskAttempts - prev.TaskAttempts,
		TasksRun:                 s.TasksRun - prev.TasksRun,
		TaskFaults:               s.TaskFaults - prev.TaskFaults,
		TaskRetries:              s.TaskRetries - prev.TaskRetries,
		ShuffleRetries:           s.ShuffleRetries - prev.ShuffleRetries,
		BackoffNanos:             s.BackoffNanos - prev.BackoffNanos,
		DeadlinesExceeded:        s.DeadlinesExceeded - prev.DeadlinesExceeded,
		StragglersInjected:       s.StragglersInjected - prev.StragglersInjected,
		SlotsLost:                s.SlotsLost - prev.SlotsLost,
		RecordsMapped:            s.RecordsMapped - prev.RecordsMapped,
		ReduceOps:                s.ReduceOps - prev.ReduceOps,
		ShuffleRounds:            s.ShuffleRounds - prev.ShuffleRounds,
		RecordsShuffled:          s.RecordsShuffled - prev.RecordsShuffled,
		RecordsPreCombine:        s.RecordsPreCombine - prev.RecordsPreCombine,
		RecordsPostCombine:       s.RecordsPostCombine - prev.RecordsPostCombine,
		RecordsCombinedMapSide:   s.RecordsCombinedMapSide - prev.RecordsCombinedMapSide,
		CacheHits:                s.CacheHits - prev.CacheHits,
		CacheMisses:              s.CacheMisses - prev.CacheMisses,
		BroadcastsSent:           s.BroadcastsSent - prev.BroadcastsSent,
		BroadcastRecords:         s.BroadcastRecords - prev.BroadcastRecords,
		RecordsBatched:           s.RecordsBatched - prev.RecordsBatched,
		BatchesProcessed:         s.BatchesProcessed - prev.BatchesProcessed,
		SpilledBytes:             s.SpilledBytes - prev.SpilledBytes,
		SpillFiles:               s.SpillFiles - prev.SpillFiles,
		SpillReads:               s.SpillReads - prev.SpillReads,
		SpillCorruptionsDetected: s.SpillCorruptionsDetected - prev.SpillCorruptionsDetected,
		SpillRecomputes:          s.SpillRecomputes - prev.SpillRecomputes,
		SpillWriteRetries:        s.SpillWriteRetries - prev.SpillWriteRetries,
		SpillFallbacksInMemory:   s.SpillFallbacksInMemory - prev.SpillFallbacksInMemory,
	}
}
