// Package upa is a Go implementation of UPA — Union Preserving Aggregation
// (Li et al., "UPA: An Automated, Accurate and Efficient Differentially
// Private Big-data Mining System", DSN 2020): an automated, accurate and
// efficient system for releasing MapReduce query results under individual
// differential privacy (iDP).
//
// A query is a Mapper (per-record contribution), a commutative and
// associative Reducer (vector addition by default), and an optional Finalize
// step. Given a query and a dataset, UPA samples n differing records,
// exploits the reducer's commutativity and associativity to reuse the
// reduction of the un-sampled bulk of the input across all n sampled
// neighbouring datasets, infers a local sensitivity value from the 1st/99th
// percentiles of an MLE-fitted normal distribution over the neighbouring
// outputs, detects repeated-query attacks with the RANGE ENFORCER, clamps
// the output into the inferred range, and releases it with Laplace noise.
//
// Basic use:
//
//	session, err := upa.NewSession(upa.WithEpsilon(0.1))
//	...
//	query := upa.Count("active-users", func(u User) bool { return u.Active })
//	result, err := upa.Release(session, query, users, nil)
//	fmt.Println(result.Output[0]) // noisy count, iDP-protected
package upa

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"sync"
	"time"

	"upa/internal/core"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// ErrBudgetExhausted is returned by Release when the session's total
// privacy budget (WithTotalBudget) cannot cover another ε-release. Under
// sequential composition, each release spends its ε; once the ledger is
// empty no further information about the data may be released.
var ErrBudgetExhausted = errors.New("upa: session privacy budget exhausted")

// RNG is the deterministic randomness source handed to domain samplers.
type RNG = stats.RNG

// Session is a UPA deployment: an execution engine, a RANGE ENFORCER whose
// attack-detection history spans every query released through the session,
// and a Laplace mechanism with a fixed per-release privacy budget.
//
// A Session is safe for concurrent use.
type Session struct {
	eng *mapreduce.Engine
	sys *core.System

	// budgetMu guards the composition ledger; totalBudget == 0 means
	// unlimited.
	budgetMu     sync.Mutex
	totalBudget  float64
	spentBudget  float64
	releaseCount int
	composition  Composition
	delta        float64
}

// Option configures a Session.
type Option func(*sessionConfig)

type sessionConfig struct {
	workers     int
	budget      float64
	composition Composition
	delta       float64
	core        core.Config
}

// WithEpsilon sets the per-release privacy budget ε (default 0.1, the
// paper's evaluation setting).
func WithEpsilon(eps float64) Option {
	return func(c *sessionConfig) { c.core.Epsilon = eps }
}

// WithSampleSize sets n, the number of differing records sampled per side
// (default 1000; statistically sufficient per §IV-A).
func WithSampleSize(n int) Option {
	return func(c *sessionConfig) { c.core.SampleSize = n }
}

// WithSeed seeds every stochastic component for reproducible releases.
func WithSeed(seed uint64) Option {
	return func(c *sessionConfig) { c.core.Seed = seed }
}

// WithPercentiles sets the output-range percentiles (default 0.01, 0.99).
func WithPercentiles(lo, hi float64) Option {
	return func(c *sessionConfig) { c.core.PercentileLo, c.core.PercentileHi = lo, hi }
}

// WithWorkers sets the engine's worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *sessionConfig) { c.workers = n }
}

// WithTotalBudget caps the session's cumulative privacy spend: under
// sequential composition, k releases at ε each consume k·ε, and Release
// returns ErrBudgetExhausted once another release would exceed total.
// Zero (the default) means no cap.
func WithTotalBudget(total float64) Option {
	return func(c *sessionConfig) { c.budget = total }
}

// WithLogger routes one structured record per release (phase durations,
// inferred sensitivity, enforcer decisions) to logger. Nil keeps releases
// silent (the default).
func WithLogger(logger *slog.Logger) Option {
	return func(c *sessionConfig) { c.core.Logger = logger }
}

// WithSplitVectorBudget divides ε across the output coordinates of
// vector-valued queries, so one release of a d-dimensional output composes
// to a single ε instead of d·ε (at the cost of d× more noise per
// coordinate). Scalar queries are unaffected.
func WithSplitVectorBudget() Option {
	return func(c *sessionConfig) { c.core.SplitVectorBudget = true }
}

// WithChargeObserver registers fn to observe every ε-ledger charge the
// instant a release commits it (the argument is the charged ε, after any
// SplitVectorBudget division and output-dimension multiplication). Serving
// layers that keep their own per-tenant admission ledgers use the observer
// to reconcile admission-time pricing against the system's actual spend.
// fn runs on the releasing goroutine and must not block.
func WithChargeObserver(fn func(eps float64)) Option {
	return func(c *sessionConfig) { c.core.OnCharge = fn }
}

// WithGroupSize extends the guarantee from individuals to groups of up to k
// records (the paper's §VI-E extension): UPA additionally samples whole-
// group neighbouring datasets — reusing the same intermediate reductions —
// and widens the enforced output range to cover group influence.
func WithGroupSize(k int) Option {
	return func(c *sessionConfig) { c.core.GroupSize = k }
}

// NewSession builds a session with the paper's evaluation defaults.
func NewSession(opts ...Option) (*Session, error) {
	cfg := sessionConfig{core: core.DefaultConfig()}
	for _, opt := range opts {
		opt(&cfg)
	}
	var engOpts []mapreduce.Option
	if cfg.workers > 0 {
		engOpts = append(engOpts, mapreduce.WithWorkers(cfg.workers))
	}
	eng := mapreduce.NewEngine(engOpts...)
	sys, err := core.NewSystem(eng, cfg.core)
	if err != nil {
		return nil, err
	}
	if cfg.budget < 0 {
		return nil, fmt.Errorf("upa: total budget must be non-negative, got %v", cfg.budget)
	}
	if err := validateComposition(cfg.composition, cfg.delta); err != nil {
		return nil, err
	}
	return &Session{
		eng: eng, sys: sys,
		totalBudget: cfg.budget,
		composition: cfg.composition,
		delta:       cfg.delta,
	}, nil
}

// SpentBudget reports the composed ε consumed by releases so far (linear
// sum by default; the advanced-composition bound under
// WithAdvancedComposition).
func (s *Session) SpentBudget() float64 {
	s.budgetMu.Lock()
	defer s.budgetMu.Unlock()
	return s.spentBudget
}

// RemainingBudget reports the ε left before ErrBudgetExhausted; it returns
// +Inf when the session has no cap.
func (s *Session) RemainingBudget() float64 {
	s.budgetMu.Lock()
	defer s.budgetMu.Unlock()
	if s.totalBudget == 0 {
		return math.Inf(1)
	}
	return s.totalBudget - s.spentBudget
}

// debit reserves one more ε-release in the ledger, failing when the
// composed spend would exceed the budget.
func (s *Session) debit(eps float64) error {
	s.budgetMu.Lock()
	defer s.budgetMu.Unlock()
	next := composedEpsilon(s.Composition(), eps, s.releaseCount+1, s.delta)
	if s.totalBudget > 0 && next > s.totalBudget+1e-12 {
		return fmt.Errorf("%w: %d releases compose to %.4g, budget %.4g cannot cover another",
			ErrBudgetExhausted, s.releaseCount, s.spentBudget, s.totalBudget)
	}
	s.releaseCount++
	s.spentBudget = next
	return nil
}

// credit refunds a reserved release when it fails before touching data.
func (s *Session) credit(eps float64) {
	s.budgetMu.Lock()
	defer s.budgetMu.Unlock()
	s.releaseCount--
	s.spentBudget = composedEpsilon(s.Composition(), eps, s.releaseCount, s.delta)
}

// Epsilon reports the session's per-release privacy budget.
func (s *Session) Epsilon() float64 { return s.sys.Config().Epsilon }

// SampleSize reports the configured differing-record sample size n.
func (s *Session) SampleSize() int { return s.sys.Config().SampleSize }

// ResetHistory clears the RANGE ENFORCER's attack-detection history,
// starting a fresh analyst session.
func (s *Session) ResetHistory() { s.sys.ResetHistory() }

// HistoryLen reports how many releases the RANGE ENFORCER remembers.
func (s *Session) HistoryLen() int { return s.sys.Enforcer().HistoryLen() }

// SaveHistory serializes the RANGE ENFORCER's attack-detection history to
// w. Persist it across process restarts: an analyst who can bounce the
// service between two releases of the same query would otherwise erase the
// evidence the enforcer needs to detect the §III differencing attack.
func (s *Session) SaveHistory(w io.Writer) error {
	return s.sys.Enforcer().Save(w)
}

// LoadHistory replaces the RANGE ENFORCER's history with one previously
// written by SaveHistory.
func (s *Session) LoadHistory(r io.Reader) error {
	return s.sys.Enforcer().Load(r)
}

// Metrics snapshots the engine's activity counters.
func (s *Session) Metrics() EngineMetrics {
	m := s.eng.Metrics()
	return EngineMetrics{
		TasksRun:               m.TasksRun,
		RecordsMapped:          m.RecordsMapped,
		ReduceOps:              m.ReduceOps,
		ShuffleRounds:          m.ShuffleRounds,
		RecordsShuffled:        m.RecordsShuffled,
		RecordsPreCombine:      m.RecordsPreCombine,
		RecordsPostCombine:     m.RecordsPostCombine,
		RecordsCombinedMapSide: m.RecordsCombinedMapSide,
		CacheHits:              m.CacheHits,
		CacheMisses:            m.CacheMisses,
	}
}

// EngineMetrics is a snapshot of the session's execution-engine counters.
type EngineMetrics struct {
	TasksRun        int64
	RecordsMapped   int64
	ReduceOps       int64
	ShuffleRounds   int64
	RecordsShuffled int64
	// RecordsPreCombine and RecordsPostCombine bracket the engine's map-side
	// combines (records entering the combiners vs combined records actually
	// shuffled); RecordsCombinedMapSide is the difference — raw records the
	// combiners kept off the wire.
	RecordsPreCombine      int64
	RecordsPostCombine     int64
	RecordsCombinedMapSide int64
	CacheHits              int64
	CacheMisses            int64
}

// Result is one iDP release.
type Result struct {
	// Query names the released query.
	Query string
	// Output is the noisy output vector returned to the analyst.
	Output []float64
	// Sensitivity is the inferred local sensitivity per coordinate.
	Sensitivity []float64
	// RangeLo and RangeHi are the enforced output range per coordinate.
	RangeLo, RangeHi []float64
	// SampleSize is the effective n (min of the configured n and |x|).
	SampleSize int
	// AttackSuspected reports whether the RANGE ENFORCER matched this
	// release against a previous one on a possibly-neighbouring dataset;
	// RemovedRecords counts the records it removed to break the attack.
	AttackSuspected bool
	RemovedRecords  int
	// Phases is the wall-clock breakdown over UPA's four phases.
	Phases PhaseTimings
}

// PhaseTimings is the wall-clock breakdown over UPA's four phases (§III).
type PhaseTimings struct {
	PartitionSample       time.Duration
	ParallelMap           time.Duration
	UnionPreservingReduce time.Duration
	IDPEnforcement        time.Duration
}

// Total returns the sum of all phases.
func (p PhaseTimings) Total() time.Duration {
	return p.PartitionSample + p.ParallelMap + p.UnionPreservingReduce + p.IDPEnforcement
}

// Release runs query q over data through the session and returns the iDP
// release. domain, if non-nil, samples records from the query's record
// domain (beyond those in data) so that "addition" neighbouring datasets are
// covered too; with a nil domain only removals are sampled.
func Release[T any](s *Session, q Query[T], data []T, domain func(*RNG) T) (*Result, error) {
	cq, err := q.toCore()
	if err != nil {
		return nil, err
	}
	eps := s.sys.Config().Epsilon
	if err := s.debit(eps); err != nil {
		return nil, err
	}
	res, err := core.Run(s.sys, cq, data, domain)
	if err != nil {
		// Nothing was released, so the reserved budget is refunded.
		s.credit(eps)
		return nil, err
	}
	return &Result{
		Query:           res.Query,
		Output:          res.Output,
		Sensitivity:     res.Sensitivity,
		RangeLo:         res.RangeLo,
		RangeHi:         res.RangeHi,
		SampleSize:      res.SampleSize,
		AttackSuspected: res.AttackSuspected,
		RemovedRecords:  res.RemovedRecords,
		Phases: PhaseTimings{
			PartitionSample:       res.Phases.PartitionSample,
			ParallelMap:           res.Phases.ParallelMap,
			UnionPreservingReduce: res.Phases.UnionPreservingReduce,
			IDPEnforcement:        res.Phases.IDPEnforcement,
		},
	}, nil
}

// Evaluate runs query q with no privacy machinery — the vanilla baseline.
// It never touches the RANGE ENFORCER history and must not be released to
// untrusted analysts.
func Evaluate[T any](s *Session, q Query[T], data []T) ([]float64, error) {
	cq, err := q.toCore()
	if err != nil {
		return nil, err
	}
	return core.RunVanilla(s.eng, cq, data)
}
