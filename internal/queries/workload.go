// Package queries implements the nine big-data mining queries of the
// paper's evaluation (Table II) against the engine: the five TPC-H counting
// queries FLEX supports (1, 4, 13, 16, 21), the two arithmetic queries it
// does not (6, 11), and the two machine-learning queries (KMeans, Linear
// Regression).
//
// Every query is expressed in UPA's Mapper/Reducer form: a per-record
// Mapper — closing over broadcast lookup tables built from the auxiliary
// relations with engine-metered MapReduce jobs — and a commutative,
// associative Reducer (vector addition), optionally followed by a Finalize.
// Queries with correlated structure (TPCH21's exists-other-supplier) follow
// UPA's Spark implementation: the broadcast is computed once over the full
// input and reused while evaluating sampled neighbouring datasets, so each
// record's contribution is independent given the broadcast (§V-B).
package queries

import (
	"fmt"

	"upa/internal/bruteforce"
	"upa/internal/core"
	"upa/internal/flex"
	"upa/internal/lifesci"
	"upa/internal/mapreduce"
	"upa/internal/stats"
	"upa/internal/tpch"
)

// Kind classifies a query as in Table II.
type Kind string

// Query kinds.
const (
	KindCount      Kind = "Count"
	KindArithmetic Kind = "Arithmetic"
	KindML         Kind = "Machine Learning"
)

// Runner is the uniform handle over one evaluated query: the experiment
// harness iterates Runners to regenerate every table and figure.
type Runner interface {
	// Name is the paper's query name ("TPCH1", "KMeans", ...).
	Name() string
	// Kind is the Table II query type.
	Kind() Kind
	// FLEXSupported reports whether FLEX's static analysis covers the query.
	FLEXSupported() bool
	// DatasetSize is the number of protected records (the rows whose
	// addition/removal defines neighbouring datasets).
	DatasetSize() int
	// RunVanilla evaluates the query with no DP machinery.
	RunVanilla(eng *mapreduce.Engine) ([]float64, error)
	// RunUPA releases the query through a UPA system. For join queries the
	// broadcast join is executed twice (remaining tuples, then differing
	// tuples), doubling the shuffle rounds exactly as §V-C describes.
	RunUPA(sys *core.System) (*core.Result, error)
	// GroundTruth computes the exact neighbouring-output census by brute
	// force: all removals plus nAdditions sampled additions.
	GroundTruth(eng *mapreduce.Engine, nAdditions int, rng *stats.RNG) (*bruteforce.Truth, error)
	// FLEXPlan returns the query as FLEX's static analysis models it. For
	// unsupported queries the plan's LocalSensitivity returns
	// flex.ErrUnsupported.
	FLEXPlan(eng *mapreduce.Engine) (flex.Plan, error)
}

// Workload is a generated database plus the fixed query parameters (model
// initializations) shared by every run against it.
type Workload struct {
	DB *tpch.DB
	LS *lifesci.Dataset

	// kmInit is the fixed KMeans initialization; lrInit the fixed starting
	// weights for the linear-regression SGD step. Both derive
	// deterministically from the workload seed.
	kmInit [][]float64
	lrInit []float64
}

// NewWorkload generates a workload from the two generator configurations.
func NewWorkload(tcfg tpch.Config, lcfg lifesci.Config) (*Workload, error) {
	db, err := tpch.Generate(tcfg)
	if err != nil {
		return nil, fmt.Errorf("queries: generate tpch: %w", err)
	}
	return newWorkload(db, lcfg)
}

// NewWorkloadFromDB wraps an already generated TPC-H database in a workload
// (with a minimal life-science side), for callers that only need the SQL
// queries.
func NewWorkloadFromDB(db *tpch.DB) (*Workload, error) {
	if db == nil {
		return nil, fmt.Errorf("queries: nil database")
	}
	return newWorkload(db, lifesci.Config{
		Records: 100, Dims: 2, Clusters: 2, OutlierFrac: 0.01, Seed: db.Config.Seed,
	})
}

func newWorkload(db *tpch.DB, lcfg lifesci.Config) (*Workload, error) {
	ls, err := lifesci.Generate(lcfg)
	if err != nil {
		return nil, fmt.Errorf("queries: generate lifesci: %w", err)
	}
	w := &Workload{DB: db, LS: ls}
	// Initialize KMeans near (but not at) the planted centres and LR at a
	// deterministic non-zero weight vector, so one iteration moves both.
	initRNG := stats.NewRNG(db.Config.Seed ^ 0xA5A5)
	w.kmInit = make([][]float64, lcfg.Clusters)
	for c := range w.kmInit {
		w.kmInit[c] = make([]float64, lcfg.Dims)
		for d := range w.kmInit[c] {
			w.kmInit[c][d] = ls.TrueCenters[c][d] + 2*initRNG.NormFloat64()
		}
	}
	w.lrInit = make([]float64, lcfg.Dims+1)
	for d := range w.lrInit {
		w.lrInit[d] = 0.1 * initRNG.NormFloat64()
	}
	return w, nil
}

// DefaultWorkload generates the evaluation-default workload.
func DefaultWorkload() (*Workload, error) {
	return NewWorkload(tpch.DefaultConfig(), lifesci.DefaultConfig())
}

// All returns the nine evaluated queries in the paper's Table II order.
func (w *Workload) All() []Runner {
	return []Runner{
		w.TPCH1(), w.TPCH4(), w.TPCH13(), w.TPCH16(), w.TPCH21(),
		w.KMeans(), w.LinearRegression(),
		w.TPCH6(), w.TPCH11(),
	}
}

// ByName returns the named runner (case-sensitive, Table II names).
func (w *Workload) ByName(name string) (Runner, error) {
	for _, r := range w.All() {
		if r.Name() == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("queries: unknown query %q", name)
}

// runner is the shared generic implementation behind every Runner.
type runner[T any] struct {
	name  string
	kind  Kind
	size  int
	joins int // number of Join operators in the plan
	bind  func(eng *mapreduce.Engine) (core.Query[T], []T, func(*stats.RNG) T, error)
	plan  func(eng *mapreduce.Engine) (flex.Plan, error)
}

func (r *runner[T]) Name() string        { return r.name }
func (r *runner[T]) Kind() Kind          { return r.kind }
func (r *runner[T]) FLEXSupported() bool { return r.kind == KindCount }
func (r *runner[T]) DatasetSize() int    { return r.size }

func (r *runner[T]) RunVanilla(eng *mapreduce.Engine) ([]float64, error) {
	q, data, _, err := r.bind(eng)
	if err != nil {
		return nil, err
	}
	return core.RunVanilla(eng, q, data)
}

func (r *runner[T]) RunUPA(sys *core.System) (*core.Result, error) {
	q, data, domain, err := r.bind(sys.Engine())
	if err != nil {
		return nil, err
	}
	if r.joins > 0 {
		// Second join-and-shuffle round over the differing tuples (§V-C):
		// vanilla Spark shuffles once per Join, UPA twice.
		if _, _, _, err := r.bind(sys.Engine()); err != nil {
			return nil, err
		}
	}
	return core.Run(sys, q, data, domain)
}

func (r *runner[T]) GroundTruth(eng *mapreduce.Engine, nAdditions int, rng *stats.RNG) (*bruteforce.Truth, error) {
	q, data, domain, err := r.bind(eng)
	if err != nil {
		return nil, err
	}
	if nAdditions == 0 {
		return bruteforce.LocalSensitivity(eng, q, data, nil, 0, nil)
	}
	return bruteforce.LocalSensitivity(eng, q, data, domain, nAdditions, rng)
}

func (r *runner[T]) FLEXPlan(eng *mapreduce.Engine) (flex.Plan, error) {
	return r.plan(eng)
}

// unsupportedPlan is the FLEXPlan of every non-count query.
func unsupportedPlan(name string) func(*mapreduce.Engine) (flex.Plan, error) {
	return func(*mapreduce.Engine) (flex.Plan, error) {
		return flex.Plan{Name: name, CountQuery: false}, nil
	}
}
