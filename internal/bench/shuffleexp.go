package bench

import (
	"fmt"
	"strings"
	"time"

	"upa/internal/cluster"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// ShuffleRow is one skew level of the map-side-combine experiment: the same
// per-key sum computed through a raw shuffle (GroupByKey then fold, every
// record crosses the wire) and through ReduceByKey's map-side combine (at
// most one record per partition×key crosses), with both engine deltas priced
// by the cluster model.
type ShuffleRow struct {
	// Skew is the hot-set probability of the generated keys; Records,
	// Partitions and DistinctKeys size the keyed dataset.
	Skew         float64
	Records      int
	Partitions   int
	DistinctKeys int
	// RawShuffled is the records the combine-less baseline ships;
	// CombinedShuffled what ReduceByKey ships after its map-side combine;
	// CombinedAway the records the combine kept off the wire
	// (RecordsCombinedMapSide).
	RawShuffled      int64
	CombinedShuffled int64
	CombinedAway     int64
	// Reduction is 1 - combined/raw: the fraction of shuffle traffic the
	// combine eliminated.
	Reduction float64
	// CombinedSimCost and RawSimCost are the cluster-model prices of the two
	// engine deltas: the combine trades network for mapper CPU, so the gap is
	// the simulated-testbed win.
	CombinedSimCost time.Duration
	RawSimCost      time.Duration
}

// ShuffleBench measures how much shuffle traffic the map-side combine
// eliminates as key skew grows. For each skew level it generates Lineitems
// keyed records (hot-set draw, like the TPC-H generator's foreign keys),
// computes the per-key sum both ways on fresh engines, and reads the
// RecordsShuffled / RecordsCombinedMapSide deltas. skews nil defaults to
// {0, 0.2, 0.5, 0.8}.
func ShuffleBench(cfg Config, model cluster.Model, skews []float64) ([]ShuffleRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(skews) == 0 {
		skews = []float64{0, 0.2, 0.5, 0.8}
	}
	// The key space is wide relative to the per-partition record count, so
	// the per-partition distinct-key count — what the combine ships — falls
	// as skew concentrates records onto the hot set.
	const (
		numParts = 8
		keySpace = 4096
		hotKeys  = 4
	)
	root := stats.NewRNG(cfg.Seed)
	rows := make([]ShuffleRow, 0, len(skews))
	for i, skew := range skews {
		if skew < 0 || skew >= 1 {
			return nil, fmt.Errorf("bench: shuffle skew must be in [0, 1), got %v", skew)
		}
		rng := root.Split(uint64(i))
		pairs := make([]mapreduce.Pair[int, int], cfg.Lineitems)
		distinct := make(map[int]bool)
		for j := range pairs {
			key := rng.Intn(keySpace)
			if rng.Float64() < skew {
				key = rng.Intn(hotKeys)
			}
			pairs[j] = mapreduce.Pair[int, int]{Key: key, Value: 1}
			distinct[key] = true
		}
		sum := func(a, b int) int { return a + b }

		combinedDelta, combined, err := runKeyedSum(pairs, numParts, func(d *mapreduce.Dataset[mapreduce.Pair[int, int]]) *mapreduce.Dataset[mapreduce.Pair[int, int]] {
			return mapreduce.ReduceByKey(d, sum)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: shuffle skew %v combined: %w", skew, err)
		}
		rawDelta, raw, err := runKeyedSum(pairs, numParts, func(d *mapreduce.Dataset[mapreduce.Pair[int, int]]) *mapreduce.Dataset[mapreduce.Pair[int, int]] {
			grouped := mapreduce.GroupByKey(d)
			return mapreduce.Map(grouped, func(g mapreduce.Pair[int, []int]) mapreduce.Pair[int, int] {
				total := 0
				for _, v := range g.Value {
					total += v
				}
				return mapreduce.Pair[int, int]{Key: g.Key, Value: total}
			})
		})
		if err != nil {
			return nil, fmt.Errorf("bench: shuffle skew %v raw: %w", skew, err)
		}
		if err := sameSums(raw, combined); err != nil {
			return nil, fmt.Errorf("bench: shuffle skew %v: %w", skew, err)
		}

		combinedCost, err := model.Estimate(combinedDelta)
		if err != nil {
			return nil, err
		}
		rawCost, err := model.Estimate(rawDelta)
		if err != nil {
			return nil, err
		}
		row := ShuffleRow{
			Skew:             skew,
			Records:          cfg.Lineitems,
			Partitions:       numParts,
			DistinctKeys:     len(distinct),
			RawShuffled:      rawDelta.RecordsShuffled,
			CombinedShuffled: combinedDelta.RecordsShuffled,
			CombinedAway:     combinedDelta.RecordsCombinedMapSide,
			CombinedSimCost:  combinedCost.Total(),
			RawSimCost:       rawCost.Total(),
		}
		if row.RawShuffled > 0 {
			row.Reduction = 1 - float64(row.CombinedShuffled)/float64(row.RawShuffled)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runKeyedSum computes one per-key aggregation on a fresh engine and returns
// the engine's metrics delta alongside the result.
func runKeyedSum(pairs []mapreduce.Pair[int, int], numParts int,
	aggregate func(*mapreduce.Dataset[mapreduce.Pair[int, int]]) *mapreduce.Dataset[mapreduce.Pair[int, int]],
) (mapreduce.MetricsSnapshot, []mapreduce.Pair[int, int], error) {
	eng := mapreduce.NewEngine()
	d, err := mapreduce.FromSlice(eng, pairs, numParts)
	if err != nil {
		return mapreduce.MetricsSnapshot{}, nil, err
	}
	before := eng.Metrics()
	out, err := aggregate(d).Collect()
	if err != nil {
		return mapreduce.MetricsSnapshot{}, nil, err
	}
	return eng.Metrics().Sub(before), out, nil
}

// sameSums checks the two aggregation paths agree key for key — the combine's
// output-invariance contract, enforced on every experiment run.
func sameSums(raw, combined []mapreduce.Pair[int, int]) error {
	if len(raw) != len(combined) {
		return fmt.Errorf("paths disagree: raw has %d keys, combined %d", len(raw), len(combined))
	}
	want := make(map[int]int, len(raw))
	for _, p := range raw {
		want[p.Key] = p.Value
	}
	for _, p := range combined {
		if want[p.Key] != p.Value {
			return fmt.Errorf("paths disagree on key %d: raw %d, combined %d", p.Key, want[p.Key], p.Value)
		}
	}
	return nil
}

// RenderShuffle renders the map-side-combine sweep.
func RenderShuffle(rows []ShuffleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Map-side combine: shuffle volume and simulated cost vs key skew\n")
	fmt.Fprintf(&b, "%-6s %9s %6s %9s %10s %10s %10s %12s %12s\n",
		"skew", "records", "keys", "raw", "combined", "saved", "reduction", "sim(comb)", "sim(raw)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6.2f %9d %6d %9d %10d %10d %9.1f%% %12v %12v\n",
			r.Skew, r.Records, r.DistinctKeys, r.RawShuffled, r.CombinedShuffled,
			r.CombinedAway, 100*r.Reduction,
			r.CombinedSimCost.Round(time.Microsecond), r.RawSimCost.Round(time.Microsecond))
	}
	return b.String()
}
