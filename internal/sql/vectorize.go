package sql

import (
	"upa/internal/colbatch"
)

// vectorize.go compiles scalar expressions into batch-at-a-time kernel
// programs over colbatch columns. The vectorizable fragment is chosen so
// that every compiled kernel is *infallible* and evaluates to exactly the
// values the row-at-a-time evaluator (expr.go) would produce:
//
//   - division is rejected — it is the one arithmetic operator that can
//     fail at runtime (division by zero), and the row path's error must
//     keep surfacing from the row path;
//   - comparisons between differing non-numeric kinds are rejected —
//     Compare errors on them at runtime;
//   - ordering comparisons (<, <=, >, >=) always run on float64-widened
//     operands, even for int/int pairs, because the row path routes every
//     ordering through Compare, which widens via AsFloat first;
//   - same-kind =/<> use direct Go equality (the row path's shortcut: NaN ≠
//     NaN on floats), while mixed int/float =/<> use the Compare-routed
//     form, under which NaN compares equal to everything;
//   - AND/OR evaluate both sides where the row path short-circuits, which
//     is observationally identical because vectorized operands cannot
//     fail.
//
// Because kernels cannot fail, filters and projections may be computed over
// a batch's dead lanes (rows an earlier filter dropped) without changing
// any observable behaviour — the property the fused columnar pipeline in
// colexec.go relies on.

// vecFn evaluates an expression over a batch, returning a full-length
// (Batch.N) column of the expression's kind. Selection is ignored; the
// caller applies it at materialization seams.
type vecFn func(b *colbatch.Batch) colbatch.Col

// colKind maps a sql value kind onto its columnar element type.
func colKind(k Kind) colbatch.Kind {
	switch k {
	case KindInt:
		return colbatch.Int64
	case KindFloat:
		return colbatch.Float64
	case KindString:
		return colbatch.String
	case KindBool:
		return colbatch.Bool
	default:
		return 0
	}
}

// vectorizeExpr compiles e against schema. ok is false when the expression
// falls outside the vectorizable fragment described above (the caller then
// keeps the subtree on the row path).
func vectorizeExpr(e Expr, schema Schema) (vecFn, Kind, bool) {
	switch n := e.(type) {
	case colExpr:
		idx, err := schema.IndexOf(n.name)
		if err != nil {
			return nil, 0, false
		}
		kind := schema[idx].Kind
		if colKind(kind) == 0 {
			return nil, 0, false
		}
		return func(b *colbatch.Batch) colbatch.Col { return b.Cols[idx] }, kind, true

	case litExpr:
		v := n.v
		kind := v.Kind()
		if colKind(kind) == 0 {
			return nil, 0, false
		}
		return func(b *colbatch.Batch) colbatch.Col {
			return colbatch.ConstCol(colKind(kind), b.N, v.i, v.f, v.s, v.b)
		}, kind, true

	case notExpr:
		inner, kind, ok := vectorizeExpr(n.inner, schema)
		if !ok || kind != KindBool {
			return nil, 0, false
		}
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			colbatch.Not(dst, inner(b).Bool)
			return colbatch.BoolCol(dst)
		}, KindBool, true

	case binExpr:
		return vectorizeBin(n, schema)

	default:
		return nil, 0, false
	}
}

// litOf unwraps a literal operand, letting binary compilers fold constants
// into Const kernels instead of materializing constant columns per batch.
func litOf(e Expr) (Value, bool) {
	l, ok := e.(litExpr)
	return l.v, ok
}

// f64View wraps a numeric vecFn so it yields the float64 payload, widening
// int64 columns — the AsFloat widening the row path applies inside Compare
// and float arithmetic.
func f64View(fn vecFn, kind Kind) func(b *colbatch.Batch) []float64 {
	if kind == KindFloat {
		return func(b *colbatch.Batch) []float64 { return fn(b).F64 }
	}
	return func(b *colbatch.Batch) []float64 {
		src := fn(b).I64
		dst := make([]float64, len(src))
		colbatch.Widen(dst, src)
		return dst
	}
}

func vectorizeBin(e binExpr, schema Schema) (vecFn, Kind, bool) {
	lf, lk, lok := vectorizeExpr(e.left, schema)
	rf, rk, rok := vectorizeExpr(e.right, schema)
	if !lok || !rok {
		return nil, 0, false
	}
	switch e.op {
	case opAdd, opSub, opMul:
		if !numeric(lk) || !numeric(rk) {
			return nil, 0, false
		}
		if lk == KindInt && rk == KindInt {
			return vectorizeIntArith(e, lf, rf), KindInt, true
		}
		return vectorizeFloatArith(e, lf, lk, rf, rk), KindFloat, true

	case opDiv:
		// Division can fail (÷0); its error must surface from the row path.
		return nil, 0, false

	case opEq, opNe:
		if lk == rk {
			return vectorizeDirectEq(e, lf, rf, lk), KindBool, true
		}
		if numeric(lk) && numeric(rk) {
			return vectorizeWidenEq(e, lf, lk, rf, rk), KindBool, true
		}
		return nil, 0, false

	case opLt, opLe, opGt, opGe:
		switch {
		case numeric(lk) && numeric(rk):
			return vectorizeNumOrd(e, lf, lk, rf, rk), KindBool, true
		case lk == KindString && rk == KindString:
			return vectorizeStrOrd(e, lf, rf), KindBool, true
		case lk == KindBool && rk == KindBool:
			return vectorizeBoolOrd(e, lf, rf), KindBool, true
		default:
			// Compare errors on these operands at runtime.
			return nil, 0, false
		}

	case opAnd, opOr:
		if lk != KindBool || rk != KindBool {
			return nil, 0, false
		}
		isAnd := e.op == opAnd
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			if isAnd {
				colbatch.And(dst, lf(b).Bool, rf(b).Bool)
			} else {
				colbatch.Or(dst, lf(b).Bool, rf(b).Bool)
			}
			return colbatch.BoolCol(dst)
		}, KindBool, true

	default:
		return nil, 0, false
	}
}

// vectorizeIntArith compiles int⊗int +, -, × (integral result, like the row
// path's Int arithmetic).
func vectorizeIntArith(e binExpr, lf, rf vecFn) vecFn {
	op := e.op
	if rv, ok := litOf(e.right); ok {
		c, _ := rv.AsInt()
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]int64, b.N)
			a := lf(b).I64
			switch op {
			case opAdd:
				colbatch.AddConst(dst, a, c)
			case opSub:
				colbatch.SubConstR(dst, a, c)
			default:
				colbatch.MulConst(dst, a, c)
			}
			return colbatch.IntCol(dst)
		}
	}
	if lv, ok := litOf(e.left); ok {
		c, _ := lv.AsInt()
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]int64, b.N)
			a := rf(b).I64
			switch op {
			case opAdd:
				colbatch.AddConst(dst, a, c)
			case opSub:
				colbatch.SubConstL(dst, a, c)
			default:
				colbatch.MulConst(dst, a, c)
			}
			return colbatch.IntCol(dst)
		}
	}
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]int64, b.N)
		a, bb := lf(b).I64, rf(b).I64
		switch op {
		case opAdd:
			colbatch.Add(dst, a, bb)
		case opSub:
			colbatch.Sub(dst, a, bb)
		default:
			colbatch.Mul(dst, a, bb)
		}
		return colbatch.IntCol(dst)
	}
}

// vectorizeFloatArith compiles widened-float +, -, ×.
func vectorizeFloatArith(e binExpr, lf vecFn, lk Kind, rf vecFn, rk Kind) vecFn {
	op := e.op
	if rv, ok := litOf(e.right); ok {
		c, _ := rv.AsFloat()
		la := f64View(lf, lk)
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]float64, b.N)
			a := la(b)
			switch op {
			case opAdd:
				colbatch.AddConst(dst, a, c)
			case opSub:
				colbatch.SubConstR(dst, a, c)
			default:
				colbatch.MulConst(dst, a, c)
			}
			return colbatch.FloatCol(dst)
		}
	}
	if lv, ok := litOf(e.left); ok {
		c, _ := lv.AsFloat()
		ra := f64View(rf, rk)
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]float64, b.N)
			a := ra(b)
			switch op {
			case opAdd:
				colbatch.AddConst(dst, a, c)
			case opSub:
				colbatch.SubConstL(dst, a, c)
			default:
				colbatch.MulConst(dst, a, c)
			}
			return colbatch.FloatCol(dst)
		}
	}
	la, ra := f64View(lf, lk), f64View(rf, rk)
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]float64, b.N)
		a, bb := la(b), ra(b)
		switch op {
		case opAdd:
			colbatch.Add(dst, a, bb)
		case opSub:
			colbatch.Sub(dst, a, bb)
		default:
			colbatch.Mul(dst, a, bb)
		}
		return colbatch.FloatCol(dst)
	}
}

// vectorizeDirectEq compiles the same-kind =/<> shortcut (direct Go
// equality; NaN ≠ NaN on floats).
func vectorizeDirectEq(e binExpr, lf, rf vecFn, kind Kind) vecFn {
	ne := e.op == opNe
	if rv, ok := litOf(e.right); ok {
		return directEqConst(lf, rv, kind, ne)
	}
	if lv, ok := litOf(e.left); ok {
		return directEqConst(rf, lv, kind, ne) // equality is symmetric
	}
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]bool, b.N)
		lc, rc := lf(b), rf(b)
		switch kind {
		case KindInt:
			if ne {
				colbatch.Ne(dst, lc.I64, rc.I64)
			} else {
				colbatch.Eq(dst, lc.I64, rc.I64)
			}
		case KindFloat:
			if ne {
				colbatch.Ne(dst, lc.F64, rc.F64)
			} else {
				colbatch.Eq(dst, lc.F64, rc.F64)
			}
		case KindString:
			if ne {
				colbatch.Ne(dst, lc.Str, rc.Str)
			} else {
				colbatch.Eq(dst, lc.Str, rc.Str)
			}
		default:
			if ne {
				colbatch.Ne(dst, lc.Bool, rc.Bool)
			} else {
				colbatch.Eq(dst, lc.Bool, rc.Bool)
			}
		}
		return colbatch.BoolCol(dst)
	}
}

func directEqConst(fn vecFn, v Value, kind Kind, ne bool) vecFn {
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]bool, b.N)
		c := fn(b)
		switch kind {
		case KindInt:
			if ne {
				colbatch.NeConst(dst, c.I64, v.i)
			} else {
				colbatch.EqConst(dst, c.I64, v.i)
			}
		case KindFloat:
			if ne {
				colbatch.NeConst(dst, c.F64, v.f)
			} else {
				colbatch.EqConst(dst, c.F64, v.f)
			}
		case KindString:
			if ne {
				colbatch.NeConst(dst, c.Str, v.s)
			} else {
				colbatch.EqConst(dst, c.Str, v.s)
			}
		default:
			if ne {
				colbatch.NeConst(dst, c.Bool, v.b)
			} else {
				colbatch.EqConst(dst, c.Bool, v.b)
			}
		}
		return colbatch.BoolCol(dst)
	}
}

// vectorizeWidenEq compiles mixed int/float =/<>, which the row path routes
// through Compare (widened; NaN compares equal to everything).
func vectorizeWidenEq(e binExpr, lf vecFn, lk Kind, rf vecFn, rk Kind) vecFn {
	ne := e.op == opNe
	if rv, ok := litOf(e.right); ok {
		c, _ := rv.AsFloat()
		la := f64View(lf, lk)
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			if ne {
				colbatch.NeWidenConst(dst, la(b), c)
			} else {
				colbatch.EqWidenConst(dst, la(b), c)
			}
			return colbatch.BoolCol(dst)
		}
	}
	if lv, ok := litOf(e.left); ok {
		c, _ := lv.AsFloat()
		ra := f64View(rf, rk)
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			if ne {
				colbatch.NeWidenConst(dst, ra(b), c)
			} else {
				colbatch.EqWidenConst(dst, ra(b), c)
			}
			return colbatch.BoolCol(dst)
		}
	}
	la, ra := f64View(lf, lk), f64View(rf, rk)
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]bool, b.N)
		if ne {
			colbatch.NeWiden(dst, la(b), ra(b))
		} else {
			colbatch.EqWiden(dst, la(b), ra(b))
		}
		return colbatch.BoolCol(dst)
	}
}

// vectorizeNumOrd compiles numeric orderings on float64-widened operands —
// including int/int pairs, because the row path's Compare widens every
// ordering through AsFloat.
func vectorizeNumOrd(e binExpr, lf vecFn, lk Kind, rf vecFn, rk Kind) vecFn {
	op := e.op
	if rv, ok := litOf(e.right); ok {
		c, _ := rv.AsFloat()
		la := f64View(lf, lk)
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			a := la(b)
			switch op {
			case opLt:
				colbatch.LtConst(dst, a, c)
			case opLe:
				colbatch.LeConst(dst, a, c)
			case opGt:
				colbatch.GtConst(dst, a, c)
			default:
				colbatch.GeConst(dst, a, c)
			}
			return colbatch.BoolCol(dst)
		}
	}
	if lv, ok := litOf(e.left); ok {
		c, _ := lv.AsFloat()
		ra := f64View(rf, rk)
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			a := ra(b)
			// Mirrored: c < a[i] is a[i] > c, and so on.
			switch op {
			case opLt:
				colbatch.GtConst(dst, a, c)
			case opLe:
				colbatch.GeConst(dst, a, c)
			case opGt:
				colbatch.LtConst(dst, a, c)
			default:
				colbatch.LeConst(dst, a, c)
			}
			return colbatch.BoolCol(dst)
		}
	}
	la, ra := f64View(lf, lk), f64View(rf, rk)
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]bool, b.N)
		a, bb := la(b), ra(b)
		switch op {
		case opLt:
			colbatch.Lt(dst, a, bb)
		case opLe:
			colbatch.Le(dst, a, bb)
		case opGt:
			colbatch.Gt(dst, a, bb)
		default:
			colbatch.Ge(dst, a, bb)
		}
		return colbatch.BoolCol(dst)
	}
}

// vectorizeStrOrd compiles same-kind string orderings (Compare's direct
// lexicographic order).
func vectorizeStrOrd(e binExpr, lf, rf vecFn) vecFn {
	op := e.op
	if rv, ok := litOf(e.right); ok {
		c, _ := rv.AsString()
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			a := lf(b).Str
			switch op {
			case opLt:
				colbatch.LtConst(dst, a, c)
			case opLe:
				colbatch.LeConst(dst, a, c)
			case opGt:
				colbatch.GtConst(dst, a, c)
			default:
				colbatch.GeConst(dst, a, c)
			}
			return colbatch.BoolCol(dst)
		}
	}
	if lv, ok := litOf(e.left); ok {
		c, _ := lv.AsString()
		return func(b *colbatch.Batch) colbatch.Col {
			dst := make([]bool, b.N)
			a := rf(b).Str
			switch op {
			case opLt:
				colbatch.GtConst(dst, a, c)
			case opLe:
				colbatch.GeConst(dst, a, c)
			case opGt:
				colbatch.LtConst(dst, a, c)
			default:
				colbatch.LeConst(dst, a, c)
			}
			return colbatch.BoolCol(dst)
		}
	}
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]bool, b.N)
		a, bb := lf(b).Str, rf(b).Str
		switch op {
		case opLt:
			colbatch.Lt(dst, a, bb)
		case opLe:
			colbatch.Le(dst, a, bb)
		case opGt:
			colbatch.Gt(dst, a, bb)
		default:
			colbatch.Ge(dst, a, bb)
		}
		return colbatch.BoolCol(dst)
	}
}

// vectorizeBoolOrd compiles same-kind bool orderings (false < true, as
// Compare orders them).
func vectorizeBoolOrd(e binExpr, lf, rf vecFn) vecFn {
	op := e.op
	return func(b *colbatch.Batch) colbatch.Col {
		dst := make([]bool, b.N)
		a, bb := lf(b).Bool, rf(b).Bool
		switch op {
		case opLt:
			colbatch.LtBool(dst, a, bb)
		case opLe:
			colbatch.LeBool(dst, a, bb)
		case opGt:
			colbatch.GtBool(dst, a, bb)
		default:
			colbatch.GeBool(dst, a, bb)
		}
		return colbatch.BoolCol(dst)
	}
}
