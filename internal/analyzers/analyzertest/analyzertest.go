// Package analyzertest is a stdlib-only analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer over a
// golden package in a testdata tree and matches the diagnostics against
// // want "regexp" comments placed on the offending lines.
//
// Matching semantics: every line carrying one or more `// want` patterns
// must produce exactly that many diagnostics (in order, each matching its
// pattern), and every diagnostic must land on a line that wants it.
// //upa:allow suppressions are applied before matching, so golden packages
// exercise the suppression machinery too.
package analyzertest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"upa/internal/analyzers/analysis"
)

// wantRE captures the payload of a // want comment. Patterns are Go-quoted
// or backquoted regular expressions, separated by spaces.
var wantRE = regexp.MustCompile(`// want (.*)$`)

// Run loads the golden package in dir as importPath, applies the analyzer
// (with //upa:allow suppression active), and matches diagnostics against
// the package's // want comments.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := analysis.LoadDir(fset, dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("no Go files in %s", dir)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, []*analysis.Analyzer{a}, true)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := parseWants(t, pkg)
	got := make(map[string][]analysis.Diagnostic) // "file:line" -> diagnostics
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := locKey(pos.Filename, pos.Line)
		got[key] = append(got[key], d)
	}

	for key, patterns := range wants {
		ds := got[key]
		if len(ds) != len(patterns) {
			t.Errorf("%s: want %d diagnostic(s), got %d: %v", key, len(patterns), len(ds), messages(ds))
			continue
		}
		for i, pat := range patterns {
			if !pat.MatchString(ds[i].Message) {
				t.Errorf("%s: diagnostic %q does not match want pattern %q", key, ds[i].Message, pat)
			}
		}
	}
	for key, ds := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s): %v", key, messages(ds))
		}
	}
}

func messages(ds []analysis.Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Analyzer + ": " + d.Message
	}
	return out
}

func locKey(file string, line int) string {
	return filepath.Base(file) + ":" + strconv.Itoa(line)
}

// parseWants extracts the expected-diagnostic patterns per line.
func parseWants(t *testing.T, pkg *analysis.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parsePatterns(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				key := locKey(pos.Filename, pos.Line)
				wants[key] = append(wants[key], patterns...)
			}
		}
	}
	return wants
}

// parsePatterns splits `"re1" "re2"` (double- or backquoted) into compiled
// regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var raw string
		var err error
		switch s[0] {
		case '"':
			end := matchingQuote(s)
			if end < 0 {
				return nil, errUnterminated(s)
			}
			raw, err = strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, errUnterminated(s)
			}
			raw = s[1 : end+1]
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, errUnterminated(s)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
	return out, nil
}

// matchingQuote returns the index of the closing double quote of the
// leading Go string literal, honouring backslash escapes.
func matchingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

type errUnterminated string

func (e errUnterminated) Error() string {
	return "unterminated or malformed pattern near " + strconv.Quote(string(e))
}
