package sql

import (
	"math"
	"testing"
)

// assertByteIdentical runs plan through the columnar-enabled Execute and the
// row-only baseline and requires identical rows in identical order — the
// equivalence contract the physical layer promises (not just multiset
// equality).
func assertByteIdentical(t *testing.T, plan Plan) {
	t.Helper()
	colRows, colSchema, colErr := Execute(eng(), plan)
	rowRows, rowSchema, rowErr := ExecuteRowOnly(eng(), plan)
	if (colErr == nil) != (rowErr == nil) {
		t.Fatalf("error divergence: columnar=%v row=%v", colErr, rowErr)
	}
	if colErr != nil {
		return
	}
	if !schemasEqual(colSchema, rowSchema) {
		t.Fatalf("schema divergence: columnar=%v row=%v", colSchema, rowSchema)
	}
	if len(colRows) != len(rowRows) {
		t.Fatalf("row count divergence: columnar=%d row=%d", len(colRows), len(rowRows))
	}
	for i := range colRows {
		if rowKey(colRows[i]) != rowKey(rowRows[i]) {
			t.Fatalf("row %d diverged:\ncolumnar %v\nrow      %v", i, colRows[i], rowRows[i])
		}
	}
}

// wideScan exercises all four column kinds plus values with delicate
// equality semantics (NaN, negative zero, int magnitudes beyond 2^53 whose
// float widening collapses them).
func wideScan() *ScanPlan {
	cols := Schema{
		{Name: "k", Kind: KindInt},
		{Name: "f", Kind: KindFloat},
		{Name: "s", Kind: KindString},
		{Name: "b", Kind: KindBool},
	}
	rows := []Row{
		{Int(1), Float(1.5), Str("a"), Bool(true)},
		{Int(2), Float(math.NaN()), Str("b"), Bool(false)},
		{Int(3), Float(math.Copysign(0, -1)), Str("a"), Bool(true)},
		{Int(1 << 55), Float(2.5), Str("c"), Bool(false)},
		{Int(1<<55 + 1), Float(0), Str("b"), Bool(true)},
		{Int(-4), Float(-7.25), Str(""), Bool(false)},
	}
	return Scan("wide", cols, rows)
}

func TestColumnarFilterProjectByteIdentical(t *testing.T) {
	plans := []Plan{
		// Arithmetic + const comparisons + AND/OR over every kind.
		Where(wideScan(), And(
			Gt(Add(Col("f"), Lit(Float(1))), Lit(Float(0))),
			Or(Eq(Col("s"), Lit(Str("a"))), Not(Col("b"))),
		)),
		// Direct same-kind float equality: NaN ≠ NaN must filter NaN out.
		Where(wideScan(), Eq(Col("f"), Col("f"))),
		// Mixed int/float equality routes through Compare: NaN "equals"
		// everything, and 2^55 vs 2^55+1 collapse under widening.
		Where(wideScan(), Eq(Col("k"), Col("f"))),
		// Int ordering widens too (the row path's Compare does).
		Where(wideScan(), Le(Col("k"), Lit(Int(1<<55)))),
		// Projection with int and float arithmetic, literals on both sides.
		Project(wideScan(),
			NamedExpr{Name: "ka", Expr: Mul(Col("k"), Lit(Int(3)))},
			NamedExpr{Name: "kb", Expr: Sub(Lit(Int(100)), Col("k"))},
			NamedExpr{Name: "fa", Expr: Add(Col("f"), Col("f"))},
			NamedExpr{Name: "neg", Expr: Lt(Col("f"), Lit(Float(0)))},
			NamedExpr{Name: "s", Expr: Col("s")},
		),
		// Filter → project → filter chain fused into one pipeline.
		Where(
			Project(
				Where(wideScan(), Ge(Col("f"), Lit(Float(-10)))),
				NamedExpr{Name: "g", Expr: Add(Col("f"), Lit(Float(1)))},
				NamedExpr{Name: "b", Expr: Col("b")},
			),
			Col("b"),
		),
		// String and bool orderings.
		Where(wideScan(), And(Lt(Col("s"), Lit(Str("c"))), Ge(Col("b"), Lit(Bool(true))))),
	}
	for i, plan := range plans {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("plan %d panicked: %v", i, r)
				}
			}()
			assertByteIdentical(t, plan)
		}()
	}
}

func TestColumnarAggregateByteIdentical(t *testing.T) {
	plans := []Plan{
		// Grouped aggregate over all five functions with expression args.
		GroupBy(wideScan(), []string{"s", "b"},
			AggSpec{Name: "n", Func: AggCount},
			AggSpec{Name: "sum", Func: AggSum, Arg: Add(Col("f"), Lit(Float(0.5)))},
			AggSpec{Name: "avg", Func: AggAvg, Arg: Col("f")},
			AggSpec{Name: "min", Func: AggMin, Arg: Col("f")},
			AggSpec{Name: "max", Func: AggMax, Arg: Col("k")},
		),
		// Global aggregate.
		GroupBy(Where(wideScan(), Gt(Col("f"), Lit(Float(-100)))), nil,
			AggSpec{Name: "n", Func: AggCount},
			AggSpec{Name: "total", Func: AggSum, Arg: Col("f")},
		),
		// Empty global aggregate exercises the fallback row on both paths.
		GroupBy(Where(wideScan(), Lt(Col("s"), Lit(Str("")))), nil,
			AggSpec{Name: "n", Func: AggCount},
		),
		// NaN flows through sum/min/max folds.
		GroupBy(wideScan(), []string{"b"},
			AggSpec{Name: "mn", Func: AggMin, Arg: Col("f")},
			AggSpec{Name: "mx", Func: AggMax, Arg: Col("f")},
			AggSpec{Name: "sm", Func: AggSum, Arg: Col("f")},
		),
	}
	for _, plan := range plans {
		assertByteIdentical(t, plan)
	}
}

// TestColumnarFallsBackOnDivision pins the deliberate hole in the fragment:
// division can fail, so plans containing it stay on the row path — and
// still execute identically.
func TestColumnarFallsBackOnDivision(t *testing.T) {
	plan := Project(wideScan(),
		NamedExpr{Name: "half", Expr: Div(Col("f"), Lit(Float(2)))},
	)
	phys := BuildPhysical(plan)
	if phys.Strategy != StrategyRow {
		t.Fatalf("division plan got strategy %s, want row", phys.Strategy)
	}
	assertByteIdentical(t, plan)
}

func TestBuildPhysicalStrategies(t *testing.T) {
	// A vectorizable aggregate chain is columnar end to end.
	agg := GroupBy(Where(wideScan(), Col("b")), []string{"s"},
		AggSpec{Name: "n", Func: AggCount})
	phys := BuildPhysical(agg)
	for n := phys; n != nil; {
		if n.Strategy != StrategyColumnar {
			t.Fatalf("%T strategy %s, want columnar", n.Logical, n.Strategy)
		}
		if len(n.Children) == 0 {
			break
		}
		n = n.Children[0]
	}

	// A bare scan stays row: no kernel would run over the batch.
	if got := BuildPhysical(wideScan()).Strategy; got != StrategyRow {
		t.Fatalf("bare scan strategy %s, want row", got)
	}

	// Joins are row, but their vectorizable inputs go columnar.
	join := JoinOn(
		Where(ordersScan(), Gt(Col("price"), Lit(Float(0)))),
		"custkey", customersScan(), "custkey")
	phys = BuildPhysical(join)
	if phys.Strategy != StrategyRow {
		t.Fatalf("join strategy %s, want row", phys.Strategy)
	}
	if len(phys.Children) != 2 {
		t.Fatalf("join has %d physical children", len(phys.Children))
	}
	if phys.Children[0].Strategy != StrategyColumnar {
		t.Fatalf("join left input strategy %s, want columnar", phys.Children[0].Strategy)
	}
	// The bare right-side scan stays row.
	if phys.Children[1].Strategy != StrategyRow {
		t.Fatalf("join right input strategy %s, want row", phys.Children[1].Strategy)
	}
}

// TestColumnarAccountsBatches checks the engine metrics seam: the columnar
// path reports batch windows, the row-only path reports none.
func TestColumnarAccountsBatches(t *testing.T) {
	plan := Where(wideScan(), Gt(Col("f"), Lit(Float(-100))))

	e := eng()
	if _, _, err := Execute(e, plan); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.BatchesProcessed == 0 || m.RecordsBatched == 0 {
		t.Fatalf("columnar execution reported %d batches over %d records", m.BatchesProcessed, m.RecordsBatched)
	}

	e = eng()
	if _, _, err := ExecuteRowOnly(e, plan); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.BatchesProcessed != 0 || m.RecordsBatched != 0 {
		t.Fatalf("row-only execution reported %d batches over %d records", m.BatchesProcessed, m.RecordsBatched)
	}
}

// TestExplainIdempotent pins that Explain is a pure function of the plan:
// rendering twice (including the physical section) yields identical bytes.
func TestExplainIdempotent(t *testing.T) {
	plans := []Plan{filterOverJoinPlan(), projectionHeavyPlan(), limitPlanUnderTest()}
	for i, plan := range plans {
		if a, b := Explain(plan), Explain(plan); a != b {
			t.Fatalf("plan %d: Explain not idempotent:\n%s\n---\n%s", i, a, b)
		}
	}
}

// TestRowsToBatchRejectsMismatch pins the strict seam: a cell that
// contradicts the declared schema aborts instead of silently diverging.
func TestRowsToBatchRejectsMismatch(t *testing.T) {
	schema := Schema{{Name: "x", Kind: KindInt}}
	if _, err := rowsToBatch(schema, []Row{{Float(1)}}); err == nil {
		t.Fatal("kind mismatch not rejected")
	}
	if _, err := rowsToBatch(schema, []Row{{Int(1), Int(2)}}); err == nil {
		t.Fatal("width mismatch not rejected")
	}
	b, err := rowsToBatch(schema, []Row{{Int(7)}})
	if err != nil {
		t.Fatal(err)
	}
	rows := appendBatchRows(nil, b)
	if len(rows) != 1 || rowKey(rows[0]) != rowKey(Row{Int(7)}) {
		t.Fatalf("round trip produced %v", rows)
	}
}
