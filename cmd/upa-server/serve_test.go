package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"upa/internal/serve"
)

// adHocCountJSON is a wire-format DP count over the orders relation:
// SELECT count(*) FROM orders WHERE o_orderkey > 0.
const adHocCountJSON = `{
  "op": "aggregate",
  "aggs": [{"name": "n", "func": "count"}],
  "input": {
    "op": "filter",
    "pred": {"op": "gt", "left": {"col": "o_orderkey"}, "right": {"int": 0}},
    "input": {"op": "scan", "table": "orders"}
  }
}`

// testServeServer builds a server whose serving layer has one tenant with a
// finite ε budget, so budget exhaustion is reachable in a handful of requests.
func testServeServer(t *testing.T, budget float64) *server {
	t.Helper()
	return testServeServerSpill(t, budget, -1)
}

// testServeServerSpill is testServeServer with an explicit engine memory
// budget (negative: in-memory, zero: spill every materialization).
func testServeServerSpill(t *testing.T, budget float64, spillBudget int64) *server {
	t.Helper()
	srv, err := newServer(serverConfig{
		Lineitems:   2000,
		LSRecords:   1500,
		Skew:        0.2,
		Seed:        5,
		SampleSize:  150,
		Epsilon:     0.1,
		SpillBudget: spillBudget,
		Tenants:     []serve.TenantSpec{{Name: "acme", Budget: budget}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func queryBody(epsilon float64, seed uint64) string {
	req := map[string]any{
		"tenant":   "acme",
		"user":     "alice",
		"planJSON": json.RawMessage(adHocCountJSON),
		"epsilon":  epsilon,
		"seed":     seed,
	}
	b, _ := json.Marshal(req)
	return string(b)
}

// TestQueryShapeGolden pins the POST /query response schema for both the
// freshly computed and the cache-hit form.
func TestQueryShapeGolden(t *testing.T) {
	h := testServeServer(t, 1).routes()

	rec, body := doJSON(t, h, http.MethodPost, "/query", queryBody(0.25, 7))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %v", rec.Code, body)
	}
	if body["cached"] != false || body["charged"].(float64) != 0.25 {
		t.Fatalf("fresh release = %v", body)
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query_shape", shapeOf(v))

	// Same (plan, ε, seed): a cache hit, charged zero, same schema.
	rec, body = doJSON(t, h, http.MethodPost, "/query", queryBody(0.25, 7))
	if rec.Code != http.StatusOK {
		t.Fatalf("cached status = %d: %v", rec.Code, body)
	}
	if body["cached"] != true || body["charged"].(float64) != 0 {
		t.Fatalf("cache hit = %v", body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query_cached_shape", shapeOf(v))
}

// TestQueryBudgetExhaustedShapeGolden pins the 429 schema and the
// Retry-After contract when a tenant's ε budget is spent.
func TestQueryBudgetExhaustedShapeGolden(t *testing.T) {
	h := testServeServer(t, 0.25).routes()

	if rec, body := doJSON(t, h, http.MethodPost, "/query", queryBody(0.25, 1)); rec.Code != http.StatusOK {
		t.Fatalf("first query status = %d: %v", rec.Code, body)
	}
	rec, body := doJSON(t, h, http.MethodPost, "/query", queryBody(0.25, 2))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("exhausted status = %d: %v", rec.Code, body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query_budget429_shape", shapeOf(v))
}

// TestQueryBadPlanShapeGolden pins the 400 schema for malformed plans.
func TestQueryBadPlanShapeGolden(t *testing.T) {
	h := testServeServer(t, 1).routes()

	rec, _ := doJSON(t, h, http.MethodPost, "/query",
		`{"tenant":"acme","user":"alice","planJSON":{"op":"pivot"}}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad plan status = %d", rec.Code)
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "query_badplan_shape", shapeOf(v))

	// A syntactically broken body takes the same error schema.
	if rec, _ := doJSON(t, h, http.MethodPost, "/query", `{notjson`); rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", rec.Code)
	}
}

// TestBudgetShapeGolden pins the GET /budget schema after a charge has
// landed, and checks the numbers it reports against the query's charge.
func TestBudgetShapeGolden(t *testing.T) {
	h := testServeServer(t, 1).routes()
	if rec, body := doJSON(t, h, http.MethodPost, "/query", queryBody(0.25, 3)); rec.Code != http.StatusOK {
		t.Fatalf("query status = %d: %v", rec.Code, body)
	}
	rec, body := doJSON(t, h, http.MethodGet, "/budget", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var v any
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "budget_shape", shapeOf(v))

	tenants := body["tenants"].([]any)
	if len(tenants) != 1 {
		t.Fatalf("tenants = %v", body["tenants"])
	}
	acme := tenants[0].(map[string]any)
	if acme["tenant"] != "acme" || acme["spent"].(float64) != 0.25 {
		t.Errorf("budget report = %v", acme)
	}
}

// TestQuerySpillBudget runs the multi-tenant SQL path with every engine
// materialization forced to disk: relational rows (sql.Value cells) must
// survive the spill codec round-trip, and the noisy release must be
// byte-identical to the in-memory server under the same seed — the serving
// regression for the out-of-core path.
func TestQuerySpillBudget(t *testing.T) {
	spilled := testServeServerSpill(t, 1, 0)
	defer spilled.close()
	inMem := testServeServer(t, 1)

	recS, bodyS := doJSON(t, spilled.routes(), http.MethodPost, "/query", queryBody(0.25, 11))
	recM, bodyM := doJSON(t, inMem.routes(), http.MethodPost, "/query", queryBody(0.25, 11))
	if recS.Code != http.StatusOK || recM.Code != http.StatusOK {
		t.Fatalf("query status spilled=%d inmem=%d (%v / %v)", recS.Code, recM.Code, bodyS, bodyM)
	}
	sOut, _ := json.Marshal(bodyS["output"])
	mOut, _ := json.Marshal(bodyM["output"])
	if string(sOut) != string(mOut) {
		t.Errorf("spilled SQL release %s differs from in-memory %s", sOut, mOut)
	}
	if m := spilled.eng.Metrics(); m.SpilledBytes == 0 {
		t.Error("budget 0 serve engine did not spill")
	}
}

// TestUnknownTenantRejected covers the 404 path through the HTTP layer.
func TestUnknownTenantRejected(t *testing.T) {
	h := testServeServer(t, 1).routes()
	rec, _ := doJSON(t, h, http.MethodPost, "/query",
		`{"tenant":"ghost","user":"alice","plan":"tpch6"}`)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown tenant status = %d", rec.Code)
	}
}
