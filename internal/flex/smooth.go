package flex

import (
	"fmt"
	"math"
)

// SmoothSensitivity computes FLEX's smooth upper bound on local sensitivity
// (Nissim et al.'s smooth sensitivity instantiated with FLEX's elastic
// analysis, as §II-B of the UPA paper describes): the maximum over distance
// t of e^(-beta*t) times the worst-case local sensitivity of any dataset at
// distance t from the input.
//
// Under FLEX's static model, moving t records can raise each join column's
// maximum key frequency by at most t, so the elastic sensitivity at
// distance t multiplies (maxFreq + t) pairs per join; for a join-free count
// it stays 1. The exponential decay dominates that polynomial growth, so
// the maximization is evaluated until the decayed bound has provably
// peaked.
//
//upa:dpsource
func (p Plan) SmoothSensitivity(beta float64) (float64, error) {
	if !p.CountQuery {
		return 0, fmt.Errorf("%w: %s", ErrUnsupported, p.Name)
	}
	if beta <= 0 {
		return 0, fmt.Errorf("flex: beta must be positive, got %v", beta)
	}
	for i, j := range p.Joins {
		if err := j.Left.Validate(); err != nil {
			return 0, fmt.Errorf("flex: %s join %d: %w", p.Name, i, err)
		}
		if err := j.Right.Validate(); err != nil {
			return 0, fmt.Errorf("flex: %s join %d: %w", p.Name, i, err)
		}
	}
	best := 0.0
	// e^(-beta*t) * prod(maxFreq+t)^2 is unimodal in t once t exceeds every
	// maxFreq; stop when the bound has decayed below the running best for a
	// full join-count's worth of steps.
	stale := 0
	for t := 0; ; t++ {
		s := p.elasticAt(t) * math.Exp(-beta*float64(t))
		if s > best {
			best = s
			stale = 0
		} else {
			stale++
			// The discrete derivative of log s is
			// sum_j (1/(f+t) terms) - beta; once negative it stays
			// negative, so a handful of non-improving steps proves the
			// peak has passed.
			if stale > 2*len(p.Joins)+2 {
				return best, nil
			}
		}
		if t > 1<<30 {
			return 0, fmt.Errorf("flex: smooth sensitivity of %s did not converge", p.Name)
		}
	}
}

// elasticAt returns FLEX's worst-case local sensitivity for datasets at
// distance t from the input: each join column's max frequency can have
// grown by t.
func (p Plan) elasticAt(t int) float64 {
	sens := 1.0
	for _, j := range p.Joins {
		sens *= (float64(j.Left.MaxFreq) + float64(t)) * (float64(j.Right.MaxFreq) + float64(t))
	}
	return sens
}
