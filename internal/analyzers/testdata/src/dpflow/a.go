// Package dpflow is golden testdata: taint flows from protected sources
// into user-visible sinks, including the two-hop interprocedural case the
// analyzer exists for.
package dpflow

import (
	"fmt"
	"log/slog"
)

type row struct {
	key string
	val float64
}

// scanProtected reads rows from the protected table.
//
//upa:dpsource
func scanProtected() []row { return nil }

// release adds calibrated noise; its output is publishable.
//
//upa:dpsanitize
func release(v float64) float64 { return v }

type result struct {
	Output float64
	// Sensitivity is a pre-noise, data-dependent value.
	Sensitivity float64 //upa:dpsource data-dependent local sensitivity
}

// describe formats its argument into an error — the second hop.
func describe(rows []row) error {
	return fmt.Errorf("bad rows: %v", rows)
}

// helper just forwards — the first hop. Its summary must say param 0
// reaches a sink.
func helper(rows []row) error {
	return describe(rows)
}

func leakTwoHop() error {
	rows := scanProtected()
	return helper(rows) // want `user-visible sink`
}

func leakDirect() {
	rows := scanProtected()
	slog.Info("scan done", "rows", rows) // want `only noised releases`
}

func leakField(res *result) error {
	return fmt.Errorf("sensitivity %f over budget", res.Sensitivity) // want `only noised releases`
}

func okOutput(res *result) {
	fmt.Println(res.Output) // Output is not a tainted field name
}

func okCount() error {
	rows := scanProtected()
	return fmt.Errorf("failed after %d rows", len(rows)) // len declassifies
}

func okNoised() {
	rows := scanProtected()
	sum := 0.0
	for _, r := range rows {
		sum += r.val
	}
	fmt.Println(release(sum)) // sanitized before the sink
}

func suppressedLeak() error {
	rows := scanProtected()
	//upa:allow(dpflow) reviewed: fixture-only trace emitted behind a debug build tag
	return fmt.Errorf("rows: %v", rows)
}

// suppressedAcrossBlank pins the suppression-scope fix: the annotation
// must attach to the next non-trivial line even across a blank one.
func suppressedAcrossBlank() error {
	rows := scanProtected()
	//upa:allow(dpflow) reviewed: fixture-only trace, blank line between annotation and code

	return fmt.Errorf("rows again: %v", rows)
}

// danglingAllow pins the other half of the fix: an annotation whose next
// substantive line is a closing brace covers nothing — it must not widen
// into the next declaration, and it is reported as stale.
func danglingAllow() error {
	rows := scanProtected()
	err := fmt.Errorf("rows: %v", rows) // want `only noised releases`
	return err
	//upa:allow(dpflow) dangling on purpose: must not widen past the brace // want `stale`
}
