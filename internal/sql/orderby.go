package sql

import (
	"fmt"

	"upa/internal/mapreduce"
)

// SortKey is one ORDER BY term.
type SortKey struct {
	Column string
	Desc   bool
}

// OrderByPlan globally sorts its input (a wide transformation, one shuffle
// round, like Spark's sortBy).
type OrderByPlan struct {
	Input Plan
	Keys  []SortKey
}

// OrderBy builds a sort over input.
func OrderBy(input Plan, keys ...SortKey) *OrderByPlan {
	return &OrderByPlan{Input: input, Keys: keys}
}

// Schema implements Plan.
func (p *OrderByPlan) Schema() (Schema, error) {
	in, err := p.Input.Schema()
	if err != nil {
		return nil, err
	}
	if len(p.Keys) == 0 {
		return nil, fmt.Errorf("sql: ORDER BY with no keys")
	}
	for _, k := range p.Keys {
		if _, err := in.IndexOf(k.Column); err != nil {
			return nil, err
		}
	}
	return in, nil
}

func (p *OrderByPlan) describe() string { return "orderBy(" + p.Input.describe() + ")" }

// DistinctPlan removes duplicate rows, keeping first-seen order (one
// shuffle round).
type DistinctPlan struct {
	Input Plan
}

// Distinct builds a duplicate-elimination over input.
func Distinct(input Plan) *DistinctPlan { return &DistinctPlan{Input: input} }

// Schema implements Plan.
func (p *DistinctPlan) Schema() (Schema, error) { return p.Input.Schema() }

func (p *DistinctPlan) describe() string { return "distinct(" + p.Input.describe() + ")" }

// compileOrderBy lowers an OrderByPlan.
func (c *compiler) compileOrderBy(p *OrderByPlan) (*mapreduce.Dataset[Row], error) {
	schema, err := p.Schema() // validates keys
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(p.Keys))
	for i, k := range p.Keys {
		j, err := schema.IndexOf(k.Column)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	keys := p.Keys
	ds, err := c.compile(p.Input)
	if err != nil {
		return nil, err
	}
	less := func(a, b Row) bool {
		for i, j := range idx {
			c, err := Compare(a[j], b[j])
			if err != nil {
				// Mixed-kind columns cannot reach here: the schema fixes
				// each column's kind. Treat defensively as equal.
				continue
			}
			if c == 0 {
				continue
			}
			if keys[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	}
	return mapreduce.SortBy(ds, ds.NumPartitions(), less)
}

// compileDistinct lowers a DistinctPlan via a keyed first-wins reduction on
// the rows' rendered form (rows are slices and not directly comparable).
func (c *compiler) compileDistinct(p *DistinctPlan) (*mapreduce.Dataset[Row], error) {
	ds, err := c.compile(p.Input)
	if err != nil {
		return nil, err
	}
	keyed := mapreduce.KeyBy(ds, rowKey)
	first := mapreduce.ReduceByKey(keyed, func(a, _ Row) Row { return a })
	return mapreduce.Values(first), nil
}

// rowKey renders a row into a collision-safe string key.
func rowKey(r Row) string {
	key := ""
	for _, v := range r {
		key += v.String() + "\x1f"
	}
	return key
}
