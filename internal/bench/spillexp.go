package bench

import (
	"fmt"
	"strings"
	"time"

	"upa/internal/chaos"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// SpillRow is one memory-budget level of the out-of-core experiment: the
// same shuffle-heavy pipeline (keyed sum, join, global sort) run under a
// given engine budget, with the spill traffic the budget forced and the
// wall-clock cost relative to the fully in-memory run.
type SpillRow struct {
	// Budget is the engine memory budget in bytes (negative: unlimited,
	// zero: every materialization spills); Records, Partitions and
	// DistinctKeys size the keyed dataset.
	Budget       int64
	Records      int
	Partitions   int
	DistinctKeys int
	// SpilledBytes / SpillFiles / SpillReads are the engine's spill deltas
	// for the run: how much partition state crossed to disk, in how many
	// files, and how many times a spilled partition was read back.
	SpilledBytes int64
	SpillFiles   int64
	SpillReads   int64
	// WallTime is the min-of-reps elapsed time — indicative, not a
	// statistical claim (the spill counters are the load-bearing result).
	// Slowdown is WallTime over the unlimited-budget row's WallTime.
	WallTime time.Duration
	Slowdown float64
	// Fault* columns come from a second, chaos-armed run of the same budget
	// level under seeded disk faults (read/write errors, ENOSPC, torn
	// writes, in-flight corruption, rename failures): what the storage-fault
	// recovery machinery did while still producing — checked before the row
	// is accepted — the identical output.
	FaultCorruptions  int64
	FaultRecomputes   int64
	FaultWriteRetries int64
	FaultFallbacks    int64
	FaultWallTime     time.Duration
}

// SpillBench measures what out-of-core execution costs as the memory budget
// shrinks. Each budget level runs the identical pipeline — per-key sum,
// self-join on key, then a global SortBy — on a fresh engine, and the
// outputs are checked byte-for-byte against the unlimited-budget run before
// the row is accepted: spilling must never change a result, only where the
// intermediate partitions live. budgets nil defaults to
// {-1 (in-memory), 256 KiB, 16 KiB, 0 (spill everything)}.
func SpillBench(cfg Config, budgets []int64, reps int) ([]SpillRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(budgets) == 0 {
		budgets = []int64{-1, 256 << 10, 16 << 10, 0}
	}
	reps = max(reps, 1)
	const (
		numParts = 8
		keySpace = 2048
	)
	rng := stats.NewRNG(cfg.Seed)
	pairs := make([]mapreduce.Pair[int, int], cfg.Lineitems)
	distinct := make(map[int]bool)
	for i := range pairs {
		key := rng.Intn(keySpace)
		pairs[i] = mapreduce.Pair[int, int]{Key: key, Value: i}
		distinct[key] = true
	}

	var (
		rows    = make([]SpillRow, 0, len(budgets))
		refOut  string
		refTime time.Duration
	)
	for i, budget := range budgets {
		delta, out, elapsed, err := runSpillPipeline(pairs, numParts, budget, reps, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: spill budget %d: %w", budget, err)
		}
		if i == 0 {
			refOut, refTime = out, elapsed
		} else if out != refOut {
			return nil, fmt.Errorf("bench: spill budget %d changed the pipeline output", budget)
		}
		row := SpillRow{
			Budget:       budget,
			Records:      cfg.Lineitems,
			Partitions:   numParts,
			DistinctKeys: len(distinct),
			SpilledBytes: delta.SpilledBytes,
			SpillFiles:   delta.SpillFiles,
			SpillReads:   delta.SpillReads,
			WallTime:     elapsed,
		}
		if refTime > 0 {
			row.Slowdown = float64(elapsed) / float64(refTime)
		}
		// Chaos-armed rerun: the same pipeline under seeded disk faults. The
		// output must survive the recovery machinery unchanged; the counters
		// record what that recovery cost.
		inj := chaos.New(chaos.Policy{
			Seed:                cfg.Seed,
			DiskReadErrorRate:   0.05,
			DiskWriteErrorRate:  0.05,
			DiskENOSPCRate:      0.03,
			DiskTornWriteRate:   0.05,
			DiskCorruptionRate:  0.05,
			DiskRenameErrorRate: 0.05,
		})
		fdelta, fout, felapsed, err := runSpillPipeline(pairs, numParts, budget, 1, inj)
		if err != nil {
			return nil, fmt.Errorf("bench: spill budget %d under disk faults: %w", budget, err)
		}
		if fout != refOut {
			return nil, fmt.Errorf("bench: spill budget %d changed the pipeline output under disk faults", budget)
		}
		row.FaultCorruptions = fdelta.SpillCorruptionsDetected
		row.FaultRecomputes = fdelta.SpillRecomputes
		row.FaultWriteRetries = fdelta.SpillWriteRetries
		row.FaultFallbacks = fdelta.SpillFallbacksInMemory
		row.FaultWallTime = felapsed
		rows = append(rows, row)
	}
	return rows, nil
}

// runSpillPipeline runs the shuffle-heavy pipeline reps times, each on a
// fresh engine under the given budget (and, when inj is non-nil, under its
// seeded disk faults with enough retry attempts to ride them out), and
// returns the first run's spill delta and rendered output with the fastest
// wall time observed.
func runSpillPipeline(pairs []mapreduce.Pair[int, int], numParts int, budget int64, reps int, inj *chaos.Injector) (mapreduce.MetricsSnapshot, string, time.Duration, error) {
	var (
		delta mapreduce.MetricsSnapshot
		out   string
		best  time.Duration
	)
	for i := 0; i < reps; i++ {
		opts := []mapreduce.Option{mapreduce.WithMemoryBudget(budget)}
		if inj != nil {
			opts = append(opts,
				mapreduce.WithChaos(inj),
				// Zero backoff keeps the fault run's wall time a measure of
				// recovery work, not of sleeping.
				mapreduce.WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 8}))
		}
		eng := mapreduce.NewEngine(opts...)
		before := eng.Metrics()
		start := time.Now() //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
		rendered, err := spillPipelineOnce(eng, pairs, numParts)
		elapsed := time.Since(start) //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
		closeErr := eng.Close()
		if err != nil {
			return mapreduce.MetricsSnapshot{}, "", 0, err
		}
		if closeErr != nil {
			return mapreduce.MetricsSnapshot{}, "", 0, fmt.Errorf("engine close: %w", closeErr)
		}
		if i == 0 {
			delta, out, best = eng.Metrics().Sub(before), rendered, elapsed
			continue
		}
		best = min(best, elapsed)
	}
	return delta, out, best, nil
}

// spillPipelineOnce exercises every spill site once: the keyed sum and the
// join shuffle, the SortBy external sort, and a persisted source store.
func spillPipelineOnce(eng *mapreduce.Engine, pairs []mapreduce.Pair[int, int], numParts int) (string, error) {
	d, err := mapreduce.FromSlice(eng, pairs, numParts)
	if err != nil {
		return "", err
	}
	sums := mapreduce.ReduceByKey(d, func(a, b int) int { return a + b })
	counts := mapreduce.ReduceByKey(
		mapreduce.Map(d, func(p mapreduce.Pair[int, int]) mapreduce.Pair[int, int] {
			return mapreduce.Pair[int, int]{Key: p.Key, Value: 1}
		}),
		func(a, b int) int { return a + b })
	joined, err := mapreduce.Join(sums, counts)
	if err != nil {
		return "", err
	}
	means := mapreduce.Map(joined, func(p mapreduce.Pair[int, mapreduce.Joined[int, int]]) mapreduce.Pair[int, int] {
		return mapreduce.Pair[int, int]{Key: p.Key, Value: p.Value.Left / max(p.Value.Right, 1)}
	})
	sorted, err := mapreduce.SortBy(means, numParts,
		func(a, b mapreduce.Pair[int, int]) bool { return a.Key < b.Key })
	if err != nil {
		return "", err
	}
	out, err := sorted.Collect()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, p := range out {
		fmt.Fprintf(&b, "%d=%d;", p.Key, p.Value)
	}
	return b.String(), nil
}

// RenderSpill renders the out-of-core budget sweep.
func RenderSpill(rows []SpillRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Out-of-core execution: spill traffic and wall time vs memory budget\n")
	fmt.Fprintf(&b, "(fault_* columns: the same budget rerun under seeded disk faults, output verified identical)\n")
	fmt.Fprintf(&b, "%-12s %9s %6s %6s %13s %8s %8s %10s %9s %8s %8s %8s %8s %12s\n",
		"budget", "records", "parts", "keys", "spilled_bytes", "files", "reads", "wall", "slowdown",
		"f_corr", "f_recomp", "f_retry", "f_fallbk", "fault_wall")
	for _, r := range rows {
		budget := "unlimited"
		if r.Budget >= 0 {
			budget = fmt.Sprintf("%d", r.Budget)
		}
		fmt.Fprintf(&b, "%-12s %9d %6d %6d %13d %8d %8d %10v %8.2fx %8d %8d %8d %8d %12v\n",
			budget, r.Records, r.Partitions, r.DistinctKeys,
			r.SpilledBytes, r.SpillFiles, r.SpillReads,
			r.WallTime.Round(time.Microsecond), r.Slowdown,
			r.FaultCorruptions, r.FaultRecomputes, r.FaultWriteRetries, r.FaultFallbacks,
			r.FaultWallTime.Round(time.Microsecond))
	}
	return b.String()
}
