package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitNormalMLEExact(t *testing.T) {
	tests := []struct {
		name      string
		samples   []float64
		wantMu    float64
		wantSigma float64
	}{
		{"symmetric pair", []float64{-1, 1}, 0, 1},
		{"constant", []float64{5, 5, 5, 5}, 5, 0},
		{"simple", []float64{1, 2, 3, 4}, 2.5, math.Sqrt(1.25)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n, err := FitNormalMLE(tt.samples)
			if err != nil {
				t.Fatalf("FitNormalMLE: %v", err)
			}
			if math.Abs(n.Mu-tt.wantMu) > 1e-12 {
				t.Errorf("Mu = %v, want %v", n.Mu, tt.wantMu)
			}
			if math.Abs(n.Sigma-tt.wantSigma) > 1e-12 {
				t.Errorf("Sigma = %v, want %v", n.Sigma, tt.wantSigma)
			}
		})
	}
}

func TestFitNormalMLETooFew(t *testing.T) {
	for _, samples := range [][]float64{nil, {}, {1}} {
		if _, err := FitNormalMLE(samples); err == nil {
			t.Fatalf("FitNormalMLE(%v) succeeded, want error", samples)
		}
	}
}

func TestFitNormalMLERecovers(t *testing.T) {
	rng := NewRNG(101)
	truth := Normal{Mu: 3.7, Sigma: 2.1}
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	fit, err := FitNormalMLE(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-truth.Mu) > 0.05 {
		t.Errorf("recovered Mu = %v, want about %v", fit.Mu, truth.Mu)
	}
	if math.Abs(fit.Sigma-truth.Sigma) > 0.05 {
		t.Errorf("recovered Sigma = %v, want about %v", fit.Sigma, truth.Sigma)
	}
}

func TestQuantileKnownValues(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.99, 2.3263478740408408},
		{0.01, -2.3263478740408408},
		{0.841344746068543, 1}, // Phi(1)
	}
	for _, tt := range tests {
		got, err := n.Quantile(tt.p)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-8 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestQuantileRejectsBadP(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	for _, p := range []float64{-0.1, 0, 1, 1.5} {
		if _, err := n.Quantile(p); err == nil {
			t.Errorf("Quantile(%v) succeeded, want error", p)
		}
	}
}

func TestQuantileCDFInverse(t *testing.T) {
	f := func(muRaw, sigmaRaw, pRaw uint16) bool {
		mu := float64(muRaw)/100 - 300
		sigma := float64(sigmaRaw)/1000 + 0.01
		p := (float64(pRaw) + 1) / 65537 // in (0,1)
		n := Normal{Mu: mu, Sigma: sigma}
		x, err := n.Quantile(p)
		if err != nil {
			return false
		}
		return math.Abs(n.CDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotone(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 2}
	prev := -1.0
	for x := -10.0; x <= 12; x += 0.25 {
		c := n.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %v: %v < %v", x, c, prev)
		}
		prev = c
	}
}

func TestDegenerateNormal(t *testing.T) {
	n := Normal{Mu: 4, Sigma: 0}
	if got := n.CDF(3.999); got != 0 {
		t.Errorf("CDF below point mass = %v, want 0", got)
	}
	if got := n.CDF(4); got != 1 {
		t.Errorf("CDF at point mass = %v, want 1", got)
	}
	q, err := n.Quantile(0.42)
	if err != nil || q != 4 {
		t.Errorf("Quantile of point mass = %v, %v; want 4, nil", q, err)
	}
}

func TestPercentileRange(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 3}
	lo, hi, err := n.PercentileRange(0.01, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= hi {
		t.Fatalf("percentile range inverted: [%v, %v]", lo, hi)
	}
	wantHalfWidth := 3 * 2.3263478740408408
	if math.Abs((hi-lo)/2-wantHalfWidth) > 1e-6 {
		t.Errorf("range half-width = %v, want %v", (hi-lo)/2, wantHalfWidth)
	}
	if _, _, err := n.PercentileRange(0.9, 0.1); err == nil {
		t.Error("inverted percentile range accepted")
	}
}
