package sql

import (
	"fmt"
	"strings"
)

// Explain runs the optimizer on a plan and renders the raw tree, the
// optimized tree, and the applied rewrites — the review surface for what
// Optimize did to a query. The output is deterministic for a given plan,
// so tests can pin it as a golden.
func Explain(plan Plan) string {
	optimized, rewrites := Optimize(plan)
	var b strings.Builder
	b.WriteString("raw plan:\n")
	renderPlan(&b, plan, 1)
	b.WriteString("optimized plan:\n")
	renderPlan(&b, optimized, 1)
	b.WriteString("rewrites:\n")
	if len(rewrites) == 0 {
		b.WriteString("  (none)\n")
		return b.String()
	}
	for i, rw := range rewrites {
		fmt.Fprintf(&b, "  %d. %s: %s\n", i+1, rw.Rule, rw.Detail)
	}
	return b.String()
}

// renderPlan writes one node per line, children indented below parents.
func renderPlan(b *strings.Builder, p Plan, depth int) {
	indent := strings.Repeat("  ", depth)
	switch n := p.(type) {
	case *ScanPlan:
		names := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			names[i] = c.Name
		}
		fmt.Fprintf(b, "%sscan %s [%s] (%d rows)\n", indent, n.Name, strings.Join(names, ", "), len(n.Rows))
	case *FilterPlan:
		fmt.Fprintf(b, "%sfilter %s\n", indent, n.Pred.describe())
		renderPlan(b, n.Input, depth+1)
	case *ProjectPlan:
		parts := make([]string, len(n.Exprs))
		for i, ne := range n.Exprs {
			if c, ok := ne.Expr.(colExpr); ok && c.name == ne.Name {
				parts[i] = ne.Name
			} else {
				parts[i] = ne.Name + "=" + ne.Expr.describe()
			}
		}
		fmt.Fprintf(b, "%sproject [%s]\n", indent, strings.Join(parts, ", "))
		renderPlan(b, n.Input, depth+1)
	case *JoinPlan:
		fmt.Fprintf(b, "%sjoin %s=%s (right side is the hash build side)\n", indent, n.LeftKey, n.RightKey)
		renderPlan(b, n.Left, depth+1)
		renderPlan(b, n.Right, depth+1)
	case *AggregatePlan:
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			arg := ""
			if a.Arg != nil {
				arg = a.Arg.describe()
			}
			aggs[i] = fmt.Sprintf("%s=%s(%s)", a.Name, a.Func, arg)
		}
		fmt.Fprintf(b, "%saggregate group=[%s] aggs=[%s]\n", indent,
			strings.Join(n.GroupBy, ", "), strings.Join(aggs, ", "))
		renderPlan(b, n.Input, depth+1)
	case *OrderByPlan:
		keys := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = k.Column
			if k.Desc {
				keys[i] += " desc"
			}
		}
		fmt.Fprintf(b, "%sorder by [%s]\n", indent, strings.Join(keys, ", "))
		renderPlan(b, n.Input, depth+1)
	case *DistinctPlan:
		fmt.Fprintf(b, "%sdistinct\n", indent)
		renderPlan(b, n.Input, depth+1)
	case *LimitPlan:
		fmt.Fprintf(b, "%slimit %d\n", indent, n.N)
		renderPlan(b, n.Input, depth+1)
	default:
		fmt.Fprintf(b, "%s%s\n", indent, p.describe())
	}
}
