package jobgraph

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// StageContext collects a running stage's span counters. Its methods are
// safe for concurrent use by the partitions of a partitioned stage.
type StageContext struct {
	records            atomic.Int64
	shuffledRecords    atomic.Int64
	shuffleBytes       atomic.Int64
	reduceOps          atomic.Int64
	cacheHits          atomic.Int64
	recordsPreCombine  atomic.Int64
	recordsPostCombine atomic.Int64
}

// AddRecords reports n input records processed by the stage.
func (sc *StageContext) AddRecords(n int64) { sc.records.Add(n) }

// AddShuffle reports a data exchange of records rows totalling bytes.
func (sc *StageContext) AddShuffle(records, bytes int64) {
	sc.shuffledRecords.Add(records)
	sc.shuffleBytes.Add(bytes)
}

// AddReduceOps reports n reduce operations performed by the stage.
func (sc *StageContext) AddReduceOps(n int64) { sc.reduceOps.Add(n) }

// AddCacheHits reports n reduction-cache hits taken by the stage.
func (sc *StageContext) AddCacheHits(n int64) { sc.cacheHits.Add(n) }

// AddCombine reports one map-side combine pass: pre records entered the
// combiners and post combined records went on to the shuffle. The eliminated
// difference lands in the span's RecordsCombined.
func (sc *StageContext) AddCombine(pre, post int64) {
	sc.recordsPreCombine.Add(pre)
	sc.recordsPostCombine.Add(post)
}

// snapshot copies the counters into span. Losing speculative attempts may
// keep counting after the snapshot; their updates are discarded along with
// their results.
func (sc *StageContext) snapshot(span *Span) {
	span.Records = sc.records.Load()
	span.ShuffledRecords = sc.shuffledRecords.Load()
	span.ShuffleBytes = sc.shuffleBytes.Load()
	span.ReduceOps = sc.reduceOps.Load()
	span.CacheHits = sc.cacheHits.Load()
	span.RecordsPreCombine = sc.recordsPreCombine.Load()
	span.RecordsPostCombine = sc.recordsPostCombine.Load()
	span.RecordsCombined = span.RecordsPreCombine - span.RecordsPostCombine
}

// Run validates the graph and executes it: every stage starts as soon as all
// its dependencies have completed, so independent stages overlap on the
// shared slot pool. The first stage error (or a context cancellation) stops
// the scheduler from starting further stages, waits for in-flight stages to
// drain, and is returned. Spans are returned in declaration order even on
// failure; stages that never started have zero times.
func (g *Graph) Run(ctx context.Context) ([]Span, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(g.stages)
	spans := make([]Span, n)
	indegree := make([]int, n)
	dependents := make([][]int, n)
	for i, s := range g.stages {
		spans[i].Stage = s.name
		spans[i].Deps = append([]string{}, s.deps...)
		indegree[i] = len(s.deps)
		for _, d := range s.deps {
			j := g.index[d]
			dependents[j] = append(dependents[j], i)
		}
	}

	slots := make(chan struct{}, g.slots)
	type completion struct {
		stage int
		err   error
	}
	done := make(chan completion)

	var firstErr error
	running := 0
	start := func(i int) {
		running++
		go func() {
			spans[i].Start = time.Now()
			err := g.runStage(runCtx, i, &spans[i], slots)
			spans[i].End = time.Now()
			if err != nil {
				spans[i].Err = err.Error()
			}
			done <- completion{stage: i, err: err}
		}()
	}

	for i, deg := range indegree {
		if deg == 0 {
			start(i)
		}
	}
	for running > 0 {
		c := <-done
		running--
		if c.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobgraph: %s: stage %q: %w", g.name, g.stages[c.stage].name, c.err)
				cancel() // abort in-flight stages; no new ones start below
			}
			continue
		}
		if firstErr != nil {
			continue
		}
		for _, dep := range dependents[c.stage] {
			indegree[dep]--
			if indegree[dep] == 0 {
				start(dep)
			}
		}
	}
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = fmt.Errorf("jobgraph: %s: %w", g.name, err)
		}
	}
	return spans, firstErr
}

// runStage executes one stage, occupying a slot per task.
func (g *Graph) runStage(ctx context.Context, i int, span *Span, slots chan struct{}) error {
	s := g.stages[i]
	sc := &StageContext{}
	// Check cancellation before acquiring a slot: with both a free slot and
	// a cancelled context the select below would pick at random.
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.parts == 0 {
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		defer func() { <-slots }()
		err := s.fn(ctx, sc)
		sc.snapshot(span)
		span.Attempts = 1
		return err
	}
	return g.runPartitioned(ctx, s, span, sc, slots)
}

// runPartitioned schedules the stage's partitions on the slot pool. With
// speculation enabled, partitions still running specAfter after the stage
// started get one duplicate attempt; the first attempt to finish a partition
// claims it and applies its commit, and the loser's result is discarded.
// Losing attempts may briefly outlive the stage — they observe the cancelled
// stage context, exit, and their sends land in the buffered results channel.
func (g *Graph) runPartitioned(ctx context.Context, s *stage, span *Span, sc *StageContext, slots chan struct{}) error {
	stageCtx, cancel := context.WithCancel(ctx)
	defer cancel() // unblocks stragglers once the stage has completed

	type outcome struct {
		part int
		err  error
		won  bool
	}
	// Buffered for the maximum possible attempts (primary + one speculative
	// per partition) so late finishers never block on send.
	results := make(chan outcome, 2*s.parts)
	claimed := make([]atomic.Bool, s.parts)
	spawned := make([]atomic.Bool, s.parts) // speculative attempt launched?
	var attempts, speculative atomic.Int64

	launch := func(part int) {
		go func() {
			if err := stageCtx.Err(); err != nil {
				results <- outcome{part: part, err: err}
				return
			}
			select {
			case slots <- struct{}{}:
			case <-stageCtx.Done():
				results <- outcome{part: part, err: stageCtx.Err()}
				return
			}
			defer func() { <-slots }()
			if claimed[part].Load() { // twin finished while we queued
				results <- outcome{part: part}
				return
			}
			attempts.Add(1)
			commit, err := s.partFn(stageCtx, sc, part)
			if err != nil {
				results <- outcome{part: part, err: err}
				return
			}
			if claimed[part].CompareAndSwap(false, true) {
				if commit != nil {
					commit()
				}
				results <- outcome{part: part, won: true}
				return
			}
			results <- outcome{part: part} // lost to the speculative twin
		}()
	}
	for p := 0; p < s.parts; p++ {
		launch(p)
	}

	var specC <-chan time.Time
	if g.specAfter > 0 {
		specTimer := time.NewTimer(g.specAfter)
		defer specTimer.Stop()
		specC = specTimer.C
	}

	finish := func(err error) error {
		sc.snapshot(span)
		span.Attempts = int(attempts.Load())
		span.Speculative = int(speculative.Load())
		return err
	}
	won := 0
	for won < s.parts {
		select {
		case r := <-results:
			switch {
			case r.won:
				won++
			case r.err != nil && !claimed[r.part].Load():
				// A failure of an unclaimed partition fails the stage
				// (lineage-level retry lives in the engine, not here); an
				// error from a losing speculative twin is ignored.
				return finish(fmt.Errorf("partition %d: %w", r.part, r.err))
			}
		case <-specC:
			for p := 0; p < s.parts; p++ {
				if !claimed[p].Load() && spawned[p].CompareAndSwap(false, true) {
					speculative.Add(1)
					launch(p)
				}
			}
		case <-stageCtx.Done():
			return finish(stageCtx.Err())
		}
	}
	return finish(nil)
}
