package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
)

// Spill file format: a sequence of independent length-prefixed frames, each
// holding one gob-encoded batch of records.
//
//	frame := uvarint(len(payload)) payload
//	payload := gob([]T)            // fresh encoder per frame
//
// Every frame is self-contained (its own gob type descriptors), so a reader
// can stream record-by-record holding at most one decoded batch in memory —
// which is what the external merge sort's k-way merge needs — and a partial
// trailing frame (a crashed writer) is detected as a framing error rather
// than silently decoded.
//
// The codec must be deterministic: a retried task that rewrites its spill
// file must produce the same bytes, or lineage recomputation under chaos
// would diverge. gob encodes slices, strings, numbers, and structs of those
// deterministically; the one caveat is Go maps (iteration order leaks into
// the encoding), so record types routed through the spill path must not
// contain map fields. Nothing in the engine's own record flow (Pair, State
// vectors, relation rows) does. Note also that gob cannot distinguish a nil
// slice from an empty one: both decode as nil, which is invisible to every
// value-semantics consumer but would matter to code comparing against nil.
//
// spillBatch is the records-per-frame granularity: large enough to amortize
// the per-frame gob descriptors, small enough that a streaming reader's
// resident batch stays far below any sensible memory budget.
const spillBatch = 512

// writeSpill encodes recs as length-prefixed gob frames onto w and returns
// the encoded byte count.
func writeSpill[T any](w io.Writer, recs []T) (int64, error) {
	bw := bufio.NewWriter(w)
	var payload bytes.Buffer
	var hdr [binary.MaxVarintLen64]byte
	var written int64
	for lo := 0; lo < len(recs); lo += spillBatch {
		hi := lo + spillBatch
		if hi > len(recs) {
			hi = len(recs)
		}
		payload.Reset()
		if err := gob.NewEncoder(&payload).Encode(recs[lo:hi]); err != nil {
			return written, fmt.Errorf("mapreduce: spill encode: %w", err)
		}
		n := binary.PutUvarint(hdr[:], uint64(payload.Len()))
		if _, err := bw.Write(hdr[:n]); err != nil {
			return written, err
		}
		if _, err := bw.Write(payload.Bytes()); err != nil {
			return written, err
		}
		written += int64(n + payload.Len())
	}
	return written, bw.Flush()
}

// spillReader streams records back out of a spill file, decoding one frame
// at a time.
type spillReader[T any] struct {
	br    *bufio.Reader
	batch []T
	pos   int
}

func newSpillReader[T any](r io.Reader) *spillReader[T] {
	return &spillReader[T]{br: bufio.NewReader(r)}
}

// next returns the next record, or ok=false at a clean end of stream. A
// truncated or corrupt frame is an error, never a silent short read.
func (r *spillReader[T]) next() (rec T, ok bool, err error) {
	for r.pos >= len(r.batch) {
		if err := r.readFrame(); err != nil {
			if err == io.EOF {
				var zero T
				return zero, false, nil
			}
			var zero T
			return zero, false, err
		}
	}
	rec = r.batch[r.pos]
	r.pos++
	return rec, true, nil
}

// readFrame decodes the next frame into r.batch. io.EOF means a clean end.
func (r *spillReader[T]) readFrame() error {
	size, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("mapreduce: spill frame header: %w", err)
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return fmt.Errorf("mapreduce: spill frame truncated: %w", err)
	}
	// Decode into a fresh slice every frame: gob reuses existing backing
	// arrays — including the inner slices of elements decoded earlier — so
	// recycling the batch would let frame n+1 scribble over records already
	// handed out of frame n (their struct copies share those inner arrays).
	r.batch = nil
	r.pos = 0
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r.batch); err != nil {
		return fmt.Errorf("mapreduce: spill decode: %w", err)
	}
	return nil
}

// readSpill decodes a whole spill stream into an owned slice. count sizes
// the allocation (the store records it at write time); a wrong count only
// costs a reallocation.
func readSpill[T any](r io.Reader, count int) ([]T, error) {
	out := make([]T, 0, count)
	sr := newSpillReader[T](r)
	for {
		rec, ok, err := sr.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}
