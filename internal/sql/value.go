// Package sql is the SparkSQL stand-in: typed rows and schemas, an
// expression language, logical query plans (Scan, Filter, Project, Join,
// Aggregate, Limit) and an executor that compiles plans onto the mapreduce
// engine. The paper evaluates "seven SparkSQL queries"; this package is the
// substrate that lets those queries be written as relational plans, runs
// them with engine-metered shuffles, and exposes the plan structure that
// FLEX's static analysis consumes (see FLEXPlan).
package sql

import (
	"fmt"
	"math"
	"strconv"
)

// Kind is a column/value type.
type Kind int

// Value kinds.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindString
	KindBool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Value is one cell: a tagged union over the four supported kinds.
// Comparable with ==, so Values can key engine shuffles directly.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Int builds an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float builds a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str builds a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool builds a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's kind (zero for the zero Value).
func (v Value) Kind() Kind { return v.kind }

// AsInt returns the integer payload.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the numeric payload, widening integers.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindFloat:
		return v.f, true
	case KindInt:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// AsString returns the string payload.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean payload.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<nil>"
	}
}

// GobEncode serializes the tagged union so rows survive the engine's
// spill-to-disk path (gob refuses structs with only unexported fields). The
// encoding is deterministic — kind byte, then the active payload only — so
// a retried task rewriting a spill file reproduces identical bytes.
func (v Value) GobEncode() ([]byte, error) {
	switch v.kind {
	case KindInt:
		var buf [1 + 8]byte
		buf[0] = byte(KindInt)
		putUint64(buf[1:], uint64(v.i))
		return buf[:], nil
	case KindFloat:
		var buf [1 + 8]byte
		buf[0] = byte(KindFloat)
		putUint64(buf[1:], math.Float64bits(v.f))
		return buf[:], nil
	case KindString:
		buf := make([]byte, 1+len(v.s))
		buf[0] = byte(KindString)
		copy(buf[1:], v.s)
		return buf, nil
	case KindBool:
		b := byte(0)
		if v.b {
			b = 1
		}
		return []byte{byte(KindBool), b}, nil
	default:
		return []byte{0}, nil // zero Value
	}
}

// GobDecode is the inverse of GobEncode.
func (v *Value) GobDecode(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("sql: empty Value encoding")
	}
	*v = Value{kind: Kind(data[0])}
	payload := data[1:]
	switch v.kind {
	case 0:
		v.kind = 0 // zero Value
		return nil
	case KindInt:
		if len(payload) != 8 {
			return fmt.Errorf("sql: int Value encoding has %d payload bytes", len(payload))
		}
		v.i = int64(getUint64(payload))
	case KindFloat:
		if len(payload) != 8 {
			return fmt.Errorf("sql: float Value encoding has %d payload bytes", len(payload))
		}
		v.f = math.Float64frombits(getUint64(payload))
	case KindString:
		v.s = string(payload)
	case KindBool:
		if len(payload) != 1 {
			return fmt.Errorf("sql: bool Value encoding has %d payload bytes", len(payload))
		}
		v.b = payload[0] == 1
	default:
		return fmt.Errorf("sql: unknown Value kind %d in encoding", data[0])
	}
	return nil
}

func putUint64(b []byte, x uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(x >> (8 * i))
	}
}

func getUint64(b []byte) uint64 {
	var x uint64
	for i := 0; i < 8; i++ {
		x |= uint64(b[i]) << (8 * i)
	}
	return x
}

// Compare orders two values of the same kind: -1, 0, +1. Numeric kinds
// compare after widening; mixing other kinds is an error.
func Compare(a, b Value) (int, error) {
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if a.kind != b.kind {
		return 0, fmt.Errorf("sql: comparing %s with %s", a.kind, b.kind)
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	case KindBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("sql: cannot compare %s values", a.kind)
	}
}

// Column is one schema entry.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// IndexOf resolves a column name (case-sensitive) to its position.
func (s Schema) IndexOf(name string) (int, error) {
	for i, c := range s {
		if c.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sql: unknown column %q (have %v)", name, s.Names())
}

// Names lists the column names.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Row is one tuple, positionally aligned with its Schema.
type Row []Value
