package sql

import (
	"math"
	"testing"

	"upa/internal/stats"
)

// exprNode mirrors a generated expression for reference evaluation.
type exprNode struct {
	op          string // "col", "lit", "+", "-", "*", "<", "<=", "=", "and", "or", "not"
	col         int
	lit         float64
	left, right *exprNode
}

// genNumeric builds a random numeric expression tree of bounded depth.
func genNumeric(rng *stats.RNG, depth int) *exprNode {
	if depth <= 0 || rng.Intn(3) == 0 {
		if rng.Intn(2) == 0 {
			return &exprNode{op: "col", col: rng.Intn(3)}
		}
		return &exprNode{op: "lit", lit: float64(rng.Intn(21) - 10)}
	}
	ops := []string{"+", "-", "*"}
	return &exprNode{
		op:    ops[rng.Intn(len(ops))],
		left:  genNumeric(rng, depth-1),
		right: genNumeric(rng, depth-1),
	}
}

// genBool builds a random boolean expression tree over numeric comparisons.
func genBool(rng *stats.RNG, depth int) *exprNode {
	if depth <= 0 || rng.Intn(3) == 0 {
		ops := []string{"<", "<=", "="}
		return &exprNode{
			op:    ops[rng.Intn(len(ops))],
			left:  genNumeric(rng, 2),
			right: genNumeric(rng, 2),
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &exprNode{op: "not", left: genBool(rng, depth-1)}
	case 1:
		return &exprNode{op: "and", left: genBool(rng, depth-1), right: genBool(rng, depth-1)}
	default:
		return &exprNode{op: "or", left: genBool(rng, depth-1), right: genBool(rng, depth-1)}
	}
}

// toExpr lowers the mirror tree into the package's Expr builders.
func toExpr(n *exprNode, cols []string) Expr {
	switch n.op {
	case "col":
		return Col(cols[n.col])
	case "lit":
		return Lit(Float(n.lit))
	case "+":
		return Add(toExpr(n.left, cols), toExpr(n.right, cols))
	case "-":
		return Sub(toExpr(n.left, cols), toExpr(n.right, cols))
	case "*":
		return Mul(toExpr(n.left, cols), toExpr(n.right, cols))
	case "<":
		return Lt(toExpr(n.left, cols), toExpr(n.right, cols))
	case "<=":
		return Le(toExpr(n.left, cols), toExpr(n.right, cols))
	case "=":
		return Eq(toExpr(n.left, cols), toExpr(n.right, cols))
	case "and":
		return And(toExpr(n.left, cols), toExpr(n.right, cols))
	case "or":
		return Or(toExpr(n.left, cols), toExpr(n.right, cols))
	default: // "not"
		return Not(toExpr(n.left, cols))
	}
}

// refNumeric is the reference interpreter.
func refNumeric(n *exprNode, row []float64) float64 {
	switch n.op {
	case "col":
		return row[n.col]
	case "lit":
		return n.lit
	case "+":
		return refNumeric(n.left, row) + refNumeric(n.right, row)
	case "-":
		return refNumeric(n.left, row) - refNumeric(n.right, row)
	default: // "*"
		return refNumeric(n.left, row) * refNumeric(n.right, row)
	}
}

func refBool(n *exprNode, row []float64) bool {
	switch n.op {
	case "<":
		return refNumeric(n.left, row) < refNumeric(n.right, row)
	case "<=":
		return refNumeric(n.left, row) <= refNumeric(n.right, row)
	case "=":
		return refNumeric(n.left, row) == refNumeric(n.right, row)
	case "and":
		return refBool(n.left, row) && refBool(n.right, row)
	case "or":
		return refBool(n.left, row) || refBool(n.right, row)
	default: // "not"
		return !refBool(n.left, row)
	}
}

// TestRandomNumericExpressions cross-checks the expression compiler against
// the mirror interpreter on random trees and rows.
func TestRandomNumericExpressions(t *testing.T) {
	rng := stats.NewRNG(515)
	cols := []string{"a", "b", "c"}
	schema := Schema{{Name: "a", Kind: KindFloat}, {Name: "b", Kind: KindFloat}, {Name: "c", Kind: KindFloat}}
	for trial := 0; trial < 400; trial++ {
		tree := genNumeric(rng, 4)
		expr := toExpr(tree, cols)
		bound, kind, err := expr.bind(schema)
		if err != nil {
			t.Fatalf("trial %d: bind %s: %v", trial, expr.describe(), err)
		}
		if kind != KindFloat {
			t.Fatalf("trial %d: numeric tree bound to %s", trial, kind)
		}
		for r := 0; r < 5; r++ {
			rowVals := []float64{
				float64(rng.Intn(41) - 20),
				float64(rng.Intn(41) - 20),
				float64(rng.Intn(41) - 20),
			}
			row := Row{Float(rowVals[0]), Float(rowVals[1]), Float(rowVals[2])}
			got, err := bound(row)
			if err != nil {
				t.Fatalf("trial %d: eval: %v", trial, err)
			}
			gf, _ := got.AsFloat()
			want := refNumeric(tree, rowVals)
			if math.Abs(gf-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d: %s = %v, want %v (row %v)",
					trial, expr.describe(), gf, want, rowVals)
			}
		}
	}
}

// TestRandomBooleanExpressions does the same for boolean trees.
func TestRandomBooleanExpressions(t *testing.T) {
	rng := stats.NewRNG(929)
	cols := []string{"a", "b", "c"}
	schema := Schema{{Name: "a", Kind: KindFloat}, {Name: "b", Kind: KindFloat}, {Name: "c", Kind: KindFloat}}
	for trial := 0; trial < 400; trial++ {
		tree := genBool(rng, 3)
		expr := toExpr(tree, cols)
		bound, kind, err := expr.bind(schema)
		if err != nil {
			t.Fatalf("trial %d: bind %s: %v", trial, expr.describe(), err)
		}
		if kind != KindBool {
			t.Fatalf("trial %d: boolean tree bound to %s", trial, kind)
		}
		for r := 0; r < 5; r++ {
			rowVals := []float64{
				float64(rng.Intn(9) - 4),
				float64(rng.Intn(9) - 4),
				float64(rng.Intn(9) - 4),
			}
			row := Row{Float(rowVals[0]), Float(rowVals[1]), Float(rowVals[2])}
			got, err := bound(row)
			if err != nil {
				t.Fatalf("trial %d: eval: %v", trial, err)
			}
			gb, _ := got.AsBool()
			if want := refBool(tree, rowVals); gb != want {
				t.Fatalf("trial %d: %s = %v, want %v (row %v)",
					trial, expr.describe(), gb, want, rowVals)
			}
		}
	}
}
