// Package stats provides the statistics substrate used throughout UPA:
// deterministic pseudo-random number generation, the Laplace mechanism,
// maximum-likelihood fitting of normal distributions, percentiles, and
// empirical summaries (RMSE, quantiles, histograms).
//
// Everything in this package is deterministic given an explicit seed so that
// experiments are reproducible bit-for-bit.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based on
// the splitmix64 finalizer. It is used instead of math/rand so that samplers
// can be split into independent deterministic streams (see Split) and so the
// whole repository has a single, auditable randomness source.
//
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new independent generator from r. The derived stream is a
// deterministic function of r's current state and the supplied label, so two
// components splitting with distinct labels never share a stream.
func (r *RNG) Split(label uint64) *RNG {
	// Mix the label through one splitmix64 round before combining so that
	// small consecutive labels (0, 1, 2, ...) land far apart in state space.
	mixed := mix64(label ^ 0x9e3779b97f4a7c15)
	return &RNG{state: mix64(r.state ^ mixed)}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching the
// contract of math/rand.Intn; callers validate n at their boundary.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	// Rejection sampling removes modulo bias.
	limit := uint64(n)
	mask := ^uint64(0) - ^uint64(0)%limit
	for {
		v := r.Uint64()
		if v < mask {
			return int(v % limit)
		}
	}
}

// NormFloat64 returns a standard normal variate using the Marsaglia polar
// method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// SampleIndices returns k distinct indices drawn uniformly without
// replacement from [0, n). If k >= n it returns all n indices.
//
// For k much smaller than n it uses Floyd's algorithm — O(k) time and
// memory, independent of n — which keeps UPA's sampling phase constant in
// the dataset size (the §VI-E amortization argument). Dense draws fall back
// to a partial Fisher-Yates shuffle.
func (r *RNG) SampleIndices(n, k int) []int {
	if k >= n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if k > n/4 {
		// Dense draw: partial Fisher-Yates over an index table.
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		out := make([]int, k)
		copy(out, p[:k])
		return out
	}
	// Sparse draw: Floyd's algorithm. Iterating j over the last k values
	// and mapping collisions to j yields a uniform k-subset.
	chosen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		v := r.Intn(j + 1)
		if chosen[v] {
			v = j
		}
		chosen[v] = true
		out = append(out, v)
	}
	return out
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
