package bench

import (
	"fmt"
	"strings"
	"time"

	"upa/internal/mapreduce"
)

// ScaleRow is one x-position of Figure 4(a): the mean normalized runtime of
// UPA over all nine queries at one dataset scale.
type ScaleRow struct {
	// ScaleFactor multiplies the base dataset sizes; Lineitems is the
	// resulting TPC-H fact-table size.
	ScaleFactor int
	Lineitems   int
	// MeanNormalized is UPA time / vanilla time averaged over the nine
	// queries; PerQuery holds the individual ratios in QueryNames() order.
	MeanNormalized float64
	PerQuery       []float64
}

// Fig4a regenerates Figure 4(a): UPA's overhead as dataset sizes grow
// (decreasing, because the sensitivity-inference cost is constant in the
// dataset size — §VI-E's linear-to-constant claim). scaleFactors nil
// defaults to {1, 2, 4, 8}.
func Fig4a(cfg Config, scaleFactors []int) ([]ScaleRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(scaleFactors) == 0 {
		scaleFactors = []int{1, 2, 4, 8}
	}
	rows := make([]ScaleRow, 0, len(scaleFactors))
	for _, sf := range scaleFactors {
		scaled := cfg
		scaled.Lineitems = cfg.Lineitems * sf
		scaled.LSRecords = cfg.LSRecords * sf
		over, err := Fig2b(scaled, 2)
		if err != nil {
			return nil, fmt.Errorf("bench: scale %dx: %w", sf, err)
		}
		row := ScaleRow{ScaleFactor: sf, Lineitems: scaled.Lineitems}
		var sum float64
		for _, o := range over {
			row.PerQuery = append(row.PerQuery, o.Normalized)
			sum += o.Normalized
		}
		row.MeanNormalized = sum / float64(len(over))
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig4a renders the dataset-size scalability sweep.
func RenderFig4a(rows []ScaleRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(a): UPA runtime normalized to vanilla vs dataset size\n")
	fmt.Fprintf(&b, "%-8s %12s %12s\n", "scale", "lineitems", "normalized")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %12d %11.2fx\n", r.ScaleFactor, r.Lineitems, r.MeanNormalized)
	}
	return b.String()
}

// SampleSizeRow is one x-position of Figure 4(b): UPA's runtime and cache
// hit rate at one sensitivity sample size n.
type SampleSizeRow struct {
	SampleSize int
	// MeanTime is the mean UPA release time over the nine queries.
	MeanTime time.Duration
	// MeanCacheHitRate is the mean engine cache hit rate during the
	// releases (the paper reports it rising from 10.3% to 48.9% inside the
	// sensitivity loop).
	MeanCacheHitRate float64
	PerQuery         []time.Duration
}

// Fig4b regenerates Figure 4(b): UPA runtime vs sample size n (nil defaults
// to {100, 1000, 10000, 100000}).
func Fig4b(cfg Config, sampleSizes []int) ([]SampleSizeRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(sampleSizes) == 0 {
		sampleSizes = []int{100, 1000, 10000, 100000}
	}
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	rows := make([]SampleSizeRow, 0, len(sampleSizes))
	for _, n := range sampleSizes {
		row := SampleSizeRow{SampleSize: n}
		var totalTime time.Duration
		var totalHitRate float64
		for _, r := range w.All() {
			eng := mapreduce.NewEngine()
			sys, err := cfg.newSystem(eng, n)
			if err != nil {
				return nil, err
			}
			start := time.Now() //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			res, err := r.RunUPA(sys)
			if err != nil {
				return nil, fmt.Errorf("bench: UPA(n=%d) on %s: %w", n, r.Name(), err)
			}
			elapsed := time.Since(start) //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			row.PerQuery = append(row.PerQuery, elapsed)
			totalTime += elapsed
			totalHitRate += res.EngineDelta.CacheHitRate()
		}
		row.MeanTime = totalTime / 9
		row.MeanCacheHitRate = totalHitRate / 9
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig4b renders the sample-size sweep.
func RenderFig4b(rows []SampleSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4(b): UPA runtime and cache hit rate vs sample size n\n")
	fmt.Fprintf(&b, "%-10s %14s %14s\n", "n", "mean time", "cache hits")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %14v %13.1f%%\n",
			r.SampleSize, r.MeanTime.Round(time.Microsecond), 100*r.MeanCacheHitRate)
	}
	return b.String()
}
