// Package epsiloncharge polices the ε ledger. UPA's privacy accounting
// (System.EpsilonSpent) is only meaningful if the ledger is charged exactly
// once per successful release: charging twice over-reports spend, and a
// release path that returns success without charging silently leaks budget —
// the DP-deployment drift Garrido et al. document. The analyzer pins the
// write surface down to one blessed site:
//
//   - the raw accumulator (epsilonSpentBits) may be touched only by the
//     System.chargeEpsilon / System.EpsilonSpent accessors;
//   - chargeEpsilon may be called only from the release entry point RunCtx;
//   - inside the charging function, no success return (`return x, nil` with
//     a non-nil result) may occur before the charge.
package epsiloncharge

import (
	"fmt"
	"go/ast"
	"go/token"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the epsiloncharge analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "epsiloncharge",
	Doc: "restricts ε-ledger writes (epsilonSpentBits / chargeEpsilon) to the " +
		"blessed release site and flags release paths that can return success " +
		"before charging",
	Run: run,
}

const (
	ledgerField  = "epsilonSpentBits"
	chargeHelper = "chargeEpsilon"
	readAccessor = "EpsilonSpent"
	blessedSite  = "RunCtx"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkLedgerAccess(pass, fn)
			checkChargeCalls(pass, fn)
		}
	}
	return nil
}

// checkLedgerAccess flags any mention of the raw accumulator outside the
// two accessors (and the struct definition itself, which is not a FuncDecl).
func checkLedgerAccess(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Name.Name == chargeHelper || fn.Name.Name == readAccessor {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == ledgerField {
			pass.Reportf(sel.Pos(), fmt.Sprintf(
				"direct access to the ε ledger (%s) outside %s/%s; all ledger traffic must flow through the accessors so charging stays exactly-once",
				ledgerField, chargeHelper, readAccessor))
		}
		return true
	})
}

// checkChargeCalls enforces that chargeEpsilon is called only from the
// blessed release site, and that within the charging function no success
// return precedes the charge.
func checkChargeCalls(pass *analysis.Pass, fn *ast.FuncDecl) {
	var chargePos token.Pos
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != chargeHelper {
			return true
		}
		if fn.Name.Name == chargeHelper {
			return true // the helper's own recursive structure, if any
		}
		if fn.Name.Name != blessedSite {
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"%s called outside the blessed release site %s; a second charge site makes ε accounting path-dependent", chargeHelper, blessedSite))
			return true
		}
		if chargePos == token.NoPos {
			chargePos = call.Pos()
		} else {
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"%s charges the ledger more than once; releases must charge exactly once", blessedSite))
		}
		return true
	})
	if chargePos == token.NoPos {
		return
	}
	// Success returns before the charge: `return x, nil` with non-nil x.
	// Nested function literals (stage bodies, commit closures) return to
	// their own callers, not out of the release path, so don't descend.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() >= chargePos {
			return true
		}
		if isSuccessReturn(ret) {
			pass.Reportf(ret.Pos(), fmt.Sprintf(
				"release path returns success before %s charges the ledger; a successful release must always be charged", chargeHelper))
		}
		return true
	})
}

// isSuccessReturn matches `return <non-nil>, nil` — the (result, error)
// success shape. Single-value and bare returns are not release successes.
func isSuccessReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) != 2 {
		return false
	}
	first, last := ret.Results[0], ret.Results[1]
	if ident, ok := first.(*ast.Ident); ok && ident.Name == "nil" {
		return false
	}
	ident, ok := last.(*ast.Ident)
	return ok && ident.Name == "nil"
}
