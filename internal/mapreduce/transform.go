package mapreduce

import (
	"context"
	"fmt"

	"upa/internal/stats"
)

// Map applies f to every record. It is a narrow transformation: partition p
// of the child depends only on partition p of the parent, so it is both
// embarrassingly parallel and recomputable from lineage.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	return derived[T, U](d, "map", d.numParts, func(ctx context.Context, p int) ([]U, error) {
		in, err := d.partition(ctx, p)
		if err != nil {
			return nil, err
		}
		out := make([]U, len(in))
		for i, v := range in {
			out[i] = f(v)
		}
		d.eng.metrics.RecordsMapped.Add(int64(len(in)))
		return out, nil
	})
}

// FlatMap applies f to every record and concatenates the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	return derived[T, U](d, "flatMap", d.numParts, func(ctx context.Context, p int) ([]U, error) {
		in, err := d.partition(ctx, p)
		if err != nil {
			return nil, err
		}
		var out []U
		for _, v := range in {
			out = append(out, f(v)...)
		}
		d.eng.metrics.RecordsMapped.Add(int64(len(in)))
		return out, nil
	})
}

// Filter keeps the records for which keep returns true.
func Filter[T any](d *Dataset[T], keep func(T) bool) *Dataset[T] {
	return derived[T, T](d, "filter", d.numParts, func(ctx context.Context, p int) ([]T, error) {
		in, err := d.partition(ctx, p)
		if err != nil {
			return nil, err
		}
		out := make([]T, 0, len(in))
		for _, v := range in {
			if keep(v) {
				out = append(out, v)
			}
		}
		return out, nil
	})
}

// MapPartitions applies f to each whole partition. f must not retain or
// mutate its input slice. Like Map, it charges its input records to the
// engine's RecordsMapped counter — per-partition mapping is still mapping,
// and the SQL layer compiles filters and projections onto it, so leaving it
// unmetered would hide that work from the metrics.
func MapPartitions[T, U any](d *Dataset[T], f func(p int, in []T) ([]U, error)) *Dataset[U] {
	return derived[T, U](d, "mapPartitions", d.numParts, func(ctx context.Context, p int) ([]U, error) {
		in, err := d.partition(ctx, p)
		if err != nil {
			return nil, err
		}
		d.eng.metrics.RecordsMapped.Add(int64(len(in)))
		return f(p, in)
	})
}

// Union concatenates two datasets of the same element type. The child has
// the partitions of a followed by the partitions of b. Union is the
// "commutative" composition point of MapReduce: for a commutative,
// associative reducer R, Reduce(Union(a, b)) == R(Reduce(a), Reduce(b)).
func Union[T any](a, b *Dataset[T]) (*Dataset[T], error) {
	if a.eng != b.eng {
		return nil, fmt.Errorf("mapreduce: union across engines")
	}
	return &Dataset[T]{
		eng:      a.eng,
		numParts: a.numParts + b.numParts,
		name:     "union(" + a.name + "," + b.name + ")",
		compute: func(ctx context.Context, p int) ([]T, error) {
			if p < a.numParts {
				return a.partition(ctx, p)
			}
			return b.partition(ctx, p-a.numParts)
		},
	}, nil
}

// Sample returns k records drawn uniformly without replacement (all records
// if k >= count), together with the indices of the sampled records in
// partition order. Sampling is deterministic in rng.
func Sample[T any](d *Dataset[T], rng *stats.RNG, k int) (records []T, indices []int, err error) {
	all, err := d.Collect()
	if err != nil {
		return nil, nil, err
	}
	idx := rng.SampleIndices(len(all), k)
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = all[j]
	}
	return out, idx, nil
}

// Repartition redistributes records into numParts contiguous partitions.
// The parent is materialized once on first use; a failed materialization
// (e.g. a cancelled context) is retried on the next collection.
func Repartition[T any](d *Dataset[T], numParts int) (*Dataset[T], error) {
	if numParts < 1 {
		return nil, fmt.Errorf("mapreduce: numParts must be >= 1, got %d", numParts)
	}
	var loaded memo[[]T]
	return &Dataset[T]{
		eng:      d.eng,
		numParts: numParts,
		name:     d.name + ".repartition",
		compute: func(ctx context.Context, p int) ([]T, error) {
			data, err := loaded.get(func() ([]T, error) { return d.CollectCtx(ctx) })
			if err != nil {
				return nil, err
			}
			lo, hi := sliceBounds(len(data), numParts, p)
			return data[lo:hi], nil
		},
	}, nil
}
