package relation

import (
	"testing"

	"upa/internal/mapreduce"
)

func TestKeyFrequency(t *testing.T) {
	eng := mapreduce.NewEngine()
	records := []string{"a", "b", "a", "c", "a", "b"}
	stats, err := KeyFrequency(eng, records, func(s string) string { return s })
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowCount != 6 {
		t.Errorf("RowCount = %d, want 6", stats.RowCount)
	}
	if stats.Distinct != 3 {
		t.Errorf("Distinct = %d, want 3", stats.Distinct)
	}
	if stats.MaxFreq != 3 {
		t.Errorf("MaxFreq = %d, want 3", stats.MaxFreq)
	}
	if err := stats.Validate(); err != nil {
		t.Errorf("computed stats invalid: %v", err)
	}
}

func TestKeyFrequencyEmpty(t *testing.T) {
	eng := mapreduce.NewEngine()
	stats, err := KeyFrequency(eng, nil, func(s string) string { return s })
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ColumnStats{}) {
		t.Errorf("empty relation stats = %+v, want zero", stats)
	}
}

func TestKeyFrequencyDerivedKey(t *testing.T) {
	eng := mapreduce.NewEngine()
	records := []int{1, 2, 3, 4, 5, 6, 7, 8}
	stats, err := KeyFrequency(eng, records, func(x int) int { return x % 3 })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Distinct != 3 {
		t.Errorf("Distinct = %d, want 3", stats.Distinct)
	}
	if stats.MaxFreq != 3 { // residues 1 and 2 occur 3 times
		t.Errorf("MaxFreq = %d, want 3", stats.MaxFreq)
	}
}

// TestKeyFrequencySingleRecord pins the parts clamp: one record on a
// multi-worker engine must still produce at least one partition.
func TestKeyFrequencySingleRecord(t *testing.T) {
	eng := mapreduce.NewEngine()
	stats, err := KeyFrequency(eng, []string{"only"}, func(s string) string { return s })
	if err != nil {
		t.Fatal(err)
	}
	want := ColumnStats{RowCount: 1, Distinct: 1, MaxFreq: 1}
	if stats != want {
		t.Errorf("single-record stats = %+v, want %+v", stats, want)
	}
	if err := stats.Validate(); err != nil {
		t.Errorf("computed stats invalid: %v", err)
	}
}

// TestStatsOfMatchesKeyFrequency pins that the in-memory helper and the
// engine job agree, including on empty input.
func TestStatsOfMatchesKeyFrequency(t *testing.T) {
	records := []string{"a", "b", "a", "c", "a", "b"}
	key := func(s string) string { return s }
	inMem := StatsOf(records, key)
	eng := mapreduce.NewEngine()
	viaJob, err := KeyFrequency(eng, records, key)
	if err != nil {
		t.Fatal(err)
	}
	if inMem != viaJob {
		t.Errorf("StatsOf = %+v, KeyFrequency = %+v", inMem, viaJob)
	}
	if StatsOf(nil, key) != (ColumnStats{}) {
		t.Errorf("StatsOf(nil) = %+v, want zero", StatsOf(nil, key))
	}
}

func TestJoinCardinality(t *testing.T) {
	uniform := ColumnStats{RowCount: 100, Distinct: 100, MaxFreq: 1}
	skewed := ColumnStats{RowCount: 100, Distinct: 2, MaxFreq: 99}
	empty := ColumnStats{}

	// Key-unique sides join one-to-one.
	if got := uniform.JoinCardinality(uniform); got != 100 {
		t.Errorf("uniform⋈uniform = %d, want 100", got)
	}
	// A unique-key side caps the join at its own row count: each skewed row
	// matches at most maxfreq=1 uniform rows.
	if got := uniform.JoinCardinality(skewed); got != 100 {
		t.Errorf("uniform⋈skewed = %d, want 100 (capped by the unique side)", got)
	}
	// Fewer distinct keys on both sides means more matches per key.
	if skewed.JoinCardinality(skewed) <= uniform.JoinCardinality(uniform) {
		t.Errorf("low-distinct pair did not raise the estimate: %d vs %d",
			skewed.JoinCardinality(skewed), uniform.JoinCardinality(uniform))
	}
	// Symmetry and empties.
	if uniform.JoinCardinality(skewed) != skewed.JoinCardinality(uniform) {
		t.Error("JoinCardinality is not symmetric")
	}
	if empty.JoinCardinality(uniform) != 0 || uniform.JoinCardinality(empty) != 0 {
		t.Error("empty side must estimate zero")
	}
}

func TestValidate(t *testing.T) {
	bad := []ColumnStats{
		{RowCount: -1},
		{RowCount: 2, Distinct: 3, MaxFreq: 1},
		{RowCount: 2, Distinct: 1, MaxFreq: 3},
		{RowCount: 2, Distinct: 0, MaxFreq: 1},
		{RowCount: 2, Distinct: 1, MaxFreq: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid stats accepted: %+v", i, s)
		}
	}
	good := []ColumnStats{
		{},
		{RowCount: 5, Distinct: 2, MaxFreq: 4},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("case %d: valid stats rejected: %v", i, err)
		}
	}
}
