package mapreduce

import (
	"context"
	"fmt"
	"sort"
)

// SortBy globally sorts the dataset by the given less function into
// numParts contiguous partitions. Like Spark's sortBy it is a wide
// transformation: all records move (one shuffle round), then each output
// partition holds a contiguous range of the sorted order.
//
// The sort is stable, so records comparing equal keep their source order —
// which keeps every downstream result deterministic.
func SortBy[T any](d *Dataset[T], numParts int, less func(a, b T) bool) (*Dataset[T], error) {
	if numParts < 1 {
		return nil, fmt.Errorf("mapreduce: numParts must be >= 1, got %d", numParts)
	}
	var shared memo[[]T]
	return &Dataset[T]{
		eng:      d.eng,
		numParts: numParts,
		name:     d.name + ".sortBy",
		compute: func(ctx context.Context, p int) ([]T, error) {
			// The sorted parent is materialized once and shared by all output
			// partitions; a failed materialization (e.g. a cancelled context)
			// is retried on the next collection instead of being cached.
			sorted, err := shared.get(func() ([]T, error) {
				all, err := d.CollectCtx(ctx)
				if err != nil {
					return nil, err
				}
				owned := make([]T, len(all))
				copy(owned, all)
				sort.SliceStable(owned, func(i, j int) bool { return less(owned[i], owned[j]) })
				d.eng.AccountShuffle(len(owned))
				return owned, nil
			})
			if err != nil {
				return nil, err
			}
			lo, hi := sliceBounds(len(sorted), numParts, p)
			return sorted[lo:hi], nil
		},
	}, nil
}

// Top returns the k greatest records under less (the analogue of Spark's
// top action): a per-partition selection followed by a final merge, without
// a full shuffle.
func Top[T any](d *Dataset[T], k int, less func(a, b T) bool) ([]T, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return TopCtx(context.Background(), d, k, less)
}

// TopCtx is Top under a caller-supplied context: cancellation aborts the
// per-partition selection tasks.
func TopCtx[T any](ctx context.Context, d *Dataset[T], k int, less func(a, b T) bool) ([]T, error) {
	if k < 0 {
		return nil, fmt.Errorf("mapreduce: negative k %d", k)
	}
	if k == 0 {
		return nil, nil
	}
	partTops := make([][]T, d.numParts)
	err := d.eng.runTasks(ctx, d.name+":top", d.numParts, func(tctx context.Context, p int) error {
		part, err := d.partition(tctx, p)
		if err != nil {
			return err
		}
		local := make([]T, len(part))
		copy(local, part)
		sort.SliceStable(local, func(i, j int) bool { return less(local[j], local[i]) })
		if len(local) > k {
			local = local[:k]
		}
		partTops[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	var merged []T
	for _, t := range partTops {
		merged = append(merged, t...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return less(merged[j], merged[i]) })
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}
