// Command upa-query releases a single evaluated query end-to-end under iDP
// on a freshly generated synthetic workload, printing the vanilla output,
// the inferred sensitivity, the enforced range, and the noisy release.
//
// Usage:
//
//	upa-query -query TPCH6
//	upa-query -query KMeans -n 2000 -epsilon 0.5 -lineitems 50000
//	upa-query -query TPCH4 -explain
//	upa-query -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"upa/internal/bench"
	"upa/internal/core"
	"upa/internal/lifesci"
	"upa/internal/mapreduce"
	"upa/internal/queries"
	"upa/internal/sql"
	"upa/internal/tpch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "upa-query:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("upa-query", flag.ContinueOnError)
	var (
		name       = fs.String("query", "TPCH1", "query name (see -list)")
		list       = fs.Bool("list", false, "list the available queries and exit")
		lineitems  = fs.Int("lineitems", 20000, "TPC-H lineitem rows")
		lsRecords  = fs.Int("lsrecords", 20000, "life-science records")
		skew       = fs.Float64("skew", 0.2, "TPC-H join-key skew in [0,1)")
		seed       = fs.Uint64("seed", 1, "generator and system seed")
		sampleSize = fs.Int("n", 1000, "UPA differing-record sample size")
		epsilon    = fs.Float64("epsilon", 0.1, "privacy budget per release")
		repeats    = fs.Int("repeat", 1, "release the query this many times through one session")
		asJSON     = fs.Bool("json", false, "emit one machine-readable JSON object per release")
		explain    = fs.Bool("explain", false, "print the query's raw and optimized relational plans and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range bench.QueryNames() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	w, err := queries.NewWorkload(
		tpch.Config{Lineitems: *lineitems, Skew: *skew, Seed: *seed},
		lifesci.Config{Records: *lsRecords, Dims: 4, Clusters: 3, OutlierFrac: 0.01, Seed: *seed},
	)
	if err != nil {
		return err
	}
	if *explain {
		plan, err := queries.PlanByName(w.DB, strings.ToLower(*name))
		if err != nil {
			return fmt.Errorf("-explain: %w (only the relational-plan-backed TPC-H queries can be explained)", err)
		}
		fmt.Fprintf(out, "query: %s\n", *name)
		fmt.Fprint(out, sql.Explain(plan))
		return nil
	}
	r, err := w.ByName(*name)
	if err != nil {
		return err
	}

	eng := mapreduce.NewEngine()
	cfg := core.DefaultConfig()
	cfg.SampleSize = *sampleSize
	cfg.Epsilon = *epsilon
	cfg.Seed = *seed
	sys, err := core.NewSystem(eng, cfg)
	if err != nil {
		return err
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		for i := 0; i < *repeats; i++ {
			res, err := r.RunUPA(sys)
			if err != nil {
				return err
			}
			if err := enc.Encode(releaseReport{
				Query:           res.Query,
				Kind:            string(r.Kind()),
				Records:         r.DatasetSize(),
				Release:         i + 1,
				Output:          res.Output,
				Sensitivity:     res.Sensitivity,
				RangeLo:         res.RangeLo,
				RangeHi:         res.RangeHi,
				SampleSize:      res.SampleSize,
				AttackSuspected: res.AttackSuspected,
				RemovedRecords:  res.RemovedRecords,
				TotalMicros:     res.Phases.Total().Microseconds(),
			}); err != nil {
				return err
			}
		}
		return nil
	}

	fmt.Fprintf(out, "query: %s (%s, %d protected records)\n", r.Name(), r.Kind(), r.DatasetSize())
	for i := 0; i < *repeats; i++ {
		res, err := r.RunUPA(sys)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\nrelease %d\n", i+1)
		//upa:allow(dpflow) reviewed: upa-query is the operator inspection CLI; surfacing the pre-noise pipeline on synthetic/local data is its purpose
		fmt.Fprintf(out, "  vanilla output:     %v\n", round(res.VanillaOutput))
		fmt.Fprintf(out, "  released (noisy):   %v\n", round(res.Output))
		//upa:allow(dpflow) reviewed: operator inspection CLI, pre-noise sensitivity shown by design
		fmt.Fprintf(out, "  local sensitivity:  %v\n", round(res.Sensitivity))
		//upa:allow(dpflow) reviewed: operator inspection CLI, enforcer range shown by design
		fmt.Fprintf(out, "  enforced range:     [%v, %v]\n", round(res.RangeLo), round(res.RangeHi))
		fmt.Fprintf(out, "  sample size n:      %d\n", res.SampleSize)
		fmt.Fprintf(out, "  attack suspected:   %v (removed %d records)\n", res.AttackSuspected, res.RemovedRecords)
		fmt.Fprintf(out, "  phases:             sample=%v map=%v upr=%v enforce=%v\n",
			res.Phases.PartitionSample.Round(time.Microsecond),
			res.Phases.ParallelMap.Round(time.Microsecond),
			res.Phases.UnionPreservingReduce.Round(time.Microsecond),
			res.Phases.IDPEnforcement.Round(time.Microsecond))
	}
	m := eng.Metrics()
	fmt.Fprintf(out, "\nengine: %d tasks, %d mapped, %d reduce ops, %d shuffles (%d records), cache %.1f%% hit\n",
		m.TasksRun, m.RecordsMapped, m.ReduceOps, m.ShuffleRounds, m.RecordsShuffled, 100*m.CacheHitRate())
	return nil
}

// releaseReport is the machine-readable form of one release (-json).
type releaseReport struct {
	Query           string    `json:"query"`
	Kind            string    `json:"kind"`
	Records         int       `json:"records"`
	Release         int       `json:"release"`
	Output          []float64 `json:"output"`
	Sensitivity     []float64 `json:"sensitivity"`
	RangeLo         []float64 `json:"rangeLo"`
	RangeHi         []float64 `json:"rangeHi"`
	SampleSize      int       `json:"sampleSize"`
	AttackSuspected bool      `json:"attackSuspected"`
	RemovedRecords  int       `json:"removedRecords"`
	TotalMicros     int64     `json:"totalMicros"`
}

// round trims vectors for display.
func round(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int64(x*1e4)) / 1e4
	}
	return out
}
