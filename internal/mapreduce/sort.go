package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// SortBy globally sorts the dataset by the given less function into
// numParts contiguous partitions. Like Spark's sortBy it is a wide
// transformation: all records move (one shuffle round), then each output
// partition holds a contiguous range of the sorted order.
//
// The sort is stable, so records comparing equal keep their source order —
// which keeps every downstream result deterministic.
//
// Within the engine's memory budget the sort is one in-memory pass. Past it,
// SortBy switches to an external merge sort: each source partition is
// stable-sorted and spilled as a sorted run, and every output partition is
// produced by a streaming k-way merge over the runs (ties broken by source
// run order), which yields exactly the record sequence a stable sort of the
// concatenated partitions would — byte-identical output either way.
//
// Every returned partition is an owned slice: downstream stages that mutate
// or append to their input can never corrupt the shared sorted
// materialization or their sibling partitions.
func SortBy[T any](d *Dataset[T], numParts int, less func(a, b T) bool) (*Dataset[T], error) {
	if numParts < 1 {
		return nil, fmt.Errorf("mapreduce: numParts must be >= 1, got %d", numParts)
	}
	var shared memo[*sortedRep[T]]
	return &Dataset[T]{
		eng:      d.eng,
		numParts: numParts,
		name:     d.name + ".sortBy",
		compute: func(ctx context.Context, p int) ([]T, error) {
			// The sorted parent is materialized once and shared by all output
			// partitions; a failed materialization (e.g. a cancelled context)
			// is retried on the next collection instead of being cached.
			rep, err := shared.get(func() (*sortedRep[T], error) {
				return materializeSorted(ctx, d, less)
			})
			if err != nil {
				return nil, err
			}
			return rep.partition(ctx, numParts, p)
		},
	}, nil
}

// sortedRep is the shared materialization behind SortBy's output
// partitions: either the fully sorted records in memory, or one sorted run
// per source partition for the external merge.
type sortedRep[T any] struct {
	eng   *Engine
	less  func(a, b T) bool
	total int
	mem   []T           // in-memory path
	runs  []spillRun[T] // external path: sorted run per source partition
}

// spillRun is one sorted run: on disk, or retained in memory when its spill
// write failed past the retry policy (graceful degradation — a full disk
// shrinks the external sort's capacity, it does not fail the job).
type spillRun[T any] struct {
	path  string // "" when the run fell back to memory
	count int
	mem   []T
}

// materializeSorted collects the parent and builds whichever representation
// the memory budget allows. Both paths account one shuffle round of every
// record — the data motion is the same, only its destination differs.
func materializeSorted[T any](ctx context.Context, d *Dataset[T], less func(a, b T) bool) (*sortedRep[T], error) {
	parts, err := d.CollectPartitionsCtx(ctx)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	rep := &sortedRep[T]{eng: d.eng, less: less, total: total}
	if d.eng.spill.admit(estimatePartsBytes(parts)) {
		owned := make([]T, 0, total)
		for _, p := range parts {
			owned = append(owned, p...)
		}
		sort.SliceStable(owned, func(i, j int) bool { return less(owned[i], owned[j]) })
		rep.mem = owned
		d.eng.AccountShuffle(total)
		return rep, nil
	}
	// External path: stable-sort each source partition into a run and spill
	// it. Run files are written in source-partition order so a retried
	// materialization rewrites identical bytes. Writes run under the retry
	// policy (spillWriteRetry verifies every landing, so a torn run file is
	// caught and rewritten here, never discovered mid-merge); a run the
	// disk keeps refusing is retained in memory instead.
	site := d.name + ".sortBy"
	prefix := fmt.Sprintf("%06d-%s", d.eng.spill.seq.Add(1), sanitizeSite(site))
	rep.runs = make([]spillRun[T], len(parts))
	for i, p := range parts {
		run := make([]T, len(p))
		copy(run, p)
		sort.SliceStable(run, func(a, b int) bool { return less(run[a], run[b]) })
		path, err := spillWriteRetry(d.eng, site, fmt.Sprintf("%s-%04d.spill", prefix, i), i, run)
		if err != nil {
			if errors.Is(err, errSpillClosed) {
				return nil, err
			}
			d.eng.spill.retained.Add(estimateRecords(run))
			d.eng.metrics.SpillFallbacksInMemory.Add(1)
			rep.runs[i] = spillRun[T]{count: len(run), mem: run}
			continue
		}
		rep.runs[i] = spillRun[T]{path: path, count: len(run)}
	}
	d.eng.AccountShuffle(total)
	return rep, nil
}

// partition returns output partition p — records [lo, hi) of the global
// sorted order — as an owned slice.
func (rep *sortedRep[T]) partition(ctx context.Context, numParts, p int) ([]T, error) {
	lo, hi := sliceBounds(rep.total, numParts, p)
	if rep.mem != nil {
		out := make([]T, hi-lo)
		copy(out, rep.mem[lo:hi])
		return out, nil
	}
	return rep.merge(ctx, lo, hi)
}

// merge streams a k-way merge of the sorted runs and returns records
// [lo, hi) of the merged order. Ties pick the lowest run index, and records
// within a run keep their order, so the merged sequence equals a stable
// sort of the concatenated source partitions. Memory stays bounded by one
// decode batch per run regardless of dataset size. Each run streams through
// a runCursor, which recovers transient read faults and in-flight
// corruption by reopening its file, so one flaky read does not abort the
// whole merge.
func (rep *sortedRep[T]) merge(ctx context.Context, lo, hi int) ([]T, error) {
	cursors := make([]*runCursor[T], len(rep.runs))
	heads := make([]T, len(rep.runs))
	live := make([]bool, len(rep.runs))
	for i, run := range rep.runs {
		c := &runCursor[T]{eng: rep.eng, run: run, idx: i}
		defer c.close()
		cursors[i] = c
		var err error
		heads[i], live[i], err = c.next(ctx)
		if err != nil {
			return nil, err
		}
	}
	out := make([]T, 0, hi-lo)
	for emitted := 0; emitted < hi; emitted++ {
		best := -1
		for i := range heads {
			if !live[i] {
				continue
			}
			if best < 0 || rep.less(heads[i], heads[best]) {
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("mapreduce: external sort runs exhausted at record %d of %d", emitted, rep.total)
		}
		if emitted >= lo {
			out = append(out, heads[best])
		}
		var err error
		heads[best], live[best], err = cursors[best].next(ctx)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// runCursor streams one sorted run with fault recovery. On a read error or
// detected corruption it closes and reopens the run — re-verifying frame
// checksums from the start and skipping the records already consumed —
// under the engine's retry policy. Run files are verified at write time, so
// the on-disk bytes are known-good and a reopen heals every transient
// in-flight fault; what cannot be healed (true bit rot landing after the
// verify) surfaces as the typed corruption error after bounded attempts.
type runCursor[T any] struct {
	eng *Engine
	run spillRun[T]
	idx int // run index, a stable backoff coordinate

	r        *spillReader[T]
	closeFn  func() error
	consumed int // records already handed out, to skip after a reopen
}

func (c *runCursor[T]) next(ctx context.Context) (T, bool, error) {
	var zero T
	if c.run.mem != nil {
		if c.consumed >= len(c.run.mem) {
			return zero, false, nil
		}
		rec := c.run.mem[c.consumed]
		c.consumed++
		return rec, true, nil
	}
	maxAttempts := c.eng.policy.Attempts()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return zero, false, err
		}
		if attempt > 1 {
			if d := c.eng.policy.Backoff("sort-run-read", c.idx, attempt-1); d > 0 {
				c.eng.metrics.BackoffNanos.Add(int64(d))
				if !sleepCtx(ctx, d) {
					return zero, false, ctx.Err()
				}
			}
		}
		rec, ok, err := c.read()
		if err == nil {
			return rec, ok, nil
		}
		if errors.Is(err, errSpillClosed) {
			return zero, false, err
		}
		if errors.Is(err, ErrSpillCorrupt) {
			c.eng.metrics.SpillCorruptionsDetected.Add(1)
		}
		lastErr = err
		c.reset()
	}
	return zero, false, fmt.Errorf("mapreduce: sort run %d unreadable after %d attempts: %w",
		c.idx, maxAttempts, lastErr)
}

// read returns the next record, opening the run and skipping past already
// consumed records when the previous reader was torn down by a fault.
func (c *runCursor[T]) read() (T, bool, error) {
	var zero T
	if c.r == nil {
		r, closeFn, err := spillOpen[T](c.eng.spill, c.run.path)
		if err != nil {
			return zero, false, err
		}
		c.r, c.closeFn = r, closeFn
		for skip := 0; skip < c.consumed; skip++ {
			if _, ok, err := r.next(); err != nil {
				return zero, false, err
			} else if !ok {
				return zero, false, corruptf("sort run %d ended at record %d while skipping to %d",
					c.idx, skip, c.consumed)
			}
		}
	}
	rec, ok, err := c.r.next()
	if err != nil {
		return zero, false, err
	}
	if ok {
		c.consumed++
	}
	return rec, ok, nil
}

// reset tears the reader down so the next attempt reopens the file.
func (c *runCursor[T]) reset() {
	if c.closeFn != nil {
		c.closeFn()
	}
	c.r, c.closeFn = nil, nil
}

func (c *runCursor[T]) close() {
	c.reset()
}

// Top returns the k greatest records under less (the analogue of Spark's
// top action): a per-partition selection followed by a final merge, without
// a full shuffle.
func Top[T any](d *Dataset[T], k int, less func(a, b T) bool) ([]T, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return TopCtx(context.Background(), d, k, less)
}

// TopCtx is Top under a caller-supplied context: cancellation aborts the
// per-partition selection tasks.
func TopCtx[T any](ctx context.Context, d *Dataset[T], k int, less func(a, b T) bool) ([]T, error) {
	if k < 0 {
		return nil, fmt.Errorf("mapreduce: negative k %d", k)
	}
	if k == 0 {
		return nil, nil
	}
	partTops := make([][]T, d.numParts)
	err := d.eng.runTasks(ctx, d.name+":top", d.numParts, func(tctx context.Context, p int) error {
		part, err := d.partition(tctx, p)
		if err != nil {
			return err
		}
		local := make([]T, len(part))
		copy(local, part)
		sort.SliceStable(local, func(i, j int) bool { return less(local[j], local[i]) })
		if len(local) > k {
			local = local[:k]
		}
		partTops[p] = local
		return nil
	})
	if err != nil {
		return nil, err
	}
	var merged []T
	for _, t := range partTops {
		merged = append(merged, t...)
	}
	sort.SliceStable(merged, func(i, j int) bool { return less(merged[j], merged[i]) })
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, nil
}
