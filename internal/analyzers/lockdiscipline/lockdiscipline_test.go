package lockdiscipline_test

import (
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analyzertest"
	"upa/internal/analyzers/lockdiscipline"
)

func TestLockDisciplineGolden(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "lockdiscipline")
	analyzertest.Run(t, dir, "upa/internal/fake", lockdiscipline.Analyzer)
}
