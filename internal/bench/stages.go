package bench

import (
	"fmt"
	"strings"
	"time"

	"upa/internal/cluster"
	"upa/internal/mapreduce"
)

// StageRow is one jobgraph stage of one query's release: the measured
// in-process span plus its cluster-model price. It is the per-stage
// refinement of the Figure 2(b) simulated-testbed aggregate — instead of one
// engine delta per release, each stage is priced from the counters it
// reported, so the breakdown shows where a release's simulated time goes
// (the paper's §VI-D attributes >42% of UPA's overhead on local-computation
// queries to the enforcer's extra shuffle, which here is the
// partition-sample stage's network cost).
type StageRow struct {
	Query string
	Stage string
	Deps  []string
	// Measured is the in-process wall-clock span of the stage.
	Measured time.Duration
	// Counters the stage reported into its span.
	Records, ShuffledRecords, ShuffleBytes, ReduceOps, CacheHits int64
	// RecordsCombined counts records a map-side combine kept off the wire.
	RecordsCombined       int64
	Attempts, Speculative int
	// TaskFaults and Retries are the stage's fault-recovery counters: injected
	// faults absorbed and attempts re-run under the retry policy.
	TaskFaults, Retries int64
	// SimCost is the stage's modeled cluster time; Critical marks membership
	// in the plan's critical path.
	SimCost  time.Duration
	Critical bool
}

// PlanRow summarizes one query's priced release DAG: the modeled cluster
// time of a stage-at-a-time scheduler versus the pipelined critical path,
// whose ratio is the speedup the DAG's stage parallelism admits.
type PlanRow struct {
	Query         string
	SimSequential time.Duration
	SimPipelined  time.Duration
	Speedup       float64
	CriticalPath  []string
}

// StageBreakdown releases every workload query through UPA and prices each
// release's stage spans with the cluster cost model.
func StageBreakdown(cfg Config, model cluster.Model) ([]StageRow, []PlanRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, nil, err
	}
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, nil, err
	}
	var stages []StageRow
	plans := make([]PlanRow, 0, 9)
	for _, r := range w.All() {
		sys, err := cfg.newSystem(mapreduce.NewEngine(), cfg.SampleSize)
		if err != nil {
			return nil, nil, err
		}
		res, err := r.RunUPA(sys)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: UPA %s: %w", r.Name(), err)
		}
		plan, err := model.PricePlan(res.Spans)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: pricing %s: %w", r.Name(), err)
		}
		critical := make(map[string]bool, len(plan.CriticalPath))
		for _, s := range plan.CriticalPath {
			critical[s] = true
		}
		for i, s := range res.Spans {
			stages = append(stages, StageRow{
				Query:           r.Name(),
				Stage:           s.Stage,
				Deps:            s.Deps,
				Measured:        s.Duration(),
				Records:         s.Records,
				ShuffledRecords: s.ShuffledRecords,
				ShuffleBytes:    s.ShuffleBytes,
				ReduceOps:       s.ReduceOps,
				CacheHits:       s.CacheHits,
				RecordsCombined: s.RecordsCombined,
				Attempts:        s.Attempts,
				Speculative:     s.Speculative,
				TaskFaults:      s.TaskFaults,
				Retries:         s.Retries,
				SimCost:         plan.Stages[i].Cost.Total(),
				Critical:        critical[s.Stage],
			})
		}
		row := PlanRow{
			Query:         r.Name(),
			SimSequential: plan.Sequential,
			SimPipelined:  plan.Total,
			CriticalPath:  plan.CriticalPath,
		}
		if plan.Total > 0 {
			row.Speedup = float64(plan.Sequential) / float64(plan.Total)
		}
		plans = append(plans, row)
	}
	return stages, plans, nil
}

// RenderStageBreakdown renders the per-stage spans and the per-query plan
// summaries.
func RenderStageBreakdown(stages []StageRow, plans []PlanRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Release stage breakdown: measured spans and cluster-model prices per jobgraph stage\n")
	fmt.Fprintf(&b, "%-18s %-17s %10s %10s %9s %9s %6s %12s %5s\n",
		"Query", "Stage", "measured", "records", "shuffled", "reduces", "hits", "sim", "crit")
	for _, s := range stages {
		crit := ""
		if s.Critical {
			crit = "*"
		}
		fmt.Fprintf(&b, "%-18s %-17s %10v %10d %9d %9d %6d %12v %5s\n",
			s.Query, s.Stage, s.Measured.Round(time.Microsecond),
			s.Records, s.ShuffledRecords, s.ReduceOps, s.CacheHits,
			s.SimCost.Round(time.Microsecond), crit)
	}
	fmt.Fprintf(&b, "\nPlan cost: sequential vs pipelined (critical path) under the simulated testbed\n")
	fmt.Fprintf(&b, "%-18s %14s %14s %8s  %s\n", "Query", "sequential", "pipelined", "speedup", "critical path")
	for _, p := range plans {
		fmt.Fprintf(&b, "%-18s %14v %14v %7.2fx  %s\n",
			p.Query, p.SimSequential.Round(time.Microsecond), p.SimPipelined.Round(time.Microsecond),
			p.Speedup, strings.Join(p.CriticalPath, " -> "))
	}
	return b.String()
}
