// Command upa-bench regenerates the paper's evaluation artifacts (Table II
// and Figures 2a, 2b, 3, 4a, 4b) on the synthetic workloads.
//
// Usage:
//
//	upa-bench -experiment all
//	upa-bench -experiment fig2a -lineitems 50000 -trials 5
//	upa-bench -experiment fig4b -samples 100,1000,10000
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"upa/internal/bench"
	"upa/internal/cluster"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "upa-bench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("upa-bench", flag.ContinueOnError)
	var (
		experiment = fs.String("experiment", "all", "table2 | fig2a | fig2b | fig2bsim | stages | shuffle | optimizer | spill | chaos | fig3 | fig4a | fig4b | ablations | all")
		lineitems  = fs.Int("lineitems", 0, "TPC-H lineitem rows (default from bench config)")
		lsRecords  = fs.Int("lsrecords", 0, "life-science records (default from bench config)")
		skew       = fs.Float64("skew", -1, "TPC-H join-key skew in [0,1)")
		seed       = fs.Uint64("seed", 0, "generator and system seed")
		sampleSize = fs.Int("n", 0, "UPA differing-record sample size")
		trials     = fs.Int("trials", 0, "workload trials for the RMSE experiment")
		reps       = fs.Int("reps", 3, "timing repetitions for overhead experiments")
		samples    = fs.String("samples", "", "comma-separated sample sizes for fig3/fig4b sweeps")
		scales     = fs.String("scales", "", "comma-separated dataset scale factors for fig4a")
		csvDir     = fs.String("csvdir", "", "also write each experiment's rows as CSV into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := bench.DefaultConfig()
	if *lineitems > 0 {
		cfg.Lineitems = *lineitems
	}
	if *lsRecords > 0 {
		cfg.LSRecords = *lsRecords
	}
	if *skew >= 0 {
		cfg.Skew = *skew
	}
	if *seed > 0 {
		cfg.Seed = *seed
	}
	if *sampleSize > 0 {
		cfg.SampleSize = *sampleSize
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	sampleSweep, err := parseInts(*samples)
	if err != nil {
		return fmt.Errorf("-samples: %w", err)
	}
	scaleSweep, err := parseInts(*scales)
	if err != nil {
		return fmt.Errorf("-scales: %w", err)
	}

	writeFile := func(name string, write func(io.Writer) error) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	writeCSV := func(name string, write func(io.Writer) error) error {
		return writeFile(name+".csv", write)
	}

	experiments := map[string]func() (string, error){
		"table2": func() (string, error) {
			rows, err := bench.Table2(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("table2", func(w io.Writer) error { return bench.WriteTable2CSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderTable2(rows), nil
		},
		"fig2a": func() (string, error) {
			rows, err := bench.Fig2a(cfg)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig2a", func(w io.Writer) error { return bench.WriteFig2aCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderFig2a(rows), nil
		},
		"fig2b": func() (string, error) {
			rows, err := bench.Fig2b(cfg, *reps)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig2b", func(w io.Writer) error { return bench.WriteFig2bCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderFig2b(rows), nil
		},
		"ablations": func() (string, error) {
			rep, err := bench.Ablations(cfg)
			if err != nil {
				return "", err
			}
			return bench.RenderAblations(rep), nil
		},
		"fig2bsim": func() (string, error) {
			rows, err := bench.Fig2bSimulated(cfg, cluster.PaperTestbed())
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig2bsim", func(w io.Writer) error { return bench.WriteFig2bSimCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderFig2bSimulated(rows), nil
		},
		"stages": func() (string, error) {
			stages, plans, err := bench.StageBreakdown(cfg, cluster.PaperTestbed())
			if err != nil {
				return "", err
			}
			if err := writeCSV("stages", func(w io.Writer) error { return bench.WriteStagesCSV(w, stages) }); err != nil {
				return "", err
			}
			return bench.RenderStageBreakdown(stages, plans), nil
		},
		"shuffle": func() (string, error) {
			rows, err := bench.ShuffleBench(cfg, cluster.PaperTestbed(), nil)
			if err != nil {
				return "", err
			}
			if err := writeCSV("shuffle", func(w io.Writer) error { return bench.WriteShuffleCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderShuffle(rows), nil
		},
		"optimizer": func() (string, error) {
			rows, err := bench.OptimizerBench(cfg, *reps)
			if err != nil {
				return "", err
			}
			if err := writeCSV("optimizer", func(w io.Writer) error { return bench.WriteOptimizerCSV(w, rows) }); err != nil {
				return "", err
			}
			if err := writeFile("BENCH_optimizer.json", func(w io.Writer) error { return bench.WriteOptimizerJSON(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderOptimizer(rows), nil
		},
		"spill": func() (string, error) {
			rows, err := bench.SpillBench(cfg, nil, *reps)
			if err != nil {
				return "", err
			}
			if err := writeCSV("spill", func(w io.Writer) error { return bench.WriteSpillCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderSpill(rows), nil
		},
		"chaos": func() (string, error) {
			rows, err := bench.ChaosSweep(cfg, cluster.PaperTestbed(), nil, nil)
			if err != nil {
				return "", err
			}
			if err := writeCSV("chaos", func(w io.Writer) error { return bench.WriteChaosCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderChaos(rows), nil
		},
		"fig3": func() (string, error) {
			rows, err := bench.Fig3(cfg, sampleSweep)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig3", func(w io.Writer) error { return bench.WriteFig3CSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderFig3(rows), nil
		},
		"fig4a": func() (string, error) {
			rows, err := bench.Fig4a(cfg, scaleSweep)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig4a", func(w io.Writer) error { return bench.WriteFig4aCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderFig4a(rows), nil
		},
		"fig4b": func() (string, error) {
			rows, err := bench.Fig4b(cfg, sampleSweep)
			if err != nil {
				return "", err
			}
			if err := writeCSV("fig4b", func(w io.Writer) error { return bench.WriteFig4bCSV(w, rows) }); err != nil {
				return "", err
			}
			return bench.RenderFig4b(rows), nil
		},
	}

	order := []string{"table2", "fig2a", "fig2b", "fig2bsim", "stages", "shuffle", "optimizer", "spill", "chaos", "fig3", "fig4a", "fig4b", "ablations"}
	selected := order
	if *experiment != "all" {
		if _, ok := experiments[*experiment]; !ok {
			return fmt.Errorf("unknown experiment %q (want one of %s, all)",
				*experiment, strings.Join(order, ", "))
		}
		selected = []string{*experiment}
	}
	for i, name := range selected {
		text, err := experiments[name]()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if i > 0 {
			fmt.Fprintln(out)
		}
		fmt.Fprint(out, text)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be positive", v)
		}
		out = append(out, v)
	}
	return out, nil
}
