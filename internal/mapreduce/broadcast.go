package mapreduce

import (
	"fmt"
	"sync/atomic"
)

// Broadcast is a read-only value shipped once to every worker — the
// engine's analogue of Spark's broadcast variables, which UPA's operators
// use for the reduced remaining-records table B(RS') and the sampled set
// B(S) (§V-B). The engine accounts the records shipped so broadcast-heavy
// plans show up in the overhead analysis.
//
// The held value must be treated as immutable by all tasks.
type Broadcast[T any] struct {
	value   T
	records int
}

// NewBroadcast registers value with the engine, accounting its shipment to
// every worker. records describes the value's cardinality (rows in a lookup
// table); pass 1 for scalars.
func NewBroadcast[T any](eng *Engine, value T, records int) (*Broadcast[T], error) {
	if records < 0 {
		return nil, fmt.Errorf("mapreduce: negative broadcast cardinality %d", records)
	}
	eng.metrics.BroadcastsSent.Add(1)
	eng.metrics.BroadcastRecords.Add(int64(records) * int64(eng.Workers()))
	return &Broadcast[T]{value: value, records: records}, nil
}

// Value returns the broadcast value.
func (b *Broadcast[T]) Value() T { return b.value }

// Records reports the value's cardinality as registered.
func (b *Broadcast[T]) Records() int { return b.records }

// BroadcastMap builds a broadcast lookup table from key-value pairs.
func BroadcastMap[K comparable, V any](eng *Engine, pairs []Pair[K, V]) (*Broadcast[map[K]V], error) {
	m := make(map[K]V, len(pairs))
	for _, p := range pairs {
		m[p.Key] = p.Value
	}
	return NewBroadcast(eng, m, len(m))
}

// Accumulator is a write-only, commutatively merged counter usable from
// concurrent tasks — the analogue of Spark accumulators. Tasks Add;
// the driver reads Value after the job completes.
type Accumulator struct {
	name string
	n    atomic.Int64
}

// NewAccumulator registers a named accumulator with the engine.
func NewAccumulator(eng *Engine, name string) (*Accumulator, error) {
	if name == "" {
		return nil, fmt.Errorf("mapreduce: accumulator needs a name")
	}
	acc := &Accumulator{name: name}
	eng.accMu.Lock()
	defer eng.accMu.Unlock()
	if _, exists := eng.accumulators[name]; exists {
		return nil, fmt.Errorf("mapreduce: accumulator %q already registered", name)
	}
	if eng.accumulators == nil {
		eng.accumulators = make(map[string]*Accumulator)
	}
	eng.accumulators[name] = acc
	return acc, nil
}

// Add contributes delta; safe from any task.
func (a *Accumulator) Add(delta int64) { a.n.Add(delta) }

// Value reads the current total.
func (a *Accumulator) Value() int64 { return a.n.Load() }

// Name returns the accumulator's registered name.
func (a *Accumulator) Name() string { return a.name }

// Accumulators snapshots every registered accumulator by name.
func (e *Engine) Accumulators() map[string]int64 {
	e.accMu.Lock()
	defer e.accMu.Unlock()
	out := make(map[string]int64, len(e.accumulators))
	for name, acc := range e.accumulators {
		out[name] = acc.Value()
	}
	return out
}
