package serve

import (
	"context"
	"net/http"
	"testing"
	"time"
)

func TestAdmissionShedsPastPerTenantCap(t *testing.T) {
	ctx := context.Background()
	a := newAdmission(4, 1)
	release, aerr := a.acquire(ctx, "acme", 2)
	if aerr != nil {
		t.Fatal(aerr)
	}
	if _, aerr := a.acquire(ctx, "acme", 2); aerr == nil {
		t.Fatal("over-cap acquire admitted")
	} else if aerr.Status != http.StatusTooManyRequests || aerr.RetryAfterSeconds != 2 {
		t.Fatalf("shed error = %+v, want 429 with Retry-After 2", aerr)
	}
	// Another tenant is unaffected by acme's occupancy.
	release2, aerr := a.acquire(ctx, "beta", 2)
	if aerr != nil {
		t.Fatalf("independent tenant shed: %+v", aerr)
	}
	release2()
	release()
	if r, aerr := a.acquire(ctx, "acme", 2); aerr != nil {
		t.Fatalf("post-release acquire failed: %+v", aerr)
	} else {
		r()
	}
}

func TestAdmissionBackpressureBlocksThenAdmits(t *testing.T) {
	ctx := context.Background()
	a := newAdmission(1, 2)
	release, aerr := a.acquire(ctx, "acme", 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	admitted := make(chan func(), 1)
	go func() {
		r, aerr := a.acquire(ctx, "acme", 1)
		if aerr != nil {
			t.Error(aerr)
			admitted <- nil
			return
		}
		admitted <- r
	}()
	select {
	case <-admitted:
		t.Fatal("second acquire did not block while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	if got := a.depth("acme"); got != 2 {
		t.Fatalf("depth = %d, want 2 (one running, one queued)", got)
	}
	release()
	select {
	case r := <-admitted:
		if r != nil {
			r()
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued acquire never admitted after release")
	}
}

func TestAdmissionHonoursContextWhileQueued(t *testing.T) {
	a := newAdmission(1, 2)
	release, aerr := a.acquire(context.Background(), "acme", 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan *Error, 1)
	go func() {
		_, aerr := a.acquire(ctx, "acme", 1)
		done <- aerr
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case aerr := <-done:
		if aerr == nil || aerr.Status != http.StatusServiceUnavailable {
			t.Fatalf("cancelled acquire returned %+v, want 503", aerr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled acquire never returned")
	}
	if got := a.depth("acme"); got != 1 {
		t.Fatalf("depth after cancellation = %d, want 1", got)
	}
}

func TestAdmissionReleaseIsIdempotent(t *testing.T) {
	a := newAdmission(1, 1)
	release, aerr := a.acquire(context.Background(), "acme", 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	release()
	release() // double release must not free a second slot or go negative
	if got := a.depth("acme"); got != 0 {
		t.Fatalf("depth = %d, want 0", got)
	}
	r, aerr := a.acquire(context.Background(), "acme", 1)
	if aerr != nil {
		t.Fatal(aerr)
	}
	r()
}
