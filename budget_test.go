package upa

import (
	"errors"
	"math"
	"testing"
)

func TestBudgetUnlimitedByDefault(t *testing.T) {
	s := newSessionT(t, WithSampleSize(20))
	if !math.IsInf(s.RemainingBudget(), 1) {
		t.Fatalf("RemainingBudget = %v, want +Inf", s.RemainingBudget())
	}
	for i := 0; i < 5; i++ {
		if _, err := Release(s, Count[user]("c", nil), testUsers(100), nil); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	if got := s.SpentBudget(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("SpentBudget = %v, want 0.5 (5 releases at eps 0.1)", got)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	s := newSessionT(t, WithSampleSize(20), WithEpsilon(0.1), WithTotalBudget(0.25))
	q := Count[user]("c", nil)
	users := testUsers(100)
	for i := 0; i < 2; i++ {
		if _, err := Release(s, q, users, nil); err != nil {
			t.Fatalf("release %d within budget failed: %v", i, err)
		}
	}
	if _, err := Release(s, q, users, nil); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("third release error = %v, want ErrBudgetExhausted", err)
	}
	// The ledger is not corrupted by the refusal.
	if got := s.SpentBudget(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("SpentBudget = %v, want 0.2", got)
	}
	if got := s.RemainingBudget(); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("RemainingBudget = %v, want 0.05", got)
	}
}

func TestBudgetRefundedOnFailedRelease(t *testing.T) {
	s := newSessionT(t, WithSampleSize(20), WithTotalBudget(1))
	// Single-record input fails inside core; budget must be refunded.
	if _, err := Release(s, Count[user]("c", nil), testUsers(1), nil); err == nil {
		t.Fatal("single-record release succeeded")
	}
	if got := s.SpentBudget(); got != 0 {
		t.Fatalf("SpentBudget after failed release = %v, want 0", got)
	}
}

func TestBudgetInvalidOption(t *testing.T) {
	if _, err := NewSession(WithTotalBudget(-1)); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestEvaluateDoesNotSpendBudget(t *testing.T) {
	s := newSessionT(t, WithTotalBudget(0.1))
	if _, err := Evaluate(s, Count[user]("c", nil), testUsers(50)); err != nil {
		t.Fatal(err)
	}
	if s.SpentBudget() != 0 {
		t.Fatalf("Evaluate spent budget: %v", s.SpentBudget())
	}
}

func TestAdvancedCompositionAllowsMoreReleases(t *testing.T) {
	// At small ε the advanced bound grows with sqrt(k): the same budget
	// admits strictly more releases than linear composition.
	const (
		eps    = 0.01
		budget = 0.5
		delta  = 1e-6
	)
	countReleases := func(opts ...Option) int {
		base := []Option{WithEpsilon(eps), WithSampleSize(20), WithTotalBudget(budget)}
		s := newSessionT(t, append(base, opts...)...)
		q := Count[user]("c", nil)
		users := testUsers(60)
		n := 0
		for n < 200 {
			if _, err := Release(s, q, users, nil); err != nil {
				if !errors.Is(err, ErrBudgetExhausted) {
					t.Fatal(err)
				}
				break
			}
			n++
		}
		return n
	}
	linear := countReleases()
	advanced := countReleases(WithAdvancedComposition(delta))
	if linear != 50 { // 0.5 / 0.01
		t.Fatalf("linear releases = %d, want 50", linear)
	}
	if advanced <= linear {
		t.Fatalf("advanced composition allowed %d releases, linear %d", advanced, linear)
	}
	// The composed formula matches the ledger.
	want := composedEpsilon(CompositionAdvanced, eps, advanced, delta)
	s := newSessionT(t, WithEpsilon(eps), WithAdvancedComposition(delta))
	for i := 0; i < advanced; i++ {
		if err := s.debit(eps); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(s.SpentBudget()-want) > 1e-12 {
		t.Fatalf("SpentBudget = %v, want %v", s.SpentBudget(), want)
	}
}

func TestAdvancedCompositionValidation(t *testing.T) {
	if _, err := NewSession(WithAdvancedComposition(0)); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := NewSession(WithAdvancedComposition(1)); err == nil {
		t.Error("delta 1 accepted")
	}
	s := newSessionT(t, WithAdvancedComposition(1e-6))
	if s.Composition() != CompositionAdvanced || s.Delta() != 1e-6 {
		t.Errorf("mode/delta = %v/%v", s.Composition(), s.Delta())
	}
	if newSessionT(t).Composition() != CompositionLinear {
		t.Error("default mode is not linear")
	}
}

func TestComposedEpsilonFormula(t *testing.T) {
	// Linear: k*eps exactly.
	if got := composedEpsilon(CompositionLinear, 0.1, 7, 0); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("linear composed = %v, want 0.7", got)
	}
	if got := composedEpsilon(CompositionAdvanced, 0.1, 0, 1e-6); got != 0 {
		t.Errorf("zero releases composed = %v, want 0", got)
	}
	// Advanced matches the closed form.
	eps, k, delta := 0.05, 10, 1e-5
	want := eps*math.Sqrt(2*10*math.Log(1/delta)) + 10*eps*(math.Exp(eps)-1)
	if got := composedEpsilon(CompositionAdvanced, eps, k, delta); math.Abs(got-want) > 1e-9 {
		t.Errorf("advanced composed = %v, want %v", got, want)
	}
	// Crossover: for one release, advanced is worse (sqrt term dominates);
	// for many small releases it is better than linear.
	one := composedEpsilon(CompositionAdvanced, 0.01, 1, 1e-6)
	if one <= 0.01 {
		t.Errorf("advanced single-release cost %v not above linear 0.01", one)
	}
	many := composedEpsilon(CompositionAdvanced, 0.01, 150, 1e-6)
	if many >= 1.5 {
		t.Errorf("advanced 150-release cost %v not below linear 1.5", many)
	}
}

func TestGroupSizeOption(t *testing.T) {
	s := newSessionT(t, WithSampleSize(40), WithGroupSize(8))
	res, err := Release(s, Count[user]("c", nil), testUsers(400), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Group neighbours widen the inferred sensitivity well beyond the
	// individual count sensitivity.
	if res.Sensitivity[0] < 8 {
		t.Fatalf("group-size-8 count sensitivity = %v, want >= 8", res.Sensitivity[0])
	}
	if _, err := NewSession(WithGroupSize(-2)); err == nil {
		t.Fatal("negative group size accepted")
	}
}
