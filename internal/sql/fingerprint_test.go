package sql

import (
	"reflect"
	"strings"
	"testing"

	"upa/internal/mapreduce"
)

func countPlan(pred Expr) Plan {
	return GroupBy(Where(ordersScan(), pred), nil, AggSpec{Name: "n", Func: AggCount})
}

func TestFingerprintIsStableAndStructural(t *testing.T) {
	a := countPlan(Gt(Col("price"), Lit(Float(60))))
	b := countPlan(Gt(Col("price"), Lit(Float(60))))
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("identical plans fingerprint differently")
	}
	if len(Fingerprint(a)) != 64 {
		t.Fatalf("fingerprint %q is not a hex SHA-256", Fingerprint(a))
	}
	// Every structural change moves the fingerprint.
	variants := map[string]Plan{
		"different constant": countPlan(Gt(Col("price"), Lit(Float(61)))),
		"different column":   countPlan(Gt(Col("custkey"), Lit(Float(60)))),
		"different operator": countPlan(Ge(Col("price"), Lit(Float(60)))),
		"no filter":          GroupBy(ordersScan(), nil, AggSpec{Name: "n", Func: AggCount}),
		"different agg name": GroupBy(Where(ordersScan(), Gt(Col("price"), Lit(Float(60)))), nil, AggSpec{Name: "m", Func: AggCount}),
		"join interposed":    q4ish(ordersScan(), lineitemsScan()),
	}
	base := Fingerprint(a)
	for name, p := range variants {
		if Fingerprint(p) == base {
			t.Errorf("%s: fingerprint did not change", name)
		}
	}
}

func TestFingerprintTracksRelationContents(t *testing.T) {
	// Two scans with the same name and schema but different cardinality are
	// different relations — they must not share cached releases.
	a := Scan("orders", Schema{{Name: "k", Kind: KindInt}}, []Row{{Int(1)}, {Int(2)}})
	b := Scan("orders", Schema{{Name: "k", Kind: KindInt}}, []Row{{Int(1)}})
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("fingerprint ignores relation cardinality")
	}
}

func TestTableNames(t *testing.T) {
	got := TableNames(q4ish(ordersScan(), lineitemsScan()))
	if !reflect.DeepEqual(got, []string{"lineitem", "orders"}) {
		t.Fatalf("TableNames = %v", got)
	}
	if got := TableNames(countPlan(Gt(Col("price"), Lit(Float(60))))); !reflect.DeepEqual(got, []string{"orders"}) {
		t.Fatalf("TableNames = %v", got)
	}
}

func TestSupportsDPCount(t *testing.T) {
	good := q4ish(ordersScan(), lineitemsScan())
	if err := SupportsDPCount(good, "orders"); err != nil {
		t.Fatalf("supported plan rejected: %v", err)
	}
	cases := map[string]struct {
		plan      Plan
		protected string
		want      string
	}{
		"not a count": {
			GroupBy(ordersScan(), nil, AggSpec{Name: "s", Func: AggSum, Arg: Col("price")}),
			"orders", "single-count",
		},
		"grouped": {
			GroupBy(ordersScan(), []string{"custkey"}, AggSpec{Name: "n", Func: AggCount}),
			"orders", "single-count",
		},
		"unknown protected table": {good, "nope", "not found"},
		"self-join of protected": {
			GroupBy(JoinOn(ordersScan(), "custkey", ordersScan(), "custkey"), nil, AggSpec{Name: "n", Func: AggCount}),
			"orders", "self-joins",
		},
		"projection in interior": {
			GroupBy(Project(ordersScan(), NamedExpr{Name: "custkey", Expr: Col("custkey")}), nil, AggSpec{Name: "n", Func: AggCount}),
			"orders", "",
		},
	}
	for name, tc := range cases {
		err := SupportsDPCount(tc.plan, tc.protected)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
	}
}

// TestSupportsDPCountAgreesWithCompile pins the validator to the compiler:
// whatever SupportsDPCount admits, CompileDPCount must compile, and
// vice versa — the serving layer relies on this to reject before executing.
func TestSupportsDPCountAgreesWithCompile(t *testing.T) {
	plans := []struct {
		name      string
		plan      Plan
		protected string
	}{
		{"join count", q4ish(ordersScan(), lineitemsScan()), "orders"},
		{"plain count", countPlan(Gt(Col("price"), Lit(Float(60)))), "orders"},
		{"sum agg", GroupBy(ordersScan(), nil, AggSpec{Name: "s", Func: AggSum, Arg: Col("price")}), "orders"},
		{"grouped count", GroupBy(ordersScan(), []string{"custkey"}, AggSpec{Name: "n", Func: AggCount}), "orders"},
		{"missing table", countPlan(Gt(Col("price"), Lit(Float(60)))), "nope"},
	}
	eng := mapreduce.NewEngine()
	for _, tc := range plans {
		vErr := SupportsDPCount(tc.plan, tc.protected)
		_, _, cErr := CompileDPCount(eng, tc.plan, tc.protected)
		if (vErr == nil) != (cErr == nil) {
			t.Errorf("%s: validator says %v, compiler says %v", tc.name, vErr, cErr)
		}
	}
}
