package upa_test

// Cross-module integration tests: fault tolerance through a whole iDP
// release, the operator-level dpop API composed with the statistics
// substrate into a manual DP release, and the SQL layer running under
// injected faults. These exercise the seams the per-package unit tests
// cannot.

import (
	"math"
	"testing"

	"upa"
	"upa/internal/core"
	"upa/internal/dpop"
	"upa/internal/mapreduce"
	"upa/internal/queries"
	"upa/internal/sql"
	"upa/internal/stats"
	"upa/internal/tpch"
)

func sumQuery() core.Query[float64] {
	return core.Query[float64]{
		Name:      "sum",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(x float64) core.State { return core.State{x} },
	}
}

func randomData(n int, seed uint64) []float64 {
	rng := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 10
	}
	return out
}

// TestReleaseSurvivesInjectedFaults verifies that lineage-based task retry
// is transparent to UPA: a release under injected worker faults produces
// bit-identical sensitivity and raw output to a fault-free release with the
// same seed — the fault-tolerance dividend of commutative, associative
// operators the paper leans on (§II-C).
func TestReleaseSurvivesInjectedFaults(t *testing.T) {
	data := randomData(3000, 7)
	run := func(faults int) *core.Result {
		eng := mapreduce.NewEngine(mapreduce.WithMaxAttempts(5))
		cfg := core.DefaultConfig()
		cfg.SampleSize = 200
		cfg.Seed = 99
		sys, err := core.NewSystem(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if faults > 0 {
			eng.InjectFaults(faults)
		}
		res, err := core.Run(sys, sumQuery(), data, nil)
		if err != nil {
			t.Fatalf("release with %d faults failed: %v", faults, err)
		}
		return res
	}
	clean := run(0)
	faulty := run(3)
	if clean.RawOutput[0] != faulty.RawOutput[0] {
		t.Errorf("raw outputs diverge under faults: %v vs %v",
			clean.RawOutput[0], faulty.RawOutput[0])
	}
	if clean.Sensitivity[0] != faulty.Sensitivity[0] {
		t.Errorf("sensitivities diverge under faults: %v vs %v",
			clean.Sensitivity[0], faulty.Sensitivity[0])
	}
}

// TestManualDPReleaseViaOperators composes the Table I operators with the
// statistics substrate into a by-hand DP release, and checks the inferred
// sensitivity against the exact ground truth — the workflow of a Spark user
// porting an existing pipeline operator-by-operator.
func TestManualDPReleaseViaOperators(t *testing.T) {
	eng := mapreduce.NewEngine()
	data := randomData(5000, 13)

	d, err := dpop.DPRead(eng, data, 500, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	squared, err := dpop.MapDP(d, func(x float64) float64 { return x * x })
	if err != nil {
		t.Fatal(err)
	}
	res, err := dpop.ReduceDP(squared, func(a, b float64) float64 { return a + b })
	if err != nil {
		t.Fatal(err)
	}

	// Infer a range over the neighbouring outputs and release with noise.
	fit, err := stats.FitNormalMLE(res.Neighbours)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := fit.PercentileRange(0.01, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := stats.NewMechanism(0.1, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	noisy := mech.Perturb(res.Result, hi-lo)
	if math.IsNaN(noisy) {
		t.Fatal("noisy release is NaN")
	}

	// The sampled spread must sit within the exact local sensitivity
	// (max x_i^2 over all records, since removal subtracts one square).
	var exact float64
	for _, x := range data {
		exact = math.Max(exact, x*x)
	}
	spread := res.SpreadFloat64(func(x float64) float64 { return x })
	if spread > exact+1e-9 {
		t.Errorf("sampled spread %v exceeds exact local sensitivity %v", spread, exact)
	}
	if spread <= 0 {
		t.Error("sampled spread is zero on non-degenerate data")
	}
}

// TestSQLUnderFaults runs a join-aggregate plan with injected faults; the
// executor must retry from lineage and return the exact answer.
func TestSQLUnderFaults(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{Lineitems: 3000, Skew: 0.2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	plan := queries.TPCH4Plan(db)

	cleanEng := mapreduce.NewEngine()
	want, err := sql.ExecuteCount(cleanEng, plan)
	if err != nil {
		t.Fatal(err)
	}

	faultyEng := mapreduce.NewEngine(mapreduce.WithMaxAttempts(5))
	faultyEng.InjectFaults(4)
	got, err := sql.ExecuteCount(faultyEng, plan)
	if err != nil {
		t.Fatalf("plan under faults failed: %v", err)
	}
	if got != want {
		t.Fatalf("plan under faults = %d, clean = %d", got, want)
	}
	if faultyEng.Metrics().TaskFaults == 0 {
		t.Fatal("no faults were actually injected")
	}
}

// TestAnalystSessionLifecycle drives a whole analyst session through the
// public API: budgeted releases, an attack detection, unrelated queries,
// and a history reset.
func TestAnalystSessionLifecycle(t *testing.T) {
	session, err := upa.NewSession(
		upa.WithEpsilon(0.1),
		upa.WithSampleSize(100),
		upa.WithSeed(5),
		upa.WithTotalBudget(0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	data := randomData(2000, 31)
	sum := upa.Sum("total", func(x float64) float64 { return x })
	mean := upa.Mean("mean", func(x float64) float64 { return x })

	if _, err := upa.Release(session, sum, data, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := upa.Release(session, mean, data, nil); err != nil {
		t.Fatal(err)
	}

	// Attack: rerun total on a neighbouring dataset.
	attack, err := upa.Release(session, sum, data[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !attack.AttackSuspected {
		t.Error("neighbouring rerun not flagged")
	}

	// Budget: 3 of 5 releases spent.
	if got := session.SpentBudget(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("SpentBudget = %v, want 0.3", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := upa.Release(session, mean, data, nil); err != nil {
			t.Fatalf("release %d within budget failed: %v", i, err)
		}
	}
	if _, err := upa.Release(session, mean, data, nil); err == nil {
		t.Fatal("over-budget release succeeded")
	}
	if session.HistoryLen() != 5 {
		t.Errorf("history = %d, want 5", session.HistoryLen())
	}
	session.ResetHistory()
	if session.HistoryLen() != 0 {
		t.Error("history survived reset")
	}
}
