package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"upa/internal/mapreduce"
	"upa/internal/sql"
)

// newTestService builds a service over the small people table. eps charges
// are powers of two throughout these tests so float accumulation is exact
// and ledger-conservation checks can use ==.
func newTestService(t *testing.T, mutate func(*Config), tenants ...TenantSpec) *Service {
	t.Helper()
	cfg := Config{
		Engine:         mapreduce.NewEngine(),
		Tables:         testTables(),
		SampleSize:     4,
		DefaultEpsilon: 0.25,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	if len(tenants) == 0 {
		tenants = []TenantSpec{{Name: "acme"}}
	}
	svc, err := NewService(cfg, tenants)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func countRequest(tenant, user string, eps float64, seed uint64) Request {
	return Request{
		Tenant:  tenant,
		User:    user,
		Plan:    []byte(countOver30JSON),
		Epsilon: eps,
		Seed:    seed,
	}
}

func mustQuery(t *testing.T, svc *Service, req Request) *Release {
	t.Helper()
	rel, serr := svc.Query(context.Background(), req)
	if serr != nil {
		t.Fatalf("query failed: %+v", serr)
	}
	return rel
}

func TestQueryEndToEndAndCacheHit(t *testing.T) {
	svc := newTestService(t, nil)

	first := mustQuery(t, svc, countRequest("acme", "u1", 0.25, 7))
	if first.Cached || first.Charged != 0.25 || len(first.Output) != 1 {
		t.Fatalf("first release = %+v, want uncached, charged 0.25, dim 1", first)
	}
	if math.IsNaN(first.Output[0]) {
		t.Fatal("release output is NaN")
	}
	if rep := svc.Report(); rep[0].Spent != 0.25 {
		t.Fatalf("spend after first release = %v, want 0.25", rep[0].Spent)
	}

	// Identical request, even from a different user: cache hit, zero ε.
	second := mustQuery(t, svc, countRequest("acme", "u2", 0.25, 7))
	if !second.Cached || second.Charged != 0 {
		t.Fatalf("second release = %+v, want cached with zero charge", second)
	}
	if !reflect.DeepEqual(second.Output, first.Output) {
		t.Fatalf("cache hit output %v != original %v", second.Output, first.Output)
	}
	if rep := svc.Report(); rep[0].Spent != 0.25 {
		t.Fatalf("cache hit moved the ledger: spent = %v", rep[0].Spent)
	}

	// A different seed is a fresh release and a fresh charge.
	third := mustQuery(t, svc, countRequest("acme", "u1", 0.25, 8))
	if third.Cached || third.Charged != 0.25 {
		t.Fatalf("fresh-seed release = %+v, want uncached charge", third)
	}
	if rep := svc.Report(); rep[0].Spent != 0.5 {
		t.Fatalf("spend after two releases = %v, want 0.5", rep[0].Spent)
	}

	m := svc.Metrics()
	if len(m) != 1 || m[0].Admitted != 2 || m[0].CacheHits != 1 || m[0].EpsilonSpent != 0.5 {
		t.Fatalf("metrics = %+v, want 2 admitted, 1 cache hit, 0.5 spent", m)
	}
}

func TestQueryBudgetExhaustedRejectsBeforeComputing(t *testing.T) {
	svc := newTestService(t, nil, TenantSpec{Name: "acme", Budget: 0.375})
	mustQuery(t, svc, countRequest("acme", "u1", 0.25, 1))

	before := svc.cfg.Engine.Metrics()
	rel, serr := svc.Query(context.Background(), countRequest("acme", "u1", 0.25, 2))
	if serr == nil {
		t.Fatalf("over-budget query admitted: %+v", rel)
	}
	if serr.Status != http.StatusTooManyRequests || serr.RetryAfterSeconds < 1 {
		t.Fatalf("rejection = %+v, want 429 with Retry-After", serr)
	}
	after := svc.cfg.Engine.Metrics()
	if after.TasksRun != before.TasksRun || after.RecordsMapped != before.RecordsMapped {
		t.Fatalf("rejected query ran engine work: tasks %d→%d, mapped %d→%d",
			before.TasksRun, after.TasksRun, before.RecordsMapped, after.RecordsMapped)
	}
	if rep := svc.Report(); rep[0].Spent != 0.25 {
		t.Fatalf("rejected query moved the ledger: spent = %v", rep[0].Spent)
	}
	if m := svc.Metrics(); m[0].RejectedBudget != 1 {
		t.Fatalf("metrics = %+v, want 1 budget rejection", m)
	}
	// The cached first release still serves: hits spend nothing, so they
	// work even with the budget exhausted.
	hit := mustQuery(t, svc, countRequest("acme", "u1", 0.25, 1))
	if !hit.Cached {
		t.Fatal("cache miss for the already-released query")
	}
}

func TestQueryPerUserBudgetIsolation(t *testing.T) {
	svc := newTestService(t, nil, TenantSpec{Name: "acme", UserBudget: 0.25})
	mustQuery(t, svc, countRequest("acme", "u1", 0.25, 1))
	if _, serr := svc.Query(context.Background(), countRequest("acme", "u1", 0.25, 2)); serr == nil || serr.Status != http.StatusTooManyRequests {
		t.Fatalf("user over cap admitted: %+v", serr)
	}
	// A sibling user under the same tenant still has headroom.
	mustQuery(t, svc, countRequest("acme", "u2", 0.25, 3))
}

func TestQueryValidationErrors(t *testing.T) {
	svc := newTestService(t, nil)
	ctx := context.Background()
	cases := map[string]struct {
		req  Request
		want int
	}{
		"unknown tenant": {countRequest("ghost", "u", 0.25, 1), http.StatusNotFound},
		"missing user":   {Request{Tenant: "acme", Plan: []byte(countOver30JSON)}, http.StatusBadRequest},
		"negative eps":   {Request{Tenant: "acme", User: "u", Plan: []byte(countOver30JSON), Epsilon: -1}, http.StatusBadRequest},
		"no plan":        {Request{Tenant: "acme", User: "u"}, http.StatusBadRequest},
		"both plans":     {Request{Tenant: "acme", User: "u", PlanName: "x", Plan: []byte(countOver30JSON)}, http.StatusBadRequest},
		"malformed plan": {Request{Tenant: "acme", User: "u", Plan: []byte(`{"op":"pivot"}`)}, http.StatusBadRequest},
		"non-count plan": {Request{Tenant: "acme", User: "u", Plan: []byte(`{"op":"scan","table":"people"}`)}, http.StatusBadRequest},
	}
	for name, tc := range cases {
		_, serr := svc.Query(ctx, tc.req)
		if serr == nil || serr.Status != tc.want {
			t.Errorf("%s: error = %+v, want status %d", name, serr, tc.want)
		}
	}
	// None of the rejections touched any ledger.
	for _, rep := range svc.Report() {
		if rep.Spent != 0 {
			t.Fatalf("validation rejections spent ε: %+v", rep)
		}
	}
}

// TestQueryProtectedTableKeysDistinctReleases pins the protected relation
// into the cache key: a multi-table plan protecting different relations has
// different influence sets and sensitivities, so the two requests are
// different DP releases and must not collide on one cache entry (nor on one
// derived noise seed).
func TestQueryProtectedTableKeysDistinctReleases(t *testing.T) {
	svc := newTestService(t, nil)
	base := Request{Tenant: "acme", User: "u1", Plan: []byte(joinCountJSON), Epsilon: 0.25, Seed: 7}

	people := base
	people.Protected = "people"
	first := mustQuery(t, svc, people)
	if first.Cached || first.Charged != 0.25 {
		t.Fatalf("first release = %+v, want uncached charge of 0.25", first)
	}

	visits := base
	visits.Protected = "visits"
	second := mustQuery(t, svc, visits)
	if second.Cached || second.Charged != 0.25 {
		t.Fatalf("same plan under a different protected table served from cache: %+v", second)
	}

	// Repeating a protected choice hits that choice's own entry.
	again := mustQuery(t, svc, people)
	if !again.Cached || !reflect.DeepEqual(again.Output, first.Output) {
		t.Fatalf("repeat protected=people = %+v, want cached copy of %v", again, first.Output)
	}
	if rep := svc.Report(); rep[0].Spent != 0.5 {
		t.Fatalf("spend = %v, want 0.5 (two distinct releases, one hit)", rep[0].Spent)
	}
}

// TestQueryRestartReplaysLedgerAndCache is the acceptance scenario: same
// (plan fingerprint, ε, seed) across a server restart returns the
// byte-identical release as a cache hit, and the replayed ledger still
// carries the spend.
func TestQueryRestartReplaysLedgerAndCache(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.json")
	tenant := TenantSpec{Name: "acme", Budget: 1}
	req := countRequest("acme", "u1", 0.25, 42)

	svc1 := newTestService(t, func(c *Config) { c.StatePath = path }, tenant)
	first := mustQuery(t, svc1, req)
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := newTestService(t, func(c *Config) { c.StatePath = path }, tenant)
	second := mustQuery(t, svc2, req)
	if !second.Cached {
		t.Fatal("restart lost the release cache")
	}
	if !reflect.DeepEqual(second.Output, first.Output) {
		t.Fatalf("release changed across restart: %v != %v", second.Output, first.Output)
	}
	if rep := svc2.Report(); rep[0].Spent != 0.25 {
		t.Fatalf("restart lost ledger spend: %v", rep[0].Spent)
	}
	// The restart must also replay *unflushed* journal tails: svc2's charge
	// below is journaled but svc2 is not closed before svc3 opens.
	mustQuery(t, svc2, countRequest("acme", "u1", 0.25, 43))

	svc3 := newTestService(t, func(c *Config) { c.StatePath = path }, tenant)
	if rep := svc3.Report(); rep[0].Spent != 0.5 {
		t.Fatalf("journal-tail replay lost spend: %v, want 0.5", rep[0].Spent)
	}
}

// TestQueryRecomputeIsDeterministic checks the stronger property behind the
// cache: the release is a pure function of (fingerprint, ε, seed), so even a
// cold server with no persisted state recomputes the identical bytes.
func TestQueryRecomputeIsDeterministic(t *testing.T) {
	req := countRequest("acme", "u1", 0.25, 99)
	a := mustQuery(t, newTestService(t, nil), req)
	b := mustQuery(t, newTestService(t, nil), req)
	if !reflect.DeepEqual(a.Output, b.Output) {
		t.Fatalf("cold recompute diverged: %v != %v", a.Output, b.Output)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints diverged: %s != %s", a.Fingerprint, b.Fingerprint)
	}
}

// TestConcurrentTenantsLedgerConservation hammers the service from N tenants
// × M users under -race and asserts exact conservation: every tenant's
// ledger equals 0.25 × (its uncached responses), cache hits spend zero, and
// outputs agree per cache key.
func TestConcurrentTenantsLedgerConservation(t *testing.T) {
	const (
		tenantsN = 3
		usersM   = 4
		perUser  = 4
		eps      = 0.25
	)
	var tenants []TenantSpec
	for i := 0; i < tenantsN; i++ {
		tenants = append(tenants, TenantSpec{Name: fmt.Sprintf("t%d", i)})
	}
	svc := newTestService(t, func(c *Config) {
		c.MaxConcurrent = 4
		c.PerTenantDepth = usersM * perUser // no shedding in this test
	}, tenants...)

	type outcome struct {
		tenant  string
		charged float64
		seed    uint64
		output  []float64
	}
	results := make(chan outcome, tenantsN*usersM*perUser)
	var wg sync.WaitGroup
	for ti := 0; ti < tenantsN; ti++ {
		for ui := 0; ui < usersM; ui++ {
			wg.Add(1)
			go func(ti, ui int) {
				defer wg.Done()
				tenant := fmt.Sprintf("t%d", ti)
				for k := 0; k < perUser; k++ {
					// Seeds overlap across users of one tenant (k) so cache
					// hits happen, and differ across tenants (ti) so each
					// tenant computes its own set.
					seed := uint64(ti*100 + k)
					rel, serr := svc.Query(context.Background(), countRequest(tenant, fmt.Sprintf("u%d", ui), eps, seed))
					if serr != nil {
						t.Errorf("query %s/%d/%d: %+v", tenant, ui, k, serr)
						return
					}
					results <- outcome{tenant: tenant, charged: rel.Charged, seed: seed, output: rel.Output}
				}
			}(ti, ui)
		}
	}
	wg.Wait()
	close(results)

	charged := make(map[string]float64)
	bySeed := make(map[uint64][]float64)
	for out := range results {
		charged[out.tenant] += out.charged
		if prev, ok := bySeed[out.seed]; ok {
			if !reflect.DeepEqual(prev, out.output) {
				t.Fatalf("seed %d released two different outputs: %v vs %v", out.seed, prev, out.output)
			}
		} else {
			bySeed[out.seed] = out.output
		}
	}
	for _, rep := range svc.Report() {
		if rep.Spent != charged[rep.Tenant] {
			t.Errorf("tenant %s ledger %v != sum of admitted charges %v", rep.Tenant, rep.Spent, charged[rep.Tenant])
		}
		var users float64
		for _, u := range rep.Users {
			users += u.Spent
		}
		if users != rep.Spent {
			t.Errorf("tenant %s user spends %v != tenant spend %v", rep.Tenant, users, rep.Spent)
		}
	}
}

// TestAdmissionSoak is the CI soak: sustained load with a tight per-tenant
// depth so requests genuinely shed, then an exact ledger-conservation check.
// Gated on UPA_SERVE_SOAK_DIR, where it leaves its journal as an artifact.
func TestAdmissionSoak(t *testing.T) {
	dir := os.Getenv("UPA_SERVE_SOAK_DIR")
	if dir == "" {
		t.Skip("set UPA_SERVE_SOAK_DIR to run the admission soak")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	const eps = 0.25
	svc := newTestService(t, func(c *Config) {
		c.StatePath = filepath.Join(dir, "soak.json")
		c.MaxConcurrent = 2
		c.PerTenantDepth = 2
	}, TenantSpec{Name: "t0"}, TenantSpec{Name: "t1"})

	var (
		mu         sync.Mutex
		chargedSum float64
		shed, hits int
		admitted   int
		wg         sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				tenant := fmt.Sprintf("t%d", w%2)
				rel, serr := svc.Query(context.Background(), countRequest(tenant, fmt.Sprintf("u%d", w), eps, uint64(k%5)))
				mu.Lock()
				switch {
				case serr != nil && serr.Status == http.StatusTooManyRequests:
					shed++
				case serr != nil:
					t.Errorf("soak query failed: %+v", serr)
				case rel.Cached:
					hits++
				default:
					admitted++
					chargedSum += rel.Charged
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	var ledgerTotal float64
	for _, rep := range svc.Report() {
		ledgerTotal += rep.Spent
	}
	if ledgerTotal != chargedSum {
		t.Fatalf("ledger total %v != sum of admitted charges %v (admitted %d, hits %d, shed %d)",
			ledgerTotal, chargedSum, admitted, hits, shed)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %d admitted, %d cache hits, %d shed, ledger %v", admitted, hits, shed, ledgerTotal)
}

func TestNamedPlanPath(t *testing.T) {
	tables := testTables()
	svc := newTestService(t, func(c *Config) {
		c.NamedPlan = func(name string) (sql.Plan, error) {
			if name != "over30" {
				return nil, fmt.Errorf("no plan %q", name)
			}
			return sql.GroupBy(
				sql.Where(tables["people"], sql.Gt(sql.Col("age"), sql.Lit(sql.Int(30)))),
				nil,
				sql.AggSpec{Name: "n", Func: sql.AggCount},
			), nil
		}
	})
	named := mustQuery(t, svc, Request{Tenant: "acme", User: "u", PlanName: "over30", Epsilon: 0.25, Seed: 7})
	adhoc := mustQuery(t, svc, countRequest("acme", "u", 0.25, 7))
	// The named and ad-hoc forms are the same plan, so the second is a
	// cache hit with identical bytes.
	if !adhoc.Cached || !reflect.DeepEqual(named.Output, adhoc.Output) {
		t.Fatalf("named/ad-hoc divergence: %+v vs %+v", named, adhoc)
	}
	if _, serr := svc.Query(context.Background(), Request{Tenant: "acme", User: "u", PlanName: "ghost"}); serr == nil || serr.Status != http.StatusBadRequest {
		t.Fatalf("unknown named plan: %+v", serr)
	}
}
