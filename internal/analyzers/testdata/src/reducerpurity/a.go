// Package reducerpurity is golden-test input: it exercises every positive
// and negative case of the reducerpurity analyzer. It is never built by the
// normal toolchain (testdata is ignored) and need not be runnable.
package reducerpurity

import (
	"fmt"
	"math/rand"
	"time"
)

type Pair struct {
	Key   string
	Value int
}

// The sink functions only need the right names; bodies are irrelevant.
func ReduceByKey(d []Pair, f func(int, int) int) []Pair { return d }
func Reduce(d []int, f func(int, int) int) int          { return 0 }
func Aggregate(d []int, zero int, seq func(int, int) int, comb func(int, int) int) int {
	return 0
}
func CombineByKey(d []Pair, create func(int) int, mergeValue func(int, int) int, mergeCombiners func(int, int) int) []Pair {
	return d
}
func ReduceSlice(xs []int, f func(int, int) int) (int, bool) { return 0, false }
func Unrelated(f func(int, int) int)                         {}

var globalCounter int

func pureUses(d []Pair, xs []int) {
	// Pure reducers: locals, params, arithmetic only.
	ReduceByKey(d, func(a, b int) int { return a + b })
	Reduce(xs, func(a, b int) int {
		acc := a // local of the literal: fine
		acc += b
		return acc
	})
	// Named (non-literal) reducers are out of scope for this analyzer.
	Unrelated(func(a, b int) int { globalCounter++; return a + b })
}

func capturedMutation(d []Pair, xs []int) {
	calls := 0
	ReduceByKey(d, func(a, b int) int {
		calls++ // want `mutates captured variable "calls"`
		return a + b
	})
	var sums []int
	_, _ = ReduceSlice(xs, func(a, b int) int {
		sums = append(sums, a) // want `mutates captured variable "sums"`
		return a + b
	})
	Aggregate(xs, 0,
		func(acc, v int) int { return acc + v },
		func(a, b int) int {
			globalCounter = a // want `mutates captured variable "globalCounter"`
			return a + b
		})
}

func nondeterminism(d []Pair) {
	ReduceByKey(d, func(a, b int) int {
		if time.Now().Unix()%2 == 0 { // want `calls time.Now`
			return a
		}
		return b
	})
	ReduceByKey(d, func(a, b int) int {
		return a + rand.Intn(b+1) // want `calls rand.Intn \(global nondeterministic source\)`
	})
	// A locally seeded generator is deterministic and allowed.
	ReduceByKey(d, func(a, b int) int {
		r := rand.New(rand.NewSource(1))
		return a + r.Intn(b+1)
	})
}

func ioInReducer(d []Pair) {
	ReduceByKey(d, func(a, b int) int {
		fmt.Println(a, b) // want `performs I/O via fmt.Println`
		return a + b
	})
	ReduceByKey(d, func(a, b int) int {
		go func() { _ = a }() // want `starts a goroutine`
		return a + b
	})
}

func mapOrder(d []Pair, weights map[string]int) {
	ReduceByKey(d, func(a, b int) int {
		out := 0
		for _, w := range weights {
			out = out - w // want `writes to "out" under map iteration order`
		}
		return a + b + out
	})
	// Reading a map by key inside a slice range is fine.
	ReduceByKey(d, func(a, b int) int {
		keys := []string{"x", "y"}
		out := 0
		for _, k := range keys {
			out += weights[k]
		}
		return a + b + out
	})
}

func suppressed(d []Pair) {
	hits := 0
	ReduceByKey(d, func(a, b int) int {
		hits++ //upa:allow(reducerpurity) test-only instrumentation counter, reset between runs
		return a + b
	})
	// An annotation without a justification suppresses nothing: both the
	// violation and the malformed annotation are reported.
	ReduceByKey(d, func(a, b int) int {
		hits++ //upa:allow(reducerpurity) // want `mutates captured variable "hits"` `requires a justification`
		return a + b
	})
}
