package chaos

import "fmt"

// ErrNoSpace marks an injected out-of-space failure. It wraps ErrInjected,
// so every retry layer already treats it as transient; callers that want to
// degrade differently on ENOSPC (the spill store falls back to in-memory
// retention) can still distinguish it with errors.Is.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrInjected)

// The disk-fault decisions below mirror the task-fault model: each is a pure
// function of (seed, fault kind, site, file, attempt), where site names the
// storage layer consulting the injector and file is the stable file name
// (spill files are deterministically named, so the same logical write or
// read draws the same fate on every run). attempt counts opens/creates of
// that file at that site, so a retry re-rolls rather than hitting an
// identical verdict forever — exactly how a transient EIO behaves.

// DiskWriteError reports whether creating `file` for write at `site` should
// fail outright on the attempt-th try.
func (j *Injector) DiskWriteError(site, file string, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decideFile(kindDiskWriteError, site, file, attempt, j.policy.DiskWriteErrorRate) {
		j.diskWriteErrors.Add(1)
		return true
	}
	return false
}

// DiskENOSPC reports whether the attempt-th write of `file` at `site` should
// run out of space partway through.
func (j *Injector) DiskENOSPC(site, file string, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decideFile(kindDiskENOSPC, site, file, attempt, j.policy.DiskENOSPCRate) {
		j.diskENOSPCs.Add(1)
		return true
	}
	return false
}

// DiskTornWrite reports whether the attempt-th write of `file` at `site`
// should silently lose its tail bytes while still reporting success — the
// torn-write failure mode that only end-to-end checksums catch.
func (j *Injector) DiskTornWrite(site, file string, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decideFile(kindDiskTornWrite, site, file, attempt, j.policy.DiskTornWriteRate) {
		j.diskTornWrites.Add(1)
		return true
	}
	return false
}

// DiskRenameError reports whether the attempt-th rename publishing `file` at
// `site` should fail.
func (j *Injector) DiskRenameError(site, file string, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decideFile(kindDiskRenameError, site, file, attempt, j.policy.DiskRenameErrorRate) {
		j.diskRenameErrors.Add(1)
		return true
	}
	return false
}

// DiskReadError reports whether opening `file` for read at `site` should
// fail on the attempt-th try.
func (j *Injector) DiskReadError(site, file string, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decideFile(kindDiskReadError, site, file, attempt, j.policy.DiskReadErrorRate) {
		j.diskReadErrors.Add(1)
		return true
	}
	return false
}

// DiskCorruption reports whether the attempt-th read of `file` at `site`
// should see one byte of the stream flipped. The corruption is injected in
// flight, not on disk, so a later attempt reads the file clean.
func (j *Injector) DiskCorruption(site, file string, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decideFile(kindDiskCorruption, site, file, attempt, j.policy.DiskCorruptionRate) {
		j.diskCorruptions.Add(1)
		return true
	}
	return false
}

// DiskVariate returns a deterministic uniform 64-bit value at the given
// coordinates, independent of every fault decision's hash stream. The fault
// injectors use it to derive positions — which byte to flip, how many bytes
// an ENOSPC admits — so fault *placement* is as reproducible as fault
// *occurrence*.
func (j *Injector) DiskVariate(site, file string, attempt int) uint64 {
	if j == nil {
		return 0
	}
	return j.fileHash(kindDiskVariate, site, file, attempt)
}

// decideFile is decide with a file-name coordinate mixed in.
func (j *Injector) decideFile(kind uint64, site, file string, attempt int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	return uniform(j.fileHash(kind, site, file, attempt)) < rate
}

func (j *Injector) fileHash(kind uint64, site, file string, attempt int) uint64 {
	h := j.policy.Seed ^ mix64(kind^0x9e3779b97f4a7c15)
	h = mix64(h ^ hashString(site))
	h = mix64(h ^ hashString(file))
	return mix64(h ^ uint64(attempt))
}
