// Package chaos is the repository's deterministic fault-injection and
// retry-policy layer. UPA's accuracy and privacy arguments assume the
// substrate recovers from task failures without changing query output —
// Spark gets this from lineage-based fault tolerance; our in-process engine
// gets it from pure task closures plus the retry machinery this package
// configures. Following DPBench's discipline of evaluating DP systems under
// principled, repeatable conditions, every injection decision here is a pure
// function of a seed and the decision's stable coordinates (site label, task
// index, attempt number), never of goroutine scheduling order: the same seed
// reproduces the same fault pattern on every run, which is what makes the
// chaos soak tests meaningful rather than flaky.
//
// The package is a leaf: it imports only the standard library, so both the
// mapreduce engine and the jobgraph scheduler (which must not know about
// each other) can share one Injector and one RetryPolicy.
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// ErrInjected marks an artificial failure produced by an Injector. The retry
// layers treat it as transient: task attempts failing with it are retried
// from lineage, shuffle fetches failing with it are re-fetched.
var ErrInjected = errors.New("chaos: injected fault")

// Policy configures what an Injector breaks and how often. All rates are
// probabilities in [0, 1) evaluated independently per decision; a zero
// Policy injects nothing.
type Policy struct {
	// Seed drives every injection decision. Two Injectors with the same
	// Policy make identical decisions at identical (site, task, attempt)
	// coordinates regardless of execution interleaving.
	Seed uint64
	// TaskFaultRate is the probability that one task attempt fails before
	// running (the seeded generalization of the legacy counted
	// InjectFaults hook).
	TaskFaultRate float64
	// StragglerRate is the probability that one task attempt is delayed by
	// StragglerDelay before running — the straggler injection that
	// exercises speculation and deadline handling.
	StragglerRate  float64
	StragglerDelay time.Duration
	// ShuffleErrorRate is the probability that one shuffle materialization
	// attempt fails transiently before any data moves, like a lost fetch
	// from a remote shuffle service.
	ShuffleErrorRate float64
	// SlotLossRate is the probability that one worker slot of a task pool
	// is lost for the duration of that pool's job (the worker exits early
	// and its share of tasks redistributes to the survivors). Slot 0 is
	// never lost, so every job keeps making progress.
	SlotLossRate float64

	// Disk-fault rates drive the seeded storage-fault model injected under
	// the spill store's filesystem indirection (internal/mapreduce). Each
	// decision is a pure hash of (seed, fault kind, site, file, attempt),
	// so a given fault fires at the same file open/create on every run.
	//
	// DiskWriteErrorRate fails a file creation outright (EIO on open for
	// write). DiskENOSPCRate lets a write start, then fails it partway with
	// ErrNoSpace, leaving a partial temp file behind. DiskTornWriteRate is
	// the nasty one: the write silently drops its tail bytes yet reports
	// success, so only end-to-end checksums/record counts catch it at read
	// time. DiskRenameErrorRate fails the atomic publish rename.
	// DiskReadErrorRate fails opening a file for read (EIO).
	// DiskCorruptionRate flips one byte of the stream read back — the
	// on-disk file stays intact, modeling a transient controller/DMA error.
	DiskWriteErrorRate  float64
	DiskENOSPCRate      float64
	DiskTornWriteRate   float64
	DiskRenameErrorRate float64
	DiskReadErrorRate   float64
	DiskCorruptionRate  float64
}

// Validate checks the policy's rates.
func (p Policy) Validate() error {
	for _, r := range []struct {
		name string
		rate float64
	}{
		{"TaskFaultRate", p.TaskFaultRate},
		{"StragglerRate", p.StragglerRate},
		{"ShuffleErrorRate", p.ShuffleErrorRate},
		{"SlotLossRate", p.SlotLossRate},
		{"DiskWriteErrorRate", p.DiskWriteErrorRate},
		{"DiskENOSPCRate", p.DiskENOSPCRate},
		{"DiskTornWriteRate", p.DiskTornWriteRate},
		{"DiskRenameErrorRate", p.DiskRenameErrorRate},
		{"DiskReadErrorRate", p.DiskReadErrorRate},
		{"DiskCorruptionRate", p.DiskCorruptionRate},
	} {
		if r.rate < 0 || r.rate >= 1 {
			return fmt.Errorf("chaos: %s %v outside [0, 1)", r.name, r.rate)
		}
	}
	if p.StragglerDelay < 0 {
		return fmt.Errorf("chaos: negative StragglerDelay %v", p.StragglerDelay)
	}
	return nil
}

// Counters snapshots what an Injector has broken so far.
type Counters struct {
	Faults        int64
	Stragglers    int64
	ShuffleErrors int64
	SlotsLost     int64
	// CountedFaults is how many of Faults came from the legacy counted
	// queue (AddCountedFaults) rather than the seeded rates.
	CountedFaults int64
	// Disk-fault counters, one per injected storage failure mode.
	DiskWriteErrors  int64
	DiskENOSPCs      int64
	DiskTornWrites   int64
	DiskRenameErrors int64
	DiskReadErrors   int64
	DiskCorruptions  int64
}

// Injector makes deterministic, seeded fault-injection decisions. All
// methods are safe for concurrent use and safe on a nil receiver (a nil
// Injector injects nothing), so call sites need no guards.
type Injector struct {
	policy Policy

	// counted is the legacy InjectFaults(n) queue: the next counted task
	// attempts fail regardless of the seeded rates. Counted faults are
	// consumed in claim order, so they are deterministic only under a
	// deterministic task schedule — exactly the contract the old engine
	// hook had.
	counted atomic.Int64

	faults        atomic.Int64
	stragglers    atomic.Int64
	shuffleErrors atomic.Int64
	slotsLost     atomic.Int64
	countedTaken  atomic.Int64

	diskWriteErrors  atomic.Int64
	diskENOSPCs      atomic.Int64
	diskTornWrites   atomic.Int64
	diskRenameErrors atomic.Int64
	diskReadErrors   atomic.Int64
	diskCorruptions  atomic.Int64
}

// New builds an Injector. An invalid policy is clamped to inject nothing
// rather than panicking mid-job; validate policies at the boundary with
// Policy.Validate when the error matters.
func New(policy Policy) *Injector {
	if policy.Validate() != nil {
		policy = Policy{}
	}
	return &Injector{policy: policy}
}

// Policy returns the injector's configuration.
func (j *Injector) Policy() Policy {
	if j == nil {
		return Policy{}
	}
	return j.policy
}

// AddCountedFaults arranges for the next n task attempts to fail, ahead of
// any seeded decisions — the compatibility path for the engine's legacy
// InjectFaults hook.
func (j *Injector) AddCountedFaults(n int) {
	if j == nil || n <= 0 {
		return
	}
	j.counted.Add(int64(n))
}

// takeCounted consumes one counted fault if any are pending.
func (j *Injector) takeCounted() bool {
	for {
		c := j.counted.Load()
		if c <= 0 {
			return false
		}
		if j.counted.CompareAndSwap(c, c-1) {
			return true
		}
	}
}

// Decision kinds keep the per-rate hash streams independent: the same
// (site, task, attempt) must be allowed to straggle without also faulting.
const (
	kindTaskFault uint64 = 1 + iota
	kindStraggler
	kindShuffleError
	kindSlotLoss
	kindStageFault
	kindDiskWriteError
	kindDiskENOSPC
	kindDiskTornWrite
	kindDiskRenameError
	kindDiskReadError
	kindDiskCorruption
	kindDiskVariate
)

// TaskFault reports whether the attempt-th try of task `task` at `site`
// should fail before running. Counted faults (AddCountedFaults) are consumed
// first; otherwise the decision is a seeded hash of the coordinates.
func (j *Injector) TaskFault(site string, task, attempt int) bool {
	if j == nil {
		return false
	}
	if j.takeCounted() {
		j.faults.Add(1)
		j.countedTaken.Add(1)
		return true
	}
	if j.decide(kindTaskFault, site, task, attempt, j.policy.TaskFaultRate) {
		j.faults.Add(1)
		return true
	}
	return false
}

// StageFault reports whether the attempt-th try of stage task `task` at
// `site` should fail before running. Unlike TaskFault it never consumes the
// legacy counted queue — AddCountedFaults targets engine task attempts, and
// a stage scheduler sharing the injector must not starve the engine of them
// — and it draws from its own hash stream, so stage- and engine-level
// decisions at coincident coordinates stay independent.
func (j *Injector) StageFault(site string, task, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decide(kindStageFault, site, task, attempt, j.policy.TaskFaultRate) {
		j.faults.Add(1)
		return true
	}
	return false
}

// TaskDelay returns the injected straggler delay for one task attempt, or
// zero.
func (j *Injector) TaskDelay(site string, task, attempt int) time.Duration {
	if j == nil || j.policy.StragglerDelay <= 0 {
		return 0
	}
	if j.decide(kindStraggler, site, task, attempt, j.policy.StragglerRate) {
		j.stragglers.Add(1)
		return j.policy.StragglerDelay
	}
	return 0
}

// ShuffleError reports whether the attempt-th materialization of the shuffle
// at `site` should fail transiently before any data moves.
func (j *Injector) ShuffleError(site string, attempt int) bool {
	if j == nil {
		return false
	}
	if j.decide(kindShuffleError, site, 0, attempt, j.policy.ShuffleErrorRate) {
		j.shuffleErrors.Add(1)
		return true
	}
	return false
}

// SlotLost reports whether worker slot `slot` of the pool running `site`
// is lost. Slot 0 is never lost so the job keeps making progress.
func (j *Injector) SlotLost(site string, slot int) bool {
	if j == nil || slot == 0 {
		return false
	}
	if j.decide(kindSlotLoss, site, slot, 0, j.policy.SlotLossRate) {
		j.slotsLost.Add(1)
		return true
	}
	return false
}

// Snapshot returns the injector's counters.
func (j *Injector) Snapshot() Counters {
	if j == nil {
		return Counters{}
	}
	return Counters{
		Faults:           j.faults.Load(),
		Stragglers:       j.stragglers.Load(),
		ShuffleErrors:    j.shuffleErrors.Load(),
		SlotsLost:        j.slotsLost.Load(),
		CountedFaults:    j.countedTaken.Load(),
		DiskWriteErrors:  j.diskWriteErrors.Load(),
		DiskENOSPCs:      j.diskENOSPCs.Load(),
		DiskTornWrites:   j.diskTornWrites.Load(),
		DiskRenameErrors: j.diskRenameErrors.Load(),
		DiskReadErrors:   j.diskReadErrors.Load(),
		DiskCorruptions:  j.diskCorruptions.Load(),
	}
}

// decide hashes the decision coordinates under the seed and compares the
// resulting uniform variate against rate.
func (j *Injector) decide(kind uint64, site string, a, b int, rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := j.policy.Seed ^ mix64(kind^0x9e3779b97f4a7c15)
	h = mix64(h ^ hashString(site))
	h = mix64(h ^ uint64(a))
	h = mix64(h ^ uint64(b))
	return uniform(h) < rate
}

// uniform maps 64 hash bits onto [0, 1) using the top 53 bits.
func uniform(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// hashString is FNV-1a, inlined to keep the package dependency-free.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// mix64 is the splitmix64 finalizer — the same mixer the stats package uses,
// duplicated here so chaos stays a leaf package.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
