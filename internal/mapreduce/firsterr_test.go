package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestRunTasksMixedErrorTypes is the regression test for the first-error
// slot: two workers failing simultaneously with *different* concrete error
// types. The old atomic.Value-based slot panicked here ("compare and swap of
// inconsistently typed value") because CompareAndSwap demands every stored
// value share one concrete type, which unrelated application errors do not.
func TestRunTasksMixedErrorTypes(t *testing.T) {
	errPlain := errors.New("plain failure")
	eng := NewEngine(WithWorkers(2))
	// Both tasks rendezvous before failing, so both workers hold an error at
	// the same time and both report it — one *errors.errorString, one
	// *fmt.wrapError.
	var arrived sync.WaitGroup
	arrived.Add(2)
	err := eng.runTasks(context.Background(), "test:mixed-errors", 2, func(_ context.Context, i int) error {
		arrived.Done()
		arrived.Wait()
		if i == 0 {
			return errPlain
		}
		return fmt.Errorf("wrapped failure: %w", errPlain)
	})
	if !errors.Is(err, errPlain) {
		t.Fatalf("runTasks = %v, want one of the task errors", err)
	}
}

// TestRunTasksErrorTypeRaceWithCancel races task failures against context
// cancellation: workers observing ctx.Err() report context.Canceled while
// workers inside tasks report wrapped application errors, again mixing
// concrete types in the first-error slot. Run under -race this also checks
// the slot itself is data-race-free.
func TestRunTasksErrorTypeRaceWithCancel(t *testing.T) {
	errBoom := errors.New("boom")
	for round := 0; round < 20; round++ {
		eng := NewEngine(WithWorkers(4))
		ctx, cancel := context.WithCancel(context.Background())
		err := eng.runTasks(ctx, "test:cancel-race", 64, func(_ context.Context, i int) error {
			cancel()
			return fmt.Errorf("task %d: %w", i, errBoom)
		})
		cancel()
		if err == nil {
			t.Fatalf("round %d: runTasks returned nil despite failures and cancellation", round)
		}
		if !errors.Is(err, errBoom) && !errors.Is(err, context.Canceled) {
			t.Fatalf("round %d: runTasks = %v, want a task error or context.Canceled", round, err)
		}
	}
}

// TestRunTasksReportsFirstErrorOnly checks the slot keeps the earliest
// report: once an error is held, later ones are dropped rather than
// overwriting it.
func TestRunTasksReportsFirstErrorOnly(t *testing.T) {
	var slot firstErrSlot
	first := errors.New("first")
	slot.set(nil) // ignored
	slot.set(first)
	slot.set(errors.New("second"))
	if got := slot.get(); got != first {
		t.Fatalf("slot.get() = %v, want the first error", got)
	}
}
