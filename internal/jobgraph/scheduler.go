package jobgraph

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"upa/internal/chaos"
)

// StageContext collects a running stage's span counters. Its methods are
// safe for concurrent use by the partitions of a partitioned stage.
type StageContext struct {
	records            atomic.Int64
	shuffledRecords    atomic.Int64
	shuffleBytes       atomic.Int64
	reduceOps          atomic.Int64
	cacheHits          atomic.Int64
	recordsPreCombine  atomic.Int64
	recordsPostCombine atomic.Int64
	spilledBytes       atomic.Int64
	spillReads         atomic.Int64
	spillCorruptions   atomic.Int64
	spillRecomputes    atomic.Int64
}

// AddRecords reports n input records processed by the stage. Span counters
// are operator-visible telemetry, so every Add* method is a dpflow sink:
// pre-noise values must never be folded into them.
//
//upa:dpsink
func (sc *StageContext) AddRecords(n int64) { sc.records.Add(n) }

// AddShuffle reports a data exchange of records rows totalling bytes.
//
//upa:dpsink
func (sc *StageContext) AddShuffle(records, bytes int64) {
	sc.shuffledRecords.Add(records)
	sc.shuffleBytes.Add(bytes)
}

// AddReduceOps reports n reduce operations performed by the stage.
//
//upa:dpsink
func (sc *StageContext) AddReduceOps(n int64) { sc.reduceOps.Add(n) }

// AddCacheHits reports n reduction-cache hits taken by the stage.
//
//upa:dpsink
func (sc *StageContext) AddCacheHits(n int64) { sc.cacheHits.Add(n) }

// AddSpill reports out-of-core traffic attributed to the stage: bytes
// written to spill files and spill-file reads streaming them back.
//
//upa:dpsink
func (sc *StageContext) AddSpill(bytes, reads int64) {
	sc.spilledBytes.Add(bytes)
	sc.spillReads.Add(reads)
}

// AddSpillRecovery reports storage-fault handling attributed to the stage:
// spill reads that failed their integrity checks and partitions
// re-materialized from lineage to heal them.
//
//upa:dpsink
func (sc *StageContext) AddSpillRecovery(corruptions, recomputes int64) {
	sc.spillCorruptions.Add(corruptions)
	sc.spillRecomputes.Add(recomputes)
}

// AddCombine reports one map-side combine pass: pre records entered the
// combiners and post combined records went on to the shuffle. The eliminated
// difference lands in the span's RecordsCombined.
//
//upa:dpsink
func (sc *StageContext) AddCombine(pre, post int64) {
	sc.recordsPreCombine.Add(pre)
	sc.recordsPostCombine.Add(post)
}

// snapshot copies the counters into span. Losing speculative attempts may
// keep counting after the snapshot; their updates are discarded along with
// their results.
func (sc *StageContext) snapshot(span *Span) {
	span.Records = sc.records.Load()
	span.ShuffledRecords = sc.shuffledRecords.Load()
	span.ShuffleBytes = sc.shuffleBytes.Load()
	span.ReduceOps = sc.reduceOps.Load()
	span.CacheHits = sc.cacheHits.Load()
	span.RecordsPreCombine = sc.recordsPreCombine.Load()
	span.RecordsPostCombine = sc.recordsPostCombine.Load()
	span.RecordsCombined = span.RecordsPreCombine - span.RecordsPostCombine
	span.SpilledBytes = sc.spilledBytes.Load()
	span.SpillReads = sc.spillReads.Load()
	span.SpillCorruptions = sc.spillCorruptions.Load()
	span.SpillRecomputes = sc.spillRecomputes.Load()
}

// Run validates the graph and executes it: every stage starts as soon as all
// its dependencies have completed, so independent stages overlap on the
// shared slot pool. The first stage error (or a context cancellation) stops
// the scheduler from starting further stages, waits for in-flight stages to
// drain, and is returned. Spans are returned in declaration order even on
// failure; stages that never started have zero times.
func (g *Graph) Run(ctx context.Context) ([]Span, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(g.stages)
	spans := make([]Span, n)
	indegree := make([]int, n)
	dependents := make([][]int, n)
	for i, s := range g.stages {
		spans[i].Stage = s.name
		spans[i].Deps = append([]string{}, s.deps...)
		indegree[i] = len(s.deps)
		for _, d := range s.deps {
			j := g.index[d]
			dependents[j] = append(dependents[j], i)
		}
	}

	slots := make(chan struct{}, g.slots)
	// One retry budget per Run: stage retries and speculative launches all
	// draw from it, so a systemically sick release fails fast instead of
	// every stage burning its full attempt allowance.
	budget := g.policy.NewBudget()
	type completion struct {
		stage int
		err   error
	}
	done := make(chan completion)

	var firstErr error
	running := 0
	start := func(i int) {
		running++
		go func() {
			spans[i].Start = g.now()
			err := g.runStage(runCtx, i, &spans[i], slots, budget)
			spans[i].End = g.now()
			if err != nil {
				spans[i].Err = err.Error()
			}
			done <- completion{stage: i, err: err}
		}()
	}

	for i, deg := range indegree {
		if deg == 0 {
			start(i)
		}
	}
	for running > 0 {
		c := <-done
		running--
		if c.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobgraph: %s: stage %q: %w", g.name, g.stages[c.stage].name, c.err)
				cancel() // abort in-flight stages; no new ones start below
			}
			continue
		}
		if firstErr != nil {
			continue
		}
		for _, dep := range dependents[c.stage] {
			indegree[dep]--
			if indegree[dep] == 0 {
				start(dep)
			}
		}
	}
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			firstErr = fmt.Errorf("jobgraph: %s: %w", g.name, err)
		}
	}
	return spans, firstErr
}

// retryable classifies a stage-task failure: chaos-injected faults and
// per-attempt deadline expiries (while the surrounding context is still
// live) are transient and re-run; everything else — application errors,
// cancellation of the job itself — is terminal.
func retryable(err error, live context.Context) bool {
	if errors.Is(err, chaos.ErrInjected) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded) && live.Err() == nil
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runStage executes one stage, occupying a slot per task.
func (g *Graph) runStage(ctx context.Context, i int, span *Span, slots chan struct{}, budget *chaos.Budget) error {
	s := g.stages[i]
	sc := &StageContext{}
	// Check cancellation before acquiring a slot: with both a free slot and
	// a cancelled context the select below would pick at random.
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.parts == 0 {
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		defer func() { <-slots }()
		err := g.runPlain(ctx, s, span, sc, budget)
		sc.snapshot(span)
		return err
	}
	return g.runPartitioned(ctx, s, span, sc, slots, budget)
}

// runPlain runs a single-task stage under the retry policy: injected faults
// and attempt-deadline expiries are retried with backoff (drawing on the
// per-Run budget), everything else is terminal. The slot is held across
// retries — a retrying stage is still occupying its executor.
func (g *Graph) runPlain(ctx context.Context, s *stage, span *Span, sc *StageContext, budget *chaos.Budget) error {
	site := g.name + "/" + s.name
	maxAttempts := g.policy.Attempts()
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 1 {
			if !budget.Take() {
				return fmt.Errorf("%s: retry budget exhausted after %d attempts: %w", site, attempt-1, lastErr)
			}
			span.Retries++
			if d := g.policy.Backoff(site, 0, attempt-1); d > 0 {
				span.BackoffNanos += int64(d)
				if !sleepCtx(ctx, d) {
					return ctx.Err()
				}
			}
		}
		span.Attempts = attempt
		if g.inj.StageFault(site, 0, attempt) {
			span.TaskFaults++
			lastErr = fmt.Errorf("%w: %s attempt %d", chaos.ErrInjected, site, attempt)
			continue
		}
		if d := g.inj.TaskDelay(site, 0, attempt); d > 0 {
			if !sleepCtx(ctx, d) {
				return ctx.Err()
			}
		}
		attemptCtx, cancel := g.attemptContext(ctx)
		err := s.fn(attemptCtx, sc)
		cancel()
		if err == nil {
			return nil
		}
		if !retryable(err, ctx) {
			return err
		}
		if errors.Is(err, chaos.ErrInjected) {
			span.TaskFaults++
		}
		lastErr = err
	}
	return fmt.Errorf("%s: gave up after %d attempts: %w", site, maxAttempts, lastErr)
}

// attemptContext bounds one attempt with the policy's per-attempt deadline.
func (g *Graph) attemptContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := g.policy.TaskDeadline; d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}

// runPartitioned schedules the stage's partitions on the slot pool. With
// speculation enabled, partitions still running specAfter after the stage
// started get one duplicate attempt; the first attempt to finish a partition
// claims it and applies its commit, and the loser's result is discarded.
// Retryable failures (injected faults, attempt deadlines) re-launch the
// partition with backoff, drawing on the per-Run retry budget — the same
// budget speculative launches spend. Losing attempts may briefly outlive the
// stage — they observe the cancelled stage context, exit, and their sends
// land in the buffered results channel.
//
// Commit discipline: the claimed CAS elects at most one winner per
// partition, and the commit mutex guarantees no commit starts after the
// stage has finished — without it, a speculative twin could win the CAS
// after the stage already returned an error and mutate caller-visible state
// behind the scheduler's back.
func (g *Graph) runPartitioned(ctx context.Context, s *stage, span *Span, sc *StageContext, slots chan struct{}, budget *chaos.Budget) error {
	stageCtx, cancel := context.WithCancel(ctx)
	defer cancel() // unblocks stragglers once the stage has completed

	site := g.name + "/" + s.name
	maxAttempts := g.policy.Attempts()

	type outcome struct {
		part    int
		attempt int
		err     error
		won     bool
	}
	// Buffered for the maximum possible attempts (retries up to the attempt
	// allowance plus one speculative twin per partition) so late finishers
	// never block on send.
	results := make(chan outcome, s.parts*(maxAttempts+1))
	claimed := make([]atomic.Bool, s.parts)
	spawned := make([]atomic.Bool, s.parts) // speculative attempt launched?
	var attempts, speculative, retries, taskFaults, backoffNanos atomic.Int64

	// commitMu serializes winner commits against stage completion: finish
	// marks the stage aborted under the mutex, so once finish returns no
	// commit can start, and any commit already in flight has completed.
	var commitMu sync.Mutex
	aborted := false

	launch := func(part, attempt int) {
		go func() {
			if err := stageCtx.Err(); err != nil {
				results <- outcome{part: part, attempt: attempt, err: err}
				return
			}
			select {
			case slots <- struct{}{}:
			case <-stageCtx.Done():
				results <- outcome{part: part, attempt: attempt, err: stageCtx.Err()}
				return
			}
			defer func() { <-slots }()
			if claimed[part].Load() { // twin finished while we queued
				results <- outcome{part: part, attempt: attempt}
				return
			}
			attempts.Add(1)
			if g.inj.StageFault(site, part, attempt) {
				taskFaults.Add(1)
				results <- outcome{part: part, attempt: attempt,
					err: fmt.Errorf("%w: %s partition %d attempt %d", chaos.ErrInjected, site, part, attempt)}
				return
			}
			if d := g.inj.TaskDelay(site, part, attempt); d > 0 {
				if !sleepCtx(stageCtx, d) {
					results <- outcome{part: part, attempt: attempt, err: stageCtx.Err()}
					return
				}
			}
			attemptCtx, cancelAttempt := g.attemptContext(stageCtx)
			commit, err := s.partFn(attemptCtx, sc, part)
			cancelAttempt()
			if err != nil {
				if errors.Is(err, chaos.ErrInjected) {
					taskFaults.Add(1)
				}
				results <- outcome{part: part, attempt: attempt, err: err}
				return
			}
			if claimed[part].CompareAndSwap(false, true) {
				commitMu.Lock()
				if !aborted && commit != nil {
					commit()
				}
				commitMu.Unlock()
				results <- outcome{part: part, attempt: attempt, won: true}
				return
			}
			results <- outcome{part: part, attempt: attempt} // lost to the twin
		}()
	}

	// attemptSeq, outstanding, and lastErr are touched only by this scheduler
	// goroutine. attemptSeq numbers every launch of a partition (retries and
	// speculative twins alike) so chaos coordinates stay unique; outstanding
	// tracks in-flight attempts so a twin's failure is held until its sibling
	// also resolves.
	attemptSeq := make([]int, s.parts)
	outstanding := make([]int, s.parts)
	for p := 0; p < s.parts; p++ {
		attemptSeq[p] = 1
		outstanding[p] = 1
		launch(p, 1)
	}

	relaunch := func(part int) {
		retries.Add(1)
		attemptSeq[part]++
		attempt := attemptSeq[part]
		outstanding[part]++
		wait := g.policy.Backoff(site, part, attempt-1)
		if wait > 0 {
			backoffNanos.Add(int64(wait))
			go func() {
				if !sleepCtx(stageCtx, wait) {
					results <- outcome{part: part, attempt: attempt, err: stageCtx.Err()}
					return
				}
				launch(part, attempt)
			}()
			return
		}
		launch(part, attempt)
	}

	var specC <-chan time.Time
	if g.specAfter > 0 {
		specTimer := time.NewTimer(g.specAfter)
		defer specTimer.Stop()
		specC = specTimer.C
	}

	finish := func(err error) error {
		commitMu.Lock()
		aborted = true
		commitMu.Unlock()
		sc.snapshot(span)
		span.Attempts = int(attempts.Load())
		span.Speculative = int(speculative.Load())
		span.Retries = retries.Load()
		span.TaskFaults = taskFaults.Load()
		span.BackoffNanos = backoffNanos.Load()
		return err
	}
	won := 0
	for won < s.parts {
		select {
		case r := <-results:
			outstanding[r.part]--
			switch {
			case r.won:
				won++
			case claimed[r.part].Load() || r.err == nil:
				// Losing twin of an already-won partition: ignore.
			case outstanding[r.part] > 0:
				// A sibling attempt of the same partition is still in
				// flight; let it resolve the partition before reacting.
			case retryable(r.err, stageCtx) && attemptSeq[r.part] < maxAttempts:
				if !budget.Take() {
					return finish(fmt.Errorf("partition %d: retry budget exhausted after attempt %d: %w",
						r.part, attemptSeq[r.part], r.err))
				}
				relaunch(r.part)
			default:
				// Terminal: an application error, a cancelled job, or a
				// partition out of attempts.
				return finish(fmt.Errorf("partition %d (attempt %d of %d): %w",
					r.part, attemptSeq[r.part], maxAttempts, r.err))
			}
		case <-specC:
			for p := 0; p < s.parts; p++ {
				if claimed[p].Load() || !spawned[p].CompareAndSwap(false, true) {
					continue
				}
				// Speculative launches spend the shared retry budget too; a
				// job out of budget stops hedging.
				if !budget.Take() {
					spawned[p].Store(false)
					break
				}
				speculative.Add(1)
				attemptSeq[p]++
				outstanding[p]++
				launch(p, attemptSeq[p])
			}
		case <-stageCtx.Done():
			return finish(stageCtx.Err())
		}
	}
	return finish(nil)
}
