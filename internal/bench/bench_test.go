package bench

import (
	"math"
	"strings"
	"testing"

	"upa/internal/cluster"
)

// smallConfig keeps harness tests fast.
func smallConfig() Config {
	return Config{
		Lineitems:  2000,
		LSRecords:  1500,
		Skew:       0.3,
		Seed:       5,
		SampleSize: 200,
		Epsilon:    0.1,
		Trials:     1,
		Additions:  200,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := smallConfig()
	bad.Lineitems = 10
	if _, err := Table2(bad); err == nil {
		t.Error("tiny Lineitems accepted")
	}
	bad = smallConfig()
	bad.Trials = 0
	if _, err := Fig2a(bad); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	upaCount, flexCount := 0, 0
	for _, r := range rows {
		if r.UPASupported {
			upaCount++
		}
		if r.FLEXSupported {
			flexCount++
		}
	}
	if upaCount != 9 {
		t.Errorf("UPA supports %d queries, want 9", upaCount)
	}
	if flexCount != 5 {
		t.Errorf("FLEX supports %d queries, want 5", flexCount)
	}
	text := RenderTable2(rows)
	for _, want := range []string{"TPCH21", "KMeans", "Machine Learning", "yes", "no"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	rows, err := Fig2a(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	byName := map[string]SensitivityRow{}
	for _, r := range rows {
		byName[r.Query] = r
		if math.IsNaN(r.UPARelRMSE) || r.UPARelRMSE < 0 {
			t.Errorf("%s: UPA RMSE = %v", r.Query, r.UPARelRMSE)
		}
	}
	// The paper's headline shape: on the multi-join queries FLEX's RMSE is
	// orders of magnitude above UPA's.
	for _, name := range []string{"TPCH16", "TPCH21"} {
		r := byName[name]
		if !r.FLEXSupported {
			t.Fatalf("%s should be FLEX-supported", name)
		}
		if r.FLEXRelRMSE < 100*r.UPARelRMSE && r.FLEXRelRMSE < 10 {
			t.Errorf("%s: FLEX RMSE %v not orders of magnitude above UPA %v",
				name, r.FLEXRelRMSE, r.UPARelRMSE)
		}
	}
	// TPCH1: FLEX is exact (sensitivity 1, no joins), UPA near-exact.
	if r := byName["TPCH1"]; r.FLEXRelRMSE > 1e-9 {
		t.Errorf("TPCH1: FLEX RMSE = %v, want 0 (count without joins)", r.FLEXRelRMSE)
	}
	// FLEX rows exist exactly for the count queries.
	for _, name := range []string{"TPCH6", "TPCH11", "KMeans", "Linear Regression"} {
		if byName[name].FLEXSupported {
			t.Errorf("%s wrongly marked FLEX-supported", name)
		}
	}
	if out := RenderFig2a(rows); !strings.Contains(out, "unsupported") {
		t.Error("rendered Fig2a missing unsupported markers")
	}
}

func TestFig2bShape(t *testing.T) {
	rows, err := Fig2b(smallConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.VanillaTime <= 0 || r.UPATime <= 0 {
			t.Errorf("%s: non-positive timings %v / %v", r.Query, r.VanillaTime, r.UPATime)
		}
		// UPA does strictly more work, but on sub-millisecond inputs timer
		// noise dominates; fail only on a gross inversion. The structural
		// shuffle assertion below is the noise-free check.
		if r.Normalized < 0.5 {
			t.Errorf("%s: UPA reported far faster than vanilla (%.2fx)", r.Query, r.Normalized)
		}
		if r.UPAShuffles <= r.VanillaShuffles {
			t.Errorf("%s: UPA shuffles %d not above vanilla %d",
				r.Query, r.UPAShuffles, r.VanillaShuffles)
		}
	}
	if out := RenderFig2b(rows); !strings.Contains(out, "mean overhead") {
		t.Error("rendered Fig2b missing summary line")
	}
}

func TestFig2bSimulatedShape(t *testing.T) {
	rows, err := Fig2bSimulated(smallConfig(), cluster.PaperTestbed())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		// The model is deterministic in the op counts: UPA always does
		// strictly more work, so the ratio is strictly above 1 — no timer
		// noise caveat here.
		if r.Normalized <= 1 {
			t.Errorf("%s: simulated ratio %v <= 1", r.Query, r.Normalized)
		}
		if r.Normalized > 20 {
			t.Errorf("%s: simulated ratio %v implausibly large", r.Query, r.Normalized)
		}
	}
	bad := cluster.Model{}
	if _, err := Fig2bSimulated(smallConfig(), bad); err == nil {
		t.Error("invalid cluster model accepted")
	}
	if out := RenderFig2bSimulated(rows); !strings.Contains(out, "simulated") {
		t.Error("rendered output missing header")
	}
}

func TestFig3Shape(t *testing.T) {
	rows, err := Fig3(smallConfig(), []int{50, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if len(r.SampleSizes) != 2 || len(r.Coverage) != 2 {
			t.Fatalf("%s: sweep lengths wrong: %+v", r.Query, r)
		}
		if r.TrueMin > r.TrueMax {
			t.Errorf("%s: true range inverted", r.Query)
		}
		for i, cov := range r.Coverage {
			if cov < 0 || cov > 1 {
				t.Errorf("%s: coverage[%d] = %v", r.Query, i, cov)
			}
		}
		// Larger n should not make coverage much worse.
		if r.Coverage[1] < r.Coverage[0]-0.2 {
			t.Errorf("%s: coverage degraded with larger n: %v -> %v",
				r.Query, r.Coverage[0], r.Coverage[1])
		}
	}
	if out := RenderFig3(rows); !strings.Contains(out, "coverage") {
		t.Error("rendered Fig3 missing coverage lines")
	}
}

func TestFig4aOverheadDecreases(t *testing.T) {
	cfg := smallConfig()
	rows, err := Fig4a(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[1].Lineitems != 4*cfg.Lineitems {
		t.Errorf("scaled lineitems = %d, want %d", rows[1].Lineitems, 4*cfg.Lineitems)
	}
	// The paper's claim: overhead decreases as data grows (constant
	// sensitivity cost amortizes). Allow generous slack for timer noise.
	if rows[1].MeanNormalized > rows[0].MeanNormalized*1.3 {
		t.Errorf("overhead grew with dataset size: %.2fx -> %.2fx",
			rows[0].MeanNormalized, rows[1].MeanNormalized)
	}
	if out := RenderFig4a(rows); !strings.Contains(out, "scale") {
		t.Error("rendered Fig4a missing header")
	}
}

func TestFig4bSampleSizeSweep(t *testing.T) {
	// Keep n below the smallest protected table (orders/partsupp = 500) so
	// no query degenerates to the exact, cache-free small-dataset path.
	rows, err := Fig4b(smallConfig(), []int{50, 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.MeanTime <= 0 {
			t.Errorf("n=%d: non-positive mean time", r.SampleSize)
		}
		if r.MeanCacheHitRate < 0 || r.MeanCacheHitRate > 1 {
			t.Errorf("n=%d: hit rate %v", r.SampleSize, r.MeanCacheHitRate)
		}
	}
	// More samples → more reuse of the cached R(M(S')) → hit rate rises.
	if rows[1].MeanCacheHitRate <= rows[0].MeanCacheHitRate {
		t.Errorf("cache hit rate did not rise with n: %v -> %v",
			rows[0].MeanCacheHitRate, rows[1].MeanCacheHitRate)
	}
	if out := RenderFig4b(rows); !strings.Contains(out, "cache hits") {
		t.Error("rendered Fig4b missing header")
	}
}

func TestAblations(t *testing.T) {
	rep, err := Ablations(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Reuse) != 2 {
		t.Fatalf("reuse rows = %d, want 2", len(rep.Reuse))
	}
	for _, row := range rep.Reuse {
		if row.OpsRatio < 5 {
			t.Errorf("records=%d: reuse saved only %.1fx ops", row.Records, row.OpsRatio)
		}
	}
	// The scratch cost grows with the dataset; the reuse cost does not
	// (constant-in-|x| sensitivity inference).
	if rep.Reuse[1].ScratchOps <= rep.Reuse[0].ScratchOps {
		t.Error("scratch ops did not grow with dataset size")
	}
	if rep.Reuse[1].ReuseOps > 3*rep.Reuse[0].ReuseOps {
		t.Errorf("reuse ops grew too fast with dataset size: %d -> %d",
			rep.Reuse[0].ReuseOps, rep.Reuse[1].ReuseOps)
	}
	if len(rep.Range) != 9 {
		t.Fatalf("range rows = %d, want 9", len(rep.Range))
	}
	for _, row := range rep.Range {
		if row.MLECoverage < 0 || row.MLECoverage > 1 || row.EmpiricalCoverage < 0 || row.EmpiricalCoverage > 1 {
			t.Errorf("%s: coverage out of range: %+v", row.Query, row)
		}
	}
	if len(rep.Groups) != 4 {
		t.Fatalf("group rows = %d, want 4", len(rep.Groups))
	}
	prev := -1.0
	for _, row := range rep.Groups {
		if row.Sensitivity <= prev {
			t.Errorf("group sensitivity not increasing: %+v", rep.Groups)
		}
		prev = row.Sensitivity
	}
	out := RenderAblations(rep)
	for _, want := range []string{"Ablation 1", "Ablation 2", "Ablation 3", "group size"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered ablations missing %q", want)
		}
	}
}

func TestQueryNamesStable(t *testing.T) {
	names := QueryNames()
	if len(names) != 9 {
		t.Fatalf("%d names, want 9", len(names))
	}
	rows, err := Table2(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.Query != names[i] {
			t.Errorf("order mismatch at %d: %s vs %s", i, r.Query, names[i])
		}
	}
}
