// Package jobgraph is the release planner underneath UPA's core: a
// declarative DAG of named stages scheduled topologically over a shared slot
// pool. Independent stages run concurrently (pipelining — the per-neighbour
// delta combines overlap the bulk R(M(S')) reduction), partitioned stages
// speculatively re-execute straggler partitions, and every stage leaves a
// Span record (start/end, task attempts, records, shuffle bytes, cache hits)
// that downstream layers price into simulated cluster time or report over
// HTTP.
//
// The package is substrate-agnostic: it knows nothing about the mapreduce
// engine beyond a slot count, so any future executor (multi-process,
// remote) can schedule through the same graphs.
package jobgraph

import (
	"context"
	"errors"
	"fmt"
	"time"

	"upa/internal/chaos"
)

// ErrCycle is returned by Validate when the stage dependencies contain a
// cycle.
var ErrCycle = errors.New("jobgraph: dependency cycle")

// Span is the per-stage execution record of one Graph.Run. Stages that never
// started (because an earlier stage failed or the context was cancelled)
// keep zero Start/End times.
type Span struct {
	// Stage is the stage name; Deps its declared dependencies.
	Stage string   `json:"stage"`
	Deps  []string `json:"deps"`
	// Start and End bracket the stage's execution, including any time its
	// tasks spent waiting for a free slot.
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Attempts counts task executions (1 for a plain stage; partitions plus
	// speculative re-executions for a partitioned stage). Speculative counts
	// the duplicate attempts launched against straggler partitions.
	Attempts    int `json:"attempts"`
	Speculative int `json:"speculative"`
	// Retries counts re-executions after retryable failures (injected faults,
	// attempt deadlines), TaskFaults the chaos-injected failures absorbed by
	// the stage, and BackoffNanos the time spent waiting between attempts —
	// the jobgraph half of the engine's retry accounting, priced by the
	// cluster cost model.
	Retries      int64 `json:"retries"`
	TaskFaults   int64 `json:"taskFaults"`
	BackoffNanos int64 `json:"backoffNanos"`
	// Records, ShuffledRecords, ShuffleBytes, ReduceOps and CacheHits are
	// reported by the stage body through its StageContext; they feed the
	// cluster cost model's per-stage pricing.
	Records         int64 `json:"records"`
	ShuffledRecords int64 `json:"shuffledRecords"`
	ShuffleBytes    int64 `json:"shuffleBytes"`
	ReduceOps       int64 `json:"reduceOps"`
	CacheHits       int64 `json:"cacheHits"`
	// RecordsPreCombine and RecordsPostCombine bracket the stage's map-side
	// combines: records entering the combiners versus combined records that
	// actually shuffled. RecordsCombined is their difference — records the
	// combine eliminated before the wire. Stages reporting these should not
	// double-report the combine folds through AddReduceOps; the cost model
	// charges the combine CPU from RecordsPreCombine.
	RecordsPreCombine  int64 `json:"recordsPreCombine"`
	RecordsPostCombine int64 `json:"recordsPostCombine"`
	RecordsCombined    int64 `json:"recordsCombined"`
	// SpilledBytes and SpillReads meter the stage's out-of-core traffic:
	// bytes written to spill files when a materialization exceeded the
	// engine's memory budget, and spill-file reads that streamed them back.
	// Zero on engines without a budget.
	SpilledBytes int64 `json:"spilledBytes"`
	SpillReads   int64 `json:"spillReads"`
	// SpillCorruptions counts spill reads the stage caught failing their
	// integrity checks (typed ErrSpillCorrupt); SpillRecomputes counts
	// partitions the stage re-materialized from lineage to recover them.
	SpillCorruptions int64 `json:"spillCorruptions"`
	SpillRecomputes  int64 `json:"spillRecomputes"`
	// Err holds the stage's failure, if any.
	Err string `json:"error,omitempty"`
}

// Duration is the stage's wall-clock time (zero if it never started).
func (s Span) Duration() time.Duration {
	if s.Start.IsZero() || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// StageFunc is the body of a plain (single-task) stage. The context is
// cancelled when the graph is aborted; the StageContext collects the stage's
// span counters.
type StageFunc func(ctx context.Context, sc *StageContext) error

// PartFunc computes one partition of a partitioned stage. It must confine
// its side effects to the returned commit closure (nil when there is nothing
// to publish): under speculation two attempts of the same partition may run
// concurrently, and the scheduler applies exactly one winner's commit.
type PartFunc func(ctx context.Context, sc *StageContext, part int) (commit func(), err error)

// stage is one declared node of the graph.
type stage struct {
	name   string
	deps   []string
	fn     StageFunc
	parts  int      // 0 for plain stages
	partFn PartFunc // set when parts > 0
}

// Graph is a declarative DAG of named stages. Build it with Stage and
// Partitioned, then execute with Run. A Graph is single-use: Run may be
// called once.
type Graph struct {
	name      string
	slots     int
	specAfter time.Duration
	policy    chaos.RetryPolicy
	inj       *chaos.Injector
	now       func() time.Time
	stages    []*stage
	index     map[string]int
	buildErr  error
}

// Option configures a Graph.
type Option func(*Graph)

// WithSlots bounds how many stage tasks run concurrently across the whole
// graph — the shared worker pool. Values below one fall back to one.
func WithSlots(n int) Option {
	return func(g *Graph) {
		if n < 1 {
			n = 1
		}
		g.slots = n
	}
}

// WithSpeculation enables speculative re-execution for partitioned stages:
// any partition still running `after` the stage started gets one duplicate
// attempt, and the first attempt to finish wins (its commit is applied; the
// loser's is discarded). Partition functions must therefore be pure up to
// their commit closure. A non-positive duration disables speculation.
func WithSpeculation(after time.Duration) Option {
	return func(g *Graph) { g.specAfter = after }
}

// WithRetryPolicy sets the stage-level retry contract: attempts per stage
// task, exponential backoff with seeded jitter, per-attempt deadline, and a
// per-Run retry budget shared by retries and speculative launches. Callers
// normally pass the engine's own policy so both schedulers behave alike.
func WithRetryPolicy(p chaos.RetryPolicy) Option {
	return func(g *Graph) { g.policy = p }
}

// WithChaos arms the graph with a seeded fault injector: stage tasks may
// fail or straggle before running, exercising the retry and speculation
// paths deterministically. Nil disarms.
func WithChaos(inj *chaos.Injector) Option {
	return func(g *Graph) { g.inj = inj }
}

// WithClock injects the clock that stamps span Start/End times. Simulations
// and tests pass a deterministic clock so span timelines are reproducible
// byte for byte; nil keeps the default wall clock.
func WithClock(now func() time.Time) Option {
	return func(g *Graph) {
		if now != nil {
			g.now = now
		}
	}
}

// New builds an empty graph. The default slot count is 1; callers normally
// pass WithSlots(engine.Workers()).
func New(name string, opts ...Option) *Graph {
	//upa:allow(seededdeterminism) default span clock; deterministic runs override it via WithClock
	g := &Graph{name: name, slots: 1, policy: chaos.DefaultRetryPolicy(), now: time.Now, index: make(map[string]int)}
	for _, opt := range opts {
		opt(g)
	}
	return g
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// setErr records the first construction error; Validate and Run surface it.
func (g *Graph) setErr(err error) {
	if g.buildErr == nil {
		g.buildErr = err
	}
}

func (g *Graph) add(s *stage) *Graph {
	if s.name == "" {
		g.setErr(fmt.Errorf("jobgraph: %s: stage with empty name", g.name))
		return g
	}
	if _, dup := g.index[s.name]; dup {
		g.setErr(fmt.Errorf("jobgraph: %s: duplicate stage %q", g.name, s.name))
		return g
	}
	g.index[s.name] = len(g.stages)
	g.stages = append(g.stages, s)
	return g
}

// Stage declares a plain single-task stage that runs fn once after every
// stage named in deps has completed. Construction errors (empty or duplicate
// names, nil functions) are deferred to Validate/Run so call sites chain
// cleanly.
func (g *Graph) Stage(name string, fn StageFunc, deps ...string) *Graph {
	if fn == nil {
		g.setErr(fmt.Errorf("jobgraph: %s: stage %q has nil function", g.name, name))
		return g
	}
	return g.add(&stage{name: name, deps: deps, fn: fn})
}

// Partitioned declares a stage of parts independent tasks scheduled on the
// shared slot pool. fn computes one partition and returns a commit closure
// (possibly nil) that publishes the partition's result; the scheduler
// applies exactly one commit per partition even when speculation launches
// duplicate attempts.
func (g *Graph) Partitioned(name string, parts int, fn PartFunc, deps ...string) *Graph {
	if fn == nil {
		g.setErr(fmt.Errorf("jobgraph: %s: stage %q has nil function", g.name, name))
		return g
	}
	if parts < 1 {
		g.setErr(fmt.Errorf("jobgraph: %s: stage %q has %d partitions, need >= 1", g.name, name, parts))
		return g
	}
	return g.add(&stage{name: name, deps: deps, parts: parts, partFn: fn})
}

// Validate checks the graph: construction errors, unknown dependencies, and
// dependency cycles (Kahn's algorithm).
func (g *Graph) Validate() error {
	if g.buildErr != nil {
		return g.buildErr
	}
	if len(g.stages) == 0 {
		return fmt.Errorf("jobgraph: %s: empty graph", g.name)
	}
	indegree := make([]int, len(g.stages))
	dependents := make([][]int, len(g.stages))
	for i, s := range g.stages {
		for _, d := range s.deps {
			j, ok := g.index[d]
			if !ok {
				return fmt.Errorf("jobgraph: %s: stage %q depends on unknown stage %q", g.name, s.name, d)
			}
			if j == i {
				return fmt.Errorf("%w: %s: stage %q depends on itself", ErrCycle, g.name, s.name)
			}
			indegree[i]++
			dependents[j] = append(dependents[j], i)
		}
	}
	ready := make([]int, 0, len(g.stages))
	for i, deg := range indegree {
		if deg == 0 {
			ready = append(ready, i)
		}
	}
	seen := 0
	for len(ready) > 0 {
		i := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		seen++
		for _, dep := range dependents[i] {
			indegree[dep]--
			if indegree[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if seen != len(g.stages) {
		return fmt.Errorf("%w: %s: %d of %d stages unreachable from the roots",
			ErrCycle, g.name, len(g.stages)-seen, len(g.stages))
	}
	return nil
}
