package ctxpropagation_test

import (
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analyzertest"
	"upa/internal/analyzers/ctxpropagation"
)

func TestCtxPropagationInternal(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "ctxpropagation")
	analyzertest.Run(t, dir, "upa/internal/fake", ctxpropagation.Analyzer)
}

func TestCtxPropagationExternal(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "ctxpropagation_ext")
	analyzertest.Run(t, dir, "example.com/ext", ctxpropagation.Analyzer)
}
