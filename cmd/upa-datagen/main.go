// Command upa-datagen emits the synthetic evaluation datasets as CSV for
// inspection or external tooling.
//
// Usage:
//
//	upa-datagen -table lineitem -rows 10000 > lineitem.csv
//	upa-datagen -table points -rows 5000 > points.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"upa/internal/lifesci"
	"upa/internal/tpch"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "upa-datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("upa-datagen", flag.ContinueOnError)
	var (
		table = fs.String("table", "lineitem", "lineitem | orders | customer | part | supplier | partsupp | nation | points")
		rows  = fs.Int("rows", 10000, "lineitem row count (other tables scale from it); points row count for -table points")
		skew  = fs.Float64("skew", 0.2, "TPC-H join-key skew in [0,1)")
		seed  = fs.Uint64("seed", 1, "generator seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	w := csv.NewWriter(out)
	defer w.Flush()

	if *table == "points" {
		ds, err := lifesci.Generate(lifesci.Config{
			Records: *rows, Dims: 4, Clusters: 3, OutlierFrac: 0.01, Seed: *seed,
		})
		if err != nil {
			return err
		}
		if err := w.Write([]string{"f0", "f1", "f2", "f3", "target"}); err != nil {
			return err
		}
		for _, p := range ds.Points {
			rec := make([]string, 0, len(p.Features)+1)
			for _, f := range p.Features {
				rec = append(rec, formatF(f))
			}
			rec = append(rec, formatF(p.Target))
			if err := w.Write(rec); err != nil {
				return err
			}
		}
		return w.Error()
	}

	db, err := tpch.Generate(tpch.Config{Lineitems: *rows, Skew: *skew, Seed: *seed})
	if err != nil {
		return err
	}
	switch *table {
	case "lineitem":
		if err := w.Write([]string{"orderkey", "partkey", "suppkey", "linenumber", "quantity",
			"extendedprice", "discount", "tax", "returnflag", "linestatus",
			"shipdate", "commitdate", "receiptdate", "shipmode"}); err != nil {
			return err
		}
		for _, l := range db.Lineitems {
			if err := w.Write([]string{
				itoa(l.OrderKey), itoa(l.PartKey), itoa(l.SuppKey), itoa(l.LineNumber),
				formatF(l.Quantity), formatF(l.ExtendedPrice), formatF(l.Discount), formatF(l.Tax),
				l.ReturnFlag, l.LineStatus,
				itoa(int(l.ShipDate)), itoa(int(l.CommitDate)), itoa(int(l.ReceiptDate)), l.ShipMode,
			}); err != nil {
				return err
			}
		}
	case "orders":
		if err := w.Write([]string{"orderkey", "custkey", "orderstatus", "totalprice",
			"orderdate", "orderpriority", "specialrequest"}); err != nil {
			return err
		}
		for _, o := range db.Orders {
			if err := w.Write([]string{
				itoa(o.OrderKey), itoa(o.CustKey), o.OrderStatus, formatF(o.TotalPrice),
				itoa(int(o.OrderDate)), o.OrderPriority, strconv.FormatBool(o.SpecialRequest),
			}); err != nil {
				return err
			}
		}
	case "customer":
		if err := w.Write([]string{"custkey", "nationkey", "mktsegment"}); err != nil {
			return err
		}
		for _, c := range db.Customers {
			if err := w.Write([]string{itoa(c.CustKey), itoa(c.NationKey), c.MktSegment}); err != nil {
				return err
			}
		}
	case "part":
		if err := w.Write([]string{"partkey", "brand", "type", "size", "container"}); err != nil {
			return err
		}
		for _, p := range db.Parts {
			if err := w.Write([]string{itoa(p.PartKey), p.Brand, p.Type, itoa(p.Size), p.Container}); err != nil {
				return err
			}
		}
	case "supplier":
		if err := w.Write([]string{"suppkey", "nationkey", "complaint"}); err != nil {
			return err
		}
		for _, s := range db.Suppliers {
			if err := w.Write([]string{itoa(s.SuppKey), itoa(s.NationKey), strconv.FormatBool(s.Complaint)}); err != nil {
				return err
			}
		}
	case "partsupp":
		if err := w.Write([]string{"partkey", "suppkey", "availqty", "supplycost"}); err != nil {
			return err
		}
		for _, ps := range db.PartSupps {
			if err := w.Write([]string{itoa(ps.PartKey), itoa(ps.SuppKey), itoa(ps.AvailQty), formatF(ps.SupplyCost)}); err != nil {
				return err
			}
		}
	case "nation":
		if err := w.Write([]string{"nationkey", "name"}); err != nil {
			return err
		}
		for _, n := range db.Nations {
			if err := w.Write([]string{itoa(n.NationKey), n.Name}); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown table %q", *table)
	}
	return w.Error()
}

func itoa(v int) string { return strconv.Itoa(v) }

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
