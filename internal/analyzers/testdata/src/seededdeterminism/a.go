// Package seededdeterminism is golden-test input for the seededdeterminism
// analyzer, loaded under a determinism-critical import path
// ("upa/internal/mapreduce/fake"). The same file is also loaded under a
// non-critical path, where every diagnostic must vanish.
package seededdeterminism

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

// wallClock consults ambient time: banned in critical packages.
func wallClock() int64 {
	t := time.Now() // want `time.Now in determinism-critical package`
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in determinism-critical package`
}

// durations and timers decide nothing: fine.
func pause() {
	timer := time.NewTimer(10 * time.Millisecond)
	<-timer.C
}

// globalRand draws from the shared, unseeded source: banned.
func globalRand(n int) int {
	return rand.Intn(n) // want `global rand.Intn in determinism-critical package`
}

func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle`
}

// seededLocal builds a local generator from an explicit seed: fine.
func seededLocal(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// cryptoRand is never reproducible, constructor or not.
func cryptoRand(buf []byte) {
	_, _ = crand.Read(buf) // want `crypto/rand.Read in determinism-critical package`
}

// annotated wall-clock measurement: a bench harness genuinely measuring
// elapsed time suppresses with justification.
func measured() time.Duration {
	start := time.Now() //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
	work()
	return time.Since(start) // want `time.Since in determinism-critical package`
}

func work() {}
