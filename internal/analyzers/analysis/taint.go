package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Taint walk: a flow-insensitive, intraprocedural dataflow over one
// function body, iterated to a fixpoint. Two modes share the machinery:
//
//   - ambient mode (seeds == nil): taint enters through module-wide
//     sources — calls to //upa:dpsource functions (or functions whose
//     summaries derived Source) and reads of //upa:dpsource-annotated
//     field names. This mode powers dpflow's per-function diagnostics and
//     the derived Source bit of summaries.
//   - seeded mode (seeds = one parameter object): only the seed is
//     tainted. Sink hits mean the parameter reaches a sink (SinkParams);
//     a tainted return means the parameter flows to the results
//     (TaintParams). This is what makes the analysis interprocedural:
//     callers consult these summaries at every call site.
//
// Precision choices, deliberately simple and documented here once:
// writes into struct fields do not taint the enclosing value — neither
// through a selector assignment nor through a keyed composite-literal
// field (taint is tracked per named field via the annotation table, which
// keeps a *Result value usable while its pre-noise fields stay hot);
// writes through index or star expressions do taint the root (slices and
// maps are carriers, and so are unkeyed composite elements); len/cap
// declassify (cardinalities are published metadata by design); error
// values declassify (errors are identities to wrap and match, enforced by
// the errorwrap analyzer — a tainted value formatted INTO an error still
// fires at the fmt.Errorf call itself); calls to unresolved externals
// propagate taint from arguments to results (fmt.Sprintf et al. behave
// correctly under this rule).

// SinkHit records one tainted value reaching a user-visible sink.
type SinkHit struct {
	// Pos is the call site (one hit per call, however many arguments are
	// tainted).
	Pos token.Pos
	// Sink describes the sink for the diagnostic message, e.g.
	// "fmt.Errorf" or "helper describeRows (which formats its argument
	// into a user-visible sink)".
	Sink string
}

// externalSinkName reports whether pkg-path/function is a user-visible
// formatting or response sink outside the module.
func externalSinkName(path, name string) (string, bool) {
	switch path {
	case "fmt":
		switch name {
		case "Print", "Printf", "Println", "Sprint", "Sprintf", "Sprintln",
			"Fprint", "Fprintf", "Fprintln", "Errorf":
			return "fmt." + name, true
		}
	case "log", "log/slog":
		return path + "." + name, true
	case "net/http":
		if name == "Error" {
			return "http.Error", true
		}
	case "errors":
		if name == "New" {
			return "errors.New", true
		}
	}
	return "", false
}

// sinkMethodNames are method names treated as sinks when the receiver does
// not resolve to a module type: leveled loggers (*slog.Logger et al.) and
// response writers live behind stub imports.
var sinkMethodNames = map[string]bool{
	"Info":  true,
	"Warn":  true,
	"Debug": true,
	"Error": true,
}

type taintWalk struct {
	mod *Module
	fi  *FuncInfo
	// ambient is true when module-wide sources seed the walk.
	ambient bool
	tainted map[types.Object]bool
	aliases map[types.Object]*FuncInfo

	hits          []SinkHit
	hitPos        map[token.Pos]bool
	resultTainted bool
	changed       bool
}

func newTaintWalk(m *Module, fi *FuncInfo, seeds []types.Object) *taintWalk {
	tw := &taintWalk{
		mod:     m,
		fi:      fi,
		ambient: seeds == nil,
		tainted: make(map[types.Object]bool),
		aliases: make(map[types.Object]*FuncInfo),
		hitPos:  make(map[token.Pos]bool),
	}
	for _, s := range seeds {
		if s != nil {
			tw.tainted[s] = true
		}
	}
	return tw
}

// run iterates propagation over the body until the tainted set stops
// growing, then records sink hits and result taint.
func (tw *taintWalk) run() {
	body := tw.fi.Decl.Body
	if body == nil {
		return
	}
	for iter := 0; iter < 10; iter++ {
		tw.changed = false
		ast.Inspect(body, tw.propagate)
		if !tw.changed {
			break
		}
	}
	ast.Inspect(body, tw.collect)
}

func (tw *taintWalk) taint(obj types.Object) {
	if obj == nil || tw.tainted[obj] || isErrorish(obj) {
		return
	}
	tw.tainted[obj] = true
	tw.changed = true
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

// isErrorish reports whether obj is an error value: error-typed when the
// tolerant checker resolved the type, or named by the repo's error-variable
// convention (err, cerr, rerr, …) when a stubbed cross-package signature
// left the type unresolved. Error values never carry taint — they are
// identities to wrap and match (the errorwrap analyzer enforces that), and
// a tainted value formatted into one is caught at the formatting call.
func isErrorish(obj types.Object) bool {
	if obj == nil {
		return false
	}
	if t := obj.Type(); t != nil && types.Identical(t, errorType) {
		return true
	}
	name := obj.Name()
	return name == "err" || strings.HasSuffix(name, "err") || strings.HasSuffix(name, "Err")
}

// propagate handles one node of the assignment-shaped statements.
func (tw *taintWalk) propagate(n ast.Node) bool {
	switch st := n.(type) {
	case *ast.AssignStmt:
		tw.propagateAssign(st.Lhs, st.Rhs)
	case *ast.ValueSpec:
		var lhs []ast.Expr
		for _, name := range st.Names {
			lhs = append(lhs, name)
		}
		tw.propagateAssign(lhs, st.Values)
	case *ast.RangeStmt:
		if tw.isTainted(st.X) {
			// The element is data; the key is data only for maps. Slice and
			// array indices are positional metadata (like len), and when the
			// tolerant checker could not resolve the ranged type the key is
			// treated as an index — the common case by far.
			if t, ok := tw.fi.Pkg.Info.Types[st.X]; ok && t.Type != nil {
				if _, isMap := t.Type.Underlying().(*types.Map); isMap {
					tw.taintLHS(st.Key)
				}
			}
			tw.taintLHS(st.Value)
		}
	}
	return true
}

func (tw *taintWalk) propagateAssign(lhs, rhs []ast.Expr) {
	if len(rhs) == 0 {
		return
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			tw.trackAlias(lhs[i], rhs[i])
			if tw.isTainted(rhs[i]) {
				tw.taintLHS(lhs[i])
			}
		}
		return
	}
	// Multi-value: x, y := f() — coarse, all or nothing.
	if tw.isTainted(rhs[0]) {
		for _, l := range lhs {
			tw.taintLHS(l)
		}
	}
}

// trackAlias records `f := someFunc` so later f(...) calls resolve.
func (tw *taintWalk) trackAlias(lhs, rhs ast.Expr) {
	lid, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	rid, ok := ast.Unparen(rhs).(*ast.Ident)
	if !ok {
		return
	}
	if _, isFunc := tw.fi.Pkg.Info.Uses[rid].(*types.Func); !isFunc {
		return
	}
	target := tw.mod.Func(FuncKey{Pkg: tw.fi.Pkg.Path, Name: rid.Name})
	if target == nil {
		return
	}
	obj := tw.fi.Pkg.Info.Defs[lid]
	if obj == nil {
		obj = tw.fi.Pkg.Info.Uses[lid]
	}
	if obj != nil && tw.aliases[obj] != target {
		tw.aliases[obj] = target
		tw.changed = true
	}
}

// taintLHS marks the target of an assignment. Identifiers taint their
// object; index/star writes taint the root carrier; selector writes are
// dropped (see the precision note at the top of the file).
func (tw *taintWalk) taintLHS(lhs ast.Expr) {
	switch l := ast.Unparen(lhs).(type) {
	case nil:
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := tw.fi.Pkg.Info.Defs[l]
		if obj == nil {
			obj = tw.fi.Pkg.Info.Uses[l]
		}
		tw.taint(obj)
	case *ast.IndexExpr:
		tw.taintLHS(l.X)
	case *ast.StarExpr:
		tw.taintLHS(l.X)
	}
}

// isTainted evaluates whether an expression carries tainted data under the
// current tainted set.
func (tw *taintWalk) isTainted(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case nil:
		return false
	case *ast.Ident:
		if obj := tw.objectOf(x); obj != nil {
			return tw.tainted[obj]
		}
		return false
	case *ast.SelectorExpr:
		if tw.ambient && tw.mod.IsTaintField(x.Sel.Name) {
			// Reads of annotated field names are sources — unless the base
			// is a package qualifier (pkg.Name is not a field read).
			if id, ok := ast.Unparen(x.X).(*ast.Ident); !ok || tw.fi.Pkg.importPathOf(id) == "" {
				return true
			}
		}
		return tw.isTainted(x.X)
	case *ast.CallExpr:
		return tw.callTainted(x)
	case *ast.BinaryExpr:
		return tw.isTainted(x.X) || tw.isTainted(x.Y)
	case *ast.UnaryExpr:
		return tw.isTainted(x.X)
	case *ast.StarExpr:
		return tw.isTainted(x.X)
	case *ast.IndexExpr:
		return tw.isTainted(x.X)
	case *ast.IndexListExpr:
		return tw.isTainted(x.X)
	case *ast.SliceExpr:
		return tw.isTainted(x.X)
	case *ast.TypeAssertExpr:
		return tw.isTainted(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				// An identifier key is a struct field write: contained, like
				// selector writes (the field-name table keeps annotated
				// fields hot). Map keys are expressions, so map composites
				// still behave as carriers.
				if _, isField := kv.Key.(*ast.Ident); isField {
					continue
				}
				if tw.isTainted(kv.Value) {
					return true
				}
				continue
			}
			if tw.isTainted(elt) {
				return true
			}
		}
		return false
	}
	return false
}

func (tw *taintWalk) objectOf(id *ast.Ident) types.Object {
	if obj := tw.fi.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return tw.fi.Pkg.Info.Defs[id]
}

// callTainted decides whether a call's result is tainted.
func (tw *taintWalk) callTainted(call *ast.CallExpr) bool {
	callee := tw.mod.ResolveCall(tw.fi.Pkg, call, tw.aliases)
	sum := tw.mod.SummaryForCallee(callee)
	if sum != nil && sum.Sanitize {
		return false
	}
	if callee.Ext.Path == "builtin" {
		switch callee.Ext.Name {
		case "len", "cap", "make", "new":
			// Cardinalities and fresh allocations are clean: record counts
			// are published metadata by design.
			return false
		}
		// append, copy, min, max: carrier semantics.
		for _, arg := range call.Args {
			if tw.isTainted(arg) {
				return true
			}
		}
		return false
	}
	if callee.Ext.Path == "conv" {
		for _, arg := range call.Args {
			if tw.isTainted(arg) {
				return true
			}
		}
		return false
	}
	if tw.ambient && sum != nil && sum.Source {
		return true
	}
	if sum != nil && (callee.Func != nil || len(sum.TaintParams) > 0) {
		// Known callee: trust its summary's parameter→result flows.
		for i, arg := range call.Args {
			if sum.taintsFromParam(tw.paramIndex(callee, i, len(call.Args))) && tw.isTainted(arg) {
				return true
			}
		}
		// A method on a tainted receiver still yields tainted data
		// (accessors over tainted carriers).
		if callee.Method {
			if selx, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && tw.isTainted(selx.X) {
				return true
			}
		}
		return false
	}
	// Unresolved or external without facts: propagate conservatively.
	for _, arg := range call.Args {
		if tw.isTainted(arg) {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && tw.isTainted(sel.X) {
		return true
	}
	return false
}

// paramIndex maps an argument index to the callee's parameter index,
// folding variadic tails onto the last declared parameter.
func (tw *taintWalk) paramIndex(callee Callee, argIdx, nargs int) int {
	if callee.Func == nil || callee.Func.Decl.Type.Params == nil {
		return argIdx
	}
	n := 0
	for _, f := range callee.Func.Decl.Type.Params.List {
		if len(f.Names) == 0 {
			n++
			continue
		}
		n += len(f.Names)
	}
	if n > 0 && argIdx >= n {
		return n - 1
	}
	return argIdx
}

// collect records sink hits and return-taint once propagation converged.
func (tw *taintWalk) collect(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.CallExpr:
		tw.checkSink(x)
	case *ast.ReturnStmt:
		if len(x.Results) == 0 {
			// Bare return with named results.
			for _, obj := range resultObjects(tw.fi) {
				if obj != nil && tw.tainted[obj] {
					tw.resultTainted = true
				}
			}
			return true
		}
		for _, r := range x.Results {
			if tw.isTainted(r) {
				tw.resultTainted = true
			}
		}
	}
	return true
}

// checkSink reports tainted arguments reaching sink parameters: annotated
// //upa:dpsink functions, interprocedural SinkParams summaries, external
// formatting/logging/HTTP functions, and leveled-logger method names.
func (tw *taintWalk) checkSink(call *ast.CallExpr) {
	callee := tw.mod.ResolveCall(tw.fi.Pkg, call, tw.aliases)
	sum := tw.mod.SummaryForCallee(callee)
	if sum != nil && sum.Sanitize {
		return
	}

	sinkAll := false
	var desc string
	if callee.Func != nil && callee.Func.DPSink {
		sinkAll = true
		desc = callee.Name + " (annotated //upa:dpsink)"
	} else if callee.Ext.Path != "" && callee.Ext.Path != "builtin" && callee.Ext.Path != "conv" {
		if name, ok := externalSinkName(callee.Ext.Path, callee.Ext.Name); ok {
			sinkAll = true
			desc = name
		}
	} else if callee.Func == nil && callee.Method && sinkMethodNames[callee.Name] {
		sinkAll = true
		desc = "logger method " + callee.Name
	}

	for i, arg := range call.Args {
		if !tw.isTainted(arg) {
			continue
		}
		if sinkAll {
			tw.hit(call.Pos(), desc)
			return
		}
		if sum != nil && sum.sinksParam(tw.paramIndex(callee, i, len(call.Args))) {
			tw.hit(call.Pos(), callee.Name+" (which passes this argument to a user-visible sink)")
			return
		}
	}
}

func (tw *taintWalk) hit(pos token.Pos, sink string) {
	if tw.hitPos[pos] {
		return
	}
	tw.hitPos[pos] = true
	tw.hits = append(tw.hits, SinkHit{Pos: pos, Sink: sink})
}

// resultObjects resolves the declared objects of fi's named results.
func resultObjects(fi *FuncInfo) []types.Object {
	var out []types.Object
	if fi.Decl.Type.Results == nil {
		return nil
	}
	for _, field := range fi.Decl.Type.Results.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, nil)
				continue
			}
			out = append(out, fi.Pkg.Info.Defs[name])
		}
	}
	return out
}

// AmbientTaint runs the ambient-mode walk over fi and returns the sink
// hits — the dpflow analyzer's per-function entry point.
func (m *Module) AmbientTaint(fi *FuncInfo) []SinkHit {
	m.computeSummaries()
	tw := newTaintWalk(m, fi, nil)
	tw.run()
	return tw.hits
}
