package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"sort"
	"sync"

	"upa/internal/core"
	"upa/internal/jobgraph"
	"upa/internal/mapreduce"
	"upa/internal/sql"
)

// Error is an admission/serving failure with its HTTP mapping attached.
// RetryAfterSeconds > 0 marks the failure as transient-from-the-client's-view
// (queue full, budget could be raised) and becomes a Retry-After header.
type Error struct {
	Status            int
	Message           string
	RetryAfterSeconds int
}

func (e *Error) Error() string { return e.Message }

// httpError builds a non-retryable serving error.
func httpError(status int, format string, args ...any) *Error {
	return &Error{Status: status, Message: fmt.Sprintf(format, args...)}
}

// TenantSpec declares one tenant at service construction: its total ε budget
// and the per-user ε cap (zero = unlimited at that level).
type TenantSpec struct {
	Name       string  `json:"name"`
	Budget     float64 `json:"budget"`
	UserBudget float64 `json:"userBudget"`
}

// Config parameterizes the service. Zero values pick serving defaults.
type Config struct {
	// Engine executes influence plans and releases. Required.
	Engine *mapreduce.Engine
	// Tables is the registry of base relations ad-hoc plans may scan.
	Tables map[string]*sql.ScanPlan
	// NamedPlan, when non-nil, resolves a request's plan name to a plan —
	// the canned-query path. Unknown names must error.
	NamedPlan func(name string) (sql.Plan, error)
	// SampleSize is n for sensitivity sampling (default 200).
	SampleSize int
	// DefaultEpsilon is charged when a request leaves ε unset (default 0.1,
	// the paper's evaluation setting).
	DefaultEpsilon float64
	// MaxConcurrent bounds queries computing at once (default
	// Engine.Workers()); PerTenantDepth bounds one tenant's queued+running
	// occupancy (default 4) — past it, requests shed with 429.
	MaxConcurrent  int
	PerTenantDepth int
	// CacheCap bounds the release cache (default 256 entries).
	CacheCap int
	// RetryAfterSeconds is the Retry-After hint on shed/exhausted responses
	// (default 1).
	RetryAfterSeconds int
	// StatePath roots the ledger/cache persistence pair (snapshot at
	// StatePath, journal at StatePath+".journal"). Empty disables
	// persistence: state lives and dies with the process.
	StatePath string
}

// tenantMetrics is one tenant's serving counters. All fields move under
// Service.mu.
type tenantMetrics struct {
	admitted       uint64
	cacheHits      uint64
	shedQueue      uint64
	rejectedBudget uint64
	failed         uint64
	epsilonSpent   float64
}

// TenantMetrics is the exported snapshot of one tenant's serving counters.
type TenantMetrics struct {
	Tenant         string  `json:"tenant"`
	Admitted       uint64  `json:"admitted"`
	CacheHits      uint64  `json:"cacheHits"`
	ShedQueue      uint64  `json:"shedQueue"`
	RejectedBudget uint64  `json:"rejectedBudget"`
	Failed         uint64  `json:"failed"`
	EpsilonSpent   float64 `json:"epsilonSpent"`
}

// Service is the multi-tenant DP query service: one Service fronts one
// engine and one persistence root, and every query passes budget admission,
// concurrency admission and the release cache before any computation runs.
type Service struct {
	cfg    Config
	ledger *Ledger
	cache  *Cache
	adm    *admission
	store  *Store // nil when persistence is disabled

	mu      sync.Mutex
	metrics map[string]*tenantMetrics //upa:guardedby(mu)
}

// NewService builds the service, replays any persisted state at
// cfg.StatePath, and registers tenants (idempotently — replayed
// registrations with identical budgets journal nothing).
func NewService(cfg Config, tenants []TenantSpec) (*Service, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Config.Engine is required")
	}
	if cfg.SampleSize < 1 {
		cfg.SampleSize = 200
	}
	if cfg.DefaultEpsilon <= 0 {
		cfg.DefaultEpsilon = 0.1
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = cfg.Engine.Workers()
	}
	if cfg.PerTenantDepth < 1 {
		cfg.PerTenantDepth = 4
	}
	if cfg.CacheCap < 1 {
		cfg.CacheCap = 256
	}
	if cfg.RetryAfterSeconds < 1 {
		cfg.RetryAfterSeconds = 1
	}

	s := &Service{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheCap),
		adm:     newAdmission(cfg.MaxConcurrent, cfg.PerTenantDepth),
		metrics: make(map[string]*tenantMetrics),
	}

	var persist func(entry) error
	if cfg.StatePath != "" {
		store, replay, err := OpenStore(cfg.StatePath)
		if err != nil {
			return nil, err
		}
		s.store = store
		persist = store.Append
		s.ledger = NewLedger(nil) // replay must not re-journal
		for _, e := range replay {
			switch e.Kind {
			case entryRelease:
				if e.Release != nil {
					s.cache.replay(e.Key, *e.Release)
				}
			default:
				s.ledger.replayEntry(e)
			}
		}
		// The sink is installed through setPersist (which locks) rather than
		// by assigning the field: replay ran single-goroutine, but Register
		// below reads persist under the ledger mutex, and the unlocked
		// assignment this replaced was an unsynchronized publish
		// (lockdiscipline's first real catch on this tree).
		s.ledger.setPersist(persist)
	} else {
		s.ledger = NewLedger(nil)
	}

	for _, t := range tenants {
		if err := s.ledger.Register(t.Name, t.Budget, t.UserBudget); err != nil {
			if s.store != nil {
				s.store.Close()
			}
			return nil, err
		}
	}
	return s, nil
}

// Request is one POST /query, decoded. Exactly one of PlanName (a canned
// plan resolved via Config.NamedPlan) or Plan (an ad-hoc wire-form plan over
// Config.Tables) names the computation.
type Request struct {
	Tenant string `json:"tenant"`
	User   string `json:"user"`
	// PlanName or Plan (exactly one).
	PlanName string          `json:"plan,omitempty"`
	Plan     json.RawMessage `json:"planJSON,omitempty"`
	// Protected names the table whose records the release protects;
	// defaults to the plan's only scanned table.
	Protected string `json:"protected,omitempty"`
	// Epsilon is the ε this release charges (0 = server default). Seed
	// completes the cache key: same (plan, protected, ε, seed) is
	// byte-identical, cached, and charged once; a fresh seed is a fresh
	// release and a fresh charge.
	Epsilon float64 `json:"epsilon,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
}

// Release is the response to one admitted query.
type Release struct {
	Tenant      string  `json:"tenant"`
	User        string  `json:"user"`
	Query       string  `json:"query"`
	Fingerprint string  `json:"fingerprint"`
	Epsilon     float64 `json:"epsilon"`
	Seed        uint64  `json:"seed"`
	// Cached reports a release-cache hit; Charged is the ε THIS request
	// spent (zero on every hit).
	Cached  bool    `json:"cached"`
	Charged float64 `json:"charged"`
	// Output is the noisy release; SampleSize the effective n it used.
	Output     []float64 `json:"output"`
	SampleSize int       `json:"sampleSize"`
	// Remaining headroom after this request; -1 = unlimited.
	TenantRemaining float64 `json:"tenantRemaining"`
	UserRemaining   float64 `json:"userRemaining"`
}

// Query serves one request end to end: validate → fingerprint → cache →
// admission → charge → compute → publish. Rejections spend zero ε and
// arrive before any plan executes.
func (s *Service) Query(ctx context.Context, req Request) (*Release, *Error) {
	if req.Tenant == "" || !s.ledger.Has(req.Tenant) {
		return nil, httpError(http.StatusNotFound, "unknown tenant %q", req.Tenant)
	}
	if req.User == "" {
		return nil, httpError(http.StatusBadRequest, "request must name a user")
	}
	eps := req.Epsilon
	if eps == 0 {
		eps = s.cfg.DefaultEpsilon
	}
	if eps <= 0 || math.IsNaN(eps) || math.IsInf(eps, 0) {
		return nil, httpError(http.StatusBadRequest, "epsilon must be positive and finite, got %v", req.Epsilon)
	}

	plan, queryName, herr := s.resolvePlan(req)
	if herr != nil {
		return nil, herr
	}
	protected := req.Protected
	if protected == "" {
		names := sql.TableNames(plan)
		if len(names) != 1 {
			return nil, httpError(http.StatusBadRequest,
				"plan scans %d tables %v; set \"protected\" to the one to protect", len(names), names)
		}
		protected = names[0]
	}
	// Structural validation only — nothing executes before admission.
	if err := sql.SupportsDPCount(plan, protected); err != nil {
		return nil, httpError(http.StatusBadRequest, "unsupported plan: %v", err)
	}

	fp := sql.Fingerprint(plan)
	key := CacheKey(fp, protected, eps, req.Seed)

	if rel, ok := s.cache.lookup(key); ok {
		s.bump(req.Tenant, func(m *tenantMetrics) { m.cacheHits++ })
		return s.decorate(req, rel, true, 0), nil
	}

	release, aerr := s.adm.acquire(ctx, req.Tenant, s.cfg.RetryAfterSeconds)
	if aerr != nil {
		s.bump(req.Tenant, func(m *tenantMetrics) { m.shedQueue++ })
		return nil, aerr
	}
	defer release()

	// Re-check the cache: an identical query may have published while this
	// one queued. Hitting now still spends nothing.
	if rel, ok := s.cache.lookup(key); ok {
		s.bump(req.Tenant, func(m *tenantMetrics) { m.cacheHits++ })
		return s.decorate(req, rel, true, 0), nil
	}

	return s.execute(ctx, req, plan, protected, queryName, fp, key, eps, req.Seed)
}

// resolvePlan turns the request's plan reference into a sql.Plan.
func (s *Service) resolvePlan(req Request) (sql.Plan, string, *Error) {
	switch {
	case req.PlanName != "" && len(req.Plan) > 0:
		return nil, "", httpError(http.StatusBadRequest, "set \"plan\" or \"planJSON\", not both")
	case req.PlanName != "":
		if s.cfg.NamedPlan == nil {
			return nil, "", httpError(http.StatusBadRequest, "named plans are not configured on this server")
		}
		plan, err := s.cfg.NamedPlan(req.PlanName)
		if err != nil {
			return nil, "", httpError(http.StatusBadRequest, "unknown plan %q: %v", req.PlanName, err)
		}
		return plan, req.PlanName, nil
	case len(req.Plan) > 0:
		plan, err := DecodePlan(req.Plan, s.cfg.Tables)
		if err != nil {
			return nil, "", httpError(http.StatusBadRequest, "%v", err)
		}
		return plan, "adhoc", nil
	default:
		return nil, "", httpError(http.StatusBadRequest, "request must carry \"plan\" (a plan name) or \"planJSON\" (a plan AST)")
	}
}

// execute is the blessed admission site (enforced by the epsiloncharge
// analyzer): the only function that may call ChargeAdmission and
// RefundAdmission, and it charges before any success return. The charge
// lands before the influence plan runs — a budget-rejected query provably
// computes nothing — and is refunded only when the release provably never
// happened (the run failed before its System charged ε).
func (s *Service) execute(ctx context.Context, req Request, plan sql.Plan, protected, queryName, fp, key string, eps float64, seed uint64) (*Release, *Error) {
	if err := s.ledger.ChargeAdmission(req.Tenant, req.User, eps); err != nil {
		switch {
		case errors.Is(err, ErrTenantBudget), errors.Is(err, ErrUserBudget):
			s.bump(req.Tenant, func(m *tenantMetrics) { m.rejectedBudget++ })
			return nil, &Error{
				Status:            http.StatusTooManyRequests,
				Message:           err.Error(),
				RetryAfterSeconds: s.cfg.RetryAfterSeconds,
			}
		case errors.Is(err, ErrUnknownTenant):
			return nil, httpError(http.StatusNotFound, "%v", err)
		default:
			// Journaling failed: the charge was rolled back, nothing ran.
			s.bump(req.Tenant, func(m *tenantMetrics) { m.failed++ })
			return nil, httpError(http.StatusInternalServerError, "%v", err)
		}
	}

	rel, spent, err := s.computeRelease(ctx, plan, protected, queryName, fp, key, eps, seed)
	if err != nil {
		s.bump(req.Tenant, func(m *tenantMetrics) { m.failed++ })
		if spent == 0 {
			// The System never charged: no noisy output exists, the refund
			// is safe. A refund-journal failure leaves the charge standing
			// (over-counting spend is the safe direction).
			if rerr := s.ledger.RefundAdmission(req.Tenant, req.User, eps); rerr != nil {
				return nil, httpError(http.StatusInternalServerError, "release failed (%v) and refund failed (%v)", err, rerr)
			}
			return nil, httpError(http.StatusInternalServerError, "release failed: %v (ε refunded)", err)
		}
		// ε was spent on a release we could not publish; the charge stands.
		return nil, httpError(http.StatusInternalServerError, "release failed after ε was spent: %v", err)
	}

	s.cache.store(key, rel)
	if s.store != nil {
		if perr := s.store.Append(entry{Kind: entryRelease, Key: key, Release: &rel}); perr != nil {
			// The release is published and charged; losing its cache entry
			// only costs a future re-computation at a fresh charge. Surface
			// nothing to the analyst.
			_ = perr
		}
	}
	s.bump(req.Tenant, func(m *tenantMetrics) {
		m.admitted++
		m.epsilonSpent += eps
	})
	return s.decorate(req, rel, false, eps), nil
}

// computeRelease runs the two serving stages — influence-plan compilation,
// then the DP release — as a jobgraph on the engine's pool. spent reports
// the ε the release's System actually charged (zero when the run died
// before the noise was drawn).
func (s *Service) computeRelease(ctx context.Context, plan sql.Plan, protected, queryName, fp, key string, eps float64, seed uint64) (rel CachedRelease, spent float64, err error) {
	eng := s.cfg.Engine

	ccfg := core.DefaultConfig()
	ccfg.SampleSize = s.cfg.SampleSize
	ccfg.Epsilon = eps
	// The release seed derives from the cache key alone, so the noise
	// stream is a pure function of (fingerprint, protected, ε, seed): the
	// same request is byte-identical across restarts and across servers,
	// independent of what ran before it.
	ccfg.Seed = seedOf(key)
	sys, err := core.NewSystem(eng, ccfg)
	if err != nil {
		return CachedRelease{}, 0, err
	}

	var (
		q    core.Query[sql.IndexedRow]
		data []sql.IndexedRow
		res  *core.Result
	)
	g := jobgraph.New("serve:"+queryName,
		jobgraph.WithSlots(eng.Workers()),
		jobgraph.WithRetryPolicy(eng.RetryPolicy()),
		jobgraph.WithChaos(eng.Chaos()))
	g.Stage("influence", func(ctx context.Context, sc *jobgraph.StageContext) error {
		var cerr error
		q, data, cerr = sql.CompileDPCount(eng, plan, protected)
		if cerr == nil {
			sc.AddRecords(int64(len(data)))
		}
		return cerr
	})
	g.Stage("release", func(ctx context.Context, sc *jobgraph.StageContext) error {
		var rerr error
		res, rerr = core.RunCtx(ctx, sys, q, data, nil)
		return rerr
	}, "influence")
	if _, gerr := g.Run(ctx); gerr != nil {
		return CachedRelease{}, sys.EpsilonSpent(), gerr
	}

	// Reconcile admission against the System's own ledger: the service
	// admitted eps, the release must have charged exactly eps. A mismatch
	// is a serving bug — fail closed, keep the admission charge (the noisy
	// output exists) and publish nothing.
	spent = sys.EpsilonSpent()
	if math.Abs(spent-eps) > budgetSlack {
		return CachedRelease{}, spent, fmt.Errorf(
			"serve: admission charged ε=%.6g but the release spent ε=%.6g", eps, spent)
	}

	return CachedRelease{
		Query:       queryName,
		Fingerprint: fp,
		Epsilon:     eps,
		Seed:        seed,
		Output:      res.Output,
		SampleSize:  res.SampleSize,
		Charged:     eps,
	}, spent, nil
}

// decorate wraps the cached (tenant-independent) release with the
// requester's identity and remaining headroom.
func (s *Service) decorate(req Request, rel CachedRelease, cached bool, charged float64) *Release {
	tenantRemaining, userRemaining := s.ledger.Remaining(req.Tenant, req.User)
	return &Release{
		Tenant:          req.Tenant,
		User:            req.User,
		Query:           rel.Query,
		Fingerprint:     rel.Fingerprint,
		Epsilon:         rel.Epsilon,
		Seed:            rel.Seed,
		Cached:          cached,
		Charged:         charged,
		Output:          rel.Output,
		SampleSize:      rel.SampleSize,
		TenantRemaining: tenantRemaining,
		UserRemaining:   userRemaining,
	}
}

// seedOf hashes the cache key into the release System's seed (FNV-64a:
// deterministic, dependency-free).
func seedOf(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	seed := h.Sum64()
	if seed == 0 {
		seed = 1 // core.Config rejects a zero seed
	}
	return seed
}

// bump applies fn to tenant's metrics row under the service lock.
func (s *Service) bump(tenant string, fn func(*tenantMetrics)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.metrics[tenant]
	if !ok {
		m = &tenantMetrics{}
		s.metrics[tenant] = m
	}
	fn(m)
}

// Metrics snapshots every tenant's serving counters, sorted by tenant.
func (s *Service) Metrics() []TenantMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantMetrics, 0, len(s.metrics))
	for name, m := range s.metrics {
		out = append(out, TenantMetrics{
			Tenant:         name,
			Admitted:       m.admitted,
			CacheHits:      m.cacheHits,
			ShedQueue:      m.shedQueue,
			RejectedBudget: m.rejectedBudget,
			Failed:         m.failed,
			EpsilonSpent:   m.epsilonSpent,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// CacheStats reports the release cache's residency and hit/miss counters.
func (s *Service) CacheStats() (length int, hits, misses uint64) {
	hits, misses = s.cache.Stats()
	return s.cache.Len(), hits, misses
}

// Report snapshots every tenant's budget state — the GET /budget body.
func (s *Service) Report() []TenantBudgetReport {
	return s.ledger.Report()
}

// Close flushes the persisted state — ledger then cache, compacted into a
// fresh snapshot with the journal truncated — and closes the journal. Safe
// to call when persistence is disabled.
func (s *Service) Close() error {
	if s.store == nil {
		return nil
	}
	compacted := append(s.ledger.compact(), s.cache.compact()...)
	ferr := s.store.Flush(compacted)
	cerr := s.store.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}
