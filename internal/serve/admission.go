package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
)

// admission is the query admission controller: a global slot pool bounds
// how many queries compute concurrently, and a per-tenant occupancy cap
// (queued + running) bounds how deep any one tenant's backlog may grow.
// A query past the cap is load-shed immediately — a 429 with Retry-After —
// rather than parked on an unbounded queue; a query within the cap but
// waiting for a slot experiences backpressure (it blocks, honouring its
// context) instead of failing.
type admission struct {
	slots chan struct{}

	mu       sync.Mutex
	perCap   int
	occupied map[string]int //upa:guardedby(mu) — per-tenant queued + running
}

// newAdmission builds the controller: maxConcurrent global compute slots,
// perTenant occupancy cap (both floored at one).
func newAdmission(maxConcurrent, perTenant int) *admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if perTenant < 1 {
		perTenant = 1
	}
	return &admission{
		slots:    make(chan struct{}, maxConcurrent),
		perCap:   perTenant,
		occupied: make(map[string]int),
	}
}

// acquire admits one query for tenant: it either returns a release closure
// (call exactly once, after the query finishes) or an admission *Error.
// Over-cap tenants shed with 429; a context cancelled while queued returns
// the context's error as a 503 (the client went away or the server is
// draining — retrying is reasonable).
func (a *admission) acquire(ctx context.Context, tenant string, retryAfter int) (func(), *Error) {
	a.mu.Lock()
	if occ := a.occupied[tenant]; occ >= a.perCap {
		a.mu.Unlock()
		return nil, &Error{
			Status:            http.StatusTooManyRequests,
			Message:           fmt.Sprintf("tenant %q has %d queries queued or running (cap %d); shed", tenant, occ, a.perCap),
			RetryAfterSeconds: retryAfter,
		}
	}
	a.occupied[tenant]++
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		a.mu.Lock()
		a.occupied[tenant]--
		a.mu.Unlock()
		return nil, &Error{
			Status:            http.StatusServiceUnavailable,
			Message:           "query abandoned while queued: " + ctx.Err().Error(),
			RetryAfterSeconds: retryAfter,
		}
	}

	var once sync.Once
	release := func() {
		once.Do(func() {
			<-a.slots
			a.mu.Lock()
			a.occupied[tenant]--
			a.mu.Unlock()
		})
	}
	return release, nil
}

// depth reports the tenant's current queued + running occupancy.
func (a *admission) depth(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.occupied[tenant]
}
