// Package lockdiscipline checks //upa:guardedby(mu) field annotations
// interprocedurally: every read or write of an annotated field must happen
// with the named sibling mutex held — including through helper calls.
// Helpers whose name ends in *Locked are the one sanctioned exception:
// they export a caller-must-hold summary instead of acquiring, and every
// call site is checked against that summary. Closures are scanned with an
// empty held set (they run at an unknown time), and `go` statements drop
// the caller's locks for the same reason.
//
// The annotation grammar is one comment on the field, `//upa:guardedby(mu)`
// where mu names a sync.Mutex (or RWMutex) field declared by some struct in
// the same package — usually a sibling field, but the guard may live one
// level up (Ledger.mu guards tenantLedger state). The analyzer rejects
// annotations whose lock name resolves to no such field.
package lockdiscipline

import (
	"go/ast"
	"regexp"
	"strings"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the lockdiscipline analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "enforces //upa:guardedby(mu) field annotations interprocedurally: " +
		"accesses must hold the named mutex, *Locked helpers push the duty to " +
		"their callers via summaries",
	Run: run,
}

var guardedByRE = regexp.MustCompile(`//upa:guardedby\(([A-Za-z_][A-Za-z0-9_]*)\)`)

func run(pass *analysis.Pass) error {
	if pass.Module == nil {
		return nil
	}
	mutexFields := packageMutexFields(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				validateAnnotations(pass, d, mutexFields)
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fi := pass.Module.FuncInfoFor(pass.Pkg, d)
				if fi == nil {
					continue
				}
				needs := pass.Module.LockNeeds(fi)
				if fi.CallerMustHold() {
					// The needs become the helper's RequiresLocks summary;
					// its call sites carry the check instead.
					continue
				}
				for _, n := range needs {
					pass.Reportf(n.Pos, n.Desc+
						"; acquire the mutex across the access, move it into a *Locked helper, or justify with //upa:allow(lockdiscipline)")
				}
			}
		}
	}
	return nil
}

// packageMutexFields collects every sync.Mutex/RWMutex field name declared
// by any struct of the package. Guards may live one level up from the data
// they protect (Ledger.mu guards tenantLedger state), so annotation
// validation is package-scoped, not sibling-scoped.
func packageMutexFields(pass *analysis.Pass) map[string]bool {
	out := make(map[string]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, f := range st.Fields.List {
				if !isMutexType(f.Type) {
					continue
				}
				for _, name := range f.Names {
					out[name.Name] = true
				}
			}
			return true
		})
	}
	return out
}

// validateAnnotations rejects //upa:guardedby annotations whose lock name
// matches no mutex field declared anywhere in the package — a typo there
// would silently guard nothing.
func validateAnnotations(pass *analysis.Pass, d *ast.GenDecl, mutexFields map[string]bool) {
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		for _, f := range st.Fields.List {
			for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
				if cg == nil {
					continue
				}
				for _, c := range cg.List {
					m := guardedByRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					if !mutexFields[m[1]] {
						pass.Reportf(c.Pos(),
							"upa:guardedby("+m[1]+") names no sync.Mutex field in this package (annotating "+ts.Name.Name+"); the annotation guards nothing")
					}
				}
			}
		}
	}
}

// isMutexType recognizes sync.Mutex / sync.RWMutex fields (possibly
// pointers) by type syntax.
func isMutexType(expr ast.Expr) bool {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return isMutexType(t.X)
	case *ast.SelectorExpr:
		return strings.HasSuffix(t.Sel.Name, "Mutex")
	case *ast.Ident:
		return strings.HasSuffix(t.Name, "Mutex")
	}
	return false
}
