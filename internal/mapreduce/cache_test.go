package mapreduce

import (
	"fmt"
	"sync"
	"testing"
)

// TestReductionCacheConcurrent hammers the cache from concurrent readers,
// writers and clearers; under -race this pins the locking discipline of
// every public entry point.
func TestReductionCacheConcurrent(t *testing.T) {
	eng := NewEngine()
	c := eng.Cache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%16)
				switch {
				case i%31 == 0:
					c.Clear()
				case g%2 == 0:
					CachePut(c, key, g*1000+i)
				default:
					if v, ok := CacheGet[int](c, key); ok && v < 0 {
						t.Errorf("cache returned impossible value %d", v)
					}
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReductionCacheGrowsUnbounded documents the eviction-free contract:
// distinct keys accumulate until Clear, so Len tracks insertions exactly.
func TestReductionCacheGrowsUnbounded(t *testing.T) {
	eng := NewEngine()
	c := eng.Cache()
	const n = 500
	for i := 0; i < n; i++ {
		CachePut(c, fmt.Sprintf("entry-%d", i), i)
		if got := c.Len(); got != i+1 {
			t.Fatalf("Len after %d puts = %d: the cache must not evict", i+1, got)
		}
	}
	c.Clear()
	if got := c.Len(); got != 0 {
		t.Fatalf("Len after Clear = %d, want 0", got)
	}
}
