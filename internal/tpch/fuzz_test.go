package tpch

import (
	"strings"
	"testing"
)

// The CSV readers face user-supplied files; they must reject garbage with
// errors, never panic or return half-parsed silent junk.

func FuzzReadOrders(f *testing.F) {
	f.Add("orderkey,custkey,orderstatus,totalprice,orderdate,orderpriority,specialrequest\n1,2,F,3.5,4,1-URGENT,true\n")
	f.Add("")
	f.Add("orderkey,custkey\n1,2\n")
	f.Add("orderkey,custkey,orderstatus,totalprice,orderdate,orderpriority,specialrequest\nx,y,z,w,v,u,t\n")
	f.Add("\"unterminated")
	f.Fuzz(func(t *testing.T, input string) {
		orders, err := ReadOrders(strings.NewReader(input))
		if err != nil {
			return
		}
		// On success, the input must at least mention the header's first
		// column (csv may have unquoted it, so substring not prefix).
		if !strings.Contains(input, "orderkey") {
			t.Fatalf("accepted input without the orders header (%d rows)", len(orders))
		}
	})
}

func FuzzReadLineitems(f *testing.F) {
	f.Add("orderkey,partkey,suppkey,linenumber,quantity,extendedprice,discount,tax,returnflag,linestatus,shipdate,commitdate,receiptdate,shipmode\n" +
		"1,2,3,4,5,6,0.05,0.01,R,O,10,11,12,AIR\n")
	f.Add("not,a,lineitem\n")
	f.Add("orderkey,partkey,suppkey,linenumber,quantity,extendedprice,discount,tax,returnflag,linestatus,shipdate,commitdate,receiptdate,shipmode\n" +
		"NaN,2,3,4,5,6,7,8,R,O,10,11,12,AIR\n")
	f.Fuzz(func(t *testing.T, input string) {
		_, _ = ReadLineitems(strings.NewReader(input)) // must not panic
	})
}
