package core

import (
	"fmt"

	"upa/internal/mapreduce"
)

// RunVanilla evaluates q on data through the engine with no DP machinery —
// the "vanilla Spark" baseline every overhead figure normalizes against.
func RunVanilla[T any](eng *mapreduce.Engine, q Query[T], data []T) ([]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("core: query %q on empty input", q.Name)
	}
	parts := eng.Workers()
	if parts > len(data) {
		parts = len(data)
	}
	ds, err := mapreduce.FromSlice(eng, data, parts)
	if err != nil {
		return nil, err
	}
	state, err := mapreduce.Reduce(mapreduce.Map(ds, q.Map), q.reducer())
	if err != nil {
		return nil, err
	}
	return q.finalize(state), nil
}
