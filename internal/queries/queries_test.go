package queries

import (
	"errors"
	"math"
	"testing"

	"upa/internal/core"
	"upa/internal/flex"
	"upa/internal/lifesci"
	"upa/internal/mapreduce"
	"upa/internal/stats"
	"upa/internal/tpch"
)

// testWorkload is small enough for brute force in every test.
func testWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload(
		tpch.Config{Lineitems: 2000, Skew: 0.3, Seed: 3},
		lifesci.Config{Records: 1500, Dims: 3, Clusters: 2, OutlierFrac: 0.01, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func testSystem(t *testing.T, eng *mapreduce.Engine) *core.System {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.SampleSize = 100
	sys, err := core.NewSystem(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestAllNineQueriesPresent(t *testing.T) {
	w := testWorkload(t)
	all := w.All()
	if len(all) != 9 {
		t.Fatalf("All() returned %d queries, want 9", len(all))
	}
	wantNames := map[string]Kind{
		"TPCH1": KindCount, "TPCH4": KindCount, "TPCH13": KindCount,
		"TPCH16": KindCount, "TPCH21": KindCount,
		"KMeans": KindML, "Linear Regression": KindML,
		"TPCH6": KindArithmetic, "TPCH11": KindArithmetic,
	}
	for _, r := range all {
		kind, ok := wantNames[r.Name()]
		if !ok {
			t.Errorf("unexpected query %q", r.Name())
			continue
		}
		if r.Kind() != kind {
			t.Errorf("%s kind = %v, want %v", r.Name(), r.Kind(), kind)
		}
		delete(wantNames, r.Name())
	}
	if len(wantNames) != 0 {
		t.Errorf("missing queries: %v", wantNames)
	}
}

func TestSupportMatrixMatchesTableII(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	flexSupported := 0
	for _, r := range w.All() {
		plan, err := r.FLEXPlan(eng)
		if err != nil {
			t.Fatalf("%s: FLEXPlan: %v", r.Name(), err)
		}
		if plan.Supported() != r.FLEXSupported() {
			t.Errorf("%s: plan support %v != runner support %v", r.Name(), plan.Supported(), r.FLEXSupported())
		}
		if r.FLEXSupported() {
			flexSupported++
			if _, err := plan.LocalSensitivity(); err != nil {
				t.Errorf("%s: supported plan failed: %v", r.Name(), err)
			}
		} else if _, err := plan.LocalSensitivity(); !errors.Is(err, flex.ErrUnsupported) {
			t.Errorf("%s: unsupported plan error = %v, want ErrUnsupported", r.Name(), err)
		}
	}
	if flexSupported != 5 {
		t.Errorf("FLEX supports %d queries, want 5 (Table II)", flexSupported)
	}
}

func TestNewWorkloadFromDB(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{Lineitems: 1000, Skew: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkloadFromDB(db)
	if err != nil {
		t.Fatal(err)
	}
	if w.DB != db {
		t.Fatal("workload does not wrap the supplied database")
	}
	// The TPC-H runners work; results match a full workload on the same DB.
	eng := mapreduce.NewEngine()
	out, err := w.TPCH1().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewWorkload(
		tpch.Config{Lineitems: 1000, Skew: 0.2, Seed: 9},
		lifesci.Config{Records: 100, Dims: 2, Clusters: 2, Seed: 9},
	)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := full.TPCH1().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != ref[0] {
		t.Fatalf("FromDB TPCH1 = %v, full workload = %v", out[0], ref[0])
	}
	if _, err := NewWorkloadFromDB(nil); err == nil {
		t.Fatal("nil database accepted")
	}
}

func TestGroundTruthWithAdditions(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	for _, name := range []string{"TPCH1", "TPCH6", "KMeans"} {
		r, err := w.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := r.GroundTruth(eng, 50, stats.NewRNG(4))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(truth.AdditionOutputs) != 50 {
			t.Errorf("%s: %d addition outputs, want 50", name, len(truth.AdditionOutputs))
		}
		if len(truth.RemovalOutputs) != r.DatasetSize() {
			t.Errorf("%s: %d removal outputs, want %d", name, len(truth.RemovalOutputs), r.DatasetSize())
		}
	}
}

func TestByName(t *testing.T) {
	w := testWorkload(t)
	r, err := w.ByName("TPCH6")
	if err != nil || r.Name() != "TPCH6" {
		t.Fatalf("ByName(TPCH6) = %v, %v", r, err)
	}
	if _, err := w.ByName("TPCH99"); err == nil {
		t.Fatal("unknown query accepted")
	}
}

func TestVanillaOutputsSane(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	for _, r := range w.All() {
		out, err := r.RunVanilla(eng)
		if err != nil {
			t.Fatalf("%s: RunVanilla: %v", r.Name(), err)
		}
		if len(out) == 0 {
			t.Fatalf("%s: empty output", r.Name())
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: output[%d] = %v", r.Name(), i, v)
			}
		}
	}
}

func TestTPCH1CountsCutoff(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	out, err := w.TPCH1().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, l := range w.DB.Lineitems {
		if l.ShipDate <= tpch1Cutoff {
			want++
		}
	}
	if out[0] != want {
		t.Fatalf("TPCH1 = %v, want %v", out[0], want)
	}
	if want == 0 || want == float64(len(w.DB.Lineitems)) {
		t.Fatalf("degenerate cutoff selectivity: %v of %d", want, len(w.DB.Lineitems))
	}
}

func TestTPCH6MatchesDirectSum(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	out, err := w.TPCH6().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, l := range w.DB.Lineitems {
		if l.ShipDate >= tpch6YearLo && l.ShipDate < tpch6YearHi &&
			l.Discount >= tpch6DiscountLo-1e-9 && l.Discount <= tpch6DiscountHi+1e-9 &&
			l.Quantity < tpch6QtyMax {
			want += l.ExtendedPrice * l.Discount
		}
	}
	if math.Abs(out[0]-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("TPCH6 = %v, want %v", out[0], want)
	}
	if want <= 0 {
		t.Fatal("TPCH6 filters selected nothing; generator domains drifted")
	}
}

func TestTPCH4CountsJoinedPairs(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	out, err := w.TPCH4().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	late := make(map[int]float64)
	for _, l := range w.DB.Lineitems {
		if l.CommitDate < l.ReceiptDate {
			late[l.OrderKey]++
		}
	}
	var want float64
	for _, o := range w.DB.Orders {
		if o.OrderDate >= tpch4WindowLo && o.OrderDate < tpch4WindowHi {
			want += late[o.OrderKey]
		}
	}
	if out[0] != want {
		t.Fatalf("TPCH4 = %v, want %v", out[0], want)
	}
}

func TestGroundTruthSensitivities(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()

	// TPCH1 and TPCH16: one record influences the count by at most 1.
	for _, name := range []string{"TPCH1", "TPCH16"} {
		r, err := w.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := r.GroundTruth(eng, 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if truth.LocalSensitivity[0] > 1 {
			t.Errorf("%s: ground truth sensitivity %v > 1", name, truth.LocalSensitivity[0])
		}
	}

	// TPCH4: influence equals an order's late-lineitem fan-out, bounded by
	// the max orderkey frequency but usually far below FLEX's product.
	truth, err := w.TPCH4().GroundTruth(eng, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := w.TPCH4().FLEXPlan(eng)
	if err != nil {
		t.Fatal(err)
	}
	flexSens, err := plan.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if truth.LocalSensitivity[0] > flexSens {
		t.Errorf("TPCH4: FLEX (%v) not an upper bound of truth (%v)", flexSens, truth.LocalSensitivity[0])
	}
}

func TestFLEXOverestimatesMultiJoinQueries(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	for _, name := range []string{"TPCH16", "TPCH21"} {
		r, err := w.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := r.GroundTruth(eng, 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plan, err := r.FLEXPlan(eng)
		if err != nil {
			t.Fatal(err)
		}
		flexSens, err := plan.LocalSensitivity()
		if err != nil {
			t.Fatal(err)
		}
		if truth.LocalSensitivity[0] <= 0 {
			t.Logf("%s: degenerate truth sensitivity %v", name, truth.LocalSensitivity[0])
			continue
		}
		if ratio := flexSens / truth.LocalSensitivity[0]; ratio < 100 {
			t.Errorf("%s: FLEX/truth = %v, want >= 100 (orders of magnitude, Fig 2a)", name, ratio)
		}
	}
}

func TestUPAEndToEndOnAllQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end UPA over all nine queries is slow")
	}
	w := testWorkload(t)
	for _, r := range w.All() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			eng := mapreduce.NewEngine()
			sys := testSystem(t, eng)
			res, err := r.RunUPA(sys)
			if err != nil {
				t.Fatalf("RunUPA: %v", err)
			}
			if len(res.Output) == 0 {
				t.Fatal("empty release")
			}
			for d, s := range res.Sensitivity {
				if s < 0 || math.IsNaN(s) {
					t.Fatalf("sensitivity[%d] = %v", d, s)
				}
			}
			if res.SampleSize != 100 {
				t.Errorf("SampleSize = %d, want 100", res.SampleSize)
			}
			truth, err := r.GroundTruth(eng, 100, stats.NewRNG(1))
			if err != nil {
				t.Fatalf("GroundTruth: %v", err)
			}
			// UPA's inferred sensitivity should be the same order of
			// magnitude as the truth whenever the truth is non-degenerate.
			for d := range truth.LocalSensitivity {
				tr := truth.LocalSensitivity[d]
				if tr <= 0 {
					continue
				}
				ratio := res.Sensitivity[d] / tr
				if ratio > 1000 || ratio < 1e-3 {
					t.Errorf("coordinate %d: UPA sensitivity %v vs truth %v (ratio %v)",
						d, res.Sensitivity[d], tr, ratio)
				}
			}
		})
	}
}

func TestJoinQueriesShuffleTwiceUnderUPA(t *testing.T) {
	w := testWorkload(t)

	vanillaEng := mapreduce.NewEngine()
	if _, err := w.TPCH4().RunVanilla(vanillaEng); err != nil {
		t.Fatal(err)
	}
	vanillaShuffles := vanillaEng.Metrics().ShuffleRounds

	upaEng := mapreduce.NewEngine()
	sys := testSystem(t, upaEng)
	if _, err := w.TPCH4().RunUPA(sys); err != nil {
		t.Fatal(err)
	}
	upaShuffles := upaEng.Metrics().ShuffleRounds

	if upaShuffles < 2*vanillaShuffles {
		t.Errorf("UPA shuffles = %d, vanilla = %d; want at least double (§V-C)",
			upaShuffles, vanillaShuffles)
	}
}

func TestKMeansMovesTowardData(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	out, err := w.KMeans().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	d := w.LS.Config.Dims
	k := len(w.kmInit)
	if len(out) != k*d {
		t.Fatalf("KMeans output dim = %d, want %d", len(out), k*d)
	}
	// One Lloyd step from a perturbed init should (weakly) reduce the total
	// distance to the planted centres for at least one cluster.
	improved := false
	for c := 0; c < k; c++ {
		before := dist2(w.kmInit[c], w.LS.TrueCenters[c])
		after := dist2(out[c*d:(c+1)*d], w.LS.TrueCenters[c])
		if after < before {
			improved = true
		}
	}
	if !improved {
		t.Error("no cluster centre moved toward the planted centres")
	}
}

func TestLinearRegressionStepReducesLoss(t *testing.T) {
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	out, err := w.LinearRegression().RunVanilla(eng)
	if err != nil {
		t.Fatal(err)
	}
	d := w.LS.Config.Dims
	if len(out) != d+1 {
		t.Fatalf("LR output dim = %d, want %d", len(out), d+1)
	}
	loss := func(wts []float64) float64 {
		var sum float64
		for _, p := range w.LS.Points {
			pred := wts[d]
			for j, x := range p.Features {
				pred += wts[j] * x
			}
			r := pred - p.Target
			sum += r * r
		}
		return sum / float64(len(w.LS.Points))
	}
	if after, before := loss(out), loss(w.lrInit); after >= before {
		t.Errorf("gradient step increased loss: %v -> %v", before, after)
	}
}

func TestMLOutputsDifferOnNeighbouringData(t *testing.T) {
	// The paper's motivation for LR (§III): neighbouring datasets give
	// different model outputs, so iDP is needed.
	w := testWorkload(t)
	eng := mapreduce.NewEngine()
	truth, err := w.LinearRegression().GroundTruth(eng, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	maxSens := 0.0
	for _, s := range truth.LocalSensitivity {
		maxSens = math.Max(maxSens, s)
	}
	if maxSens <= 0 {
		t.Fatal("LR output identical on all neighbouring datasets")
	}
}
