package bench

import (
	"strings"
	"testing"
)

func TestSpillBenchBudgetForcesSpill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lineitems = 3000
	rows, err := SpillBench(cfg, []int64{-1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	inMem, spilled := rows[0], rows[1]
	if inMem.SpilledBytes != 0 || inMem.SpillFiles != 0 || inMem.SpillReads != 0 {
		t.Errorf("unlimited budget spilled: %+v", inMem)
	}
	if spilled.SpilledBytes <= 0 || spilled.SpillFiles <= 0 || spilled.SpillReads <= 0 {
		t.Errorf("budget 0 did not spill: %+v", spilled)
	}
	if inMem.Slowdown != 1 {
		t.Errorf("reference slowdown = %v, want 1", inMem.Slowdown)
	}
	// SpillBench itself fails if the spilled output diverges from the
	// in-memory one, so reaching here also certifies output invariance.
}

func TestSpillBenchMidBudgetBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lineitems = 3000
	rows, err := SpillBench(cfg, []int64{-1, 64 << 10, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	mid, all := rows[1], rows[2]
	if mid.SpilledBytes <= 0 {
		t.Fatalf("mid budget did not spill: %+v", mid)
	}
	// A finite budget retains some partitions in memory, so it can never
	// spill more than the spill-everything run.
	if mid.SpilledBytes > all.SpilledBytes {
		t.Errorf("mid budget spilled %d bytes, more than budget 0's %d",
			mid.SpilledBytes, all.SpilledBytes)
	}
}

func TestWriteSpillCSV(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Lineitems = 1000
	rows, err := SpillBench(cfg, []int64{-1, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteSpillCSV(&b, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d csv lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "budget,records,partitions,distinct_keys,spilled_bytes") {
		t.Errorf("header = %q", lines[0])
	}
}
