package mapreduce

import (
	"context"
	"errors"
	"testing"
)

func TestEngineOptions(t *testing.T) {
	e := NewEngine(WithWorkers(0), WithMaxAttempts(0))
	if e.Workers() != 1 {
		t.Errorf("Workers = %d, want clamp to 1", e.Workers())
	}
	if got := e.RetryPolicy().Attempts(); got != 1 {
		t.Errorf("Attempts = %d, want clamp to 1", got)
	}
	e = NewEngine(WithWorkers(4), WithMaxAttempts(5))
	if e.Workers() != 4 || e.RetryPolicy().MaxAttempts != 5 {
		t.Errorf("options not applied: %d workers, %d attempts", e.Workers(), e.RetryPolicy().MaxAttempts)
	}
}

func TestFaultInjectionRecovers(t *testing.T) {
	eng := NewEngine(WithWorkers(2), WithMaxAttempts(3))
	d, err := FromSlice(eng, intsUpTo(100), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two faults with a three-attempt budget: even if one task absorbs
	// both, it still has a successful attempt left.
	eng.InjectFaults(2)
	sum, err := Reduce(Map(d, func(x int) int { return x }), func(a, b int) int { return a + b })
	if err != nil {
		t.Fatalf("job failed despite retry budget: %v", err)
	}
	if sum != 4950 {
		t.Fatalf("recovered result = %d, want 4950", sum)
	}
	m := eng.Metrics()
	if m.TaskFaults != 2 {
		t.Errorf("TaskFaults = %d, want 2", m.TaskFaults)
	}
	if m.TaskAttempts <= m.TasksRun {
		t.Errorf("no retries recorded: attempts %d, runs %d", m.TaskAttempts, m.TasksRun)
	}
}

func TestFaultInjectionExhaustsRetries(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithMaxAttempts(2))
	d, err := FromSlice(eng, intsUpTo(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.InjectFaults(10) // more faults than the single task's attempt budget
	_, err = d.Collect()
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("Collect error = %v, want ErrTaskFailed", err)
	}
}

func TestFaultRecomputesFromLineage(t *testing.T) {
	// A fault on the final collect must recompute through the whole
	// narrow-transformation chain and still give the right answer.
	eng := NewEngine(WithWorkers(1), WithMaxAttempts(5))
	d, err := FromSlice(eng, intsUpTo(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	chain := Filter(Map(d, func(x int) int { return x + 1 }), func(x int) bool { return x%2 == 0 })
	eng.InjectFaults(1)
	got, err := chain.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 4, 6, 8, 10}
	if len(got) != len(want) {
		t.Fatalf("Collect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Collect = %v, want %v", got, want)
		}
	}
}

func TestWideTransformSurvivesFaults(t *testing.T) {
	// A fault during a shuffled job must recompute through the whole wide
	// lineage and produce the exact same grouped result.
	run := func(faults int) map[int]int {
		eng := NewEngine(WithWorkers(2), WithMaxAttempts(5))
		var pairs []Pair[int, int]
		for i := 0; i < 500; i++ {
			pairs = append(pairs, Pair[int, int]{Key: i % 7, Value: i})
		}
		d, err := FromSlice(eng, pairs, 4)
		if err != nil {
			t.Fatal(err)
		}
		if faults > 0 {
			eng.InjectFaults(faults)
		}
		got, err := ReduceByKey(d, func(a, b int) int { return a + b }).Collect()
		if err != nil {
			t.Fatalf("shuffled job with %d faults failed: %v", faults, err)
		}
		out := make(map[int]int, len(got))
		for _, p := range got {
			out[p.Key] = p.Value
		}
		return out
	}
	clean := run(0)
	faulty := run(3)
	if len(clean) != len(faulty) {
		t.Fatalf("group counts differ: %d vs %d", len(clean), len(faulty))
	}
	for k, v := range clean {
		if faulty[k] != v {
			t.Fatalf("key %d: %d under faults vs %d clean", k, faulty[k], v)
		}
	}
}

func TestPersistedDatasetSurvivesFaults(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithMaxAttempts(4))
	d, err := FromSlice(eng, intsUpTo(200), 4)
	if err != nil {
		t.Fatal(err)
	}
	squared := Map(d, func(x int) int { return x * x }).Persist()
	eng.InjectFaults(2)
	first, err := squared.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// The persisted materialization is complete and reusable after faults.
	mappedBefore := eng.Metrics().RecordsMapped
	second, err := squared.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if eng.Metrics().RecordsMapped != mappedBefore {
		t.Error("persisted dataset recomputed after faulty materialization")
	}
	for i := range first {
		if first[i] != second[i] || first[i] != i*i {
			t.Fatalf("value %d corrupted: %d vs %d", i, first[i], second[i])
		}
	}
}

func TestMetricsSnapshotSub(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, intsUpTo(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics()
	if _, err := Map(d, func(x int) int { return x }).Collect(); err != nil {
		t.Fatal(err)
	}
	delta := eng.Metrics().Sub(before)
	if delta.RecordsMapped != 10 {
		t.Errorf("delta RecordsMapped = %d, want 10", delta.RecordsMapped)
	}
	if delta.TasksRun != 2 {
		t.Errorf("delta TasksRun = %d, want 2", delta.TasksRun)
	}
}

func TestCacheHitRate(t *testing.T) {
	var s MetricsSnapshot
	if s.CacheHitRate() != 0 {
		t.Error("empty snapshot should have zero hit rate")
	}
	s.CacheHits, s.CacheMisses = 3, 1
	if got := s.CacheHitRate(); got != 0.75 {
		t.Errorf("CacheHitRate = %v, want 0.75", got)
	}
}

func TestReductionCache(t *testing.T) {
	eng := NewEngine()
	c := eng.Cache()
	if _, ok := CacheGet[[]float64](c, "k"); ok {
		t.Fatal("hit on empty cache")
	}
	CachePut(c, "k", []float64{1, 2})
	got, ok := CacheGet[[]float64](c, "k")
	if !ok || len(got) != 2 {
		t.Fatalf("CacheGet = %v, %v", got, ok)
	}
	// Wrong-type access is a miss, not a panic — and it evicts the stale
	// entry so the key is not poisoned for every future typed get (a
	// get-then-put-if-missing caller would otherwise never repopulate it).
	if _, ok := CacheGet[string](c, "k"); ok {
		t.Fatal("wrong-type cache access succeeded")
	}
	if c.Len() != 0 {
		t.Errorf("Len after wrong-type get = %d, want 0 (stale entry must be evicted)", c.Len())
	}
	// The next put under the same key repopulates, and the typed get hits.
	CachePut(c, "k", "replacement")
	if got, ok := CacheGet[string](c, "k"); !ok || got != "replacement" {
		t.Fatalf("CacheGet after replacement = %q, %v", got, ok)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d, want 0", c.Len())
	}
	m := eng.Metrics()
	if m.CacheHits != 2 || m.CacheMisses != 2 {
		t.Errorf("cache counters = %d hits / %d misses, want 2/2", m.CacheHits, m.CacheMisses)
	}
}

func TestRunTasksZero(t *testing.T) {
	eng := NewEngine()
	if err := eng.runTasks(context.Background(), "test:zero", 0, func(context.Context, int) error { return errors.New("never") }); err != nil {
		t.Fatalf("runTasks(0) = %v, want nil", err)
	}
}

func TestApplicationErrorNotRetried(t *testing.T) {
	eng := NewEngine(WithMaxAttempts(5))
	appErr := errors.New("app failure")
	calls := 0
	err := eng.runTasks(context.Background(), "test:app-error", 1, func(context.Context, int) error {
		calls++
		return appErr
	})
	if !errors.Is(err, appErr) {
		t.Fatalf("error = %v, want %v", err, appErr)
	}
	if calls != 1 {
		t.Fatalf("application error retried %d times", calls)
	}
}

func TestAccountBatches(t *testing.T) {
	eng := NewEngine()
	before := eng.Metrics()
	eng.AccountBatches(3, 2500)
	eng.AccountBatches(1, 500)
	d := eng.Metrics().Sub(before)
	if d.BatchesProcessed != 4 {
		t.Errorf("BatchesProcessed = %d, want 4", d.BatchesProcessed)
	}
	if d.RecordsBatched != 3000 {
		t.Errorf("RecordsBatched = %d, want 3000", d.RecordsBatched)
	}
}
