package mapreduce

import (
	"fmt"
	"sync"
)

// shuffle materializes a pair dataset and redistributes its records into
// numParts buckets by key hash. Within a bucket the records keep a
// deterministic order (source partition order, then record order), so all
// downstream results are reproducible. Each call accounts for one shuffle
// round and len(records) shuffled records — the unit the paper's overhead
// analysis is phrased in (joinDP "triggers shuffling twice", §V-C).
func shuffle[K comparable, V any](d *Dataset[Pair[K, V]], numParts int) ([][]Pair[K, V], error) {
	parts, err := d.CollectPartitions()
	if err != nil {
		return nil, err
	}
	buckets := make([][]Pair[K, V], numParts)
	total := 0
	for _, part := range parts {
		for _, rec := range part {
			b := int(hashOf(rec.Key) % uint64(numParts))
			buckets[b] = append(buckets[b], rec)
			total++
		}
	}
	d.eng.metrics.ShuffleRounds.Add(1)
	d.eng.metrics.RecordsShuffled.Add(int64(total))
	return buckets, nil
}

// shuffled lazily wraps a one-time shuffle of d so several child partitions
// share it.
type shuffled[K comparable, V any] struct {
	once    sync.Once
	buckets [][]Pair[K, V]
	err     error
}

func (s *shuffled[K, V]) get(d *Dataset[Pair[K, V]], numParts int) ([][]Pair[K, V], error) {
	s.once.Do(func() { s.buckets, s.err = shuffle(d, numParts) })
	return s.buckets, s.err
}

// ReduceByKey combines all values of each key with the commutative,
// associative reducer f. It is a wide transformation: one shuffle round.
// Output keys appear in deterministic first-seen order within each
// partition.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], f Reducer[V]) *Dataset[Pair[K, V]] {
	sh := &shuffled[K, V]{}
	numParts := d.numParts
	return derived[Pair[K, V], Pair[K, V]](d, "reduceByKey", numParts, func(p int) ([]Pair[K, V], error) {
		buckets, err := sh.get(d, numParts)
		if err != nil {
			return nil, err
		}
		acc := make(map[K]V)
		order := make([]K, 0)
		for _, rec := range buckets[p] {
			if cur, ok := acc[rec.Key]; ok {
				acc[rec.Key] = f(cur, rec.Value)
				d.eng.metrics.ReduceOps.Add(1)
			} else {
				acc[rec.Key] = rec.Value
				order = append(order, rec.Key)
			}
		}
		out := make([]Pair[K, V], len(order))
		for i, k := range order {
			out[i] = Pair[K, V]{Key: k, Value: acc[k]}
		}
		return out, nil
	})
}

// GroupByKey gathers all values of each key into a slice, in deterministic
// order. One shuffle round.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[Pair[K, []V]] {
	sh := &shuffled[K, V]{}
	numParts := d.numParts
	return derived[Pair[K, V], Pair[K, []V]](d, "groupByKey", numParts, func(p int) ([]Pair[K, []V], error) {
		buckets, err := sh.get(d, numParts)
		if err != nil {
			return nil, err
		}
		groups := make(map[K][]V)
		order := make([]K, 0)
		for _, rec := range buckets[p] {
			if _, ok := groups[rec.Key]; !ok {
				order = append(order, rec.Key)
			}
			groups[rec.Key] = append(groups[rec.Key], rec.Value)
		}
		out := make([]Pair[K, []V], len(order))
		for i, k := range order {
			out[i] = Pair[K, []V]{Key: k, Value: groups[k]}
		}
		return out, nil
	})
}

// Joined is the value type produced by Join: one left and one right value
// sharing a key.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// Join computes the inner equi-join of a and b: every (v, w) combination
// with equal keys. Both sides shuffle (two shuffle rounds total — exactly
// the cost vanilla Spark pays once per Join and UPA pays twice in joinDP).
// The output order is deterministic.
func Join[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[V, W]]], error) {
	if a.eng != b.eng {
		return nil, fmt.Errorf("mapreduce: join across engines")
	}
	shA := &shuffled[K, V]{}
	shB := &shuffled[K, W]{}
	numParts := a.numParts
	child := derived[Pair[K, V], Pair[K, Joined[V, W]]](a, "join", numParts, func(p int) ([]Pair[K, Joined[V, W]], error) {
		left, err := shA.get(a, numParts)
		if err != nil {
			return nil, err
		}
		right, err := shB.get(b, numParts)
		if err != nil {
			return nil, err
		}
		// Build side: hash the right bucket; probe side: stream the left
		// bucket in order for deterministic output.
		build := make(map[K][]W)
		for _, rec := range right[p] {
			build[rec.Key] = append(build[rec.Key], rec.Value)
		}
		var out []Pair[K, Joined[V, W]]
		for _, rec := range left[p] {
			for _, w := range build[rec.Key] {
				out = append(out, Pair[K, Joined[V, W]]{
					Key:   rec.Key,
					Value: Joined[V, W]{Left: rec.Value, Right: w},
				})
			}
		}
		return out, nil
	})
	return child, nil
}

// CoGroup groups the values of both datasets by key: for every key present
// on either side, the output holds all left values and all right values.
// Two shuffle rounds.
func CoGroup[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]]) (*Dataset[Pair[K, Joined[[]V, []W]]], error) {
	if a.eng != b.eng {
		return nil, fmt.Errorf("mapreduce: cogroup across engines")
	}
	shA := &shuffled[K, V]{}
	shB := &shuffled[K, W]{}
	numParts := a.numParts
	child := derived[Pair[K, V], Pair[K, Joined[[]V, []W]]](a, "cogroup", numParts, func(p int) ([]Pair[K, Joined[[]V, []W]], error) {
		left, err := shA.get(a, numParts)
		if err != nil {
			return nil, err
		}
		right, err := shB.get(b, numParts)
		if err != nil {
			return nil, err
		}
		lefts := make(map[K][]V)
		rights := make(map[K][]W)
		order := make([]K, 0)
		seen := make(map[K]bool)
		for _, rec := range left[p] {
			if !seen[rec.Key] {
				seen[rec.Key] = true
				order = append(order, rec.Key)
			}
			lefts[rec.Key] = append(lefts[rec.Key], rec.Value)
		}
		for _, rec := range right[p] {
			if !seen[rec.Key] {
				seen[rec.Key] = true
				order = append(order, rec.Key)
			}
			rights[rec.Key] = append(rights[rec.Key], rec.Value)
		}
		out := make([]Pair[K, Joined[[]V, []W]], len(order))
		for i, k := range order {
			out[i] = Pair[K, Joined[[]V, []W]]{
				Key:   k,
				Value: Joined[[]V, []W]{Left: lefts[k], Right: rights[k]},
			}
		}
		return out, nil
	})
	return child, nil
}

// Distinct removes duplicate records of a comparable element type,
// preserving first-seen order. One shuffle round (records must be
// co-located by value to deduplicate globally).
func Distinct[T comparable](d *Dataset[T]) *Dataset[T] {
	pairs := Map(d, func(t T) Pair[T, struct{}] { return Pair[T, struct{}]{Key: t} })
	reduced := ReduceByKey(pairs, func(a, _ struct{}) struct{} { return a })
	return Map(reduced, func(p Pair[T, struct{}]) T { return p.Key })
}
