package mapreduce

import "sync"

// ReductionCache memoizes reduction results keyed by a caller-chosen string.
// UPA uses it to reuse R(M(S')) — the reduction of the un-sampled bulk of
// the input — across the n sampled neighbouring datasets, the mechanism that
// turns the brute-force linear overhead into a constant one (§VI-E). The
// hit/miss counters feed the Figure 4(b) cache-hit-rate reproduction.
//
// Values are opaque; typed access goes through CacheGet/CachePut below so a
// stale entry of the wrong type is reported as a miss rather than a panic.
//
// The cache is unbounded: nothing is ever evicted, so it grows until Clear
// is called. That is the right trade for UPA's working set — one entry per
// reusable reduction, reused across a whole sensitivity loop — but callers
// keying entries per record or per release must call Clear between phases
// or bound their key space themselves.
type ReductionCache struct {
	mu      sync.Mutex
	entries map[string]any
	metrics *Metrics
}

func newReductionCache(m *Metrics) *ReductionCache {
	return &ReductionCache{entries: make(map[string]any), metrics: m}
}

// Len reports the number of cached entries.
func (c *ReductionCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry (counters are retained).
func (c *ReductionCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]any)
}

func (c *ReductionCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

func (c *ReductionCache) put(key string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = v
}

func (c *ReductionCache) delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

// CacheGet fetches the value stored under key if it exists and has type T.
// A missing key or a stale entry of the wrong type both count as a miss. A
// wrong-type entry is also deleted: callers follow a get-then-put-if-missing
// protocol, so leaving the stale value in place would let one mistyped put
// poison the key — every future typed get missing, every put skipped —
// until Clear. Dropping it lets the next CachePut repopulate the slot.
func CacheGet[T any](c *ReductionCache, key string) (T, bool) {
	var zero T
	v, ok := c.get(key)
	if ok {
		if typed, isT := v.(T); isT {
			c.metrics.CacheHits.Add(1)
			return typed, true
		}
		c.delete(key)
	}
	c.metrics.CacheMisses.Add(1)
	return zero, false
}

// CachePut stores v under key, replacing any prior entry.
func CachePut[T any](c *ReductionCache, key string, v T) {
	c.put(key, v)
}
