package queries

import (
	"upa/internal/core"
	"upa/internal/lifesci"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// lrLearningRate is the fixed step size of the single released SGD step.
// It is small because the generated features are O(10), so the least-squares
// curvature is O(100); larger steps overshoot.
const lrLearningRate = 0.001

// KMeans (Machine Learning, unsupported by FLEX): one Lloyd iteration from a
// fixed initialization. The Mapper assigns its record to the nearest initial
// centre and emits per-cluster coordinate sums plus a count; the Reducer is
// vector addition; Finalize divides sums by counts to produce the updated
// centroids (k*d output coordinates). Empty clusters keep their initial
// centre.
func (w *Workload) KMeans() Runner {
	ls := w.LS
	init := w.kmInit
	k := len(init)
	d := ls.Config.Dims
	stateDim := k * (d + 1)
	return &runner[lifesci.Point]{
		name: "KMeans",
		kind: KindML,
		size: len(ls.Points),
		bind: func(*mapreduce.Engine) (core.Query[lifesci.Point], []lifesci.Point, func(*stats.RNG) lifesci.Point, error) {
			q := core.Query[lifesci.Point]{
				Name:      "KMeans",
				StateDim:  stateDim,
				OutputDim: k * d,
				Map: func(p lifesci.Point) core.State {
					best, bestDist := 0, dist2(p.Features, init[0])
					for c := 1; c < k; c++ {
						if dd := dist2(p.Features, init[c]); dd < bestDist {
							best, bestDist = c, dd
						}
					}
					state := make(core.State, stateDim)
					base := best * (d + 1)
					copy(state[base:], p.Features)
					state[base+d] = 1
					return state
				},
				Finalize: func(s core.State) []float64 {
					out := make([]float64, k*d)
					for c := 0; c < k; c++ {
						base := c * (d + 1)
						count := s[base+d]
						for j := 0; j < d; j++ {
							if count > 0 {
								out[c*d+j] = s[base+j] / count
							} else {
								out[c*d+j] = init[c][j]
							}
						}
					}
					return out
				},
			}
			return q, ls.Points, ls.RandomPoint, nil
		},
		plan: unsupportedPlan("KMeans"),
	}
}

// LinearRegression (Machine Learning, unsupported by FLEX): one batch
// gradient step of least-squares SGD from fixed starting weights, as in the
// paper's LR walkthrough (§III). The Mapper emits the record's gradient
// contribution plus a count; Finalize applies w = w0 - lr * grad / count.
// The released output is the updated weight vector (d+1 coordinates, the
// intercept last).
func (w *Workload) LinearRegression() Runner {
	ls := w.LS
	w0 := w.lrInit
	d := ls.Config.Dims
	stateDim := d + 2 // gradient (d+1) plus count
	return &runner[lifesci.Point]{
		name: "Linear Regression",
		kind: KindML,
		size: len(ls.Points),
		bind: func(*mapreduce.Engine) (core.Query[lifesci.Point], []lifesci.Point, func(*stats.RNG) lifesci.Point, error) {
			q := core.Query[lifesci.Point]{
				Name:      "Linear Regression",
				StateDim:  stateDim,
				OutputDim: d + 1,
				Map: func(p lifesci.Point) core.State {
					pred := w0[d]
					for j, x := range p.Features {
						pred += w0[j] * x
					}
					resid := pred - p.Target
					state := make(core.State, stateDim)
					for j, x := range p.Features {
						state[j] = resid * x
					}
					state[d] = resid // intercept gradient
					state[d+1] = 1
					return state
				},
				Finalize: func(s core.State) []float64 {
					out := make([]float64, d+1)
					count := s[d+1]
					for j := 0; j <= d; j++ {
						if count > 0 {
							out[j] = w0[j] - lrLearningRate*s[j]/count
						} else {
							out[j] = w0[j]
						}
					}
					return out
				},
			}
			return q, ls.Points, ls.RandomPoint, nil
		},
		plan: unsupportedPlan("Linear Regression"),
	}
}

func dist2(a, b []float64) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return sum
}
