package queries

import (
	"fmt"

	"upa/internal/sql"
	"upa/internal/tpch"
)

// This file expresses the TPC-H counting queries as relational plans over
// the internal/sql layer (the SparkSQL stand-in). The plans exist for two
// purposes: they cross-validate the hand-written Mapper/Reducer forms the
// DP path executes (see TestSQLPlansMatchMappers), and they feed FLEX's
// static analysis through sql.FLEXPlan, which extracts join-column
// statistics from the plan tree exactly as FLEX's SQL analyzer would.

// PlanByName returns the canned relational plan for a TPC-H query name
// (tpch1, tpch1full, tpch4, tpch6, tpch13), for callers — like upa-query's
// -explain flag — that address plans the way they address Runners. Any plan
// it returns executes through sql.Optimize when run with sql.Execute.
func PlanByName(db *tpch.DB, name string) (sql.Plan, error) {
	switch name {
	case "tpch1":
		return TPCH1Plan(db), nil
	case "tpch1full":
		return TPCH1FullPlan(db), nil
	case "tpch4":
		return TPCH4Plan(db), nil
	case "tpch6":
		return TPCH6Plan(db), nil
	case "tpch13":
		return TPCH13Plan(db), nil
	default:
		return nil, fmt.Errorf("queries: no relational plan for %q", name)
	}
}

// LineitemRelation converts the lineitem table to a relational scan.
func LineitemRelation(db *tpch.DB) *sql.ScanPlan {
	cols := sql.Schema{
		{Name: "l_orderkey", Kind: sql.KindInt},
		{Name: "l_partkey", Kind: sql.KindInt},
		{Name: "l_suppkey", Kind: sql.KindInt},
		{Name: "l_quantity", Kind: sql.KindFloat},
		{Name: "l_extendedprice", Kind: sql.KindFloat},
		{Name: "l_discount", Kind: sql.KindFloat},
		{Name: "l_tax", Kind: sql.KindFloat},
		{Name: "l_returnflag", Kind: sql.KindString},
		{Name: "l_linestatus", Kind: sql.KindString},
		{Name: "l_shipdate", Kind: sql.KindInt},
		{Name: "l_commitdate", Kind: sql.KindInt},
		{Name: "l_receiptdate", Kind: sql.KindInt},
	}
	rows := make([]sql.Row, len(db.Lineitems))
	for i, l := range db.Lineitems {
		rows[i] = sql.Row{
			sql.Int(int64(l.OrderKey)), sql.Int(int64(l.PartKey)), sql.Int(int64(l.SuppKey)),
			sql.Float(l.Quantity), sql.Float(l.ExtendedPrice), sql.Float(l.Discount),
			sql.Float(l.Tax), sql.Str(l.ReturnFlag), sql.Str(l.LineStatus),
			sql.Int(int64(l.ShipDate)), sql.Int(int64(l.CommitDate)), sql.Int(int64(l.ReceiptDate)),
		}
	}
	return sql.Scan("lineitem", cols, rows)
}

// OrdersRelation converts the orders table to a relational scan.
func OrdersRelation(db *tpch.DB) *sql.ScanPlan {
	cols := sql.Schema{
		{Name: "o_orderkey", Kind: sql.KindInt},
		{Name: "o_custkey", Kind: sql.KindInt},
		{Name: "o_orderdate", Kind: sql.KindInt},
		{Name: "o_orderstatus", Kind: sql.KindString},
		{Name: "o_special", Kind: sql.KindBool},
	}
	rows := make([]sql.Row, len(db.Orders))
	for i, o := range db.Orders {
		rows[i] = sql.Row{
			sql.Int(int64(o.OrderKey)), sql.Int(int64(o.CustKey)),
			sql.Int(int64(o.OrderDate)), sql.Str(o.OrderStatus), sql.Bool(o.SpecialRequest),
		}
	}
	return sql.Scan("orders", cols, rows)
}

// CustomerRelation converts the customer table to a relational scan.
func CustomerRelation(db *tpch.DB) *sql.ScanPlan {
	cols := sql.Schema{
		{Name: "c_custkey", Kind: sql.KindInt},
		{Name: "c_nationkey", Kind: sql.KindInt},
	}
	rows := make([]sql.Row, len(db.Customers))
	for i, c := range db.Customers {
		rows[i] = sql.Row{sql.Int(int64(c.CustKey)), sql.Int(int64(c.NationKey))}
	}
	return sql.Scan("customer", cols, rows)
}

// TPCH1Plan is Q1's counting form as a relational plan:
// SELECT count(*) FROM lineitem WHERE l_shipdate <= cutoff.
func TPCH1Plan(db *tpch.DB) sql.Plan {
	return sql.GroupBy(
		sql.Where(LineitemRelation(db),
			sql.Le(sql.Col("l_shipdate"), sql.Lit(sql.Int(int64(tpch1Cutoff))))),
		nil,
		sql.AggSpec{Name: "count_order", Func: sql.AggCount},
	)
}

// TPCH1FullPlan is the complete TPC-H Q1 pricing summary: the grouped,
// multi-aggregate, ordered form (the paper's evaluation uses the counting
// reduction of Q1; this plan exists to exercise — and regression-test — the
// SQL layer on the query's real shape).
//
//	SELECT l_returnflag, l_linestatus,
//	       sum(l_quantity), sum(l_extendedprice),
//	       sum(l_extendedprice*(1-l_discount)),
//	       sum(l_extendedprice*(1-l_discount)*(1+l_tax)),
//	       avg(l_quantity), avg(l_extendedprice), avg(l_discount), count(*)
//	FROM lineitem WHERE l_shipdate <= cutoff
//	GROUP BY l_returnflag, l_linestatus
//	ORDER BY l_returnflag, l_linestatus
func TPCH1FullPlan(db *tpch.DB) sql.Plan {
	one := sql.Lit(sql.Float(1))
	discounted := sql.Mul(sql.Col("l_extendedprice"), sql.Sub(one, sql.Col("l_discount")))
	charged := sql.Mul(discounted, sql.Add(one, sql.Col("l_tax")))
	grouped := sql.GroupBy(
		sql.Where(LineitemRelation(db),
			sql.Le(sql.Col("l_shipdate"), sql.Lit(sql.Int(int64(tpch1Cutoff))))),
		[]string{"l_returnflag", "l_linestatus"},
		sql.AggSpec{Name: "sum_qty", Func: sql.AggSum, Arg: sql.Col("l_quantity")},
		sql.AggSpec{Name: "sum_base_price", Func: sql.AggSum, Arg: sql.Col("l_extendedprice")},
		sql.AggSpec{Name: "sum_disc_price", Func: sql.AggSum, Arg: discounted},
		sql.AggSpec{Name: "sum_charge", Func: sql.AggSum, Arg: charged},
		sql.AggSpec{Name: "avg_qty", Func: sql.AggAvg, Arg: sql.Col("l_quantity")},
		sql.AggSpec{Name: "avg_price", Func: sql.AggAvg, Arg: sql.Col("l_extendedprice")},
		sql.AggSpec{Name: "avg_disc", Func: sql.AggAvg, Arg: sql.Col("l_discount")},
		sql.AggSpec{Name: "count_order", Func: sql.AggCount},
	)
	return sql.OrderBy(grouped,
		sql.SortKey{Column: "l_returnflag"},
		sql.SortKey{Column: "l_linestatus"},
	)
}

// TPCH4Plan is Q4's counting form as a relational plan:
// SELECT count(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey
// WHERE o_orderdate in window AND l_commitdate < l_receiptdate.
func TPCH4Plan(db *tpch.DB) sql.Plan {
	joined := sql.JoinOn(OrdersRelation(db), "o_orderkey", LineitemRelation(db), "l_orderkey")
	filtered := sql.Where(joined, sql.And(
		sql.And(
			sql.Ge(sql.Col("o_orderdate"), sql.Lit(sql.Int(int64(tpch4WindowLo)))),
			sql.Lt(sql.Col("o_orderdate"), sql.Lit(sql.Int(int64(tpch4WindowHi)))),
		),
		sql.Lt(sql.Col("l_commitdate"), sql.Col("l_receiptdate")),
	))
	return sql.GroupBy(filtered, nil, sql.AggSpec{Name: "order_count", Func: sql.AggCount})
}

// TPCH13Plan is Q13's counting form as a relational plan:
// SELECT count(*) FROM customer JOIN orders ON c_custkey = o_custkey
// WHERE NOT o_special.
func TPCH13Plan(db *tpch.DB) sql.Plan {
	joined := sql.JoinOn(CustomerRelation(db), "c_custkey", OrdersRelation(db), "o_custkey")
	filtered := sql.Where(joined, sql.Not(sql.Col("o_special")))
	return sql.GroupBy(filtered, nil, sql.AggSpec{Name: "pair_count", Func: sql.AggCount})
}

// TPCH6Plan is Q6 as a relational plan (arithmetic — outside FLEX's
// fragment): SELECT sum(l_extendedprice * l_discount) FROM lineitem WHERE
// the year/discount/quantity filters hold.
func TPCH6Plan(db *tpch.DB) sql.Plan {
	filtered := sql.Where(LineitemRelation(db), sql.And(
		sql.And(
			sql.Ge(sql.Col("l_shipdate"), sql.Lit(sql.Int(int64(tpch6YearLo)))),
			sql.Lt(sql.Col("l_shipdate"), sql.Lit(sql.Int(int64(tpch6YearHi)))),
		),
		sql.And(
			sql.And(
				sql.Ge(sql.Col("l_discount"), sql.Lit(sql.Float(tpch6DiscountLo-1e-9))),
				sql.Le(sql.Col("l_discount"), sql.Lit(sql.Float(tpch6DiscountHi+1e-9))),
			),
			sql.Lt(sql.Col("l_quantity"), sql.Lit(sql.Float(tpch6QtyMax))),
		),
	))
	return sql.GroupBy(filtered, nil, sql.AggSpec{
		Name: "revenue", Func: sql.AggSum,
		Arg: sql.Mul(sql.Col("l_extendedprice"), sql.Col("l_discount")),
	})
}
