package flex

import (
	"errors"
	"testing"

	"upa/internal/relation"
)

func stats(rows, distinct, maxFreq int) relation.ColumnStats {
	return relation.ColumnStats{RowCount: rows, Distinct: distinct, MaxFreq: maxFreq}
}

func TestCountNoJoinsIsOne(t *testing.T) {
	p := Plan{Name: "tpch1", CountQuery: true}
	got, err := p.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("sensitivity = %v, want 1 (count changes by at most one)", got)
	}
}

func TestSingleJoinMultipliesMaxFrequencies(t *testing.T) {
	p := Plan{
		Name:       "q",
		CountQuery: true,
		Joins:      []Join{{Left: stats(100, 50, 7), Right: stats(200, 80, 11)}},
	}
	got, err := p.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if got != 77 {
		t.Fatalf("sensitivity = %v, want 7*11 = 77", got)
	}
}

func TestMultipleJoinsErrorMagnifies(t *testing.T) {
	// The paper's central criticism: with several joins FLEX multiplies the
	// per-join worst cases, so the estimate explodes multiplicatively.
	j := Join{Left: stats(100, 10, 10), Right: stats(100, 10, 10)}
	p1 := Plan{Name: "one", CountQuery: true, Joins: []Join{j}}
	p3 := Plan{Name: "three", CountQuery: true, Joins: []Join{j, j, j}}
	s1, err := p1.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	s3, err := p3.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 100 || s3 != 1e6 {
		t.Fatalf("sensitivities = %v, %v; want 100, 1e6", s1, s3)
	}
}

func TestNonCountUnsupported(t *testing.T) {
	for _, name := range []string{"tpch6", "tpch11", "kmeans", "linreg"} {
		p := Plan{Name: name, CountQuery: false}
		if p.Supported() {
			t.Errorf("%s reported as supported", name)
		}
		if _, err := p.LocalSensitivity(); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: error = %v, want ErrUnsupported", name, err)
		}
	}
}

func TestInvalidStatsRejected(t *testing.T) {
	p := Plan{
		Name:       "bad",
		CountQuery: true,
		Joins:      []Join{{Left: stats(2, 3, 1), Right: stats(10, 5, 2)}},
	}
	if _, err := p.LocalSensitivity(); err == nil {
		t.Fatal("invalid column stats accepted")
	}
}

func TestWorstCaseFanOut(t *testing.T) {
	j := Join{Left: stats(10, 2, 5), Right: stats(10, 5, 2)}
	if got := j.WorstCaseFanOut(); got != 10 {
		t.Fatalf("fan-out = %v, want 10", got)
	}
}
