package core

import (
	"encoding/json"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"upa/internal/chaos"
	"upa/internal/mapreduce"
)

// soakSeeds returns the chaos seeds the soak test sweeps. Default 1..20;
// UPA_CHAOS_SEEDS overrides with a comma-separated list so CI can pin its
// own fixed set and failures can be replayed one seed at a time.
func soakSeeds(t *testing.T) []uint64 {
	env := os.Getenv("UPA_CHAOS_SEEDS")
	if env == "" {
		seeds := make([]uint64, 20)
		for i := range seeds {
			seeds[i] = uint64(i + 1)
		}
		return seeds
	}
	var seeds []uint64
	for _, f := range strings.Split(env, ",") {
		s, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("UPA_CHAOS_SEEDS entry %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	if len(seeds) == 0 {
		t.Fatal("UPA_CHAOS_SEEDS set but empty")
	}
	return seeds
}

// soakRetryPolicy gives every task six attempts: at the soak's fault rates
// the probability of one task drawing six consecutive seeded faults is
// ~1e-6 per task, so the sweep is deterministic-in-practice while still
// exercising backoff, jitter, and both schedulers' retry paths.
func soakRetryPolicy() chaos.RetryPolicy {
	return chaos.RetryPolicy{
		MaxAttempts: 6,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  200 * time.Microsecond,
		Jitter:      0.5,
		JitterSeed:  7,
	}
}

// soakRun performs two releases (count warms the reduction cache and the
// enforcer history, sum runs against it) on a fresh system whose engine and
// jobgraph share the given injector, returning the releases' deterministic
// outputs, the iDP budget ledger, and the engine's total metrics. budget is
// the engine's in-memory materialization budget: negative runs fully in
// memory, zero forces every materialization through the spill path.
func soakRun(t *testing.T, inj *chaos.Injector, budget int64) ([]releaseOutputs, float64, mapreduce.MetricsSnapshot) {
	t.Helper()
	data := seqData(400)
	domain := uniformDomain(0, 400)
	cfg := DefaultConfig()
	cfg.SampleSize = 40
	eng := mapreduce.NewEngine(
		mapreduce.WithRetryPolicy(soakRetryPolicy()),
		mapreduce.WithChaos(inj),
		mapreduce.WithMemoryBudget(budget))
	defer eng.Close()
	sys, err := NewSystem(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var outs []releaseOutputs
	for _, q := range []Query[float64]{countQuery(), sumQuery()} {
		res, err := Run(sys, q, data, domain)
		if err != nil {
			t.Fatalf("release %q under chaos: %v", q.Name, err)
		}
		outs = append(outs, outputsOf(res))
	}
	return outs, sys.EpsilonSpent(), eng.Metrics()
}

// soakSpillBudget returns the memory budget the spill soak forces: default 0
// (spill every materialization); UPA_SPILL_BUDGET overrides with a byte
// count so CI can sweep other pressure points.
func soakSpillBudget(t *testing.T) int64 {
	env := os.Getenv("UPA_SPILL_BUDGET")
	if env == "" {
		return 0
	}
	b, err := strconv.ParseInt(strings.TrimSpace(env), 10, 64)
	if err != nil {
		t.Fatalf("UPA_SPILL_BUDGET %q: %v", env, err)
	}
	return b
}

// TestChaosSoakReleaseInvariant is the headline robustness invariant: across
// the seed sweep, with task faults, stragglers, shuffle errors, and slot
// loss enabled at both the engine and jobgraph level, every release's output
// is byte-identical to the fault-free run, the iDP budget ledger is
// unchanged (recomputation never double-spends ε), and the fault-adjusted
// task accounting matches the clean run exactly.
func TestChaosSoakReleaseInvariant(t *testing.T) {
	cleanOuts, cleanEps, cleanM := soakRun(t, nil, -1)
	cleanJSON, err := json.Marshal(cleanOuts)
	if err != nil {
		t.Fatal(err)
	}
	if cleanEps <= 0 {
		t.Fatalf("clean run spent no budget: %v", cleanEps)
	}
	for _, seed := range soakSeeds(t) {
		inj := chaos.New(chaos.Policy{
			Seed:             seed,
			TaskFaultRate:    0.1,
			StragglerRate:    0.05,
			StragglerDelay:   200 * time.Microsecond,
			ShuffleErrorRate: 0.1,
			SlotLossRate:     0.2,
		})
		outs, eps, m := soakRun(t, inj, -1)
		faultyJSON, err := json.Marshal(outs)
		if err != nil {
			t.Fatal(err)
		}
		if string(faultyJSON) != string(cleanJSON) {
			t.Errorf("seed %d: release outputs diverged under chaos\n clean: %s\nfaulty: %s",
				seed, cleanJSON, faultyJSON)
			continue
		}
		if eps != cleanEps {
			t.Errorf("seed %d: budget ledger %v under chaos, %v clean — recomputation double-spent ε",
				seed, eps, cleanEps)
		}
		if m.TasksRun != cleanM.TasksRun {
			t.Errorf("seed %d: TasksRun = %d under chaos, %d clean", seed, m.TasksRun, cleanM.TasksRun)
		}
		if m.TaskAttempts-m.TaskFaults != cleanM.TaskAttempts {
			t.Errorf("seed %d: fault-adjusted attempts %d-%d != clean %d",
				seed, m.TaskAttempts, m.TaskFaults, cleanM.TaskAttempts)
		}
	}
}

// TestChaosSoakSpillInvariant is the out-of-core correctness gate: the same
// seed sweep as TestChaosSoakReleaseInvariant, but with the engine's memory
// budget forced low (default 0 — every materialization spilled; overridable
// via UPA_SPILL_BUDGET) so chaos recovery and disk-backed partitions compose.
// Every release must stay byte-identical to the clean in-memory run, the
// ε ledger unchanged, the task accounting identical, and the runs must have
// actually spilled — a soak that never touched the spill path proves nothing.
func TestChaosSoakSpillInvariant(t *testing.T) {
	budget := soakSpillBudget(t)
	cleanOuts, cleanEps, cleanM := soakRun(t, nil, -1)
	cleanJSON, err := json.Marshal(cleanOuts)
	if err != nil {
		t.Fatal(err)
	}

	// Spilled but fault-free first: isolates out-of-core from chaos.
	spillOuts, spillEps, spillM := soakRun(t, nil, budget)
	spillJSON, err := json.Marshal(spillOuts)
	if err != nil {
		t.Fatal(err)
	}
	if string(spillJSON) != string(cleanJSON) {
		t.Fatalf("spilled fault-free run diverged from in-memory run\n clean: %s\nspill: %s", cleanJSON, spillJSON)
	}
	if spillEps != cleanEps {
		t.Fatalf("spilled run ε ledger %v, in-memory %v", spillEps, cleanEps)
	}
	if spillM.SpilledBytes == 0 || spillM.SpillReads == 0 {
		t.Fatalf("budget %d run did not exercise the spill path: %d bytes spilled, %d reads",
			budget, spillM.SpilledBytes, spillM.SpillReads)
	}

	for _, seed := range soakSeeds(t) {
		inj := chaos.New(chaos.Policy{
			Seed:             seed,
			TaskFaultRate:    0.1,
			StragglerRate:    0.05,
			StragglerDelay:   200 * time.Microsecond,
			ShuffleErrorRate: 0.1,
			SlotLossRate:     0.2,
		})
		outs, eps, m := soakRun(t, inj, budget)
		faultyJSON, err := json.Marshal(outs)
		if err != nil {
			t.Fatal(err)
		}
		if string(faultyJSON) != string(cleanJSON) {
			t.Errorf("seed %d: spilled release outputs diverged under chaos\n clean: %s\nfaulty: %s",
				seed, cleanJSON, faultyJSON)
			continue
		}
		if eps != cleanEps {
			t.Errorf("seed %d: spilled ε ledger %v under chaos, %v clean", seed, eps, cleanEps)
		}
		if m.TasksRun != cleanM.TasksRun {
			t.Errorf("seed %d: spilled TasksRun = %d under chaos, %d clean", seed, m.TasksRun, cleanM.TasksRun)
		}
		if m.SpilledBytes == 0 {
			t.Errorf("seed %d: chaos run did not spill under budget %d", seed, budget)
		}
	}
}

// TestEpsilonLedger pins the ledger arithmetic: each successful release
// charges EffectiveEpsilon × OutputDim, and a failed release charges
// nothing.
func TestEpsilonLedger(t *testing.T) {
	sys := newTestSystem(t, nil)
	if got := sys.EpsilonSpent(); got != 0 {
		t.Fatalf("fresh system EpsilonSpent = %v, want 0", got)
	}
	data := seqData(300)
	domain := uniformDomain(0, 300)
	res, err := Run(sys, countQuery(), data, domain)
	if err != nil {
		t.Fatal(err)
	}
	want := res.EffectiveEpsilon
	if got := sys.EpsilonSpent(); got != want {
		t.Errorf("EpsilonSpent after one release = %v, want %v", got, want)
	}
	if _, err := Run(sys, sumQuery(), data, domain); err != nil {
		t.Fatal(err)
	}
	if got := sys.EpsilonSpent(); got != 2*want {
		t.Errorf("EpsilonSpent after two releases = %v, want %v", got, 2*want)
	}
	// A release that fails validation spends nothing.
	bad := countQuery()
	bad.Name = ""
	if _, err := Run(sys, bad, data, domain); err == nil {
		t.Fatal("invalid query released")
	}
	if got := sys.EpsilonSpent(); got != 2*want {
		t.Errorf("failed release charged the ledger: %v", got)
	}
}
