package upa

import (
	"math"
	"testing"
)

type user struct {
	Active bool
	Spend  float64
}

func testUsers(n int) []user {
	users := make([]user, n)
	for i := range users {
		users[i] = user{Active: i%3 != 0, Spend: float64(i % 100)}
	}
	return users
}

func newSessionT(t *testing.T, opts ...Option) *Session {
	t.Helper()
	s, err := NewSession(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSessionDefaults(t *testing.T) {
	s := newSessionT(t)
	if s.Epsilon() != 0.1 {
		t.Errorf("Epsilon = %v, want 0.1", s.Epsilon())
	}
	if s.SampleSize() != 1000 {
		t.Errorf("SampleSize = %d, want 1000", s.SampleSize())
	}
	if s.HistoryLen() != 0 {
		t.Errorf("fresh session has history %d", s.HistoryLen())
	}
}

func TestSessionOptions(t *testing.T) {
	s := newSessionT(t, WithEpsilon(0.5), WithSampleSize(77), WithSeed(9),
		WithPercentiles(0.05, 0.95), WithWorkers(2))
	if s.Epsilon() != 0.5 || s.SampleSize() != 77 {
		t.Errorf("options not applied: eps=%v n=%d", s.Epsilon(), s.SampleSize())
	}
}

func TestSessionRejectsBadOptions(t *testing.T) {
	if _, err := NewSession(WithEpsilon(-1)); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := NewSession(WithSampleSize(0)); err == nil {
		t.Error("zero sample size accepted")
	}
	if _, err := NewSession(WithPercentiles(0.9, 0.1)); err == nil {
		t.Error("inverted percentiles accepted")
	}
}

func TestReleaseCount(t *testing.T) {
	s := newSessionT(t, WithSampleSize(50), WithSeed(4))
	users := testUsers(600)
	q := Count("active", func(u user) bool { return u.Active })
	res, err := Release(s, q, users, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0.0
	for _, u := range users {
		if u.Active {
			exact++
		}
	}
	if math.Abs(res.Output[0]-exact) > 400 {
		t.Errorf("noisy count %v wildly far from exact %v", res.Output[0], exact)
	}
	if res.Sensitivity[0] <= 0 || res.Sensitivity[0] > 10 {
		t.Errorf("count sensitivity = %v, want small positive", res.Sensitivity[0])
	}
	if res.SampleSize != 50 {
		t.Errorf("SampleSize = %d, want 50", res.SampleSize)
	}
	if s.HistoryLen() != 1 {
		t.Errorf("history = %d after one release", s.HistoryLen())
	}
	if res.Phases.Total() <= 0 {
		t.Error("no phase timing recorded")
	}
}

func TestReleaseWithDomainSampler(t *testing.T) {
	s := newSessionT(t, WithSampleSize(40), WithSeed(2))
	q := Sum("spend", func(u user) float64 { return u.Spend })
	domain := func(r *RNG) user { return user{Active: true, Spend: float64(r.Intn(100))} }
	res, err := Release(s, q, testUsers(500), domain)
	if err != nil {
		t.Fatal(err)
	}
	// Spend per record is < 100, so the local sensitivity cannot be much
	// larger (the percentile range is a mild widening).
	if res.Sensitivity[0] <= 0 || res.Sensitivity[0] > 500 {
		t.Errorf("sum sensitivity = %v, implausible for per-record max 99", res.Sensitivity[0])
	}
}

func TestReleaseInvalidQuery(t *testing.T) {
	s := newSessionT(t)
	if _, err := Release(s, Query[user]{}, testUsers(10), nil); err == nil {
		t.Error("invalid query accepted")
	}
	q := Count[user]("c", nil)
	if _, err := Release(s, q, testUsers(1), nil); err == nil {
		t.Error("single-record dataset accepted")
	}
}

func TestEvaluateMatchesDirect(t *testing.T) {
	s := newSessionT(t)
	users := testUsers(300)
	out, err := Evaluate(s, Sum("spend", func(u user) float64 { return u.Spend }), users)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, u := range users {
		want += u.Spend
	}
	if math.Abs(out[0]-want) > 1e-9 {
		t.Errorf("Evaluate = %v, want %v", out[0], want)
	}
	if s.HistoryLen() != 0 {
		t.Error("Evaluate touched the enforcer history")
	}
}

func TestMeanHelper(t *testing.T) {
	s := newSessionT(t)
	out, err := Evaluate(s, Mean("spend", func(u user) float64 { return u.Spend }), testUsers(200))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, u := range testUsers(200) {
		sum += u.Spend
	}
	if want := sum / 200; math.Abs(out[0]-want) > 1e-9 {
		t.Errorf("mean = %v, want %v", out[0], want)
	}
}

func TestVectorSumHelper(t *testing.T) {
	s := newSessionT(t)
	q := VectorSum("hist", 2, func(u user) []float64 {
		if u.Active {
			return []float64{1, 0}
		}
		return []float64{0, 1}
	})
	out, err := Evaluate(s, q, testUsers(300))
	if err != nil {
		t.Fatal(err)
	}
	if out[0]+out[1] != 300 {
		t.Errorf("histogram total = %v, want 300", out[0]+out[1])
	}
}

func TestRepeatedQueryAttackSurfaces(t *testing.T) {
	s := newSessionT(t, WithSampleSize(40), WithSeed(11))
	users := testUsers(400)
	q := Sum("spend", func(u user) float64 { return u.Spend })
	first, err := Release(s, q, users, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.AttackSuspected {
		t.Fatal("first release flagged")
	}
	// Neighbouring rerun: drop one record.
	res, err := Release(s, q, users[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AttackSuspected {
		t.Fatal("neighbouring rerun not flagged as attack")
	}
	if res.RemovedRecords < 2 {
		t.Errorf("RemovedRecords = %d, want >= 2", res.RemovedRecords)
	}
	s.ResetHistory()
	if s.HistoryLen() != 0 {
		t.Error("ResetHistory did not clear")
	}
}

func TestMetricsAccumulate(t *testing.T) {
	s := newSessionT(t, WithSampleSize(30))
	if _, err := Release(s, Count[user]("c", nil), testUsers(300), nil); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.RecordsMapped == 0 || m.ReduceOps == 0 || m.ShuffleRounds == 0 {
		t.Errorf("metrics empty after a release: %+v", m)
	}
}

func TestReleaseDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		s := newSessionT(t, WithSampleSize(30), WithSeed(123))
		res, err := Release(s, Count[user]("c", nil), testUsers(250), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Sensitivity
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sensitivity differs across identically seeded sessions: %v vs %v", a, b)
		}
	}
}
