package mapreduce

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestCombineByKeyAverage exercises the three-function combiner contract with
// a combiner type distinct from the value type: a running (sum, count) pair
// folded into per-key means.
func TestCombineByKeyAverage(t *testing.T) {
	type sumCount struct {
		sum, n int
	}
	eng := NewEngine(WithWorkers(4))
	pairs := []Pair[string, int]{
		{"a", 2}, {"b", 10}, {"a", 4}, {"c", 7},
		{"b", 20}, {"a", 6}, {"b", 30}, {"c", 9},
	}
	ds, err := FromSlice(eng, pairs, 3)
	if err != nil {
		t.Fatal(err)
	}
	combined := CombineByKey(ds,
		func(v int) sumCount { return sumCount{sum: v, n: 1} },
		func(c sumCount, v int) sumCount { return sumCount{sum: c.sum + v, n: c.n + 1} },
		func(a, b sumCount) sumCount { return sumCount{sum: a.sum + b.sum, n: a.n + b.n} },
	)
	out, err := combined.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]sumCount{
		"a": {sum: 12, n: 3},
		"b": {sum: 60, n: 3},
		"c": {sum: 16, n: 2},
	}
	if len(out) != len(want) {
		t.Fatalf("got %d keys, want %d", len(out), len(want))
	}
	for _, p := range out {
		if p.Value != want[p.Key] {
			t.Errorf("key %q = %+v, want %+v", p.Key, p.Value, want[p.Key])
		}
	}
}

// TestMapSideCombineShrinksShuffle pins the combine counters exactly: 100
// records over 5 keys in 4 partitions must shuffle one record per
// (partition, key) — 20 — and the reduce-op total must equal the N-K a
// combine-less fold performs, so the combine changes where work happens but
// not how much.
func TestMapSideCombineShrinksShuffle(t *testing.T) {
	const (
		records  = 100
		keys     = 5
		numParts = 4
	)
	eng := NewEngine(WithWorkers(4))
	pairs := make([]Pair[int, int], records)
	for i := range pairs {
		pairs[i] = Pair[int, int]{Key: i % keys, Value: 1}
	}
	ds, err := FromSlice(eng, pairs, numParts)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics()
	out, err := ReduceByKey(ds, func(a, b int) int { return a + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != keys {
		t.Fatalf("got %d keys, want %d", len(out), keys)
	}
	for _, p := range out {
		if p.Value != records/keys {
			t.Errorf("key %d = %d, want %d", p.Key, p.Value, records/keys)
		}
	}

	delta := eng.Metrics().Sub(before)
	// Each contiguous partition of 25 records holds all 5 keys, so the
	// combine emits 4x5 = 20 records.
	const post = numParts * keys
	if delta.RecordsPreCombine != records {
		t.Errorf("RecordsPreCombine = %d, want %d", delta.RecordsPreCombine, records)
	}
	if delta.RecordsPostCombine != post {
		t.Errorf("RecordsPostCombine = %d, want %d", delta.RecordsPostCombine, post)
	}
	if delta.RecordsCombinedMapSide != records-post {
		t.Errorf("RecordsCombinedMapSide = %d, want %d", delta.RecordsCombinedMapSide, records-post)
	}
	if delta.RecordsShuffled != post {
		t.Errorf("RecordsShuffled = %d, want %d (only combined records cross the wire)", delta.RecordsShuffled, post)
	}
	if delta.RecordsShuffled >= records {
		t.Errorf("combine did not shrink the shuffle: %d >= %d", delta.RecordsShuffled, records)
	}
	if delta.ShuffleRounds != 1 {
		t.Errorf("ShuffleRounds = %d, want 1", delta.ShuffleRounds)
	}
	// Map side folds 100-20 values, reduce side merges 4 combiners per key:
	// (100-20) + 5*(4-1) = 95 = N - K, the combine-less total.
	if want := int64(records - keys); delta.ReduceOps != want {
		t.Errorf("ReduceOps = %d, want %d", delta.ReduceOps, want)
	}
}

// TestDistinctCombinesBeforeShuffle checks Distinct rides the map-side
// combine: duplicated values deduplicate locally, so the shuffle carries at
// most one record per (partition, value).
func TestDistinctCombinesBeforeShuffle(t *testing.T) {
	eng := NewEngine(WithWorkers(4))
	data := make([]int, 400)
	for i := range data {
		data[i] = i % 10
	}
	ds, err := FromSlice(eng, data, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics()
	out, err := Distinct(ds).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("Distinct kept %d values, want 10", len(out))
	}
	delta := eng.Metrics().Sub(before)
	if want := int64(4 * 10); delta.RecordsShuffled != want {
		t.Errorf("RecordsShuffled = %d, want %d", delta.RecordsShuffled, want)
	}
}

// TestCombineByKeyMatchesReduceByKeyOrder checks the combine path and the
// reducer path agree record for record, including output order, across
// partition counts — the output-invariance the commutative/associative
// contract buys.
func TestCombineByKeyMatchesReduceByKeyOrder(t *testing.T) {
	base := make([]Pair[int, int], 200)
	for i := range base {
		base[i] = Pair[int, int]{Key: (i * 7) % 13, Value: i}
	}
	sum := func(a, b int) int { return a + b }
	for _, parts := range []int{1, 3, 8} {
		eng := NewEngine(WithWorkers(4))
		ds, err := FromSlice(eng, base, parts)
		if err != nil {
			t.Fatal(err)
		}
		reduced, err := ReduceByKey(ds, sum).Collect()
		if err != nil {
			t.Fatal(err)
		}
		combined, err := CombineByKey(ds,
			func(v int) int { return v }, sum, sum).Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(reduced) != len(combined) {
			t.Fatalf("parts=%d: %d vs %d records", parts, len(reduced), len(combined))
		}
		for i := range reduced {
			if reduced[i] != combined[i] {
				t.Errorf("parts=%d: record %d: ReduceByKey %+v, CombineByKey %+v",
					parts, i, reduced[i], combined[i])
			}
		}
	}
}

// TestReduceByKeyCtxBoundCancellation checks the bound-context variants: a
// cancelled construction-time context aborts the shuffle even through a plain
// Collect, and a live one changes nothing.
func TestReduceByKeyCtxBoundCancellation(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	pairs := make([]Pair[int, int], 50)
	for i := range pairs {
		pairs[i] = Pair[int, int]{Key: i % 5, Value: 1}
	}
	ds, err := FromSlice(eng, pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ReduceByKeyCtx(cancelled, ds, func(a, b int) int { return a + b }).Collect(); !errors.Is(err, context.Canceled) {
		t.Errorf("ReduceByKeyCtx(cancelled).Collect = %v, want context.Canceled", err)
	}
	if _, err := GroupByKeyCtx(cancelled, ds).Collect(); !errors.Is(err, context.Canceled) {
		t.Errorf("GroupByKeyCtx(cancelled).Collect = %v, want context.Canceled", err)
	}
	joined, err := JoinCtx(cancelled, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := joined.Collect(); !errors.Is(err, context.Canceled) {
		t.Errorf("JoinCtx(cancelled).Collect = %v, want context.Canceled", err)
	}
	cogrouped, err := CoGroupCtx(cancelled, ds, ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cogrouped.Collect(); !errors.Is(err, context.Canceled) {
		t.Errorf("CoGroupCtx(cancelled).Collect = %v, want context.Canceled", err)
	}

	live := ReduceByKeyCtx(context.Background(), ds, func(a, b int) int { return a + b })
	out, err := live.Collect()
	if err != nil || len(out) != 5 {
		t.Fatalf("live bound context: %d records, %v; want 5, nil", len(out), err)
	}
}

// TestShuffleRetriesAfterCancellation is the regression test for the
// poisoned-shuffle bug: a shuffle that failed under a cancelled context must
// not memoize the failure, so collecting the same dataset again with a live
// context succeeds.
func TestShuffleRetriesAfterCancellation(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	pairs := make([]Pair[int, int], 60)
	for i := range pairs {
		pairs[i] = Pair[int, int]{Key: i % 6, Value: 1}
	}
	ds, err := FromSlice(eng, pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	rbk := ReduceByKey(ds, func(a, b int) int { return a + b })

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := rbk.CollectCtx(cancelled); !errors.Is(err, context.Canceled) {
		t.Fatalf("CollectCtx(cancelled) = %v, want context.Canceled", err)
	}

	// The same dataset, re-collected without cancellation, must recover.
	out, err := rbk.Collect()
	if err != nil {
		t.Fatalf("Collect after cancelled attempt = %v, want success", err)
	}
	if len(out) != 6 {
		t.Fatalf("got %d keys after retry, want 6", len(out))
	}
	for _, p := range out {
		if p.Value != 10 {
			t.Errorf("key %d = %d after retry, want 10", p.Key, p.Value)
		}
	}
}

// TestShuffleRetriesAfterFaultExhaustion poisons the shuffle itself: faults
// injected from inside the shuffle's source collection exhaust the attempt
// budget, so the shuffle fails after the lineage retries. The old sync.Once
// memoization cached that failure and every later collection of the dataset
// returned it; the fix retries the shuffle, which succeeds once the faults
// are spent.
func TestShuffleRetriesAfterFaultExhaustion(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithMaxAttempts(2))
	pairs := make([]Pair[int, int], 40)
	for i := range pairs {
		pairs[i] = Pair[int, int]{Key: i % 4, Value: 1}
	}
	ds, err := FromSlice(eng, pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The first mapped record injects exactly enough faults to exhaust the
	// other source partition's attempts. Injecting mid-task lands the faults
	// inside the shuffle's collection, past the current attempt's fault
	// check.
	var poison atomic.Bool
	poison.Store(true)
	mapped := Map(ds, func(p Pair[int, int]) Pair[int, int] {
		if poison.CompareAndSwap(true, false) {
			eng.InjectFaults(2)
		}
		return p
	})
	rbk := ReduceByKey(mapped, func(a, b int) int { return a + b })

	if _, err := rbk.Collect(); !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("Collect with exhausted retries = %v, want ErrTaskFailed", err)
	}
	out, err := rbk.Collect()
	if err != nil {
		t.Fatalf("Collect after faults drained = %v, want recovery", err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d keys after retry, want 4", len(out))
	}
	for _, p := range out {
		if p.Value != 10 {
			t.Errorf("key %d = %d after retry, want 10", p.Key, p.Value)
		}
	}
}

// TestJoinMixedPartitionCounts joins a wide dataset against a narrow one:
// the output must use the wider partition count and still match a nested
// loop, pinning the max(a, b) repartition semantics.
func TestJoinMixedPartitionCounts(t *testing.T) {
	eng := NewEngine(WithWorkers(4))
	left := make([]Pair[int, string], 40)
	for i := range left {
		left[i] = Pair[int, string]{Key: i % 8, Value: "l"}
	}
	right := make([]Pair[int, int], 16)
	for i := range right {
		right[i] = Pair[int, int]{Key: i % 8, Value: i}
	}
	a, err := FromSlice(eng, left, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSlice(eng, right, 2)
	if err != nil {
		t.Fatal(err)
	}
	joined, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := joined.NumPartitions(); got != 6 {
		t.Errorf("Join partitions = %d, want max(6, 2) = 6", got)
	}
	out, err := joined.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Nested-loop expectation: every key matches 5 left x 2 right records.
	if want := 40 * 2; len(out) != want {
		t.Fatalf("join produced %d records, want %d", len(out), want)
	}
	for _, p := range out {
		if p.Value.Right%8 != p.Key {
			t.Errorf("mismatched join record: key %d with right value %d", p.Key, p.Value.Right)
		}
	}

	cg, err := CoGroup(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := cg.NumPartitions(); got != 6 {
		t.Errorf("CoGroup partitions = %d, want 6", got)
	}
	groups, err := cg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 8 {
		t.Fatalf("cogroup produced %d keys, want 8", len(groups))
	}
	for _, g := range groups {
		if len(g.Value.Left) != 5 || len(g.Value.Right) != 2 {
			t.Errorf("key %d grouped %dx%d, want 5x2", g.Key, len(g.Value.Left), len(g.Value.Right))
		}
	}
}
