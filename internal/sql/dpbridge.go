package sql

import (
	"fmt"

	"upa/internal/core"
	"upa/internal/mapreduce"
)

// IndexedRow is one protected-table row tagged with its position, the
// record type of DP-compiled plans.
type IndexedRow struct {
	Idx int
	Row Row
}

// CompileDPCount lowers a global counting plan into a UPA query protecting
// the rows of the named base table: the returned query's Mapper gives each
// protected row its exact join fan-out through the plan (how many output
// tuples vanish if the row does), computed in a single engine execution by
// threading a hidden row-index column through the Filter/Join tree and
// grouping the final count by it.
//
// Together with core.Run this turns any supported SQL count into an
// end-to-end iDP release — the SparkSQL-query path of the paper's
// evaluation. The supported fragment matches FLEX's (§II-B) so the two are
// directly comparable: a global single-Count aggregate over Filters, Joins
// and Scans, with the protected table appearing exactly once.
//
// The influence map is computed against the full input and reused for the
// sampled neighbouring datasets, like every broadcast in §V-B; addition
// neighbours need a domain-aware rebinding and are not sampled here (pass a
// nil domain to core.Run).
//
// The influence execution routes through the optimizer (via Execute), which
// is safe for the DP semantics by construction: the hidden index column is
// tagged onto the protected scan *before* optimization and is a group-by
// key of the influence plan, so projection pruning keeps it live down to
// the scan, and no rule drops or duplicates it; and because every rewrite
// preserves the plan's output row multiset, each protected row's per-index
// output count — hence the influence map, the sampled neighbour set, and
// the ε charge — is identical to the raw plan's. CompileDPCountRaw is the
// unoptimized baseline the equivalence tests compare against.
func CompileDPCount(eng *mapreduce.Engine, plan Plan, protectedTable string) (core.Query[IndexedRow], []IndexedRow, error) {
	return compileDPCount(eng, plan, protectedTable, Execute)
}

// CompileDPCountRaw is CompileDPCount with the influence plan executed as
// written (no optimizer rewrites) — the measurement baseline for the DP
// equivalence regression tests and the bench "optimizer" experiment.
func CompileDPCountRaw(eng *mapreduce.Engine, plan Plan, protectedTable string) (core.Query[IndexedRow], []IndexedRow, error) {
	return compileDPCount(eng, plan, protectedTable, ExecuteRaw)
}

// CompileDPCountRowOnly is CompileDPCount with the optimized influence plan
// forced down the row-at-a-time path — the pre-physical-layer behaviour.
// The DP equivalence tests compare it against CompileDPCount to pin that
// columnar execution changes no release: same influence map, same neighbour
// samples, same ε.
func CompileDPCountRowOnly(eng *mapreduce.Engine, plan Plan, protectedTable string) (core.Query[IndexedRow], []IndexedRow, error) {
	return compileDPCount(eng, plan, protectedTable, ExecuteRowOnly)
}

// dpIdxCol is the hidden row-index column threaded through the protected
// scan during influence compilation.
const dpIdxCol = "__protected_idx"

func compileDPCount(eng *mapreduce.Engine, plan Plan, protectedTable string, exec func(*mapreduce.Engine, Plan) ([]Row, Schema, error)) (core.Query[IndexedRow], []IndexedRow, error) {
	var zero core.Query[IndexedRow]
	// The same structural validation admission control runs pre-charge;
	// passing it here guarantees the unexported helpers below cannot fail on
	// shape (the remaining error paths are execution errors).
	if err := SupportsDPCount(plan, protectedTable); err != nil {
		return zero, nil, err
	}
	agg, err := countRootOf(plan)
	if err != nil {
		return zero, nil, err
	}
	protected := findScans(agg.Input, protectedTable)[0]

	tagged, err := tagProtectedScan(agg.Input, protected, dpIdxCol)
	if err != nil {
		return zero, nil, err
	}
	perRow := GroupBy(tagged, []string{dpIdxCol}, AggSpec{Name: "influence", Func: AggCount})
	rows, _, err := exec(eng, perRow)
	if err != nil {
		return zero, nil, err
	}
	influence := make(map[int64]float64, len(rows))
	for _, r := range rows {
		idx, ok := r[0].AsInt()
		if !ok {
			return zero, nil, fmt.Errorf("sql: influence key has kind %s", r[0].Kind())
		}
		n, _ := r[1].AsInt()
		influence[idx] = float64(n)
	}
	// Ship the influence table as a broadcast, like any §V-B lookup.
	broadcast, err := mapreduce.NewBroadcast(eng, influence, len(influence))
	if err != nil {
		return zero, nil, err
	}

	data := make([]IndexedRow, len(protected.Rows))
	for i, r := range protected.Rows {
		data[i] = IndexedRow{Idx: i, Row: r}
	}
	q := core.Query[IndexedRow]{
		Name:      "dpcount:" + protectedTable,
		StateDim:  1,
		OutputDim: 1,
		Map: func(ir IndexedRow) core.State {
			return core.State{broadcast.Value()[int64(ir.Idx)]}
		},
	}
	return q, data, nil
}

// countRootOf unwraps Limit/OrderBy above the counting aggregate.
func countRootOf(plan Plan) (*AggregatePlan, error) {
	for {
		switch p := plan.(type) {
		case *LimitPlan:
			plan = p.Input
		case *OrderByPlan:
			plan = p.Input
		case *AggregatePlan:
			return p, nil
		default:
			return nil, fmt.Errorf("sql: no counting aggregate at plan root")
		}
	}
}

// findScans returns every scan of the named table beneath plan.
func findScans(plan Plan, name string) []*ScanPlan {
	switch p := plan.(type) {
	case *ScanPlan:
		if p.Name == name {
			return []*ScanPlan{p}
		}
		return nil
	case *FilterPlan:
		return findScans(p.Input, name)
	case *JoinPlan:
		return append(findScans(p.Left, name), findScans(p.Right, name)...)
	default:
		return nil
	}
}

// tagProtectedScan rewrites the Filter/Join tree, replacing the protected
// scan with a copy carrying the hidden index column. Any other node kind in
// the interior would drop or reshape columns, so it is rejected.
func tagProtectedScan(plan Plan, protected *ScanPlan, idxCol string) (Plan, error) {
	switch p := plan.(type) {
	case *ScanPlan:
		if p != protected {
			return p, nil
		}
		cols := make(Schema, 0, len(p.Cols)+1)
		cols = append(cols, p.Cols...)
		cols = append(cols, Column{Name: idxCol, Kind: KindInt})
		rows := make([]Row, len(p.Rows))
		for i, r := range p.Rows {
			row := make(Row, 0, len(r)+1)
			row = append(row, r...)
			row = append(row, Int(int64(i)))
			rows[i] = row
		}
		return Scan(p.Name, cols, rows), nil
	case *FilterPlan:
		in, err := tagProtectedScan(p.Input, protected, idxCol)
		if err != nil {
			return nil, err
		}
		return Where(in, p.Pred), nil
	case *JoinPlan:
		left, err := tagProtectedScan(p.Left, protected, idxCol)
		if err != nil {
			return nil, err
		}
		right, err := tagProtectedScan(p.Right, protected, idxCol)
		if err != nil {
			return nil, err
		}
		return JoinOn(left, p.LeftKey, right, p.RightKey), nil
	default:
		return nil, fmt.Errorf("sql: DP compilation supports Filter/Join/Scan interiors, found %T", plan)
	}
}
