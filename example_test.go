package upa_test

import (
	"fmt"
	"log"

	"upa"
)

// purchase is the running example record type.
type purchase struct {
	Category string
	Amount   float64
}

func demoData() []purchase {
	categories := []string{"books", "games", "tools"}
	out := make([]purchase, 3000)
	for i := range out {
		out[i] = purchase{
			Category: categories[i%3],
			Amount:   float64(10 + (i*37)%90),
		}
	}
	return out
}

// ExampleRelease shows the basic flow: build a session, describe a query,
// release it under iDP.
func ExampleRelease() {
	session, err := upa.NewSession(upa.WithEpsilon(0.5), upa.WithSeed(1), upa.WithSampleSize(200))
	if err != nil {
		log.Fatal(err)
	}
	q := upa.Count("book-purchases", func(p purchase) bool { return p.Category == "books" })
	res, err := upa.Release(session, q, demoData(), nil)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := upa.Evaluate(session, q, demoData())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact: %.0f\n", exact[0])
	fmt.Printf("released within ±20: %v\n", res.Output[0] > exact[0]-20 && res.Output[0] < exact[0]+20)
	fmt.Printf("history length: %d\n", session.HistoryLen())
	// Output:
	// exact: 1000
	// released within ±20: true
	// history length: 1
}

// ExampleRelease_customQuery releases a query with a custom Finalize — a
// filtered average in one pass.
func ExampleRelease_customQuery() {
	session, err := upa.NewSession(upa.WithEpsilon(1), upa.WithSeed(2), upa.WithSampleSize(200))
	if err != nil {
		log.Fatal(err)
	}
	q := upa.Query[purchase]{
		Name:      "avg-game-spend",
		StateDim:  2, // sum and count
		OutputDim: 1,
		Map: func(p purchase) upa.State {
			if p.Category != "games" {
				return upa.State{0, 0}
			}
			return upa.State{p.Amount, 1}
		},
		Finalize: func(s upa.State) []float64 {
			if s[1] == 0 {
				return []float64{0}
			}
			return []float64{s[0] / s[1]}
		},
	}
	res, err := upa.Release(session, q, demoData(), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("released average within [50, 60]: %v\n", res.Output[0] > 50 && res.Output[0] < 60)
	// Output:
	// released average within [50, 60]: true
}

// ExampleReleaseByKey shows a private GROUP BY: one ε covers the whole
// histogram because the groups are disjoint.
func ExampleReleaseByKey() {
	session, err := upa.NewSession(upa.WithEpsilon(1), upa.WithSeed(3), upa.WithSampleSize(300))
	if err != nil {
		log.Fatal(err)
	}
	q := upa.KeyedQuery[purchase, string]{
		Name:  "purchases-by-category",
		Key:   func(p purchase) string { return p.Category },
		Value: func(purchase) float64 { return 1 },
	}
	res, err := upa.ReleaseByKey(session, q, demoData(), nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range res.Groups {
		fmt.Printf("%s: about 1000: %v\n", g.Key, g.Output > 980 && g.Output < 1020)
	}
	// Output:
	// books: about 1000: true
	// games: about 1000: true
	// tools: about 1000: true
}

// ExampleWithTotalBudget shows the sequential-composition ledger refusing a
// release once the budget is spent.
func ExampleWithTotalBudget() {
	session, err := upa.NewSession(
		upa.WithEpsilon(0.1), upa.WithSeed(4), upa.WithSampleSize(100),
		upa.WithTotalBudget(0.2),
	)
	if err != nil {
		log.Fatal(err)
	}
	q := upa.Count[purchase]("all", nil)
	for i := 1; i <= 3; i++ {
		_, err := upa.Release(session, q, demoData(), nil)
		fmt.Printf("release %d ok: %v\n", i, err == nil)
	}
	fmt.Printf("spent: %.1f\n", session.SpentBudget())
	// Output:
	// release 1 ok: true
	// release 2 ok: true
	// release 3 ok: false
	// spent: 0.2
}
