package relation

import (
	"testing"

	"upa/internal/mapreduce"
)

func TestKeyFrequency(t *testing.T) {
	eng := mapreduce.NewEngine()
	records := []string{"a", "b", "a", "c", "a", "b"}
	stats, err := KeyFrequency(eng, records, func(s string) string { return s })
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowCount != 6 {
		t.Errorf("RowCount = %d, want 6", stats.RowCount)
	}
	if stats.Distinct != 3 {
		t.Errorf("Distinct = %d, want 3", stats.Distinct)
	}
	if stats.MaxFreq != 3 {
		t.Errorf("MaxFreq = %d, want 3", stats.MaxFreq)
	}
	if err := stats.Validate(); err != nil {
		t.Errorf("computed stats invalid: %v", err)
	}
}

func TestKeyFrequencyEmpty(t *testing.T) {
	eng := mapreduce.NewEngine()
	stats, err := KeyFrequency(eng, nil, func(s string) string { return s })
	if err != nil {
		t.Fatal(err)
	}
	if stats != (ColumnStats{}) {
		t.Errorf("empty relation stats = %+v, want zero", stats)
	}
}

func TestKeyFrequencyDerivedKey(t *testing.T) {
	eng := mapreduce.NewEngine()
	records := []int{1, 2, 3, 4, 5, 6, 7, 8}
	stats, err := KeyFrequency(eng, records, func(x int) int { return x % 3 })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Distinct != 3 {
		t.Errorf("Distinct = %d, want 3", stats.Distinct)
	}
	if stats.MaxFreq != 3 { // residues 1 and 2 occur 3 times
		t.Errorf("MaxFreq = %d, want 3", stats.MaxFreq)
	}
}

func TestValidate(t *testing.T) {
	bad := []ColumnStats{
		{RowCount: -1},
		{RowCount: 2, Distinct: 3, MaxFreq: 1},
		{RowCount: 2, Distinct: 1, MaxFreq: 3},
		{RowCount: 2, Distinct: 0, MaxFreq: 1},
		{RowCount: 2, Distinct: 1, MaxFreq: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid stats accepted: %+v", i, s)
		}
	}
	good := []ColumnStats{
		{},
		{RowCount: 5, Distinct: 2, MaxFreq: 4},
	}
	for i, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("case %d: valid stats rejected: %v", i, err)
		}
	}
}
