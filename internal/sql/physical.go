package sql

// physical.go is the logical→physical boundary: BuildPhysical walks an
// optimized logical tree and decides, per subtree, whether it executes
// through the vectorized columnar pipeline (colexec.go) or the
// row-at-a-time compiler (exec.go). The eligibility predicates here are the
// same ones compiler.compile consults, so the tree Explain renders is
// exactly what Execute runs — the two cannot diverge.
//
// The columnar region is deliberately conservative: maximal Filter/Project
// chains over a Scan, optionally topped by an Aggregate whose group keys
// and arguments vectorize. Joins, sorts, distinct, limits, and everything
// the DP bridge touches (noise injection, neighbour sampling) stay
// row-based, so all DP releases are byte-identical whichever strategy the
// interior picks.

// PhysStrategy is the execution strategy chosen for a physical node.
type PhysStrategy int

const (
	// StrategyRow executes the node through the row-at-a-time compiler.
	StrategyRow PhysStrategy = iota
	// StrategyColumnar executes the node inside a fused vectorized
	// pipeline over colbatch batches.
	StrategyColumnar
)

func (s PhysStrategy) String() string {
	if s == StrategyColumnar {
		return "columnar"
	}
	return "row"
}

// PhysNode is one node of the physical plan: the logical node plus the
// strategy the compiler picked for it. Children mirror the logical tree's
// inputs.
type PhysNode struct {
	Logical  Plan
	Strategy PhysStrategy
	Children []*PhysNode
}

// BuildPhysical assigns an execution strategy to every node of an
// (optimized) logical plan. A bare Scan stays row — batching pays only when
// at least one kernel runs over the batch.
func BuildPhysical(plan Plan) *PhysNode {
	switch n := plan.(type) {
	case *AggregatePlan:
		if vectorizableAggregate(n) {
			return &PhysNode{Logical: plan, Strategy: StrategyColumnar, Children: []*PhysNode{markColumnar(n.Input)}}
		}
		return rowNode(plan, n.Input)
	case *FilterPlan:
		if vectorizableChain(plan) {
			return &PhysNode{Logical: plan, Strategy: StrategyColumnar, Children: []*PhysNode{markColumnar(n.Input)}}
		}
		return rowNode(plan, n.Input)
	case *ProjectPlan:
		if vectorizableChain(plan) {
			return &PhysNode{Logical: plan, Strategy: StrategyColumnar, Children: []*PhysNode{markColumnar(n.Input)}}
		}
		return rowNode(plan, n.Input)
	case *JoinPlan:
		return &PhysNode{Logical: plan, Strategy: StrategyRow,
			Children: []*PhysNode{BuildPhysical(n.Left), BuildPhysical(n.Right)}}
	case *OrderByPlan:
		return rowNode(plan, n.Input)
	case *DistinctPlan:
		return rowNode(plan, n.Input)
	case *LimitPlan:
		return rowNode(plan, n.Input)
	default:
		return &PhysNode{Logical: plan, Strategy: StrategyRow}
	}
}

func rowNode(plan, input Plan) *PhysNode {
	return &PhysNode{Logical: plan, Strategy: StrategyRow, Children: []*PhysNode{BuildPhysical(input)}}
}

// markColumnar tags an already-validated chain interior columnar down to
// its scan.
func markColumnar(p Plan) *PhysNode {
	switch n := p.(type) {
	case *FilterPlan:
		return &PhysNode{Logical: p, Strategy: StrategyColumnar, Children: []*PhysNode{markColumnar(n.Input)}}
	case *ProjectPlan:
		return &PhysNode{Logical: p, Strategy: StrategyColumnar, Children: []*PhysNode{markColumnar(n.Input)}}
	default: // the chain's scan
		return &PhysNode{Logical: p, Strategy: StrategyColumnar}
	}
}

// vectorizableChain reports whether p is a Filter/Project chain over a Scan
// whose every expression compiles to infallible kernels (see vectorize.go
// for the fragment). Both compiler.compile and BuildPhysical consult it.
func vectorizableChain(p Plan) bool {
	switch n := p.(type) {
	case *ScanPlan:
		for _, c := range n.Cols {
			if colKind(c.Kind) == 0 {
				return false
			}
		}
		return true
	case *FilterPlan:
		in, err := n.Input.Schema()
		if err != nil {
			return false
		}
		if _, kind, ok := vectorizeExpr(n.Pred, in); !ok || kind != KindBool {
			return false
		}
		return vectorizableChain(n.Input)
	case *ProjectPlan:
		in, err := n.Input.Schema()
		if err != nil {
			return false
		}
		for _, ne := range n.Exprs {
			if _, _, ok := vectorizeExpr(ne.Expr, in); !ok {
				return false
			}
		}
		return vectorizableChain(n.Input)
	default:
		return false
	}
}

// vectorizableAggregate reports whether the aggregate's input chain, group
// keys, and aggregate arguments all vectorize, letting the partial
// aggregation fuse into the batch pipeline.
func vectorizableAggregate(p *AggregatePlan) bool {
	if len(p.Aggs) == 0 {
		return false
	}
	if !vectorizableChain(p.Input) {
		return false
	}
	in, err := p.Input.Schema()
	if err != nil {
		return false
	}
	for _, g := range p.GroupBy {
		idx, err := in.IndexOf(g)
		if err != nil {
			return false
		}
		if colKind(in[idx].Kind) == 0 {
			return false
		}
	}
	for _, a := range p.Aggs {
		if a.Func == AggCount {
			continue
		}
		if a.Arg == nil {
			return false
		}
		_, kind, ok := vectorizeExpr(a.Arg, in)
		if !ok || !numeric(kind) {
			return false
		}
	}
	return true
}
