package core

import (
	"fmt"
	"log/slog"
	"math"
	"sync/atomic"
	"time"

	"upa/internal/jobgraph"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// Config tunes a UPA system.
type Config struct {
	// SampleSize is n, the number of differing records sampled on each side
	// (removals from x and additions from D \ x). The paper's default of
	// 1000 is statistically sufficient to identify the normal distribution
	// of neighbouring outputs (§IV-A); for datasets smaller than n, UPA
	// degenerates to the exact local sensitivity over all removals.
	SampleSize int
	// Epsilon is the per-release privacy budget (the paper evaluates 0.1).
	Epsilon float64
	// PercentileLo/Hi bound the inferred output range; the paper uses the
	// 1st and 99th percentiles of the MLE-fitted normal distribution.
	PercentileLo, PercentileHi float64
	// Tolerance is the relative tolerance for the RANGE ENFORCER's
	// partition-output comparisons.
	Tolerance float64
	// Seed drives every stochastic component (sampling, clamping, noise).
	Seed uint64
	// Logger, when non-nil, receives one structured record per release
	// (phase durations, inferred sensitivity, enforcer decisions). Nil
	// keeps releases silent.
	Logger *slog.Logger

	// OnCharge, when non-nil, observes every ε-ledger charge the instant it
	// lands (the argument is the charged ε). Serving layers use it to
	// reconcile their own admission-time accounting against the system's
	// actual spend — any divergence means an admission path mispriced a
	// release. The hook runs on the charging goroutine and must not block;
	// it observes, it cannot veto.
	OnCharge func(eps float64)

	// GroupSize extends the guarantee from individuals to groups of up to
	// GroupSize records (the §VI-E future-work extension): besides the
	// single-record neighbours, UPA evaluates block removals and block
	// additions of GroupSize records — reusing the same sampled mapped
	// records and R(M(S')) — and infers the output range over the union, so
	// the enforced range also covers any group's influence up to that size.
	// Zero or one means the paper's individual guarantee.
	GroupSize int

	// SplitVectorBudget divides ε across the output coordinates of
	// vector-valued queries (KMeans centroids, regression weights): adding
	// independent Laplace noise to d coordinates composes to d·ε under the
	// paper's per-coordinate treatment, so splitting restores a strict
	// whole-vector ε at the cost of d× more noise per coordinate. Scalar
	// queries are unaffected.
	SplitVectorBudget bool

	// EmpiricalRange infers the output range from the empirical quantiles
	// of the sampled neighbouring outputs instead of the paper's MLE normal
	// fit — the ablation for §VI-C, where the normal fit is the sole error
	// source on TPCH1 (whose neighbouring outputs are not normal) and the
	// reason outliers escape the range on TPCH21.
	EmpiricalRange bool

	// DisableReuse recomputes each neighbouring output from scratch instead
	// of reusing R(M(S')) and the prefix/suffix partials — the ablation for
	// the linear-to-constant overhead claim of §VI-E. Only for experiments.
	DisableReuse bool
	// DisableClamp skips the output-range clamping of Algorithm 2 — the
	// ablation showing why the inferred sensitivity alone does not bound
	// the true local sensitivity. Only for experiments; it voids the iDP
	// guarantee.
	DisableClamp bool
}

// DefaultConfig returns the paper's evaluation defaults.
func DefaultConfig() Config {
	return Config{
		SampleSize:   1000,
		Epsilon:      0.1,
		PercentileLo: 0.01,
		PercentileHi: 0.99,
		Tolerance:    1e-9,
		Seed:         1,
	}
}

func (c Config) validate() error {
	if c.SampleSize < 1 {
		return fmt.Errorf("core: SampleSize must be >= 1, got %d", c.SampleSize)
	}
	if c.Epsilon <= 0 {
		return fmt.Errorf("core: Epsilon must be positive, got %v", c.Epsilon)
	}
	if c.PercentileLo <= 0 || c.PercentileHi >= 1 || c.PercentileLo >= c.PercentileHi {
		return fmt.Errorf("core: percentile range (%v, %v) invalid", c.PercentileLo, c.PercentileHi)
	}
	if c.GroupSize < 0 {
		return fmt.Errorf("core: GroupSize must be non-negative, got %d", c.GroupSize)
	}
	if c.GroupSize > c.SampleSize {
		return fmt.Errorf("core: GroupSize %d exceeds SampleSize %d", c.GroupSize, c.SampleSize)
	}
	return nil
}

// System is a UPA deployment: an engine to run queries on, a RANGE ENFORCER
// whose history spans all queries released through this system, and a
// Laplace mechanism. Construct with NewSystem.
type System struct {
	eng      *mapreduce.Engine
	cfg      Config
	enforcer *RangeEnforcer
	rng      *stats.RNG
	// releases numbers the releases of this system, giving every release a
	// distinct deterministic RNG stream; id makes cache keys unique across
	// systems sharing one engine (two systems must never alias each
	// other's cached R(M(S')), whose contents depend on their own sample
	// sets).
	releases atomic.Uint64
	id       uint64
	// epsilonSpentBits is the iDP budget ledger: the float64 bits of the
	// total ε charged across successful releases (EffectiveEpsilon ×
	// OutputDim each). A CAS accumulator rather than a mutex so concurrent
	// releases stay lock-free; charged exactly once per successful release —
	// the chaos soak test pins that fault recomputation never double-spends.
	epsilonSpentBits atomic.Uint64
}

// chargeEpsilon adds eps to the system's spent-budget ledger and notifies
// the OnCharge observer, if any.
func (s *System) chargeEpsilon(eps float64) {
	for {
		old := s.epsilonSpentBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + eps)
		if s.epsilonSpentBits.CompareAndSwap(old, next) {
			break
		}
	}
	if s.cfg.OnCharge != nil {
		s.cfg.OnCharge(eps)
	}
}

// EpsilonSpent reports the total privacy budget charged by this system's
// successful releases.
func (s *System) EpsilonSpent() float64 {
	return math.Float64frombits(s.epsilonSpentBits.Load())
}

// systemIDs hands every System a process-unique id. It affects only cache
// keys, never results, so the global counter does not break determinism.
var systemIDs atomic.Uint64

// NewSystem builds a UPA system on eng with cfg.
func NewSystem(eng *mapreduce.Engine, cfg Config) (*System, error) {
	if eng == nil {
		return nil, fmt.Errorf("core: nil engine")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Validate the epsilon/mechanism pairing eagerly even though each
	// release constructs its own mechanism (a shared one would make
	// concurrent releases race on its noise RNG).
	rng := stats.NewRNG(cfg.Seed)
	if _, err := stats.NewMechanism(cfg.Epsilon, rng.Split(0xD9)); err != nil {
		return nil, err
	}
	return &System{
		eng:      eng,
		cfg:      cfg,
		enforcer: NewRangeEnforcer(cfg.Tolerance),
		rng:      rng,
		id:       systemIDs.Add(1),
	}, nil
}

// Engine returns the engine the system runs on.
func (s *System) Engine() *mapreduce.Engine { return s.eng }

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Enforcer returns the system's RANGE ENFORCER.
func (s *System) Enforcer() *RangeEnforcer { return s.enforcer }

// ResetHistory clears the RANGE ENFORCER history, starting a fresh analyst
// session.
func (s *System) ResetHistory() { s.enforcer.Reset() }

// PhaseTimings breaks a release's wall-clock time into the paper's four
// phases (§III).
type PhaseTimings struct {
	PartitionSample       time.Duration
	ParallelMap           time.Duration
	UnionPreservingReduce time.Duration
	IDPEnforcement        time.Duration
}

// Total returns the sum of all phases.
func (p PhaseTimings) Total() time.Duration {
	return p.PartitionSample + p.ParallelMap + p.UnionPreservingReduce + p.IDPEnforcement
}

// Result is one end-to-end iDP release.
type Result struct {
	// Query is the released query's name.
	Query string
	// Output is the noisy output returned to the analyst.
	Output []float64

	// The fields below exist for experiments and examples; a production
	// deployment would release only Output.

	// The //upa:dpsource markers below feed the dpflow analyzer: every read
	// of these field names is a pre-noise taint source, and any path into a
	// log line, error string, or HTTP response that skips the noise
	// mechanism is a vet error (data-dependent sensitivities are themselves
	// disclosive — the DPSQL+ leak class).

	// RawOutput is the post-enforcement, pre-noise output.
	RawOutput []float64 //upa:dpsource
	// VanillaOutput is f(x) with no enforcement at all.
	VanillaOutput []float64 //upa:dpsource
	// Sensitivity is the inferred local sensitivity per coordinate
	// (99th minus 1st percentile of the fitted normal distribution); it
	// scales the released noise and upper-bounds the enforced output range.
	Sensitivity []float64 //upa:dpsource
	// EmpiricalLocalSensitivity is, per coordinate, the greatest observed
	// |f(y) - f(x)| over the sampled neighbouring datasets — the direct
	// sampling estimate of Definition II.1, which the accuracy experiments
	// compare against the brute-force ground truth (Figure 2a).
	EmpiricalLocalSensitivity []float64 //upa:dpsource
	// RangeLo/RangeHi are the enforced output range per coordinate.
	RangeLo, RangeHi []float64 //upa:dpsource
	// RemovalOutputs[i] is f(x - s_i) for the i-th sampled record;
	// AdditionOutputs[i] is f(x + s̄_i) for the i-th domain sample.
	RemovalOutputs, AdditionOutputs [][]float64 //upa:dpsource
	// GroupRemovalOutputs and GroupAdditionOutputs are the block-neighbour
	// outputs sampled when Config.GroupSize > 1 (f with a whole group of
	// records removed or added); empty otherwise.
	GroupRemovalOutputs, GroupAdditionOutputs [][]float64 //upa:dpsource
	// SampleSize is the effective n used (min of the configured n and |x|).
	SampleSize int
	// RemovedRecords counts the records the RANGE ENFORCER removed to break
	// a suspected attack; AttackSuspected reports whether the removal loop
	// ran, and CollidedWith names the first colliding prior query.
	RemovedRecords  int
	AttackSuspected bool
	CollidedWith    string
	// ClampedCoords counts output coordinates forced into the range.
	ClampedCoords int
	// EffectiveEpsilon is the per-coordinate ε the noise was drawn at
	// (Config.Epsilon, or Config.Epsilon/OutputDim under SplitVectorBudget).
	EffectiveEpsilon float64
	// Phases is the wall-clock breakdown; EngineDelta the engine activity
	// (shuffles, reduce ops, cache traffic) attributable to this release.
	Phases      PhaseTimings
	EngineDelta mapreduce.MetricsSnapshot
	// Release is this release's sequence number on its System (1-based); it
	// seeds the release's RNG stream and keys its cache entries.
	Release uint64
	// Spans records one entry per jobgraph stage the release executed —
	// start/end, attempts (including speculative re-executions), and the
	// records/shuffle/reduce/cache counters each stage reported.
	Spans []jobgraph.Span
}
