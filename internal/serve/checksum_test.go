package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"upa/internal/checksum"
)

// TestJournalFlipAByteFailsBoot is the flip-a-byte regression test for the
// per-line journal CRC: damage a byte inside a mid-file line — including
// damage that still parses as valid JSON — and boot must fail rather than
// replay a mis-counted ε ledger.
func TestJournalFlipAByteFailsBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	_, st := buildPersisted(t, path)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	journal := path + ".journal"
	clean, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(clean, []byte("\n")), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("need >= 2 journal lines, got %d", len(lines))
	}

	// Flip a digit inside the first line's JSON payload: "eps":0.25 -> 0.75.
	// Without the CRC this parses fine and silently shrinks a charge.
	mut := bytes.Replace(clean, []byte(`0.25`), []byte(`0.75`), 1)
	if bytes.Equal(mut, clean) {
		t.Fatal("test fixture: no 0.25 charge found to mutate")
	}
	if err := os.WriteFile(journal, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(path); err == nil {
		t.Fatal("boot succeeded over a journal with a silently mutated ε charge")
	}

	// Flipping any single byte of a non-final line must also fail the boot.
	firstLen := len(lines[0])
	for _, off := range []int{0, 3, 9, firstLen / 2, firstLen - 1} {
		mut := make([]byte, len(clean))
		copy(mut, clean)
		mut[off] ^= 0x01
		if err := os.WriteFile(journal, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenStore(path); err == nil {
			t.Fatalf("boot succeeded with journal byte %d flipped", off)
		}
	}
}

// TestJournalTornFinalLineStillTolerated: the CRC prefix must not break the
// crash contract — a damaged FINAL line (the append the process died inside)
// is dropped and everything before it replays.
func TestJournalTornFinalLineStillTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	l, st := buildPersisted(t, path)
	want := l.Report()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	journal := path + ".journal"
	clean, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the last line's checksum region: replay must drop it. The last
	// movement was a refund, so dropping it leaves MORE ε spent than the
	// in-memory ledger saw — the safe direction.
	lastStart := bytes.LastIndexByte(bytes.TrimSuffix(clean, []byte("\n")), '\n') + 1
	mut := make([]byte, len(clean))
	copy(mut, clean)
	mut[lastStart] ^= 0x01
	if err := os.WriteFile(journal, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _, st2 := reopenAndReplay(t, path)
	defer st2.Close()
	got := l2.Report()
	if len(got) != len(want) {
		t.Fatalf("torn-tail replay lost tenants: %d vs %d", len(got), len(want))
	}
	if got[0].Spent <= want[0].Spent-1e-9 {
		t.Errorf("dropping the torn refund under-counted spend: %v < %v", got[0].Spent, want[0].Spent)
	}
}

// TestSnapshotFlipAByteFailsBoot: the snapshot is covered by a whole-file
// checksum, so flipping any byte of its body — header or JSON — must fail
// the boot loudly.
func TestSnapshotFlipAByteFailsBoot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	l, st := buildPersisted(t, path)
	if err := st.Flush(l.compact()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(clean, []byte(snapshotChecksumPrefix)) {
		t.Fatalf("flushed snapshot lacks checksum header: %q", clean[:20])
	}
	for _, off := range []int{2, len(snapshotChecksumPrefix) + 2, len(clean) / 2, len(clean) - 1} {
		mut := make([]byte, len(clean))
		copy(mut, clean)
		mut[off] ^= 0x01
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenStore(path); err == nil {
			t.Fatalf("boot succeeded with snapshot byte %d flipped", off)
		}
	}
	// And the pristine snapshot still boots.
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenStore(path); err != nil {
		t.Fatalf("pristine snapshot failed boot: %v", err)
	}
}

// TestLegacyUnchecksummedStateStillBoots: journals and snapshots written
// before the checksum formats (bare JSON lines, bare JSON snapshot) must
// keep replaying — an upgrade cannot strand durable ε state.
func TestLegacyUnchecksummedStateStillBoots(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	snap := snapshotFile{
		Seq: 2,
		Entries: []entry{
			{Seq: 1, Kind: entryTenant, Tenant: "acme", Budget: 2, UserBudget: 1},
			{Seq: 2, Kind: entryCharge, Tenant: "acme", User: "u1", Eps: 0.25},
		},
	}
	body, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	var journal bytes.Buffer
	for i, e := range []entry{
		{Seq: 3, Kind: entryCharge, Tenant: "acme", User: "u1", Eps: 0.5},
		{Seq: 4, Kind: entryRefund, Tenant: "acme", User: "u1", Eps: 0.5},
	} {
		line, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			journal.Write(line) // legacy bare line
		} else {
			fmt.Fprintf(&journal, "%08x %s", checksum.Sum(line), line) // v2 line
		}
		journal.WriteByte('\n')
	}
	if err := os.WriteFile(path+".journal", journal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	l, _, st := reopenAndReplay(t, path)
	defer st.Close()
	rep := l.Report()
	if len(rep) != 1 || rep[0].Tenant != "acme" {
		t.Fatalf("legacy replay lost the tenant: %+v", rep)
	}
	if got := rep[0].Spent; got < 0.25-1e-9 || got > 0.25+1e-9 {
		t.Errorf("legacy replay spent = %v, want 0.25", got)
	}
}
