package seededdeterminism_test

import (
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analyzertest"
	"upa/internal/analyzers/seededdeterminism"
)

// TestSeededDeterminismCritical loads the golden package under a
// determinism-critical import path, where the bans apply.
func TestSeededDeterminismCritical(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "seededdeterminism")
	analyzertest.Run(t, dir, "upa/internal/mapreduce/fake", seededdeterminism.Analyzer)
}

// TestSeededDeterminismOff loads equivalent patterns under a non-critical
// path: the analyzer must stay silent.
func TestSeededDeterminismOff(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "seededdeterminism_off")
	analyzertest.Run(t, dir, "upa/internal/core/fake", seededdeterminism.Analyzer)
}

func TestCovered(t *testing.T) {
	for path, want := range map[string]bool{
		"upa/internal/mapreduce":         true,
		"upa/internal/mapreduce/shuffle": true,
		// The spill codec/store files live in the engine package itself;
		// a future split-out subpackage stays covered by the prefix rule.
		"upa/internal/mapreduce/spill": true,
		"upa/internal/jobgraph":          true,
		"upa/examples/wordcount":         true,
		"upa/internal/core":              false,
		"upa/internal/mapreducer":        false,
	} {
		if got := seededdeterminism.Covered(path); got != want {
			t.Errorf("Covered(%q) = %v, want %v", path, got, want)
		}
	}
}
