package bench

import (
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func parseCSV(t *testing.T, text string) [][]string {
	t.Helper()
	rows, err := csv.NewReader(strings.NewReader(text)).ReadAll()
	if err != nil {
		t.Fatalf("invalid csv: %v", err)
	}
	return rows
}

func TestWriteTable2CSV(t *testing.T) {
	var sb strings.Builder
	rows := []SupportRow{{Query: "TPCH1", DatasetRows: 100, Kind: "Count", UPASupported: true}}
	if err := WriteTable2CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, sb.String())
	if len(got) != 2 || got[1][0] != "TPCH1" || got[1][3] != "true" || got[1][4] != "false" {
		t.Fatalf("csv = %v", got)
	}
}

func TestWriteFig2aCSV(t *testing.T) {
	var sb strings.Builder
	rows := []SensitivityRow{{Query: "q", UPARelRMSE: 0.125, FLEXRelRMSE: 10, FLEXSupported: true}}
	if err := WriteFig2aCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, sb.String())
	if got[1][1] != "0.125" || got[1][2] != "10" {
		t.Fatalf("csv = %v", got)
	}
}

func TestWriteFig2bCSVs(t *testing.T) {
	var sb strings.Builder
	rows := []OverheadRow{{Query: "q", VanillaTime: time.Millisecond, UPATime: 2 * time.Millisecond, Normalized: 2}}
	if err := WriteFig2bCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, sb.String())
	if got[1][1] != "1000" || got[1][3] != "2" {
		t.Fatalf("csv = %v", got)
	}
	sb.Reset()
	sim := []SimulatedOverheadRow{{Query: "q", VanillaCost: time.Second, UPACost: 2 * time.Second, Normalized: 2}}
	if err := WriteFig2bSimCSV(&sb, sim); err != nil {
		t.Fatal(err)
	}
	got = parseCSV(t, sb.String())
	if got[1][1] != "1e+06" {
		t.Fatalf("sim csv = %v", got)
	}
}

func TestWriteFig3CSVFlattensSweep(t *testing.T) {
	var sb strings.Builder
	rows := []CoverageRow{{
		Query:       "q",
		SampleSizes: []int{10, 20},
		RangeLo:     []float64{1, 2},
		RangeHi:     []float64{3, 4},
		Coverage:    []float64{0.5, 0.9},
		TrueMin:     0, TrueMax: 5, NeighbourCount: 100, NormalityKS: 0.1,
	}}
	if err := WriteFig3CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	got := parseCSV(t, sb.String())
	if len(got) != 3 { // header + 2 sample sizes
		t.Fatalf("csv rows = %d, want 3", len(got))
	}
	if got[1][1] != "10" || got[2][1] != "20" || got[2][4] != "0.9" {
		t.Fatalf("csv = %v", got)
	}
}

func TestWriteFig4CSVs(t *testing.T) {
	var sb strings.Builder
	if err := WriteFig4aCSV(&sb, []ScaleRow{{ScaleFactor: 2, Lineitems: 400, MeanNormalized: 1.5}}); err != nil {
		t.Fatal(err)
	}
	if got := parseCSV(t, sb.String()); got[1][2] != "1.5" {
		t.Fatalf("fig4a csv = %v", got)
	}
	sb.Reset()
	if err := WriteFig4bCSV(&sb, []SampleSizeRow{{SampleSize: 100, MeanTime: time.Millisecond, MeanCacheHitRate: 0.75}}); err != nil {
		t.Fatal(err)
	}
	if got := parseCSV(t, sb.String()); got[1][2] != "0.75" {
		t.Fatalf("fig4b csv = %v", got)
	}
}
