// Package flex implements the FLEX baseline (Johnson, Near, Song: "Towards
// Practical Differential Privacy for SQL Queries", VLDB 2018) as the UPA
// paper characterizes it (§II-B): a purely static analysis that infers the
// local sensitivity of counting SQL queries from the composition of their
// Join operators and per-column metadata, ignoring filters and the actual
// join keys.
//
// For a count with no joins the sensitivity is 1 (adding or removing one
// record changes the count by at most one). For each Join, FLEX multiplies
// in the worst-case fan-out — the product of the most-frequent-key
// frequencies of the two joined columns — and with multiple joins it
// multiplies the per-join worst cases together, which is exactly why its
// error "magnifies in each Join when the worst case does not occur"
// (TPCH16/TPCH21 in Figure 2a).
package flex

import (
	"errors"
	"fmt"

	"upa/internal/relation"
)

// ErrUnsupported is returned for queries outside FLEX's supported fragment
// (non-count queries: arithmetic aggregates, machine learning, ...).
var ErrUnsupported = errors.New("flex: query not supported (only counting queries with Select/Join/Filter/Count)")

// Join is one equi-join as the static analysis sees it: only the column
// statistics of the two join columns, never the data.
type Join struct {
	// Left and Right are the join-column statistics of the two sides.
	Left, Right relation.ColumnStats
}

// WorstCaseFanOut is the join's contribution to the sensitivity product.
func (j Join) WorstCaseFanOut() float64 {
	return float64(j.Left.MaxFreq) * float64(j.Right.MaxFreq)
}

// Plan is a SQL count query as FLEX models it. Filters are deliberately
// absent: FLEX "does not consider the effect of join condition (i.e.,
// Filter) when inferring the worst case sensitivity" (§II-B).
type Plan struct {
	// Name labels the query.
	Name string
	// CountQuery reports whether the query's aggregate is a count; FLEX
	// supports nothing else.
	CountQuery bool
	// Joins lists the query's Join operators in plan order.
	Joins []Join
}

// LocalSensitivity returns FLEX's statically inferred local sensitivity —
// a pre-noise value dpflow keeps away from user-visible sinks.
//
//upa:dpsource
func (p Plan) LocalSensitivity() (float64, error) {
	if !p.CountQuery {
		return 0, fmt.Errorf("%w: %s", ErrUnsupported, p.Name)
	}
	sens := 1.0
	for i, j := range p.Joins {
		if err := j.Left.Validate(); err != nil {
			return 0, fmt.Errorf("flex: %s join %d: %w", p.Name, i, err)
		}
		if err := j.Right.Validate(); err != nil {
			return 0, fmt.Errorf("flex: %s join %d: %w", p.Name, i, err)
		}
		sens *= j.WorstCaseFanOut()
	}
	return sens, nil
}

// Supported reports whether FLEX can analyze the plan at all.
func (p Plan) Supported() bool { return p.CountQuery }
