package bench

import (
	"fmt"
	"strings"
	"time"

	"upa/internal/cluster"
	"upa/internal/mapreduce"
)

// SimulatedOverheadRow is one bar of the simulated-testbed variant of
// Figure 2(b): engine operation counts priced by the cluster cost model
// instead of in-process wall-clock, which removes Go-runtime constants from
// the ratio and is the closest this repository can get to the paper's
// five-node measurements.
type SimulatedOverheadRow struct {
	Query string
	// VanillaCost and UPACost are the modeled cluster times.
	VanillaCost, UPACost time.Duration
	// Normalized is UPACost/VanillaCost; Overhead is Normalized - 1.
	Normalized float64
	Overhead   float64
}

// Fig2bSimulated regenerates Figure 2(b) under the cluster cost model.
func Fig2bSimulated(cfg Config, model cluster.Model) ([]SimulatedOverheadRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	rows := make([]SimulatedOverheadRow, 0, 9)
	for _, r := range w.All() {
		vanillaEng := mapreduce.NewEngine()
		if _, err := r.RunVanilla(vanillaEng); err != nil {
			return nil, fmt.Errorf("bench: vanilla %s: %w", r.Name(), err)
		}
		upaEng := mapreduce.NewEngine()
		sys, err := cfg.newSystem(upaEng, cfg.SampleSize)
		if err != nil {
			return nil, err
		}
		if _, err := r.RunUPA(sys); err != nil {
			return nil, fmt.Errorf("bench: UPA %s: %w", r.Name(), err)
		}

		vanillaCost, err := model.Estimate(vanillaEng.Metrics())
		if err != nil {
			return nil, err
		}
		upaCost, err := model.Estimate(upaEng.Metrics())
		if err != nil {
			return nil, err
		}
		row := SimulatedOverheadRow{
			Query:       r.Name(),
			VanillaCost: vanillaCost.Total(),
			UPACost:     upaCost.Total(),
		}
		if row.VanillaCost > 0 {
			row.Normalized = float64(row.UPACost) / float64(row.VanillaCost)
			row.Overhead = row.Normalized - 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFig2bSimulated renders the simulated-testbed overheads.
func RenderFig2bSimulated(rows []SimulatedOverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(b), simulated 5-node testbed: modeled UPA time normalized to vanilla\n")
	fmt.Fprintf(&b, "%-18s %14s %14s %11s %10s\n", "Query", "vanilla(sim)", "UPA(sim)", "normalized", "overhead")
	var sum float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %14v %14v %10.2fx %9.1f%%\n",
			r.Query, r.VanillaCost.Round(time.Microsecond), r.UPACost.Round(time.Microsecond),
			r.Normalized, 100*r.Overhead)
		sum += r.Overhead
	}
	fmt.Fprintf(&b, "mean simulated overhead: %.1f%% (paper: 77.6%%)\n", 100*sum/float64(len(rows)))
	return b.String()
}
