package mapreduce

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"upa/internal/checksum"
)

// Spill file format v2: a checksummed header followed by a sequence of
// independent, checksummed, length-prefixed frames, each holding one
// gob-encoded batch of records.
//
//	file    := header frame*
//	header  := magic("UPASPILL") version(uint16 LE) count(uint64 LE) crc32c(header[0:18])
//	frame   := uvarint(nrecs) uvarint(len(payload)) payload crc32c(payload)
//	payload := gob([]T)            // fresh encoder per frame
//
// The header records the total record count so truncation at a frame
// boundary — the one torn-write shape per-frame checksums cannot see — is
// still detected; the per-frame record count lets verifySpill audit a file
// without paying for gob decode. All checksums are CRC-32C
// (internal/checksum). Any mismatch, short read, oversized frame, or
// header/count disagreement surfaces as an error wrapping ErrSpillCorrupt:
// the storage layer distrusts the disk, and corruption is detected
// deterministically at read time rather than decoded into silently wrong
// records (and from there into a wrong released DP answer).
//
// Every frame is self-contained (its own gob type descriptors), so a reader
// can stream record-by-record holding at most one decoded batch in memory —
// which is what the external merge sort's k-way merge needs.
//
// The codec must be deterministic: a retried task that rewrites its spill
// file must produce the same bytes, or lineage recomputation under chaos
// would diverge. gob encodes slices, strings, numbers, and structs of those
// deterministically; the one caveat is Go maps (iteration order leaks into
// the encoding), so record types routed through the spill path must not
// contain map fields. Nothing in the engine's own record flow (Pair, State
// vectors, relation rows) does. Note also that gob cannot distinguish a nil
// slice from an empty one: both decode as nil, which is invisible to every
// value-semantics consumer but would matter to code comparing against nil.

// ErrSpillCorrupt marks a spill file whose bytes fail integrity checks —
// bad magic, checksum mismatch, truncation, impossible frame size, or a
// record count that disagrees with the header. It is typed so the partition
// store can distinguish "the disk lied" (recoverable by recomputing the
// partition from lineage) from ordinary I/O errors.
var ErrSpillCorrupt = errors.New("mapreduce: spill file corrupt")

const (
	spillMagic   = "UPASPILL"
	spillVersion = 2
	// spillHeaderLen is magic(8) + version(2) + count(8) + crc(4).
	spillHeaderLen = 8 + 2 + 8 + 4
	// maxSpillFrame caps a single frame's payload when the reader does not
	// know the file size (callers that do pass the size get the tighter
	// remaining-bytes bound). A corrupt uvarint must not be able to demand
	// a 2^60-byte allocation and OOM the process; 1 GiB is orders of
	// magnitude above any real spillBatch encoding yet small enough to fail
	// fast.
	maxSpillFrame = 1 << 30
)

// spillBatch is the records-per-frame granularity: large enough to amortize
// the per-frame gob descriptors, small enough that a streaming reader's
// resident batch stays far below any sensible memory budget.
const spillBatch = 512

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSpillCorrupt, fmt.Sprintf(format, args...))
}

// writeSpill encodes recs as a v2 spill stream onto w and returns the byte
// count written (header included).
func writeSpill[T any](w io.Writer, recs []T) (int64, error) {
	bw := bufio.NewWriter(w)
	var hdr [spillHeaderLen]byte
	copy(hdr[:8], spillMagic)
	binary.LittleEndian.PutUint16(hdr[8:10], spillVersion)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(len(recs)))
	binary.LittleEndian.PutUint32(hdr[18:22], checksum.Sum(hdr[:18]))
	if _, err := bw.Write(hdr[:]); err != nil {
		return 0, err
	}
	written := int64(spillHeaderLen)

	var payload bytes.Buffer
	var varint [2 * binary.MaxVarintLen64]byte
	var crc [4]byte
	for lo := 0; lo < len(recs); lo += spillBatch {
		hi := lo + spillBatch
		if hi > len(recs) {
			hi = len(recs)
		}
		payload.Reset()
		if err := gob.NewEncoder(&payload).Encode(recs[lo:hi]); err != nil {
			return written, fmt.Errorf("mapreduce: spill encode: %w", err)
		}
		n := binary.PutUvarint(varint[:], uint64(hi-lo))
		n += binary.PutUvarint(varint[n:], uint64(payload.Len()))
		if _, err := bw.Write(varint[:n]); err != nil {
			return written, err
		}
		if _, err := bw.Write(payload.Bytes()); err != nil {
			return written, err
		}
		binary.LittleEndian.PutUint32(crc[:], checksum.Sum(payload.Bytes()))
		if _, err := bw.Write(crc[:]); err != nil {
			return written, err
		}
		written += int64(n + payload.Len() + 4)
	}
	return written, bw.Flush()
}

// spillReader streams records back out of a spill file, decoding one frame
// at a time and verifying every checksum on the way.
type spillReader[T any] struct {
	br    *bufio.Reader
	batch []T
	pos   int
	// remaining is the byte count left in the file when the caller knows it
	// (size >= 0 at construction), used to bound frame allocations; -1
	// means unknown and maxSpillFrame applies alone.
	remaining int64
	gotHeader bool
	// want/seen track the header's record count against records actually
	// decoded, so truncation at a frame boundary is caught at EOF.
	want uint64
	seen uint64
}

// newSpillReader wraps r. size is the total stream length in bytes when
// known (it tightens the frame-allocation bound), or -1 when unknown.
func newSpillReader[T any](r io.Reader, size int64) *spillReader[T] {
	if size < 0 {
		size = -1
	}
	return &spillReader[T]{br: bufio.NewReader(r), remaining: size}
}

// next returns the next record, or ok=false at a clean end of stream. A
// truncated or corrupt frame is an error wrapping ErrSpillCorrupt, never a
// silent short read.
func (r *spillReader[T]) next() (rec T, ok bool, err error) {
	var zero T
	for r.pos >= len(r.batch) {
		if err := r.readFrame(); err != nil {
			if err == io.EOF {
				if r.seen != r.want {
					return zero, false, corruptf("stream ended after %d of %d records", r.seen, r.want)
				}
				return zero, false, nil
			}
			return zero, false, err
		}
	}
	rec = r.batch[r.pos]
	r.pos++
	r.seen++
	return rec, true, nil
}

// readHeader consumes and validates the file header.
func (r *spillReader[T]) readHeader() error {
	var hdr [spillHeaderLen]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return corruptf("header truncated: %v", err)
	}
	if string(hdr[:8]) != spillMagic {
		return corruptf("bad magic %q", hdr[:8])
	}
	if got := binary.LittleEndian.Uint32(hdr[18:22]); got != checksum.Sum(hdr[:18]) {
		return corruptf("header checksum mismatch")
	}
	// Checksum verified after magic so a corrupt version byte reads as
	// corruption, while a genuinely newer format (good checksum, higher
	// version) reads as incompatibility.
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != spillVersion {
		return corruptf("unsupported format version %d (want %d)", v, spillVersion)
	}
	r.want = binary.LittleEndian.Uint64(hdr[10:18])
	if r.remaining >= 0 {
		r.remaining -= spillHeaderLen
		if r.remaining < 0 {
			return corruptf("file shorter than its header")
		}
	}
	r.gotHeader = true
	return nil
}

// readFrame decodes the next frame into r.batch. io.EOF means a clean end.
func (r *spillReader[T]) readFrame() error {
	if !r.gotHeader {
		if err := r.readHeader(); err != nil {
			return err
		}
	}
	nrecs, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return corruptf("frame header: %v", err)
	}
	size, err := binary.ReadUvarint(r.br)
	if err != nil {
		return corruptf("frame header: %v", err)
	}
	// Bound the allocation before trusting the on-disk size: a corrupt
	// uvarint can otherwise demand an absurd make([]byte, size).
	if size > maxSpillFrame {
		return corruptf("frame claims %d bytes (cap %d)", size, maxSpillFrame)
	}
	if r.remaining >= 0 {
		overhead := int64(uvarintLen(nrecs) + uvarintLen(size) + 4)
		if int64(size)+overhead > r.remaining {
			return corruptf("frame claims %d bytes with %d left in file", size, r.remaining)
		}
		r.remaining -= int64(size) + overhead
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return corruptf("frame truncated: %v", err)
	}
	var crc [4]byte
	if _, err := io.ReadFull(r.br, crc[:]); err != nil {
		return corruptf("frame checksum truncated: %v", err)
	}
	if binary.LittleEndian.Uint32(crc[:]) != checksum.Sum(payload) {
		return corruptf("frame checksum mismatch")
	}
	// Decode into a fresh slice every frame: gob reuses existing backing
	// arrays — including the inner slices of elements decoded earlier — so
	// recycling the batch would let frame n+1 scribble over records already
	// handed out of frame n (their struct copies share those inner arrays).
	r.batch = nil
	r.pos = 0
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r.batch); err != nil {
		// The checksum passed, so these bytes are what the writer wrote;
		// still corruption from the consumer's view (e.g. a torn write that
		// happened to survive framing), never data to silently trust.
		return corruptf("frame decode: %v", err)
	}
	if uint64(len(r.batch)) != nrecs {
		return corruptf("frame decoded %d records, header said %d", len(r.batch), nrecs)
	}
	return nil
}

// readSpill decodes a whole spill stream into an owned slice. size is the
// stream length in bytes when known, or -1. count sizes the allocation (the
// store records it at write time); a wrong count only costs a reallocation.
func readSpill[T any](r io.Reader, size int64, count int) ([]T, error) {
	out := make([]T, 0, count)
	sr := newSpillReader[T](r, size)
	for {
		rec, ok, err := sr.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, rec)
	}
}

// verifySpill walks a spill stream checking structural integrity — header
// checksum, every frame checksum, and the header record count against the
// per-frame counts — without decoding any records. The spill store runs it
// after every write, so a torn write (silently dropped tail bytes that
// still reported success) is caught while the writer still has the records
// in hand to retry, instead of surfacing at some much later read.
func verifySpill(r io.Reader, size int64) error {
	br := bufio.NewReader(r)
	var hdr [spillHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return corruptf("header truncated: %v", err)
	}
	if string(hdr[:8]) != spillMagic {
		return corruptf("bad magic %q", hdr[:8])
	}
	if got := binary.LittleEndian.Uint32(hdr[18:22]); got != checksum.Sum(hdr[:18]) {
		return corruptf("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != spillVersion {
		return corruptf("unsupported format version %d (want %d)", v, spillVersion)
	}
	want := binary.LittleEndian.Uint64(hdr[10:18])
	remaining := size - spillHeaderLen
	if size >= 0 && remaining < 0 {
		return corruptf("file shorter than its header")
	}
	var seen uint64
	buf := make([]byte, 64<<10)
	for {
		nrecs, err := binary.ReadUvarint(br)
		if err != nil {
			if err == io.EOF {
				if seen != want {
					return corruptf("stream ended after %d of %d records", seen, want)
				}
				return nil
			}
			return corruptf("frame header: %v", err)
		}
		fsize, err := binary.ReadUvarint(br)
		if err != nil {
			return corruptf("frame header: %v", err)
		}
		if fsize > maxSpillFrame {
			return corruptf("frame claims %d bytes (cap %d)", fsize, maxSpillFrame)
		}
		if size >= 0 {
			overhead := int64(uvarintLen(nrecs) + uvarintLen(fsize) + 4)
			if int64(fsize)+overhead > remaining {
				return corruptf("frame claims %d bytes with %d left in file", fsize, remaining)
			}
			remaining -= int64(fsize) + overhead
		}
		crc := uint32(0)
		left := fsize
		for left > 0 {
			n := uint64(len(buf))
			if n > left {
				n = left
			}
			if _, err := io.ReadFull(br, buf[:n]); err != nil {
				return corruptf("frame truncated: %v", err)
			}
			crc = checksum.Update(crc, buf[:n])
			left -= n
		}
		var tail [4]byte
		if _, err := io.ReadFull(br, tail[:]); err != nil {
			return corruptf("frame checksum truncated: %v", err)
		}
		if binary.LittleEndian.Uint32(tail[:]) != crc {
			return corruptf("frame checksum mismatch")
		}
		seen += nrecs
	}
}

// uvarintLen is the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
