package tpch

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV readers for the table formats cmd/upa-datagen emits, so generated
// datasets round-trip through files and users can bring their own
// TPC-H-shaped data. Each reader expects the exact header its writer
// produces and returns an error naming the first offending row otherwise.

// ReadLineitems parses a lineitem CSV.
func ReadLineitems(r io.Reader) ([]Lineitem, error) {
	rows, err := readTable(r, []string{
		"orderkey", "partkey", "suppkey", "linenumber", "quantity",
		"extendedprice", "discount", "tax", "returnflag", "linestatus",
		"shipdate", "commitdate", "receiptdate", "shipmode",
	})
	if err != nil {
		return nil, err
	}
	out := make([]Lineitem, len(rows))
	for i, rec := range rows {
		p := fieldParser{row: i, rec: rec}
		out[i] = Lineitem{
			OrderKey:      p.intAt(0),
			PartKey:       p.intAt(1),
			SuppKey:       p.intAt(2),
			LineNumber:    p.intAt(3),
			Quantity:      p.floatAt(4),
			ExtendedPrice: p.floatAt(5),
			Discount:      p.floatAt(6),
			Tax:           p.floatAt(7),
			ReturnFlag:    rec[8],
			LineStatus:    rec[9],
			ShipDate:      Date(p.intAt(10)),
			CommitDate:    Date(p.intAt(11)),
			ReceiptDate:   Date(p.intAt(12)),
			ShipMode:      rec[13],
		}
		if p.err != nil {
			return nil, fmt.Errorf("tpch: lineitem %w", p.err)
		}
	}
	return out, nil
}

// ReadOrders parses an orders CSV.
func ReadOrders(r io.Reader) ([]Order, error) {
	rows, err := readTable(r, []string{
		"orderkey", "custkey", "orderstatus", "totalprice",
		"orderdate", "orderpriority", "specialrequest",
	})
	if err != nil {
		return nil, err
	}
	out := make([]Order, len(rows))
	for i, rec := range rows {
		p := fieldParser{row: i, rec: rec}
		out[i] = Order{
			OrderKey:       p.intAt(0),
			CustKey:        p.intAt(1),
			OrderStatus:    rec[2],
			TotalPrice:     p.floatAt(3),
			OrderDate:      Date(p.intAt(4)),
			OrderPriority:  rec[5],
			SpecialRequest: p.boolAt(6),
		}
		if p.err != nil {
			return nil, fmt.Errorf("tpch: order %w", p.err)
		}
	}
	return out, nil
}

// ReadPartSupps parses a partsupp CSV.
func ReadPartSupps(r io.Reader) ([]PartSupp, error) {
	rows, err := readTable(r, []string{"partkey", "suppkey", "availqty", "supplycost"})
	if err != nil {
		return nil, err
	}
	out := make([]PartSupp, len(rows))
	for i, rec := range rows {
		p := fieldParser{row: i, rec: rec}
		out[i] = PartSupp{
			PartKey:    p.intAt(0),
			SuppKey:    p.intAt(1),
			AvailQty:   p.intAt(2),
			SupplyCost: p.floatAt(3),
		}
		if p.err != nil {
			return nil, fmt.Errorf("tpch: partsupp %w", p.err)
		}
	}
	return out, nil
}

// ReadSuppliers parses a supplier CSV.
func ReadSuppliers(r io.Reader) ([]Supplier, error) {
	rows, err := readTable(r, []string{"suppkey", "nationkey", "complaint"})
	if err != nil {
		return nil, err
	}
	out := make([]Supplier, len(rows))
	for i, rec := range rows {
		p := fieldParser{row: i, rec: rec}
		out[i] = Supplier{
			SuppKey:   p.intAt(0),
			NationKey: p.intAt(1),
			Complaint: p.boolAt(2),
		}
		if p.err != nil {
			return nil, fmt.Errorf("tpch: supplier %w", p.err)
		}
	}
	return out, nil
}

// readTable reads and validates a header-prefixed CSV.
func readTable(r io.Reader, header []string) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(header)
	all, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("tpch: read csv: %w", err)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("tpch: empty csv (missing header)")
	}
	for i, name := range header {
		if all[0][i] != name {
			return nil, fmt.Errorf("tpch: header column %d is %q, want %q", i, all[0][i], name)
		}
	}
	return all[1:], nil
}

// fieldParser accumulates the first parse error of a row.
type fieldParser struct {
	row int
	rec []string
	err error
}

func (p *fieldParser) intAt(i int) int {
	if p.err != nil {
		return 0
	}
	v, err := strconv.Atoi(p.rec[i])
	if err != nil {
		p.err = fmt.Errorf("row %d column %d: %w", p.row, i, err)
	}
	return v
}

func (p *fieldParser) floatAt(i int) float64 {
	if p.err != nil {
		return 0
	}
	v, err := strconv.ParseFloat(p.rec[i], 64)
	if err != nil {
		p.err = fmt.Errorf("row %d column %d: %w", p.row, i, err)
	}
	return v
}

func (p *fieldParser) boolAt(i int) bool {
	if p.err != nil {
		return false
	}
	v, err := strconv.ParseBool(p.rec[i])
	if err != nil {
		p.err = fmt.Errorf("row %d column %d: %w", p.row, i, err)
	}
	return v
}
