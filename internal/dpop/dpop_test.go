package dpop

import (
	"math"
	"testing"
	"testing/quick"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

func newEngine() *mapreduce.Engine { return mapreduce.NewEngine() }

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func sum(a, b float64) float64 { return a + b }

func TestDPReadValidation(t *testing.T) {
	eng := newEngine()
	rng := stats.NewRNG(1)
	if _, err := DPRead(eng, []float64{}, 5, rng); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := DPRead(eng, seq(10), 0, rng); err == nil {
		t.Error("zero sample size accepted")
	}
	if _, err := DPRead[float64](nil, seq(10), 5, rng); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestDPReadPartitionsCompletely(t *testing.T) {
	eng := newEngine()
	d, err := DPRead(eng, seq(100), 30, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.SampleSize() != 30 {
		t.Fatalf("SampleSize = %d, want 30", d.SampleSize())
	}
	rest, err := d.RestSize()
	if err != nil {
		t.Fatal(err)
	}
	if rest != 70 {
		t.Fatalf("RestSize = %d, want 70", rest)
	}
	// S and S' are disjoint and together cover x.
	seen := make(map[float64]bool, 100)
	for _, v := range d.samples {
		seen[v] = true
	}
	restRecs, err := d.rest.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range restRecs {
		if seen[v] {
			t.Fatalf("record %v in both S and S'", v)
		}
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatalf("S ∪ S' covers %d records, want 100", len(seen))
	}
}

func TestDPReadClampsSampleSize(t *testing.T) {
	eng := newEngine()
	d, err := DPRead(eng, seq(5), 100, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if d.SampleSize() != 5 {
		t.Fatalf("SampleSize = %d, want 5", d.SampleSize())
	}
	rest, err := d.RestSize()
	if err != nil || rest != 0 {
		t.Fatalf("RestSize = %d, %v; want 0, nil", rest, err)
	}
}

func TestMapDPAppliesBothSides(t *testing.T) {
	eng := newEngine()
	d, err := DPRead(eng, seq(50), 10, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	doubled, err := MapDP(d, func(x float64) float64 { return 2 * x })
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceDP(doubled, sum)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * (49.0 * 50 / 2); res.Result != want {
		t.Fatalf("Result = %v, want %v", res.Result, want)
	}
}

func TestReduceDPNeighboursExact(t *testing.T) {
	// With n == |x|, every removal neighbour is produced exactly.
	eng := newEngine()
	data := []float64{3, 1, 4, 1, 5}
	d, err := DPRead(eng, data, len(data), stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceDP(d, sum)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != 14 {
		t.Fatalf("Result = %v, want 14", res.Result)
	}
	if len(res.Neighbours) != 5 {
		t.Fatalf("%d neighbours, want 5", len(res.Neighbours))
	}
	// Each neighbour is 14 - x_i for a unique record.
	counts := map[float64]int{}
	for _, n := range res.Neighbours {
		counts[14-n]++
	}
	want := map[float64]int{3: 1, 1: 2, 4: 1, 5: 1}
	for v, c := range want {
		if counts[v] != c {
			t.Fatalf("removal multiset = %v, want %v", counts, want)
		}
	}
	if got := res.SpreadFloat64(func(x float64) float64 { return x }); got != 5 {
		t.Fatalf("SpreadFloat64 = %v, want 5 (max |x_i|)", got)
	}
}

// TestReduceDPMatchesDirect is the operator-level union-preserving
// property: the reused neighbours equal from-scratch recomputation on
// random inputs.
func TestReduceDPMatchesDirect(t *testing.T) {
	eng := newEngine()
	f := func(raw []int16, nRaw uint8, seed uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 50 {
			raw = raw[:50]
		}
		data := make([]float64, len(raw))
		var total float64
		for i, v := range raw {
			data[i] = float64(v)
			total += float64(v)
		}
		n := int(nRaw)%len(raw) + 1
		d, err := DPRead(eng, data, n, stats.NewRNG(uint64(seed)))
		if err != nil {
			return false
		}
		res, err := ReduceDP(d, sum)
		if err != nil {
			return false
		}
		if math.Abs(res.Result-total) > 1e-9*math.Max(1, math.Abs(total)) {
			return false
		}
		// Every neighbour must equal total minus some record value.
		for _, nb := range res.Neighbours {
			removed := total - nb
			found := false
			for _, v := range data {
				if math.Abs(removed-v) < 1e-6 {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// A single-record dataset has no reducible removal neighbour.
		return len(res.Neighbours) == n || len(data) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceDPNonCommutativeSafeOrder(t *testing.T) {
	// max is commutative and associative; verify a non-sum reducer.
	eng := newEngine()
	data := []float64{2, 9, 4, 7}
	d, err := DPRead(eng, data, 4, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceDP(d, math.Max)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != 9 {
		t.Fatalf("max = %v, want 9", res.Result)
	}
	// Removing 9 leaves max 7; removing anything else leaves 9.
	saw7 := false
	for _, n := range res.Neighbours {
		switch n {
		case 9:
		case 7:
			saw7 = true
		default:
			t.Fatalf("unexpected neighbour max %v", n)
		}
	}
	if !saw7 {
		t.Fatal("removal of the maximum never observed")
	}
}

func TestFilterDP(t *testing.T) {
	eng := newEngine()
	d, err := DPRead(eng, seq(20), 20, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	evens, err := FilterDP(d, func(x float64) bool { return math.Mod(x, 2) == 0 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceDP(evens, sum)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.0 + 2 + 4 + 6 + 8 + 10 + 12 + 14 + 16 + 18; res.Result != want {
		t.Fatalf("filtered sum = %v, want %v", res.Result, want)
	}
}

func TestReduceDPSingleRecord(t *testing.T) {
	eng := newEngine()
	d, err := DPRead(eng, []float64{42}, 1, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReduceDP(d, sum)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != 42 {
		t.Fatalf("Result = %v, want 42", res.Result)
	}
	// Removing the only record leaves an empty dataset: no neighbour value.
	if len(res.Neighbours) != 0 {
		t.Fatalf("neighbours = %v, want none", res.Neighbours)
	}
}
