package core

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"time"

	"upa/internal/jobgraph"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// approxRecordBytes estimates the serialized size of one shuffled record for
// the per-stage span accounting — the same 100-byte row the cluster cost
// model assumes for the paper's testbed.
const approxRecordBytes = 100

// speculationAfter is how long a partition of a partitioned release stage
// may straggle before the scheduler launches a speculative duplicate. Stage
// partitions are pure up to their commit, so duplicates never change
// outputs; releases normally complete in milliseconds, so this only fires on
// a genuinely wedged worker.
const speculationAfter = time.Second

// Stage names of the release jobgraph. The DAG (see DESIGN.md):
//
//	partition-sample ─┬─► bulk-reduce ────────────────┐
//	                  ├─► map-samples ─► prefix-suffix┼─► neighbour-join ─► fit ─► enforce ─► perturb
//	                  │                     └► neighbour-deltas ─┘
//	                  └─► map-additions ──────────────┘
//
// neighbour-deltas (the per-neighbour prefix/suffix combines) depends only
// on prefix-suffix, so it overlaps the bulk R(M(S')) reduction — the
// pipelining that a flat phase loop serialized at artificial barriers.
const (
	StagePartitionSample = "partition-sample"
	StageBulkReduce      = "bulk-reduce"
	StageMapSamples      = "map-samples"
	StageMapAdditions    = "map-additions"
	StagePrefixSuffix    = "prefix-suffix"
	StageNeighbourDeltas = "neighbour-deltas"
	StageNeighbourJoin   = "neighbour-join"
	StageFit             = "fit"
	StageEnforce         = "enforce"
	StagePerturb         = "perturb"
)

// Run executes query q on data end-to-end under UPA and returns the iDP
// release. domain samples a fresh record from the query's record domain D
// (used for the "addition" neighbouring datasets); a nil domain restricts
// the neighbouring samples to removals.
//
// data must hold at least two records (UPA targets big-data inputs; the
// RANGE ENFORCER needs two non-empty partitions).
func Run[T any](sys *System, q Query[T], data []T, domain domainSampler[T]) (*Result, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return RunCtx(context.Background(), sys, q, data, domain)
}

// RunCtx is Run under a context: the release executes as a jobgraph of
// stages on the engine's worker pool, and cancelling ctx stops the scheduler
// from starting new stages and the engine from claiming new partition tasks.
func RunCtx[T any](ctx context.Context, sys *System, q Query[T], data []T, domain domainSampler[T]) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("core: query %q needs at least two input records, got %d", q.Name, len(data))
	}

	release := sys.releases.Add(1)
	rng := sys.rng.Split(release)
	eng := sys.eng
	before := eng.Metrics()
	res := &Result{Query: q.Name, Release: release}

	n := sys.cfg.SampleSize
	if n > len(data) {
		// Small datasets degenerate to the exact local sensitivity over all
		// removals (§IV-A).
		n = len(data)
	}
	res.SampleSize = n

	reduce := q.reducer()
	// Cache key for R(M(S')): the sensitivity loop re-reads it once per
	// sampled neighbouring dataset, which is the Spark memory-cache reuse
	// behind Figure 4(b).
	cacheKey := "upa:" + q.Name + ":rsprime:" +
		strconv.FormatUint(sys.id, 10) + ":" + strconv.FormatUint(release, 10)

	// State shared between stages. Every variable is written by exactly one
	// stage and read only by stages that depend on it, so the scheduler's
	// completion ordering provides the happens-before edges.
	var (
		samples     []T
		halves      []int // which RANGE ENFORCER partition each sample came from
		sPrimeHalf  [2][]T
		additions   []T
		mappedPrime [2]*mapreduce.Dataset[State]
		ms, msBar   []State
		rsPrimeHalf [2]State
		rsPrime     State
		rsPrimeOK   bool
		pre, suf    []State
		rest        []State // rest[i] = R(ms \ ms[i]) via prefix/suffix
		restOK      []bool
		lo, hi      []float64
	)

	g := jobgraph.New("release:"+q.Name,
		jobgraph.WithSlots(eng.Workers()),
		jobgraph.WithSpeculation(speculationAfter),
		// Stage-level retries share the engine's policy and seeded injector,
		// so one chaos configuration governs both schedulers.
		jobgraph.WithRetryPolicy(eng.RetryPolicy()),
		jobgraph.WithChaos(eng.Chaos()))

	// --- Phase 1: Partition and Sample (§III) -------------------------------
	g.Stage(StagePartitionSample, func(_ context.Context, sc *jobgraph.StageContext) error {
		// partition-sample is the graph's only root, so it runs alone and the
		// engine's spill counters can be delta-attributed to its span without
		// racing a sibling stage. Later stages overlap; their spill traffic is
		// visible in the release-level EngineDelta instead.
		spillBefore := eng.Metrics()
		defer func() {
			d := eng.Metrics().Sub(spillBefore)
			sc.AddSpill(d.SpilledBytes, d.SpillReads)
			sc.AddSpillRecovery(d.SpillCorruptionsDetected, d.SpillRecomputes)
		}()
		// The RANGE ENFORCER requires the dataset split into two fixed
		// partitions; on a cluster this repartitioning exchanges records
		// between computers, which is the extra shuffle the paper attributes
		// >42% of UPA's overhead on local-computation queries to (§VI-D).
		mid := len(data) / 2
		eng.AccountShuffle(len(data))
		sc.AddRecords(int64(len(data)))
		sc.AddShuffle(int64(len(data)), int64(len(data))*approxRecordBytes)

		sampleIdx := rng.Split(1).SampleIndices(len(data), n)
		samples = make([]T, n)
		halves = make([]int, n)
		inSample := make(map[int]bool, n)
		for i, idx := range sampleIdx {
			samples[i] = data[idx]
			if idx >= mid {
				halves[i] = 1
			}
			inSample[idx] = true
		}
		for idx, rec := range data {
			if inSample[idx] {
				continue
			}
			h := 0
			if idx >= mid {
				h = 1
			}
			sPrimeHalf[h] = append(sPrimeHalf[h], rec)
		}
		if domain != nil {
			addRNG := rng.Split(2)
			additions = make([]T, n)
			for i := range additions {
				additions[i] = domain(addRNG)
			}
		}
		// The mapped S' halves stay lazy so the scratch-recompute ablation
		// re-executes the map, like lineage recomputation would.
		var err error
		mappedPrime, err = mapSPrime(eng, q, sPrimeHalf)
		return err
	})

	// --- Phase 2/3: bulk reduction of R(M(S')) ------------------------------
	g.Stage(StageBulkReduce, func(ctx context.Context, sc *jobgraph.StageContext) error {
		var err error
		rsPrimeHalf, err = reduceSPrime(ctx, eng, reduce, mappedPrime)
		if err != nil {
			return err
		}
		rsPrime, rsPrimeOK = combineOpt(reduce, eng, rsPrimeHalf[0], rsPrimeHalf[1])
		bulk := int64(len(sPrimeHalf[0]) + len(sPrimeHalf[1]))
		sc.AddRecords(bulk)
		if bulk > 1 {
			sc.AddReduceOps(bulk - 1)
		}
		if rsPrimeOK {
			if _, ok := mapreduce.CacheGet[State](eng.Cache(), cacheKey); !ok {
				mapreduce.CachePut(eng.Cache(), cacheKey, rsPrime)
			}
		}
		return nil
	}, StagePartitionSample)

	// --- Phase 2: Parallel Map of the sampled differing records -------------
	g.Stage(StageMapSamples, func(ctx context.Context, sc *jobgraph.StageContext) error {
		var err error
		ms, err = mapThrough(ctx, eng, q, samples)
		sc.AddRecords(int64(len(samples)))
		return err
	}, StagePartitionSample)
	if domain != nil {
		g.Stage(StageMapAdditions, func(ctx context.Context, sc *jobgraph.StageContext) error {
			var err error
			msBar, err = mapThrough(ctx, eng, q, additions)
			sc.AddRecords(int64(len(additions)))
			return err
		}, StagePartitionSample)
	}

	// --- Phase 3: Union Preserving Reduce (Algorithm 1) ---------------------
	g.Stage(StagePrefixSuffix, func(_ context.Context, sc *jobgraph.StageContext) error {
		pre, suf = prefixSuffix(reduce, eng, ms)
		if n > 1 {
			sc.AddReduceOps(int64(2 * (n - 1)))
		}
		return nil
	}, StageMapSamples)

	joinDeps := []string{StageBulkReduce, StagePrefixSuffix}
	if !sys.cfg.DisableReuse {
		// The per-neighbour complements rest[i] depend only on the
		// prefix/suffix partials, so this stage overlaps the bulk reduction.
		// It is partitioned so straggling chunks can be speculatively
		// re-executed; each partition publishes through its commit closure,
		// keeping duplicate attempts output-invisible.
		parts := eng.Workers()
		if parts > n {
			parts = n
		}
		rest = make([]State, n)
		restOK = make([]bool, n)
		g.Partitioned(StageNeighbourDeltas, parts, func(_ context.Context, sc *jobgraph.StageContext, p int) (func(), error) {
			clo, chi := chunkBounds(n, parts, p)
			localRest := make([]State, chi-clo)
			localOK := make([]bool, chi-clo)
			var ops int64
			for i := clo; i < chi; i++ {
				localRest[i-clo], localOK[i-clo] = combinePrefixSuffix(reduce, eng, pre, suf, i)
				if i > 0 && i < n-1 {
					ops++
				}
			}
			sc.AddReduceOps(ops)
			return func() {
				copy(rest[clo:chi], localRest)
				copy(restOK[clo:chi], localOK)
			}, nil
		}, StagePrefixSuffix)
		joinDeps = append(joinDeps, StageNeighbourDeltas)
	}
	if domain != nil {
		joinDeps = append(joinDeps, StageMapAdditions)
	}

	g.Stage(StageNeighbourJoin, func(ctx context.Context, sc *jobgraph.StageContext) error {
		fullState, fullOK := combineOpt(reduce, eng, cachedOrNil(rsPrime, rsPrimeOK), last(pre))
		if !fullOK {
			return fmt.Errorf("core: query %q reduced to an empty state", q.Name)
		}
		res.VanillaOutput = q.finalize(fullState)

		res.RemovalOutputs = make([][]float64, 0, n)
		for i := 0; i < n; i++ {
			var state State
			var ok bool
			if sys.cfg.DisableReuse {
				var err error
				state, ok, err = removalFromScratch(ctx, eng, q, mappedPrime, ms, i)
				if err != nil {
					return err
				}
			} else {
				// Reuse R(M(S')) (a cache hit per iteration) and the
				// precomputed prefix/suffix complement: O(1) combines per
				// neighbour. When S' is empty (every record sampled) there
				// is nothing cached to reuse, so the cache is not consulted.
				base := State(nil)
				baseOK := false
				if rsPrimeOK {
					if cached, hit := mapreduce.CacheGet[State](eng.Cache(), cacheKey); hit {
						base, baseOK = cached, true
						sc.AddCacheHits(1)
					}
				}
				state, ok = combineOpt(reduce, eng, cachedOrNil(base, baseOK), cachedOrNil(rest[i], restOK[i]))
				sc.AddReduceOps(1)
			}
			if !ok {
				// Removing the only record of a two-record dataset still
				// leaves one; reaching here means every record was sampled
				// and removed, which cannot happen for n >= 2 inputs. Skip
				// defensively.
				continue
			}
			res.RemovalOutputs = append(res.RemovalOutputs, q.finalize(state))
		}
		for _, add := range msBar {
			state := reduce(fullState, add)
			eng.AccountReduceOps(1)
			sc.AddReduceOps(1)
			res.AdditionOutputs = append(res.AdditionOutputs, q.finalize(state))
		}

		// Group extension (§VI-E): when GroupSize > 1, also sample block
		// neighbours — whole groups of records removed or added at once —
		// reusing the same mapped samples, prefix/suffix partials and
		// R(M(S')). Contiguous sample blocks keep each group neighbour an
		// O(1) combine.
		if grp := sys.cfg.GroupSize; grp > 1 {
			for start := 0; start+grp <= n; start += grp {
				blockRest, blockOK := blockComplement(reduce, eng, pre, suf, start, start+grp)
				state, ok := combineOpt(reduce, eng, cachedOrNil(rsPrime, rsPrimeOK), cachedOrNil(blockRest, blockOK))
				if !ok {
					continue
				}
				res.GroupRemovalOutputs = append(res.GroupRemovalOutputs, q.finalize(state))
			}
			for start := 0; start+grp <= len(msBar); start += grp {
				g, ok := mapreduce.ReduceSlice(msBar[start:start+grp], reduce)
				if !ok {
					continue
				}
				eng.AccountReduceOps(int64(grp))
				sc.AddReduceOps(int64(grp))
				res.GroupAdditionOutputs = append(res.GroupAdditionOutputs, q.finalize(reduce(fullState, g)))
			}
		}
		// Stash fullState for the enforcer via the result's vanilla output;
		// the final state is recomputed from rsPrime + prefix below.
		return nil
	}, joinDeps...)

	// --- Phase 4: iDP Enforcement (Algorithm 2) ------------------------------
	g.Stage(StageFit, func(_ context.Context, sc *jobgraph.StageContext) error {
		neighbours := make([][]float64, 0,
			len(res.RemovalOutputs)+len(res.AdditionOutputs)+
				len(res.GroupRemovalOutputs)+len(res.GroupAdditionOutputs))
		neighbours = append(neighbours, res.RemovalOutputs...)
		neighbours = append(neighbours, res.AdditionOutputs...)
		neighbours = append(neighbours, res.GroupRemovalOutputs...)
		neighbours = append(neighbours, res.GroupAdditionOutputs...)
		sc.AddRecords(int64(len(neighbours)))
		infer := inferSensitivity
		if sys.cfg.EmpiricalRange {
			infer = inferSensitivityEmpirical
		}
		var sens []float64
		var err error
		sens, lo, hi, err = infer(neighbours, q.OutputDim, sys.cfg.PercentileLo, sys.cfg.PercentileHi)
		if err != nil {
			return fmt.Errorf("core: query %q: %w", q.Name, err)
		}
		res.Sensitivity, res.RangeLo, res.RangeHi = sens, lo, hi
		res.EmpiricalLocalSensitivity = empiricalSensitivity(res.VanillaOutput, neighbours)
		return nil
	}, StageNeighbourJoin)

	g.Stage(StageEnforce, func(_ context.Context, sc *jobgraph.StageContext) error {
		parts := partitionOutputs(q, reduce, eng, rsPrimeHalf, ms, halves, 0)
		removed := 0
		for {
			name, collides := sys.enforcer.Collides(parts)
			if !collides {
				break
			}
			res.AttackSuspected = true
			if res.CollidedWith == "" {
				res.CollidedWith = name
			}
			if removed+2 > n {
				// Sample set exhausted; release with maximal removal.
				break
			}
			removed += 2
			parts = partitionOutputs(q, reduce, eng, rsPrimeHalf, ms, halves, removed)
			sc.AddReduceOps(int64(n - removed))
		}
		res.RemovedRecords = removed

		finalState, finalOK := combineOpt(reduce, eng,
			cachedOrNil(rsPrime, rsPrimeOK), prefixUpTo(pre, n-removed))
		if !finalOK {
			finalState = make(State, q.StateDim)
		}
		raw := q.finalize(finalState)
		if !sys.cfg.DisableClamp {
			clamped, nClamped := Clamp(raw, lo, hi, rng.Split(3))
			raw = clamped
			res.ClampedCoords = nClamped
		}
		res.RawOutput = raw
		sys.enforcer.Record(q.Name, parts)
		return nil
	}, StageFit)

	g.Stage(StagePerturb, func(_ context.Context, _ *jobgraph.StageContext) error {
		// A per-release mechanism keeps concurrent releases race-free and
		// their noise streams deterministic per release number. Under
		// SplitVectorBudget, vector outputs split ε across coordinates so
		// the whole release composes to one ε.
		effEps := sys.cfg.Epsilon
		if sys.cfg.SplitVectorBudget && q.OutputDim > 1 {
			effEps /= float64(q.OutputDim)
		}
		res.EffectiveEpsilon = effEps
		mech, err := stats.NewMechanism(effEps, rng.Split(4))
		if err != nil {
			return err
		}
		noisy, err := mech.PerturbVector(res.RawOutput, res.Sensitivity)
		if err != nil {
			return err
		}
		res.Output = noisy
		return nil
	}, StageEnforce)

	spans, err := g.Run(ctx)
	res.Spans = spans
	if err != nil {
		return nil, err
	}
	// Charge the budget ledger exactly once, only after the whole release
	// succeeded: recomputation under faults must never double-spend ε, and a
	// failed release spends nothing (no output was published).
	sys.chargeEpsilon(res.EffectiveEpsilon * float64(q.OutputDim))
	res.Phases = phasesFromSpans(spans)
	res.EngineDelta = eng.Metrics().Sub(before)
	if logger := sys.cfg.Logger; logger != nil {
		logger.Info("upa release",
			slog.String("query", q.Name),
			slog.Uint64("release", release),
			slog.Int("records", len(data)),
			slog.Int("sample_size", n),
			slog.Int("stages", len(spans)),
			slog.Duration("partition_sample", res.Phases.PartitionSample),
			slog.Duration("parallel_map", res.Phases.ParallelMap),
			slog.Duration("union_preserving_reduce", res.Phases.UnionPreservingReduce),
			slog.Duration("idp_enforcement", res.Phases.IDPEnforcement),
			// The inferred sensitivity is deliberately NOT logged: it is a
			// data-dependent pre-noise value, and a release log is
			// operator-visible output (dpflow would flag it).
			slog.Bool("attack_suspected", res.AttackSuspected),
			slog.Int("removed_records", res.RemovedRecords),
			slog.Int("clamped_coords", res.ClampedCoords),
		)
	}
	return res, nil
}

// phasesFromSpans maps the jobgraph stage spans onto the paper's four phases
// (§III). Stages within a phase may have overlapped, so a phase's time is
// the sum of its stages' busy time, not a wall-clock interval.
func phasesFromSpans(spans []jobgraph.Span) PhaseTimings {
	var p PhaseTimings
	for _, s := range spans {
		switch s.Stage {
		case StagePartitionSample:
			p.PartitionSample += s.Duration()
		case StageMapSamples, StageMapAdditions:
			p.ParallelMap += s.Duration()
		case StageBulkReduce, StagePrefixSuffix, StageNeighbourDeltas, StageNeighbourJoin:
			p.UnionPreservingReduce += s.Duration()
		case StageFit, StageEnforce, StagePerturb:
			p.IDPEnforcement += s.Duration()
		}
	}
	return p
}

// chunkBounds splits n items into parts contiguous chunks as evenly as
// possible and returns chunk p's [lo, hi) range.
func chunkBounds(n, parts, p int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = p*base + min(p, rem)
	hi = lo + base
	if p < rem {
		hi++
	}
	return lo, hi
}

// mapThrough maps records through the engine, preserving order.
func mapThrough[T any](ctx context.Context, eng *mapreduce.Engine, q Query[T], records []T) ([]State, error) {
	if len(records) == 0 {
		return nil, nil
	}
	parts := eng.Workers()
	if parts > len(records) {
		parts = len(records)
	}
	ds, err := mapreduce.FromSlice(eng, records, parts)
	if err != nil {
		return nil, err
	}
	return mapreduce.Map(ds, q.Map).CollectCtx(ctx)
}

// mapSPrime builds the lazily mapped datasets of the two remaining-record
// halves. They stay lazy so the scratch-recompute ablation re-executes the
// map, like lineage recomputation would.
func mapSPrime[T any](eng *mapreduce.Engine, q Query[T], sPrimeHalf [2][]T) ([2]*mapreduce.Dataset[State], error) {
	var out [2]*mapreduce.Dataset[State]
	for h := 0; h < 2; h++ {
		if len(sPrimeHalf[h]) == 0 {
			continue
		}
		parts := eng.Workers()
		if parts > len(sPrimeHalf[h]) {
			parts = len(sPrimeHalf[h])
		}
		ds, err := mapreduce.FromSlice(eng, sPrimeHalf[h], parts)
		if err != nil {
			return out, err
		}
		out[h] = mapreduce.Map(ds, q.Map)
	}
	return out, nil
}

// reduceSPrime reduces each mapped half of S' on the engine, returning the
// per-half partial state or nil when the half is empty.
func reduceSPrime(ctx context.Context, eng *mapreduce.Engine, reduce mapreduce.Reducer[State], mapped [2]*mapreduce.Dataset[State]) ([2]State, error) {
	var out [2]State
	for h := 0; h < 2; h++ {
		if mapped[h] == nil {
			continue
		}
		state, err := mapreduce.ReduceCtx(ctx, mapped[h], reduce)
		if err != nil {
			return out, err
		}
		out[h] = state
	}
	return out, nil
}

// prefixSuffix builds the partial-reduction arrays over the mapped samples:
// pre[i] = R(ms[0..i]) and suf[i] = R(ms[i..n-1]). Together with R(M(S'))
// they make every sampled neighbouring output an O(1) combine — the concrete
// payoff of commutativity and associativity (§IV-A).
func prefixSuffix(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, ms []State) (pre, suf []State) {
	n := len(ms)
	if n == 0 {
		return nil, nil
	}
	pre = make([]State, n)
	suf = make([]State, n)
	pre[0] = ms[0]
	for i := 1; i < n; i++ {
		pre[i] = reduce(pre[i-1], ms[i])
	}
	suf[n-1] = ms[n-1]
	for i := n - 2; i >= 0; i-- {
		suf[i] = reduce(ms[i], suf[i+1])
	}
	if n > 1 {
		eng.AccountReduceOps(int64(2 * (n - 1)))
	}
	return pre, suf
}

// blockComplement reduces all mapped samples outside [lo, hi) — the group
// analogue of combinePrefixSuffix.
func blockComplement(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, pre, suf []State, lo, hi int) (State, bool) {
	n := len(pre)
	var left, right State
	if lo > 0 {
		left = pre[lo-1]
	}
	if hi < n {
		right = suf[hi]
	}
	return combineOpt(reduce, eng, left, right)
}

// combinePrefixSuffix reduces all mapped samples except index i.
func combinePrefixSuffix(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, pre, suf []State, i int) (State, bool) {
	n := len(pre)
	switch {
	case n <= 1:
		return nil, false
	case i == 0:
		return suf[1], true
	case i == n-1:
		return pre[n-2], true
	default:
		eng.AccountReduceOps(1)
		return reduce(pre[i-1], suf[i+1]), true
	}
}

// removalFromScratch recomputes f's state on x - samples[i] with no reuse:
// it re-reduces the full remaining datasets and every other sample — the
// per-neighbour linear cost UPA eliminates (ablation for §VI-E).
func removalFromScratch[T any](ctx context.Context, eng *mapreduce.Engine, q Query[T], mapped [2]*mapreduce.Dataset[State], ms []State, i int) (State, bool, error) {
	reduce := q.reducer()
	rsPrimeHalf, err := reduceSPrime(ctx, eng, reduce, mapped)
	if err != nil {
		return nil, false, err
	}
	acc, ok := combineOpt(reduce, eng, rsPrimeHalf[0], rsPrimeHalf[1])
	for j, state := range ms {
		if j == i {
			continue
		}
		if !ok {
			acc, ok = state, true
			continue
		}
		acc = reduce(acc, state)
		eng.AccountReduceOps(1)
	}
	return acc, ok, nil
}

// partitionOutputs computes the query's finalized output on each RANGE
// ENFORCER partition of x, with the last `removed` samples excluded
// (Algorithm 2, lines 10–12).
func partitionOutputs[T any](q Query[T], reduce mapreduce.Reducer[State], eng *mapreduce.Engine,
	rsPrimeHalf [2]State, ms []State, halves []int, removed int) [2][]float64 {
	var parts [2][]float64
	keep := len(ms) - removed
	for h := 0; h < 2; h++ {
		acc := rsPrimeHalf[h]
		ok := acc != nil
		for i := 0; i < keep; i++ {
			if halves[i] != h {
				continue
			}
			if !ok {
				acc, ok = ms[i], true
				continue
			}
			acc = reduce(acc, ms[i])
			eng.AccountReduceOps(1)
		}
		if !ok {
			acc = make(State, q.StateDim)
		}
		parts[h] = q.finalize(acc)
	}
	return parts
}

// inferSensitivity fits a normal distribution per output coordinate over
// the sampled neighbouring outputs and returns the percentile-range
// sensitivity and output range (Algorithm 1, lines 17–21).
func inferSensitivity(neighbours [][]float64, dim int, pLo, pHi float64) (sens, lo, hi []float64, err error) {
	if len(neighbours) < 2 {
		return nil, nil, nil, fmt.Errorf("only %d sampled neighbouring outputs", len(neighbours))
	}
	sens = make([]float64, dim)
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	column := make([]float64, len(neighbours))
	for d := 0; d < dim; d++ {
		for i, out := range neighbours {
			if len(out) != dim {
				return nil, nil, nil, fmt.Errorf("neighbouring output %d has %d coordinates, want %d", i, len(out), dim)
			}
			column[i] = out[d]
		}
		fit, ferr := stats.FitNormalMLE(column)
		if ferr != nil {
			return nil, nil, nil, ferr
		}
		l, h, rerr := fit.PercentileRange(pLo, pHi)
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		lo[d], hi[d] = l, h
		sens[d] = h - l
	}
	return sens, lo, hi, nil
}

// inferSensitivityEmpirical is the distribution-free alternative: the
// output range comes from the empirical pLo/pHi quantiles of the sampled
// neighbouring outputs instead of a fitted normal distribution. It trades
// the paper's parametric smoothing for exactness on non-normal neighbour
// distributions (the §VI-C TPCH1 discussion).
func inferSensitivityEmpirical(neighbours [][]float64, dim int, pLo, pHi float64) (sens, lo, hi []float64, err error) {
	if len(neighbours) < 2 {
		return nil, nil, nil, fmt.Errorf("only %d sampled neighbouring outputs", len(neighbours))
	}
	sens = make([]float64, dim)
	lo = make([]float64, dim)
	hi = make([]float64, dim)
	column := make([]float64, len(neighbours))
	for d := 0; d < dim; d++ {
		for i, out := range neighbours {
			if len(out) != dim {
				return nil, nil, nil, fmt.Errorf("neighbouring output %d has %d coordinates, want %d", i, len(out), dim)
			}
			column[i] = out[d]
		}
		l, qerr := stats.EmpiricalQuantile(column, pLo)
		if qerr != nil {
			return nil, nil, nil, qerr
		}
		h, qerr := stats.EmpiricalQuantile(column, pHi)
		if qerr != nil {
			return nil, nil, nil, qerr
		}
		lo[d], hi[d] = l, h
		sens[d] = h - l
	}
	return sens, lo, hi, nil
}

// empiricalSensitivity returns, per coordinate, the greatest |f(y) - f(x)|
// over the sampled neighbouring outputs.
func empiricalSensitivity(output []float64, neighbours [][]float64) []float64 {
	out := make([]float64, len(output))
	for _, n := range neighbours {
		for d := range output {
			if diff := abs(n[d] - output[d]); diff > out[d] {
				out[d] = diff
			}
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// combineOpt reduces two optional states (nil means absent).
func combineOpt(reduce mapreduce.Reducer[State], eng *mapreduce.Engine, a, b State) (State, bool) {
	switch {
	case a == nil && b == nil:
		return nil, false
	case a == nil:
		return b, true
	case b == nil:
		return a, true
	default:
		eng.AccountReduceOps(1)
		return reduce(a, b), true
	}
}

func cachedOrNil(s State, ok bool) State {
	if !ok {
		return nil
	}
	return s
}

func last(pre []State) State {
	if len(pre) == 0 {
		return nil
	}
	return pre[len(pre)-1]
}

// prefixUpTo returns the reduction of the first k samples (nil for k <= 0).
func prefixUpTo(pre []State, k int) State {
	if k <= 0 || len(pre) == 0 {
		return nil
	}
	if k > len(pre) {
		k = len(pre)
	}
	return pre[k-1]
}
