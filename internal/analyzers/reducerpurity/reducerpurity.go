// Package reducerpurity flags function literals passed as reducers,
// combiners, or aggregators whose bodies are impure. UPA's R(M(S')) reuse
// (PAPER.md §IV-A) folds the same partial states into many neighbouring
// outputs in arbitrary association orders; the engine's map-side combine and
// the jobgraph's speculative re-execution both re-run reducers freely. All
// of that is only sound when a reducer is a pure function of its arguments:
// no mutation of captured variables, no I/O, no wall clock, no global
// randomness, and no results accumulated under map iteration order.
package reducerpurity

import (
	"fmt"
	"go/ast"
	"strings"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the reducerpurity analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "reducerpurity",
	Doc: "flags impure function literals passed as reducers/combiners/aggregators " +
		"(mutation of captured variables, I/O, time.Now, global math/rand, " +
		"map-iteration-order-dependent writes); such reducers break the " +
		"commutativity/associativity contract UPA's R(M(S')) reuse depends on",
	Run: run,
}

// reducerSinks are the functions whose function-literal arguments must be
// pure. Matching is by callee name (qualified or not), which covers both
// in-package calls and mapreduce.X / core.X call sites.
var reducerSinks = map[string]bool{
	"Reduce": true, "ReduceCtx": true,
	"ReduceByKey": true, "ReduceByKeyCtx": true,
	"ReduceByPartition": true, "ReduceByPartitionCtx": true,
	"ReduceSlice": true,
	"CombineByKey": true, "CombineByKeyCtx": true,
	"Aggregate": true, "AggregateCtx": true,
	"CoGroup": true, "CoGroupCtx": true,
}

// nondeterministicPkgFuncs maps package import paths to the member
// functions whose results change run to run. An empty set means every
// member of the package is flagged.
var nondeterministicPkgFuncs = map[string]map[string]bool{
	"time":        {"Now": true, "Since": true, "Until": true},
	"math/rand":   nil, // all package-level funcs share the unseeded global source
	"math/rand/v2": nil,
	"crypto/rand": nil,
}

// rngConstructors are math/rand members that build a local, seedable
// generator rather than consulting the global source; they are exempt.
var rngConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// ioPkgs flags calls into operating-system and I/O packages. For fmt, only
// the printing family is impure (Sprintf and friends are pure).
var ioPkgs = map[string]bool{
	"os": true, "log": true, "log/slog": true, "net": true, "net/http": true,
	"io": true, "io/fs": true, "bufio": true, "database/sql": true, "syscall": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !reducerSinks[name] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := arg.(*ast.FuncLit)
				if !ok {
					continue
				}
				checkReducerLit(pass, name, lit)
			}
			return true
		})
	}
	return nil
}

// calleeName extracts the called function's bare name from f(...), pkg.f(...),
// or f[T](...) forms.
func calleeName(call *ast.CallExpr) string {
	fun := call.Fun
	// Unwrap explicit instantiation: F[T](...) / pkg.F[T](...).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = idx.X
	case *ast.IndexListExpr:
		fun = idx.X
	}
	switch f := fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// checkReducerLit reports every purity violation inside one reducer literal.
func checkReducerLit(pass *analysis.Pass, sink string, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			// Nested literals inherit the obligation: they run inside the
			// reducer. Keep walking.
			return true
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				checkCapturedWrite(pass, sink, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkCapturedWrite(pass, sink, lit, stmt.X)
		case *ast.CallExpr:
			checkCallPurity(pass, sink, stmt)
		case *ast.RangeStmt:
			checkMapRange(pass, sink, lit, stmt)
		case *ast.GoStmt:
			pass.Reportf(stmt.Pos(), fmt.Sprintf(
				"reducer passed to %s starts a goroutine; reducers must be pure synchronous functions", sink))
		}
		return true
	})
}

// checkCapturedWrite flags an assignment whose target is rooted in a
// variable declared outside the reducer literal.
func checkCapturedWrite(pass *analysis.Pass, sink string, lit *ast.FuncLit, lhs ast.Expr) {
	if ident, ok := lhs.(*ast.Ident); ok && ident.Name == "_" {
		return
	}
	root := analysis.RootIdent(lhs)
	if root == nil || root.Name == "_" {
		return
	}
	if pass.ImportPathOf(root) != "" {
		pass.Reportf(lhs.Pos(), fmt.Sprintf(
			"reducer passed to %s writes to a variable of package %s; reducers must not mutate shared state", sink, root.Name))
		return
	}
	obj := pass.ObjectOf(root)
	if obj == nil {
		return
	}
	if pass.DeclaredWithin(root, lit) {
		return
	}
	pass.Reportf(lhs.Pos(), fmt.Sprintf(
		"reducer passed to %s mutates captured variable %q; the engine re-runs and re-orders reducers, so writes outside the literal break commutativity/associativity", sink, root.Name))
}

// checkCallPurity flags I/O and nondeterministic package calls.
func checkCallPurity(pass *analysis.Pass, sink string, call *ast.CallExpr) {
	path, name, ok := pass.CalleePkgFunc(call)
	if !ok {
		return
	}
	if members, found := nondeterministicPkgFuncs[path]; found {
		if members == nil {
			if strings.HasPrefix(path, "math/rand") && rngConstructors[name] {
				return
			}
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"reducer passed to %s calls %s.%s (global nondeterministic source); use a seeded *stats.RNG threaded through the operator instead", sink, pkgBase(path), name))
			return
		}
		if members[name] {
			pass.Reportf(call.Pos(), fmt.Sprintf(
				"reducer passed to %s calls %s.%s; reducers must be deterministic (inject a clock or seeded RNG)", sink, pkgBase(path), name))
		}
		return
	}
	if ioPkgs[path] {
		pass.Reportf(call.Pos(), fmt.Sprintf(
			"reducer passed to %s performs I/O via %s.%s; reducers must be pure", sink, pkgBase(path), name))
		return
	}
	if path == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Scan")) {
		pass.Reportf(call.Pos(), fmt.Sprintf(
			"reducer passed to %s performs I/O via fmt.%s; reducers must be pure", sink, name))
	}
}

// checkMapRange flags writes under map iteration order: a range over a map
// whose body assigns to a variable declared outside the range statement
// accumulates results in a nondeterministic order.
func checkMapRange(pass *analysis.Pass, sink string, lit *ast.FuncLit, rng *ast.RangeStmt) {
	if !pass.IsMapType(rng.X) {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			targets = stmt.Lhs
		case *ast.IncDecStmt:
			targets = []ast.Expr{stmt.X}
		default:
			return true
		}
		for _, lhs := range targets {
			root := analysis.RootIdent(lhs)
			if root == nil || root.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(root)
			if obj == nil {
				continue
			}
			if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				continue // the loop's own key/value/locals
			}
			pass.Reportf(lhs.Pos(), fmt.Sprintf(
				"reducer passed to %s writes to %q under map iteration order; map ranges are randomized per run, so the accumulated result is nondeterministic", sink, root.Name))
		}
		return true
	})
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
