package upa

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

func TestWithLoggerEmitsReleaseRecords(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo}))
	s := newSessionT(t, WithSampleSize(30), WithSeed(2), WithLogger(logger))

	if _, err := Release(s, Count[user]("logged-count", nil), testUsers(200), nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"upa release", "query=logged-count", "sample_size=30",
		"attack_suspected=false", "records=200",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	// Regression (dpflow): the inferred local sensitivity is a pre-noise,
	// data-dependent value — it must never appear in the release log.
	if strings.Contains(out, "sensitivity=") {
		t.Errorf("release log leaks the pre-noise sensitivity:\n%s", out)
	}

	// The second, attacking release is logged with the enforcer decision.
	buf.Reset()
	if _, err := Release(s, Count[user]("logged-count", nil), testUsers(199), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "attack_suspected=true") {
		t.Errorf("attack decision not logged:\n%s", buf.String())
	}
}

func TestNoLoggerStaysSilent(t *testing.T) {
	// The default session must not write anywhere (nil logger short-circuits).
	s := newSessionT(t, WithSampleSize(30))
	if _, err := Release(s, Count[user]("quiet", nil), testUsers(100), nil); err != nil {
		t.Fatal(err)
	}
}
