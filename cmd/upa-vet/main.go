// Command upa-vet runs UPA's invariant analyzers (reducerpurity,
// ctxpropagation, epsiloncharge, seededdeterminism) over the module.
//
// Standalone mode — the primary interface — checks the module rooted at the
// given directory (default ".") and exits 1 if any diagnostic survives
// //upa:allow suppression:
//
//	go build -o upa-vet ./cmd/upa-vet && ./upa-vet ./...
//
// The binary also speaks enough of the vet driver protocol (-V=full and
// per-package *.cfg arguments) to be passed as go vet -vettool=$(pwd)/upa-vet;
// in that mode each package unit named by the cfg is checked individually.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"upa/internal/analyzers/analysis"
	"upa/internal/analyzers/upavet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet driver protocol probes, sent before any package unit:
	// `-flags` wants a JSON description of tool flags, `-V=full` a stable
	// version line the driver folds into its cache key.
	if len(args) == 1 {
		switch {
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasPrefix(args[0], "-V"):
			// The driver folds this whole line into its action cache key;
			// "devel" has special parsing rules, so use a release shape.
			fmt.Println("upa-vet version v0.1.0")
			return 0
		}
	}
	fs := flag.NewFlagSet("upa-vet", flag.ContinueOnError)
	raw := fs.Bool("raw", false, "disable //upa:allow suppression (report every finding)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetUnit(rest[0])
	}
	return runStandalone(rest, *raw)
}

// runStandalone checks the whole module rooted at the argument directory.
// "./..." and "." both mean the current module; any other argument is taken
// as the module root.
func runStandalone(args []string, raw bool) int {
	root := "."
	if len(args) > 0 && args[0] != "./..." && args[0] != "." {
		root = strings.TrimSuffix(args[0], "/...")
	}
	check := upavet.CheckModule
	if raw {
		check = upavet.CheckModuleRaw
	}
	diags, src, err := check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	src.Print(os.Stderr, diags)
	return 1
}

// vetConfig is the subset of the vet driver's per-package JSON config that
// upa-vet consumes.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOutput string
}

// runVetUnit handles one `go vet -vettool=` invocation: load the package
// unit named by the cfg, analyze it, write the (empty) facts file the driver
// expects, and report findings on stderr.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet: parsing", cfgPath+":", err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "upa-vet:", err)
			return 2
		}
	}
	if len(cfg.GoFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	pkg, err := analysis.LoadDir(fset, filepath.Dir(cfg.GoFiles[0]), cfg.ImportPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Package{pkg}, upavet.Analyzers(), true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upa-vet:", err)
		return 2
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
