package sql

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Fingerprint returns a canonical, collision-resistant identity for a plan:
// the hex SHA-256 of a framed serialization of the plan tree. Two plans get
// the same fingerprint exactly when they were built the same way over the
// same-shaped base relations — node for node, expression for expression,
// scan schema for scan schema (plus row counts, a cheap guard against the
// same table name carrying different data).
//
// The fingerprint is computed over the plan *as written*, before any
// optimizer rewrite: Optimize is deterministic, so equal raw plans yield
// equal optimized plans, equal execution, and — given equal (protected
// table, ε, seed) — byte-identical releases. That makes (Fingerprint(plan),
// protected, ε, seed) a sound release-cache key: serving a cached release
// for a matching key discloses nothing the original release did not. The
// protected relation must ride alongside the fingerprint, not inside it —
// it is a property of the request (whose records the release protects), not
// of the plan, and for multi-table plans it changes the influence set and
// sensitivity of an otherwise identical query.
//
// Scan row *contents* are deliberately excluded — hashing every tuple per
// request would cost more than the query. A fingerprint therefore names a
// query over a dataset version; cache owners must scope keys to one
// workload (the server regenerates its warehouse deterministically from its
// seed, so a process's tables are fixed for its lifetime).
func Fingerprint(p Plan) string {
	h := sha256.New()
	writeFingerprint(h, p)
	return hex.EncodeToString(h.Sum(nil))
}

// writeFingerprint emits the canonical framed encoding of the plan tree.
// Every node writes a distinct tag plus its parameters with explicit
// separators, so no two distinct trees can serialize identically.
func writeFingerprint(w io.Writer, p Plan) {
	switch n := p.(type) {
	case *ScanPlan:
		cols := make([]string, len(n.Cols))
		for i, c := range n.Cols {
			cols[i] = c.Name + ":" + strconv.Itoa(int(c.Kind))
		}
		fmt.Fprintf(w, "scan{%s|%s|%d}", n.Name, strings.Join(cols, ","), len(n.Rows))
	case *FilterPlan:
		fmt.Fprintf(w, "filter{%s}(", n.Pred.describe())
		writeFingerprint(w, n.Input)
		io.WriteString(w, ")")
	case *ProjectPlan:
		exprs := make([]string, len(n.Exprs))
		for i, ne := range n.Exprs {
			exprs[i] = ne.Name + "=" + ne.Expr.describe()
		}
		fmt.Fprintf(w, "project{%s}(", strings.Join(exprs, ","))
		writeFingerprint(w, n.Input)
		io.WriteString(w, ")")
	case *JoinPlan:
		fmt.Fprintf(w, "join{%s=%s}(", n.LeftKey, n.RightKey)
		writeFingerprint(w, n.Left)
		io.WriteString(w, ",")
		writeFingerprint(w, n.Right)
		io.WriteString(w, ")")
	case *AggregatePlan:
		aggs := make([]string, len(n.Aggs))
		for i, a := range n.Aggs {
			arg := ""
			if a.Arg != nil {
				arg = a.Arg.describe()
			}
			aggs[i] = a.Name + "=" + a.Func.String() + "(" + arg + ")"
		}
		fmt.Fprintf(w, "aggregate{%s|%s}(", strings.Join(n.GroupBy, ","), strings.Join(aggs, ","))
		writeFingerprint(w, n.Input)
		io.WriteString(w, ")")
	case *OrderByPlan:
		keys := make([]string, len(n.Keys))
		for i, k := range n.Keys {
			keys[i] = k.Column
			if k.Desc {
				keys[i] += " desc"
			}
		}
		fmt.Fprintf(w, "orderby{%s}(", strings.Join(keys, ","))
		writeFingerprint(w, n.Input)
		io.WriteString(w, ")")
	case *DistinctPlan:
		io.WriteString(w, "distinct(")
		writeFingerprint(w, n.Input)
		io.WriteString(w, ")")
	case *LimitPlan:
		fmt.Fprintf(w, "limit{%d}(", n.N)
		writeFingerprint(w, n.Input)
		io.WriteString(w, ")")
	default:
		// Unknown node kinds still get a deterministic encoding via their
		// diagnostic rendering, so a future plan type degrades to a correct
		// (if coarser) identity instead of a collision.
		fmt.Fprintf(w, "other{%s}", p.describe())
	}
}

// TableNames returns the sorted, de-duplicated names of every base relation
// the plan scans.
func TableNames(p Plan) []string {
	seen := map[string]bool{}
	var walk func(Plan)
	walk = func(p Plan) {
		switch n := p.(type) {
		case *ScanPlan:
			seen[n.Name] = true
		case *FilterPlan:
			walk(n.Input)
		case *ProjectPlan:
			walk(n.Input)
		case *JoinPlan:
			walk(n.Left)
			walk(n.Right)
		case *AggregatePlan:
			walk(n.Input)
		case *OrderByPlan:
			walk(n.Input)
		case *DistinctPlan:
			walk(n.Input)
		case *LimitPlan:
			walk(n.Input)
		}
	}
	walk(p)
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// SupportsDPCount validates that plan lies in the fragment CompileDPCount
// can protect — a global single-Count aggregate (below any Limit/OrderBy)
// over a Filter/Join/Scan interior in which protectedTable appears exactly
// once — WITHOUT executing anything. Admission control calls it before
// charging a tenant's budget, so unsupported plans are rejected with zero ε
// spent and zero engine work.
func SupportsDPCount(plan Plan, protectedTable string) error {
	if !isGlobalCount(plan) {
		return fmt.Errorf("sql: plan is not a global single-count aggregate")
	}
	agg, err := countRootOf(plan)
	if err != nil {
		return err
	}
	if err := checkDPInterior(agg.Input); err != nil {
		return err
	}
	scans := findScans(agg.Input, protectedTable)
	if len(scans) == 0 {
		return fmt.Errorf("sql: protected table %q not found in plan", protectedTable)
	}
	if len(scans) > 1 {
		return fmt.Errorf("sql: protected table %q appears %d times; self-joins on the protected table are not supported", protectedTable, len(scans))
	}
	if _, err := scans[0].Cols.IndexOf(dpIdxCol); err == nil {
		return fmt.Errorf("sql: protected table already has a %s column", dpIdxCol)
	}
	if _, err := plan.Schema(); err != nil {
		return fmt.Errorf("sql: plan does not bind: %w", err)
	}
	return nil
}

// checkDPInterior verifies the subtree under the counting aggregate holds
// only the node kinds tagProtectedScan can rewrite.
func checkDPInterior(plan Plan) error {
	switch p := plan.(type) {
	case *ScanPlan:
		return nil
	case *FilterPlan:
		return checkDPInterior(p.Input)
	case *JoinPlan:
		if err := checkDPInterior(p.Left); err != nil {
			return err
		}
		return checkDPInterior(p.Right)
	default:
		return fmt.Errorf("sql: DP compilation supports Filter/Join/Scan interiors, found %T", plan)
	}
}
