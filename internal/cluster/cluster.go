// Package cluster is an analytic cost model of the paper's evaluation
// testbed — five 24-core machines with 40 Gbps NICs running Spark over
// 114–133 GB datasets. The engine in this repository executes in-process,
// so its wall-clock ratios carry Go-runtime constants (allocation, GC,
// scheduling) that a cluster would not; this model instead prices the
// engine's *operation counts* (records mapped, reduce operations, shuffle
// rounds and bytes, task attempts), which are exact and scale-invariant,
// into simulated cluster time. The Figure 2(b) "simulated testbed" variant
// reports overheads from this model.
package cluster

import (
	"fmt"
	"time"

	"upa/internal/mapreduce"
)

// Model prices engine activity into simulated cluster wall-clock time.
type Model struct {
	// Nodes and CoresPerNode set the CPU parallelism; record-grain work is
	// assumed perfectly parallel (the engine's operators are embarrassingly
	// parallel between shuffles).
	Nodes        int
	CoresPerNode int
	// RecordCPU is the CPU cost of mapping or reducing one record.
	RecordCPU time.Duration
	// RecordBytes is the serialized size of one shuffled record;
	// BisectionGbps the cluster's aggregate shuffle bandwidth in gigabits
	// per second.
	RecordBytes   int
	BisectionGbps float64
	// ShuffleLatency is the fixed per-shuffle-round barrier cost (stage
	// scheduling, TCP ramp); TaskOverhead the per-task-attempt scheduling
	// cost.
	ShuffleLatency time.Duration
	TaskOverhead   time.Duration
	// JobStartup is the fixed per-job cost a Spark driver pays regardless
	// of data volume (DAG construction, stage submission, executor
	// coordination). Estimate charges it once per priced delta; without it
	// a zero-shuffle job would be priced at nearly nothing and every
	// overhead ratio at small scale would be barrier-dominated.
	JobStartup time.Duration
}

// PaperTestbed returns a model of the paper's cluster: five nodes, 24 cores
// each, 40 Gbps networking, with per-record costs representative of
// JVM-Spark row processing (~250 ns/record) and 100-byte rows.
func PaperTestbed() Model {
	return Model{
		Nodes:          5,
		CoresPerNode:   24,
		RecordCPU:      250 * time.Nanosecond,
		RecordBytes:    100,
		BisectionGbps:  40,
		ShuffleLatency: 50 * time.Millisecond,
		TaskOverhead:   5 * time.Millisecond,
		JobStartup:     300 * time.Millisecond,
	}
}

// Validate checks the model's parameters.
func (m Model) Validate() error {
	if m.Nodes < 1 || m.CoresPerNode < 1 {
		return fmt.Errorf("cluster: need at least one node and core, got %d×%d", m.Nodes, m.CoresPerNode)
	}
	if m.RecordCPU < 0 || m.ShuffleLatency < 0 || m.TaskOverhead < 0 || m.JobStartup < 0 {
		return fmt.Errorf("cluster: negative cost parameter: %+v", m)
	}
	if m.RecordBytes < 0 || m.BisectionGbps <= 0 {
		return fmt.Errorf("cluster: invalid network parameters: %d bytes, %v Gbps", m.RecordBytes, m.BisectionGbps)
	}
	return nil
}

// Cost is the priced breakdown of one engine activity delta.
type Cost struct {
	CPU       time.Duration
	Network   time.Duration
	Barriers  time.Duration
	Scheduler time.Duration
	Startup   time.Duration
	// Retry is the fault-recovery surcharge: each retried task or shuffle
	// pays one extra driver rescheduling (TaskOverhead) on top of the
	// backoff time the retry policy actually waited. The work a retried
	// attempt redoes is already inside CPU/Scheduler via the attempt
	// counters; Retry isolates what recovery itself costs.
	Retry time.Duration
}

// Total is the simulated wall-clock time: CPU and network overlap with
// neither barriers nor scheduling in this simple model, so components add.
func (c Cost) Total() time.Duration {
	return c.CPU + c.Network + c.Barriers + c.Scheduler + c.Startup + c.Retry
}

// Estimate prices an engine metrics delta.
func (m Model) Estimate(delta mapreduce.MetricsSnapshot) (Cost, error) {
	if err := m.Validate(); err != nil {
		return Cost{}, err
	}
	cores := float64(m.Nodes * m.CoresPerNode)
	recordOps := float64(delta.RecordsMapped + delta.ReduceOps)
	cpu := time.Duration(recordOps * float64(m.RecordCPU) / cores)

	// Shuffled records cross the bisection once; broadcast records are
	// already counted once per receiving worker by the engine.
	bits := float64(delta.RecordsShuffled+delta.BroadcastRecords) * float64(m.RecordBytes) * 8
	seconds := bits / (m.BisectionGbps * 1e9)
	network := time.Duration(seconds * float64(time.Second))

	barriers := time.Duration(delta.ShuffleRounds) * m.ShuffleLatency
	// Task attempts schedule across nodes in waves.
	waves := (delta.TaskAttempts + int64(m.Nodes) - 1) / int64(m.Nodes)
	scheduler := time.Duration(waves) * m.TaskOverhead

	retry := time.Duration(delta.TaskRetries+delta.ShuffleRetries)*m.TaskOverhead +
		time.Duration(delta.BackoffNanos)

	return Cost{CPU: cpu, Network: network, Barriers: barriers, Scheduler: scheduler, Startup: m.JobStartup, Retry: retry}, nil
}

// Overhead prices two deltas (a baseline and a treatment) and returns the
// treatment's simulated time normalized to the baseline's.
func (m Model) Overhead(baseline, treatment mapreduce.MetricsSnapshot) (float64, error) {
	base, err := m.Estimate(baseline)
	if err != nil {
		return 0, err
	}
	treat, err := m.Estimate(treatment)
	if err != nil {
		return 0, err
	}
	if base.Total() <= 0 {
		return 0, fmt.Errorf("cluster: baseline has zero simulated cost")
	}
	return float64(treat.Total()) / float64(base.Total()), nil
}
