package bench

import (
	"encoding/json"
	"io"
	"time"
)

// optimizerReportRow is the JSON shape of one optimizer-sweep workload in
// experiments/BENCH_optimizer.json: per-query wall clock for the three
// execution paths (raw, optimized row-only, optimized columnar), the scan
// cells the optimizer narrowed, and the columnar converter counters.
type optimizerReportRow struct {
	Workload         string  `json:"workload"`
	Query            string  `json:"query"`
	Lineitems        int     `json:"lineitems"`
	RawUS            float64 `json:"raw_us"`
	RowOnlyUS        float64 `json:"rowonly_us"`
	ColumnarUS       float64 `json:"columnar_us"`
	ColumnarSpeedup  float64 `json:"columnar_speedup"`
	RawScanCells     int64   `json:"raw_scan_cells"`
	OptScanCells     int64   `json:"opt_scan_cells"`
	RecordsBatched   int64   `json:"records_batched"`
	BatchesProcessed int64   `json:"batches_processed"`
	Rewrites         int     `json:"rewrites"`
}

// WriteOptimizerJSON writes the optimizer/physical-layer sweep as indented
// JSON — the machine-readable companion to WriteOptimizerCSV, recorded in
// the repo as experiments/BENCH_optimizer.json. Deliberately carries no
// timestamp: reruns on the same machine class should diff cleanly except
// for wall-clock jitter.
func WriteOptimizerJSON(w io.Writer, rows []OptimizerRow) error {
	report := struct {
		Experiment string               `json:"experiment"`
		Rows       []optimizerReportRow `json:"rows"`
	}{Experiment: "optimizer", Rows: make([]optimizerReportRow, len(rows))}
	for i, r := range rows {
		report.Rows[i] = optimizerReportRow{
			Workload:         r.Workload,
			Query:            r.Query,
			Lineitems:        r.Lineitems,
			RawUS:            float64(r.RawTime) / float64(time.Microsecond),
			RowOnlyUS:        float64(r.RowOnlyTime) / float64(time.Microsecond),
			ColumnarUS:       float64(r.OptTime) / float64(time.Microsecond),
			ColumnarSpeedup:  r.ColumnarSpeedup,
			RawScanCells:     r.RawCells,
			OptScanCells:     r.OptCells,
			RecordsBatched:   r.RecordsBatched,
			BatchesProcessed: r.BatchesProcessed,
			Rewrites:         r.Rewrites,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
