package mapreduce

import (
	"sort"
	"testing"
	"testing/quick"
)

func pairsOf(kv map[string][]int) []Pair[string, int] {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Pair[string, int]
	for _, k := range keys {
		for _, v := range kv[k] {
			out = append(out, Pair[string, int]{Key: k, Value: v})
		}
	}
	return out
}

func TestReduceByKey(t *testing.T) {
	eng := NewEngine()
	input := pairsOf(map[string][]int{"a": {1, 2, 3}, "b": {10}, "c": {4, 4}})
	d, err := FromSlice(eng, input, 3)
	if err != nil {
		t.Fatal(err)
	}
	reduced := ReduceByKey(d, func(a, b int) int { return a + b })
	got, err := reduced.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 6, "b": 10, "c": 8}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for _, p := range got {
		if want[p.Key] != p.Value {
			t.Errorf("key %q = %d, want %d", p.Key, p.Value, want[p.Key])
		}
	}
}

// TestReduceByKeyMatchesSequential is the property test backing the engine's
// core contract: for a commutative, associative reducer, the distributed
// ReduceByKey equals a sequential group-and-fold.
func TestReduceByKeyMatchesSequential(t *testing.T) {
	eng := NewEngine()
	f := func(keysRaw []uint8, valsRaw []int16, partsRaw uint8) bool {
		n := len(keysRaw)
		if len(valsRaw) < n {
			n = len(valsRaw)
		}
		if n == 0 {
			return true
		}
		parts := int(partsRaw%8) + 1
		input := make([]Pair[int, int], n)
		seq := make(map[int]int)
		seen := make(map[int]bool)
		for i := 0; i < n; i++ {
			k := int(keysRaw[i] % 16)
			v := int(valsRaw[i])
			input[i] = Pair[int, int]{Key: k, Value: v}
			if seen[k] {
				seq[k] += v
			} else {
				seq[k] = v
				seen[k] = true
			}
		}
		d, err := FromSlice(eng, input, parts)
		if err != nil {
			return false
		}
		got, err := ReduceByKey(d, func(a, b int) int { return a + b }).Collect()
		if err != nil {
			return false
		}
		if len(got) != len(seq) {
			return false
		}
		for _, p := range got {
			if seq[p.Key] != p.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceByKeyDeterministicOrder(t *testing.T) {
	eng := NewEngine()
	input := pairsOf(map[string][]int{"x": {1}, "y": {2}, "z": {3}, "w": {4}})
	d, err := FromSlice(eng, input, 4)
	if err != nil {
		t.Fatal(err)
	}
	first, err := ReduceByKey(d, func(a, b int) int { return a + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		d2, err := FromSlice(eng, input, 4)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ReduceByKey(d2, func(a, b int) int { return a + b }).Collect()
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("trial %d: output order changed: %v vs %v", trial, first, again)
			}
		}
	}
}

func TestGroupByKey(t *testing.T) {
	eng := NewEngine()
	input := pairsOf(map[string][]int{"a": {3, 1, 2}, "b": {7}})
	d, err := FromSlice(eng, input, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := GroupByKey(d).Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string][]int)
	for _, p := range got {
		byKey[p.Key] = p.Value
	}
	if len(byKey["a"]) != 3 || len(byKey["b"]) != 1 {
		t.Fatalf("group sizes wrong: %v", byKey)
	}
	// Source order within a key is preserved.
	wantA := []int{3, 1, 2}
	for i, v := range byKey["a"] {
		if v != wantA[i] {
			t.Fatalf("group a = %v, want %v", byKey["a"], wantA)
		}
	}
}

// TestJoinMatchesNestedLoop checks the distributed hash join against a
// nested-loop reference on random inputs.
func TestJoinMatchesNestedLoop(t *testing.T) {
	eng := NewEngine()
	f := func(leftRaw, rightRaw []uint8) bool {
		left := make([]Pair[int, int], len(leftRaw))
		for i, k := range leftRaw {
			left[i] = Pair[int, int]{Key: int(k % 8), Value: i}
		}
		right := make([]Pair[int, string], len(rightRaw))
		for i, k := range rightRaw {
			right[i] = Pair[int, string]{Key: int(k % 8), Value: string(rune('A' + i%26))}
		}
		want := 0
		for _, l := range left {
			for _, r := range right {
				if l.Key == r.Key {
					want++
				}
			}
		}
		a, err := FromSlice(eng, left, 3)
		if err != nil {
			return false
		}
		b, err := FromSlice(eng, right, 3)
		if err != nil {
			return false
		}
		j, err := Join(a, b)
		if err != nil {
			return false
		}
		got, err := j.Collect()
		if err != nil {
			return false
		}
		if len(got) != want {
			return false
		}
		for _, p := range got {
			// Every output key must come from both sides.
			okL, okR := false, false
			for _, l := range left {
				if l.Key == p.Key && l.Value == p.Value.Left {
					okL = true
					break
				}
			}
			for _, r := range right {
				if r.Key == p.Key && r.Value == p.Value.Right {
					okR = true
					break
				}
			}
			if !okL || !okR {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestJoinCountsTwoShuffles(t *testing.T) {
	eng := NewEngine()
	a, err := FromSlice(eng, []Pair[int, int]{{Key: 1, Value: 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSlice(eng, []Pair[int, int]{{Key: 1, Value: 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := eng.Metrics().ShuffleRounds
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Collect(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Metrics().ShuffleRounds - before; got != 2 {
		t.Fatalf("join used %d shuffle rounds, want 2", got)
	}
}

func TestJoinAcrossEnginesRejected(t *testing.T) {
	a, err := FromSlice(NewEngine(), []Pair[int, int]{{Key: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSlice(NewEngine(), []Pair[int, int]{{Key: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Join(a, b); err == nil {
		t.Fatal("cross-engine join accepted")
	}
}

func TestCoGroup(t *testing.T) {
	eng := NewEngine()
	a, err := FromSlice(eng, []Pair[string, int]{{Key: "a", Value: 1}, {Key: "b", Value: 2}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromSlice(eng, []Pair[string, string]{{Key: "a", Value: "x"}, {Key: "c", Value: "y"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := CoGroup(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := make(map[string]Joined[[]int, []string])
	for _, p := range got {
		byKey[p.Key] = p.Value
	}
	if len(byKey) != 3 {
		t.Fatalf("cogroup produced %d keys, want 3", len(byKey))
	}
	if len(byKey["a"].Left) != 1 || len(byKey["a"].Right) != 1 {
		t.Errorf("key a groups = %v", byKey["a"])
	}
	if len(byKey["b"].Left) != 1 || len(byKey["b"].Right) != 0 {
		t.Errorf("key b groups = %v", byKey["b"])
	}
	if len(byKey["c"].Left) != 0 || len(byKey["c"].Right) != 1 {
		t.Errorf("key c groups = %v", byKey["c"])
	}
}

func TestDistinct(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, []int{3, 1, 3, 2, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Distinct(d).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("Distinct kept %d values, want 3: %v", len(got), got)
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate survived Distinct: %v", got)
		}
		seen[v] = true
	}
}

func TestKeyByMapValuesKeysValues(t *testing.T) {
	eng := NewEngine()
	d, err := FromSlice(eng, []int{1, 2, 3, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	keyed := KeyBy(d, func(x int) string {
		if x%2 == 0 {
			return "even"
		}
		return "odd"
	})
	squared := MapValues(keyed, func(x int) int { return x * x })
	ks, err := Keys(squared).Collect()
	if err != nil {
		t.Fatal(err)
	}
	vs, err := Values(squared).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 4 || len(vs) != 4 {
		t.Fatalf("keys/values lengths = %d/%d, want 4/4", len(ks), len(vs))
	}
	if ks[0] != "odd" || vs[0] != 1 || ks[1] != "even" || vs[1] != 4 {
		t.Fatalf("unexpected keyed values: %v %v", ks, vs)
	}
}

func TestHashOfStableAcrossTypes(t *testing.T) {
	if hashOf("a") == hashOf("b") {
		t.Error("adjacent strings collide")
	}
	if hashOf(1) == hashOf(2) {
		t.Error("adjacent ints collide")
	}
	if hashOf(true) == hashOf(false) {
		t.Error("booleans collide")
	}
	type composite struct{ A, B int }
	if hashOf(composite{1, 2}) != hashOf(composite{1, 2}) {
		t.Error("composite key hash unstable")
	}
	if hashOf(composite{1, 2}) == hashOf(composite{2, 1}) {
		t.Error("distinct composites collide")
	}
}
