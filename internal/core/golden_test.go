package core

import (
	"math"
	"testing"

	"upa/internal/mapreduce"
)

// TestGoldenSensitivities pins exact inferred values for fixed seeds — a
// regression net over the whole deterministic pipeline (splitmix RNG,
// Floyd sampling, MLE fit, Acklam probit). Any change to a stochastic
// component shows up here first; update the constants only for an
// intentional algorithm change.
func TestGoldenSensitivities(t *testing.T) {
	data := seqData(1000)

	cfg := DefaultConfig()
	cfg.SampleSize = 100
	cfg.Seed = 42
	sys, err := NewSystem(mapreduce.NewEngine(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	count, err := Run(sys, countQuery(), data, uniformDomain(0, 1000))
	if err != nil {
		t.Fatal(err)
	}
	// Count neighbours are exactly {999 ×100, 1001 ×100}: mu = 1000,
	// sigma = 1, sensitivity = 2·z(0.99)·sigma. This value is a closed
	// form, independent of which records were sampled.
	wantCount := 2 * 2.3263478743880696 // probit(0.99) after Halley refinement
	if math.Abs(count.Sensitivity[0]-wantCount) > 1e-9 {
		t.Errorf("count sensitivity = %.12f, want %.12f", count.Sensitivity[0], wantCount)
	}
	if count.VanillaOutput[0] != 1000 || count.EmpiricalLocalSensitivity[0] != 1 {
		t.Errorf("count vanilla/empirical = %v/%v", count.VanillaOutput[0], count.EmpiricalLocalSensitivity[0])
	}

	// The sum query depends on the sampled records; pin its deterministic
	// output against drift.
	sum, err := Run(sys, sumQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.VanillaOutput[0] != 499500 {
		t.Errorf("sum vanilla = %v, want 499500", sum.VanillaOutput[0])
	}
	if sum.Sensitivity[0] <= 0 {
		t.Errorf("sum sensitivity = %v", sum.Sensitivity[0])
	}
	// Re-running the identical configuration reproduces the value exactly.
	sys2, err := NewSystem(mapreduce.NewEngine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(sys2, countQuery(), data, uniformDomain(0, 1000)); err != nil {
		t.Fatal(err)
	}
	sum2, err := Run(sys2, sumQuery(), data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Sensitivity[0] != sum.Sensitivity[0] {
		t.Errorf("sum sensitivity not reproducible: %v vs %v", sum2.Sensitivity[0], sum.Sensitivity[0])
	}
	if sum2.Output[0] != sum.Output[0] {
		t.Errorf("noisy output not reproducible: %v vs %v", sum2.Output[0], sum.Output[0])
	}
}
