// SQL vs FLEX: the paper's accuracy argument in one runnable demo. A
// counting query with a join and a selective filter is expressed as a
// relational plan; FLEX's static analysis (which ignores the filter and the
// actual join keys) produces a worst-case sensitivity bound, while UPA's
// dynamic sampling — and the brute-force ground truth — see the query's
// real behaviour. The gap between the two is Figure 2(a)'s story.
package main

import (
	"fmt"
	"log"

	"upa/internal/core"
	"upa/internal/mapreduce"
	"upa/internal/queries"
	"upa/internal/sql"
	"upa/internal/tpch"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	db, err := tpch.Generate(tpch.Config{Lineitems: 20000, Skew: 0.3, Seed: 17})
	if err != nil {
		return err
	}
	eng := mapreduce.NewEngine()

	// The query, as SQL: count the (order, lineitem) pairs in a 90-day
	// window whose lineitems arrived late (TPC-H Q4's counting core).
	plan := queries.TPCH4Plan(db)
	fmt.Println("plan:", sql.Describe(plan))

	count, err := sql.ExecuteCount(eng, plan)
	if err != nil {
		return err
	}
	fmt.Printf("\nexact answer: %d joined pairs\n", count)

	// FLEX's view: static worst case from join-column frequencies, filters
	// stripped.
	flexPlan, err := sql.FLEXPlan(eng, "TPCH4", plan)
	if err != nil {
		return err
	}
	flexSens, err := flexPlan.LocalSensitivity()
	if err != nil {
		return err
	}
	smooth, err := flexPlan.SmoothSensitivity(0.05)
	if err != nil {
		return err
	}

	// UPA's view: sample neighbouring datasets at runtime.
	sys, err := core.NewSystem(eng, core.DefaultConfig())
	if err != nil {
		return err
	}
	runner := w4(db)
	res, err := runner.RunUPA(sys)
	if err != nil {
		return err
	}

	// Ground truth: every removal neighbour, exactly.
	truth, err := runner.GroundTruth(eng, 0, nil)
	if err != nil {
		return err
	}

	fmt.Printf("\nlocal sensitivity of the protected orders table:\n")
	//upa:allow(dpflow) reviewed: sensitivity-comparison demo over synthetic data — comparing sensitivities IS the example
	fmt.Printf("  ground truth (brute force):   %10.1f\n", truth.LocalSensitivity[0])
	//upa:allow(dpflow) reviewed: sensitivity-comparison demo over synthetic data
	fmt.Printf("  UPA (sampled, n=%d):        %10.1f\n", res.SampleSize, res.EmpiricalLocalSensitivity[0])
	//upa:allow(dpflow) reviewed: sensitivity-comparison demo over synthetic data, FLEX static bound
	fmt.Printf("  FLEX (static local):          %10.1f  (%.1fx the truth)\n",
		flexSens, flexSens/truth.LocalSensitivity[0])
	//upa:allow(dpflow) reviewed: sensitivity-comparison demo over synthetic data, FLEX smooth bound
	fmt.Printf("  FLEX (smooth, beta=0.05):     %10.1f\n", smooth)
	//upa:allow(dpflow) reviewed: sensitivity-comparison demo over synthetic data, enforcer range shown
	fmt.Printf("  UPA enforced output range:    [%.1f, %.1f]\n", res.RangeLo[0], res.RangeHi[0])
	// The same SQL plan, released directly under iDP: CompileDPCount
	// extracts per-order influence from one plan execution and hands UPA a
	// ready Mapper/Reducer query.
	dpQuery, dpData, err := sql.CompileDPCount(eng, plan, "orders")
	if err != nil {
		return err
	}
	dpRes, err := core.Run(sys, dpQuery, dpData, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nreleasing the SQL plan itself via CompileDPCount:\n")
	fmt.Printf("  noisy count: %.1f (exact %d, ε=%.2g)\n", dpRes.Output[0], count, dpRes.EffectiveEpsilon)

	fmt.Println("\nFLEX cannot see that the window filter removes most orders or that the")
	fmt.Println("most frequent join keys rarely co-occur with qualifying rows, so its")
	fmt.Println("static bound only widens with more joins (TPCH16/21 explode in Fig 2a).")
	fmt.Println("UPA evaluates the query's actual logic on sampled neighbouring")
	fmt.Println("datasets; rare heavy-influence records can still escape the sample (as")
	fmt.Println("the paper notes for TPCH21, §VI-C) — which is exactly why the RANGE")
	fmt.Println("ENFORCER clamps every release into the inferred output range, keeping")
	fmt.Println("the iDP guarantee independent of sampling luck (§IV-C).")
	return nil
}

// w4 rebinds TPCH4 against the demo database.
func w4(db *tpch.DB) queries.Runner {
	w := &workloadShim{db: db}
	return w.runner()
}

// workloadShim builds the TPCH4 runner for a standalone database (the
// queries package binds runners to full workloads; here only the TPC-H side
// is needed).
type workloadShim struct{ db *tpch.DB }

func (s *workloadShim) runner() queries.Runner {
	w, err := queries.NewWorkloadFromDB(s.db)
	if err != nil {
		log.Fatal(err)
	}
	return w.TPCH4()
}
