package core

import (
	"testing"

	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// BenchmarkReleasePhases measures one full release at the paper's default
// n = 1000 over 100k records — the per-release cost every figure builds on.
func BenchmarkReleasePhases(b *testing.B) {
	rng := stats.NewRNG(1)
	data := make([]float64, 100_000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	q := Query[float64]{
		Name:      "bench-sum",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(x float64) State { return State{x} },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(mapreduce.NewEngine(), DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(sys, q, data, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNeighbourLoop isolates the union-preserving reduce: n sampled
// neighbours, O(1) combines each.
func BenchmarkNeighbourLoop(b *testing.B) {
	eng := mapreduce.NewEngine()
	reduce := VectorAdd
	ms := make([]State, 1000)
	for i := range ms {
		ms[i] = State{float64(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre, suf := prefixSuffix(reduce, eng, ms)
		for j := range ms {
			if _, ok := combinePrefixSuffix(reduce, eng, pre, suf, j); !ok {
				b.Fatal("unexpected empty complement")
			}
		}
	}
}

// BenchmarkEnforcerCollides measures the attack check against a long
// history.
func BenchmarkEnforcerCollides(b *testing.B) {
	e := NewRangeEnforcer(1e-9)
	for i := 0; i < 1000; i++ {
		e.Record("q", [2][]float64{{float64(i)}, {float64(i + 1)}})
	}
	probe := [2][]float64{{-1}, {-2}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, bad := e.Collides(probe); bad {
			b.Fatal("unexpected collision")
		}
	}
}
