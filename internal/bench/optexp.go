package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"upa/internal/mapreduce"
	"upa/internal/queries"
	"upa/internal/sql"
)

// OptimizerRow is one workload of the plan-optimizer experiment: the same
// relational plan executed raw (as written) and through sql.Optimize, with
// the engine's shuffle and mapper deltas plus wall time for both paths. The
// two executions are checked to return the identical row multiset before
// the row is accepted — the optimizer's semantics contract, enforced on
// every experiment run.
type OptimizerRow struct {
	// Workload names the plan shape; Query the underlying TPC-H plan;
	// Lineitems the generated dataset scale.
	Workload  string
	Query     string
	Lineitems int
	// RawShuffled/OptShuffled are the RecordsShuffled deltas of the two
	// paths; RawMapped/OptMapped the RecordsMapped deltas; RawCells/OptCells
	// the values the plan's base relations feed the engine (rows × columns
	// summed over scans — what projection pruning narrows).
	RawShuffled, OptShuffled int64
	RawMapped, OptMapped     int64
	RawCells, OptCells       int64
	// ShuffleReduction is 1 - opt/raw shuffled (0 when nothing shuffles);
	// MapReduction and CellReduction the same over mapped records and
	// scanned cells.
	ShuffleReduction float64
	MapReduction     float64
	CellReduction    float64
	// RawTime/OptTime are min-of-reps wall times — indicative, not a
	// statistical claim (the record counters are the load-bearing result).
	// The optimized time includes the Optimize call itself. OptTime is the
	// default Execute path, which routes vectorizable subtrees through the
	// columnar kernels; RowOnlyTime is the same optimized plan forced down
	// the row-at-a-time path (the pre-physical-layer behaviour).
	RawTime, OptTime, RowOnlyTime time.Duration
	// ColumnarSpeedup is RowOnlyTime / OptTime — how much faster the
	// physical layer's columnar execution is than pure row execution of the
	// identical optimized plan (1 when the plan has no vectorizable
	// subtree, so both paths do the same work).
	ColumnarSpeedup float64
	// RecordsBatched/BatchesProcessed are the columnar run's converter
	// metrics: rows that flowed through fused batch operators and the batch
	// count. Both zero when the physical plan stays row-only.
	RecordsBatched, BatchesProcessed int64
	// Rewrites is how many optimizer rewrites fired on the plan.
	Rewrites int
}

// OptimizerBench measures what the logical plan optimizer saves on three
// plan shapes over the generated TPC-H tables:
//
//   - filter-over-join (TPC-H Q4): predicate pushdown filters both join
//     inputs before the shuffle and pruning narrows both scans, so the
//     join shuffles strictly fewer records;
//   - projection-heavy (TPC-H Q1 full): projection pruning drops the
//     lineitem columns the grouped aggregation never reads;
//   - limit (top of a projected lineitem scan): limit pushdown and the
//     per-partition head keep the single-partition shuffle to a prefix.
//
// Each path runs reps times (min 1) and reports its fastest wall time —
// record counters are deterministic across runs and come from the first.
func OptimizerBench(cfg Config, reps int) ([]OptimizerRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	reps = max(reps, 1)
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	workloads := []struct {
		name  string
		query string
		plan  sql.Plan
	}{
		{"filter-over-join", "tpch4", queries.TPCH4Plan(w.DB)},
		{"projection-heavy", "tpch1full", queries.TPCH1FullPlan(w.DB)},
		{"vector-agg", "tpch6", tpch6Workload(w)},
		{"vector-scan", "lineitem-discprice", vectorWorkload(w)},
		{"limit", "lineitem-top100", limitWorkload(w)},
	}
	rows := make([]OptimizerRow, 0, len(workloads))
	for _, wl := range workloads {
		row, err := runOptimizerWorkload(wl.name, wl.query, cfg.Lineitems, wl.plan, reps)
		if err != nil {
			return nil, fmt.Errorf("bench: optimizer %s: %w", wl.name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// tpch6Workload builds TPC-H Q6's shape: a global revenue aggregate
// (sum of price×discount plus a row count) under the date-window,
// discount-band and quantity predicates. The whole subtree is
// vectorizable, and the aggregate consumes batches directly — no
// batch-to-row reconstruction — so it is where the columnar kernels pay
// off hardest.
func tpch6Workload(w *queries.Workload) sql.Plan {
	pred := sql.And(
		sql.And(
			sql.Gt(sql.Col("l_shipdate"), sql.Lit(sql.Int(8000))),
			sql.Le(sql.Col("l_shipdate"), sql.Lit(sql.Int(9000))),
		),
		sql.And(
			sql.Lt(sql.Col("l_discount"), sql.Lit(sql.Float(0.07))),
			sql.Lt(sql.Col("l_quantity"), sql.Lit(sql.Float(24))),
		),
	)
	return sql.GroupBy(sql.Where(queries.LineitemRelation(w.DB), pred), nil,
		sql.AggSpec{Name: "revenue", Func: sql.AggSum,
			Arg: sql.Mul(sql.Col("l_extendedprice"), sql.Col("l_discount"))},
		sql.AggSpec{Name: "n", Func: sql.AggCount},
	)
}

// vectorWorkload builds the columnar reconstruction stress: the same
// Q6-shaped predicate under a discounted-price projection that returns
// every surviving row. Fully vectorizable, but the output is rows, so the
// columnar path pays row→batch conversion in and batch→row reconstruction
// out with no aggregate to amortize them — the X100 caveat the physical
// layer's numbers should show honestly rather than hide.
func vectorWorkload(w *queries.Workload) sql.Plan {
	one := sql.Lit(sql.Float(1))
	pred := sql.And(
		sql.Gt(sql.Col("l_quantity"), sql.Lit(sql.Float(10))),
		sql.And(
			sql.Lt(sql.Col("l_discount"), sql.Lit(sql.Float(0.07))),
			sql.Le(sql.Col("l_shipdate"), sql.Lit(sql.Int(9000))),
		),
	)
	return sql.Project(sql.Where(queries.LineitemRelation(w.DB), pred),
		sql.NamedExpr{Name: "okey", Expr: sql.Col("l_orderkey")},
		sql.NamedExpr{Name: "disc_price",
			Expr: sql.Mul(sql.Col("l_extendedprice"), sql.Sub(one, sql.Col("l_discount")))},
		sql.NamedExpr{Name: "charged",
			Expr: sql.Mul(sql.Mul(sql.Col("l_extendedprice"), sql.Sub(one, sql.Col("l_discount"))),
				sql.Add(one, sql.Col("l_tax")))},
	)
}

// limitWorkload builds the limit-shaped plan: the first 100 rows of a
// two-column projection over lineitem.
func limitWorkload(w *queries.Workload) sql.Plan {
	return sql.Limit(sql.Project(queries.LineitemRelation(w.DB),
		sql.NamedExpr{Name: "okey", Expr: sql.Col("l_orderkey")},
		sql.NamedExpr{Name: "price", Expr: sql.Col("l_extendedprice")},
	), 100)
}

func runOptimizerWorkload(name, query string, lineitems int, plan sql.Plan, reps int) (OptimizerRow, error) {
	rawDelta, rawRows, rawTime, err := runPlan(plan, sql.ExecuteRaw, reps)
	if err != nil {
		return OptimizerRow{}, fmt.Errorf("raw: %w", err)
	}
	optDelta, optRows, optTime, err := runPlan(plan, sql.Execute, reps)
	if err != nil {
		return OptimizerRow{}, fmt.Errorf("optimized: %w", err)
	}
	_, rowOnlyRows, rowOnlyTime, err := runPlan(plan, sql.ExecuteRowOnly, reps)
	if err != nil {
		return OptimizerRow{}, fmt.Errorf("row-only: %w", err)
	}
	if err := sameRowMultiset(rawRows, optRows); err != nil {
		return OptimizerRow{}, err
	}
	if err := sameRowMultiset(rowOnlyRows, optRows); err != nil {
		return OptimizerRow{}, fmt.Errorf("columnar vs row-only: %w", err)
	}
	optimized, rewrites := sql.Optimize(plan)
	row := OptimizerRow{
		Workload:         name,
		Query:            query,
		Lineitems:        lineitems,
		RawShuffled:      rawDelta.RecordsShuffled,
		OptShuffled:      optDelta.RecordsShuffled,
		RawMapped:        rawDelta.RecordsMapped,
		OptMapped:        optDelta.RecordsMapped,
		RawCells:         sql.ScanCells(plan),
		OptCells:         sql.ScanCells(optimized),
		RawTime:          rawTime,
		OptTime:          optTime,
		RowOnlyTime:      rowOnlyTime,
		RecordsBatched:   optDelta.RecordsBatched,
		BatchesProcessed: optDelta.BatchesProcessed,
		Rewrites:         len(rewrites),
	}
	if optTime > 0 {
		row.ColumnarSpeedup = float64(rowOnlyTime) / float64(optTime)
	}
	if row.RawShuffled > 0 {
		row.ShuffleReduction = 1 - float64(row.OptShuffled)/float64(row.RawShuffled)
	}
	if row.RawMapped > 0 {
		row.MapReduction = 1 - float64(row.OptMapped)/float64(row.RawMapped)
	}
	if row.RawCells > 0 {
		row.CellReduction = 1 - float64(row.OptCells)/float64(row.RawCells)
	}
	return row, nil
}

// runPlan executes the plan reps times, each on a fresh engine through the
// given entry point, and returns the first run's metrics delta and rows
// with the fastest wall time observed.
func runPlan(plan sql.Plan, exec func(*mapreduce.Engine, sql.Plan) ([]sql.Row, sql.Schema, error), reps int) (mapreduce.MetricsSnapshot, []sql.Row, time.Duration, error) {
	var (
		delta mapreduce.MetricsSnapshot
		rows  []sql.Row
		best  time.Duration
	)
	for i := 0; i < reps; i++ {
		eng := mapreduce.NewEngine()
		before := eng.Metrics()
		start := time.Now() //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
		out, _, err := exec(eng, plan)
		elapsed := time.Since(start) //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
		if err != nil {
			return mapreduce.MetricsSnapshot{}, nil, 0, err
		}
		if i == 0 {
			delta, rows, best = eng.Metrics().Sub(before), out, elapsed
			continue
		}
		best = min(best, elapsed)
	}
	return delta, rows, best, nil
}

// sameRowMultiset checks the raw and optimized executions returned the
// identical row multiset.
func sameRowMultiset(raw, opt []sql.Row) error {
	if len(raw) != len(opt) {
		return fmt.Errorf("paths disagree: raw returned %d rows, optimized %d", len(raw), len(opt))
	}
	render := func(rows []sql.Row) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			parts := make([]string, len(r))
			for j, v := range r {
				parts[j] = v.String()
			}
			out[i] = strings.Join(parts, "\x1f")
		}
		sort.Strings(out)
		return out
	}
	a, b := render(raw), render(opt)
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("paths disagree on row %d: raw %q, optimized %q", i, a[i], b[i])
		}
	}
	return nil
}

// RenderOptimizer renders the optimizer experiment.
func RenderOptimizer(rows []OptimizerRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Plan optimizer: raw vs optimized execution (records shuffled / mapped, scan cells)\n")
	fmt.Fprintf(&b, "and physical layer: columnar vs row-only execution of the optimized plan\n")
	fmt.Fprintf(&b, "%-18s %-20s %10s %10s %9s %9s %9s %8s %8s %8s %8s %10s %8s %8s\n",
		"workload", "query", "raw_shuf", "opt_shuf",
		"shuf_red", "map_red", "cell_red", "raw_ms", "row_ms", "col_ms",
		"col_spd", "batched", "batches", "rewrites")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-20s %10d %10d %8.1f%% %8.1f%% %8.1f%% %8.2f %8.2f %8.2f %7.2fx %10d %8d %8d\n",
			r.Workload, r.Query, r.RawShuffled, r.OptShuffled,
			100*r.ShuffleReduction, 100*r.MapReduction, 100*r.CellReduction,
			float64(r.RawTime)/float64(time.Millisecond),
			float64(r.RowOnlyTime)/float64(time.Millisecond),
			float64(r.OptTime)/float64(time.Millisecond),
			r.ColumnarSpeedup, r.RecordsBatched, r.BatchesProcessed,
			r.Rewrites)
	}
	return b.String()
}
