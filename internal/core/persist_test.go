package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestHistorySaveLoadRoundTrip(t *testing.T) {
	e := NewRangeEnforcer(1e-9)
	e.Record("q1", [2][]float64{{1, 2}, {3, 4}})
	e.Record("q2", [2][]float64{{5}, {6}})

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewRangeEnforcer(1e-9)
	if err := restored.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.HistoryLen() != 2 {
		t.Fatalf("restored history length = %d, want 2", restored.HistoryLen())
	}
	// Collisions behave identically on the restored enforcer.
	if name, bad := restored.Collides([2][]float64{{1, 2}, {99}}); !bad || name != "q1" {
		t.Fatalf("restored Collides = %q, %v; want q1, true", name, bad)
	}
	if _, bad := restored.Collides([2][]float64{{100}, {200}}); bad {
		t.Fatal("restored enforcer false-positive")
	}
}

func TestHistoryLoadReplaces(t *testing.T) {
	src := NewRangeEnforcer(1e-9)
	src.Record("a", [2][]float64{{1}, {2}})
	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dst := NewRangeEnforcer(1e-9)
	dst.Record("old", [2][]float64{{9}, {9}})
	if err := dst.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if dst.HistoryLen() != 1 {
		t.Fatalf("history length after load = %d, want 1 (replaced)", dst.HistoryLen())
	}
	if _, bad := dst.Collides([2][]float64{{9}, {10}}); bad {
		t.Fatal("stale pre-load entry survived")
	}
}

func TestHistoryLoadRejectsGarbage(t *testing.T) {
	e := NewRangeEnforcer(1e-9)
	if err := e.Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if err := e.Load(strings.NewReader(`{"version":99,"entries":[]}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if err := e.Load(strings.NewReader(`{"version":1,"entries":[{"name":"q","parts":[null,null]}]}`)); err == nil {
		t.Error("missing partitions accepted")
	}
}

// TestAttackDetectedAcrossRestart replays the §III attack across a
// simulated service restart: the second release goes through a *fresh*
// system whose enforcer history was restored from the first.
func TestAttackDetectedAcrossRestart(t *testing.T) {
	data := seqData(300)

	first := newTestSystem(t, nil)
	if _, err := Run(first, sumQuery(), data, nil); err != nil {
		t.Fatal(err)
	}
	var persisted bytes.Buffer
	if err := first.Enforcer().Save(&persisted); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new system, history restored from disk.
	second := newTestSystem(t, nil)
	if err := second.Enforcer().Load(&persisted); err != nil {
		t.Fatal(err)
	}
	res, err := Run(second, sumQuery(), data[1:], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AttackSuspected {
		t.Fatal("attack not detected across restart")
	}
	if res.RemovedRecords < 2 {
		t.Fatalf("RemovedRecords = %d, want >= 2", res.RemovedRecords)
	}
}
