package bench

import (
	"fmt"
	"strings"
	"time"

	"upa/internal/core"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// AblationReport bundles the design-choice ablations DESIGN.md calls out:
// union-preserving reuse vs from-scratch recomputation (§VI-E), the MLE
// normal fit vs empirical quantiles for the output range (§VI-C), and the
// group-size extension's effect on inferred sensitivity (§VI-E future
// work).
type AblationReport struct {
	Reuse  []ReuseRow
	Range  []RangeRow
	Groups []GroupRow
}

// ReuseRow compares one release's sensitivity-inference cost with and
// without the union-preserving reuse.
type ReuseRow struct {
	Records                int
	ReuseOps, ScratchOps   int64
	ReuseTime, ScratchTime time.Duration
	OpsRatio               float64
}

// RangeRow compares the MLE-fitted range against empirical quantiles on one
// query: the fraction of the exact neighbour census each covers.
type RangeRow struct {
	Query                string
	MLECoverage          float64
	EmpiricalCoverage    float64
	MLEWidth, EmpiricalW float64
}

// GroupRow records the inferred count sensitivity at one group size.
type GroupRow struct {
	GroupSize   int
	Sensitivity float64
	Empirical   float64
}

// Ablations runs all three ablations at the configuration's scale.
func Ablations(cfg Config) (*AblationReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	report := &AblationReport{}

	// 1. Reuse vs scratch on a plain sum, across two dataset sizes.
	sumQuery := core.Query[float64]{
		Name:      "ablation-sum",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(x float64) core.State { return core.State{x} },
	}
	for _, records := range []int{cfg.Lineitems / 4, cfg.Lineitems} {
		rng := stats.NewRNG(cfg.Seed)
		data := make([]float64, records)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		row := ReuseRow{Records: records}
		for _, scratch := range []bool{false, true} {
			eng := mapreduce.NewEngine()
			sysCfg := core.DefaultConfig()
			sysCfg.SampleSize = min(cfg.SampleSize, 200) // keep O(n·|x|) feasible
			sysCfg.Seed = cfg.Seed
			sysCfg.DisableReuse = scratch
			sys, err := core.NewSystem(eng, sysCfg)
			if err != nil {
				return nil, err
			}
			start := time.Now() //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			res, err := core.Run(sys, sumQuery, data, nil)
			if err != nil {
				return nil, err
			}
			elapsed := time.Since(start) //upa:allow(seededdeterminism) wall-clock measurement of real elapsed time, not a scheduling decision
			if scratch {
				row.ScratchOps, row.ScratchTime = res.EngineDelta.ReduceOps, elapsed
			} else {
				row.ReuseOps, row.ReuseTime = res.EngineDelta.ReduceOps, elapsed
			}
		}
		if row.ReuseOps > 0 {
			row.OpsRatio = float64(row.ScratchOps) / float64(row.ReuseOps)
		}
		report.Reuse = append(report.Reuse, row)
	}

	// 2. MLE vs empirical range coverage per query.
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	for _, r := range w.All() {
		eng := mapreduce.NewEngine()
		truth, err := r.GroundTruth(eng, cfg.Additions, stats.NewRNG(cfg.Seed))
		if err != nil {
			return nil, err
		}
		census := make([]float64, 0, len(truth.RemovalOutputs)+len(truth.AdditionOutputs))
		for _, o := range truth.AllNeighbourOutputs() {
			census = append(census, o[0])
		}
		row := RangeRow{Query: r.Name()}
		for _, empirical := range []bool{false, true} {
			sysCfg := core.DefaultConfig()
			sysCfg.SampleSize = cfg.SampleSize
			sysCfg.Epsilon = cfg.Epsilon
			sysCfg.Seed = cfg.Seed
			sysCfg.EmpiricalRange = empirical
			sys, err := core.NewSystem(eng, sysCfg)
			if err != nil {
				return nil, err
			}
			res, err := r.RunUPA(sys)
			if err != nil {
				return nil, err
			}
			cov := stats.CoverageFraction(census, res.RangeLo[0], res.RangeHi[0])
			width := res.RangeHi[0] - res.RangeLo[0]
			if empirical {
				row.EmpiricalCoverage, row.EmpiricalW = cov, width
			} else {
				row.MLECoverage, row.MLEWidth = cov, width
			}
		}
		report.Range = append(report.Range, row)
	}

	// 3. Group sizes on a count.
	countQuery := core.Query[float64]{
		Name:      "ablation-count",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(float64) core.State { return core.State{1} },
	}
	data := make([]float64, cfg.Lineitems)
	for _, g := range []int{0, 5, 10, 20} {
		eng := mapreduce.NewEngine()
		sysCfg := core.DefaultConfig()
		sysCfg.SampleSize = cfg.SampleSize
		sysCfg.Seed = cfg.Seed
		sysCfg.GroupSize = g
		sys, err := core.NewSystem(eng, sysCfg)
		if err != nil {
			return nil, err
		}
		res, err := core.Run(sys, countQuery, data, func(*stats.RNG) float64 { return 0 })
		if err != nil {
			return nil, err
		}
		report.Groups = append(report.Groups, GroupRow{
			GroupSize:   g,
			Sensitivity: res.Sensitivity[0],
			Empirical:   res.EmpiricalLocalSensitivity[0],
		})
	}
	return report, nil
}

// RenderAblations renders the report as text.
func RenderAblations(r *AblationReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation 1: union-preserving reuse (§VI-E linear vs constant)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %10s %12s %12s\n",
		"records", "reuse ops", "scratch ops", "ratio", "reuse time", "scratch time")
	for _, row := range r.Reuse {
		fmt.Fprintf(&b, "%-10d %14d %14d %9.0fx %12v %12v\n",
			row.Records, row.ReuseOps, row.ScratchOps, row.OpsRatio,
			row.ReuseTime.Round(time.Microsecond), row.ScratchTime.Round(time.Microsecond))
	}
	fmt.Fprintf(&b, "\nAblation 2: MLE normal fit vs empirical quantiles (§VI-C)\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %14s %14s\n",
		"Query", "MLE cov", "emp cov", "MLE width", "emp width")
	for _, row := range r.Range {
		fmt.Fprintf(&b, "%-18s %11.1f%% %11.1f%% %14.5g %14.5g\n",
			row.Query, 100*row.MLECoverage, 100*row.EmpiricalCoverage,
			row.MLEWidth, row.EmpiricalW)
	}
	fmt.Fprintf(&b, "\nAblation 3: group-iDP extension (§VI-E) — count sensitivity vs group size\n")
	fmt.Fprintf(&b, "%-12s %14s %14s\n", "group size", "sensitivity", "empirical")
	for _, row := range r.Groups {
		//upa:allow(dpflow) reviewed: paper-figure report over synthetic benchmark data (§VI-E ablation measures sensitivity itself)
		fmt.Fprintf(&b, "%-12d %14.4g %14.4g\n", row.GroupSize, row.Sensitivity, row.Empirical)
	}
	return b.String()
}
