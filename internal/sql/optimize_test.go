package sql

import (
	"sort"
	"strings"
	"testing"
)

// sortedRows renders rows to collision-safe strings and sorts them, the
// multiset form used across the optimizer equivalence tests.
func sortedRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = rowKey(r)
	}
	sort.Strings(out)
	return out
}

// assertSameMultiset runs the plan raw and optimized and compares the
// results as sorted multisets.
func assertSameMultiset(t *testing.T, plan Plan) []Rewrite {
	t.Helper()
	rawRows, rawSchema, rawErr := ExecuteRaw(eng(), plan)
	optRows, optSchema, optErr := Execute(eng(), plan)
	if (rawErr == nil) != (optErr == nil) {
		t.Fatalf("error divergence: raw=%v optimized=%v", rawErr, optErr)
	}
	if rawErr != nil {
		return nil
	}
	if !schemasEqual(rawSchema, optSchema) {
		t.Fatalf("schema divergence: raw=%v optimized=%v", rawSchema, optSchema)
	}
	raw, opt := sortedRows(rawRows), sortedRows(optRows)
	if len(raw) != len(opt) {
		t.Fatalf("row count divergence: raw=%d optimized=%d", len(raw), len(opt))
	}
	for i := range raw {
		if raw[i] != opt[i] {
			t.Fatalf("row multiset divergence at %d:\nraw %q\nopt %q", i, raw[i], opt[i])
		}
	}
	_, rewrites := Optimize(plan)
	return rewrites
}

func hasRule(rewrites []Rewrite, rule string) bool {
	for _, rw := range rewrites {
		if rw.Rule == rule {
			return true
		}
	}
	return false
}

func TestConstantFolding(t *testing.T) {
	plan := Project(ordersScan(),
		NamedExpr{Name: "k", Expr: Col("orderkey")},
		NamedExpr{Name: "c", Expr: Add(Lit(Int(2)), Mul(Lit(Int(3)), Lit(Int(4))))},
	)
	opt, rewrites := Optimize(plan)
	if !hasRule(rewrites, "constant-folding") {
		t.Fatalf("no constant-folding rewrite recorded: %v", rewrites)
	}
	pp, ok := opt.(*ProjectPlan)
	if !ok {
		t.Fatalf("optimized root is %T, want *ProjectPlan", opt)
	}
	lit, ok := pp.Exprs[1].Expr.(litExpr)
	if !ok {
		t.Fatalf("constant expression did not fold: %s", pp.Exprs[1].Expr.describe())
	}
	if v, _ := lit.v.AsInt(); v != 14 {
		t.Fatalf("2 + 3*4 folded to %v", lit.v)
	}
	assertSameMultiset(t, plan)
}

func TestConstantFoldingDeclinesDivisionByZero(t *testing.T) {
	// A constant division by zero must keep erroring at run time, not get
	// folded away or panic the optimizer.
	plan := Project(ordersScan(),
		NamedExpr{Name: "boom", Expr: Div(Lit(Float(1)), Lit(Float(0)))},
	)
	if _, _, err := Execute(eng(), plan); err == nil {
		t.Fatal("division by zero survived optimization without an error")
	}
}

func TestTrueFilterElimination(t *testing.T) {
	plan := Where(ordersScan(), Or(Lit(Bool(true)), Eq(Col("status"), Lit(Str("F")))))
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "filter-true-elimination") {
		t.Fatalf("always-true filter not eliminated: %v", rewrites)
	}
	opt, _ := Optimize(plan)
	if _, ok := opt.(*ScanPlan); !ok {
		t.Fatalf("optimized plan is %T, want bare *ScanPlan", opt)
	}
}

func TestFalseFilterElimination(t *testing.T) {
	plan := Where(ordersScan(), And(Lit(Bool(false)), Eq(Col("status"), Lit(Str("F")))))
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "filter-false-elimination") {
		t.Fatalf("always-false filter not eliminated: %v", rewrites)
	}
	rows, _, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("always-false filter returned %d rows", len(rows))
	}
}

func TestPredicatePushdownIntoJoinSides(t *testing.T) {
	joined := JoinOn(ordersScan(), "custkey", customersScan(), "custkey")
	plan := Where(joined, And(
		Gt(Col("price"), Lit(Float(60))),
		Eq(Col("nation"), Lit(Str("DE"))),
	))
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "predicate-pushdown-join-left") {
		t.Fatalf("left-side conjunct not pushed: %v", rewrites)
	}
	if !hasRule(rewrites, "predicate-pushdown-join-right") {
		t.Fatalf("right-side conjunct not pushed: %v", rewrites)
	}
}

func TestPredicatePushdownKeepsCrossSideConjunct(t *testing.T) {
	joined := JoinOn(ordersScan(), "custkey", customersScan(), "custkey")
	// References both sides: must stay above the join.
	plan := Where(joined, Or(
		Gt(Col("price"), Lit(Float(60))),
		Eq(Col("nation"), Lit(Str("DE"))),
	))
	rewrites := assertSameMultiset(t, plan)
	if hasRule(rewrites, "predicate-pushdown-join-left") || hasRule(rewrites, "predicate-pushdown-join-right") {
		t.Fatalf("cross-side predicate was pushed: %v", rewrites)
	}
}

func TestPredicatePushdownThroughProject(t *testing.T) {
	projected := Project(ordersScan(),
		NamedExpr{Name: "okey", Expr: Col("orderkey")},
		NamedExpr{Name: "taxed", Expr: Mul(Col("price"), Lit(Float(2)))},
	)
	plan := Where(projected, Gt(Col("taxed"), Lit(Float(150))))
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "predicate-pushdown-project") {
		t.Fatalf("filter not pushed through project: %v", rewrites)
	}
	// The pushed predicate must reference the inlined expression.
	opt, _ := Optimize(plan)
	if _, ok := opt.(*ProjectPlan); !ok {
		t.Fatalf("optimized root is %T, want project above the pushed filter", opt)
	}
}

func TestFilterMerge(t *testing.T) {
	plan := Where(
		Where(ordersScan(), Eq(Col("status"), Lit(Str("F")))),
		Gt(Col("price"), Lit(Float(60))),
	)
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "filter-merge") {
		t.Fatalf("adjacent filters not merged: %v", rewrites)
	}
}

func TestProjectionPruning(t *testing.T) {
	plan := GroupBy(ordersScan(), []string{"status"},
		AggSpec{Name: "n", Func: AggCount})
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "projection-pruning") {
		t.Fatalf("scan not pruned below the aggregate: %v", rewrites)
	}
	opt, _ := Optimize(plan)
	agg := opt.(*AggregatePlan)
	sp, ok := agg.Input.(*ScanPlan)
	if !ok {
		t.Fatalf("aggregate input is %T, want narrowed *ScanPlan", agg.Input)
	}
	if len(sp.Cols) != 1 || sp.Cols[0].Name != "status" {
		t.Fatalf("pruned to %v, want [status]", sp.Cols)
	}
	for i, r := range sp.Rows {
		if len(r) != 1 {
			t.Fatalf("narrowed row %d still has %d values", i, len(r))
		}
	}
}

func TestPruningKeepsRootSchema(t *testing.T) {
	// The root needs every column, so a bare scan must not be narrowed.
	opt, rewrites := Optimize(ordersScan())
	if hasRule(rewrites, "projection-pruning") {
		t.Fatalf("root scan was pruned: %v", rewrites)
	}
	if _, ok := opt.(*ScanPlan); !ok {
		t.Fatalf("optimized plan is %T, want untouched *ScanPlan", opt)
	}
}

func TestLimitCollapse(t *testing.T) {
	plan := Limit(Limit(ordersScan(), 4), 2)
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "limit-collapse") {
		t.Fatalf("stacked limits not collapsed: %v", rewrites)
	}
	opt, _ := Optimize(plan)
	lp, ok := opt.(*LimitPlan)
	if !ok || lp.N != 2 {
		t.Fatalf("optimized plan is %s, want limit[2](scan)", Describe(opt))
	}
	if _, ok := lp.Input.(*ScanPlan); !ok {
		t.Fatalf("collapsed limit input is %T, want *ScanPlan", lp.Input)
	}
}

func TestLimitPushdownBelowProject(t *testing.T) {
	plan := Limit(Project(ordersScan(),
		NamedExpr{Name: "okey", Expr: Col("orderkey")},
	), 2)
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "limit-pushdown-project") {
		t.Fatalf("limit not pushed below project: %v", rewrites)
	}
	opt, _ := Optimize(plan)
	if _, ok := opt.(*ProjectPlan); !ok {
		t.Fatalf("optimized root is %T, want project above the pushed limit", opt)
	}
}

// smallScan and bigScan have globally unique column names so the join-side
// swap's restoring projection is unambiguous.
func smallScan() *ScanPlan {
	cols := Schema{{Name: "sk", Kind: KindInt}, {Name: "w", Kind: KindInt}}
	return Scan("small", cols, []Row{
		{Int(1), Int(100)},
		{Int(2), Int(200)},
	})
}

func bigScan() *ScanPlan {
	cols := Schema{{Name: "bk", Kind: KindInt}, {Name: "v", Kind: KindInt}}
	rows := []Row{
		{Int(1), Int(10)}, {Int(2), Int(20)}, {Int(1), Int(30)},
		{Int(3), Int(40)}, {Int(2), Int(50)}, {Int(1), Int(60)},
	}
	return Scan("big", cols, rows)
}

func TestJoinBuildSideSizing(t *testing.T) {
	// small (2 rows) is the left side of the raw plan; the optimizer should
	// move it to the right (the hash build side) and restore column order
	// with a projection.
	plan := JoinOn(smallScan(), "sk", bigScan(), "bk")
	rewrites := assertSameMultiset(t, plan)
	if !hasRule(rewrites, "join-build-side") {
		t.Fatalf("smaller side not moved to the build side: %v", rewrites)
	}
	opt, _ := Optimize(plan)
	pp, ok := opt.(*ProjectPlan)
	if !ok {
		t.Fatalf("optimized root is %T, want restoring *ProjectPlan", opt)
	}
	jp, ok := pp.Input.(*JoinPlan)
	if !ok {
		t.Fatalf("restoring projection input is %T, want *JoinPlan", pp.Input)
	}
	if jp.LeftKey != "bk" || jp.RightKey != "sk" {
		t.Fatalf("join keys not swapped: %s=%s", jp.LeftKey, jp.RightKey)
	}
}

func TestJoinSizingSkipsDuplicateNames(t *testing.T) {
	// custkey appears on both sides, so the restoring projection would be
	// ambiguous and the swap must not fire.
	plan := JoinOn(customersScan(), "custkey", ordersScan(), "custkey")
	rewrites := assertSameMultiset(t, plan)
	if hasRule(rewrites, "join-build-side") {
		t.Fatalf("join with duplicate column names was swapped: %v", rewrites)
	}
}

func TestJoinSizingSkipsBelowLimit(t *testing.T) {
	// Swapping reorders rows, which would change which rows the limit
	// keeps — the optimizer must not swap beneath a limit.
	plan := Limit(JoinOn(customersScan(), "custkey", ordersScan(), "custkey"), 3)
	rewrites := assertSameMultiset(t, plan)
	if hasRule(rewrites, "join-build-side") {
		t.Fatalf("join swapped beneath a limit: %v", rewrites)
	}
}

func TestMalformedPlansReturnedUnchanged(t *testing.T) {
	plans := []Plan{
		Where(ordersScan(), Col("missing")),
		Where(ordersScan(), Add(Col("status"), Lit(Int(1)))),
		GroupBy(ordersScan(), []string{"status"}),
		Limit(ordersScan(), -2),
	}
	for _, plan := range plans {
		if _, _, err := Execute(eng(), plan); err == nil {
			t.Fatalf("malformed plan executed without error: %s", Describe(plan))
		}
	}
}

func TestOptimizeIdempotent(t *testing.T) {
	joined := JoinOn(ordersScan(), "custkey", customersScan(), "custkey")
	plan := Where(joined, Eq(Col("nation"), Lit(Str("DE"))))
	once, _ := Optimize(plan)
	twice, rewrites := Optimize(once)
	if Describe(once) != Describe(twice) {
		t.Fatalf("optimize is not idempotent:\nonce  %s\ntwice %s\nrewrites %v",
			Describe(once), Describe(twice), rewrites)
	}
}

func TestExplainMentionsRewrites(t *testing.T) {
	joined := JoinOn(ordersScan(), "custkey", customersScan(), "custkey")
	plan := GroupBy(Where(joined, Eq(Col("nation"), Lit(Str("DE")))), nil,
		AggSpec{Name: "n", Func: AggCount})
	out := Explain(plan)
	for _, want := range []string{"raw plan:", "optimized plan:", "rewrites:", "predicate-pushdown-join-right"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain output missing %q:\n%s", want, out)
		}
	}
}
