// Package seededdeterminism bans ambient nondeterminism — time.Now (and
// Since/Until) and the global math/rand — from the packages whose outputs
// must be byte-identical across runs and fault schedules: the engine, the
// chaos injector, the jobgraph scheduler, the stats substrate, and the
// benchmark/example drivers that assert reproducibility. The chaos soak
// (PR 3) proves faulted re-execution changes nothing; that proof is void if
// any hot path consults the wall clock or an unseeded RNG. Determinism-
// critical code uses the seeded *stats.RNG (splittable, auditable) and the
// jobgraph's injectable clock instead. Wall-clock measurements that are
// genuinely about elapsed time (bench harnesses) carry a justified
// //upa:allow(seededdeterminism) annotation.
package seededdeterminism

import (
	"fmt"
	"go/ast"
	"strings"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the seededdeterminism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "seededdeterminism",
	Doc: "bans time.Now/Since/Until and global math/rand in determinism-critical " +
		"packages; use the seeded internal/stats RNG or an injected clock",
	Run: run,
}

// CriticalPrefixes lists the determinism-critical package paths. A package
// is covered when its import path equals a prefix or lives below it. The
// list is exported so the repo-wide vet test and cmd/upa-vet share one
// source of truth.
var CriticalPrefixes = []string{
	// Covers the engine including its spill codec, store, and fault-injected
	// filesystem (spill.go, spillstore.go, spillfs.go): spill file names,
	// frame contents, and recovery decisions must be pure functions of the
	// data and seed, never of wall clock or a global RNG, or retried tasks
	// would rewrite different bytes and fault runs would not replay.
	"upa/internal/mapreduce",
	// Includes the seeded disk-fault model (disk.go): every injected storage
	// failure is a pure hash of (seed, site, file, attempt).
	"upa/internal/chaos",
	// The columnar kernels: a vectorized operator must be a pure function of
	// its input batch, or the physical layer's byte-identity contract with
	// the row path (and hence DP release equivalence) breaks.
	"upa/internal/colbatch",
	"upa/internal/jobgraph",
	"upa/internal/stats",
	"upa/internal/bench",
	"upa/internal/serve",
	"upa/examples",
}

// timeBanned are the time package members whose results differ run to run.
// Timers and durations are fine — scheduling may sleep, it may not decide.
var timeBanned = map[string]bool{"Now": true, "Since": true, "Until": true}

// rngConstructors are math/rand members that build a local, seedable
// generator; only the package-level global source is banned.
var rngConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

// Covered reports whether pkgPath is determinism-critical.
func Covered(pkgPath string) bool {
	for _, prefix := range CriticalPrefixes {
		if pkgPath == prefix || strings.HasPrefix(pkgPath, prefix+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !Covered(pass.PkgPath) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch path := pass.ImportPathOf(ident); path {
			case "time":
				if timeBanned[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), fmt.Sprintf(
						"time.%s in determinism-critical package %s; inject a clock (jobgraph.WithClock) or derive timestamps from the seed", sel.Sel.Name, pass.PkgPath))
				}
			case "math/rand", "math/rand/v2":
				if !rngConstructors[sel.Sel.Name] {
					pass.Reportf(sel.Pos(), fmt.Sprintf(
						"global %s.%s in determinism-critical package %s; use the seeded *stats.RNG (internal/stats) so runs are reproducible", pkgBase(path), sel.Sel.Name, pass.PkgPath))
				}
			case "crypto/rand":
				pass.Reportf(sel.Pos(), fmt.Sprintf(
					"crypto/rand.%s in determinism-critical package %s; cryptographic randomness is never reproducible — use the seeded *stats.RNG", sel.Sel.Name, pass.PkgPath))
			}
			return true
		})
	}
	return nil
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
