package reducerpurity_test

import (
	"path/filepath"
	"testing"

	"upa/internal/analyzers/analyzertest"
	"upa/internal/analyzers/reducerpurity"
)

func TestReducerPurityGolden(t *testing.T) {
	dir := filepath.Join("..", "testdata", "src", "reducerpurity")
	analyzertest.Run(t, dir, "upa/internal/fake", reducerpurity.Analyzer)
}
