package sql

import "fmt"

// Plan is a logical relational query plan. Build plans with the
// constructors below and run them with Execute.
type Plan interface {
	// Schema returns the plan's output schema.
	Schema() (Schema, error)
	// describe renders the node for diagnostics.
	describe() string
}

// ScanPlan reads a named base relation.
type ScanPlan struct {
	// Name labels the relation (used by FLEX extraction diagnostics).
	Name string
	// Cols is the relation's schema; Rows its tuples.
	Cols Schema
	Rows []Row
}

// Scan builds a base-relation scan.
func Scan(name string, cols Schema, rows []Row) *ScanPlan {
	return &ScanPlan{Name: name, Cols: cols, Rows: rows}
}

// Schema implements Plan.
func (p *ScanPlan) Schema() (Schema, error) { return p.Cols, nil }

func (p *ScanPlan) describe() string { return "scan(" + p.Name + ")" }

// FilterPlan keeps the rows whose predicate evaluates to true.
type FilterPlan struct {
	Input Plan
	Pred  Expr
}

// Where builds a filter over input.
func Where(input Plan, pred Expr) *FilterPlan { return &FilterPlan{Input: input, Pred: pred} }

// Schema implements Plan.
func (p *FilterPlan) Schema() (Schema, error) { return p.Input.Schema() }

func (p *FilterPlan) describe() string {
	return "filter[" + p.Pred.describe() + "](" + p.Input.describe() + ")"
}

// NamedExpr is a projected expression with its output column name.
type NamedExpr struct {
	Name string
	Expr Expr
}

// ProjectPlan computes a new row per input row.
type ProjectPlan struct {
	Input Plan
	Exprs []NamedExpr
}

// Project builds a projection over input.
func Project(input Plan, exprs ...NamedExpr) *ProjectPlan {
	return &ProjectPlan{Input: input, Exprs: exprs}
}

// Schema implements Plan.
func (p *ProjectPlan) Schema() (Schema, error) {
	in, err := p.Input.Schema()
	if err != nil {
		return nil, err
	}
	out := make(Schema, len(p.Exprs))
	for i, ne := range p.Exprs {
		_, kind, err := ne.Expr.bind(in)
		if err != nil {
			return nil, err
		}
		out[i] = Column{Name: ne.Name, Kind: kind}
	}
	return out, nil
}

func (p *ProjectPlan) describe() string { return "project(" + p.Input.describe() + ")" }

// JoinPlan is the equi-join of two inputs on one column each. The output
// schema concatenates the left and right schemas (duplicate names keep both
// entries; qualify upstream with Project if needed).
type JoinPlan struct {
	Left, Right       Plan
	LeftKey, RightKey string
}

// JoinOn builds an inner equi-join.
func JoinOn(left Plan, leftKey string, right Plan, rightKey string) *JoinPlan {
	return &JoinPlan{Left: left, Right: right, LeftKey: leftKey, RightKey: rightKey}
}

// Schema implements Plan.
func (p *JoinPlan) Schema() (Schema, error) {
	ls, err := p.Left.Schema()
	if err != nil {
		return nil, err
	}
	rs, err := p.Right.Schema()
	if err != nil {
		return nil, err
	}
	if _, err := ls.IndexOf(p.LeftKey); err != nil {
		return nil, fmt.Errorf("sql: join left key: %w", err)
	}
	if _, err := rs.IndexOf(p.RightKey); err != nil {
		return nil, fmt.Errorf("sql: join right key: %w", err)
	}
	out := make(Schema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	out = append(out, rs...)
	return out, nil
}

func (p *JoinPlan) describe() string {
	return fmt.Sprintf("join[%s=%s](%s, %s)", p.LeftKey, p.RightKey, p.Left.describe(), p.Right.describe())
}

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	AggCount AggFunc = iota + 1
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("agg(%d)", int(f))
	}
}

// AggSpec is one aggregate output: Func over Arg (Arg ignored for Count).
type AggSpec struct {
	Name string
	Func AggFunc
	Arg  Expr
}

// AggregatePlan groups by the named columns and computes the aggregates.
// With no group-by columns it returns a single global row.
type AggregatePlan struct {
	Input   Plan
	GroupBy []string
	Aggs    []AggSpec
}

// GroupBy builds an aggregation over input.
func GroupBy(input Plan, groupCols []string, aggs ...AggSpec) *AggregatePlan {
	return &AggregatePlan{Input: input, GroupBy: groupCols, Aggs: aggs}
}

// Schema implements Plan.
func (p *AggregatePlan) Schema() (Schema, error) {
	in, err := p.Input.Schema()
	if err != nil {
		return nil, err
	}
	out := make(Schema, 0, len(p.GroupBy)+len(p.Aggs))
	for _, g := range p.GroupBy {
		idx, err := in.IndexOf(g)
		if err != nil {
			return nil, err
		}
		out = append(out, in[idx])
	}
	for _, a := range p.Aggs {
		kind := KindFloat
		if a.Func == AggCount {
			kind = KindInt
		} else {
			if a.Arg == nil {
				return nil, fmt.Errorf("sql: aggregate %s(%s) needs an argument", a.Func, a.Name)
			}
			if _, _, err := a.Arg.bind(in); err != nil {
				return nil, err
			}
		}
		out = append(out, Column{Name: a.Name, Kind: kind})
	}
	return out, nil
}

func (p *AggregatePlan) describe() string { return "aggregate(" + p.Input.describe() + ")" }

// LimitPlan keeps the first N rows in deterministic plan order.
type LimitPlan struct {
	Input Plan
	N     int
}

// Limit caps the row count.
func Limit(input Plan, n int) *LimitPlan { return &LimitPlan{Input: input, N: n} }

// Schema implements Plan.
func (p *LimitPlan) Schema() (Schema, error) { return p.Input.Schema() }

func (p *LimitPlan) describe() string { return fmt.Sprintf("limit[%d](%s)", p.N, p.Input.describe()) }

// Describe renders the whole plan tree on one line.
func Describe(p Plan) string { return p.describe() }
