// Command upa-server exposes UPA as a small HTTP service over a generated
// synthetic warehouse: analysts POST release requests and receive noisy,
// iDP-protected answers; the RANGE ENFORCER history persists across
// restarts via a state file so differencing attacks cannot be laundered
// through a service bounce.
//
// Endpoints:
//
//	GET  /queries   list the available queries
//	POST /release   {"query": "TPCH6"} -> one iDP release
//	POST /query     multi-tenant DP query service: SQL plans (named or
//	                ad-hoc JSON ASTs) under per-tenant/per-user ε ledgers,
//	                admission control and a release cache
//	GET  /budget    every tenant's ε budget, spend and remaining headroom
//	GET  /metrics   engine activity counters, including fault-recovery
//	                (retries, backoff, deadlines, lost slots) and per-tenant
//	                serving counters
//	GET  /history   RANGE ENFORCER status
//	GET  /healthz   liveness: uptime, releases served, privacy budget spent
//	GET  /jobs      recent releases' stage DAGs: per-stage spans (attempts,
//	                retries, absorbed faults) plus simulated cluster cost
//	                and critical path
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight queries get a
// deadline to finish, then the serving ledger journal is compacted into its
// snapshot and the enforcer state is persisted.
//
// Usage:
//
//	upa-server -addr :8080 -lineitems 20000 -state enforcer.json \
//	  -tenants acme:5:1,beta:2:0.5 -servestate ledger.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"upa/internal/bench"
	"upa/internal/cluster"
	"upa/internal/core"
	"upa/internal/lifesci"
	"upa/internal/mapreduce"
	"upa/internal/queries"
	"upa/internal/serve"
	"upa/internal/sql"
	"upa/internal/tpch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "upa-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("upa-server", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		lineitems   = fs.Int("lineitems", 20000, "TPC-H lineitem rows")
		lsRecords   = fs.Int("lsrecords", 20000, "life-science records")
		skew        = fs.Float64("skew", 0.2, "TPC-H join-key skew")
		seed        = fs.Uint64("seed", 1, "generator and system seed")
		sampleSize  = fs.Int("n", 1000, "UPA differing-record sample size")
		epsilon     = fs.Float64("epsilon", 0.1, "privacy budget per release")
		statePath   = fs.String("state", "", "path persisting the RANGE ENFORCER history (empty: in-memory only)")
		spillBudget = fs.Int64("spillbudget", -1, "engine in-memory materialization budget in bytes; past it partitions spill to temp files (negative: unlimited, 0: spill everything)")
		tenantSpec  = fs.String("tenants", "", "tenant registry as name:budget:userBudget,... (0 = unlimited; empty: one unlimited \"public\" tenant)")
		serveState  = fs.String("servestate", "", "path persisting the serving ε ledger and release cache (empty: in-memory only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tenants, err := parseTenants(*tenantSpec)
	if err != nil {
		return err
	}
	srv, err := newServer(serverConfig{
		Lineitems:      *lineitems,
		LSRecords:      *lsRecords,
		Skew:           *skew,
		Seed:           *seed,
		SampleSize:     *sampleSize,
		Epsilon:        *epsilon,
		StatePath:      *statePath,
		SpillBudget:    *spillBudget,
		Tenants:        tenants,
		ServeStatePath: *serveState,
	})
	if err != nil {
		return err
	}
	slog.Info("upa-server listening", slog.String("addr", *addr))
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           srv.routes(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, give in-flight
	// queries a deadline, and flush the serving ledger and enforcer state so
	// a bounce neither forgets ε spend nor re-randomizes cached releases.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		srv.close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately
	slog.Info("upa-server draining")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = httpServer.Shutdown(shutdownCtx)
	if cerr := srv.close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// parseTenants parses the -tenants flag: comma-separated name:budget:userBudget
// triples, budget fields optional (missing or zero = unlimited).
func parseTenants(spec string) ([]serve.TenantSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var out []serve.TenantSpec
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if fields[0] == "" || len(fields) > 3 {
			return nil, fmt.Errorf("bad tenant spec %q (want name:budget:userBudget)", part)
		}
		t := serve.TenantSpec{Name: fields[0]}
		for i, dst := range []*float64{&t.Budget, &t.UserBudget} {
			if len(fields) > i+1 && fields[i+1] != "" {
				v, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("bad tenant spec %q: %v", part, err)
				}
				*dst = v
			}
		}
		out = append(out, t)
	}
	return out, nil
}

type serverConfig struct {
	Lineitems, LSRecords int
	Skew                 float64
	Seed                 uint64
	SampleSize           int
	Epsilon              float64
	StatePath            string
	// SpillBudget caps the engine's in-memory materialized partitions in
	// bytes; past it partitions spill to temp files (negative: unlimited,
	// zero: spill everything).
	SpillBudget int64
	// Tenants registers the serving layer's tenants (empty: one unlimited
	// "public" tenant); ServeStatePath roots its ledger/cache persistence.
	Tenants        []serve.TenantSpec
	ServeStatePath string
	// MaxConcurrent / PerTenantDepth override the admission controller's
	// defaults (zero keeps them).
	MaxConcurrent  int
	PerTenantDepth int
}

// jobLogCap bounds the job log: GET /jobs reports the most recent releases
// only, oldest evicted first.
const jobLogCap = 32

// server holds the workload and the long-lived UPA system.
type server struct {
	cfg   serverConfig
	w     *queries.Workload
	eng   *mapreduce.Engine
	sys   *core.System
	svc   *serve.Service
	model cluster.Model
	// started anchors /healthz uptime; releases counts successful releases.
	started  time.Time
	releases atomic.Uint64

	// releaseMu serializes persistence of the enforcer state with the
	// releases that mutate it.
	releaseMu sync.Mutex

	// jobsMu guards the ring of recent job records behind GET /jobs.
	jobsMu sync.Mutex
	jobs   []jobRecord
}

func newServer(cfg serverConfig) (*server, error) {
	w, err := queries.NewWorkload(
		tpch.Config{Lineitems: cfg.Lineitems, Skew: cfg.Skew, Seed: cfg.Seed},
		lifesci.Config{Records: cfg.LSRecords, Dims: 4, Clusters: 3, OutlierFrac: 0.01, Seed: cfg.Seed},
	)
	if err != nil {
		return nil, err
	}
	eng := mapreduce.NewEngine(mapreduce.WithMemoryBudget(cfg.SpillBudget))
	sysCfg := core.DefaultConfig()
	sysCfg.SampleSize = cfg.SampleSize
	sysCfg.Epsilon = cfg.Epsilon
	sysCfg.Seed = cfg.Seed
	sys, err := core.NewSystem(eng, sysCfg)
	if err != nil {
		return nil, err
	}
	// The serving layer exposes the TPC-H relations to ad-hoc plans and the
	// canned counting plans by name. Scans are materialized once and shared:
	// plans built over them fingerprint identically across requests.
	tables := map[string]*sql.ScanPlan{
		"lineitem": queries.LineitemRelation(w.DB),
		"orders":   queries.OrdersRelation(w.DB),
		"customer": queries.CustomerRelation(w.DB),
	}
	named := make(map[string]sql.Plan)
	for _, name := range []string{"tpch1", "tpch1full", "tpch4", "tpch6", "tpch13"} {
		plan, err := queries.PlanByName(w.DB, name)
		if err != nil {
			return nil, err
		}
		named[name] = plan
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []serve.TenantSpec{{Name: "public"}}
	}
	svc, err := serve.NewService(serve.Config{
		Engine: eng,
		Tables: tables,
		NamedPlan: func(name string) (sql.Plan, error) {
			plan, ok := named[strings.ToLower(name)]
			if !ok {
				return nil, fmt.Errorf("no canned plan (have tpch1, tpch1full, tpch4, tpch6, tpch13)")
			}
			return plan, nil
		},
		SampleSize:     cfg.SampleSize,
		DefaultEpsilon: cfg.Epsilon,
		MaxConcurrent:  cfg.MaxConcurrent,
		PerTenantDepth: cfg.PerTenantDepth,
		StatePath:      cfg.ServeStatePath,
	}, tenants)
	if err != nil {
		return nil, err
	}
	srv := &server{cfg: cfg, w: w, eng: eng, sys: sys, svc: svc, model: cluster.PaperTestbed(), started: time.Now()}
	if cfg.StatePath != "" {
		if err := srv.loadState(); err != nil {
			svc.Close()
			return nil, err
		}
	}
	return srv, nil
}

// close flushes everything a restart must not forget: the serving layer's ε
// ledger and release cache (journal compacted into its snapshot), then the
// RANGE ENFORCER history — and removes the engine's spill directory, which
// holds only recomputable intermediate state.
func (s *server) close() error {
	s.releaseMu.Lock()
	defer s.releaseMu.Unlock()
	err := s.svc.Close()
	if serr := s.saveState(); serr != nil && err == nil {
		err = serr
	}
	if eerr := s.eng.Close(); eerr != nil && err == nil {
		err = eerr
	}
	return err
}

func (s *server) loadState() error {
	f, err := os.Open(s.cfg.StatePath)
	if errors.Is(err, os.ErrNotExist) {
		return nil // first boot
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return s.sys.Enforcer().Load(f)
}

func (s *server) saveState() error {
	if s.cfg.StatePath == "" {
		return nil
	}
	tmp := s.cfg.StatePath + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := s.sys.Enforcer().Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.cfg.StatePath)
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /queries", s.handleQueries)
	mux.HandleFunc("POST /release", s.handleRelease)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /budget", s.handleBudget)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /history", s.handleHistory)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	return mux
}

// jobStage is one stage of a job record: the span the stage reported plus
// the cluster model's price for it.
type jobStage struct {
	Stage            string   `json:"stage"`
	Deps             []string `json:"deps"`
	DurationUS       float64  `json:"durationUs"`
	Attempts         int      `json:"attempts"`
	Speculative      int      `json:"speculative"`
	Retries          int64    `json:"retries"`
	TaskFaults       int64    `json:"taskFaults"`
	BackoffUS        float64  `json:"backoffUs"`
	Records          int64    `json:"records"`
	ShuffledRecords  int64    `json:"shuffledRecords"`
	ShuffleBytes     int64    `json:"shuffleBytes"`
	ReduceOps        int64    `json:"reduceOps"`
	CacheHits        int64    `json:"cacheHits"`
	RecordsCombined  int64    `json:"recordsCombined"`
	SpilledBytes     int64    `json:"spilledBytes"`
	SpillReads       int64    `json:"spillReads"`
	SpillCorruptions int64    `json:"spillCorruptions"`
	SpillRecomputes  int64    `json:"spillRecomputes"`
	SimUS            float64  `json:"simUs"`
	Critical         bool     `json:"critical"`
}

// jobRecord is one release's stage DAG as reported by GET /jobs.
type jobRecord struct {
	ID              uint64     `json:"id"`
	Query           string     `json:"query"`
	Stages          []jobStage `json:"stages"`
	CriticalPath    []string   `json:"criticalPath"`
	SimSequentialUS float64    `json:"simSequentialUs"`
	SimPipelinedUS  float64    `json:"simPipelinedUs"`
}

func micros(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// recordJob prices a release's spans and appends the job record, evicting
// the oldest past jobLogCap.
func (s *server) recordJob(res *core.Result) {
	rec := jobRecord{
		ID:           res.Release,
		Query:        res.Query,
		Stages:       make([]jobStage, 0, len(res.Spans)),
		CriticalPath: []string{},
	}
	plan, err := s.model.PricePlan(res.Spans)
	if err != nil {
		// Pricing cannot fail on spans the scheduler produced; if it ever
		// does, keep the unpriced spans rather than dropping the record.
		slog.Error("price job plan", slog.Any("error", err))
		plan = cluster.PlanCost{Stages: make([]cluster.StageCost, len(res.Spans))}
	}
	critical := make(map[string]bool, len(plan.CriticalPath))
	for _, name := range plan.CriticalPath {
		critical[name] = true
	}
	rec.CriticalPath = append(rec.CriticalPath, plan.CriticalPath...)
	rec.SimSequentialUS = micros(plan.Sequential)
	rec.SimPipelinedUS = micros(plan.Total)
	for i, span := range res.Spans {
		deps := span.Deps
		if deps == nil {
			deps = []string{} // keep "deps" an array, never null, in JSON
		}
		rec.Stages = append(rec.Stages, jobStage{
			Stage:            span.Stage,
			Deps:             deps,
			DurationUS:       micros(span.Duration()),
			Attempts:         span.Attempts,
			Speculative:      span.Speculative,
			Retries:          span.Retries,
			TaskFaults:       span.TaskFaults,
			BackoffUS:        micros(time.Duration(span.BackoffNanos)),
			Records:          span.Records,
			ShuffledRecords:  span.ShuffledRecords,
			ShuffleBytes:     span.ShuffleBytes,
			ReduceOps:        span.ReduceOps,
			CacheHits:        span.CacheHits,
			RecordsCombined:  span.RecordsCombined,
			SpilledBytes:     span.SpilledBytes,
			SpillReads:       span.SpillReads,
			SpillCorruptions: span.SpillCorruptions,
			SpillRecomputes:  span.SpillRecomputes,
			SimUS:            micros(plan.Stages[i].Cost.Total()),
			Critical:         critical[span.Stage],
		})
	}
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobs = append(s.jobs, rec)
	if len(s.jobs) > jobLogCap {
		s.jobs = append(s.jobs[:0], s.jobs[len(s.jobs)-jobLogCap:]...)
	}
}

func (s *server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	s.jobsMu.Lock()
	// Newest first, so analysts see their latest release on top.
	jobs := make([]jobRecord, 0, len(s.jobs))
	for i := len(s.jobs) - 1; i >= 0; i-- {
		jobs = append(jobs, s.jobs[i])
	}
	s.jobsMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs})
}

func (s *server) handleQueries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"queries": bench.QueryNames()})
}

// releaseRequest is the body of POST /release.
type releaseRequest struct {
	Query string `json:"query"`
}

// releaseResponse is the analyst-facing release: only the noisy output and
// public metadata — never the raw output, and (since the dpflow analyzer
// landed) never the inferred sensitivity either: it is a data-dependent
// pre-noise value, so serving it would undo the mechanism's guarantee.
type releaseResponse struct {
	Query           string    `json:"query"`
	Output          []float64 `json:"output"`
	SampleSize      int       `json:"sampleSize"`
	AttackSuspected bool      `json:"attackSuspected"`
	RemovedRecords  int       `json:"removedRecords"`
	Epsilon         float64   `json:"epsilon"`
}

func (s *server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req releaseRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed request body"})
		return
	}
	runner, err := s.w.ByName(req.Query)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	s.releaseMu.Lock()
	defer s.releaseMu.Unlock()
	res, err := runner.RunUPA(s.sys)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	if err := s.saveState(); err != nil {
		// The release already happened; losing persistence is a server
		// fault worth surfacing loudly, but the noisy answer is safe to
		// return.
		slog.Error("persist enforcer state", slog.Any("error", err))
	}
	s.releases.Add(1)
	s.recordJob(res)
	writeJSON(w, http.StatusOK, releaseResponse{
		Query:           res.Query,
		Output:          res.Output,
		SampleSize:      res.SampleSize,
		AttackSuspected: res.AttackSuspected,
		RemovedRecords:  res.RemovedRecords,
		Epsilon:         res.EffectiveEpsilon,
	})
}

// handleQuery is the multi-tenant DP query endpoint: the serving layer
// decides admission (budget, load) and caching before anything computes.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req serve.Request
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "malformed request body"})
		return
	}
	rel, serr := s.svc.Query(r.Context(), req)
	if serr != nil {
		if serr.RetryAfterSeconds > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(serr.RetryAfterSeconds))
		}
		writeJSON(w, serr.Status, map[string]any{"error": serr.Message})
		return
	}
	writeJSON(w, http.StatusOK, rel)
}

// handleBudget reports every tenant's ε ledger state.
func (s *server) handleBudget(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants":   s.svc.Report(),
		"persisted": s.cfg.ServeStatePath != "",
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.eng.Metrics()
	cacheLen, cacheHits, cacheMisses := s.svc.CacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"tenants": s.svc.Metrics(),
		"releaseCache": map[string]any{
			"entries": cacheLen,
			"hits":    cacheHits,
			"misses":  cacheMisses,
		},
		"tasksRun":                 m.TasksRun,
		"recordsMapped":            m.RecordsMapped,
		"recordsBatched":           m.RecordsBatched,
		"batchesProcessed":         m.BatchesProcessed,
		"reduceOps":                m.ReduceOps,
		"shuffleRounds":            m.ShuffleRounds,
		"recordsShuffled":          m.RecordsShuffled,
		"recordsPreCombine":        m.RecordsPreCombine,
		"recordsPostCombine":       m.RecordsPostCombine,
		"recordsCombinedMapSide":   m.RecordsCombinedMapSide,
		"cacheHitRate":             m.CacheHitRate(),
		"taskAttempts":             m.TaskAttempts,
		"taskFaults":               m.TaskFaults,
		"taskRetries":              m.TaskRetries,
		"shuffleRetries":           m.ShuffleRetries,
		"backoffUs":                micros(time.Duration(m.BackoffNanos)),
		"deadlinesExceeded":        m.DeadlinesExceeded,
		"stragglersInjected":       m.StragglersInjected,
		"slotsLost":                m.SlotsLost,
		"memoryBudget":             s.eng.MemoryBudget(),
		"spilledBytes":             m.SpilledBytes,
		"spillFiles":               m.SpillFiles,
		"spillReads":               m.SpillReads,
		"spillCorruptionsDetected": m.SpillCorruptionsDetected,
		"spillRecomputes":          m.SpillRecomputes,
		"spillWriteRetries":        m.SpillWriteRetries,
		"spillFallbacksInMemory":   m.SpillFallbacksInMemory,
	})
}

// handleHealthz is the liveness probe: process status plus the counters an
// operator checks first — uptime, releases served, privacy budget spent, and
// whether fault recovery has been active.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	m := s.eng.Metrics()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.started).Seconds(),
		"releases":      s.releases.Load(),
		"epsilonSpent":  s.sys.EpsilonSpent(),
		"workers":       s.eng.Workers(),
		"taskRetries":   m.TaskRetries,
		"taskFaults":    m.TaskFaults,
	})
}

func (s *server) handleHistory(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"releases":  s.sys.Enforcer().HistoryLen(),
		"persisted": s.cfg.StatePath != "",
	})
}

// writeJSON serializes v onto the wire. Everything that passes through
// here is analyst-visible, so dpflow treats every argument as a sink.
//
//upa:dpsink
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		slog.Error("encode response", slog.Any("error", err))
	}
}
