package upavet_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"upa/internal/analyzers/upavet"
)

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// TestRepoIsVetClean is the repo-wide invariant: the whole module, with
// //upa:allow suppression active, produces zero diagnostics. Any new
// ambient nondeterminism, severed context chain, rogue ε-ledger write, or
// impure reducer fails this test until fixed or annotated with a
// justification.
func TestRepoIsVetClean(t *testing.T) {
	diags, src, err := upavet.CheckModule(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", src.Format(d))
	}
}

// TestAnnotationsAreLoadBearing runs the suite with suppression disabled and
// asserts the known annotated sites still fire. If a refactor removes the
// underlying pattern, the stale //upa:allow should be deleted too; if it
// silently stops matching, this test catches the analyzer regression —
// reverting any in-tree fix or annotation must make its analyzer fire.
func TestAnnotationsAreLoadBearing(t *testing.T) {
	diags, src, err := upavet.CheckModuleRaw(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, d := range diags {
		lines = append(lines, src.Format(d))
	}
	all := strings.Join(lines, "\n")

	wantSites := []struct{ file, analyzer string }{
		// Public convenience wrappers minting a root context.
		{filepath.Join("internal", "mapreduce", "dataset.go"), "ctxpropagation"},
		{filepath.Join("internal", "mapreduce", "reduce.go"), "ctxpropagation"},
		{filepath.Join("internal", "mapreduce", "sort.go"), "ctxpropagation"},
		{filepath.Join("internal", "mapreduce", "shuffle.go"), "ctxpropagation"},
		{filepath.Join("internal", "core", "run.go"), "ctxpropagation"},
		// The jobgraph's default wall clock behind WithClock.
		{filepath.Join("internal", "jobgraph", "jobgraph.go"), "seededdeterminism"},
		// Bench harness wall-clock measurements.
		{filepath.Join("internal", "bench", "ablations.go"), "seededdeterminism"},
		{filepath.Join("internal", "bench", "fig2b.go"), "seededdeterminism"},
		{filepath.Join("internal", "bench", "fig4.go"), "seededdeterminism"},
		{filepath.Join("internal", "bench", "optexp.go"), "seededdeterminism"},
		{filepath.Join("internal", "bench", "spillexp.go"), "seededdeterminism"},
		// Deliberate pre-noise displays: the inspection CLI, the pedagogical
		// examples, and the paper-figure reports all surface sensitivities
		// and enforcer ranges over synthetic data on purpose.
		{filepath.Join("cmd", "upa-query", "main.go"), "dpflow"},
		{filepath.Join("examples", "attack-defense", "main.go"), "dpflow"},
		{filepath.Join("examples", "private-ml", "main.go"), "dpflow"},
		{filepath.Join("examples", "quickstart", "main.go"), "dpflow"},
		{filepath.Join("examples", "sql-vs-flex", "main.go"), "dpflow"},
		{filepath.Join("examples", "tpch-analytics", "main.go"), "dpflow"},
		{filepath.Join("internal", "bench", "ablations.go"), "dpflow"},
		{filepath.Join("internal", "bench", "fig3.go"), "dpflow"},
	}
	for _, site := range wantSites {
		found := false
		for _, line := range lines {
			if strings.Contains(line, site.file) && strings.Contains(line, site.analyzer+":") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("raw run did not fire %s at %s; a //upa:allow there is stale (or the analyzer regressed)\nraw diagnostics:\n%s",
				site.analyzer, site.file, all)
		}
	}

	// Every raw diagnostic must be one of the annotated files: anything else
	// would mean suppression is hiding an unannotated violation.
	for _, line := range lines {
		ok := false
		for _, site := range wantSites {
			if strings.Contains(line, site.file) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("raw diagnostic outside the known annotated sites: %s", line)
		}
	}
}

// TestFactsAreDeterministic loads the module twice and demands byte-identical
// facts encodings: the vetx channel is a cache key input, so any map-order
// leak in summary computation would poison incremental vet runs.
func TestFactsAreDeterministic(t *testing.T) {
	root := moduleRoot(t)
	encode := func() []byte {
		t.Helper()
		_, mod, _, err := upavet.CheckModuleVerbose(root)
		if err != nil {
			t.Fatal(err)
		}
		data, err := mod.Facts().Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("two loads of the same tree produced different facts encodings (%d vs %d bytes)", len(a), len(b))
	}
	if !bytes.Contains(a, []byte(`"sinkParams"`)) || !bytes.Contains(a, []byte(`"requiresLocks"`)) {
		t.Errorf("facts encoding looks empty; interprocedural summaries missing:\n%.2000s", a)
	}
}
