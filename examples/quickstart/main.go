// Quickstart: release a private count and a private sum over an in-memory
// dataset in a few lines of the public API.
package main

import (
	"fmt"
	"log"

	"upa"
)

// Visit is one user's visit record — the individual data UPA protects.
type Visit struct {
	UserAge  int
	Premium  bool
	Spend    float64
	Duration float64 // minutes
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	visits := syntheticVisits(50000)

	// A session fixes the privacy budget per release and carries the
	// RANGE ENFORCER history that defeats repeated-query attacks.
	session, err := upa.NewSession(
		upa.WithEpsilon(0.1),     // the paper's evaluation budget
		upa.WithSampleSize(1000), // n differing records (§IV-A default)
		upa.WithSeed(42),         // reproducible releases
	)
	if err != nil {
		return err
	}

	// How many premium users visited? A Count query: sensitivity is tiny
	// (each record changes the count by at most one), so the noisy answer
	// is accurate.
	premium := upa.Count("premium-visits", func(v Visit) bool { return v.Premium })
	res, err := upa.Release(session, premium, visits, nil)
	if err != nil {
		return err
	}
	exact, err := upa.Evaluate(session, premium, visits)
	if err != nil {
		return err
	}
	//upa:allow(dpflow) reviewed: pedagogical demo over synthetic data, exact/sensitivity shown to teach the mechanism
	fmt.Printf("premium visits:  exact %.0f, released %.1f (sensitivity %.3f)\n",
		exact[0], res.Output[0], res.Sensitivity[0])

	// Total spend: an arithmetic query FLEX-style static analysis cannot
	// handle; UPA infers its sensitivity from the data automatically.
	spend := upa.Sum("total-spend", func(v Visit) float64 { return v.Spend })
	res, err = upa.Release(session, spend, visits, nil)
	if err != nil {
		return err
	}
	exact, err = upa.Evaluate(session, spend, visits)
	if err != nil {
		return err
	}
	//upa:allow(dpflow) reviewed: pedagogical demo over synthetic data, exact/sensitivity shown to teach the mechanism
	fmt.Printf("total spend:     exact %.0f, released %.0f (sensitivity %.1f)\n",
		exact[0], res.Output[0], res.Sensitivity[0])

	// Mean session duration, with a domain sampler so "what if one more
	// user joined" neighbours are covered too.
	duration := upa.Mean("mean-duration", func(v Visit) float64 { return v.Duration })
	res, err = upa.Release(session, duration, visits, func(r *upa.RNG) Visit {
		return randomVisit(r.Uint64())
	})
	if err != nil {
		return err
	}
	//upa:allow(dpflow) reviewed: pedagogical demo over synthetic data, enforcer range shown to teach the mechanism
	fmt.Printf("mean duration:   released %.3f min (range [%.3f, %.3f])\n",
		res.Output[0], res.RangeLo[0], res.RangeHi[0])

	fmt.Printf("\nphases of the last release: sample=%v map=%v union-preserving-reduce=%v enforce=%v\n",
		res.Phases.PartitionSample, res.Phases.ParallelMap,
		res.Phases.UnionPreservingReduce, res.Phases.IDPEnforcement)

	// A private GROUP BY: one ε covers the whole histogram because each
	// record belongs to exactly one group (parallel composition).
	byAge := upa.KeyedQuery[Visit, string]{
		Name: "visits-by-age-band",
		Key: func(v Visit) string {
			switch {
			case v.UserAge < 30:
				return "18-29"
			case v.UserAge < 50:
				return "30-49"
			default:
				return "50+"
			}
		},
		Value: func(Visit) float64 { return 1 },
	}
	keyed, err := upa.ReleaseByKey(session, byAge, visits, nil)
	if err != nil {
		return err
	}
	fmt.Println("\nvisits by age band (one ε for the whole histogram):")
	for _, g := range keyed.Groups {
		fmt.Printf("  %-6s %8.0f\n", g.Key, g.Output)
	}

	// Budgeted sessions refuse to release once the ε ledger is spent.
	capped, err := upa.NewSession(
		upa.WithEpsilon(0.1), upa.WithSeed(42), upa.WithSampleSize(500),
		upa.WithTotalBudget(0.2), // room for exactly two releases
	)
	if err != nil {
		return err
	}
	for i := 1; i <= 3; i++ {
		_, err := upa.Release(capped, premium, visits, nil)
		fmt.Printf("budgeted release %d: ok=%v (remaining budget %.2g)\n",
			i, err == nil, capped.RemainingBudget())
	}
	return nil
}

func syntheticVisits(n int) []Visit {
	visits := make([]Visit, n)
	for i := range visits {
		visits[i] = randomVisit(uint64(i) * 2654435761)
	}
	return visits
}

// randomVisit derives a visit deterministically from a seed.
func randomVisit(seed uint64) Visit {
	h := func() uint64 {
		seed = (seed ^ (seed >> 30)) * 0xbf58476d1ce4e5b9
		seed = (seed ^ (seed >> 27)) * 0x94d049bb133111eb
		return seed ^ (seed >> 31)
	}
	return Visit{
		UserAge:  18 + int(h()%60),
		Premium:  h()%5 == 0,
		Spend:    float64(h()%20000) / 100,
		Duration: 1 + float64(h()%5900)/100,
	}
}
