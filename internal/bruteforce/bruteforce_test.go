package bruteforce

import (
	"math"
	"testing"
	"testing/quick"

	"upa/internal/core"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

func sumQuery() core.Query[float64] {
	return core.Query[float64]{
		Name:      "sum",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(x float64) core.State { return core.State{x} },
	}
}

func countQuery() core.Query[float64] {
	return core.Query[float64]{
		Name:      "count",
		StateDim:  1,
		OutputDim: 1,
		Map:       func(float64) core.State { return core.State{1} },
	}
}

func TestValidation(t *testing.T) {
	eng := mapreduce.NewEngine()
	if _, err := LocalSensitivity(eng, sumQuery(), []float64{1}, nil, 0, nil); err == nil {
		t.Error("single record accepted")
	}
	if _, err := LocalSensitivity(eng, core.Query[float64]{}, []float64{1, 2}, nil, 0, nil); err == nil {
		t.Error("invalid query accepted")
	}
	if _, err := LocalSensitivity(eng, sumQuery(), []float64{1, 2}, nil, 5, nil); err == nil {
		t.Error("additions without domain sampler accepted")
	}
	if _, err := NaiveLocalSensitivity(eng, sumQuery(), []float64{1}); err == nil {
		t.Error("naive: single record accepted")
	}
}

func TestSumSensitivityExact(t *testing.T) {
	// For a sum, the local sensitivity over removals is max |x_i|.
	eng := mapreduce.NewEngine()
	data := []float64{1, -7, 3, 2, 5}
	truth, err := LocalSensitivity(eng, sumQuery(), data, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if truth.Output[0] != 4 {
		t.Errorf("Output = %v, want 4", truth.Output)
	}
	if truth.LocalSensitivity[0] != 7 {
		t.Errorf("LocalSensitivity = %v, want 7", truth.LocalSensitivity)
	}
	if len(truth.RemovalOutputs) != 5 {
		t.Fatalf("removal outputs = %d, want 5", len(truth.RemovalOutputs))
	}
	// Min/Max of neighbouring outputs: sum - x_i ranges over [4-5, 4+7].
	if truth.MinOutput[0] != -1 || truth.MaxOutput[0] != 11 {
		t.Errorf("bounds = [%v, %v], want [-1, 11]", truth.MinOutput[0], truth.MaxOutput[0])
	}
}

func TestCountSensitivityIsOne(t *testing.T) {
	eng := mapreduce.NewEngine()
	data := make([]float64, 100)
	truth, err := LocalSensitivity(eng, countQuery(), data, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if truth.LocalSensitivity[0] != 1 {
		t.Errorf("count sensitivity = %v, want 1", truth.LocalSensitivity[0])
	}
}

func TestAdditionsExtendCensus(t *testing.T) {
	eng := mapreduce.NewEngine()
	data := []float64{1, 2, 3}
	domain := func(*stats.RNG) float64 { return 100 }
	truth, err := LocalSensitivity(eng, sumQuery(), data, domain, 4, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(truth.AdditionOutputs) != 4 {
		t.Fatalf("addition outputs = %d, want 4", len(truth.AdditionOutputs))
	}
	for _, o := range truth.AdditionOutputs {
		if o[0] != 106 {
			t.Fatalf("addition output = %v, want 106", o[0])
		}
	}
	// Sensitivity now dominated by the +100 addition.
	if truth.LocalSensitivity[0] != 100 {
		t.Errorf("sensitivity = %v, want 100", truth.LocalSensitivity[0])
	}
	if got := len(truth.AllNeighbourOutputs()); got != 7 {
		t.Errorf("AllNeighbourOutputs = %d entries, want 7", got)
	}
}

// TestNaiveMatchesFast verifies the two brute-force modes agree exactly on
// random inputs — the reuse is an optimization, not an approximation.
func TestNaiveMatchesFast(t *testing.T) {
	eng := mapreduce.NewEngine()
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v)
		}
		fast, err := LocalSensitivity(eng, sumQuery(), data, nil, 0, nil)
		if err != nil {
			return false
		}
		naive, err := NaiveLocalSensitivity(eng, sumQuery(), data)
		if err != nil {
			return false
		}
		if math.Abs(fast.Output[0]-naive.Output[0]) > 1e-6 {
			return false
		}
		if len(fast.RemovalOutputs) != len(naive.RemovalOutputs) {
			return false
		}
		for i := range fast.RemovalOutputs {
			if math.Abs(fast.RemovalOutputs[i][0]-naive.RemovalOutputs[i][0]) > 1e-6 {
				return false
			}
		}
		return math.Abs(fast.LocalSensitivity[0]-naive.LocalSensitivity[0]) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveCostsMore(t *testing.T) {
	data := make([]float64, 500)
	for i := range data {
		data[i] = float64(i)
	}
	engFast := mapreduce.NewEngine()
	if _, err := LocalSensitivity(engFast, sumQuery(), data, nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	engNaive := mapreduce.NewEngine()
	if _, err := NaiveLocalSensitivity(engNaive, sumQuery(), data); err != nil {
		t.Fatal(err)
	}
	fastOps := engFast.Metrics().ReduceOps
	naiveOps := engNaive.Metrics().ReduceOps
	if naiveOps < 50*fastOps {
		t.Fatalf("naive mode did not pay the quadratic cost: %d vs %d reduce ops", naiveOps, fastOps)
	}
}

func TestMultiDimensionalOutput(t *testing.T) {
	eng := mapreduce.NewEngine()
	q := core.Query[float64]{
		Name:      "sum-and-count",
		StateDim:  2,
		OutputDim: 2,
		Map:       func(x float64) core.State { return core.State{x, 1} },
	}
	data := []float64{10, 20, 30}
	truth, err := LocalSensitivity(eng, q, data, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if truth.LocalSensitivity[0] != 30 || truth.LocalSensitivity[1] != 1 {
		t.Errorf("sensitivity = %v, want [30, 1]", truth.LocalSensitivity)
	}
}
