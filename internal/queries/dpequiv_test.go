package queries

import (
	"testing"

	"upa/internal/core"
	"upa/internal/mapreduce"
	"upa/internal/sql"
	"upa/internal/tpch"
)

// TestOptimizerDPEquivalence is the DP-safety regression test for the plan
// optimizer: for every canned DP count plan, compiling through the
// optimizer (CompileDPCount → Execute) and compiling the plan as written
// (CompileDPCountRaw → ExecuteRaw) must produce byte-identical releases
// under a fixed seed — same noisy output, same sampled neighbouring
// outputs, same inferred sensitivity, and the same ε charged to the
// system's ledger. Any divergence means a rewrite changed a protected
// row's influence, which would silently re-shape the neighbouring
// distribution the privacy argument is about.
func TestOptimizerDPEquivalence(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{Lineitems: 2000, Skew: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		plan      sql.Plan
		protected string
	}{
		{"tpch1", TPCH1Plan(db), "lineitem"},
		{"tpch4", TPCH4Plan(db), "orders"},
		{"tpch13", TPCH13Plan(db), "orders"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			optimized := release(t, tc.plan, tc.protected, sql.CompileDPCount)
			raw := release(t, tc.plan, tc.protected, sql.CompileDPCountRaw)
			assertSameRelease(t, optimized, raw)
		})
	}
}

// TestColumnarDPEquivalence is the DP-safety regression test for the
// physical layer: the columnar execution path (CompileDPCount → Execute)
// and the row-only path over the same optimized plan
// (CompileDPCountRowOnly) must produce byte-identical releases under a
// fixed seed. Any divergence means a columnar kernel or a converter changed
// a protected row's influence — the float folds, group ordering, and
// shuffle layout of the vectorized aggregate must reproduce the row path's
// exactly.
func TestColumnarDPEquivalence(t *testing.T) {
	db, err := tpch.Generate(tpch.Config{Lineitems: 2000, Skew: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name      string
		plan      sql.Plan
		protected string
	}{
		{"tpch1", TPCH1Plan(db), "lineitem"},
		{"tpch4", TPCH4Plan(db), "orders"},
		{"tpch13", TPCH13Plan(db), "orders"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			columnar := release(t, tc.plan, tc.protected, sql.CompileDPCount)
			rowOnly := release(t, tc.plan, tc.protected, sql.CompileDPCountRowOnly)
			assertSameRelease(t, columnar, rowOnly)
		})
	}
}

// assertSameRelease requires two seeded releases to agree byte-for-byte on
// every result field and on the ε charged.
func assertSameRelease(t *testing.T, a, b releaseOutcome) {
	t.Helper()
	assertSameVector(t, "Output", a.res.Output, b.res.Output)
	assertSameVector(t, "VanillaOutput", a.res.VanillaOutput, b.res.VanillaOutput)
	assertSameVector(t, "RawOutput", a.res.RawOutput, b.res.RawOutput)
	assertSameVector(t, "Sensitivity", a.res.Sensitivity, b.res.Sensitivity)
	assertSameVector(t, "EmpiricalLocalSensitivity",
		a.res.EmpiricalLocalSensitivity, b.res.EmpiricalLocalSensitivity)
	if len(a.res.RemovalOutputs) != len(b.res.RemovalOutputs) {
		t.Fatalf("neighbour sample count diverged: %d vs %d",
			len(a.res.RemovalOutputs), len(b.res.RemovalOutputs))
	}
	for i := range a.res.RemovalOutputs {
		assertSameVector(t, "RemovalOutputs", a.res.RemovalOutputs[i], b.res.RemovalOutputs[i])
	}
	if a.res.SampleSize != b.res.SampleSize {
		t.Fatalf("sample size diverged: %d vs %d", a.res.SampleSize, b.res.SampleSize)
	}
	if a.epsilon != b.epsilon {
		t.Fatalf("ε ledger diverged: %v vs %v", a.epsilon, b.epsilon)
	}
}

type releaseOutcome struct {
	res     *core.Result
	epsilon float64
}

// release compiles the plan with the given DP compiler and runs one seeded
// release on a fresh engine and system.
func release(t *testing.T, plan sql.Plan, protected string,
	compiler func(*mapreduce.Engine, sql.Plan, string) (core.Query[sql.IndexedRow], []sql.IndexedRow, error)) releaseOutcome {
	t.Helper()
	eng := mapreduce.NewEngine()
	q, data, err := compiler(eng, plan, protected)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.SampleSize = 200
	cfg.Epsilon = 0.5
	cfg.Seed = 42
	sys, err := core.NewSystem(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(sys, q, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	return releaseOutcome{res: res, epsilon: sys.EpsilonSpent()}
}

func assertSameVector(t *testing.T, field string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s length diverged: optimized=%d raw=%d", field, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d] diverged: optimized=%v raw=%v", field, i, a[i], b[i])
		}
	}
}
