// Package errorwrap keeps the repository's typed error sentinels
// (ErrSpillCorrupt, ErrInjected, the serve admission errors, …) usable
// across package boundaries: a sentinel must be wrapped with %w — never
// formatted away with %v/%s — matched with errors.Is/errors.As — never
// compared with == or a switch — and never stringified with .Error() into
// user-visible output (which is also a dpflow sink). Any one of those
// mistakes silently breaks callers the moment an intermediate layer wraps
// the error, which is exactly how the spill store's corruption recovery
// and the serve layer's 429 handling are built.
//
// Sentinels are discovered module-wide: every package-level
// `var ErrX = errors.New(...)` (or fmt.Errorf) declaration, plus any
// imported through the vetx facts channel.
package errorwrap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"upa/internal/analyzers/analysis"
)

// Analyzer is the errorwrap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errorwrap",
	Doc: "requires typed error sentinels to be wrapped with %w, matched with " +
		"errors.Is/errors.As (never ==), and never stringified into user-visible " +
		"output",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if pass.Module == nil {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, x)
			case *ast.SwitchStmt:
				checkSwitch(pass, x)
			case *ast.CallExpr:
				checkErrorf(pass, x)
				checkStringify(pass, x)
			}
			return true
		})
	}
	return nil
}

// sentinelName resolves expr to a module error sentinel, handling both
// local references (ErrX) and package-qualified ones (spill.ErrX).
func sentinelName(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if !pass.Module.IsSentinel(pass.PkgPath, e.Name) {
			return "", false
		}
		// A local variable shadowing the sentinel name is not the sentinel:
		// the real one lives in the package scope (whose parent is Universe).
		if obj := pass.TypesInfo.Uses[e]; obj != nil && obj.Parent() != nil &&
			obj.Parent().Parent() != types.Universe {
			return "", false
		}
		return e.Name, true
	case *ast.SelectorExpr:
		id, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return "", false
		}
		path := pass.ImportPathOf(id)
		if path == "" || !pass.Module.IsSentinel(path, e.Sel.Name) {
			return "", false
		}
		return e.Sel.Name, true
	}
	return "", false
}

func checkComparison(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if name, ok := sentinelName(pass, side); ok {
			pass.Reportf(be.OpPos,
				"compare with errors.Is(err, "+name+"), not "+be.Op.String()+
					": identity breaks as soon as any layer wraps the sentinel with %w")
			return
		}
	}
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || sw.Body == nil {
		return
	}
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if name, ok := sentinelName(pass, e); ok {
				pass.Reportf(e.Pos(),
					"match with errors.Is(err, "+name+"), not a switch case: "+
						"identity breaks as soon as any layer wraps the sentinel with %w")
			}
		}
	}
}

// checkErrorf verifies that fmt.Errorf formats sentinel arguments with %w.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	path, fn, ok := pass.CalleePkgFunc(call)
	if !ok || path != "fmt" || fn != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := formatVerbs(format)
	for i, arg := range call.Args[1:] {
		name, isSentinel := sentinelName(pass, arg)
		if !isSentinel {
			continue
		}
		if i >= len(verbs) || verbs[i] != 'w' {
			got := "no verb"
			if i < len(verbs) {
				got = "%" + string(verbs[i])
			}
			pass.Reportf(arg.Pos(),
				"wrap "+name+" with %w (got "+got+") so errors.Is/errors.As keep matching across package boundaries")
		}
	}
}

// checkStringify flags sentinel.Error() calls: stringifying a typed
// sentinel severs the chain and hands dpflow-visible text to sinks.
func checkStringify(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return
	}
	if name, ok := sentinelName(pass, sel.X); ok {
		pass.Reportf(call.Pos(),
			"do not stringify "+name+" with .Error(): match with errors.Is and wrap with %w; "+
				"the string form is user-visible and unmatchable")
	}
}

// formatVerbs returns the verb letters of a fmt format string, in argument
// order. Width/precision stars and explicit argument indexes are rare in
// this repository and are not modeled.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] != '%' {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
