// Package bruteforce computes ground-truth local sensitivity by evaluating
// a query on every neighbouring dataset — the reference every accuracy
// experiment compares against (Definition II.1, the paper's "brute-force
// approach").
//
// Two modes exist. Exact mode evaluates all |x| removal neighbours (and a
// caller-chosen number of sampled addition neighbours, since the addition
// side of D is unbounded) using prefix/suffix partial reductions — the
// arithmetic is identical to evaluating each neighbour from scratch, only
// cheaper, so the result is still exact. Naive mode really does recompute
// every neighbour from scratch; it exists to measure the cost UPA avoids
// (the §VI-E linear-vs-constant overhead ablation).
package bruteforce

import (
	"fmt"
	"math"

	"upa/internal/core"
	"upa/internal/mapreduce"
	"upa/internal/stats"
)

// Truth is the exact neighbouring-output census of a query on a dataset.
type Truth struct {
	// Output is f(x).
	Output []float64
	// RemovalOutputs[i] is f(x - data[i]), for every record.
	RemovalOutputs [][]float64
	// AdditionOutputs are f(x + s̄) for sampled domain records.
	AdditionOutputs [][]float64
	// LocalSensitivity is, per coordinate, the greatest |f(x) - f(y)| over
	// every evaluated neighbour y. Pre-noise and data-dependent: dpflow
	// keeps it away from user-visible sinks.
	LocalSensitivity []float64 //upa:dpsource
	// MinOutput/MaxOutput bound, per coordinate, the neighbouring outputs —
	// the blue lines of Figure 3.
	MinOutput, MaxOutput []float64
}

// LocalSensitivity evaluates q on every removal neighbour of data plus
// nAdditions sampled addition neighbours (0 to skip; requires domain) and
// returns the exact census — a pre-noise, data-dependent artifact.
//
//upa:dpsource
func LocalSensitivity[T any](eng *mapreduce.Engine, q core.Query[T], data []T,
	domain func(*stats.RNG) T, nAdditions int, rng *stats.RNG) (*Truth, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("bruteforce: query %q needs at least two records", q.Name)
	}
	if nAdditions > 0 && domain == nil {
		return nil, fmt.Errorf("bruteforce: %d additions requested without a domain sampler", nAdditions)
	}

	reduce := reducerOf(q)
	states, err := mapAll(eng, q, data)
	if err != nil {
		return nil, err
	}

	n := len(states)
	pre := make([]core.State, n)
	suf := make([]core.State, n)
	pre[0] = states[0]
	for i := 1; i < n; i++ {
		pre[i] = reduce(pre[i-1], states[i])
	}
	suf[n-1] = states[n-1]
	for i := n - 2; i >= 0; i-- {
		suf[i] = reduce(states[i], suf[i+1])
	}
	eng.AccountReduceOps(int64(2 * (n - 1)))

	truth := &Truth{Output: finalizeOf(q, pre[n-1])}
	truth.RemovalOutputs = make([][]float64, n)
	for i := 0; i < n; i++ {
		var state core.State
		switch {
		case i == 0:
			state = suf[1]
		case i == n-1:
			state = pre[n-2]
		default:
			state = reduce(pre[i-1], suf[i+1])
			eng.AccountReduceOps(1)
		}
		truth.RemovalOutputs[i] = finalizeOf(q, state)
	}
	if nAdditions > 0 {
		additions := make([]T, nAdditions)
		for i := range additions {
			additions[i] = domain(rng)
		}
		addStates, err := mapAll(eng, q, additions)
		if err != nil {
			return nil, err
		}
		truth.AdditionOutputs = make([][]float64, nAdditions)
		for i, s := range addStates {
			truth.AdditionOutputs[i] = finalizeOf(q, reduce(pre[n-1], s))
		}
		eng.AccountReduceOps(int64(nAdditions))
	}

	truth.computeBounds(q.OutputDim)
	return truth, nil
}

// NaiveLocalSensitivity recomputes every removal neighbour from scratch —
// O(|x|) reduces per neighbour, O(|x|²) total — matching the cost model of
// the paper's brute-force strawman. Results equal LocalSensitivity's; only
// the work differs.
func NaiveLocalSensitivity[T any](eng *mapreduce.Engine, q core.Query[T], data []T) (*Truth, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(data) < 2 {
		return nil, fmt.Errorf("bruteforce: query %q needs at least two records", q.Name)
	}
	reduce := reducerOf(q)
	states, err := mapAll(eng, q, data)
	if err != nil {
		return nil, err
	}
	foldAllBut := func(skip int) core.State {
		var acc core.State
		for i, s := range states {
			if i == skip {
				continue
			}
			if acc == nil {
				acc = s
				continue
			}
			acc = reduce(acc, s)
		}
		eng.AccountReduceOps(int64(len(states) - 2))
		return acc
	}
	truth := &Truth{Output: finalizeOf(q, foldAllBut(-1))}
	truth.RemovalOutputs = make([][]float64, len(states))
	for i := range states {
		truth.RemovalOutputs[i] = finalizeOf(q, foldAllBut(i))
	}
	truth.computeBounds(q.OutputDim)
	return truth, nil
}

func (t *Truth) computeBounds(dim int) {
	t.LocalSensitivity = make([]float64, dim)
	t.MinOutput = make([]float64, dim)
	t.MaxOutput = make([]float64, dim)
	for d := 0; d < dim; d++ {
		t.MinOutput[d] = math.Inf(1)
		t.MaxOutput[d] = math.Inf(-1)
	}
	consider := func(out []float64) {
		for d := 0; d < dim; d++ {
			if diff := math.Abs(t.Output[d] - out[d]); diff > t.LocalSensitivity[d] {
				t.LocalSensitivity[d] = diff
			}
			if out[d] < t.MinOutput[d] {
				t.MinOutput[d] = out[d]
			}
			if out[d] > t.MaxOutput[d] {
				t.MaxOutput[d] = out[d]
			}
		}
	}
	for _, out := range t.RemovalOutputs {
		consider(out)
	}
	for _, out := range t.AdditionOutputs {
		consider(out)
	}
}

// AllNeighbourOutputs returns removal and addition outputs concatenated —
// the spots of Figure 3.
func (t *Truth) AllNeighbourOutputs() [][]float64 {
	out := make([][]float64, 0, len(t.RemovalOutputs)+len(t.AdditionOutputs))
	out = append(out, t.RemovalOutputs...)
	out = append(out, t.AdditionOutputs...)
	return out
}

func mapAll[T any](eng *mapreduce.Engine, q core.Query[T], records []T) ([]core.State, error) {
	parts := eng.Workers()
	if parts > len(records) {
		parts = len(records)
	}
	ds, err := mapreduce.FromSlice(eng, records, parts)
	if err != nil {
		return nil, err
	}
	return mapreduce.Map(ds, q.Map).Collect()
}

func reducerOf[T any](q core.Query[T]) mapreduce.Reducer[core.State] {
	if q.Reduce != nil {
		return q.Reduce
	}
	return core.VectorAdd
}

func finalizeOf[T any](q core.Query[T], state core.State) []float64 {
	if q.Finalize == nil {
		out := make([]float64, len(state))
		copy(out, state)
		return out
	}
	return q.Finalize(state)
}
