package mapreduce

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"upa/internal/chaos"
)

// TestExhaustionErrorCarriesSiteAndOriginalError is the regression test for
// the exhausted-retries error: the old scheduler returned
// "task %d: %v"-formatted text that dropped the lineage site and flattened
// the original error out of the chain, so callers could neither tell which
// stage died nor errors.Is against the injected fault. The error must now
// carry the site label, the partition index, and the original error by
// wrapping.
func TestExhaustionErrorCarriesSiteAndOriginalError(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithMaxAttempts(2))
	d, err := FromSlice(eng, intsUpTo(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.InjectFaults(10)
	_, err = d.Collect()
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("Collect = %v, want ErrTaskFailed", err)
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Errorf("original injected fault flattened out of the chain: %v", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "source:collect") {
		t.Errorf("error %q does not name the failing site", msg)
	}
	if !strings.Contains(msg, "task 0") {
		t.Errorf("error %q does not name the failing partition", msg)
	}
}

// chaosRun executes a ReduceByKey+Join pipeline on a fresh engine armed with
// the given injector and returns the collected outputs plus the metrics.
func chaosRun(t *testing.T, inj *chaos.Injector, policy chaos.RetryPolicy) ([]Pair[int, int], []Pair[int, Joined[int, string]], MetricsSnapshot) {
	t.Helper()
	eng := NewEngine(WithWorkers(4), WithRetryPolicy(policy), WithChaos(inj))
	pairs := make([]Pair[int, int], 300)
	for i := range pairs {
		pairs[i] = Pair[int, int]{Key: i % 11, Value: i}
	}
	labels := make([]Pair[int, string], 22)
	for i := range labels {
		labels[i] = Pair[int, string]{Key: i % 11, Value: string(rune('a' + i%11))}
	}
	d, err := FromSlice(eng, pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := FromSlice(eng, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	reduced := ReduceByKey(d, func(a, b int) int { return a + b })
	joined, err := Join(reduced, l)
	if err != nil {
		t.Fatal(err)
	}
	rOut, err := reduced.Collect()
	if err != nil {
		t.Fatalf("reduce under chaos: %v", err)
	}
	jOut, err := joined.Collect()
	if err != nil {
		t.Fatalf("join under chaos: %v", err)
	}
	return rOut, jOut, eng.Metrics()
}

// TestSeededChaosOutputInvariant is the engine-level half of the headline
// invariant: under seeded task faults, stragglers, shuffle errors, and slot
// loss, a wide pipeline's output is identical to the fault-free run, every
// logical task still runs exactly once, and the attempt count exceeds the
// clean run by exactly the faults injected.
func TestSeededChaosOutputInvariant(t *testing.T) {
	policy := chaos.RetryPolicy{MaxAttempts: 6, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 100 * time.Microsecond, Jitter: 0.5, JitterSeed: 3}
	cleanR, cleanJ, cleanM := chaosRun(t, nil, policy)
	for seed := uint64(1); seed <= 5; seed++ {
		inj := chaos.New(chaos.Policy{
			Seed:             seed,
			TaskFaultRate:    0.15,
			StragglerRate:    0.1,
			StragglerDelay:   100 * time.Microsecond,
			ShuffleErrorRate: 0.2,
			SlotLossRate:     0.25,
		})
		r, j, m := chaosRun(t, inj, policy)
		if !reflect.DeepEqual(r, cleanR) {
			t.Fatalf("seed %d: reduce output diverged under chaos", seed)
		}
		if !reflect.DeepEqual(j, cleanJ) {
			t.Fatalf("seed %d: join output diverged under chaos", seed)
		}
		if m.TasksRun != cleanM.TasksRun {
			t.Errorf("seed %d: TasksRun = %d under chaos, %d clean", seed, m.TasksRun, cleanM.TasksRun)
		}
		if m.TaskAttempts-m.TaskFaults != cleanM.TaskAttempts {
			t.Errorf("seed %d: fault-adjusted attempts %d-%d != clean %d",
				seed, m.TaskAttempts, m.TaskFaults, cleanM.TaskAttempts)
		}
		if c := inj.Snapshot(); c.Faults > 0 && m.TaskRetries == 0 {
			t.Errorf("seed %d: %d faults injected but no retries recorded", seed, c.Faults)
		}
	}
}

// TestSeededChaosReproducible: the same seed must produce the same fault
// pattern (same injector counters), which is what makes soak failures
// replayable.
func TestSeededChaosReproducible(t *testing.T) {
	policy := chaos.RetryPolicy{MaxAttempts: 6}
	p := chaos.Policy{Seed: 99, TaskFaultRate: 0.2, ShuffleErrorRate: 0.2}
	a, b := chaos.New(p), chaos.New(p)
	_, _, mA := chaosRun(t, a, policy)
	_, _, mB := chaosRun(t, b, policy)
	if a.Snapshot() != b.Snapshot() {
		t.Errorf("same seed, different injections: %+v vs %+v", a.Snapshot(), b.Snapshot())
	}
	if mA.TaskFaults != mB.TaskFaults || mA.TaskRetries != mB.TaskRetries {
		t.Errorf("same seed, different retry metrics: %+v vs %+v", mA, mB)
	}
}

// TestRetryBudgetFailsFast: once the per-job retry budget is spent, the next
// failure is terminal even though the task has attempts left.
func TestRetryBudgetFailsFast(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 10, RetryBudget: 1}))
	d, err := FromSlice(eng, intsUpTo(10), 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.InjectFaults(5)
	_, err = d.Collect()
	if !errors.Is(err, ErrTaskFailed) {
		t.Fatalf("Collect = %v, want ErrTaskFailed", err)
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("error %q does not mention the exhausted budget", err)
	}
	if got := eng.Metrics().TaskRetries; got != 1 {
		t.Errorf("TaskRetries = %d, want exactly the budget of 1", got)
	}
}

// TestTaskDeadlineRetries: an attempt exceeding the per-attempt deadline is
// cancelled and retried while the job itself stays live.
func TestTaskDeadlineRetries(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 3, TaskDeadline: 5 * time.Millisecond}))
	var attempts atomic.Int64
	err := eng.runTasks(context.Background(), "test:deadline", 1, func(tctx context.Context, _ int) error {
		if attempts.Add(1) == 1 {
			<-tctx.Done() // hang until the attempt deadline fires
			return tctx.Err()
		}
		return nil
	})
	if err != nil {
		t.Fatalf("runTasks = %v, want recovery on second attempt", err)
	}
	m := eng.Metrics()
	if m.DeadlinesExceeded != 1 {
		t.Errorf("DeadlinesExceeded = %d, want 1", m.DeadlinesExceeded)
	}
	if m.TasksRun != 1 || attempts.Load() != 2 {
		t.Errorf("TasksRun = %d, attempts = %d, want 1 and 2", m.TasksRun, attempts.Load())
	}
}

// TestParentCancellationBeatsDeadline: when the job's own context dies, the
// deadline classification must not mistake it for a straggling attempt.
func TestParentCancellationBeatsDeadline(t *testing.T) {
	eng := NewEngine(WithWorkers(1), WithRetryPolicy(chaos.RetryPolicy{MaxAttempts: 5, TaskDeadline: time.Minute}))
	ctx, cancel := context.WithCancel(context.Background())
	err := eng.runTasks(ctx, "test:parent-cancel", 1, func(tctx context.Context, _ int) error {
		cancel()
		<-tctx.Done()
		return tctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runTasks = %v, want context.Canceled", err)
	}
	if got := eng.Metrics().DeadlinesExceeded; got != 0 {
		t.Errorf("DeadlinesExceeded = %d, want 0 (parent died, not the attempt)", got)
	}
}

// TestSlotLossRedistributesWork: losing worker slots must not lose tasks.
func TestSlotLossRedistributesWork(t *testing.T) {
	inj := chaos.New(chaos.Policy{Seed: 5, SlotLossRate: 0.9})
	eng := NewEngine(WithWorkers(8), WithChaos(inj))
	d, err := FromSlice(eng, intsUpTo(100), 16)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Reduce(d, func(a, b int) int { return a + b })
	if err != nil {
		t.Fatalf("Reduce = %v, want success despite slot loss", err)
	}
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
	if got := eng.Metrics().SlotsLost; got == 0 {
		t.Error("no slots lost at rate 0.9 over 8 slots")
	}
}
