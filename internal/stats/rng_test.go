package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: generators with equal seeds diverged: %d vs %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical outputs of 100", same)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	s1 := parent.Split(1)
	s2 := parent.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("splits with distinct labels produced the same first output")
	}
	// Splitting with the same label from the same state is deterministic.
	p1 := NewRNG(7).Split(1)
	p2 := NewRNG(7).Split(1)
	if p1.Uint64() != p2.Uint64() {
		t.Fatal("identical splits diverged")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRNG(9)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Fatalf("bucket %d has %d hits, want about %.0f", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want about 1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential variate negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want about 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleIndicesProperties(t *testing.T) {
	r := NewRNG(23)
	f := func(nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw % 600)
		idx := r.SampleIndices(n, k)
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(idx) != wantLen {
			return false
		}
		seen := make(map[int]bool, len(idx))
		for _, v := range idx {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleIndicesFloydUniform(t *testing.T) {
	// Sparse draws take the Floyd path; every index must be selected with
	// probability k/n.
	r := NewRNG(31)
	const n, k, trials = 200, 10, 20000
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		for _, idx := range r.SampleIndices(n, k) {
			counts[idx]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Fatalf("index %d selected %d times, want about %.0f", i, c, want)
		}
	}
}

func TestSampleIndicesEdgeCases(t *testing.T) {
	r := NewRNG(29)
	if got := r.SampleIndices(10, 0); got != nil {
		t.Fatalf("SampleIndices(10, 0) = %v, want nil", got)
	}
	if got := r.SampleIndices(0, 5); got != nil {
		t.Fatalf("SampleIndices(0, 5) = %v, want nil", got)
	}
	if got := r.SampleIndices(5, 99); len(got) != 5 {
		t.Fatalf("SampleIndices(5, 99) returned %d indices, want 5", len(got))
	}
}
