package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"upa/internal/checksum"
)

// Entry kinds of the persistence log. One entry type serves both the
// append-only journal and the snapshot (a snapshot is just a compacted
// entry sequence), so restart replay is a single code path.
const (
	entryTenant  = "tenant"  // register/re-budget a tenant
	entryCharge  = "charge"  // admission charged (tenant, user) eps
	entryRefund  = "refund"  // a failed release returned its charge
	entryRelease = "release" // a release was published under Key
)

// entry is one persisted ledger/cache movement.
type entry struct {
	// Seq orders entries across the snapshot/journal boundary; assigned by
	// the Store on append.
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`
	// Tenant/User/Eps describe ledger movements; Budget/UserBudget ride on
	// registrations.
	Tenant     string  `json:"tenant,omitempty"`
	User       string  `json:"user,omitempty"`
	Eps        float64 `json:"eps,omitempty"`
	Budget     float64 `json:"budget,omitempty"`
	UserBudget float64 `json:"userBudget,omitempty"`
	// Key and Release carry a published release into the cache.
	Key     string         `json:"key,omitempty"`
	Release *CachedRelease `json:"release,omitempty"`
}

// snapshotFile is the JSON shape of the snapshot: the sequence number the
// compaction happened at plus the compacted entry list.
type snapshotFile struct {
	Seq     uint64  `json:"seq"`
	Entries []entry `json:"entries"`
}

// Store persists the serving state as a JSON snapshot plus an append-only
// JSONL journal of everything since: every ledger charge/refund/registration
// and every published release is appended — and fsynced — as it happens, and
// a restart replays snapshot entries then the journal entries newer than the
// snapshot (Seq orders across that boundary, so a crash between writing the
// snapshot and truncating the journal never double-counts a movement). Flush
// compacts the current state into a fresh snapshot and truncates the journal
// — the graceful-shutdown path — but an unflushed crash loses nothing: the
// journal already holds every acknowledged movement, durably.
type Store struct {
	mu          sync.Mutex
	snapPath    string
	journalPath string
	journal     *os.File
	seq         uint64
}

// OpenStore opens (or creates) the persistence pair rooted at path: the
// snapshot lives at path, the journal at path+".journal". It returns the
// store and the full replay sequence — snapshot entries first, then
// journal entries — which the caller feeds through Ledger.replayEntry and
// Cache.replay before serving.
func OpenStore(path string) (*Store, []entry, error) {
	if path == "" {
		return nil, nil, fmt.Errorf("serve: empty store path")
	}
	st := &Store{snapPath: path, journalPath: path + ".journal"}

	var replay []entry
	snap, err := readSnapshot(st.snapPath)
	if err != nil {
		return nil, nil, err
	}
	if snap != nil {
		replay = append(replay, snap.Entries...)
		st.seq = snap.Seq
	}
	journalEntries, err := readJournal(st.journalPath)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range journalEntries {
		// A crash between Flush's snapshot rename and its journal truncation
		// leaves a journal whose prefix is already folded into the snapshot;
		// replaying those entries again would double-count every ε movement.
		if snap != nil && e.Seq <= snap.Seq {
			continue
		}
		replay = append(replay, e)
		if e.Seq > st.seq {
			st.seq = e.Seq
		}
	}

	f, err := os.OpenFile(st.journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st.journal = f
	return st, replay, nil
}

// snapshotChecksumPrefix heads a checksummed snapshot: the CRC-32C of every
// byte after the first newline, so any bit rot in the ε accounting is a loud
// boot failure instead of a silently wrong ledger. The snapshot is written
// atomically (rename), so unlike the journal there is no torn-tail shape to
// tolerate — a mismatch is always corruption.
const snapshotChecksumPrefix = "#crc32c="

// readSnapshot loads the snapshot file, nil when absent. Checksummed
// snapshots are verified whole-file; a legacy snapshot (bare JSON from
// before the checksum header) still parses.
func readSnapshot(path string) (*snapshotFile, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte(snapshotChecksumPrefix)) {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("serve: corrupt snapshot %s: checksum header has no body", path)
		}
		want, perr := strconv.ParseUint(string(data[len(snapshotChecksumPrefix):nl]), 16, 32)
		if perr != nil {
			return nil, fmt.Errorf("serve: corrupt snapshot %s: malformed checksum header", path)
		}
		body := data[nl+1:]
		if checksum.Sum(body) != uint32(want) {
			return nil, fmt.Errorf("serve: corrupt snapshot %s: checksum mismatch (ε accounting cannot be trusted)", path)
		}
		data = body
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("serve: corrupt snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// readJournal loads every complete journal line. Exactly one kind of damage
// is tolerated: an unparsable FINAL line (the process died mid-append), whose
// movement never returned success to a client. An unparsable line with data
// after it is not a torn tail — it is corruption, and silently dropping the
// entries behind it would under-count ε spend, so the boot fails instead.
func readJournal(path string) ([]entry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []entry
	badLine := 0 // 1-based line number of the first unparsable line
	lineNo := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if badLine != 0 {
			return nil, fmt.Errorf(
				"serve: corrupt journal %s: unparsable line %d is followed by more entries (only a torn final line is tolerated)",
				path, badLine)
		}
		e, err := parseJournalLine(line)
		if err != nil {
			badLine = lineNo // torn tail if nothing follows, corruption otherwise
			continue
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return nil, err
	}
	return out, nil
}

// parseJournalLine decodes one journal line. Checksummed lines carry the
// format "<8-hex-crc32c> <json>" with the CRC over the JSON bytes; legacy
// lines (bare JSON, first byte '{') from journals written before the
// checksum prefix still parse. A CRC mismatch is indistinguishable from an
// unparsable line to the caller — both feed the torn-tail-vs-corruption
// decision — but the checksum catches the damage a flipped byte inside a
// still-valid JSON number would otherwise smuggle into the ε ledger.
func parseJournalLine(line []byte) (entry, error) {
	var e entry
	payload := line
	if line[0] != '{' {
		if len(line) < 10 || line[8] != ' ' {
			return e, fmt.Errorf("malformed checksum prefix")
		}
		want, err := strconv.ParseUint(string(line[:8]), 16, 32)
		if err != nil {
			return e, fmt.Errorf("malformed checksum prefix: %v", err)
		}
		payload = line[9:]
		if checksum.Sum(payload) != uint32(want) {
			return e, fmt.Errorf("line checksum mismatch")
		}
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, err
	}
	return e, nil
}

// Append assigns the next sequence number, writes the entry as one
// CRC-prefixed journal line, and fsyncs it. The sync is what makes a
// journaled ε charge durable against power loss, not just process death —
// losing an acknowledged charge under-counts spend, the one direction the
// ledger must never err in; the per-line CRC makes later bit rot of a synced
// charge detectable at replay instead of silently mis-counting it.
func (st *Store) Append(e entry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return fmt.Errorf("serve: store is closed")
	}
	st.seq++
	e.Seq = st.seq
	payload, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line := make([]byte, 0, len(payload)+10)
	line = append(line, fmt.Sprintf("%08x ", checksum.Sum(payload))...)
	line = append(line, payload...)
	line = append(line, '\n')
	if _, err := st.journal.Write(line); err != nil {
		return err
	}
	return st.journal.Sync()
}

// Flush writes the compacted state as a fresh snapshot (atomically, via
// rename) and truncates the journal. Call it on graceful shutdown or
// periodically; the journal alone is always sufficient for replay.
func (st *Store) Flush(compacted []entry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	snap := snapshotFile{Seq: st.seq, Entries: compacted}
	body, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data := make([]byte, 0, len(body)+len(snapshotChecksumPrefix)+9)
	data = append(data, fmt.Sprintf("%s%08x\n", snapshotChecksumPrefix, checksum.Sum(body))...)
	data = append(data, body...)
	tmp := st.snapPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, st.snapPath); err != nil {
		return err
	}
	if st.journal != nil {
		if err := st.journal.Truncate(0); err != nil {
			return err
		}
		if _, err := st.journal.Seek(0, io.SeekStart); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the journal file. It does not flush: callers decide whether
// shutdown compacts (Service.Close does).
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.journal == nil {
		return nil
	}
	err := st.journal.Close()
	st.journal = nil
	return err
}
