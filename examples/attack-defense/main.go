// Attack and defense: the threat model of the paper (§III) played out. An
// analyst who knows everything about a dataset except whether one target
// record is in it reruns the same query on neighbouring inputs, hoping to
// difference the answers down to that single record. The RANGE ENFORCER
// detects the repetition from the partition outputs and removes records
// from the release, so the difference no longer isolates the target.
package main

import (
	"fmt"
	"log"

	"upa"
)

// Salary is the sensitive record; the attacker wants to learn whether the
// CEO's salary record is in the payroll extract.
type Salary struct {
	Employee string
	Amount   float64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	payroll := make([]Salary, 0, 5001)
	for i := 0; i < 5000; i++ {
		payroll = append(payroll, Salary{
			Employee: fmt.Sprintf("emp-%04d", i),
			Amount:   40000 + float64((i*7919)%60000),
		})
	}
	target := Salary{Employee: "ceo", Amount: 2_000_000}
	withTarget := append(append([]Salary{}, payroll...), target)

	session, err := upa.NewSession(upa.WithEpsilon(0.1), upa.WithSeed(99))
	if err != nil {
		return err
	}
	total := upa.Sum("payroll-total", func(s Salary) float64 { return s.Amount })

	fmt.Println("attack: difference two releases of the same query on neighbouring datasets")
	fmt.Printf("target record: %s, amount %.0f\n\n", target.Employee, target.Amount)

	first, err := upa.Release(session, total, withTarget, nil)
	if err != nil {
		return err
	}
	fmt.Printf("release 1 (with target):    %14.0f   attack suspected: %v\n",
		first.Output[0], first.AttackSuspected)

	second, err := upa.Release(session, total, payroll, nil)
	if err != nil {
		return err
	}
	fmt.Printf("release 2 (without target): %14.0f   attack suspected: %v, records removed: %d\n",
		second.Output[0], second.AttackSuspected, second.RemovedRecords)

	diff := first.Output[0] - second.Output[0]
	fmt.Printf("\nanalyst's difference: %.0f\n", diff)
	fmt.Printf("true target amount:   %.0f\n", target.Amount)
	fmt.Println()
	switch {
	case second.AttackSuspected && second.RemovedRecords >= 2:
		fmt.Println("defense held: the enforcer matched release 2 against release 1's")
		fmt.Println("partition outputs, removed records from the released dataset, and the")
		fmt.Println("difference no longer pins down the target record. On top of that, each")
		fmt.Println("answer carries Laplace noise scaled to the inferred local sensitivity")
		//upa:allow(dpflow) reviewed: pedagogical demo over synthetic data — the narration explains what the sensitivity is
		fmt.Printf("(%.0f and %.0f here), hiding any single record's contribution.\n",
			first.Sensitivity[0], second.Sensitivity[0])
	default:
		fmt.Println("unexpected: the enforcer did not flag the repetition")
	}

	// A fresh, unrelated query is not penalized.
	headcount := upa.Count("headcount", func(Salary) bool { return true })
	third, err := upa.Release(session, headcount, withTarget, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nunrelated query (headcount): %.1f, attack suspected: %v (no false positive)\n",
		third.Output[0], third.AttackSuspected)
	return nil
}
