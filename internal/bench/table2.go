package bench

import (
	"fmt"
	"strings"

	"upa/internal/mapreduce"
	"upa/internal/queries"
)

// SupportRow is one row of Table II.
type SupportRow struct {
	Query         string
	DatasetRows   int
	Kind          queries.Kind
	UPASupported  bool // always true: UPA supports all nine queries
	FLEXSupported bool
}

// Table2 regenerates Table II: the query support matrix.
func Table2(cfg Config) ([]SupportRow, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w, err := cfg.Workload(0)
	if err != nil {
		return nil, err
	}
	eng := mapreduce.NewEngine()
	rows := make([]SupportRow, 0, 9)
	for _, r := range w.All() {
		plan, err := r.FLEXPlan(eng)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", r.Name(), err)
		}
		rows = append(rows, SupportRow{
			Query:         r.Name(),
			DatasetRows:   r.DatasetSize(),
			Kind:          r.Kind(),
			UPASupported:  true,
			FLEXSupported: plan.Supported(),
		})
	}
	return rows, nil
}

// RenderTable2 renders the support matrix as aligned text.
func RenderTable2(rows []SupportRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: evaluation queries and support matrix\n")
	fmt.Fprintf(&b, "%-18s %12s %-17s %-6s %-6s\n", "Query", "Rows", "Type", "UPA", "FLEX")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12d %-17s %-6s %-6s\n",
			r.Query, r.DatasetRows, r.Kind, mark(r.UPASupported), mark(r.FLEXSupported))
	}
	return b.String()
}

func mark(ok bool) string {
	if ok {
		return "yes"
	}
	return "no"
}
