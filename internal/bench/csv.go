package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// CSV writers for every experiment's rows, so the figures can be re-plotted
// with external tooling. Each writer emits a header row followed by one
// record per table row; numbers use full float precision.

// WriteTable2CSV writes the support matrix.
func WriteTable2CSV(w io.Writer, rows []SupportRow) error {
	return writeCSV(w, []string{"query", "rows", "kind", "upa", "flex"}, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Query, itoa(r.DatasetRows), string(r.Kind),
			strconv.FormatBool(r.UPASupported), strconv.FormatBool(r.FLEXSupported)}
	})
}

// WriteFig2aCSV writes the sensitivity-RMSE rows.
func WriteFig2aCSV(w io.Writer, rows []SensitivityRow) error {
	header := []string{"query", "upa_rel_rmse", "flex_rel_rmse", "flex_supported",
		"mean_truth", "mean_upa", "mean_flex"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Query, ftoa(r.UPARelRMSE), ftoa(r.FLEXRelRMSE),
			strconv.FormatBool(r.FLEXSupported), ftoa(r.MeanTruth), ftoa(r.MeanUPA), ftoa(r.MeanFLEX)}
	})
}

// WriteFig2bCSV writes the measured overhead rows.
func WriteFig2bCSV(w io.Writer, rows []OverheadRow) error {
	header := []string{"query", "vanilla_us", "upa_us", "normalized",
		"vanilla_shuffles", "upa_shuffles"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Query, dtoa(r.VanillaTime), dtoa(r.UPATime), ftoa(r.Normalized),
			itoa64(r.VanillaShuffles), itoa64(r.UPAShuffles)}
	})
}

// WriteFig2bSimCSV writes the simulated-testbed overhead rows.
func WriteFig2bSimCSV(w io.Writer, rows []SimulatedOverheadRow) error {
	header := []string{"query", "vanilla_sim_us", "upa_sim_us", "normalized"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Query, dtoa(r.VanillaCost), dtoa(r.UPACost), ftoa(r.Normalized)}
	})
}

// WriteFig3CSV writes one record per (query, sample size).
func WriteFig3CSV(w io.Writer, rows []CoverageRow) error {
	header := []string{"query", "sample_size", "range_lo", "range_hi", "coverage",
		"true_min", "true_max", "neighbours", "normality_ks"}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		for i, n := range r.SampleSizes {
			rec := []string{r.Query, itoa(n), ftoa(r.RangeLo[i]), ftoa(r.RangeHi[i]),
				ftoa(r.Coverage[i]), ftoa(r.TrueMin), ftoa(r.TrueMax),
				itoa(r.NeighbourCount), ftoa(r.NormalityKS)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig4aCSV writes the dataset-size sweep.
func WriteFig4aCSV(w io.Writer, rows []ScaleRow) error {
	header := []string{"scale", "lineitems", "mean_normalized"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{itoa(r.ScaleFactor), itoa(r.Lineitems), ftoa(r.MeanNormalized)}
	})
}

// WriteStagesCSV writes the per-stage release breakdown.
func WriteStagesCSV(w io.Writer, rows []StageRow) error {
	header := []string{"query", "stage", "deps", "measured_us", "records", "shuffled_records",
		"shuffle_bytes", "reduce_ops", "cache_hits", "records_combined", "attempts",
		"speculative", "task_faults", "retries", "sim_us", "critical"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Query, r.Stage, strings.Join(r.Deps, ";"), dtoa(r.Measured),
			itoa64(r.Records), itoa64(r.ShuffledRecords), itoa64(r.ShuffleBytes),
			itoa64(r.ReduceOps), itoa64(r.CacheHits), itoa64(r.RecordsCombined),
			itoa(r.Attempts), itoa(r.Speculative), itoa64(r.TaskFaults), itoa64(r.Retries),
			dtoa(r.SimCost), strconv.FormatBool(r.Critical)}
	})
}

// WriteShuffleCSV writes the map-side-combine shuffle experiment rows.
func WriteShuffleCSV(w io.Writer, rows []ShuffleRow) error {
	header := []string{"skew", "records", "partitions", "distinct_keys",
		"raw_shuffled", "combined_shuffled", "combined_away", "reduction",
		"combined_sim_us", "raw_sim_us"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{ftoa(r.Skew), itoa(r.Records), itoa(r.Partitions), itoa(r.DistinctKeys),
			itoa64(r.RawShuffled), itoa64(r.CombinedShuffled), itoa64(r.CombinedAway),
			ftoa(r.Reduction), dtoa(r.CombinedSimCost), dtoa(r.RawSimCost)}
	})
}

// WriteOptimizerCSV writes the plan-optimizer raw-vs-optimized rows.
func WriteOptimizerCSV(w io.Writer, rows []OptimizerRow) error {
	header := []string{"workload", "query", "lineitems", "raw_shuffled", "opt_shuffled",
		"raw_mapped", "opt_mapped", "raw_cells", "opt_cells",
		"shuffle_reduction", "map_reduction", "cell_reduction",
		"raw_us", "opt_us", "rowonly_us", "columnar_speedup",
		"records_batched", "batches_processed", "rewrites"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Workload, r.Query, itoa(r.Lineitems),
			itoa64(r.RawShuffled), itoa64(r.OptShuffled),
			itoa64(r.RawMapped), itoa64(r.OptMapped),
			itoa64(r.RawCells), itoa64(r.OptCells),
			ftoa(r.ShuffleReduction), ftoa(r.MapReduction), ftoa(r.CellReduction),
			dtoa(r.RawTime), dtoa(r.OptTime), dtoa(r.RowOnlyTime), ftoa(r.ColumnarSpeedup),
			itoa64(r.RecordsBatched), itoa64(r.BatchesProcessed), itoa(r.Rewrites)}
	})
}

// WriteSpillCSV writes the out-of-core memory-budget sweep.
func WriteSpillCSV(w io.Writer, rows []SpillRow) error {
	header := []string{"budget", "records", "partitions", "distinct_keys",
		"spilled_bytes", "spill_files", "spill_reads", "wall_us", "slowdown",
		"fault_corruptions_detected", "fault_recomputes", "fault_write_retries",
		"fault_fallbacks_in_memory", "fault_wall_us"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{itoa64(r.Budget), itoa(r.Records), itoa(r.Partitions), itoa(r.DistinctKeys),
			itoa64(r.SpilledBytes), itoa64(r.SpillFiles), itoa64(r.SpillReads),
			dtoa(r.WallTime), ftoa(r.Slowdown),
			itoa64(r.FaultCorruptions), itoa64(r.FaultRecomputes), itoa64(r.FaultWriteRetries),
			itoa64(r.FaultFallbacks), dtoa(r.FaultWallTime)}
	})
}

// WriteChaosCSV writes the chaos fault-rate × retry-policy sweep.
func WriteChaosCSV(w io.Writer, rows []ChaosRow) error {
	header := []string{"query", "fault_rate", "policy", "max_attempts", "completed",
		"deterministic", "task_faults", "task_retries", "shuffle_retries", "slots_lost",
		"backoff_us", "sim_us", "sim_retry_us", "overhead"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{r.Query, ftoa(r.FaultRate), r.Policy, itoa(r.MaxAttempts),
			strconv.FormatBool(r.Completed), strconv.FormatBool(r.Deterministic),
			itoa64(r.TaskFaults), itoa64(r.TaskRetries), itoa64(r.ShuffleRetries),
			itoa64(r.SlotsLost), dtoa(r.Backoff), dtoa(r.SimCost), dtoa(r.SimRetry),
			ftoa(r.Overhead)}
	})
}

// WriteFig4bCSV writes the sample-size sweep.
func WriteFig4bCSV(w io.Writer, rows []SampleSizeRow) error {
	header := []string{"sample_size", "mean_time_us", "mean_cache_hit_rate"}
	return writeCSV(w, header, len(rows), func(i int) []string {
		r := rows[i]
		return []string{itoa(r.SampleSize), dtoa(r.MeanTime), ftoa(r.MeanCacheHitRate)}
	})
}

func writeCSV(w io.Writer, header []string, n int, record func(i int) []string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		rec := record(i)
		if len(rec) != len(header) {
			return fmt.Errorf("bench: csv row %d has %d fields, header has %d", i, len(rec), len(header))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func itoa(v int) string     { return strconv.Itoa(v) }
func itoa64(v int64) string { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
func dtoa(d time.Duration) string {
	return strconv.FormatFloat(float64(d)/float64(time.Microsecond), 'g', -1, 64)
}
