// Package relation provides the relational metadata layer over the engine:
// column statistics (row counts, distinct keys, maximum key frequency)
// computed as MapReduce jobs. FLEX's static analysis consumes exactly this
// metadata — it never looks at actual join matches, which is the root of its
// overestimation (§II-B).
package relation

import (
	"fmt"

	"upa/internal/mapreduce"
)

// ColumnStats summarizes one join column of one relation.
type ColumnStats struct {
	// RowCount is the number of rows in the relation.
	RowCount int
	// Distinct is the number of distinct keys in the column.
	Distinct int
	// MaxFreq is the frequency of the most frequently occurring key — the
	// quantity FLEX multiplies into its worst-case join sensitivity.
	MaxFreq int
}

// KeyFrequency computes the statistics of the column selected by key over
// records, as a ReduceByKey job on the engine.
func KeyFrequency[T any, K comparable](eng *mapreduce.Engine, records []T, key func(T) K) (ColumnStats, error) {
	if len(records) == 0 {
		return ColumnStats{}, nil
	}
	parts := eng.Workers()
	if parts > len(records) {
		parts = len(records)
	}
	ds, err := mapreduce.FromSlice(eng, records, parts)
	if err != nil {
		return ColumnStats{}, err
	}
	ones := mapreduce.Map(ds, func(t T) mapreduce.Pair[K, int] {
		return mapreduce.Pair[K, int]{Key: key(t), Value: 1}
	})
	counts, err := mapreduce.ReduceByKey(ones, func(a, b int) int { return a + b }).Collect()
	if err != nil {
		return ColumnStats{}, err
	}
	stats := ColumnStats{RowCount: len(records), Distinct: len(counts)}
	for _, p := range counts {
		if p.Value > stats.MaxFreq {
			stats.MaxFreq = p.Value
		}
	}
	return stats, nil
}

// Validate checks internal consistency of the statistics.
func (s ColumnStats) Validate() error {
	if s.RowCount < 0 || s.Distinct < 0 || s.MaxFreq < 0 {
		return fmt.Errorf("relation: negative statistic: %+v", s)
	}
	if s.Distinct > s.RowCount {
		return fmt.Errorf("relation: %d distinct keys in %d rows", s.Distinct, s.RowCount)
	}
	if s.MaxFreq > s.RowCount {
		return fmt.Errorf("relation: max frequency %d exceeds %d rows", s.MaxFreq, s.RowCount)
	}
	if s.RowCount > 0 && (s.Distinct == 0 || s.MaxFreq == 0) {
		return fmt.Errorf("relation: non-empty relation with empty column stats: %+v", s)
	}
	return nil
}
