// Package colbatch is the columnar execution substrate of the SQL layer's
// physical plans: a Batch holds a fixed window of rows decomposed into typed
// per-column slices ([]int64, []float64, []string, []bool) plus a selection
// vector, and kernels.go provides the vectorized filter/project primitives
// that operate a column at a time instead of a boxed value at a time
// (MonetDB/X100-style vectorization). The package is deliberately free of
// the sql package — the sql layer owns the loss-free Row↔Batch converters —
// and free of time and randomness, so it sits inside the seededdeterminism
// analyzer's critical prefix set.
//
// Kernels compute over the full column length and ignore the selection
// vector; selection is applied only at materialization seams (gathering rows
// back out, folding an aggregate). Computing dead lanes is safe because
// every vectorizable expression is infallible — the sql vectorizer rejects
// division and mixed-kind comparisons, the only fallible scalar operators —
// and it keeps the inner loops branch-free.
package colbatch

// Kind is a column's element type. The four kinds mirror the SQL value
// kinds; the zero Kind is invalid.
type Kind int

// Column kinds.
const (
	Int64 Kind = iota + 1
	Float64
	String
	Bool
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return "invalid"
	}
}

// Col is one typed column: exactly one payload slice is non-nil, selected by
// Kind, and its length is the batch's row count.
type Col struct {
	Kind Kind
	I64  []int64
	F64  []float64
	Str  []string
	Bool []bool
}

// Len returns the column's element count.
func (c Col) Len() int {
	switch c.Kind {
	case Int64:
		return len(c.I64)
	case Float64:
		return len(c.F64)
	case String:
		return len(c.Str)
	case Bool:
		return len(c.Bool)
	default:
		return 0
	}
}

// IntCol wraps a payload slice as an int64 column.
func IntCol(v []int64) Col { return Col{Kind: Int64, I64: v} }

// FloatCol wraps a payload slice as a float64 column.
func FloatCol(v []float64) Col { return Col{Kind: Float64, F64: v} }

// StrCol wraps a payload slice as a string column.
func StrCol(v []string) Col { return Col{Kind: String, Str: v} }

// BoolCol wraps a payload slice as a bool column.
func BoolCol(v []bool) Col { return Col{Kind: Bool, Bool: v} }

// ConstCol materializes a length-n column holding the same value in every
// lane. Used for literal expressions that reach a projection directly; the
// vectorizer folds literals inside binary operators into Const kernels
// instead.
func ConstCol(kind Kind, n int, i int64, f float64, s string, b bool) Col {
	switch kind {
	case Int64:
		v := make([]int64, n)
		for j := range v {
			v[j] = i
		}
		return IntCol(v)
	case Float64:
		v := make([]float64, n)
		for j := range v {
			v[j] = f
		}
		return FloatCol(v)
	case String:
		v := make([]string, n)
		for j := range v {
			v[j] = s
		}
		return StrCol(v)
	default:
		v := make([]bool, n)
		for j := range v {
			v[j] = b
		}
		return BoolCol(v)
	}
}

// Batch is one window of rows in columnar form. N is the physical row count
// (every column's length); Sel, when non-nil, lists the live row indices in
// ascending order — rows a filter has kept. A nil Sel means all N rows are
// live.
type Batch struct {
	Cols []Col
	N    int
	Sel  []int
}

// Live returns the number of selected rows.
func (b *Batch) Live() int {
	if b.Sel == nil {
		return b.N
	}
	return len(b.Sel)
}

// Refine intersects the selection with a full-length boolean mask: a row
// survives when it was live and mask[row] is true. The selection stays in
// ascending order.
func (b *Batch) Refine(mask []bool) {
	if b.Sel == nil {
		sel := make([]int, 0, b.N)
		for i := 0; i < b.N; i++ {
			if mask[i] {
				sel = append(sel, i)
			}
		}
		b.Sel = sel
		return
	}
	kept := b.Sel[:0]
	for _, i := range b.Sel {
		if mask[i] {
			kept = append(kept, i)
		}
	}
	b.Sel = kept
}

// ForSel calls fn for each live row index in ascending order.
func (b *Batch) ForSel(fn func(i int)) {
	if b.Sel == nil {
		for i := 0; i < b.N; i++ {
			fn(i)
		}
		return
	}
	for _, i := range b.Sel {
		fn(i)
	}
}
