package sql

import (
	"fmt"
	"strings"
	"testing"
)

// skewedTriJoinPlan builds a 3-way join written in a deliberately bad
// order: the skewed fact⋈cust edge (few distinct keys, duplicated on both
// sides, est. ~240 rows) comes first, while the selective fact⋈item edge
// (unique item keys, est. ~60 rows) is joined last.
func skewedTriJoinPlan() Plan {
	factCols := Schema{
		{Name: "f_id", Kind: KindInt},
		{Name: "f_cust", Kind: KindInt},
		{Name: "f_item", Kind: KindInt},
	}
	factRows := make([]Row, 60)
	for i := range factRows {
		factRows[i] = Row{Int(int64(i)), Int(int64(i % 3)), Int(int64(i % 10))}
	}
	custCols := Schema{
		{Name: "c_id", Kind: KindInt},
		{Name: "c_tag", Kind: KindString},
	}
	custRows := make([]Row, 12)
	for i := range custRows {
		custRows[i] = Row{Int(int64(i % 3)), Str(fmt.Sprintf("t%d", i))}
	}
	itemCols := Schema{
		{Name: "i_id", Kind: KindInt},
		{Name: "i_name", Kind: KindString},
	}
	itemRows := make([]Row, 10)
	for i := range itemRows {
		itemRows[i] = Row{Int(int64(i)), Str(fmt.Sprintf("n%d", i))}
	}
	fact := Scan("fact", factCols, factRows)
	cust := Scan("cust", custCols, custRows)
	item := Scan("item", itemCols, itemRows)
	return JoinOn(JoinOn(fact, "f_cust", cust, "c_id"), "f_item", item, "i_id")
}

// TestJoinOrderReordersUnderSkew pins the cost-based ordering: the greedy
// pass must start from the cheap fact⋈item edge, deferring the skewed cust
// join, while preserving the output multiset and schema exactly.
func TestJoinOrderReordersUnderSkew(t *testing.T) {
	plan := skewedTriJoinPlan()
	rewrites := assertSameMultiset(t, plan)
	var detail string
	for _, rw := range rewrites {
		if rw.Rule == "join-order" {
			detail = rw.Detail
		}
	}
	if detail == "" {
		t.Fatalf("no join-order rewrite applied; got %+v", rewrites)
	}
	if !strings.Contains(detail, "[fact >< item >< cust]") {
		t.Fatalf("join-order chose %q, want fact >< item >< cust", detail)
	}
}

// TestJoinOrderGatedUnderLimitAndFloatAggs pins the reorder gate: row order
// is observable beneath a Limit and inside float Sum/Avg accumulation, so
// the pass must decline there.
func TestJoinOrderGatedUnderLimitAndFloatAggs(t *testing.T) {
	gated := []Plan{
		Limit(skewedTriJoinPlan(), 5),
		GroupBy(skewedTriJoinPlan(), nil,
			AggSpec{Name: "s", Func: AggSum, Arg: Col("f_id")}),
	}
	for i, plan := range gated {
		_, rewrites := Optimize(plan)
		for _, rw := range rewrites {
			if rw.Rule == "join-order" {
				t.Fatalf("case %d: join-order applied under an order-sensitive ancestor: %s", i, rw.Detail)
			}
		}
	}
	// Count aggregates are order-independent, so the gate stays open.
	_, rewrites := Optimize(GroupBy(skewedTriJoinPlan(), []string{"c_tag"},
		AggSpec{Name: "n", Func: AggCount}))
	found := false
	for _, rw := range rewrites {
		found = found || rw.Rule == "join-order"
	}
	if !found {
		t.Fatal("join-order declined under a count aggregate")
	}
}

// TestJoinOrderDeclinesTwoWay pins that plain two-input joins are left to
// the join-side sizing rule.
func TestJoinOrderDeclinesTwoWay(t *testing.T) {
	plan := JoinOn(ordersScan(), "custkey", customersScan(), "custkey")
	_, rewrites := Optimize(plan)
	for _, rw := range rewrites {
		if rw.Rule == "join-order" {
			t.Fatalf("join-order applied to a 2-way join: %s", rw.Detail)
		}
	}
}

// TestExplainGoldenTriJoin pins the full Explain surface of the reordered
// 3-way join: optimized tree, physical strategies, and the join-order
// rewrite record.
func TestExplainGoldenTriJoin(t *testing.T) {
	assertExplain(t, skewedTriJoinPlan(), `raw plan:
  join f_item=i_id (right side is the hash build side)
    join f_cust=c_id (right side is the hash build side)
      scan fact [f_id, f_cust, f_item] (60 rows)
      scan cust [c_id, c_tag] (12 rows)
    scan item [i_id, i_name] (10 rows)
optimized plan:
  project [f_id, f_cust, f_item, c_id, c_tag, i_id, i_name]
    join f_cust=c_id (right side is the hash build side)
      join f_item=i_id (right side is the hash build side)
        scan fact [f_id, f_cust, f_item] (60 rows)
        scan item [i_id, i_name] (10 rows)
      scan cust [c_id, c_tag] (12 rows)
physical plan:
  project [f_id, f_cust, f_item, c_id, c_tag, i_id, i_name] [row]
    join f_cust=c_id (right side is the hash build side) [row]
      join f_item=i_id (right side is the hash build side) [row]
        scan fact [f_id, f_cust, f_item] (60 rows) [row]
        scan item [i_id, i_name] (10 rows) [row]
      scan cust [c_id, c_tag] (12 rows) [row]
rewrites:
  1. join-order: reordered 3-way join to [fact >< item >< cust] (est. 240 rows)
`)
}
