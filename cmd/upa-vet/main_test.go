package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot is cmd/upa-vet -> repo root.
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestStandaloneCleanModule(t *testing.T) {
	if code := run([]string{moduleRoot(t)}); code != 0 {
		t.Fatalf("run(module root) = %d, want 0 (repo must be upa-vet clean)", code)
	}
}

func TestStandaloneRawReportsAnnotatedSites(t *testing.T) {
	if code := run([]string{"-raw", moduleRoot(t)}); code != 1 {
		t.Fatalf("run(-raw, module root) = %d, want 1 (annotated sites must fire without suppression)", code)
	}
}

func TestDriverProbes(t *testing.T) {
	if code := run([]string{"-flags"}); code != 0 {
		t.Fatalf("run(-flags) = %d, want 0", code)
	}
	if code := run([]string{"-V=full"}); code != 0 {
		t.Fatalf("run(-V=full) = %d, want 0", code)
	}
}

// TestVetUnit exercises the go vet driver path: a per-package cfg naming a
// violating file must produce findings, exit 1, and write the facts file.
func TestVetUnit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.go")
	if err := os.WriteFile(src, []byte(`package sub

import "context"

func f() context.Context { return context.Background() }
`), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg, err := json.Marshal(map[string]any{
		"ImportPath": "probe/internal/sub",
		"GoFiles":    []string{src},
		"VetxOutput": vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, cfg, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{cfgPath}); code != 1 {
		t.Fatalf("run(cfg with violation) = %d, want 1", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Fatalf("facts file not written: %v", err)
	}

	// The same unit under a non-internal import path is clean.
	cfg2, _ := json.Marshal(map[string]any{
		"ImportPath": "probe/sub",
		"GoFiles":    []string{src},
		"VetxOutput": vetx,
	})
	cfgPath2 := filepath.Join(dir, "vet2.cfg")
	if err := os.WriteFile(cfgPath2, cfg2, 0o666); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{cfgPath2}); code != 0 {
		t.Fatalf("run(cfg without violation) = %d, want 0", code)
	}
}
