package queries

import (
	"strings"

	"upa/internal/core"
	"upa/internal/flex"
	"upa/internal/mapreduce"
	"upa/internal/relation"
	"upa/internal/stats"
	"upa/internal/tpch"
)

// Query parameters, fixed as in the TPC-H specification (scaled to the
// synthetic date domain).
const (
	tpch1Cutoff     = tpch.Date(tpch.DateMax - 90)    // l_shipdate <= date '1998-12-01' - 90 days
	tpch4WindowLo   = tpch.Date(2 * tpch.DaysPerYear) // o_orderdate >= '1994-01-01' (scaled)
	tpch4WindowHi   = tpch4WindowLo + 90              // ... + 3 months
	tpch6YearLo     = tpch.Date(2 * tpch.DaysPerYear)
	tpch6YearHi     = tpch6YearLo + tpch.DaysPerYear
	tpch6DiscountLo = 0.05
	tpch6DiscountHi = 0.07
	tpch6QtyMax     = 24
	tpch11Nation    = "GERMANY"
	tpch16Brand     = "Brand#45"
	tpch16TypePre   = "MEDIUM POLISHED"
	tpch21Nation    = "SAUDI ARABIA"
)

var tpch16Sizes = map[int]bool{49: true, 14: true, 23: true, 45: true, 19: true, 3: true, 36: true, 9: true}

// countState wraps a 0/1 (or fan-out) contribution as a one-dimensional
// state.
func countState(v float64) core.State { return core.State{v} }

// TPCH1 is TPC-H Q1 as evaluated in the paper (Count): the number of
// lineitems shipped by the cutoff date. No joins; FLEX infers the exact
// sensitivity of 1 for it (§VI-B).
func (w *Workload) TPCH1() Runner {
	db := w.DB
	return &runner[tpch.Lineitem]{
		name: "TPCH1",
		kind: KindCount,
		size: len(db.Lineitems),
		bind: func(*mapreduce.Engine) (core.Query[tpch.Lineitem], []tpch.Lineitem, func(*stats.RNG) tpch.Lineitem, error) {
			q := core.Query[tpch.Lineitem]{
				Name:      "TPCH1",
				StateDim:  1,
				OutputDim: 1,
				Map: func(l tpch.Lineitem) core.State {
					if l.ShipDate <= tpch1Cutoff {
						return countState(1)
					}
					return countState(0)
				},
			}
			return q, db.Lineitems, db.RandomLineitem, nil
		},
		plan: func(*mapreduce.Engine) (flex.Plan, error) {
			return flex.Plan{Name: "TPCH1", CountQuery: true}, nil
		},
	}
}

// TPCH4 (Count, one Join): the number of (order, lineitem) joined pairs
// where the order falls in a three-month window and the lineitem was
// received after its commit date. The protected table is orders; removing
// an order removes its whole join fan-out, which is what FLEX bounds by the
// worst-case key-frequency product.
func (w *Workload) TPCH4() Runner {
	db := w.DB
	return &runner[tpch.Order]{
		name:  "TPCH4",
		kind:  KindCount,
		size:  len(db.Orders),
		joins: 1,
		bind: func(eng *mapreduce.Engine) (core.Query[tpch.Order], []tpch.Order, func(*stats.RNG) tpch.Order, error) {
			// Broadcast: per-order count of late lineitems (one shuffle).
			late, err := countByKey(eng, db.Lineitems,
				func(l tpch.Lineitem) int { return l.OrderKey },
				func(l tpch.Lineitem) bool { return l.CommitDate < l.ReceiptDate })
			if err != nil {
				return core.Query[tpch.Order]{}, nil, nil, err
			}
			q := core.Query[tpch.Order]{
				Name:      "TPCH4",
				StateDim:  1,
				OutputDim: 1,
				Map: func(o tpch.Order) core.State {
					if o.OrderDate >= tpch4WindowLo && o.OrderDate < tpch4WindowHi {
						return countState(late[o.OrderKey])
					}
					return countState(0)
				},
			}
			return q, db.Orders, db.RandomOrder, nil
		},
		plan: func(eng *mapreduce.Engine) (flex.Plan, error) {
			ordersKey, err := relation.KeyFrequency(eng, db.Orders, func(o tpch.Order) int { return o.OrderKey })
			if err != nil {
				return flex.Plan{}, err
			}
			lineKey, err := relation.KeyFrequency(eng, db.Lineitems, func(l tpch.Lineitem) int { return l.OrderKey })
			if err != nil {
				return flex.Plan{}, err
			}
			return flex.Plan{
				Name:       "TPCH4",
				CountQuery: true,
				Joins:      []flex.Join{{Left: ordersKey, Right: lineKey}},
			}, nil
		},
	}
}

// TPCH13 (Count, one Join): the number of (customer, order) joined pairs
// whose order comment is not a special request. Every order matches exactly
// one customer, so the true per-record influence is 1 — while FLEX multiplies
// the customer-key frequencies and overestimates by the key skew.
func (w *Workload) TPCH13() Runner {
	db := w.DB
	return &runner[tpch.Order]{
		name:  "TPCH13",
		kind:  KindCount,
		size:  len(db.Orders),
		joins: 1,
		bind: func(eng *mapreduce.Engine) (core.Query[tpch.Order], []tpch.Order, func(*stats.RNG) tpch.Order, error) {
			customers, err := lookupSet(eng, db.Customers, func(c tpch.Customer) int { return c.CustKey })
			if err != nil {
				return core.Query[tpch.Order]{}, nil, nil, err
			}
			q := core.Query[tpch.Order]{
				Name:      "TPCH13",
				StateDim:  1,
				OutputDim: 1,
				Map: func(o tpch.Order) core.State {
					if !o.SpecialRequest && customers[o.CustKey] {
						return countState(1)
					}
					return countState(0)
				},
			}
			return q, db.Orders, db.RandomOrder, nil
		},
		plan: func(eng *mapreduce.Engine) (flex.Plan, error) {
			custKey, err := relation.KeyFrequency(eng, db.Customers, func(c tpch.Customer) int { return c.CustKey })
			if err != nil {
				return flex.Plan{}, err
			}
			orderCust, err := relation.KeyFrequency(eng, db.Orders, func(o tpch.Order) int { return o.CustKey })
			if err != nil {
				return flex.Plan{}, err
			}
			return flex.Plan{
				Name:       "TPCH13",
				CountQuery: true,
				Joins:      []flex.Join{{Left: custKey, Right: orderCust}},
			}, nil
		},
	}
}

// TPCH16 (Count, two Joins): the number of partsupp rows whose part passes
// the brand/type/size filters and whose supplier has no complaints. Each
// partsupp row contributes at most one to the count, so the true local
// sensitivity is 1 — FLEX multiplies two worst-case join fan-outs instead
// (the error-magnification case of §II-B).
func (w *Workload) TPCH16() Runner {
	db := w.DB
	return &runner[tpch.PartSupp]{
		name:  "TPCH16",
		kind:  KindCount,
		size:  len(db.PartSupps),
		joins: 2,
		bind: func(eng *mapreduce.Engine) (core.Query[tpch.PartSupp], []tpch.PartSupp, func(*stats.RNG) tpch.PartSupp, error) {
			goodParts, err := lookupWhere(eng, db.Parts,
				func(p tpch.Part) int { return p.PartKey },
				func(p tpch.Part) bool {
					return p.Brand != tpch16Brand &&
						!strings.HasPrefix(p.Type, tpch16TypePre) &&
						tpch16Sizes[p.Size]
				})
			if err != nil {
				return core.Query[tpch.PartSupp]{}, nil, nil, err
			}
			goodSupp, err := lookupWhere(eng, db.Suppliers,
				func(s tpch.Supplier) int { return s.SuppKey },
				func(s tpch.Supplier) bool { return !s.Complaint })
			if err != nil {
				return core.Query[tpch.PartSupp]{}, nil, nil, err
			}
			q := core.Query[tpch.PartSupp]{
				Name:      "TPCH16",
				StateDim:  1,
				OutputDim: 1,
				Map: func(ps tpch.PartSupp) core.State {
					if goodParts[ps.PartKey] && goodSupp[ps.SuppKey] {
						return countState(1)
					}
					return countState(0)
				},
			}
			return q, db.PartSupps, db.RandomPartSupp, nil
		},
		plan: func(eng *mapreduce.Engine) (flex.Plan, error) {
			psPart, err := relation.KeyFrequency(eng, db.PartSupps, func(ps tpch.PartSupp) int { return ps.PartKey })
			if err != nil {
				return flex.Plan{}, err
			}
			partKey, err := relation.KeyFrequency(eng, db.Parts, func(p tpch.Part) int { return p.PartKey })
			if err != nil {
				return flex.Plan{}, err
			}
			psSupp, err := relation.KeyFrequency(eng, db.PartSupps, func(ps tpch.PartSupp) int { return ps.SuppKey })
			if err != nil {
				return flex.Plan{}, err
			}
			suppKey, err := relation.KeyFrequency(eng, db.Suppliers, func(s tpch.Supplier) int { return s.SuppKey })
			if err != nil {
				return flex.Plan{}, err
			}
			return flex.Plan{
				Name:       "TPCH16",
				CountQuery: true,
				Joins: []flex.Join{
					{Left: psPart, Right: partKey},
					{Left: psSupp, Right: suppKey},
				},
			}, nil
		},
	}
}

// TPCH21 (Count, five Joins and three Filters): for each lineitem received
// late, from a supplier of the target nation, on a finished order, count the
// other-supplier lineitems of the same order (the exists clause of Q21 as a
// self-join fan-out). Per-record influence varies from 0 to the largest
// order's width, giving the wide, outlier-heavy neighbouring-output
// distribution of Figure 3 — and FLEX's five-way worst-case product its
// six-orders-of-magnitude error.
func (w *Workload) TPCH21() Runner {
	db := w.DB
	return &runner[tpch.Lineitem]{
		name:  "TPCH21",
		kind:  KindCount,
		size:  len(db.Lineitems),
		joins: 5,
		bind: func(eng *mapreduce.Engine) (core.Query[tpch.Lineitem], []tpch.Lineitem, func(*stats.RNG) tpch.Lineitem, error) {
			nationKey := -1
			for _, n := range db.Nations {
				if n.Name == tpch21Nation {
					nationKey = n.NationKey
					break
				}
			}
			suppInNation, err := lookupWhere(eng, db.Suppliers,
				func(s tpch.Supplier) int { return s.SuppKey },
				func(s tpch.Supplier) bool { return s.NationKey == nationKey })
			if err != nil {
				return core.Query[tpch.Lineitem]{}, nil, nil, err
			}
			finishedOrders, err := lookupWhere(eng, db.Orders,
				func(o tpch.Order) int { return o.OrderKey },
				func(o tpch.Order) bool { return o.OrderStatus == "F" })
			if err != nil {
				return core.Query[tpch.Lineitem]{}, nil, nil, err
			}
			// Self-join broadcast: per order, total lineitems and per
			// (order, supplier) lineitems; other-supplier fan-out is their
			// difference.
			perOrder, err := countByKey(eng, db.Lineitems,
				func(l tpch.Lineitem) int { return l.OrderKey },
				nil)
			if err != nil {
				return core.Query[tpch.Lineitem]{}, nil, nil, err
			}
			perOrderSupp, err := countByKey(eng, db.Lineitems,
				func(l tpch.Lineitem) [2]int { return [2]int{l.OrderKey, l.SuppKey} },
				nil)
			if err != nil {
				return core.Query[tpch.Lineitem]{}, nil, nil, err
			}
			q := core.Query[tpch.Lineitem]{
				Name:      "TPCH21",
				StateDim:  1,
				OutputDim: 1,
				Map: func(l tpch.Lineitem) core.State {
					if l.ReceiptDate <= l.CommitDate || // filter 1
						!suppInNation[l.SuppKey] || // filter 2 (after joins)
						!finishedOrders[l.OrderKey] { // filter 3
						return countState(0)
					}
					others := perOrder[l.OrderKey] - perOrderSupp[[2]int{l.OrderKey, l.SuppKey}]
					return countState(others)
				},
			}
			return q, db.Lineitems, db.RandomLineitem, nil
		},
		plan: func(eng *mapreduce.Engine) (flex.Plan, error) {
			nationStats := relation.ColumnStats{RowCount: len(db.Nations), Distinct: len(db.Nations), MaxFreq: 1}
			suppNation, err := relation.KeyFrequency(eng, db.Suppliers, func(s tpch.Supplier) int { return s.NationKey })
			if err != nil {
				return flex.Plan{}, err
			}
			suppKey, err := relation.KeyFrequency(eng, db.Suppliers, func(s tpch.Supplier) int { return s.SuppKey })
			if err != nil {
				return flex.Plan{}, err
			}
			lineSupp, err := relation.KeyFrequency(eng, db.Lineitems, func(l tpch.Lineitem) int { return l.SuppKey })
			if err != nil {
				return flex.Plan{}, err
			}
			lineOrder, err := relation.KeyFrequency(eng, db.Lineitems, func(l tpch.Lineitem) int { return l.OrderKey })
			if err != nil {
				return flex.Plan{}, err
			}
			orderKey, err := relation.KeyFrequency(eng, db.Orders, func(o tpch.Order) int { return o.OrderKey })
			if err != nil {
				return flex.Plan{}, err
			}
			return flex.Plan{
				Name:       "TPCH21",
				CountQuery: true,
				Joins: []flex.Join{
					{Left: nationStats, Right: suppNation}, // nation ⋈ supplier
					{Left: suppKey, Right: lineSupp},       // supplier ⋈ lineitem l1
					{Left: lineOrder, Right: orderKey},     // l1 ⋈ orders
					{Left: lineOrder, Right: lineOrder},    // l1 ⋈ l2 (exists)
					{Left: lineOrder, Right: lineOrder},    // l1 ⋈ l3 (not exists)
				},
			}, nil
		},
	}
}

// TPCH6 (Arithmetic, unsupported by FLEX): the forecast-revenue query —
// sum(extendedprice * discount) over a one-year shipping window, a discount
// band, and a quantity cap.
func (w *Workload) TPCH6() Runner {
	db := w.DB
	return &runner[tpch.Lineitem]{
		name: "TPCH6",
		kind: KindArithmetic,
		size: len(db.Lineitems),
		bind: func(*mapreduce.Engine) (core.Query[tpch.Lineitem], []tpch.Lineitem, func(*stats.RNG) tpch.Lineitem, error) {
			q := core.Query[tpch.Lineitem]{
				Name:      "TPCH6",
				StateDim:  1,
				OutputDim: 1,
				Map: func(l tpch.Lineitem) core.State {
					if l.ShipDate >= tpch6YearLo && l.ShipDate < tpch6YearHi &&
						l.Discount >= tpch6DiscountLo-1e-9 && l.Discount <= tpch6DiscountHi+1e-9 &&
						l.Quantity < tpch6QtyMax {
						return countState(l.ExtendedPrice * l.Discount)
					}
					return countState(0)
				},
			}
			return q, db.Lineitems, db.RandomLineitem, nil
		},
		plan: unsupportedPlan("TPCH6"),
	}
}

// TPCH11 (Arithmetic, one Join, unsupported by FLEX): the important-stock
// query — sum(supplycost * availqty) over partsupp rows whose supplier sits
// in the target nation.
func (w *Workload) TPCH11() Runner {
	db := w.DB
	return &runner[tpch.PartSupp]{
		name:  "TPCH11",
		kind:  KindArithmetic,
		size:  len(db.PartSupps),
		joins: 1,
		bind: func(eng *mapreduce.Engine) (core.Query[tpch.PartSupp], []tpch.PartSupp, func(*stats.RNG) tpch.PartSupp, error) {
			nationKey := -1
			for _, n := range db.Nations {
				if n.Name == tpch11Nation {
					nationKey = n.NationKey
					break
				}
			}
			inNation, err := lookupWhere(eng, db.Suppliers,
				func(s tpch.Supplier) int { return s.SuppKey },
				func(s tpch.Supplier) bool { return s.NationKey == nationKey })
			if err != nil {
				return core.Query[tpch.PartSupp]{}, nil, nil, err
			}
			q := core.Query[tpch.PartSupp]{
				Name:      "TPCH11",
				StateDim:  1,
				OutputDim: 1,
				Map: func(ps tpch.PartSupp) core.State {
					if inNation[ps.SuppKey] {
						return countState(ps.SupplyCost * float64(ps.AvailQty))
					}
					return countState(0)
				},
			}
			return q, db.PartSupps, db.RandomPartSupp, nil
		},
		plan: unsupportedPlan("TPCH11"),
	}
}

// countByKey runs a filtered per-key count over records as an engine job
// (one shuffle) and collects it into a broadcast map. A nil keep counts all
// records.
func countByKey[T any, K comparable](eng *mapreduce.Engine, records []T, key func(T) K, keep func(T) bool) (map[K]float64, error) {
	parts := eng.Workers()
	if parts > len(records) {
		parts = len(records)
	}
	ds, err := mapreduce.FromSlice(eng, records, parts)
	if err != nil {
		return nil, err
	}
	if keep != nil {
		ds = mapreduce.Filter(ds, keep)
	}
	ones := mapreduce.Map(ds, func(t T) mapreduce.Pair[K, float64] {
		return mapreduce.Pair[K, float64]{Key: key(t), Value: 1}
	})
	pairs, err := mapreduce.ReduceByKey(ones, func(a, b float64) float64 { return a + b }).Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[K]float64, len(pairs))
	for _, p := range pairs {
		out[p.Key] = p.Value
	}
	// The lookup table ships to every worker as a broadcast variable, the
	// §V-B evaluation strategy; registering it meters the shipment.
	b, err := mapreduce.NewBroadcast(eng, out, len(out))
	if err != nil {
		return nil, err
	}
	return b.Value(), nil
}

// lookupSet broadcasts the set of keys present in records.
func lookupSet[T any, K comparable](eng *mapreduce.Engine, records []T, key func(T) K) (map[K]bool, error) {
	return lookupWhere(eng, records, key, nil)
}

// lookupWhere broadcasts the set of keys of records passing keep (all
// records when keep is nil), computed as an engine job.
func lookupWhere[T any, K comparable](eng *mapreduce.Engine, records []T, key func(T) K, keep func(T) bool) (map[K]bool, error) {
	counts, err := countByKey(eng, records, key, keep)
	if err != nil {
		return nil, err
	}
	out := make(map[K]bool, len(counts))
	for k := range counts {
		out[k] = true
	}
	return out, nil
}
