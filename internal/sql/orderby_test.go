package sql

import "testing"

func TestOrderByExecute(t *testing.T) {
	plan := OrderBy(ordersScan(), SortKey{Column: "price"})
	rows, _, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, r := range rows {
		v, _ := r[2].AsFloat()
		if v < prev {
			t.Fatalf("ascending order broken: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestOrderByDescendingAndTies(t *testing.T) {
	plan := OrderBy(ordersScan(),
		SortKey{Column: "status"},            // F before O
		SortKey{Column: "price", Desc: true}) // within status, descending
	rows, _, err := Execute(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// First group: status F with prices 400, 100, 50.
	wantPrices := []float64{400, 100, 50, 250, 75}
	for i, r := range rows {
		v, _ := r[2].AsFloat()
		if v != wantPrices[i] {
			t.Fatalf("row %d price = %v, want %v (rows %v)", i, v, wantPrices[i], rows)
		}
	}
}

func TestOrderByValidation(t *testing.T) {
	if _, _, err := Execute(eng(), OrderBy(ordersScan())); err == nil {
		t.Fatal("ORDER BY with no keys accepted")
	}
	if _, _, err := Execute(eng(), OrderBy(ordersScan(), SortKey{Column: "nope"})); err == nil {
		t.Fatal("unknown sort column accepted")
	}
}

func TestDistinctExecute(t *testing.T) {
	cols := Schema{{Name: "a", Kind: KindInt}, {Name: "b", Kind: KindString}}
	rows := []Row{
		{Int(1), Str("x")},
		{Int(2), Str("y")},
		{Int(1), Str("x")},
		{Int(1), Str("y")},
		{Int(2), Str("y")},
	}
	got, _, err := Execute(eng(), Distinct(Scan("t", cols, rows)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("distinct kept %d rows, want 3: %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, r := range got {
		k := rowKey(r)
		if seen[k] {
			t.Fatalf("duplicate row survived: %v", r)
		}
		seen[k] = true
	}
}

func TestHavingViaFilterOverAggregate(t *testing.T) {
	// SQL HAVING is a Filter over the aggregate's output schema — the plan
	// algebra composes without a dedicated node.
	grouped := GroupBy(ordersScan(), []string{"custkey"},
		AggSpec{Name: "n", Func: AggCount},
		AggSpec{Name: "spend", Func: AggSum, Arg: Col("price")},
	)
	having := Where(grouped, Gt(Col("spend"), Lit(Float(200))))
	rows, schema, err := Execute(eng(), having)
	if err != nil {
		t.Fatal(err)
	}
	if len(schema) != 3 {
		t.Fatalf("schema = %v", schema)
	}
	// Groups: 10 → 150, 11 → 325, 12 → 400; HAVING spend > 200 keeps two.
	if len(rows) != 2 {
		t.Fatalf("HAVING kept %d groups, want 2: %v", len(rows), rows)
	}
	for _, r := range rows {
		if v, _ := r[2].AsFloat(); v <= 200 {
			t.Fatalf("group %v escaped HAVING", r)
		}
	}
}

func TestDistinctCountPlan(t *testing.T) {
	// SELECT count(*) FROM (SELECT DISTINCT custkey FROM orders): the shape
	// of real TPC-H Q4's distinct-order counting.
	plan := GroupBy(
		Distinct(Project(ordersScan(), NamedExpr{Name: "custkey", Expr: Col("custkey")})),
		nil, AggSpec{Name: "n", Func: AggCount})
	n, err := ExecuteCount(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // custkeys 10, 11, 12
		t.Fatalf("distinct count = %d, want 3", n)
	}
	// FLEX detection works through Distinct and OrderBy wrappers.
	p, err := FLEXPlan(eng(), "q", OrderBy(plan, SortKey{Column: "n"}))
	if err != nil {
		t.Fatal(err)
	}
	if !p.CountQuery {
		t.Fatal("count under OrderBy not detected")
	}
}
