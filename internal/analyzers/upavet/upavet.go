// Package upavet bundles UPA's seven invariant analyzers into one suite —
// the programmatic core of cmd/upa-vet and of the repo-wide cleanliness
// test. Each analyzer mechanically enforces an assumption the paper's
// guarantee rests on but the compiler never checks:
//
//	reducerpurity      R(M(S')) reuse needs commutative/associative reducers
//	ctxpropagation     cancellation must reach every stage (PR 2)
//	epsiloncharge      ε is charged exactly once per successful release
//	seededdeterminism  byte-identical replay under faults (PR 3 chaos soak)
//	dpflow             pre-noise values never reach user-visible sinks
//	lockdiscipline     //upa:guardedby fields only move under their mutex
//	errorwrap          typed sentinels wrapped with %w, matched with errors.Is
//
// The last three ride on the interprocedural engine (analysis.Module):
// call-graph summaries carry taint and lock requirements across helper
// calls and, through the vetx facts channel, across package boundaries.
package upavet

import (
	"encoding/json"
	"fmt"
	"io"

	"upa/internal/analyzers/analysis"
	"upa/internal/analyzers/ctxpropagation"
	"upa/internal/analyzers/dpflow"
	"upa/internal/analyzers/epsiloncharge"
	"upa/internal/analyzers/errorwrap"
	"upa/internal/analyzers/lockdiscipline"
	"upa/internal/analyzers/reducerpurity"
	"upa/internal/analyzers/seededdeterminism"
)

// Analyzers is the full suite, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxpropagation.Analyzer,
		dpflow.Analyzer,
		epsiloncharge.Analyzer,
		errorwrap.Analyzer,
		lockdiscipline.Analyzer,
		reducerpurity.Analyzer,
		seededdeterminism.Analyzer,
	}
}

// CheckModule loads every package of the module rooted at root and runs the
// suite with //upa:allow suppression active.
func CheckModule(root string) ([]analysis.Diagnostic, *FsetSource, error) {
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return nil, nil, err
	}
	diags, err := analysis.RunAnalyzers(pkgs, Analyzers(), true)
	if err != nil {
		return nil, nil, err
	}
	return diags, fsetOf(pkgs), nil
}

// CheckModuleRaw is CheckModule without suppression: every finding the
// analyzers can make, including the annotated ones. The repo-wide test uses
// it to prove each in-tree //upa:allow is still load-bearing.
func CheckModuleRaw(root string) ([]analysis.Diagnostic, *FsetSource, error) {
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return nil, nil, err
	}
	diags, err := analysis.RunAnalyzers(pkgs, Analyzers(), false)
	if err != nil {
		return nil, nil, err
	}
	return diags, fsetOf(pkgs), nil
}

// FsetSource resolves diagnostic positions; all packages of one load share
// one file set.
type FsetSource struct{ pkgs []*analysis.Package }

func fsetOf(pkgs []*analysis.Package) *FsetSource { return &FsetSource{pkgs: pkgs} }

// Format renders one diagnostic as "file:line:col: analyzer: message".
func (fs *FsetSource) Format(d analysis.Diagnostic) string {
	if len(fs.pkgs) == 0 {
		return fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
	}
	pos := fs.pkgs[0].Fset.Position(d.Pos)
	return fmt.Sprintf("%s:%d:%d: %s: %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
}

// Print writes every diagnostic to w, one per line.
func (fs *FsetSource) Print(w io.Writer, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, fs.Format(d))
	}
}

// CheckModuleVerbose runs the suite keeping suppressed diagnostics in the
// result, flagged — the data source of `upa-vet -json` and the CI
// diagnostics artifact. It also returns the interprocedural module so
// callers can export its facts.
func CheckModuleVerbose(root string) ([]analysis.Diagnostic, *analysis.Module, *FsetSource, error) {
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		return nil, nil, nil, err
	}
	diags, mod, err := analysis.RunAnalyzersVerbose(pkgs, Analyzers(), nil, true)
	if err != nil {
		return nil, nil, nil, err
	}
	return diags, mod, fsetOf(pkgs), nil
}

// JSONDiagnostic is the `upa-vet -json` wire shape: one object per line.
type JSONDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// JSONOf renders one diagnostic into the wire shape.
func (fs *FsetSource) JSONOf(d analysis.Diagnostic) JSONDiagnostic {
	j := JSONDiagnostic{Analyzer: d.Analyzer, Message: d.Message, Suppressed: d.Suppressed}
	if len(fs.pkgs) > 0 {
		pos := fs.pkgs[0].Fset.Position(d.Pos)
		j.File, j.Line, j.Col = pos.Filename, pos.Line, pos.Column
	}
	return j
}

// PrintJSON writes every diagnostic to w as one JSON object per line.
func (fs *FsetSource) PrintJSON(w io.Writer, diags []analysis.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(fs.JSONOf(d)); err != nil {
			return err
		}
	}
	return nil
}
