package sql

import (
	"testing"
)

// skewedOrders builds a relation where custkey 10 dominates.
func skewedOrders() *ScanPlan {
	cols := Schema{
		{Name: "orderkey", Kind: KindInt},
		{Name: "custkey", Kind: KindInt},
		{Name: "price", Kind: KindFloat},
	}
	var rows []Row
	for i := 0; i < 40; i++ {
		key := int64(10)
		if i%4 == 0 {
			key = int64(11 + i%5)
		}
		rows = append(rows, Row{Int(int64(i)), Int(key), Float(float64(i))})
	}
	return Scan("orders", cols, rows)
}

func TestFLEXPlanCountDetection(t *testing.T) {
	countPlan := GroupBy(ordersScan(), nil, AggSpec{Name: "n", Func: AggCount})
	p, err := FLEXPlan(eng(), "q", countPlan)
	if err != nil {
		t.Fatal(err)
	}
	if !p.CountQuery {
		t.Fatal("global count not detected")
	}

	notCount := []Plan{
		ordersScan(),
		GroupBy(ordersScan(), nil, AggSpec{Name: "s", Func: AggSum, Arg: Col("price")}),
		GroupBy(ordersScan(), []string{"custkey"}, AggSpec{Name: "n", Func: AggCount}),
		GroupBy(ordersScan(), nil,
			AggSpec{Name: "n", Func: AggCount},
			AggSpec{Name: "s", Func: AggSum, Arg: Col("price")}),
	}
	for i, plan := range notCount {
		p, err := FLEXPlan(eng(), "q", plan)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if p.CountQuery {
			t.Errorf("case %d wrongly detected as count", i)
		}
	}

	// Count under Limit still detected.
	p, err = FLEXPlan(eng(), "q", Limit(countPlan, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.CountQuery {
		t.Fatal("count under limit not detected")
	}
}

func TestFLEXPlanJoinStats(t *testing.T) {
	plan := GroupBy(
		JoinOn(customersScan(), "custkey", skewedOrders(), "custkey"),
		nil, AggSpec{Name: "n", Func: AggCount})
	p, err := FLEXPlan(eng(), "q13ish", plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Joins) != 1 {
		t.Fatalf("extracted %d joins, want 1", len(p.Joins))
	}
	j := p.Joins[0]
	if j.Left.MaxFreq != 1 {
		t.Errorf("customer key max frequency = %d, want 1 (primary key)", j.Left.MaxFreq)
	}
	if j.Right.MaxFreq != 30 { // custkey 10 appears in 30 of 40 rows
		t.Errorf("orders custkey max frequency = %d, want 30", j.Right.MaxFreq)
	}
	sens, err := p.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if sens != 30 {
		t.Errorf("FLEX sensitivity = %v, want 30", sens)
	}
}

func TestFLEXPlanIgnoresFilters(t *testing.T) {
	// A filter that would eliminate the hot key entirely: FLEX must not
	// see it (§II-B: filters ignored), so the stats are unchanged.
	filtered := Where(skewedOrders(), Ne(Col("custkey"), Lit(Int(10))))
	plan := GroupBy(
		JoinOn(customersScan(), "custkey", filtered, "custkey"),
		nil, AggSpec{Name: "n", Func: AggCount})
	p, err := FLEXPlan(eng(), "filtered", plan)
	if err != nil {
		t.Fatal(err)
	}
	if p.Joins[0].Right.MaxFreq != 30 {
		t.Fatalf("FLEX saw the filter: max frequency %d, want 30", p.Joins[0].Right.MaxFreq)
	}
	// The actual count is far below FLEX's bound because the filter does
	// run at execution time.
	n, err := ExecuteCount(eng(), plan)
	if err != nil {
		t.Fatal(err)
	}
	// Of the 10 non-hot rows, keys 11/12/13 (two rows each) match a
	// customer; keys 14/15 match none.
	if n != 6 {
		t.Fatalf("executed count = %d, want 6", n)
	}
}

func TestFLEXPlanMultiJoin(t *testing.T) {
	// Two joins: the worst-case products multiply (error magnification).
	inner := JoinOn(customersScan(), "custkey", skewedOrders(), "custkey")
	nations := Scan("nations", Schema{{Name: "nation", Kind: KindString}},
		[]Row{{Str("DE")}, {Str("FR")}, {Str("US")}})
	plan := GroupBy(
		JoinOn(inner, "nation", nations, "nation"),
		nil, AggSpec{Name: "n", Func: AggCount})
	p, err := FLEXPlan(eng(), "two-joins", plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Joins) != 2 {
		t.Fatalf("extracted %d joins, want 2", len(p.Joins))
	}
	sens, err := p.LocalSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	// Join 1 contributes 1*30; join 2 contributes maxfreq(nation in joined
	// left, filter-stripped) * maxfreq(nations.nation = 1).
	if sens < 30 {
		t.Fatalf("multi-join sensitivity = %v, want >= 30", sens)
	}
}

func TestStripFiltersPreservesShape(t *testing.T) {
	plan := Limit(Project(Where(ordersScan(), Eq(Col("status"), Lit(Str("F")))),
		NamedExpr{Name: "k", Expr: Col("orderkey")}), 3)
	stripped := stripFilters(plan)
	rows, _, err := Execute(eng(), stripped)
	if err != nil {
		t.Fatal(err)
	}
	// Filter gone: all 5 source rows flow through (limit keeps 3).
	if len(rows) != 3 {
		t.Fatalf("stripped plan returned %d rows, want 3 (limit)", len(rows))
	}
	unlimited := stripFilters(Project(Where(ordersScan(), Eq(Col("status"), Lit(Str("F")))),
		NamedExpr{Name: "k", Expr: Col("orderkey")}))
	rows, _, err = Execute(eng(), unlimited)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("stripped plan returned %d rows, want all 5", len(rows))
	}
}
