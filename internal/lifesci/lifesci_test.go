package lifesci

import (
	"math"
	"testing"

	"upa/internal/stats"
)

func TestGenerateValidation(t *testing.T) {
	base := DefaultConfig()
	bad := []Config{
		{Records: 0, Dims: 2, Clusters: 1},
		{Records: 10, Dims: 0, Clusters: 1},
		{Records: 10, Dims: 2, Clusters: 0},
		{Records: 10, Dims: 2, Clusters: 1, OutlierFrac: 1},
		{Records: 10, Dims: 2, Clusters: 1, OutlierFrac: -0.5},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) accepted invalid config", cfg)
		}
	}
	if _, err := Generate(base); err != nil {
		t.Fatalf("DefaultConfig rejected: %v", err)
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{Records: 500, Dims: 3, Clusters: 2, OutlierFrac: 0.05, Seed: 4}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Points) != 500 {
		t.Fatalf("generated %d points, want 500", len(ds.Points))
	}
	if len(ds.TrueWeights) != 4 {
		t.Fatalf("weights have %d entries, want Dims+1 = 4", len(ds.TrueWeights))
	}
	if len(ds.TrueCenters) != 2 {
		t.Fatalf("%d centres, want 2", len(ds.TrueCenters))
	}
	for i, p := range ds.Points {
		if len(p.Features) != 3 {
			t.Fatalf("point %d has %d features, want 3", i, len(p.Features))
		}
		if math.IsNaN(p.Target) || math.IsInf(p.Target, 0) {
			t.Fatalf("point %d has invalid target %v", i, p.Target)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Records: 200, Dims: 2, Clusters: 3, OutlierFrac: 0.01, Seed: 8}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Points {
		if a.Points[i].Target != b.Points[i].Target {
			t.Fatalf("point %d differs across identical configs", i)
		}
		for d := range a.Points[i].Features {
			if a.Points[i].Features[d] != b.Points[i].Features[d] {
				t.Fatalf("point %d feature %d differs", i, d)
			}
		}
	}
}

func TestPlantedModelFits(t *testing.T) {
	// Without outliers the planted linear model should explain targets
	// almost exactly (noise sd 0.5).
	cfg := Config{Records: 5000, Dims: 3, Clusters: 2, OutlierFrac: 0, Seed: 6}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ss float64
	for _, p := range ds.Points {
		pred := ds.TrueWeights[cfg.Dims]
		for d, x := range p.Features {
			pred += ds.TrueWeights[d] * x
		}
		r := p.Target - pred
		ss += r * r
	}
	rmse := math.Sqrt(ss / float64(len(ds.Points)))
	if math.Abs(rmse-0.5) > 0.05 {
		t.Fatalf("residual RMSE = %v, want about 0.5 (the planted noise)", rmse)
	}
}

func TestOutliersWidenResiduals(t *testing.T) {
	clean, err := Generate(Config{Records: 5000, Dims: 2, Clusters: 2, OutlierFrac: 0, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	dirty, err := Generate(Config{Records: 5000, Dims: 2, Clusters: 2, OutlierFrac: 0.05, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	maxResid := func(ds *Dataset) float64 {
		worst := 0.0
		for _, p := range ds.Points {
			pred := ds.TrueWeights[len(p.Features)]
			for d, x := range p.Features {
				pred += ds.TrueWeights[d] * x
			}
			if r := math.Abs(p.Target - pred); r > worst {
				worst = r
			}
		}
		return worst
	}
	if mc, md := maxResid(clean), maxResid(dirty); md < 2*mc {
		t.Fatalf("outliers did not widen residual tail: %v vs %v", mc, md)
	}
}

func TestRandomPointDeterministic(t *testing.T) {
	ds, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := ds.RandomPoint(stats.NewRNG(3))
	b := ds.RandomPoint(stats.NewRNG(3))
	if a.Target != b.Target {
		t.Fatal("RandomPoint not deterministic in the RNG")
	}
	if len(a.Features) != ds.Config.Dims {
		t.Fatalf("random point has %d features, want %d", len(a.Features), ds.Config.Dims)
	}
}
