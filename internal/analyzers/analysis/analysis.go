// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis core: an Analyzer is a named check, a Pass
// hands it one parsed and (tolerantly) type-checked package, and Report
// collects position-tagged diagnostics.
//
// It exists because UPA's invariants — reducer purity, context propagation,
// ε-ledger discipline, seeded determinism — need a mechanical vet gate, and
// this repository builds offline with the standard library only. The API
// deliberately mirrors go/analysis so the analyzers port to the real
// framework by changing one import if x/tools ever becomes available.
//
// Type information is best-effort: packages are checked with stubbed-out
// imports (see load.go), so objects from other packages are unresolved while
// everything declared locally — scopes, local variables, the binding of an
// identifier to an import — is exact. The four UPA analyzers only need the
// latter.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named, documented check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //upa:allow(<name>) suppression comments.
	Name string
	// Doc is the one-paragraph description shown by upa-vet's usage text.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the analyzer that produced the finding.
	Analyzer string
	// Pos locates the finding; resolve it with the pass's FileSet.
	Pos token.Pos
	// Message describes the violation and, where possible, the fix.
	Message string
	// Suppressed marks findings silenced by a justified //upa:allow
	// annotation. Plain RunAnalyzers drops them; the verbose run used by
	// `upa-vet -json` keeps them, flagged, so CI artifacts show the full
	// picture.
	Suppressed bool
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test files, with comments.
	Files []*ast.File
	// PkgPath is the package's import path (e.g. "upa/internal/mapreduce").
	PkgPath string
	// TypesInfo holds the tolerant type-check results. Uses and Defs are
	// exact for locally declared objects and for import bindings; objects
	// imported from other packages are generally unresolved.
	TypesInfo *types.Info
	// Pkg is the package being analyzed, as loaded.
	Pkg *Package
	// Module is the interprocedural index over every package of this run
	// plus any facts imported through the vetx channel. Intraprocedural
	// analyzers may ignore it.
	Module *Module
	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Reportf is a convenience wrapper for Report.
func (p *Pass) Reportf(pos token.Pos, msg string) {
	p.Report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: msg})
}

// ImportPathOf resolves ident to the import path of the package it names,
// or "" when the identifier is not a package qualifier (e.g. it is a local
// variable shadowing the import). This is the shadow-proof way to decide
// whether `rand.Intn` really means the global math/rand.
func (p *Pass) ImportPathOf(ident *ast.Ident) string {
	if obj, ok := p.TypesInfo.Uses[ident]; ok {
		if pkg, ok := obj.(*types.PkgName); ok {
			return pkg.Imported().Path()
		}
		return ""
	}
	return ""
}

// CalleePkgFunc resolves a call of the form pkg.Fn(...) to its package
// import path and function name. It returns ok=false for method calls,
// locally defined functions, and shadowed qualifiers.
func (p *Pass) CalleePkgFunc(call *ast.CallExpr) (path, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	path = p.ImportPathOf(ident)
	if path == "" {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. When suppress is true,
// //upa:allow(<analyzer>) comments filter matching diagnostics: an
// annotation with a justification silences the finding on its own line or
// the next non-trivial line below; an annotation without a justification —
// or one that suppresses nothing (stale) — is itself reported. When
// suppress is false every raw finding is returned — the repo-wide tests
// use this to prove the in-tree annotations are load-bearing.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer, suppress bool) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersVerbose(pkgs, analyzers, nil, suppress)
	if err != nil {
		return nil, err
	}
	if !suppress {
		return diags, nil
	}
	out := diags[:0]
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out, nil
}

// RunAnalyzersVerbose is RunAnalyzers keeping suppressed diagnostics in
// the result, flagged, alongside the unjustified- and stale-annotation
// findings. external carries facts imported through the vetx channel (nil
// outside vet-driver unit mode). It also returns the interprocedural
// module so callers can export its facts.
func RunAnalyzersVerbose(pkgs []*Package, analyzers []*Analyzer, external *Facts, suppress bool) ([]Diagnostic, *Module, error) {
	mod := NewModule(pkgs)
	mod.AddFacts(external)
	inSet := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		inSet[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runOnPackage(mod, pkg, analyzers, suppress, inSet)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, diags...)
	}
	sortDiagnostics(out)
	return out, mod, nil
}

// runOnPackage applies the analyzers to one package, handling suppression.
func runOnPackage(mod *Module, pkg *Package, analyzers []*Analyzer, suppress bool, inSet map[string]bool) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.Path,
			TypesInfo: pkg.Info,
			Pkg:       pkg,
			Module:    mod,
			Report:    func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	if !suppress {
		sortDiagnostics(raw)
		return raw, nil
	}
	return applySuppressions(pkg, raw, inSet), nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Pos != ds[j].Pos {
			return ds[i].Pos < ds[j].Pos
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}
