package mapreduce

import (
	"context"
	"errors"
)

// ErrEmptyDataset is returned by Reduce on a dataset with no records.
var ErrEmptyDataset = errors.New("mapreduce: reduce of empty dataset")

// Reducer is a binary combination function. UPA (and Spark) require reducers
// to be commutative and associative; the engine exploits both by reducing
// partitions independently and combining the partials in arbitrary order.
// The contract is checked for concrete reducers by property tests.
type Reducer[T any] func(T, T) T

// Reduce folds the dataset with the commutative, associative reducer f:
// per-partition sequential reduction in parallel, then a combination of the
// partition partials. Empty partitions are skipped; an entirely empty
// dataset returns ErrEmptyDataset.
func Reduce[T any](d *Dataset[T], f Reducer[T]) (T, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return ReduceCtx(context.Background(), d, f)
}

// ReduceCtx is Reduce under a context: cancelling ctx stops the scheduler
// from claiming further partition tasks.
func ReduceCtx[T any](ctx context.Context, d *Dataset[T], f Reducer[T]) (T, error) {
	partials, nonEmpty, err := ReduceByPartitionCtx(ctx, d, f)
	var zero T
	if err != nil {
		return zero, err
	}
	first := true
	var acc T
	for p, ok := range nonEmpty {
		if !ok {
			continue
		}
		if first {
			acc = partials[p]
			first = false
			continue
		}
		acc = f(acc, partials[p])
		d.eng.metrics.ReduceOps.Add(1)
	}
	if first {
		return zero, ErrEmptyDataset
	}
	return acc, nil
}

// ReduceByPartition reduces each partition independently (the paper's
// ReduceByPar helper in Algorithms 1 and 2). It returns one partial per
// partition plus a mask of which partitions were non-empty.
func ReduceByPartition[T any](d *Dataset[T], f Reducer[T]) (partials []T, nonEmpty []bool, err error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return ReduceByPartitionCtx(context.Background(), d, f)
}

// ReduceByPartitionCtx is ReduceByPartition under a context.
func ReduceByPartitionCtx[T any](ctx context.Context, d *Dataset[T], f Reducer[T]) (partials []T, nonEmpty []bool, err error) {
	partials = make([]T, d.numParts)
	nonEmpty = make([]bool, d.numParts)
	err = d.eng.runTasks(ctx, d.name+":reduce", d.numParts, func(tctx context.Context, p int) error {
		part, err := d.partition(tctx, p)
		if err != nil {
			return err
		}
		if len(part) == 0 {
			return nil
		}
		acc := part[0]
		for _, v := range part[1:] {
			acc = f(acc, v)
		}
		d.eng.metrics.ReduceOps.Add(int64(len(part) - 1))
		partials[p] = acc
		nonEmpty[p] = true
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return partials, nonEmpty, nil
}

// Aggregate folds the dataset into a value of a different type: seqOp folds
// records into a per-partition accumulator starting from zero (zero must be
// the identity of combOp), and combOp merges the per-partition accumulators.
// combOp must be commutative and associative.
func Aggregate[T, U any](d *Dataset[T], zero U, seqOp func(U, T) U, combOp func(U, U) U) (U, error) {
	//upa:allow(ctxpropagation) public convenience wrapper: callers without a context land here
	return AggregateCtx(context.Background(), d, zero, seqOp, combOp)
}

// AggregateCtx is Aggregate under a context.
func AggregateCtx[T, U any](ctx context.Context, d *Dataset[T], zero U, seqOp func(U, T) U, combOp func(U, U) U) (U, error) {
	partials := make([]U, d.numParts)
	err := d.eng.runTasks(ctx, d.name+":aggregate", d.numParts, func(tctx context.Context, p int) error {
		part, err := d.partition(tctx, p)
		if err != nil {
			return err
		}
		acc := zero
		for _, v := range part {
			acc = seqOp(acc, v)
		}
		d.eng.metrics.ReduceOps.Add(int64(len(part)))
		partials[p] = acc
		return nil
	})
	if err != nil {
		var z U
		return z, err
	}
	acc := zero
	for _, p := range partials {
		acc = combOp(acc, p)
		d.eng.metrics.ReduceOps.Add(1)
	}
	return acc, nil
}

// ReduceSlice sequentially reduces a plain slice with f, returning ok=false
// on an empty slice. It exists so UPA's union-preserving reduce can fold
// in-memory sample sets with exactly the same reducer semantics as the
// engine.
func ReduceSlice[T any](xs []T, f Reducer[T]) (T, bool) {
	var zero T
	if len(xs) == 0 {
		return zero, false
	}
	acc := xs[0]
	for _, v := range xs[1:] {
		acc = f(acc, v)
	}
	return acc, true
}
